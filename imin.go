// Package imin is a Go library for minimizing the influence of
// misinformation in social networks by vertex blocking, implementing the
// ICDE 2023 paper "Minimizing the Influence of Misinformation via Vertex
// Blocking" (Xie, Zhang, Wang, Lin, Zhang; arXiv:2302.13529).
//
// # The problem
//
// Given a directed graph whose edges carry propagation probabilities under
// the independent cascade (IC) model, a set of seed vertices already
// affected by misinformation, and a budget b, find at most b non-seed
// vertices to block so that the expected spread of the misinformation is
// minimized. The problem is NP-hard and APX-hard, so the library provides
// the paper's fast heuristics:
//
//   - AdvancedGreedy: greedy selection driven by a sampled-graph +
//     dominator-tree estimator that scores every candidate blocker at once
//     (orders of magnitude faster than greedy with Monte-Carlo simulation,
//     with the same effectiveness).
//   - GreedyReplace: initializes with the seeds' out-neighbors and then
//     greedily replaces them, beating plain greedy at larger budgets.
//   - BaselineGreedy, Rand and OutDegree reference baselines.
//
// # Quick start
//
//	b := imin.NewBuilder(0)
//	b.AddEdge(0, 1, 0.5) // user 0 influences user 1 with probability 0.5
//	b.AddEdge(1, 2, 0.3)
//	g := b.Build()
//	res, err := imin.Minimize(g, []imin.Vertex{0}, 1, imin.Options{})
//	// res.Blockers now holds the best vertex to block.
//
// See the examples/ directory for complete programs: a quickstart, the
// paper's running example, an end-to-end synthetic social network study,
// and the linear-threshold extension.
package imin

import (
	"context"
	"time"

	"github.com/imin-dev/imin/internal/cascade"
	"github.com/imin-dev/imin/internal/core"
	"github.com/imin-dev/imin/internal/exact"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// Vertex identifies a graph vertex; vertices of a graph with n vertices are
// the dense range [0, n).
type Vertex = graph.V

// Edge is a directed influence edge with its propagation probability.
type Edge = graph.Edge

// Graph is an immutable directed probabilistic graph. Construct one with
// NewBuilder, FromEdges or ReadEdgeListFile.
type Graph = graph.Graph

// Builder accumulates edges and produces a Graph.
type Builder = graph.Builder

// Stats summarizes a graph (vertex/edge counts, degree distribution).
type Stats = graph.Stats

// NewBuilder returns a Builder for a graph with at least n vertices; the
// vertex count grows automatically as edges are added.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph with n vertices from an explicit edge list.
func FromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// ReadEdgeListFile parses a SNAP-style edge list ("u v [p]" lines, '#'
// comments). It returns the graph and the file's original vertex ids
// indexed by dense id. Set undirected to materialize each line in both
// directions; defaultP is used for two-column lines (0 means 1.0).
func ReadEdgeListFile(path string, undirected bool, defaultP float64) (*Graph, []int64, error) {
	return graph.ReadEdgeListFile(path, graph.ReadOptions{Undirected: undirected, DefaultP: defaultP})
}

// ReadBinaryGraphFile loads a graph stored in the library's binary format
// (written with Graph.WriteBinaryFile) — the fast path for the
// million-vertex datasets, loading without parsing or id interning.
func ReadBinaryGraphFile(path string) (*Graph, error) {
	return graph.ReadBinaryFile(path)
}

// Probability models for assigning edge probabilities, following the
// paper's experimental setting.
const (
	// Trivalency assigns each edge a probability uniformly from
	// {0.1, 0.01, 0.001}.
	Trivalency = graph.Trivalency
	// WeightedCascade assigns edge (u,v) probability 1/indegree(v).
	WeightedCascade = graph.WeightedCascade
)

// AssignProbabilities returns a copy of g with probabilities reassigned
// under the given model (Trivalency or WeightedCascade); seed drives the
// Trivalency randomness.
func AssignProbabilities(g *Graph, model graph.ProbModel, seed uint64) *Graph {
	return model.Assign(g, rng.New(seed))
}

// Algorithm selects the blocker-selection strategy.
type Algorithm = core.Algorithm

// Available algorithms.
const (
	Rand           = core.Rand
	OutDegree      = core.OutDegree
	BaselineGreedy = core.BaselineGreedy
	AdvancedGreedy = core.AdvancedGreedy
	GreedyReplace  = core.GreedyReplace
)

// Diffusion selects the diffusion model (IC or LT).
type Diffusion = core.Diffusion

// Diffusion models.
const (
	IC = core.DiffusionIC
	LT = core.DiffusionLT
)

// Options configures Minimize; see core.Options for field semantics. The
// zero value uses the paper's defaults (θ = 10⁴ sampled graphs, 10⁴
// Monte-Carlo rounds, IC model, all cores).
type Options = core.Options

// Result reports a Minimize run: the blocker set, runtime, and cost
// accounting.
type Result = core.Result

// Minimize selects at most b blockers for the given seed set using
// GreedyReplace, the paper's best heuristic. Use MinimizeWith to pick
// another algorithm.
func Minimize(g *Graph, seeds []Vertex, b int, opt Options) (Result, error) {
	return core.Solve(g, seeds, b, core.GreedyReplace, opt)
}

// MinimizeWith is Minimize with an explicit algorithm.
func MinimizeWith(g *Graph, seeds []Vertex, b int, alg Algorithm, opt Options) (Result, error) {
	return core.Solve(g, seeds, b, alg, opt)
}

// MinimizeContext is MinimizeWith with a cancelable context: when ctx is
// canceled the greedy loop stops at the next round boundary and the partial
// blocker set is returned with Result.Canceled set (no error), mirroring
// how Options.Timeout sets Result.TimedOut.
func MinimizeContext(ctx context.Context, g *Graph, seeds []Vertex, b int, alg Algorithm, opt Options) (Result, error) {
	return core.SolveContext(ctx, g, seeds, b, alg, opt)
}

// Session keeps per-graph solver state (the multi-seed unified instance,
// the live-edge sampler, and the estimator's worker scratch) warm across
// Minimize calls, so repeated solves on one graph skip all setup cost.
// Construct with NewSession; methods are safe for concurrent use but
// serialize internally. See core.Session for details.
type Session = core.Session

// SessionStats counts a Session's state reuse.
type SessionStats = core.SessionStats

// NewSession returns a warm-state solver session for g under the given
// diffusion model. workers bounds per-solve parallelism (0 = all cores).
// The session's diffusion model and worker count override the
// corresponding Options fields on every Solve (cached state must match
// the run). Caching never changes results: Session.Solve matches
// MinimizeContext exactly for equal (Seed, Theta) whenever the Options'
// Diffusion and Workers resolve to the session's own — note the estimator
// partitions samples per worker, so a session built with workers=2 only
// matches direct calls that also set Options.Workers=2.
func NewSession(g *Graph, d Diffusion, workers int) *Session {
	return core.NewSession(g, d, core.DomLengauerTarjan, workers)
}

// EstimateSpread estimates the expected spread E(S, G[V\B]) of a blocker
// set by Monte-Carlo simulation with the given number of rounds (the seeds
// themselves count toward the spread).
func EstimateSpread(g *Graph, seeds []Vertex, blockers []Vertex, rounds int, opt Options) (float64, error) {
	return core.EvaluateSpread(g, seeds, blockers, rounds, opt)
}

// ExactSpread computes the exact expected spread from a single seed by
// edge-factoring — exponential in the probabilistic edge count, intended
// for graphs with at most a few hundred edges. nodeBudget caps the
// recursion (0 = default); exact.ErrBudget signals an instance beyond
// reach.
func ExactSpread(g *Graph, seed Vertex, blockers []Vertex, nodeBudget int) (float64, error) {
	blocked := make([]bool, g.N())
	for _, v := range blockers {
		blocked[v] = true
	}
	return exact.Spread(g, seed, blocked, nodeBudget)
}

// SpreadDecreasePerVertex runs the paper's Algorithm 2 once: it returns,
// for every vertex u, the estimated decrease of expected spread if u alone
// were blocked, using theta live-edge samples and their dominator trees.
// This is the estimator that powers AdvancedGreedy and GreedyReplace and
// is useful on its own for ranking influential cut-points.
func SpreadDecreasePerVertex(g *Graph, seed Vertex, theta int, rngSeed uint64) []float64 {
	est := core.NewEstimator(cascade.NewIC(g), 0, core.DomLengauerTarjan)
	delta := make([]float64, g.N())
	est.DecreaseES(delta, seed, nil, theta, rng.New(rngSeed))
	return delta
}

// ThetaForGuarantee returns the sample count θ sufficient for the
// estimator's (ε, n^-l) relative-error guarantee of Theorem 5, given a
// lower bound on the true spread decrease.
func ThetaForGuarantee(n int, eps, l, optLowerBound float64) int {
	return core.ThetaBound(n, eps, l, optLowerBound)
}

// EdgeResult reports a MinimizeEdges run.
type EdgeResult = core.EdgeResult

// MinimizeEdges selects at most b *edges* to block (the link-blocking
// containment strategy) using the same sampled-graph + dominator-tree
// machinery through an edge-splitting transform: the spread decrease of
// removing edge (u,v) is the dominator-subtree weight of the auxiliary
// vertex u→x→v in each sample. All edges of g are candidates, including
// the seeds' own out-edges.
func MinimizeEdges(g *Graph, seeds []Vertex, b int, opt Options) (EdgeResult, error) {
	return core.SolveEdges(g, seeds, b, opt)
}

// Timeout is a convenience re-export so callers can set Options.Timeout
// without importing time in trivial programs.
type Timeout = time.Duration
