package core

import (
	"sync"

	"github.com/imin-dev/imin/internal/cascade"
	"github.com/imin-dev/imin/internal/dominator"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// IncrementalPooledEstimator is the delta-maintained, shard-parallel
// version of PooledEstimator. Blocking (or unblocking) a vertex x can only
// change the filtered dominator computation of samples whose reachable
// region contains x, so instead of re-scanning all θ samples every round it
//
//  1. diffs the requested blocker set against the one the cache reflects,
//  2. collects the dirty samples through the pool's inverted index into
//     per-shard dirty queues,
//  3. has each shard retract the dirty samples' cached per-vertex
//     subtree-size contributions from its own int64 accumulator, re-run the
//     filtered dominator computation, and add the new contributions back,
//  4. refreshes the cached Δ vector at exactly the touched vertices by
//     summing the shard accumulators in fixed shard order.
//
// A round therefore costs O(θ_x·m̄/P + t) where θ_x is the number of
// samples containing the flipped vertices — on real graphs a small
// fraction of θ — P the shard count, and t the number of touched vertices,
// against PooledEstimator's O(θ·m̄).
//
// Sharding: the θ samples are partitioned into P contiguous ranges; shard
// s owns samples [s·θ/P, (s+1)·θ/P), its own accumulator array acc_s[u]
// (the sum of u's cached contributions over the shard's samples), its own
// dirty queue, and its own dominator/filter scratch. Dirty samples are
// routed to their owning shard, so shards never write shared state during
// the parallel phase; the contribution arena is disjoint per sample and
// therefore also race-free.
//
// Equivalence and P-independence: contributions are exact int64 values and
// Σ_s acc_s[u] = Σ over all samples of u's contribution for any partition,
// so DecreaseES output is bit-identical to PooledEstimator over the same
// pool for every blocker sequence and every worker count — workers=1 and
// workers=8 return the same bits (the cross-validation and determinism
// tests assert this). The estimator carries mutable state and admits one
// DecreaseES caller at a time, like Estimator; the state survives across
// solves, so a warm session's later runs on the same pool only reprocess
// samples touched by the previous run's blockers. SetWorkers reshards
// without touching the pool or the contribution cache.
type IncrementalPooledEstimator struct {
	pool    *SamplePool
	workers int // requested; len(shards) is the clamped effective count
	domAlgo DomAlgo

	primed      bool
	prevBlocked []bool    // blocker set the cache reflects
	vals        []float64 // vals[u] = float64(Σ_s acc_s[u])/θ, maintained at touched entries

	// Per-sample contribution cache in arena form: sample i's entries
	// occupy the first contribLen[i] slots of
	// contrib{Vert,Size}[pool.vertStart[i]:], which fits because a sample
	// contributes at most K_i−1 (vertex, size) pairs. Slots of distinct
	// samples are disjoint, so shards recompute dirty samples in parallel.
	// The cache is partition-independent state: resharding reuses it to
	// rebuild the new shard accumulators.
	contribLen  []int32
	contribVert []graph.V
	contribSize []int32

	shards  []*incShard
	ownerOf []int32 // sample id → owning shard index

	dirtyMark []bool // dedup over samples, cleared after each round
	nDirty    int    // dirty samples queued this round, across all shards

	union     []graph.V // scratch: union of shard-touched vertices
	unionMark []bool

	rounds      int64 // DecreaseES calls answered
	reprocessed int64 // dirty samples recomputed across all rounds
}

// incShard owns one contiguous range of the pool's samples: its persistent
// accumulator, its dirty queue for the current round, and the scratch for
// re-running filtered dominator computations. During the parallel phase a
// shard touches only its own fields plus the (sample-disjoint) contribution
// arena.
type incShard struct {
	lo, hi int // owned sample range [lo, hi)
	filterScratch
	acc     []int64   // acc[u] = Σ over owned samples of u's cached subtree size
	dirty   []int32   // dirty queue for the current round, owned samples only
	touched []graph.V // vertices whose acc changed this round
	marked  []bool    // dedup for touched
}

// add folds one contribution delta into the shard accumulator, recording
// the vertex for the reduction phase.
func (sh *incShard) add(v graph.V, d int64) {
	if !sh.marked[v] {
		sh.marked[v] = true
		sh.touched = append(sh.touched, v)
	}
	sh.acc[v] += d
}

// NewIncrementalPooledEstimator draws theta samples into a fresh pool and
// wraps it. workers <= 0 selects GOMAXPROCS.
func NewIncrementalPooledEstimator(sampler cascade.LiveSampler, src graph.V, theta, workers int, domAlgo DomAlgo, base *rng.Source) *IncrementalPooledEstimator {
	return NewIncrementalPooledEstimatorFromPool(NewSamplePool(sampler, src, theta, workers, base), workers, domAlgo)
}

// NewIncrementalPooledEstimatorFromPool wraps an existing (possibly shared)
// pool. The estimator's first DecreaseES call processes every sample to
// prime the accumulators; later calls are incremental.
func NewIncrementalPooledEstimatorFromPool(pool *SamplePool, workers int, domAlgo DomAlgo) *IncrementalPooledEstimator {
	n := pool.g.N()
	e := &IncrementalPooledEstimator{
		pool:        pool,
		domAlgo:     domAlgo,
		prevBlocked: make([]bool, n),
		vals:        make([]float64, n),
		contribLen:  make([]int32, pool.Theta()),
		contribVert: make([]graph.V, len(pool.vertOrig)),
		contribSize: make([]int32, len(pool.vertOrig)),
		ownerOf:     make([]int32, pool.Theta()),
		dirtyMark:   make([]bool, pool.Theta()),
		unionMark:   make([]bool, n),
	}
	e.reshard(workers)
	return e
}

// Theta returns the stored sample count.
func (e *IncrementalPooledEstimator) Theta() int { return e.pool.Theta() }

// Pool returns the backing sample pool.
func (e *IncrementalPooledEstimator) Pool() *SamplePool { return e.pool }

// Workers returns the requested worker count (0 = GOMAXPROCS at reshard
// time, clamped to θ).
func (e *IncrementalPooledEstimator) Workers() int { return e.workers }

// SetWorkers re-partitions the samples across the new worker count. The
// pool, the contribution cache, and the cached Δ vector are untouched —
// only the shard accumulators are rebuilt (one pass over the cached
// contributions) — so a warm session can serve requests at different
// worker counts without re-drawing or re-priming anything, and the output
// stays bit-identical: Σ_s acc_s is invariant under the partition. No-op
// when the effective shard count is unchanged. Must not be called
// concurrently with DecreaseES.
func (e *IncrementalPooledEstimator) SetWorkers(workers int) {
	if poolWorkers(workers, e.pool.Theta()) == len(e.shards) {
		e.workers = workers
		return
	}
	e.reshard(workers)
}

// reshard builds the shard set for the clamped worker count and, if the
// estimator is primed, re-aggregates the per-sample contribution cache into
// the new owners' accumulators. State parked in the shards between rounds —
// dirty samples queued by RepairPool and the touched-vertex marks of their
// retracted contributions — is carried over to the new owners, so a worker
// change between a pool repair and the next DecreaseES loses nothing.
func (e *IncrementalPooledEstimator) reshard(workers int) {
	var pendingDirty []int32
	var pendingTouched []graph.V
	for _, sh := range e.shards {
		pendingDirty = append(pendingDirty, sh.dirty...)
		pendingTouched = append(pendingTouched, sh.touched...)
	}
	e.workers = workers
	theta := e.pool.Theta()
	n := e.pool.g.N()
	p := poolWorkers(workers, theta)
	e.shards = make([]*incShard, p)
	for s := 0; s < p; s++ {
		sh := &incShard{
			lo:            s * theta / p,
			hi:            (s + 1) * theta / p,
			filterScratch: newFilterScratch(),
			acc:           make([]int64, n),
			marked:        make([]bool, n),
		}
		e.shards[s] = sh
		for i := sh.lo; i < sh.hi; i++ {
			e.ownerOf[i] = int32(s)
		}
	}
	for _, i := range pendingDirty {
		e.shards[e.ownerOf[i]].dirty = append(e.shards[e.ownerOf[i]].dirty, i)
	}
	// Touched marks exist only to drive the next round's Δ-vector refresh;
	// any shard's list feeds the same union, so they all land on shard 0.
	sh0 := e.shards[0]
	for _, v := range pendingTouched {
		if !sh0.marked[v] {
			sh0.marked[v] = true
			sh0.touched = append(sh0.touched, v)
		}
	}
	if !e.primed {
		return
	}
	for i := 0; i < theta; i++ {
		acc := e.shards[e.ownerOf[i]].acc
		base := e.pool.vertStart[i]
		for j := base; j < base+int64(e.contribLen[i]); j++ {
			acc[e.contribVert[j]] += int64(e.contribSize[j])
		}
	}
}

// DecreaseES estimates Δ[u] on G[V\B] for every vertex from the stored
// pool, writing into dst (length ≥ n). Output is bit-identical to
// PooledEstimator.DecreaseES over the same pool; only samples containing a
// vertex whose blocked state changed since the previous call are
// re-processed. The changed vertices are found by diffing blocked against
// the previous call's set; callers that track their own mutations can hand
// them over through DecreaseESFlips and skip the O(n) diff.
func (e *IncrementalPooledEstimator) DecreaseES(dst []float64, blocked []bool) {
	copy(dst[:e.pool.g.N()], e.decreaseES(blocked, nil, false))
}

// DecreaseESFlips is DecreaseES with the exact set of vertices whose
// blocked state changed since the previous call, as known by the caller
// (the greedy loops flip one or two vertices per round). flips may contain
// duplicates; a vertex flipped twice (net no-op) only costs wasted
// reprocessing. An incomplete flips list silently corrupts the cache, so
// callers must report every mutation. Ignored (full scan) before priming.
func (e *IncrementalPooledEstimator) DecreaseESFlips(dst []float64, blocked []bool, flips []graph.V) {
	copy(dst[:e.pool.g.N()], e.decreaseES(blocked, flips, true))
}

// DecreaseESView is DecreaseES without the O(n) copy: the returned slice
// is the estimator's maintained Δ vector, valid (and read-only) until the
// next DecreaseES* call. The greedy argmax scans read it in place, which
// removes the last per-round O(n) term from the ReuseSamples fast path.
func (e *IncrementalPooledEstimator) DecreaseESView(blocked []bool) []float64 {
	return e.decreaseES(blocked, nil, false)
}

// DecreaseESFlipsView is DecreaseESFlips without the O(n) copy; see
// DecreaseESView for the aliasing contract.
func (e *IncrementalPooledEstimator) DecreaseESFlipsView(blocked []bool, flips []graph.V) []float64 {
	return e.decreaseES(blocked, flips, true)
}

// smallRoundInline is the dirty-sample count under which the round runs on
// the calling goroutine: spawning and joining shard goroutines costs more
// than a few dozen tiny dominator runs. The serial path walks the shards
// in the same fixed order, so the output bits do not depend on which path
// ran.
const smallRoundInline = 32

// markDirty routes sample i to its owning shard's dirty queue, once.
func (e *IncrementalPooledEstimator) markDirty(i int32) {
	if !e.dirtyMark[i] {
		e.dirtyMark[i] = true
		sh := e.shards[e.ownerOf[i]]
		sh.dirty = append(sh.dirty, i)
		e.nDirty++
	}
}

func (e *IncrementalPooledEstimator) decreaseES(blocked []bool, flips []graph.V, haveFlips bool) []float64 {
	n := e.pool.g.N()
	theta := e.pool.Theta()
	e.rounds++

	// Phase 0 (serial): route dirty samples to their owning shards.
	switch {
	case !e.primed:
		for _, sh := range e.shards {
			for i := sh.lo; i < sh.hi; i++ {
				sh.dirty = append(sh.dirty, int32(i))
			}
			e.nDirty += sh.hi - sh.lo
		}
		e.primed = true
		if blocked == nil {
			for v := range e.prevBlocked {
				e.prevBlocked[v] = false
			}
		} else {
			copy(e.prevBlocked, blocked[:n])
		}
	case haveFlips:
		for _, v := range flips {
			nb := blocked != nil && blocked[v]
			if nb == e.prevBlocked[v] {
				continue // duplicate flip, net no-op
			}
			e.prevBlocked[v] = nb
			for _, i := range e.pool.SamplesContaining(v) {
				e.markDirty(i)
			}
		}
	default:
		for v := 0; v < n; v++ {
			nb := blocked != nil && blocked[v]
			if nb == e.prevBlocked[v] {
				continue
			}
			e.prevBlocked[v] = nb
			for _, i := range e.pool.SamplesContaining(graph.V(v)) {
				e.markDirty(i)
			}
		}
	}
	if e.nDirty == 0 {
		return e.vals
	}
	e.reprocessed += int64(e.nDirty)

	// Phase 1: each shard reprocesses its own dirty queue against its own
	// accumulator. Tiny rounds run inline, in shard order; the result is
	// the same either way because shards share nothing.
	parallel := len(e.shards) > 1 && e.nDirty > smallRoundInline
	if parallel {
		var wg sync.WaitGroup
		for _, sh := range e.shards {
			if len(sh.dirty) == 0 {
				continue
			}
			wg.Add(1)
			go func(sh *incShard) {
				defer wg.Done()
				e.processShard(sh, blocked)
			}(sh)
		}
		wg.Wait()
	} else {
		for _, sh := range e.shards {
			if len(sh.dirty) > 0 {
				e.processShard(sh, blocked)
			}
		}
	}

	// Phase 2 (serial): merge the shards' touched lists into one deduped
	// union, in fixed shard order, and drain the round's queues.
	e.union = e.union[:0]
	for _, sh := range e.shards {
		for _, v := range sh.touched {
			sh.marked[v] = false
			if !e.unionMark[v] {
				e.unionMark[v] = true
				e.union = append(e.union, v)
			}
		}
		sh.touched = sh.touched[:0]
		for _, i := range sh.dirty {
			e.dirtyMark[i] = false
		}
		sh.dirty = sh.dirty[:0]
	}
	e.nDirty = 0

	// Phase 3: refresh the cached Δ vector at exactly the union entries.
	// vals[u] = float64(Σ_s acc_s[u])·θ⁻¹ — the same expression
	// PooledEstimator evaluates over its per-worker sums, summed in fixed
	// shard order (int64 addition is exact, so the order is immaterial to
	// the bits; the fixed order keeps it auditable). Parallel over disjoint
	// chunks of the union when the round is large enough to pay for it.
	inv := 1 / float64(theta)
	reduce := func(part []graph.V) {
		for _, v := range part {
			total := int64(0)
			for _, sh := range e.shards {
				total += sh.acc[v]
			}
			e.vals[v] = float64(total) * inv
			e.unionMark[v] = false
		}
	}
	if parallel && len(e.union) > 4*smallRoundInline {
		var wg sync.WaitGroup
		p := len(e.shards)
		for w := 0; w < p; w++ {
			lo, hi := w*len(e.union)/p, (w+1)*len(e.union)/p
			if lo == hi {
				continue
			}
			wg.Add(1)
			go func(part []graph.V) {
				defer wg.Done()
				reduce(part)
			}(e.union[lo:hi])
		}
		wg.Wait()
	} else {
		reduce(e.union)
	}
	return e.vals
}

// processShard retracts each queued sample's cached contributions from the
// shard accumulator, recomputes its filtered dominator tree under the new
// blocker set, and caches the result.
func (e *IncrementalPooledEstimator) processShard(sh *incShard, blocked []bool) {
	var s sampleView
	for _, i := range sh.dirty {
		base := e.pool.vertStart[i]
		old := int64(e.contribLen[i])
		for j := base; j < base+old; j++ {
			sh.add(e.contribVert[j], -int64(e.contribSize[j]))
		}

		e.pool.view(int(i), &s)
		forig, sizes := sh.dominateSample(&s, blocked, e.domAlgo)
		e.contribLen[i] = int32(len(forig) - 1)
		for fl := 1; fl < len(forig); fl++ {
			v, sz := forig[fl], sizes[fl]
			e.contribVert[base+int64(fl-1)] = v
			e.contribSize[base+int64(fl-1)] = sz
			sh.add(v, int64(sz))
		}
	}
}

// dominateSample computes per-vertex dominator-subtree sizes for one stored
// sample under the current blocker set. When the sample contains no blocked
// vertex — every priming-round sample, and dirty samples whose flips were
// all unblocks — the arena CSR already is the flow graph, so the filter BFS
// and CSR rebuild are skipped and the dominator computation runs straight
// off pool memory. Dominator trees are unique per flow graph, so both paths
// return identical (vertex, size) contributions.
func (st *filterScratch) dominateSample(s *sampleView, blocked []bool, domAlgo DomAlgo) ([]graph.V, []int32) {
	if blocked != nil {
		for _, v := range s.orig {
			if blocked[v] {
				return st.filterAndDominate(s, blocked, domAlgo)
			}
		}
	}
	fg := dominator.FlowGraph{N: len(s.orig), OutStart: s.outStart, OutTo: s.outTo, InStart: s.inStart, InTo: s.inTo}
	return s.orig, st.runDominators(&fg, domAlgo)
}

// RepairPool swaps in a repaired pool (SamplePool.Repair) while keeping the
// estimator warm: the contribution cache of every clean sample is relocated
// to its new arena offset, while each redrawn sample's cached contributions
// are retracted from its shard accumulator and the sample is queued dirty,
// so the next DecreaseES call recomputes exactly the redrawn samples under
// the new topology. The maintained state then equals — bit for bit — that of
// an estimator built fresh on the repaired pool and primed with the same
// blocker history, which is what keeps warm solves warm across mutations.
//
// newPool must come from a Repair of the estimator's current pool (same θ,
// same streams) with dirty as the returned redrawn-sample list; the vertex
// count may only have grown. Must not be called concurrently with
// DecreaseES; back-to-back repairs without an intervening DecreaseES
// compose correctly.
func (e *IncrementalPooledEstimator) RepairPool(newPool *SamplePool, dirty []int32) {
	old := e.pool
	if newPool.Theta() != old.Theta() {
		panic("core: RepairPool with mismatched theta")
	}
	if n := newPool.g.N(); n > len(e.vals) {
		grow := n - len(e.vals)
		e.vals = append(e.vals, make([]float64, grow)...)
		e.prevBlocked = append(e.prevBlocked, make([]bool, grow)...)
		e.unionMark = append(e.unionMark, make([]bool, grow)...)
		for _, sh := range e.shards {
			sh.acc = append(sh.acc, make([]int64, grow)...)
			sh.marked = append(sh.marked, make([]bool, grow)...)
		}
	}
	if !e.primed {
		// No cached contributions to relocate; the priming round draws
		// everything from the new pool anyway.
		e.pool = newPool
		e.contribVert = make([]graph.V, len(newPool.vertOrig))
		e.contribSize = make([]int32, len(newPool.vertOrig))
		return
	}
	isDirty := make([]bool, old.Theta())
	for _, i := range dirty {
		isDirty[i] = true
	}
	nv := make([]graph.V, len(newPool.vertOrig))
	ns := make([]int32, len(newPool.vertOrig))
	for i := 0; i < old.Theta(); i++ {
		if isDirty[i] {
			sh := e.shards[e.ownerOf[i]]
			base := old.vertStart[i]
			for j := base; j < base+int64(e.contribLen[i]); j++ {
				sh.add(e.contribVert[j], -int64(e.contribSize[j]))
			}
			// Zero length: processShard must not retract these again when it
			// recomputes the sample next round.
			e.contribLen[i] = 0
			e.markDirty(int32(i))
			continue
		}
		ob, nb := old.vertStart[i], newPool.vertStart[i]
		l := int64(e.contribLen[i])
		copy(nv[nb:nb+l], e.contribVert[ob:ob+l])
		copy(ns[nb:nb+l], e.contribSize[ob:ob+l])
	}
	e.contribVert, e.contribSize = nv, ns
	e.pool = newPool
}

// IncrementalStats reports the estimator's lifetime work counters.
type IncrementalStats struct {
	// Rounds is the number of DecreaseES calls answered.
	Rounds int64
	// SamplesReprocessed is the total number of dirty samples recomputed;
	// a full re-scan per round would make this Rounds × Theta.
	SamplesReprocessed int64
}

// Stats returns the work counters. Call between DecreaseES calls.
func (e *IncrementalPooledEstimator) Stats() IncrementalStats {
	return IncrementalStats{Rounds: e.rounds, SamplesReprocessed: e.reprocessed}
}

// MemoryBytes reports the pool plus the estimator's own resident footprint:
// cached value vector, contribution arena, previous-blocker mask, and the
// per-shard state — the O(n) accumulator and mark arrays plus the filter
// and dominator scratch grown during processing. On large graphs at high
// worker counts the per-shard state dwarfs the arena itself, which is why
// SetWorkers is worth calling downward too.
func (e *IncrementalPooledEstimator) MemoryBytes() int64 {
	total := e.pool.MemoryBytes() +
		int64(len(e.vals))*8 +
		int64(len(e.contribVert))*4 + int64(len(e.contribSize))*4 +
		int64(len(e.contribLen))*4 + int64(len(e.ownerOf))*4 +
		int64(len(e.prevBlocked)) + int64(len(e.dirtyMark)) +
		int64(len(e.unionMark)) + int64(cap(e.union))*4
	for _, sh := range e.shards {
		total += int64(len(sh.acc))*8 + int64(len(sh.marked)) +
			int64(cap(sh.touched))*4 + int64(cap(sh.dirty))*4 +
			sh.memoryBytes()
	}
	return total
}
