package harness

import (
	"errors"
	"fmt"
	"time"

	"github.com/imin-dev/imin/internal/cascade"
	"github.com/imin-dev/imin/internal/core"
	"github.com/imin-dev/imin/internal/datasets"
	"github.com/imin-dev/imin/internal/exact"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// Table56Row is one budget row of Table V (TR model) or VI (WC model):
// optimal spread vs GreedyReplace spread and both running times.
type Table56Row struct {
	Budget       int
	ExactSpread  float64
	GRSpread     float64
	Ratio        float64 // ExactSpread / GRSpread — 1.0 means GR is optimal
	ExactRuntime time.Duration
	GRRuntime    time.Duration
}

// Table56Options sizes the optimality experiment. The paper extracts
// 100-vertex subgraphs of EmailCore and enumerates up to b=4 (80 050 s for
// the largest); the defaults here use a smaller extract so the exact
// factoring spread stays tractable without the authors' BDD library — the
// quantities of interest (ratio ≈ 1, orders-of-magnitude time gap) are
// scale-free. Raise ExtractSize/MaxBudget to approach the paper's setting.
type Table56Options struct {
	ExtractSize int // vertices in the extracted instance (default 26)
	MaxBudget   int // enumerate b = 1..MaxBudget (default 3)
	NodeBudget  int // factoring recursion cap per spread (default 4e6)
	// SourceDataset names the dataset stand-in to extract from. The paper
	// extracts from EmailCore; the default here is the much sparser
	// EmailAll, which keeps the exact factoring spread computation
	// tractable without the authors' BDD library (EXPERIMENTS.md records
	// this substitution). Set to "EmailCore" to mirror the paper; dense
	// extracts then fall back to Monte-Carlo spread evaluation.
	SourceDataset string
	// FallbackRounds is the Monte-Carlo budget used when factoring exceeds
	// NodeBudget (default 20000).
	FallbackRounds int
}

func (o Table56Options) withDefaults() Table56Options {
	if o.ExtractSize == 0 {
		o.ExtractSize = 26
	}
	if o.MaxBudget == 0 {
		o.MaxBudget = 3
	}
	if o.NodeBudget == 0 {
		o.NodeBudget = 4_000_000
	}
	if o.SourceDataset == "" {
		o.SourceDataset = "EmailAll"
	}
	if o.FallbackRounds == 0 {
		o.FallbackRounds = 20000
	}
	return o
}

// RunTable56 reproduces Tables V and VI for the given probability model
// (Trivalency → Table V, WeightedCascade → Table VI): on a small extracted
// instance, compare the exhaustive-optimal blocker set against
// GreedyReplace, scoring both with the exact expected spread.
func RunTable56(cfg Config, model graph.ProbModel, opts Table56Options) ([]Table56Row, error) {
	cfg = cfg.WithDefaults()
	opts = opts.withDefaults()

	inst, err := buildSmallInstance(cfg, model, opts)
	if err != nil {
		return nil, err
	}
	g, src := inst.g, inst.src

	// Spread evaluator: exact factoring, with a Monte-Carlo fallback when
	// the extract is too dense for the node budget (possible when
	// SourceDataset is EmailCore, as in the paper).
	eval := exact.EvalExact(g, src, opts.NodeBudget)
	if _, err := exact.Spread(g, src, nil, opts.NodeBudget); errors.Is(err, exact.ErrBudget) {
		est := &cascade.SpreadEstimator{Sampler: cascade.NewIC(g), Rounds: opts.FallbackRounds, Workers: cfg.Workers}
		base := rng.New(cfg.Seed ^ 0xfa11bacc)
		call := uint64(0)
		eval = func(blocked []bool) (float64, error) {
			call++
			return est.Spread(src, blocked, base, call), nil
		}
		fmt.Fprintf(cfg.Out, "(extract too dense for exact factoring; spreads below are MCS estimates with %d rounds)\n", opts.FallbackRounds)
	}

	var rows []Table56Row
	for b := 1; b <= opts.MaxBudget; b++ {
		startExact := time.Now()
		ex, err := exact.SolveIMIN(g, src, b, nil, eval)
		if err != nil {
			return nil, fmt.Errorf("harness: exact solve b=%d: %w", b, err)
		}
		exactTime := time.Since(startExact)

		opt := cfg.solveOptions(core.DiffusionIC, cfg.Seed)
		startGR := time.Now()
		gr, err := core.Solve(g, []graph.V{src}, b, core.GreedyReplace, opt)
		if err != nil {
			return nil, err
		}
		grTime := time.Since(startGR)
		grBlocked := make([]bool, g.N())
		for _, v := range gr.Blockers {
			grBlocked[v] = true
		}
		grSpread, err := eval(grBlocked)
		if err != nil {
			return nil, err
		}

		ratio := 1.0
		if grSpread > 0 {
			ratio = ex.Spread / grSpread
		}
		rows = append(rows, Table56Row{
			Budget: b, ExactSpread: ex.Spread, GRSpread: grSpread,
			Ratio: ratio, ExactRuntime: exactTime, GRRuntime: grTime,
		})
	}

	name := "Table V (TR model)"
	if model == graph.WeightedCascade {
		name = "Table VI (WC model)"
	}
	fmt.Fprintf(cfg.Out, "%s: Exact vs GreedyReplace on a %d-vertex extract\n", name, g.N())
	fmt.Fprintln(cfg.Out, " b   Exact      GR      Ratio    t_Exact      t_GR")
	for _, r := range rows {
		fmt.Fprintf(cfg.Out, "%2d  %7.3f  %7.3f  %6.2f%%  %9s  %9s\n",
			r.Budget, r.ExactSpread, r.GRSpread, 100*r.Ratio, r.ExactRuntime.Round(time.Microsecond), r.GRRuntime.Round(time.Microsecond))
	}
	return rows, nil
}

type smallInstance struct {
	g   *graph.Graph
	src graph.V
}

// buildSmallInstance extracts a Table V/VI-style instance: the configured
// dataset stand-in, neighborhood-extracted to the requested size,
// probability model applied, with a single seed (the extraction start).
// The paper seeds 10 random vertices; a single-source extract keeps the
// exact enumeration's candidate space identical while avoiding the
// unified-graph indirection in reported vertex ids.
func buildSmallInstance(cfg Config, model graph.ProbModel, opts Table56Options) (*smallInstance, error) {
	spec, ok := datasets.ByName(opts.SourceDataset)
	if !ok {
		return nil, fmt.Errorf("harness: unknown source dataset %q", opts.SourceDataset)
	}
	structural := spec.Generate(maxf(cfg.Scale, 0.01), cfg.Seed)
	sub, _ := datasets.ExtractNeighborhood(structural, 0, opts.ExtractSize)
	r := rng.New(cfg.Seed ^ 0x7ab1e56)
	g := model.Assign(sub, r)
	return &smallInstance{g: g, src: 0}, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
