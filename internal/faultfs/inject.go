package faultfs

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// Op classifies one filesystem operation for schedule matching and traces.
// FS-level ops carry the method's name; File-level ops (write, sync, ...)
// carry the path the file was opened with.
type Op string

const (
	OpOpen      Op = "open"
	OpCreate    Op = "create"
	OpOpenFile  Op = "openfile"
	OpRename    Op = "rename"
	OpRemove    Op = "remove"
	OpRemoveAll Op = "removeall"
	OpMkdirAll  Op = "mkdirall"
	OpReadFile  Op = "readfile"
	OpWriteFile Op = "writefile"
	OpReadDir   Op = "readdir"
	OpStat      Op = "stat"

	OpRead     Op = "read"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpClose    Op = "close"
	OpTruncate Op = "truncate"
	OpSeek     Op = "seek"
)

// OpInfo identifies one observed operation: its 1-based global sequence
// number across the whole Injector, its kind, and the path it touched.
type OpInfo struct {
	Seq  int64
	Op   Op
	Path string
}

func (i OpInfo) String() string {
	return fmt.Sprintf("op %d: %s %s", i.Seq, i.Op, i.Path)
}

// Mode is what a fired rule does to its operation.
type Mode int

const (
	// ModeErr returns Err without performing the operation.
	ModeErr Mode = iota
	// ModeShortWrite performs half the write, then returns Err — a torn
	// record the process observes. Non-write operations behave as ModeErr.
	ModeShortWrite
	// ModeCrashBefore aborts the process before the operation runs: the
	// op's effect is entirely absent from disk.
	ModeCrashBefore
	// ModeCrashAfter performs the operation, then aborts: the op's effect
	// is fully present, everything later is absent.
	ModeCrashAfter
	// ModeTornWrite writes half, then aborts — the classic torn write a
	// power cut leaves behind. Non-write operations behave as ModeCrashBefore.
	ModeTornWrite
)

func (m Mode) String() string {
	switch m {
	case ModeErr:
		return "err"
	case ModeShortWrite:
		return "short"
	case ModeCrashBefore:
		return "crash"
	case ModeCrashAfter:
		return "crash-after"
	case ModeTornWrite:
		return "torn"
	}
	return "unknown"
}

// Rule is one entry of an injection schedule. A rule matches an operation
// when Op equals the op's kind ("" or "*" matches any) and PathContains is
// a substring of its path ("" matches any). Each rule counts its own
// matches; it fires on the Nth match (1-based), or on every match when
// Nth is 0. The first firing rule in schedule order decides the op's fate.
type Rule struct {
	Op           Op
	PathContains string
	Nth          int
	Mode         Mode
	// Err is the error ModeErr/ModeShortWrite return, wrapped in an
	// *os.PathError so errors.Is sees through it. Nil defaults to EIO.
	Err error
}

func (r Rule) errno() error {
	if r.Err != nil {
		return r.Err
	}
	return syscall.EIO
}

func (r Rule) String() string {
	s := r.Mode.String() + "@"
	if r.Op == "" {
		s += "*"
	} else {
		s += string(r.Op)
	}
	if r.PathContains != "" {
		s += "~" + r.PathContains
	}
	if r.Nth > 0 {
		s += "#" + strconv.Itoa(r.Nth)
	}
	return s
}

// CrashExitCode is the status the default crash hook exits with, so a
// parent process can tell a deliberate crash-point abort from any other
// failure of its child.
const CrashExitCode = 86

// Injector wraps a base FS with a deterministic fault schedule. Every
// operation increments a global sequence, is offered to each rule in
// order, and either passes through, fails, writes short, or aborts the
// process. Rules and tracing may be swapped at runtime (a test clears the
// schedule to let a self-heal succeed); all methods are concurrency-safe.
type Injector struct {
	base  FS
	crash func(OpInfo)

	mu      sync.Mutex
	rules   []*ruleState
	seq     int64
	tracing bool
	trace   []OpInfo
}

type ruleState struct {
	Rule
	hits int
}

// NewInjector wraps base (nil = OS) with an empty schedule: a passthrough
// until SetRules installs faults.
func NewInjector(base FS) *Injector {
	if base == nil {
		base = OS
	}
	return &Injector{base: base, crash: defaultCrash}
}

func defaultCrash(info OpInfo) {
	fmt.Fprintf(os.Stderr, "faultfs: crash point hit: %s\n", info)
	os.Exit(CrashExitCode)
}

// OnCrash replaces the process-abort hook (default: exit CrashExitCode).
// The hook should not return; if it does, the operation proceeds as if no
// rule had fired.
func (in *Injector) OnCrash(fn func(OpInfo)) {
	in.mu.Lock()
	in.crash = fn
	in.mu.Unlock()
}

// SetRules installs a schedule, resetting every rule's match counter. The
// global op sequence keeps running — rules installed mid-workload count
// matches only from now on.
func (in *Injector) SetRules(rules ...Rule) {
	in.mu.Lock()
	in.rules = make([]*ruleState, len(rules))
	for i, r := range rules {
		in.rules[i] = &ruleState{Rule: r}
	}
	in.mu.Unlock()
}

// ClearRules removes every rule: pure passthrough from here on.
func (in *Injector) ClearRules() { in.SetRules() }

// SetTracing toggles op recording (for site enumeration).
func (in *Injector) SetTracing(on bool) {
	in.mu.Lock()
	in.tracing = on
	in.mu.Unlock()
}

// Trace returns a copy of the ops observed while tracing was on.
func (in *Injector) Trace() []OpInfo {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]OpInfo, len(in.trace))
	copy(out, in.trace)
	return out
}

// Ops returns the total operations observed since construction.
func (in *Injector) Ops() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.seq
}

// observe assigns the op its sequence number, records it when tracing, and
// returns the first rule that fires on it (nil for passthrough).
func (in *Injector) observe(op Op, path string) (OpInfo, *Rule) {
	in.mu.Lock()
	in.seq++
	info := OpInfo{Seq: in.seq, Op: op, Path: path}
	if in.tracing {
		in.trace = append(in.trace, info)
	}
	var fired *Rule
	for _, rs := range in.rules {
		if rs.Op != "" && rs.Op != "*" && rs.Op != op {
			continue
		}
		if rs.PathContains != "" && !strings.Contains(path, rs.PathContains) {
			continue
		}
		rs.hits++
		if fired == nil && (rs.Nth == 0 || rs.hits == rs.Nth) {
			r := rs.Rule
			fired = &r
		}
	}
	crash := in.crash
	in.mu.Unlock()
	if fired != nil && fired.Mode == ModeCrashBefore {
		crash(info)
		fired = nil // the hook returned (test override): pass through
	}
	return info, fired
}

// around routes one non-write operation through the schedule. do runs the
// real operation when the fired rule (if any) allows it.
func (in *Injector) around(op Op, path string, do func() error) error {
	info, r := in.observe(op, path)
	if r == nil {
		return do()
	}
	switch r.Mode {
	case ModeErr, ModeShortWrite:
		return &os.PathError{Op: string(op), Path: path, Err: r.errno()}
	case ModeCrashAfter:
		err := do()
		in.crashHook()(info)
		return err
	case ModeTornWrite:
		// Non-write op: nothing to tear, abort before it like ModeCrashBefore.
		in.crashHook()(info)
		return do()
	}
	return do()
}

func (in *Injector) crashHook() func(OpInfo) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crash
}

// --- FS implementation ---

func (in *Injector) Open(name string) (File, error) {
	f, err := in.aroundFile(OpOpen, name, func() (File, error) { return in.base.Open(name) })
	return f, err
}

func (in *Injector) Create(name string) (File, error) {
	return in.aroundFile(OpCreate, name, func() (File, error) { return in.base.Create(name) })
}

func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return in.aroundFile(OpOpenFile, name, func() (File, error) { return in.base.OpenFile(name, flag, perm) })
}

func (in *Injector) aroundFile(op Op, name string, open func() (File, error)) (File, error) {
	info, r := in.observe(op, name)
	if r != nil {
		switch r.Mode {
		case ModeErr, ModeShortWrite:
			return nil, &os.PathError{Op: string(op), Path: name, Err: r.errno()}
		case ModeCrashAfter:
			f, err := open()
			in.crashHook()(info)
			if f != nil {
				return &injFile{f: f, in: in, path: name}, err
			}
			return nil, err
		case ModeTornWrite:
			in.crashHook()(info)
		}
	}
	f, err := open()
	if err != nil {
		return nil, err
	}
	return &injFile{f: f, in: in, path: name}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	return in.around(OpRename, oldpath, func() error { return in.base.Rename(oldpath, newpath) })
}

func (in *Injector) Remove(name string) error {
	return in.around(OpRemove, name, func() error { return in.base.Remove(name) })
}

func (in *Injector) RemoveAll(path string) error {
	return in.around(OpRemoveAll, path, func() error { return in.base.RemoveAll(path) })
}

func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	return in.around(OpMkdirAll, path, func() error { return in.base.MkdirAll(path, perm) })
}

func (in *Injector) ReadFile(name string) ([]byte, error) {
	var data []byte
	err := in.around(OpReadFile, name, func() error {
		var e error
		data, e = in.base.ReadFile(name)
		return e
	})
	return data, err
}

func (in *Injector) WriteFile(name string, data []byte, perm os.FileMode) error {
	return in.around(OpWriteFile, name, func() error { return in.base.WriteFile(name, data, perm) })
}

func (in *Injector) ReadDir(name string) ([]os.DirEntry, error) {
	var ents []os.DirEntry
	err := in.around(OpReadDir, name, func() error {
		var e error
		ents, e = in.base.ReadDir(name)
		return e
	})
	return ents, err
}

func (in *Injector) Stat(name string) (os.FileInfo, error) {
	var fi os.FileInfo
	err := in.around(OpStat, name, func() error {
		var e error
		fi, e = in.base.Stat(name)
		return e
	})
	return fi, err
}

// injFile routes a wrapped file's operations back through the injector.
type injFile struct {
	f    File
	in   *Injector
	path string
}

func (f *injFile) Name() string { return f.path }

func (f *injFile) Read(p []byte) (int, error) {
	var n int
	err := f.in.around(OpRead, f.path, func() error {
		var e error
		n, e = f.f.Read(p)
		return e
	})
	return n, err
}

// Write is the one op with tearing semantics: ModeShortWrite and
// ModeTornWrite persist the first half of p, so a frame's length prefix
// can land without its payload — exactly the shape a crash mid-append
// leaves on a real disk.
func (f *injFile) Write(p []byte) (int, error) {
	info, r := f.in.observe(OpWrite, f.path)
	if r == nil {
		return f.f.Write(p)
	}
	switch r.Mode {
	case ModeErr:
		return 0, &os.PathError{Op: "write", Path: f.path, Err: r.errno()}
	case ModeShortWrite:
		n, err := f.f.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, &os.PathError{Op: "write", Path: f.path, Err: r.errno()}
	case ModeCrashAfter:
		n, err := f.f.Write(p)
		f.in.crashHook()(info)
		return n, err
	case ModeTornWrite:
		n, err := f.f.Write(p[:len(p)/2])
		f.in.crashHook()(info)
		return n, err
	}
	return f.f.Write(p)
}

func (f *injFile) Sync() error {
	return f.in.around(OpSync, f.path, f.f.Sync)
}

func (f *injFile) Close() error {
	return f.in.around(OpClose, f.path, f.f.Close)
}

func (f *injFile) Truncate(size int64) error {
	return f.in.around(OpTruncate, f.path, func() error { return f.f.Truncate(size) })
}

func (f *injFile) Seek(offset int64, whence int) (int64, error) {
	var pos int64
	err := f.in.around(OpSeek, f.path, func() error {
		var e error
		pos, e = f.f.Seek(offset, whence)
		return e
	})
	return pos, err
}

// ParseSchedule parses the compact rule syntax used by env vars, flags and
// docs:
//
//	schedule := rule (';' rule)*
//	rule     := action '@' op ['~' pathsub] ['#' nth]
//	action   := eio | enospc | short | crash | crash-after | torn
//	op       := any Op name, or '*' for every op
//
// Examples: "eio@sync#3" (the third fsync fails with EIO),
// "enospc@write~snap-" (every write to a snapshot file fails ENOSPC),
// "crash@write#17" (abort the process before the 17th write),
// "torn@write~wal-#5" (write half of the 5th WAL write, then abort).
func ParseSchedule(s string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		action, rest, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("faultfs: rule %q: want action@op[~path][#nth]", part)
		}
		var r Rule
		switch action {
		case "eio":
			r.Mode, r.Err = ModeErr, syscall.EIO
		case "enospc":
			r.Mode, r.Err = ModeErr, syscall.ENOSPC
		case "short":
			r.Mode, r.Err = ModeShortWrite, syscall.EIO
		case "crash":
			r.Mode = ModeCrashBefore
		case "crash-after":
			r.Mode = ModeCrashAfter
		case "torn":
			r.Mode = ModeTornWrite
		default:
			return nil, fmt.Errorf("faultfs: rule %q: unknown action %q", part, action)
		}
		opPart := rest
		if before, nth, ok := cutLast(rest, "#"); ok {
			n, err := strconv.Atoi(nth)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("faultfs: rule %q: bad occurrence #%s", part, nth)
			}
			r.Nth = n
			opPart = before
		}
		op, path, _ := strings.Cut(opPart, "~")
		if op != "*" && op != "" {
			r.Op = Op(op)
		}
		r.PathContains = path
		rules = append(rules, r)
	}
	return rules, nil
}

func cutLast(s, sep string) (before, after string, found bool) {
	i := strings.LastIndex(s, sep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+len(sep):], true
}
