package dynamic

import (
	"reflect"
	"testing"

	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

func edgeSet(g *graph.Graph) map[graph.Edge]bool {
	m := make(map[graph.Edge]bool, g.M())
	for _, e := range g.Edges() {
		m[e] = true
	}
	return m
}

// applyNaive replays a mutation sequence through the Builder, the slow
// reference the overlay is checked against.
func applyNaive(t *testing.T, g *graph.Graph, muts []Mutation) *graph.Graph {
	t.Helper()
	type key struct{ u, v graph.V }
	edges := make(map[key]float64)
	n := g.N()
	for _, e := range g.Edges() {
		edges[key{e.From, e.To}] = e.P
	}
	for _, mu := range muts {
		switch mu.Op {
		case OpAddEdge, OpSetProb:
			edges[key{mu.U, mu.V}] = mu.P
		case OpRemoveEdge:
			delete(edges, key{mu.U, mu.V})
		case OpAddVertex:
			n++
		case OpRemoveVertex:
			for k := range edges {
				if k.u == mu.U || k.v == mu.U {
					delete(edges, k)
				}
			}
		}
	}
	b := graph.NewBuilder(n)
	for k, p := range edges {
		b.AddEdge(k.u, k.v, p)
	}
	b.EnsureVertices(n)
	return b.Build()
}

func TestCommitSemanticsAndSnapshot(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(1, 2, 0.25)
	b.AddEdge(2, 3, 0.75)
	g := b.Build()
	d := New(g, Config{})

	muts := []Mutation{
		{Op: OpAddEdge, U: 0, V: 2, P: 0.1},
		{Op: OpSetProb, U: 1, V: 2, P: 0.9},
		{Op: OpRemoveEdge, U: 2, V: 3},
		{Op: OpAddVertex},
		{Op: OpAddEdge, U: 3, V: 4, P: 1},
	}
	info, err := d.Commit(muts)
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 1 || info.Applied != 5 {
		t.Fatalf("info = %+v, want epoch 1 applied 5", info)
	}
	if info.EdgesAdded != 2 || info.EdgesRemoved != 1 || info.ProbsChanged != 1 || info.VerticesAdded != 1 {
		t.Fatalf("counts wrong: %+v", info)
	}
	if !reflect.DeepEqual(info.ChangedSources, []graph.V{0, 1, 2, 3}) {
		t.Fatalf("ChangedSources = %v, want [0 1 2 3]", info.ChangedSources)
	}
	snap, epoch := d.Snapshot()
	if epoch != 1 {
		t.Fatalf("snapshot epoch = %d, want 1", epoch)
	}
	want := applyNaive(t, g, muts)
	if snap.N() != want.N() || !reflect.DeepEqual(edgeSet(snap), edgeSet(want)) {
		t.Fatalf("snapshot mismatch:\n got %v %v\nwant %v %v", snap, snap.Edges(), want, want.Edges())
	}
	// Memoized: same pointer until the next commit.
	snap2, _ := d.Snapshot()
	if snap2 != snap {
		t.Error("snapshot not memoized within an epoch")
	}
	if d.N() != 5 || d.M() != want.M() {
		t.Fatalf("N/M = %d/%d, want %d/%d", d.N(), d.M(), want.N(), want.M())
	}
}

func TestCommitAtomicOnError(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 0.5)
	g := b.Build()
	d := New(g, Config{})

	_, err := d.Commit([]Mutation{
		{Op: OpAddEdge, U: 1, V: 2, P: 0.5}, // fine
		{Op: OpAddEdge, U: 0, V: 1, P: 0.5}, // duplicate → whole batch must fail
	})
	if err == nil {
		t.Fatal("duplicate add-edge must fail")
	}
	if d.Epoch() != 0 || d.M() != 1 {
		t.Fatalf("failed batch mutated the graph: epoch=%d m=%d", d.Epoch(), d.M())
	}
	snap, _ := d.Snapshot()
	if snap != g {
		t.Error("unmutated graph must snapshot to the base itself")
	}

	for _, bad := range []Mutation{
		{Op: OpAddEdge, U: 0, V: 3, P: 0.5},   // target out of range
		{Op: OpAddEdge, U: 0, V: 0, P: 0.5},   // self-loop
		{Op: OpAddEdge, U: 0, V: 2, P: 1.5},   // probability out of range
		{Op: OpSetProb, U: 0, V: 2, P: 0.5},   // absent edge
		{Op: OpRemoveEdge, U: 2, V: 0},        // absent edge
		{Op: OpRemoveVertex, U: -1},           // bad id
		{Op: Op("rename-vertex"), U: 0, V: 1}, // unknown op
	} {
		if _, err := d.Commit([]Mutation{bad}); err == nil {
			t.Errorf("mutation %+v must fail", bad)
		}
	}
	if d.Epoch() != 0 {
		t.Fatalf("failed batches advanced the epoch to %d", d.Epoch())
	}
}

func TestCommitEmptyBatchIsNoOp(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 0.5)
	g := b.Build()
	d := New(g, Config{})
	snap0, _ := d.Snapshot()

	info, err := d.Commit(nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 0 || info.N != 3 || info.M != 1 {
		t.Fatalf("empty commit info = %+v, want current state at epoch 0", info)
	}
	if d.Epoch() != 0 || d.Stats().Batches != 0 {
		t.Fatalf("empty commit advanced state: epoch=%d stats=%+v", d.Epoch(), d.Stats())
	}
	if snap1, _ := d.Snapshot(); snap1 != snap0 {
		t.Fatal("empty commit invalidated the memoized snapshot")
	}
}

// TestRemoveVertexChainUsesReverseIndex drives a removal-heavy batch mixed
// with edge ops — the pattern the lazy reverse index exists for — and
// checks the result against the naive replay.
func TestRemoveVertexChainUsesReverseIndex(t *testing.T) {
	r := rng.New(5)
	b := graph.NewBuilder(30)
	for i := 0; i < 120; i++ {
		b.AddEdge(graph.V(r.Intn(30)), graph.V(r.Intn(30)), r.Float64())
	}
	g := b.Build()
	d := New(g, Config{})

	muts := []Mutation{
		{Op: OpRemoveVertex, U: 3},
		{Op: OpRemoveVertex, U: 7},
		{Op: OpAddEdge, U: 3, V: 7, P: 0.5}, // re-attach a tombstone mid-batch
		{Op: OpRemoveVertex, U: 11},
		{Op: OpRemoveVertex, U: 3}, // and remove it again
		{Op: OpRemoveVertex, U: 19},
	}
	if _, err := d.Commit(muts); err != nil {
		t.Fatal(err)
	}
	snap, _ := d.Snapshot()
	want := applyNaive(t, g, muts)
	if snap.N() != want.N() || !reflect.DeepEqual(edgeSet(snap), edgeSet(want)) {
		t.Fatalf("removal chain diverged from naive replay:\n got %v\nwant %v", snap.Edges(), want.Edges())
	}
	for _, u := range []graph.V{3, 7, 11, 19} {
		if snap.OutDegree(u) != 0 || snap.InDegree(u) != 0 {
			t.Fatalf("vertex %d not fully isolated", u)
		}
	}
}

func TestRemoveVertexIsolatesTombstone(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(1, 2, 0.5)
	b.AddEdge(2, 1, 0.5)
	b.AddEdge(3, 1, 0.5)
	g := b.Build()
	d := New(g, Config{})

	info, err := d.Commit([]Mutation{{Op: OpRemoveVertex, U: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if info.EdgesRemoved != 4 || info.VerticesRemoved != 1 {
		t.Fatalf("info = %+v, want 4 edges removed", info)
	}
	// Changed sources: every vertex whose out-row changed — 0, 2, 3 lose an
	// out-edge and 1 loses its whole row.
	if !reflect.DeepEqual(info.ChangedSources, []graph.V{0, 1, 2, 3}) {
		t.Fatalf("ChangedSources = %v", info.ChangedSources)
	}
	snap, _ := d.Snapshot()
	if snap.N() != 4 || snap.M() != 0 {
		t.Fatalf("snapshot = %v, want 4 isolated vertices", snap)
	}
	// The id space is stable: a later batch can re-attach the tombstone.
	if _, err := d.Commit([]Mutation{{Op: OpAddEdge, U: 1, V: 3, P: 0.5}}); err != nil {
		t.Fatal(err)
	}
}

func TestChangedSinceUnionAndTrim(t *testing.T) {
	b := graph.NewBuilder(10)
	for u := graph.V(0); u < 9; u++ {
		b.AddEdge(u, u+1, 0.5)
	}
	g := b.Build()
	d := New(g, Config{ChangelogLimit: 3})

	for i := 0; i < 5; i++ {
		if _, err := d.Commit([]Mutation{{Op: OpSetProb, U: graph.V(i), V: graph.V(i + 1), P: 0.25}}); err != nil {
			t.Fatal(err)
		}
	}
	// Epochs 1..5 committed, changelog keeps 3..5 (floor = 2). Batch i
	// set-probs edge (i, i+1): source i, target i+1.
	if src, tgt, ok := d.ChangedSince(2); !ok ||
		!reflect.DeepEqual(src, []graph.V{2, 3, 4}) || !reflect.DeepEqual(tgt, []graph.V{3, 4, 5}) {
		t.Fatalf("ChangedSince(2) = %v, %v, %v", src, tgt, ok)
	}
	if src, tgt, ok := d.ChangedSince(4); !ok ||
		!reflect.DeepEqual(src, []graph.V{4}) || !reflect.DeepEqual(tgt, []graph.V{5}) {
		t.Fatalf("ChangedSince(4) = %v, %v, %v", src, tgt, ok)
	}
	if src, tgt, ok := d.ChangedSince(5); !ok || src != nil || tgt != nil {
		t.Fatalf("ChangedSince(current) = %v, %v, %v, want nil, nil, true", src, tgt, ok)
	}
	if _, _, ok := d.ChangedSince(1); ok {
		t.Fatal("ChangedSince below the floor must report not-ok")
	}
	if _, _, ok := d.ChangedSince(7); ok {
		t.Fatal("ChangedSince of a future epoch must report not-ok")
	}
}

func TestCompactionTriggersAndPreservesState(t *testing.T) {
	b := graph.NewBuilder(6)
	for u := graph.V(0); u < 5; u++ {
		b.AddEdge(u, u+1, 0.5)
	}
	g := b.Build()
	d := New(g, Config{CompactMinDeltas: 3, CompactFraction: 1e-9})

	info1, err := d.Commit([]Mutation{{Op: OpSetProb, U: 0, V: 1, P: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if info1.Compacted {
		t.Fatal("one delta must not compact at threshold 3")
	}
	info2, err := d.Commit([]Mutation{
		{Op: OpSetProb, U: 1, V: 2, P: 0.2},
		{Op: OpAddEdge, U: 0, V: 3, P: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !info2.Compacted {
		t.Fatal("three deltas must compact at threshold 3")
	}
	st := d.Stats()
	if st.Compactions != 1 || st.OverlayRows != 0 || st.DeltasSinceCompact != 0 {
		t.Fatalf("stats after compaction = %+v", st)
	}
	// Post-compaction state must be intact and further mutations must work.
	snap, epoch := d.Snapshot()
	if epoch != 2 {
		t.Fatalf("epoch = %d, want 2", epoch)
	}
	if p := snap.Prob(0, 3); p != 0.3 {
		t.Fatalf("Prob(0,3) = %v after compaction", p)
	}
	if _, err := d.Commit([]Mutation{{Op: OpRemoveEdge, U: 0, V: 3}}); err != nil {
		t.Fatal(err)
	}
	snap2, _ := d.Snapshot()
	if snap2.HasEdge(0, 3) {
		t.Fatal("remove after compaction not applied")
	}
	// Repair info survives compaction: the changelog is epoch-based.
	if src, _, ok := d.ChangedSince(0); !ok || !reflect.DeepEqual(src, []graph.V{0, 1}) {
		t.Fatalf("ChangedSince(0) after compaction = %v, %v", src, ok)
	}
}

// TestRandomizedAgainstNaive drives random mutation batches and checks every
// epoch's snapshot against the Builder-based reference replay.
func TestRandomizedAgainstNaive(t *testing.T) {
	r := rng.New(7)
	base := graph.NewBuilder(12)
	for i := 0; i < 30; i++ {
		base.AddEdge(graph.V(r.Intn(12)), graph.V(r.Intn(12)), r.Float64())
	}
	g := base.Build()
	d := New(g, Config{CompactMinDeltas: 10, CompactFraction: 1e-9})

	var all []Mutation
	for batch := 0; batch < 15; batch++ {
		var muts []Mutation
		snap, _ := d.Snapshot()
		for len(muts) < 4 {
			u := graph.V(r.Intn(snap.N()))
			v := graph.V(r.Intn(snap.N()))
			switch r.Intn(5) {
			case 0:
				if u != v && !snap.HasEdge(u, v) && !hasPending(muts, u, v) {
					muts = append(muts, Mutation{Op: OpAddEdge, U: u, V: v, P: r.Float64()})
				}
			case 1:
				if snap.HasEdge(u, v) && !touchesPending(muts, u, v) {
					muts = append(muts, Mutation{Op: OpRemoveEdge, U: u, V: v})
				}
			case 2:
				if snap.HasEdge(u, v) && !touchesPending(muts, u, v) {
					muts = append(muts, Mutation{Op: OpSetProb, U: u, V: v, P: r.Float64()})
				}
			case 3:
				muts = append(muts, Mutation{Op: OpAddVertex})
			case 4:
				if r.Intn(4) == 0 && !touchesVertexPending(muts, u) {
					muts = append(muts, Mutation{Op: OpRemoveVertex, U: u})
				}
			}
		}
		if _, err := d.Commit(muts); err != nil {
			t.Fatalf("batch %d (%v): %v", batch, muts, err)
		}
		all = append(all, muts...)
		snap, epoch := d.Snapshot()
		if epoch != uint64(batch+1) {
			t.Fatalf("epoch = %d, want %d", epoch, batch+1)
		}
		want := applyNaive(t, g, all)
		if snap.N() != want.N() || !reflect.DeepEqual(edgeSet(snap), edgeSet(want)) {
			t.Fatalf("batch %d snapshot diverged from naive replay", batch)
		}
	}
	if d.Stats().Compactions == 0 {
		t.Error("randomized run at threshold 10 never compacted")
	}
}

// The pending-mutation guards keep the random batches valid: batches are
// validated against the graph at batch start plus earlier ops in the batch,
// and the naive replay applies ops with upsert semantics, so ops touching
// the same edge or vertex within one batch are skipped.
func hasPending(muts []Mutation, u, v graph.V) bool {
	for _, m := range muts {
		if (m.Op == OpAddEdge && m.U == u && m.V == v) || (m.Op == OpRemoveVertex && (m.U == u || m.U == v)) {
			return true
		}
	}
	return false
}

func touchesPending(muts []Mutation, u, v graph.V) bool {
	for _, m := range muts {
		switch m.Op {
		case OpAddEdge, OpRemoveEdge, OpSetProb:
			if m.U == u && m.V == v {
				return true
			}
		case OpRemoveVertex:
			if m.U == u || m.U == v {
				return true
			}
		}
	}
	return false
}

func touchesVertexPending(muts []Mutation, u graph.V) bool {
	for _, m := range muts {
		switch m.Op {
		case OpAddEdge, OpRemoveEdge, OpSetProb:
			if m.U == u || m.V == u {
				return true
			}
		case OpRemoveVertex:
			if m.U == u {
				return true
			}
		case OpAddVertex:
			return true // vertex count drift would desync ids
		}
	}
	return false
}

// TestSnapshotCommitConcurrent hammers Snapshot against a committing
// goroutine: under -race this pins down the memo fast path (snap and
// snapEpoch must be captured under the read lock), and the epoch sequence
// observed by readers must be monotone.
func TestSnapshotCommitConcurrent(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(1, 2, 0.5)
	g := b.Build()
	d := New(g, Config{})

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 300; i++ {
			p := float64(i%9+1) / 10
			if _, err := d.Commit([]Mutation{{Op: OpSetProb, U: 0, V: 1, P: p}}); err != nil {
				t.Errorf("commit %d: %v", i, err)
				return
			}
		}
	}()
	var last uint64
	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		snap, epoch := d.Snapshot()
		if snap == nil {
			t.Fatal("nil snapshot")
		}
		if epoch < last {
			t.Fatalf("epoch went backwards: %d after %d", epoch, last)
		}
		last = epoch
	}
	snap, epoch := d.Snapshot()
	if epoch != 300 || snap.Prob(0, 1) != float64(300%9)/10 {
		t.Fatalf("final state: epoch=%d p=%v", epoch, snap.Prob(0, 1))
	}
}
