package core

import (
	"sync"

	"github.com/imin-dev/imin/internal/cascade"
	"github.com/imin-dev/imin/internal/dominator"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// IncrementalPooledEstimator is the delta-maintained version of
// PooledEstimator. Blocking (or unblocking) a vertex x can only change the
// filtered dominator computation of samples whose reachable region contains
// x, so instead of re-scanning all θ samples every round it
//
//  1. diffs the requested blocker set against the one the cache reflects,
//  2. collects the dirty samples through the pool's inverted index,
//  3. subtracts each dirty sample's cached per-vertex subtree-size
//     contributions from a persistent int64 accumulator, re-runs the
//     filtered dominator computation on just those samples, and adds the
//     new contributions back.
//
// A round therefore costs O(θ_x·m̄ + n) where θ_x is the number of samples
// containing the flipped vertices — on real graphs a small fraction of θ —
// against PooledEstimator's O(θ·m̄). The O(n) term (the diff scan and the
// dst fill) is shared with every other estimator.
//
// Equivalence: contributions are exact int64 values and integer addition is
// associative and commutative, so the maintained accumulator always equals
// the full re-scan's per-worker sums, and DecreaseES output is bit-identical
// to PooledEstimator over the same pool for every blocker sequence (the
// cross-validation tests assert this). The estimator carries mutable state
// and admits one DecreaseES caller at a time, like Estimator; the state
// survives across solves, so a warm session's later runs on the same pool
// only reprocess samples touched by the previous run's blockers.
type IncrementalPooledEstimator struct {
	pool    *SamplePool
	workers int
	domAlgo DomAlgo

	primed      bool
	prevBlocked []bool    // blocker set the cache reflects
	acc         []int64   // acc[u] = Σ over samples of u's cached subtree size
	vals        []float64 // vals[u] = float64(acc[u])/θ, maintained at touched entries

	// Per-sample contribution cache in arena form: sample i's entries
	// occupy the first contribLen[i] slots of
	// contrib{Vert,Size}[pool.vertStart[i]:], which fits because a sample
	// contributes at most K_i−1 (vertex, size) pairs. Slots of distinct
	// samples are disjoint, so dirty samples are recomputed in parallel.
	contribLen  []int32
	contribVert []graph.V
	contribSize []int32

	dirty     []int32 // scratch: dirty sample ids for the current round
	dirtyMark []bool  // dedup over samples, cleared after each round
	scratch   []*incWorker

	rounds      int64 // DecreaseES calls answered
	reprocessed int64 // dirty samples recomputed across all rounds
}

type incWorker struct {
	filterScratch
	delta   []int64   // pending acc deltas, only touched entries nonzero
	touched []graph.V // vertices with pending deltas
	marked  []bool    // dedup for touched
}

// NewIncrementalPooledEstimator draws theta samples into a fresh pool and
// wraps it. workers <= 0 selects GOMAXPROCS.
func NewIncrementalPooledEstimator(sampler cascade.LiveSampler, src graph.V, theta, workers int, domAlgo DomAlgo, base *rng.Source) *IncrementalPooledEstimator {
	return NewIncrementalPooledEstimatorFromPool(NewSamplePool(sampler, src, theta, workers, base), workers, domAlgo)
}

// NewIncrementalPooledEstimatorFromPool wraps an existing (possibly shared)
// pool. The estimator's first DecreaseES call processes every sample to
// prime the accumulator; later calls are incremental.
func NewIncrementalPooledEstimatorFromPool(pool *SamplePool, workers int, domAlgo DomAlgo) *IncrementalPooledEstimator {
	n := pool.g.N()
	return &IncrementalPooledEstimator{
		pool:        pool,
		workers:     poolWorkers(workers, pool.Theta()),
		domAlgo:     domAlgo,
		prevBlocked: make([]bool, n),
		acc:         make([]int64, n),
		vals:        make([]float64, n),
		contribLen:  make([]int32, pool.Theta()),
		contribVert: make([]graph.V, len(pool.vertOrig)),
		contribSize: make([]int32, len(pool.vertOrig)),
		dirtyMark:   make([]bool, pool.Theta()),
	}
}

// Theta returns the stored sample count.
func (e *IncrementalPooledEstimator) Theta() int { return e.pool.Theta() }

// Pool returns the backing sample pool.
func (e *IncrementalPooledEstimator) Pool() *SamplePool { return e.pool }

func (e *IncrementalPooledEstimator) worker(w int) *incWorker {
	for len(e.scratch) <= w {
		e.scratch = append(e.scratch, &incWorker{
			filterScratch: newFilterScratch(),
			delta:         make([]int64, e.pool.g.N()),
			marked:        make([]bool, e.pool.g.N()),
		})
	}
	return e.scratch[w]
}

// DecreaseES estimates Δ[u] on G[V\B] for every vertex from the stored
// pool, writing into dst (length ≥ n). Output is bit-identical to
// PooledEstimator.DecreaseES over the same pool; only samples containing a
// vertex whose blocked state changed since the previous call are
// re-processed. The changed vertices are found by diffing blocked against
// the previous call's set; callers that track their own mutations can hand
// them over through DecreaseESFlips and skip the O(n) diff.
func (e *IncrementalPooledEstimator) DecreaseES(dst []float64, blocked []bool) {
	e.decreaseES(dst, blocked, nil, false)
}

// DecreaseESFlips is DecreaseES with the exact set of vertices whose
// blocked state changed since the previous call, as known by the caller
// (the greedy loops flip one or two vertices per round). flips may contain
// duplicates; a vertex flipped twice (net no-op) only costs wasted
// reprocessing. An incomplete flips list silently corrupts the cache, so
// callers must report every mutation. Ignored (full scan) before priming.
func (e *IncrementalPooledEstimator) DecreaseESFlips(dst []float64, blocked []bool, flips []graph.V) {
	e.decreaseES(dst, blocked, flips, true)
}

func (e *IncrementalPooledEstimator) decreaseES(dst []float64, blocked []bool, flips []graph.V, haveFlips bool) {
	n := e.pool.g.N()
	theta := e.pool.Theta()
	e.rounds++

	e.dirty = e.dirty[:0]
	switch {
	case !e.primed:
		for i := 0; i < theta; i++ {
			e.dirty = append(e.dirty, int32(i))
		}
		e.primed = true
		if blocked == nil {
			for v := range e.prevBlocked {
				e.prevBlocked[v] = false
			}
		} else {
			copy(e.prevBlocked, blocked[:n])
		}
	case haveFlips:
		for _, v := range flips {
			nb := blocked != nil && blocked[v]
			if nb == e.prevBlocked[v] {
				continue // duplicate flip, net no-op
			}
			e.prevBlocked[v] = nb
			for _, i := range e.pool.SamplesContaining(v) {
				if !e.dirtyMark[i] {
					e.dirtyMark[i] = true
					e.dirty = append(e.dirty, i)
				}
			}
		}
		for _, i := range e.dirty {
			e.dirtyMark[i] = false
		}
	default:
		for v := 0; v < n; v++ {
			nb := blocked != nil && blocked[v]
			if nb == e.prevBlocked[v] {
				continue
			}
			e.prevBlocked[v] = nb
			for _, i := range e.pool.SamplesContaining(graph.V(v)) {
				if !e.dirtyMark[i] {
					e.dirtyMark[i] = true
					e.dirty = append(e.dirty, i)
				}
			}
		}
		for _, i := range e.dirty {
			e.dirtyMark[i] = false
		}
	}
	e.reprocessed += int64(len(e.dirty))

	if len(e.dirty) > 0 {
		workers := e.workers
		if workers > len(e.dirty) {
			workers = len(e.dirty)
		}
		// Small dirty sets run inline: spawning and joining W goroutines
		// costs more than a few dozen tiny dominator runs.
		if len(e.dirty) <= 32 {
			workers = 1
		}
		if workers == 1 {
			st := e.worker(0)
			for _, i := range e.dirty {
				e.reprocess(st, i, blocked)
			}
		} else {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				lo := w * len(e.dirty) / workers
				hi := (w + 1) * len(e.dirty) / workers
				st := e.worker(w)
				wg.Add(1)
				go func(st *incWorker, lo, hi int) {
					defer wg.Done()
					for _, i := range e.dirty[lo:hi] {
						e.reprocess(st, i, blocked)
					}
				}(st, lo, hi)
			}
			wg.Wait()
		}
		// Fold the per-worker deltas into the shared accumulator; touched
		// lists may overlap across workers, so this stays serial. int64
		// addition commutes exactly, so the fold order never changes acc.
		// vals is refreshed at exactly the entries whose acc moved — the
		// same float64(acc)·θ⁻¹ expression PooledEstimator evaluates, so
		// the cached vector stays bit-identical to a full recompute.
		inv := 1 / float64(theta)
		for w := 0; w < workers; w++ {
			st := e.scratch[w]
			for _, v := range st.touched {
				e.acc[v] += st.delta[v]
				e.vals[v] = float64(e.acc[v]) * inv
				st.delta[v] = 0
				st.marked[v] = false
			}
			st.touched = st.touched[:0]
		}
	}

	copy(dst[:n], e.vals)
	dst[e.pool.src] = 0
}

// reprocess retracts sample i's cached contributions, recomputes its
// filtered dominator tree under the new blocker set, and caches the result,
// recording the net change in the worker's delta buffer.
func (e *IncrementalPooledEstimator) reprocess(st *incWorker, i int32, blocked []bool) {
	base := e.pool.vertStart[i]
	old := int64(e.contribLen[i])
	for j := base; j < base+old; j++ {
		st.addDelta(e.contribVert[j], -int64(e.contribSize[j]))
	}

	var s sampleView
	e.pool.view(int(i), &s)
	forig, sizes := st.dominateSample(&s, blocked, e.domAlgo)
	e.contribLen[i] = int32(len(forig) - 1)
	for fl := 1; fl < len(forig); fl++ {
		v, sz := forig[fl], sizes[fl]
		e.contribVert[base+int64(fl-1)] = v
		e.contribSize[base+int64(fl-1)] = sz
		st.addDelta(v, int64(sz))
	}
}

// dominateSample computes per-vertex dominator-subtree sizes for one stored
// sample under the current blocker set. When the sample contains no blocked
// vertex — every priming-round sample, and dirty samples whose flips were
// all unblocks — the arena CSR already is the flow graph, so the filter BFS
// and CSR rebuild are skipped and the dominator computation runs straight
// off pool memory. Dominator trees are unique per flow graph, so both paths
// return identical (vertex, size) contributions.
func (st *incWorker) dominateSample(s *sampleView, blocked []bool, domAlgo DomAlgo) ([]graph.V, []int32) {
	if blocked != nil {
		for _, v := range s.orig {
			if blocked[v] {
				return st.filterAndDominate(s, blocked, domAlgo)
			}
		}
	}
	fg := dominator.FlowGraph{N: len(s.orig), OutStart: s.outStart, OutTo: s.outTo, InStart: s.inStart, InTo: s.inTo}
	return s.orig, st.runDominators(&fg, domAlgo)
}

func (st *incWorker) addDelta(v graph.V, d int64) {
	if !st.marked[v] {
		st.marked[v] = true
		st.touched = append(st.touched, v)
	}
	st.delta[v] += d
}

// IncrementalStats reports the estimator's lifetime work counters.
type IncrementalStats struct {
	// Rounds is the number of DecreaseES calls answered.
	Rounds int64
	// SamplesReprocessed is the total number of dirty samples recomputed;
	// a full re-scan per round would make this Rounds × Theta.
	SamplesReprocessed int64
}

// Stats returns the work counters. Call between DecreaseES calls.
func (e *IncrementalPooledEstimator) Stats() IncrementalStats {
	return IncrementalStats{Rounds: e.rounds, SamplesReprocessed: e.reprocessed}
}

// MemoryBytes reports the pool plus the estimator's own resident footprint:
// accumulator, cached value vector, contribution arena, previous-blocker
// mask, and the per-worker scratch allocated so far (each worker holds an
// O(n) delta array — on large graphs that dwarfs the arena itself).
func (e *IncrementalPooledEstimator) MemoryBytes() int64 {
	total := e.pool.MemoryBytes() +
		int64(len(e.acc))*8 + int64(len(e.vals))*8 +
		int64(len(e.contribVert))*4 + int64(len(e.contribSize))*4 +
		int64(len(e.contribLen))*4 +
		int64(len(e.prevBlocked)) + int64(len(e.dirtyMark)) +
		int64(cap(e.dirty))*4
	for _, st := range e.scratch {
		total += int64(len(st.delta))*8 + int64(len(st.marked)) + int64(cap(st.touched))*4
	}
	return total
}
