package service

import (
	"context"
	"errors"
	"net/http"
	"time"

	"github.com/imin-dev/imin/internal/diag"
	"github.com/imin-dev/imin/internal/obs"
)

// This file is the serving side of the flight recorder (internal/diag):
// per-route SLO watchdogs whose breaches capture diagnostic bundles, the
// cost-model histograms, and the GET /debug/bundles surface.

// noteSolveSLO is the solve-route watchdog, run from solveOne's exit path.
// A breach counts a metric, logs at warn with the request id, and hands the
// finished trace plus the ring to the flight recorder.
func (s *Server) noteSolveSLO(ctx context.Context, graphName string, elapsed time.Duration, trace *obs.TraceOut, aerr *apiError) {
	if s.cfg.SLOSolve <= 0 || elapsed <= s.cfg.SLOSolve {
		return
	}
	s.metrics.sloBreaches.With("solve").Inc()
	s.logger.Warn("solve latency objective breached",
		"graph", graphName, "request_id", RequestID(ctx),
		"elapsed", elapsed, "slo", s.cfg.SLOSolve)
	detail := ""
	if aerr != nil {
		detail = aerr.msg
	}
	s.captureBundle(diag.Trigger{
		Reason:    "slo_solve",
		Route:     "solve",
		Graph:     graphName,
		RequestID: RequestID(ctx),
		SLOMS:     float64(s.cfg.SLOSolve) / float64(time.Millisecond),
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
		Detail:    detail,
	}, trace)
}

// noteMutateSLO is the mutate-route watchdog, covering the whole handler:
// decode, commit+WAL append, and the eager session migration.
func (s *Server) noteMutateSLO(ctx context.Context, graphName string, elapsed time.Duration) {
	if s.cfg.SLOMutate <= 0 || elapsed <= s.cfg.SLOMutate {
		return
	}
	s.metrics.sloBreaches.With("mutate").Inc()
	s.logger.Warn("mutate latency objective breached",
		"graph", graphName, "request_id", RequestID(ctx),
		"elapsed", elapsed, "slo", s.cfg.SLOMutate)
	s.captureBundle(diag.Trigger{
		Reason:    "slo_mutate",
		Route:     "mutate",
		Graph:     graphName,
		RequestID: RequestID(ctx),
		SLOMS:     float64(s.cfg.SLOMutate) / float64(time.Millisecond),
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	}, nil)
}

// captureBundle hands one diagnostic snapshot to the flight recorder off
// the request path (same bgWG discipline as background checkpoints, so
// Close never races a capture against shutdown). The ring is snapshotted
// synchronously — it must reflect the moment of the breach, not whatever
// the ring holds when the goroutine gets scheduled.
func (s *Server) captureBundle(trig diag.Trigger, trace *obs.TraceOut) {
	if s.diag == nil || s.closed.Load() {
		return
	}
	ring := s.traces.Snapshot()
	s.bgWG.Add(1)
	go func() {
		defer s.bgWG.Done()
		id, err := s.diag.Capture(trig, trace, ring)
		switch {
		case err != nil:
			s.metrics.bundleErrors.Inc()
			s.logger.Error("diagnostic bundle capture failed",
				"reason", trig.Reason, "graph", trig.Graph,
				"request_id", trig.RequestID, "error", err.Error())
		case id == "":
			s.metrics.bundlesSkipped.Inc()
		default:
			s.metrics.bundles.Inc()
			s.logger.Info("diagnostic bundle captured",
				"bundle", id, "reason", trig.Reason, "graph", trig.Graph,
				"request_id", trig.RequestID)
		}
	}()
}

// observeCost lands one solve's cost block on the labeled histograms, so
// dashboards see the phase/sample distributions the JSON block reports
// per request.
func (s *Server) observeCost(c *diag.SolveCost) {
	m := s.metrics
	m.costSeconds.With("queue_session").Observe(float64(c.QueueSessionNS) / 1e9)
	m.costSeconds.With("queue_slot").Observe(float64(c.QueueSlotNS) / 1e9)
	m.costSeconds.With("solve").Observe(float64(c.SolveNS) / 1e9)
	if c.MigrateNS > 0 {
		m.costSeconds.With("migrate").Observe(float64(c.MigrateNS) / 1e9)
	}
	if c.EvalNS > 0 {
		m.costSeconds.With("eval").Observe(float64(c.EvalNS) / 1e9)
	}
	m.costSamples.With("drawn").Observe(float64(c.SamplesDrawn))
	m.costSamples.With("dirty").Observe(float64(c.SamplesDirty))
	if c.SamplesStolen > 0 {
		m.costSamples.With("stolen").Observe(float64(c.SamplesStolen))
	}
	if c.SamplesRedrawn > 0 {
		m.costSamples.With("redrawn").Observe(float64(c.SamplesRedrawn))
	}
}

// handleBundles answers GET /debug/bundles with the recorder's retained
// bundles, newest first.
func (s *Server) handleBundles(w http.ResponseWriter, r *http.Request) {
	if s.diag == nil {
		writeErr(w, http.StatusNotFound, "flight recorder disabled: start the server with -diag-dir")
		return
	}
	infos, err := s.diag.List()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "listing bundles: %v", err)
		return
	}
	if infos == nil {
		infos = []diag.BundleInfo{}
	}
	writeJSON(w, http.StatusOK, BundlesResponse{Bundles: infos})
}

// handleBundle answers GET /debug/bundles/{id} with one bundle's JSON.
func (s *Server) handleBundle(w http.ResponseWriter, r *http.Request) {
	if s.diag == nil {
		writeErr(w, http.StatusNotFound, "flight recorder disabled: start the server with -diag-dir")
		return
	}
	data, err := s.diag.Read(r.PathValue("id"))
	if errors.Is(err, diag.ErrNotFound) {
		writeErr(w, http.StatusNotFound, "unknown bundle %q", r.PathValue("id"))
		return
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "reading bundle: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}
