// Negative errsink fixture: checked errors, explicit cleanup discards,
// and read-only closes stay silent.
package fixture

import "os"

type wal struct{ f *os.File }

func (w *wal) Append(b []byte) error { _, err := w.f.Write(b); return err }

func ack(w *wal, b []byte) error {
	return w.Append(b)
}

func writeThenCleanup(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("x")); err != nil {
		_ = f.Close() // explicit discard on a cleanup path is a decision
		_ = os.Remove(path)
		return err
	}
	return f.Close()
}

func readOnly(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close() // closing a read-only file cannot lose writes
	var b [8]byte
	_, err = f.Read(b[:])
	return err
}
