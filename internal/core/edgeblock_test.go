package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/imin-dev/imin/internal/exact"
	"github.com/imin-dev/imin/internal/fixture"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

func TestEdgeEstimatorMatchesExactOnToy(t *testing.T) {
	// For each edge of the toy graph, the estimated spread decrease must
	// match the exact spread difference after removing that edge.
	g := fixture.Toy()
	aug, super := g.AugmentSuperSource([]graph.V{fixture.Seed})
	est := newEdgeEstimator(aug, super, Options{Workers: 4}.withDefaults())
	delta := make([]float64, aug.M())
	est.decreaseES(delta, 150000, rng.New(1))

	base, err := exact.Spread(g, fixture.Seed, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		removed, err := exact.Spread(g.RemoveEdges([][2]graph.V{{e.From, e.To}}), fixture.Seed, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := base - removed
		idx := aug.OutEdgeIndex(e.From, e.To)
		if idx < 0 {
			t.Fatalf("edge (%d,%d) missing from augmented graph", e.From, e.To)
		}
		if math.Abs(delta[idx]-want) > 0.03 {
			t.Errorf("edge (v%d,v%d): Δ = %v, want %v", e.From+1, e.To+1, delta[idx], want)
		}
	}
}

func TestSolveEdgesToy(t *testing.T) {
	// The single best edge to block in the toy graph: removing an edge
	// into v5 still leaves the other path, so the best cut is one of the
	// two-edge bridges... compute: removing (v2,v5) or (v4,v5) changes
	// nothing (other path has p=1): Δ=0. Removing (v5,v9): loses v9 and
	// most of v8/v7: Δ = 1 + (0.6-0.5) + (0.06-0.05) = 1.11. Removing
	// (v1,v2)/(v1,v4): Δ=1 (only that leaf). Removing (v5,v3)/(v5,v6):
	// Δ=1. Removing (v5,v8): Δ = 0.4+0.04 = 0.44. So the optimum is
	// (v5,v9) with 1.11.
	g := fixture.Toy()
	res, err := SolveEdges(g, []graph.V{fixture.Seed}, 1, Options{Theta: 30000, Workers: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) != 1 {
		t.Fatalf("got %d edges", len(res.Edges))
	}
	e := res.Edges[0]
	if e.From != fixture.V5 || e.To != fixture.V9 {
		t.Fatalf("blocked edge (v%d,v%d), want (v5,v9)", e.From+1, e.To+1)
	}
	if res.SampledGraphs != 30000 {
		t.Errorf("sample accounting: %d", res.SampledGraphs)
	}
}

func TestSolveEdgesNeverPicksSyntheticSeedEdges(t *testing.T) {
	g := fixture.Toy()
	res, err := SolveEdges(g, []graph.V{fixture.V2, fixture.V4}, 3, Options{Theta: 3000, Workers: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Edges {
		if int(e.From) >= g.N() || int(e.To) >= g.N() {
			t.Fatalf("synthetic super-source edge leaked: %+v", e)
		}
		if !g.HasEdge(e.From, e.To) {
			t.Fatalf("chosen edge (%d,%d) does not exist in the input", e.From, e.To)
		}
	}
}

func TestSolveEdgesBudgetAndErrors(t *testing.T) {
	g := fixture.Toy()
	if _, err := SolveEdges(g, nil, 1, Options{}); err == nil {
		t.Error("empty seeds must error")
	}
	if _, err := SolveEdges(g, []graph.V{99}, 1, Options{}); err == nil {
		t.Error("bad seed must error")
	}
	if _, err := SolveEdges(g, []graph.V{0}, -1, Options{}); err == nil {
		t.Error("negative budget must error")
	}
	res, err := SolveEdges(g, []graph.V{0}, 0, Options{Theta: 100})
	if err != nil || len(res.Edges) != 0 {
		t.Errorf("b=0: %v %v", res.Edges, err)
	}
}

func TestSolveEdgesReducesSpreadMonotonically(t *testing.T) {
	// Each chosen edge must not increase the spread; collectively they
	// should reduce it substantially on the toy graph.
	g := fixture.Toy()
	res, err := SolveEdges(g, []graph.V{fixture.Seed}, 3, Options{Theta: 20000, Workers: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) != 3 {
		t.Fatalf("got %d edges", len(res.Edges))
	}
	base, _ := exact.Spread(g, fixture.Seed, nil, 0)
	var removed [][2]graph.V
	prev := base
	cur := g
	for _, e := range res.Edges {
		removed = append(removed, [2]graph.V{e.From, e.To})
		cur = g.RemoveEdges(removed)
		s, err := exact.Spread(cur, fixture.Seed, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if s > prev+1e-9 {
			t.Fatalf("spread rose from %v to %v after removing (%d,%d)", prev, s, e.From, e.To)
		}
		prev = s
	}
	if base-prev < 2 {
		t.Errorf("3 blocked edges only saved %v spread", base-prev)
	}
}

// Property: on random graphs, every per-edge estimate stays within noise
// of the exact spread difference (the edge-split dominator argument).
func TestEdgeEstimatorExactProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(7) + 3
		b := graph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			b.AddEdge(graph.V(r.Intn(n)), graph.V(r.Intn(n)), float64(r.Intn(4))*0.25+0.25)
		}
		g := b.Build()
		base, err := exact.Spread(g, 0, nil, 0)
		if err != nil {
			return true
		}
		aug, super := g.AugmentSuperSource([]graph.V{0})
		est := newEdgeEstimator(aug, super, Options{Workers: 2}.withDefaults())
		delta := make([]float64, aug.M())
		est.decreaseES(delta, 50000, rng.New(seed+1))
		for _, e := range g.Edges() {
			after, err := exact.Spread(g.RemoveEdges([][2]graph.V{{e.From, e.To}}), 0, nil, 0)
			if err != nil {
				return true
			}
			want := base - after
			idx := aug.OutEdgeIndex(e.From, e.To)
			if math.Abs(delta[idx]-want) > 0.1+0.05*want {
				t.Logf("seed=%d edge (%d,%d): Δ=%v want %v", seed, e.From, e.To, delta[idx], want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphEdgeHelpers(t *testing.T) {
	g := fixture.Toy()
	for i, e := range g.Edges() {
		idx := g.OutEdgeIndex(e.From, e.To)
		if idx != i {
			t.Fatalf("OutEdgeIndex(%d,%d) = %d, want %d", e.From, e.To, idx, i)
		}
		back := g.EdgeAt(idx)
		if back.From != e.From || back.To != e.To || back.P != e.P {
			t.Fatalf("EdgeAt(%d) = %+v, want %+v", idx, back, e)
		}
	}
	if g.OutEdgeIndex(0, 8) != -1 {
		t.Error("missing edge must return -1")
	}
}
