package diag_test

import (
	"testing"

	"github.com/imin-dev/imin/internal/core"
	"github.com/imin-dev/imin/internal/diag"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// costGraph builds a deterministic random graph with enough estimator work
// that the greedy loop runs real rounds.
func costGraph(seed uint64) *graph.Graph {
	r := rng.New(seed)
	n := 120
	b := graph.NewBuilder(n)
	for i := 0; i < 5*n; i++ {
		b.AddEdge(graph.V(r.Intn(n)), graph.V(r.Intn(n)), float64(r.Intn(4))*0.2+0.2)
	}
	return b.Build()
}

// TestCostAccountingBitNeutral is the flight recorder's observer-purity
// contract: wiring SolveCost.AddRound into Options.OnRound must not change
// the selected blockers — cost accounting reads the solve, never steers it.
func TestCostAccountingBitNeutral(t *testing.T) {
	g := costGraph(17)
	seeds := []graph.V{0, 3}
	for _, reuse := range []bool{false, true} {
		opt := core.Options{Theta: 2000, Workers: 3, Seed: 42, ReuseSamples: reuse}
		plain, err := core.Solve(g, seeds, 6, core.AdvancedGreedy, opt)
		if err != nil {
			t.Fatalf("reuse=%v plain: %v", reuse, err)
		}

		var cost diag.SolveCost
		counted := opt
		counted.OnRound = func(ri core.RoundInfo) {
			cost.AddRound(ri.Duration, ri.SamplesDirty, ri.SamplesStolen)
		}
		accounted, err := core.Solve(g, seeds, 6, core.AdvancedGreedy, counted)
		if err != nil {
			t.Fatalf("reuse=%v accounted: %v", reuse, err)
		}

		if len(plain.Blockers) != len(accounted.Blockers) {
			t.Fatalf("reuse=%v: blocker count %d vs %d", reuse, len(plain.Blockers), len(accounted.Blockers))
		}
		for i := range plain.Blockers {
			if plain.Blockers[i] != accounted.Blockers[i] {
				t.Fatalf("reuse=%v: blockers diverge at %d: %v vs %v",
					reuse, i, plain.Blockers, accounted.Blockers)
			}
		}
		if cost.Rounds == 0 {
			t.Fatalf("reuse=%v: cost accounting observed no rounds", reuse)
		}
		if cost.RoundNS < 0 || cost.SamplesDirty < 0 || cost.SamplesStolen < 0 {
			t.Fatalf("reuse=%v: negative cost counters: %+v", reuse, cost)
		}
	}
}

// TestAddRoundAccumulates checks the plain arithmetic.
func TestAddRoundAccumulates(t *testing.T) {
	var c diag.SolveCost
	c.AddRound(100, 7, 2)
	c.AddRound(50, 3, 0)
	if c.Rounds != 2 || c.RoundNS != 150 || c.SamplesDirty != 10 || c.SamplesStolen != 2 {
		t.Fatalf("unexpected accumulation: %+v", c)
	}
}
