package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// End-to-end observability test: boot the real daemon with JSON logs and a
// durable store, drive one solve and one mutation, then scrape /metrics,
// /debug/traces and /version over the wire and check the log stream is
// parseable JSON with request ids.
func TestDaemonMetricsScrape(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "imind")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	cmd := exec.Command(bin, "-addr", addr, "-data-dir", t.TempDir(),
		"-preload", "EmailCore", "-scale", "0.05", "-theta", "200", "-eval", "0",
		"-log-format", "json", "-log-level", "debug", "-shutdown-timeout", "5s")
	var logs syncBuffer
	cmd.Stdout, cmd.Stderr = &logs, &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	base := "http://" + addr
	var up bool
	for i := 0; i < 100; i++ {
		if resp, err := http.Get(base + "/healthz"); err == nil {
			resp.Body.Close()
			up = resp.StatusCode == http.StatusOK
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !up {
		t.Fatalf("daemon never became healthy; logs:\n%s", logs.String())
	}

	solve := `{"num_seeds": 3, "budget": 3, "algorithm": "advanced-greedy", "theta": 200, "seed": 1, "trace": true}`
	req, err := http.NewRequest(http.MethodPost, base+"/graphs/EmailCore/solve", bytes.NewReader([]byte(solve)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "e2e-solve-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sr struct {
		Blockers  []int  `json:"blockers"`
		RequestID string `json:"request_id"`
		Trace     *struct {
			Op string `json:"op"`
		} `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(sr.Blockers) != 3 {
		t.Fatalf("solve: status %d, %+v", resp.StatusCode, sr)
	}
	if sr.RequestID != "e2e-solve-1" || sr.Trace == nil || sr.Trace.Op != "solve" {
		t.Errorf("solve response lacks request id or inline trace: %+v", sr)
	}

	mut := "{\"op\":\"add-vertex\"}\n"
	resp, err = http.Post(base+"/graphs/EmailCore/mutate", "application/x-ndjson", bytes.NewReader([]byte(mut)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate status %d", resp.StatusCode)
	}

	// Scrape /metrics and require the families a dashboard needs. This is
	// the same gate CI runs against a booted daemon.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	expo, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	families := make(map[string]bool)
	for _, line := range strings.Split(string(expo), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			if f := strings.Fields(line); len(f) == 4 {
				families[f[2]] = true
			}
		}
	}
	for _, want := range []string{
		"imind_http_requests_total", "imind_solve_seconds", "imind_solve_rounds_total",
		"imind_mutate_commit_seconds", "imind_mutations_total",
		"imind_wal_appends_total", "imind_wal_append_seconds", "imind_checkpoints_total",
		"imind_degraded_graphs", "imind_build_info", "imind_panics_total",
	} {
		if !families[want] {
			t.Errorf("/metrics missing family %s", want)
		}
	}
	if !strings.Contains(string(expo), `warm="cold"`) {
		t.Error("/metrics has no cold-solve sample")
	}

	// The solve must be visible in the trace ring.
	resp, err = http.Get(base + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var traces struct {
		Traces []struct {
			Op        string `json:"op"`
			Graph     string `json:"graph"`
			RequestID string `json:"request_id"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(traces.Traces) == 0 || traces.Traces[0].Graph != "EmailCore" || traces.Traces[0].RequestID != "e2e-solve-1" {
		t.Errorf("/debug/traces = %+v, want the solve just run", traces.Traces)
	}

	// /version reports build provenance.
	resp, err = http.Get(base + "/version")
	if err != nil {
		t.Fatal(err)
	}
	var ver struct {
		Module    string `json:"module"`
		GoVersion string `json:"go_version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ver); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ver.Module == "" || ver.GoVersion == "" {
		t.Errorf("/version incomplete: %+v", ver)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited non-zero: %v; logs:\n%s", err, logs.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not shut down; logs:\n%s", logs.String())
	}

	// Every -log-format json line must be parseable JSON, and the solve's
	// request log line must carry the client's request id.
	var sawSolveLine bool
	sc := bufio.NewScanner(strings.NewReader(logs.String()))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line with -log-format json: %q", line)
		}
		if rec["request_id"] == "e2e-solve-1" {
			sawSolveLine = true
		}
	}
	if !sawSolveLine {
		t.Errorf("no log line carries request_id e2e-solve-1; logs:\n%s", logs.String())
	}
}
