package store

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"github.com/imin-dev/imin/internal/dynamic"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// testGraph builds a small deterministic graph.
func testGraph(n, m int, seed uint64) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u, v := graph.V(r.Intn(n)), graph.V(r.Intn(n))
		b.AddEdge(u, v, 0.1+0.8*r.Float64())
	}
	return b.Build()
}

// randomBatch produces a deterministic set-prob/add-edge/remove-edge batch
// against the graph's current snapshot, touching each edge slot at most
// once so the batch always commits.
func randomBatch(d *dynamic.Graph, size int, r *rng.Source) []dynamic.Mutation {
	g, _ := d.Snapshot()
	edges := g.Edges()
	touched := make(map[[2]graph.V]bool, size)
	muts := make([]dynamic.Mutation, 0, size)
	for len(muts) < size {
		switch r.Intn(3) {
		case 0: // perturb an existing edge
			if len(edges) == 0 {
				continue
			}
			e := edges[r.Intn(len(edges))]
			if touched[[2]graph.V{e.From, e.To}] {
				continue
			}
			touched[[2]graph.V{e.From, e.To}] = true
			muts = append(muts, dynamic.Mutation{Op: dynamic.OpSetProb, U: e.From, V: e.To, P: r.Float64()})
		case 1: // add a missing edge
			u, v := graph.V(r.Intn(g.N())), graph.V(r.Intn(g.N()))
			if u == v || g.HasEdge(u, v) || touched[[2]graph.V{u, v}] {
				continue
			}
			touched[[2]graph.V{u, v}] = true
			muts = append(muts, dynamic.Mutation{Op: dynamic.OpAddEdge, U: u, V: v, P: r.Float64()})
		default: // remove an existing edge
			if len(edges) == 0 {
				continue
			}
			e := edges[r.Intn(len(edges))]
			if touched[[2]graph.V{e.From, e.To}] {
				continue
			}
			touched[[2]graph.V{e.From, e.To}] = true
			muts = append(muts, dynamic.Mutation{Op: dynamic.OpRemoveEdge, U: e.From, V: e.To})
		}
	}
	return muts
}

func assertSameGraph(t *testing.T, want, got *graph.Graph) {
	t.Helper()
	if want.N() != got.N() || want.M() != got.M() {
		t.Fatalf("size mismatch: want (%d,%d), got (%d,%d)", want.N(), want.M(), got.N(), got.M())
	}
	if !reflect.DeepEqual(want.Edges(), got.Edges()) {
		t.Fatal("edge sets differ")
	}
}

// commitAndLog is the serving layer's write-through in miniature: encode
// first (a batch the WAL cannot carry must never commit), then commit,
// then append.
func commitAndLog(t *testing.T, d *dynamic.Graph, gs *GraphStore, muts []dynamic.Mutation) dynamic.CommitInfo {
	t.Helper()
	batch, err := dynamic.EncodeBatch(nil, muts)
	if err != nil {
		t.Fatal(err)
	}
	info, err := d.Commit(muts)
	if err != nil {
		t.Fatal(err)
	}
	if err := gs.Append(context.Background(), info.Epoch, batch); err != nil {
		t.Fatal(err)
	}
	return info
}

func TestCreateAndRecoverNoMutations(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Config{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(50, 200, 1)
	if _, err := st.Create("g1", g, 0, "test graph", "TR"); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Config{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	recs, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Name != "g1" || recs[0].Source != "test graph" || recs[0].ProbModel != "TR" {
		t.Fatalf("recovered %+v", recs)
	}
	if recs[0].Epoch() != 0 || recs[0].ReplayedBatches != 0 {
		t.Fatalf("epoch %d, replayed %d", recs[0].Epoch(), recs[0].ReplayedBatches)
	}
	snap, _ := recs[0].Dyn.Snapshot()
	assertSameGraph(t, g, snap)
}

func TestRecoverReplaysWALTail(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNone} {
		t.Run(string(policy), func(t *testing.T) {
			dir := t.TempDir()
			st, err := Open(dir, Config{Fsync: policy})
			if err != nil {
				t.Fatal(err)
			}
			g := testGraph(60, 300, 2)
			gs, err := st.Create("g", g, 0, "src", "keep")
			if err != nil {
				t.Fatal(err)
			}
			live := dynamic.New(g, dynamic.Config{})
			r := rng.New(7)
			for i := 0; i < 12; i++ {
				commitAndLog(t, live, gs, randomBatch(live, 5, r))
			}
			if err := st.Close(); err != nil { // graceful close fsyncs even under none
				t.Fatal(err)
			}

			st2, err := Open(dir, Config{Fsync: policy})
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			recs, err := st2.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 1 || recs[0].ReplayedBatches != 12 || recs[0].Epoch() != 12 {
				t.Fatalf("recovered %d graphs, replayed %d batches to epoch %d",
					len(recs), recs[0].ReplayedBatches, recs[0].Epoch())
			}
			wantSnap, _ := live.Snapshot()
			gotSnap, _ := recs[0].Dyn.Snapshot()
			assertSameGraph(t, wantSnap, gotSnap)

			// The recovered log keeps accepting batches, and a second
			// recovery sees them too.
			more := randomBatch(recs[0].Dyn, 3, r)
			commitAndLog(t, recs[0].Dyn, recs[0].GS, more)
			if _, err := live.Commit(more); err != nil {
				t.Fatal(err)
			}
			if err := st2.Close(); err != nil {
				t.Fatal(err)
			}
			st3, err := Open(dir, Config{Fsync: policy})
			if err != nil {
				t.Fatal(err)
			}
			defer st3.Close()
			recs3, err := st3.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if recs3[0].Epoch() != 13 {
				t.Fatalf("second recovery at epoch %d, want 13", recs3[0].Epoch())
			}
			wantSnap, _ = live.Snapshot()
			gotSnap, _ = recs3[0].Dyn.Snapshot()
			assertSameGraph(t, wantSnap, gotSnap)
		})
	}
}

func TestCheckpointTruncatesWALAndRecovers(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Config{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(60, 300, 3)
	gs, err := st.Create("g", g, 0, "src", "")
	if err != nil {
		t.Fatal(err)
	}
	live := dynamic.New(g, dynamic.Config{})
	r := rng.New(11)
	for i := 0; i < 8; i++ {
		commitAndLog(t, live, gs, randomBatch(live, 4, r))
	}

	// Checkpoint at epoch 8: rotate, then complete in the "background".
	snap, epoch := live.Snapshot()
	gen, err := gs.BeginCheckpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("gen = %d, want 1", gen)
	}
	// Appends continue into the new generation while the snapshot writes.
	commitAndLog(t, live, gs, randomBatch(live, 4, r))
	if err := gs.CompleteCheckpoint(context.Background(), gen, snap, epoch); err != nil {
		t.Fatal(err)
	}
	// The old generation's files are gone.
	if _, err := os.Stat(filepath.Join(dir, "graphs", "g", "wal-0.log")); !os.IsNotExist(err) {
		t.Error("wal-0.log survived the checkpoint")
	}
	if _, err := os.Stat(filepath.Join(dir, "graphs", "g", "snap-0.bin")); !os.IsNotExist(err) {
		t.Error("snap-0.bin survived the checkpoint")
	}
	commitAndLog(t, live, gs, randomBatch(live, 4, r))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Config{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	recs, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot covers epochs 1..8; the two post-rotation batches replay.
	if recs[0].SnapshotEpoch != 8 || recs[0].ReplayedBatches != 2 || recs[0].Epoch() != 10 {
		t.Fatalf("snapshot epoch %d, replayed %d, final epoch %d",
			recs[0].SnapshotEpoch, recs[0].ReplayedBatches, recs[0].Epoch())
	}
	wantSnap, _ := live.Snapshot()
	gotSnap, _ := recs[0].Dyn.Snapshot()
	assertSameGraph(t, wantSnap, gotSnap)
}

// TestRecoverAfterCrashedCheckpoint simulates a crash between WAL rotation
// and manifest commit: the manifest still points at the old generation, and
// recovery must replay both the old and the new WAL.
func TestRecoverAfterCrashedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Config{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(60, 300, 4)
	gs, err := st.Create("g", g, 0, "src", "")
	if err != nil {
		t.Fatal(err)
	}
	live := dynamic.New(g, dynamic.Config{})
	r := rng.New(13)
	for i := 0; i < 5; i++ {
		commitAndLog(t, live, gs, randomBatch(live, 4, r))
	}
	if _, err := gs.BeginCheckpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	// CompleteCheckpoint never runs (crash). Two more batches land in the
	// rotated generation.
	for i := 0; i < 2; i++ {
		commitAndLog(t, live, gs, randomBatch(live, 4, r))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Config{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	recs, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].SnapshotEpoch != 0 || recs[0].ReplayedBatches != 7 || recs[0].Epoch() != 7 {
		t.Fatalf("snapshot epoch %d, replayed %d, final epoch %d",
			recs[0].SnapshotEpoch, recs[0].ReplayedBatches, recs[0].Epoch())
	}
	wantSnap, _ := live.Snapshot()
	gotSnap, _ := recs[0].Dyn.Snapshot()
	assertSameGraph(t, wantSnap, gotSnap)
}

// TestRecoverTruncatesTornTail cuts the WAL mid-record and flips bits in a
// record body: recovery must keep every batch before the damage, drop
// everything after, and leave a log that accepts new appends.
func TestRecoverTruncatesTornTail(t *testing.T) {
	setup := func(t *testing.T) (dir string, epochs []uint64, walPath string) {
		dir = t.TempDir()
		st, err := Open(dir, Config{Fsync: FsyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		g := testGraph(40, 150, 5)
		gs, err := st.Create("g", g, 0, "src", "")
		if err != nil {
			t.Fatal(err)
		}
		live := dynamic.New(g, dynamic.Config{})
		r := rng.New(17)
		for i := 0; i < 6; i++ {
			info := commitAndLog(t, live, gs, randomBatch(live, 3, r))
			epochs = append(epochs, info.Epoch)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		return dir, epochs, filepath.Join(dir, "graphs", "g", "wal-0.log")
	}

	t.Run("torn", func(t *testing.T) {
		dir, _, walPath := setup(t)
		data, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		// Cut inside the last record.
		if err := os.WriteFile(walPath, data[:len(data)-5], 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir, Config{Fsync: FsyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		recs, err := st.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if !recs[0].TruncatedTail || recs[0].ReplayedBatches != 5 || recs[0].Epoch() != 5 {
			t.Fatalf("truncated=%v replayed=%d epoch=%d, want tail cut at batch 5",
				recs[0].TruncatedTail, recs[0].ReplayedBatches, recs[0].Epoch())
		}
		// The log accepts appends at the recovered epoch.
		muts := randomBatch(recs[0].Dyn, 2, rng.New(99))
		commitAndLog(t, recs[0].Dyn, recs[0].GS, muts)
		if recs[0].Dyn.Epoch() != 6 {
			t.Fatalf("append after truncation: epoch %d", recs[0].Dyn.Epoch())
		}
	})

	t.Run("bit flip", func(t *testing.T) {
		dir, _, walPath := setup(t)
		data, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		// Flip a bit two-thirds in: batches before the damaged record
		// survive, the rest is dropped.
		data[2*len(data)/3] ^= 0x01
		if err := os.WriteFile(walPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir, Config{Fsync: FsyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		recs, err := st.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if !recs[0].TruncatedTail {
			t.Fatal("bit flip not detected")
		}
		if recs[0].ReplayedBatches >= 6 {
			t.Fatalf("replayed %d batches through a corrupt record", recs[0].ReplayedBatches)
		}
		if got := recs[0].Epoch(); got != uint64(recs[0].ReplayedBatches) {
			t.Fatalf("epoch %d != replayed %d", got, recs[0].ReplayedBatches)
		}
	})
}

// TestRecoverCompactsDuringReplay drives enough replayed mutations through
// a tiny compaction threshold that the dynamic overlay compacts mid-replay,
// exercising checkpoint-truncation state against overlay compaction.
func TestRecoverCompactsDuringReplay(t *testing.T) {
	dir := t.TempDir()
	dynCfg := dynamic.Config{CompactMinDeltas: 8, CompactFraction: 0.0001}
	st, err := Open(dir, Config{Fsync: FsyncAlways, Dynamic: dynCfg})
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(50, 200, 6)
	gs, err := st.Create("g", g, 0, "src", "")
	if err != nil {
		t.Fatal(err)
	}
	live := dynamic.New(g, dynCfg)
	r := rng.New(23)
	for i := 0; i < 10; i++ {
		commitAndLog(t, live, gs, randomBatch(live, 5, r))
	}
	if live.Stats().Compactions == 0 {
		t.Fatal("test graph never compacted; threshold too high")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Config{Fsync: FsyncAlways, Dynamic: dynCfg})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	recs, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Dyn.Stats().Compactions == 0 {
		t.Fatal("replay never compacted")
	}
	if recs[0].Epoch() != 10 {
		t.Fatalf("epoch %d", recs[0].Epoch())
	}
	wantSnap, _ := live.Snapshot()
	gotSnap, _ := recs[0].Dyn.Snapshot()
	assertSameGraph(t, wantSnap, gotSnap)
}

// TestCheckpointRacingMutates runs concurrent commit+append traffic against
// repeated checkpoints (the -race target for the overlay-compaction /
// checkpoint-truncation interplay), then recovers and compares against the
// serialized history.
func TestCheckpointRacingMutates(t *testing.T) {
	dir := t.TempDir()
	dynCfg := dynamic.Config{CompactMinDeltas: 16, CompactFraction: 0.0001}
	st, err := Open(dir, Config{Fsync: FsyncNone, Dynamic: dynCfg})
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(60, 300, 7)
	gs, err := st.Create("g", g, 0, "src", "")
	if err != nil {
		t.Fatal(err)
	}
	live := dynamic.New(g, dynCfg)

	// commitMu plays the serving layer's per-graph commit lock: Commit and
	// Append atomically, and checkpoint rotation under the same lock.
	var commitMu sync.Mutex
	rounds := 40
	if testing.Short() {
		rounds = 12
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		r := rng.New(31)
		for i := 0; i < rounds; i++ {
			commitMu.Lock()
			muts := randomBatch(live, 4, r)
			batch, err := dynamic.EncodeBatch(nil, muts)
			var info dynamic.CommitInfo
			if err == nil {
				info, err = live.Commit(muts)
			}
			if err == nil {
				err = gs.Append(context.Background(), info.Epoch, batch)
			}
			commitMu.Unlock()
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; ; i++ {
		select {
		case <-done:
		default:
			commitMu.Lock()
			snap, epoch := live.Snapshot()
			gen, err := gs.BeginCheckpoint(context.Background())
			commitMu.Unlock()
			if err != nil {
				t.Fatal(err)
			}
			if err := gs.CompleteCheckpoint(context.Background(), gen, snap, epoch); err != nil {
				t.Fatal(err)
			}
			continue
		}
		break
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Config{Fsync: FsyncNone, Dynamic: dynCfg})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	recs, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Epoch() != live.Epoch() {
		t.Fatalf("recovered epoch %d, live %d", recs[0].Epoch(), live.Epoch())
	}
	wantSnap, _ := live.Snapshot()
	gotSnap, _ := recs[0].Dyn.Snapshot()
	assertSameGraph(t, wantSnap, gotSnap)
}

func TestRemoveDeletesOnDiskState(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Config{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	g := testGraph(20, 60, 8)
	if _, err := st.Create("doomed", g, 0, "src", ""); err != nil {
		t.Fatal(err)
	}
	gdir := filepath.Join(dir, "graphs", "doomed")
	if _, err := os.Stat(gdir); err != nil {
		t.Fatal(err)
	}
	if err := st.Remove("doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(gdir); !os.IsNotExist(err) {
		t.Error("graph directory survived Remove")
	}
	// The name is free for re-registration.
	if _, err := st.Create("doomed", g, 0, "src", ""); err != nil {
		t.Fatalf("re-create after remove: %v", err)
	}
}

func TestCreateRejectsUnrecoveredState(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Config{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(20, 60, 9)
	if _, err := st.Create("g", g, 0, "src", ""); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// A fresh store over the same directory must refuse to overwrite the
	// existing durable graph with a new registration.
	st2, err := Open(dir, Config{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, err := st2.Create("g", g, 0, "src", ""); err == nil {
		t.Fatal("Create overwrote unrecovered on-disk state")
	}
}

func TestAppendFailurePoisonsTheLog(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Config{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	g := testGraph(20, 60, 10)
	gs, err := st.Create("g", g, 0, "src", "")
	if err != nil {
		t.Fatal(err)
	}
	// Close the WAL file behind the store's back to force a write error.
	gs.mu.Lock()
	gs.wal.f.Close()
	gs.mu.Unlock()
	batch, err := dynamic.EncodeBatch(nil, []dynamic.Mutation{{Op: dynamic.OpAddVertex}})
	if err != nil {
		t.Fatal(err)
	}
	if err := gs.Append(context.Background(), 1, batch); err == nil {
		t.Fatal("append to a closed file succeeded")
	}
	// Every later append fails too, even if the fd were somehow usable:
	// the log's tail state is unknown.
	if err := gs.Append(context.Background(), 2, batch); err == nil {
		t.Fatal("append after a failed append succeeded")
	}
}
