package service

import (
	"net/http"
	"runtime"
	"runtime/debug"

	"github.com/imin-dev/imin/internal/obs"
)

// VersionResponse is GET /version: build provenance for correlating a
// running daemon with a source revision.
type VersionResponse struct {
	// Module and Version come from the main module's build info; Version is
	// "(devel)" for plain `go build` trees.
	Module  string `json:"module"`
	Version string `json:"version"`
	// Revision/RevisionTime/Dirty are the VCS stamp when the binary was
	// built inside a checkout (vcs.revision / vcs.time / vcs.modified).
	Revision     string `json:"revision,omitempty"`
	RevisionTime string `json:"revision_time,omitempty"`
	Dirty        bool   `json:"dirty,omitempty"`
	GoVersion    string `json:"go_version"`
}

// buildVersion reads the binary's build info once at startup.
var buildVersion = func() VersionResponse {
	v := VersionResponse{Module: "unknown", Version: "unknown", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	v.Module = bi.Main.Path
	if bi.Main.Version != "" {
		v.Version = bi.Main.Version
	}
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			v.Revision = kv.Value
		case "vcs.time":
			v.RevisionTime = kv.Value
		case "vcs.modified":
			v.Dirty = kv.Value == "true"
		}
	}
	return v
}()

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, buildVersion)
}

// registerBuildInfo exposes the same fields as the conventional constant-1
// "imind_build_info" gauge, so dashboards can join metrics to a revision.
func registerBuildInfo(reg *obs.Registry) {
	v := buildVersion
	reg.GaugeVec("imind_build_info",
		"Build provenance of the running binary; constant 1.",
		"version", "revision", "go_version").
		With(v.Version, v.Revision, v.GoVersion).Set(1)
}
