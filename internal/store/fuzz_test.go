package store

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/imin-dev/imin/internal/dynamic"
)

// FuzzDecodeRecord hammers the WAL frame parser: any input must either
// decode to a record that re-encodes to the same bytes, or error — never
// panic, never read past the slice, never allocate from a length claim the
// data cannot back.
func FuzzDecodeRecord(f *testing.F) {
	// Valid record seeds.
	batch, _ := dynamic.EncodeBatch(nil, []dynamic.Mutation{
		{Op: dynamic.OpAddEdge, U: 3, V: 7, P: 0.5},
		{Op: dynamic.OpAddVertex},
	})
	f.Add(appendRecord(nil, 1, batch))
	f.Add(appendRecord(nil, ^uint64(0), nil))
	// Hostile seeds: truncated frame, giant length claim, zero bytes.
	f.Add(appendRecord(nil, 9, batch)[:5])
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		epoch, batch, n, err := decodeRecord(data)
		if err != nil {
			return
		}
		if n < recordHeaderLen+8 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// A record that decodes must re-encode to exactly the bytes it
		// came from — the CRC leaves no slack for aliased encodings.
		if re := appendRecord(nil, epoch, batch); !bytes.Equal(re, data[:n]) {
			t.Fatalf("decode/encode mismatch:\n got %x\nwant %x", re, data[:n])
		}
	})
}

// FuzzDecodeWALBatch runs hostile bytes through the full WAL payload path
// the recovery loop uses: frame decode, then mutation-batch decode. Bit
// flips, truncations and oversized counts must all error cleanly.
func FuzzDecodeWALBatch(f *testing.F) {
	muts := []dynamic.Mutation{
		{Op: dynamic.OpAddEdge, U: 0, V: 1, P: 0.25},
		{Op: dynamic.OpSetProb, U: 1, V: 0, P: 1},
		{Op: dynamic.OpRemoveEdge, U: 0, V: 1},
		{Op: dynamic.OpRemoveVertex, U: 1},
		{Op: dynamic.OpAddVertex},
	}
	batch, err := dynamic.EncodeBatch(nil, muts)
	if err != nil {
		f.Fatal(err)
	}
	rec := appendRecord(nil, 42, batch)
	f.Add(rec)
	f.Add(batch)
	// Every single-bit corruption of the valid record as explicit seeds
	// for the byte positions that matter most (the frame header).
	for i := 0; i < recordHeaderLen && i < len(rec); i++ {
		flipped := append([]byte(nil), rec...)
		flipped[i] ^= 1
		f.Add(flipped)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		_, body, _, err := decodeRecord(data)
		if err != nil {
			return
		}
		decoded, err := dynamic.DecodeBatch(body)
		if err != nil {
			return
		}
		// What decodes must round-trip semantically (byte-identity is not
		// guaranteed: Uvarint tolerates non-minimal encodings): otherwise
		// replay and the live commit could diverge on the same WAL.
		re, err := dynamic.EncodeBatch(nil, decoded)
		if err != nil {
			t.Fatalf("decoded batch does not re-encode: %v", err)
		}
		again, err := dynamic.DecodeBatch(re)
		if err != nil {
			t.Fatalf("re-encoded batch does not decode: %v", err)
		}
		if !reflect.DeepEqual(decoded, again) {
			t.Fatalf("batch decode/encode/decode mismatch:\n got %v\nwant %v", again, decoded)
		}
	})
}

// TestScanWALStopsAtFirstDamage feeds scanWAL concatenations with damage at
// every byte offset: the scan must return only records before the damage
// and report the exact valid prefix length.
func TestScanWALStopsAtFirstDamage(t *testing.T) {
	batch, _ := dynamic.EncodeBatch(nil, []dynamic.Mutation{{Op: dynamic.OpAddVertex}})
	var file []byte
	var ends []int64
	for e := uint64(1); e <= 4; e++ {
		file = appendRecord(file, e, batch)
		ends = append(ends, int64(len(file)))
	}
	recs, validLen, clean := scanWAL(file)
	if !clean || len(recs) != 4 || validLen != int64(len(file)) {
		t.Fatalf("clean scan: %d recs, valid %d, clean %v", len(recs), validLen, clean)
	}
	for off := 0; off < len(file); off++ {
		bad := append([]byte(nil), file...)
		bad[off] ^= 0x04
		recs, validLen, clean := scanWAL(bad)
		if clean && validLen != int64(len(bad)) {
			t.Fatalf("offset %d: clean scan with partial validLen", off)
		}
		// Records before the damaged one survive intact; validLen points
		// at a record boundary at or before the damage.
		for i, r := range recs {
			if int64(r.end) > validLen {
				t.Fatalf("offset %d: record %d extends past validLen", off, i)
			}
		}
		if !clean {
			boundary := false
			if validLen == 0 {
				boundary = true
			}
			for _, e := range ends {
				if validLen == e {
					boundary = true
				}
			}
			if !boundary {
				t.Fatalf("offset %d: validLen %d is not a record boundary", off, validLen)
			}
		}
	}
}
