package core

import (
	"testing"

	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// hookGraph builds a deterministic random graph large enough that the
// greedy loops run several rounds with non-trivial estimator work.
func hookGraph(seed uint64) *graph.Graph {
	r := rng.New(seed)
	n := 120
	b := graph.NewBuilder(n)
	for i := 0; i < 5*n; i++ {
		b.AddEdge(graph.V(r.Intn(n)), graph.V(r.Intn(n)), float64(r.Intn(4))*0.2+0.2)
	}
	return b.Build()
}

// TestOnRoundBitIdentity asserts the tentpole invariant: setting
// Options.OnRound must not change the selected blockers, for both greedy
// algorithms, with and without sample-pool reuse.
func TestOnRoundBitIdentity(t *testing.T) {
	g := hookGraph(11)
	seeds := []graph.V{0, 3}
	for _, alg := range []Algorithm{AdvancedGreedy, GreedyReplace} {
		for _, reuse := range []bool{false, true} {
			opt := Options{Theta: 2000, Workers: 3, Seed: 42, ReuseSamples: reuse}
			plain, err := Solve(g, seeds, 6, alg, opt)
			if err != nil {
				t.Fatalf("%s reuse=%v: %v", alg, reuse, err)
			}
			hooked := opt
			var rounds []RoundInfo
			hooked.OnRound = func(ri RoundInfo) { rounds = append(rounds, ri) }
			traced, err := Solve(g, seeds, 6, alg, hooked)
			if err != nil {
				t.Fatalf("%s reuse=%v hooked: %v", alg, reuse, err)
			}
			if len(plain.Blockers) != len(traced.Blockers) {
				t.Fatalf("%s reuse=%v: blocker count %d vs %d", alg, reuse, len(plain.Blockers), len(traced.Blockers))
			}
			for i := range plain.Blockers {
				if plain.Blockers[i] != traced.Blockers[i] {
					t.Fatalf("%s reuse=%v: blockers diverge at %d: %v vs %v",
						alg, reuse, i, plain.Blockers, traced.Blockers)
				}
			}
			if len(rounds) == 0 {
				t.Fatalf("%s reuse=%v: OnRound never fired", alg, reuse)
			}
			for i, ri := range rounds {
				if ri.Phase != "select" && ri.Phase != "replace" {
					t.Fatalf("round %d: bad phase %q", i, ri.Phase)
				}
				if ri.Duration < 0 || ri.SamplesDirty < 0 || ri.SamplesStolen < 0 {
					t.Fatalf("round %d: negative counters: %+v", i, ri)
				}
			}
			// The selection rounds must report the chosen blockers in order.
			var sel []graph.V
			for _, ri := range rounds {
				if ri.Phase == "select" {
					sel = append(sel, ri.Chosen)
				}
			}
			if alg == AdvancedGreedy {
				if len(sel) != len(traced.Blockers) {
					t.Fatalf("select rounds %d != blockers %d", len(sel), len(traced.Blockers))
				}
				for i := range sel {
					if sel[i] != traced.Blockers[i] {
						t.Fatalf("round %d chose %d, blocker is %d", i, sel[i], traced.Blockers[i])
					}
				}
			}
		}
	}
}

// TestOnRoundReportsDirtySamples checks that warm incremental solves charge
// reprocessed-sample work to rounds via the hook.
func TestOnRoundReportsDirtySamples(t *testing.T) {
	g := hookGraph(23)
	opt := Options{Theta: 2000, Workers: 2, Seed: 9, ReuseSamples: true}
	var dirty int64
	opt.OnRound = func(ri RoundInfo) { dirty += ri.SamplesDirty }
	if _, err := Solve(g, []graph.V{0}, 5, AdvancedGreedy, opt); err != nil {
		t.Fatal(err)
	}
	if dirty == 0 {
		t.Fatal("incremental solve reported zero dirty samples across all rounds")
	}
}
