package lintrules

import (
	"go/ast"
	"go/types"

	"github.com/imin-dev/imin/internal/lintkit"
)

// CtxPackages are the packages whose exported entry points run long
// solver loops: the incremental estimator core and the serving layer.
var CtxPackages = []string{"internal/core", "internal/service"}

// CtxProp flags exported functions that accept a context.Context and then
// run a loop that never consults it. A batched solve over a large graph
// can spin for seconds per call; if the loop ignores the context, a
// cancelled request (client gone, server draining) burns a worker until
// the loop finishes on its own. Accepting a ctx parameter is a promise of
// cancellability — this pass makes the promise checkable.
//
// Only outermost loops containing at least one call are considered: a
// tight inner loop is the outer loop's responsibility, and a loop with no
// calls is pure arithmetic the checker assumes terminates quickly.
var CtxProp = &lintkit.Analyzer{
	Name: "ctxprop",
	Doc:  "flags exported context-taking functions whose loops never consult the context",
	Run:  runCtxProp,
}

func runCtxProp(pass *lintkit.Pass) error {
	if !scopedTo(pass.PkgPath, CtxPackages) {
		return nil
	}
	info := pass.TypesInfo
	eachFuncBody(pass.Files, func(decl *ast.FuncDecl) {
		if !decl.Name.IsExported() {
			return
		}
		ctxObj := contextParam(info, decl)
		if ctxObj == nil {
			return
		}
		for _, loop := range outermostLoops(decl.Body) {
			if !loopHasCall(loop) {
				continue
			}
			if usesObject(info, loop, ctxObj) {
				continue
			}
			pass.Reportf(loop.Pos(), "%s accepts a context but this loop never consults it: check ctx.Err()/ctx.Done() per iteration so cancellation can stop the work", decl.Name.Name)
		}
	})
	return nil
}

// contextParam returns the object of the first context.Context parameter,
// or nil when the function does not take one (or takes it unnamed).
func contextParam(info *types.Info, decl *ast.FuncDecl) types.Object {
	if decl.Type.Params == nil {
		return nil
	}
	for _, field := range decl.Type.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok || !typeIs(tv.Type, "context", "Context") {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return info.Defs[name]
			}
		}
	}
	return nil
}

// outermostLoops collects top-level for/range statements in body — loops
// not nested inside another loop. Function literals are skipped: their
// loops execute under whatever context the literal captures.
func outermostLoops(body *ast.BlockStmt) []ast.Stmt {
	var loops []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n.(ast.Stmt))
			return false // inner loops are the outer loop's responsibility
		case *ast.FuncLit:
			return false
		}
		return true
	})
	return loops
}

// loopHasCall reports whether the loop body contains any function or
// method call — the signal that an iteration does real work.
func loopHasCall(loop ast.Stmt) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}
