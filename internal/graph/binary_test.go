package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"github.com/imin-dev/imin/internal/rng"
)

func TestBinaryRoundTrip(t *testing.T) {
	g := toy()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
}

func TestBinaryFileRoundTrip(t *testing.T) {
	g := toy()
	path := t.TempDir() + "/g.bin"
	if err := g.WriteBinaryFile(path); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
}

func assertGraphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("size mismatch: (%d,%d) vs (%d,%d)", a.N(), a.M(), b.N(), b.M())
	}
	for u := V(0); int(u) < a.N(); u++ {
		at, bt := a.OutNeighbors(u), b.OutNeighbors(u)
		ap, bp := a.OutProbs(u), b.OutProbs(u)
		if len(at) != len(bt) {
			t.Fatalf("vertex %d out-degree mismatch", u)
		}
		for i := range at {
			if at[i] != bt[i] || ap[i] != bp[i] {
				t.Fatalf("vertex %d edge %d mismatch", u, i)
			}
		}
		// In-adjacency must be faithfully rebuilt too.
		ait, bit := a.InNeighbors(u), b.InNeighbors(u)
		if len(ait) != len(bit) {
			t.Fatalf("vertex %d in-degree mismatch", u)
		}
		for i := range ait {
			if ait[i] != bit[i] {
				t.Fatalf("vertex %d in-edge %d mismatch", u, i)
			}
		}
	}
}

func TestBinaryRejectsCorruptInput(t *testing.T) {
	g := toy()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    append([]byte("XXXX"), good[4:]...),
		"truncated":    good[:len(good)/2],
		"short header": good[:10],
	}
	for name, data := range cases {
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}

	// Bad version.
	bad := append([]byte(nil), good...)
	bad[4] = 99
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version: err = %v", err)
	}

	// Out-of-range edge target.
	bad = append([]byte(nil), good...)
	// outTo starts after magic(4)+header(20)+outStart((n+1)*4).
	off := 4 + 20 + (g.N()+1)*4
	bad[off] = 0xFF
	bad[off+1] = 0xFF
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("corrupt edge target accepted")
	}
}

// Property: binary round trip is the identity on random graphs.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%60) + 1
		r := rng.New(seed)
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(V(r.Intn(n)), V(r.Intn(n)), r.Float64())
		}
		g := b.Build()
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if g.N() != g2.N() || g.M() != g2.M() {
			return false
		}
		for _, e := range g.Edges() {
			if g2.Prob(e.From, e.To) != e.P {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBinaryWrite(b *testing.B) {
	bld := NewBuilder(10000)
	r := rng.New(1)
	for i := 0; i < 50000; i++ {
		bld.AddEdge(V(r.Intn(10000)), V(r.Intn(10000)), r.Float64())
	}
	g := bld.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryRead(b *testing.B) {
	bld := NewBuilder(10000)
	r := rng.New(1)
	for i := 0; i < 50000; i++ {
		bld.AddEdge(V(r.Intn(10000)), V(r.Intn(10000)), r.Float64())
	}
	var buf bytes.Buffer
	if err := bld.Build().WriteBinary(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
