package core

import (
	"sync"

	"github.com/imin-dev/imin/internal/cascade"
	"github.com/imin-dev/imin/internal/dominator"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// PooledEstimator is the sample-reuse variant of Algorithm 2 (the
// DESIGN.md §6 "sampling reuse" ablation): it draws the θ live-edge
// samples once into a SamplePool and answers every subsequent DecreaseES
// call — one per greedy round — by re-scanning every stored sample with the
// current blocker set filtered out.
//
// Trade-offs versus the paper's fresh-samples-per-round scheme:
//
//   - no resampling cost after round one (the coin flips and the
//     original-graph adjacency walks are paid once);
//   - common random numbers across rounds: consecutive rounds rank
//     candidates on the same randomness, removing round-to-round sampling
//     noise from the greedy trajectory;
//   - memory proportional to θ × (average sample size);
//   - estimates across rounds are correlated — each round's estimate is
//     still unbiased for G[V\B] because filtering a live-edge sample of G
//     by removing B yields exactly a live-edge sample of G[V\B].
//
// Every round still costs O(θ·m̄) regardless of how little the blocker set
// changed; IncrementalPooledEstimator removes that with delta maintenance
// and is what Options.ReuseSamples actually runs. PooledEstimator remains
// the straight-line reference the incremental path is verified against
// (bit-identical Δ for the same pool) and the ablation baseline in the
// benchmarks.
type PooledEstimator struct {
	pool    *SamplePool
	workers int
	domAlgo DomAlgo
	scratch []*pooledWorker
}

// NewPooledEstimator draws theta samples from the sampler into a fresh pool
// and wraps it. workers <= 0 selects GOMAXPROCS.
func NewPooledEstimator(sampler cascade.LiveSampler, src graph.V, theta, workers int, domAlgo DomAlgo, base *rng.Source) *PooledEstimator {
	return NewPooledEstimatorFromPool(NewSamplePool(sampler, src, theta, workers, base), workers, domAlgo)
}

// NewPooledEstimatorFromPool wraps an existing pool without copying it; the
// pool may be shared with other estimators.
func NewPooledEstimatorFromPool(pool *SamplePool, workers int, domAlgo DomAlgo) *PooledEstimator {
	return &PooledEstimator{
		pool:    pool,
		workers: poolWorkers(workers, pool.Theta()),
		domAlgo: domAlgo,
	}
}

// Theta returns the stored sample count.
func (p *PooledEstimator) Theta() int { return p.pool.Theta() }

// Pool returns the backing sample pool.
func (p *PooledEstimator) Pool() *SamplePool { return p.pool }

// filterScratch is the reusable per-worker state for restricting a stored
// sample to its non-blocked reachable region and running the dominator
// computation on the result. It is shared by the pooled and incremental
// estimators.
type filterScratch struct {
	dws *dominator.Workspace
	// filtered-sample scratch, stamped per sample
	stamp    []int32
	flocal   []int32
	stampGen int32
	queue    []int32 // stored-local ids
	forig    []graph.V
	eFrom    []int32
	eTo      []int32
	outStart []int32
	outTo    []int32
	inStart  []int32
	inTo     []int32
	fill     []int32
	sizes    []int32
}

func newFilterScratch() filterScratch {
	return filterScratch{dws: dominator.NewWorkspace(0)}
}

// memoryBytes reports the scratch's resident footprint: the filter/CSR
// arrays (grown to the largest sample processed so far) plus the dominator
// workspace. graph.V is int32, so every slice here is 4 bytes per entry.
func (st *filterScratch) memoryBytes() int64 {
	total := st.dws.MemoryBytes() + int64(cap(st.forig))*4
	for _, s := range [][]int32{st.stamp, st.flocal, st.queue, st.eFrom, st.eTo,
		st.outStart, st.outTo, st.inStart, st.inTo, st.fill, st.sizes} {
		total += int64(cap(s)) * 4
	}
	return total
}

type pooledWorker struct {
	filterScratch
	sview sampleView
	acc   []int64
}

func (p *PooledEstimator) worker(w int) *pooledWorker {
	for len(p.scratch) <= w {
		p.scratch = append(p.scratch, &pooledWorker{
			filterScratch: newFilterScratch(),
			acc:           make([]int64, p.pool.g.N()),
		})
	}
	return p.scratch[w]
}

// DecreaseES estimates Δ[u] on G[V\B] for every vertex from the stored
// pool, writing into dst (length ≥ n). Deterministic given the pool.
func (p *PooledEstimator) DecreaseES(dst []float64, blocked []bool) {
	n := p.pool.g.N()
	var wg sync.WaitGroup
	theta := p.pool.Theta()
	for w := 0; w < p.workers; w++ {
		lo := w * theta / p.workers
		hi := (w + 1) * theta / p.workers
		st := p.worker(w)
		wg.Add(1)
		go func(st *pooledWorker, lo, hi int) {
			defer wg.Done()
			for i := range st.acc[:n] {
				st.acc[i] = 0
			}
			for i := lo; i < hi; i++ {
				p.pool.view(i, &st.sview)
				forig, sizes := st.filterAndDominate(&st.sview, blocked, p.domAlgo)
				for fl := 1; fl < len(forig); fl++ {
					st.acc[forig[fl]] += int64(sizes[fl])
				}
			}
		}(st, lo, hi)
	}
	wg.Wait()
	inv := 1 / float64(theta)
	for u := 0; u < n; u++ {
		total := int64(0)
		for w := 0; w < p.workers; w++ {
			total += p.scratch[w].acc[u]
		}
		dst[u] = float64(total) * inv
	}
	dst[p.pool.src] = 0
}

// filterAndDominate restricts one stored sample to the non-blocked region
// reachable from the source, runs the dominator computation on it, and
// returns the filtered vertex list (original ids; index 0 = the source)
// together with each vertex's dominator-subtree size. Removing blocked
// vertices from a live-edge sample of G produces a live-edge sample of
// G[V\B], so estimates built on the result stay unbiased for the blocked
// graph. The returned slices alias scratch and are valid until the next
// call.
func (st *filterScratch) filterAndDominate(s *sampleView, blocked []bool, domAlgo DomAlgo) ([]graph.V, []int32) {
	k := len(s.orig)
	st.stamp = growI32(st.stamp, k)
	st.flocal = growI32(st.flocal, k)
	st.stampGen++
	if st.stampGen == 0 {
		for i := range st.stamp {
			st.stamp[i] = -1
		}
		st.stampGen = 1
	}
	st.queue = st.queue[:0]
	st.forig = st.forig[:0]
	st.eFrom = st.eFrom[:0]
	st.eTo = st.eTo[:0]

	// BFS over stored live edges, skipping blocked vertices.
	st.stamp[0] = st.stampGen
	st.flocal[0] = 0
	st.forig = append(st.forig, s.orig[0])
	st.queue = append(st.queue, 0)
	for qi := 0; qi < len(st.queue); qi++ {
		u := st.queue[qi]
		fu := st.flocal[u]
		for j := s.outStart[u]; j < s.outStart[u+1]; j++ {
			v := s.outTo[j]
			if blocked != nil && blocked[s.orig[v]] {
				continue
			}
			var fv int32
			if st.stamp[v] == st.stampGen {
				fv = st.flocal[v]
			} else {
				st.stamp[v] = st.stampGen
				fv = int32(len(st.forig))
				st.flocal[v] = fv
				st.forig = append(st.forig, s.orig[v])
				st.queue = append(st.queue, v)
			}
			st.eFrom = append(st.eFrom, fu)
			st.eTo = append(st.eTo, fv)
		}
	}

	fk := len(st.forig)
	fe := len(st.eFrom)
	st.outStart = growI32(st.outStart, fk+1)
	st.inStart = growI32(st.inStart, fk+1)
	st.outTo = growI32(st.outTo, fe)
	st.inTo = growI32(st.inTo, fe)
	st.fill = growI32(st.fill, fk)
	outStart, inStart := st.outStart[:fk+1], st.inStart[:fk+1]
	outTo, inTo := st.outTo[:fe], st.inTo[:fe]
	fill := st.fill[:fk]
	for i := range outStart {
		outStart[i] = 0
	}
	for i := range inStart {
		inStart[i] = 0
	}
	for i := 0; i < fe; i++ {
		outStart[st.eFrom[i]+1]++
		inStart[st.eTo[i]+1]++
	}
	for i := 0; i < fk; i++ {
		outStart[i+1] += outStart[i]
		inStart[i+1] += inStart[i]
	}
	for i := range fill {
		fill[i] = 0
	}
	for i := 0; i < fe; i++ {
		u := st.eFrom[i]
		outTo[outStart[u]+fill[u]] = st.eTo[i]
		fill[u]++
	}
	for i := range fill {
		fill[i] = 0
	}
	for i := 0; i < fe; i++ {
		v := st.eTo[i]
		inTo[inStart[v]+fill[v]] = st.eFrom[i]
		fill[v]++
	}

	fg := dominator.FlowGraph{N: fk, OutStart: outStart, OutTo: outTo, InStart: inStart, InTo: inTo}
	return st.forig, st.runDominators(&fg, domAlgo)
}

// runDominators computes the dominator tree of fg rooted at local 0 with
// the selected algorithm and returns every vertex's dominator-subtree size
// (aliasing scratch, valid until the next call).
func (st *filterScratch) runDominators(fg *dominator.FlowGraph, domAlgo DomAlgo) []int32 {
	var tree *dominator.Tree
	if domAlgo == DomSNCA {
		tree = st.dws.SNCA(fg, 0)
	} else {
		tree = st.dws.LengauerTarjan(fg, 0)
	}
	st.sizes = growI32(st.sizes, fg.N)
	sizes := st.sizes[:fg.N]
	st.dws.SubtreeSizes(tree, sizes)
	return sizes
}
