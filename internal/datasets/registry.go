package datasets

import (
	"fmt"
	"sort"

	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// Spec describes one of the paper's evaluation datasets (Table IV) together
// with the synthetic recipe that stands in for it. FullN/FullM are the
// published statistics; Generate produces a graph scaled to any fraction of
// that size with the same direction and average degree and a heavy-tailed
// degree distribution from preferential attachment.
type Spec struct {
	// Name is the paper's dataset name; Short is the axis label used in
	// Figures 5-11 (EC, F, W, EA, D, T, S, Y).
	Name  string
	Short string
	// FullN and FullM are Table IV's vertex and edge counts (undirected
	// datasets count each undirected edge once, as SNAP does).
	FullN, FullM int
	// Directed mirrors Table IV's Type column; undirected datasets are
	// materialized bidirectionally, as in the paper.
	Directed bool
}

// registry lists Table IV in its original order (sorted by edge count).
var registry = []Spec{
	{Name: "EmailCore", Short: "EC", FullN: 1_005, FullM: 25_571, Directed: true},
	{Name: "Facebook", Short: "F", FullN: 4_039, FullM: 88_234, Directed: false},
	{Name: "Wiki-Vote", Short: "W", FullN: 7_115, FullM: 103_689, Directed: true},
	{Name: "EmailAll", Short: "EA", FullN: 265_214, FullM: 420_045, Directed: true},
	{Name: "DBLP", Short: "D", FullN: 317_080, FullM: 1_049_866, Directed: false},
	{Name: "Twitter", Short: "T", FullN: 81_306, FullM: 1_768_149, Directed: true},
	{Name: "Stanford", Short: "S", FullN: 281_903, FullM: 2_312_497, Directed: true},
	{Name: "Youtube", Short: "Y", FullN: 1_134_890, FullM: 2_987_624, Directed: false},
}

// Registry returns the specs of all 8 datasets in Table IV order.
func Registry() []Spec {
	return append([]Spec(nil), registry...)
}

// ByName finds a spec by full or short name, case-sensitively.
func ByName(name string) (Spec, bool) {
	for _, s := range registry {
		if s.Name == name || s.Short == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names lists the full dataset names in registry order.
func Names() []string {
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.Name
	}
	return out
}

// Generate produces the synthetic stand-in graph at the given scale
// (fraction of the full vertex count, clamped to at least 50 vertices) with
// a deterministic seed. Edge probabilities are 1; assign a propagation
// model afterwards.
func (s Spec) Generate(scale float64, seed uint64) *graph.Graph {
	if scale <= 0 || scale > 1 {
		panic(fmt.Sprintf("datasets: scale %v out of (0,1]", scale))
	}
	n := int(float64(s.FullN) * scale)
	if n < 50 {
		n = 50
	}
	// Edges per arriving vertex to match the full graph's density. For
	// undirected datasets FullM counts undirected edges, each of which the
	// builder materializes in both directions.
	epv := float64(s.FullM) / float64(s.FullN)
	r := rng.New(seed ^ hashName(s.Name))
	return PreferentialAttachment(n, epv, s.Directed, r)
}

// hashName gives each dataset its own deterministic stream for a shared
// user seed (FNV-1a).
func hashName(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// TableIV formats the generated graph's statistics next to the paper's
// published numbers, for the dataset-statistics check in cmd/gengraph.
func TableIV(scale float64, seed uint64) string {
	out := "Dataset      scale       n          m     d_avg    d_max   Type        (paper: n, m, expected d_avg)\n"
	for _, s := range registry {
		g := s.Generate(scale, seed)
		st := g.ComputeStats()
		typ := "Directed"
		if !s.Directed {
			typ = "Undirected"
		}
		// Our d_avg counts in+out over directed edges; undirected datasets
		// materialize both directions, doubling the published 2m/n figure.
		paperAvg := float64(2*s.FullM) / float64(s.FullN)
		if !s.Directed {
			paperAvg *= 2
		}
		out += fmt.Sprintf("%-12s %5.3f %8d %10d %8.1f %8d   %-10s  (%d, %d, %.1f)\n",
			s.Name, scale, st.N, st.M, st.AvgDegree, st.MaxDegree, typ,
			s.FullN, s.FullM, paperAvg)
	}
	return out
}

// SortedByM returns the specs ordered by full edge count ascending — the
// order the paper's figures use on their x axes.
func SortedByM() []Spec {
	specs := Registry()
	sort.Slice(specs, func(i, j int) bool { return specs[i].FullM < specs[j].FullM })
	return specs
}
