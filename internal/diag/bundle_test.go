package diag

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/imin-dev/imin/internal/obs"
)

// testTrace builds a minimal finished trace.
func testTrace(op, graphName, reqID string) *obs.TraceOut {
	tr := obs.NewTrace(op, graphName, reqID)
	sp := tr.StartSpan("phase")
	sp.End()
	return tr.Finish()
}

// TestCaptureListReadRoundtrip checks the whole bundle lifecycle: capture
// writes one JSON document carrying the trigger, the offending trace, the
// ring, the metrics snapshot and both runtime profiles; List and Read get
// it back.
func TestCaptureListReadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	rec := NewRecorder(Config{
		Dir:      dir,
		Cooldown: -1,
		Build:    map[string]string{"version": "test"},
		Metrics:  func() ([]byte, error) { return []byte("imind_up 1\n"), nil },
	})

	trig := Trigger{
		Reason: "slo_solve", Route: "solve", Graph: "g1",
		RequestID: "req-1", SLOMS: 5, ElapsedMS: 120.5, Detail: "slow",
	}
	ring := []*obs.TraceOut{testTrace("solve", "g1", "req-1"), testTrace("solve", "g2", "req-0")}
	id, err := rec.Capture(trig, ring[0], ring)
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	if id == "" {
		t.Fatal("Capture suppressed with cooldown disabled")
	}
	if !strings.HasPrefix(id, "bundle-") || !strings.HasSuffix(id, "-slo_solve") {
		t.Fatalf("unexpected id %q", id)
	}

	infos, err := rec.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(infos) != 1 || infos[0].ID != id {
		t.Fatalf("List = %+v, want one entry %q", infos, id)
	}
	if infos[0].Reason != "slo_solve" {
		t.Fatalf("Reason = %q, want slo_solve", infos[0].Reason)
	}
	if infos[0].SizeBytes <= 0 {
		t.Fatalf("SizeBytes = %d", infos[0].SizeBytes)
	}

	data, err := rec.Read(id)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("bundle is not valid JSON: %v", err)
	}
	if b.ID != id || b.Trigger != trig {
		t.Fatalf("bundle round-trip mismatch: id %q trigger %+v", b.ID, b.Trigger)
	}
	if b.Trace == nil || b.Trace.Graph != "g1" {
		t.Fatalf("offending trace missing: %+v", b.Trace)
	}
	if len(b.RecentTraces) != 2 {
		t.Fatalf("ring traces = %d, want 2", len(b.RecentTraces))
	}
	if !strings.Contains(b.Metrics, "imind_up 1") {
		t.Fatalf("metrics snapshot missing: %q", b.Metrics)
	}
	if !strings.Contains(b.Goroutine, "goroutine") {
		t.Fatal("goroutine profile missing")
	}
	if b.Heap == "" {
		t.Fatal("heap profile missing")
	}
	if b.CapturedAt.IsZero() {
		t.Fatal("captured_at is zero")
	}

	// No stray temp files after an atomic publish.
	if tmp, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmp) != 0 {
		t.Fatalf("temp files left behind: %v", tmp)
	}
}

// TestRetentionDeletesOldest captures past MaxBundles and checks only the
// newest survive.
func TestRetentionDeletesOldest(t *testing.T) {
	rec := NewRecorder(Config{Dir: t.TempDir(), MaxBundles: 2, Cooldown: -1})
	var ids []string
	for i := 0; i < 3; i++ {
		id, err := rec.Capture(Trigger{Reason: "degraded"}, nil, nil)
		if err != nil {
			t.Fatalf("capture %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	infos, err := rec.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(infos) != 2 {
		t.Fatalf("retained %d bundles, want 2", len(infos))
	}
	if infos[0].ID != ids[2] || infos[1].ID != ids[1] {
		t.Fatalf("retained %q/%q, want newest %q/%q", infos[0].ID, infos[1].ID, ids[2], ids[1])
	}
	if _, err := rec.Read(ids[0]); err != ErrNotFound {
		t.Fatalf("oldest bundle still readable: err=%v", err)
	}
}

// TestCooldownSuppresses checks that a second capture inside the cooldown
// window returns "" without error, and that the suppression is not sticky.
func TestCooldownSuppresses(t *testing.T) {
	rec := NewRecorder(Config{Dir: t.TempDir(), Cooldown: time.Hour})
	id, err := rec.Capture(Trigger{Reason: "slo_solve"}, nil, nil)
	if err != nil || id == "" {
		t.Fatalf("first capture: id=%q err=%v", id, err)
	}
	id2, err := rec.Capture(Trigger{Reason: "slo_solve"}, nil, nil)
	if err != nil {
		t.Fatalf("suppressed capture errored: %v", err)
	}
	if id2 != "" {
		t.Fatalf("capture inside cooldown produced %q, want suppression", id2)
	}
	infos, _ := rec.List()
	if len(infos) != 1 {
		t.Fatalf("retained %d bundles, want 1", len(infos))
	}
}

// TestReadRejectsTraversal checks the id validation: path-traversal and
// malformed ids must map to ErrNotFound before any filesystem access.
func TestReadRejectsTraversal(t *testing.T) {
	rec := NewRecorder(Config{Dir: t.TempDir(), Cooldown: -1})
	for _, id := range []string{
		"../etc/passwd",
		"bundle-../../etc/passwd",
		"bundle-x/../../secret",
		"nope",
		"bundle-" + strings.Repeat("a", 200),
	} {
		if _, err := rec.Read(id); err != ErrNotFound {
			t.Fatalf("Read(%q) err = %v, want ErrNotFound", id, err)
		}
	}
}
