// Positive lockio fixture, including the PR 5 shutdown-ordering bug shape:
// the shutdown path fsyncs under the same lock every append takes, so one
// slow flush stalls every concurrent commit.
package fixture

import (
	"os"
	"sync"
)

type walog struct {
	mu sync.Mutex
	f  *os.File
}

func (l *walog) shutdownSync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Sync() // want "I/O while holding"
}

func (l *walog) rotate(path string) error {
	l.mu.Lock()
	f, err := os.Create(path) // want "I/O while holding"
	if err != nil {
		l.mu.Unlock()
		return err
	}
	l.f = f
	l.mu.Unlock()
	return nil
}

func (l *walog) flushIndirect() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.doSync() // want "performs file I/O"
}

func (l *walog) doSync() { _ = l.f.Sync() }
