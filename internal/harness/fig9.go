package harness

import (
	"fmt"
	"time"

	"github.com/imin-dev/imin/internal/core"
	"github.com/imin-dev/imin/internal/graph"
)

// Fig9Point is one (dataset, model, budget) time measurement of Figure 9:
// running time of BG, AG and GR as the budget grows, on Facebook and DBLP.
type Fig9Point struct {
	Dataset    string
	Model      graph.ProbModel
	Budget     int
	BG, AG, GR time.Duration
	BGTimedOut bool
	BGSkipped  bool
}

// Fig9Options configures the budget sweep.
type Fig9Options struct {
	// Budgets to sweep; the paper uses 1..400 on Facebook and 1..100 on
	// DBLP. Default {1, 5, 10, 20, 40} for the scaled datasets.
	Budgets []int
	// Datasets, default Facebook and DBLP as in the paper.
	Datasets []string
	// IncludeBG runs BaselineGreedy too (only feasible at small scales;
	// the paper only has BG on Facebook). Default false.
	IncludeBG bool
}

func (o Fig9Options) withDefaults() Fig9Options {
	if len(o.Budgets) == 0 {
		o.Budgets = []int{1, 5, 10, 20, 40}
	}
	if len(o.Datasets) == 0 {
		o.Datasets = []string{"Facebook", "DBLP"}
	}
	return o
}

// RunFig9 reproduces Figure 9: running time versus budget under both
// models. The paper's findings: AG and GR vastly outrun BG with the gap
// widening in b; AG's time can *decrease* with larger budgets thanks to
// GreedyReplace-style early termination; GR overtakes AG at large budgets.
func RunFig9(cfg Config, opts Fig9Options) ([]Fig9Point, error) {
	cfg = cfg.WithDefaults()
	opts = opts.withDefaults()

	var points []Fig9Point
	for _, model := range []graph.ProbModel{graph.Trivalency, graph.WeightedCascade} {
		for _, name := range opts.Datasets {
			sub := cfg
			sub.Datasets = []string{name}
			specs, err := sub.selectedSpecs()
			if err != nil {
				return nil, err
			}
			inst, err := cfg.prepare(specs[0], model)
			if err != nil {
				return nil, err
			}
			for _, b := range opts.Budgets {
				pt := Fig9Point{Dataset: specs[0].Name, Model: model, Budget: b}
				if opts.IncludeBG {
					res, _, err := cfg.runNoEval(inst, core.BaselineGreedy, b)
					if err != nil {
						return nil, err
					}
					pt.BG = res.Runtime
					pt.BGTimedOut = res.TimedOut
				} else {
					pt.BGSkipped = true
				}
				res, _, err := cfg.runNoEval(inst, core.AdvancedGreedy, b)
				if err != nil {
					return nil, err
				}
				pt.AG = res.Runtime
				res, _, err = cfg.runNoEval(inst, core.GreedyReplace, b)
				if err != nil {
					return nil, err
				}
				pt.GR = res.Runtime
				points = append(points, pt)
			}
		}
	}

	fmt.Fprintln(cfg.Out, "Figure 9: running time vs budget")
	fmt.Fprintln(cfg.Out, "Dataset      Model    b           BG           AG           GR")
	for _, p := range points {
		bg := "-"
		if !p.BGSkipped {
			bg = p.BG.Round(time.Millisecond).String()
			if p.BGTimedOut {
				bg = "timeout"
			}
		}
		fmt.Fprintf(cfg.Out, "%-12s %-5s %4d %12s %12s %12s\n",
			p.Dataset, p.Model, p.Budget, bg, p.AG.Round(time.Millisecond), p.GR.Round(time.Millisecond))
	}
	return points, nil
}
