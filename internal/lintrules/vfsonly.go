package lintrules

import (
	"go/ast"

	"github.com/imin-dev/imin/internal/lintkit"
)

// VFSPackages are the packages whose file I/O must route through the
// internal/faultfs seam. Only the durable store is scoped today: it is the
// layer whose failure paths the fault-injection suite exercises, and one
// direct os call would make that coverage a lie — the injected EIO never
// reaches the path that bypasses the seam.
var VFSPackages = []string{"internal/store"}

// VFSOnly forbids direct os-package file I/O (and any *os.File method use)
// inside VFSPackages: everything must go through faultfs.FS, keeping the
// injection seam airtight. Non-I/O os uses (os.O_CREATE flags, os.ErrNotExist,
// os.FileMode, os.Getenv, ...) stay legal.
var VFSOnly = &lintkit.Analyzer{
	Name: "vfsonly",
	Doc:  "forbids direct os file I/O in faultfs-seamed packages (internal/store): use the store's faultfs.FS instead",
	Run:  runVFSOnly,
}

// osVFSFuncs are the os package-level calls that touch the filesystem and
// have a faultfs.FS equivalent (or no business in the store at all).
var osVFSFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"Rename": true, "Remove": true, "RemoveAll": true, "Mkdir": true,
	"MkdirAll": true, "MkdirTemp": true, "ReadFile": true, "WriteFile": true,
	"ReadDir": true, "Stat": true, "Lstat": true, "Truncate": true,
	"Chmod": true, "Chtimes": true, "Link": true, "Symlink": true,
	"Readlink": true, "NewFile": true,
}

func runVFSOnly(pass *lintkit.Pass) error {
	if !scopedTo(pass.PkgPath, VFSPackages) {
		return nil
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, recv := calleeName(info, call)
			switch {
			case pkg == "os" && recv == "" && osVFSFuncs[name]:
				pass.Reportf(call.Pos(), "direct os.%s bypasses the faultfs seam: route the I/O through the store's faultfs.FS", name)
			case pkg == "os" && recv == "File":
				pass.Reportf(call.Pos(), "(*os.File).%s bypasses the faultfs seam: hold a faultfs.File instead", name)
			}
			return true
		})
	}
	return nil
}
