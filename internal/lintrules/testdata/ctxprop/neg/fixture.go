// Negative ctxprop fixture: loops that check the context, unexported
// helpers, and pure-arithmetic loops.
package fixture

import "context"

func work(i int) int { return i * i }

func Solve(ctx context.Context, n int) (int, error) {
	total := 0
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		total += work(i)
	}
	return total, nil
}

// Unexported helpers are the exported caller's responsibility.
func solveInner(ctx context.Context, n int) int {
	t := 0
	for i := 0; i < n; i++ {
		t += work(i)
	}
	return t
}

// A loop with no calls is assumed to be fast arithmetic.
func Norm(ctx context.Context, xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
