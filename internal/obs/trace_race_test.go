package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestTraceRingConcurrentAddSnapshot hammers a small ring with concurrent
// writers and snapshotters; under -race it proves Add and Snapshot are safe
// to interleave, which is exactly what a /debug/traces scrape during a
// solve burst (or a flight-recorder capture) does. Snapshot results must
// always be fully-formed traces, never partially published ones.
func TestTraceRingConcurrentAddSnapshot(t *testing.T) {
	const (
		adders       = 4
		perAdder     = 500
		snapshotters = 2
		capacity     = 8
	)
	ring := NewTraceRing(capacity)

	var addWG sync.WaitGroup
	for a := 0; a < adders; a++ {
		addWG.Add(1)
		go func(a int) {
			defer addWG.Done()
			for i := 0; i < perAdder; i++ {
				tr := NewTrace("solve", fmt.Sprintf("g%d", a), fmt.Sprintf("req-%d-%d", a, i))
				sp := tr.StartSpan("round")
				sp.End()
				ring.Add(tr.Finish())
			}
		}(a)
	}

	done := make(chan struct{})
	var snapWG sync.WaitGroup
	for s := 0; s < snapshotters; s++ {
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			for {
				snap := ring.Snapshot()
				if len(snap) > capacity {
					t.Errorf("snapshot larger than capacity: %d", len(snap))
					return
				}
				for _, tr := range snap {
					if tr == nil || tr.Op != "solve" || tr.Root == nil {
						t.Errorf("snapshot returned malformed trace: %+v", tr)
						return
					}
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}

	addWG.Wait()
	close(done)
	snapWG.Wait()

	if snap := ring.Snapshot(); len(snap) != capacity {
		t.Fatalf("final snapshot has %d traces, want full ring of %d", len(snap), capacity)
	}
}
