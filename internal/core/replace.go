package core

import (
	"sort"
	"time"

	"github.com/imin-dev/imin/internal/graph"
)

// solveGreedyReplace implements Algorithm 4. The motivation (Example 3):
// with unlimited budget the optimal blockers are exactly the seed's
// out-neighbors, yet plain greedy may spend its budget elsewhere and miss
// them. GreedyReplace therefore
//
//  1. greedily blocks up to min(dout(s), b) of the seed's out-neighbors,
//     ranked by the Algorithm 2 estimator, then
//  2. walks the chosen blockers in reverse insertion order and greedily
//     replaces each with the globally best candidate, terminating early
//     the first time a blocker is its own best replacement (lines 19-20).
//
// The expected spread is never worse than blocking out-neighbors only, and
// the replacement pass recovers greedy's advantage at small budgets.
func solveGreedyReplace(halt stopper, in *instance, est *estBackend, b int, opt Options) Result {
	n := in.g.N()
	blocked := make([]bool, n)
	var blockers []graph.V
	round := uint64(0)

	// Phase 1: candidate blockers limited to the seed's out-neighbors
	// (in the unified instance: the union of all seeds' out-neighbors).
	// The members are collected once into an ascending id list so each
	// round scans |CB| entries, not all n vertices; ascending order keeps
	// the original whole-vertex-range tie-breaking.
	inCB := make([]bool, n)
	var cbList []graph.V
	for _, v := range in.g.OutNeighbors(in.src) {
		if in.candidate(v) && !inCB[v] {
			inCB[v] = true
			cbList = append(cbList, v)
		}
	}
	sort.Slice(cbList, func(i, j int) bool { return cbList[i] < cbList[j] })
	phase1 := len(cbList)
	if b < phase1 {
		phase1 = b
	}
	for i := 0; i < phase1; i++ {
		if halt.stop() {
			return halt.abort(Result{Blockers: blockers, SampledGraphs: est.samplesDrawn()})
		}
		var roundStart time.Time
		var proc0, stole0 int64
		if opt.OnRound != nil {
			roundStart = time.Now()
			proc0, stole0 = est.workSnapshot()
		}
		delta := est.decreaseES(in.src, blocked, round)
		round++

		best := graph.V(-1)
		for _, u := range cbList {
			if !inCB[u] || blocked[u] {
				continue
			}
			if best == -1 || delta[u] > delta[best] {
				best = u
			}
		}
		if best == -1 {
			break
		}
		inCB[best] = false // CB ← CB \ {x}
		blocked[best] = true
		est.noteFlip(best)
		blockers = append(blockers, best)
		emitRound(opt, int(round)-1, "select", best, roundStart, est, proc0, stole0)
	}

	// Phase 2: replacement in reverse insertion order over the full
	// candidate set.
	for i := len(blockers) - 1; i >= 0; i-- {
		if halt.stop() {
			return halt.abort(Result{Blockers: blockers, SampledGraphs: est.samplesDrawn()})
		}
		var roundStart time.Time
		var proc0, stole0 int64
		if opt.OnRound != nil {
			roundStart = time.Now()
			proc0, stole0 = est.workSnapshot()
		}
		u := blockers[i]
		blocked[u] = false // B ← B \ {u}
		est.noteFlip(u)
		delta := est.decreaseES(in.src, blocked, round)
		round++

		best := pickMax(in, blocked, delta)
		if best == -1 {
			blocked[u] = true // nothing to swap in; keep u
			est.noteFlip(u)
			emitRound(opt, int(round)-1, "replace", u, roundStart, est, proc0, stole0)
			continue
		}
		blocked[best] = true
		est.noteFlip(best)
		blockers[i] = best
		emitRound(opt, int(round)-1, "replace", best, roundStart, est, proc0, stole0)
		if best == u {
			// Early termination: the removed blocker is its own best
			// replacement, so earlier (stronger) picks won't be replaced
			// either.
			break
		}
	}
	return Result{Blockers: blockers, SampledGraphs: est.samplesDrawn()}
}

// emitRound fires Options.OnRound with deltas against the snapshot taken at
// the top of the round. No-op when the hook is unset.
func emitRound(opt Options, round int, phase string, chosen graph.V, start time.Time, est *estBackend, proc0, stole0 int64) {
	if opt.OnRound == nil {
		return
	}
	proc1, stole1 := est.workSnapshot()
	opt.OnRound(RoundInfo{
		Round:         round,
		Phase:         phase,
		Chosen:        chosen,
		Duration:      time.Since(start),
		SamplesDirty:  proc1 - proc0,
		SamplesStolen: stole1 - stole0,
	})
}
