package core

import (
	"math"
	"testing"

	"github.com/imin-dev/imin/internal/cascade"
	"github.com/imin-dev/imin/internal/fixture"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

func TestPooledEstimatorMatchesExample2(t *testing.T) {
	g := fixture.Toy()
	p := NewPooledEstimator(cascade.NewIC(g), fixture.Seed, 200000, 4, DomLengauerTarjan, rng.New(1))
	delta := make([]float64, g.N())
	p.DecreaseES(delta, nil)
	want := fixture.Delta()
	for v := range want {
		if math.Abs(delta[v]-want[v]) > 0.02 {
			t.Errorf("Δ[v%d] = %v, want %v", v+1, delta[v], want[v])
		}
	}
	if p.Theta() != 200000 {
		t.Errorf("Theta = %d", p.Theta())
	}
}

func TestPooledEstimatorWithBlockedMatchesFresh(t *testing.T) {
	// Filtering blocked vertices out of stored samples must estimate the
	// blocked graph: compare against the fresh estimator at high θ.
	g := fixture.Toy()
	blocked := make([]bool, g.N())
	blocked[fixture.V5] = true

	p := NewPooledEstimator(cascade.NewIC(g), fixture.Seed, 100000, 4, DomLengauerTarjan, rng.New(2))
	dPool := make([]float64, g.N())
	p.DecreaseES(dPool, blocked)

	fresh := NewEstimator(cascade.NewIC(g), 4, DomLengauerTarjan)
	dFresh := make([]float64, g.N())
	fresh.DecreaseES(dFresh, fixture.Seed, blocked, 100000, rng.New(3))

	for v := range dPool {
		if math.Abs(dPool[v]-dFresh[v]) > 0.02 {
			t.Errorf("v%d: pooled %v vs fresh %v", v+1, dPool[v], dFresh[v])
		}
	}
	if dPool[fixture.V5] != 0 {
		t.Error("blocked vertex must have Δ = 0")
	}
}

func TestReuseSamplesSolvesToyIdentically(t *testing.T) {
	g := fixture.Toy()
	for _, alg := range []Algorithm{AdvancedGreedy, GreedyReplace} {
		opt := testOpt()
		opt.ReuseSamples = true
		res, err := Solve(g, []graph.V{fixture.Seed}, 2, alg, opt)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		// Same blocker quality as the fresh-sample runs (Table III).
		blocked := make([]bool, g.N())
		for _, v := range res.Blockers {
			blocked[v] = true
		}
		spread := 0.0
		switch alg {
		case AdvancedGreedy:
			spread = 2
		case GreedyReplace:
			spread = 1
		}
		got := exactToySpread(t, blocked)
		if math.Abs(got-spread) > 1e-9 {
			t.Errorf("%s with ReuseSamples: spread %v, want %v (blockers %v)", alg, got, spread, res.Blockers)
		}
		// Pool accounting: exactly θ samples drawn regardless of rounds.
		if res.SampledGraphs != int64(opt.Theta) {
			t.Errorf("%s: SampledGraphs = %d, want %d (one pool)", alg, res.SampledGraphs, opt.Theta)
		}
	}
}

// exactToySpread scores a blocker mask on the toy graph with the closed-form
// spread (avoids an import cycle with package exact in this white-box test).
func exactToySpread(t *testing.T, blocked []bool) float64 {
	t.Helper()
	// Activation probabilities on the toy graph, given structural blocks,
	// computed by conditional reachability: certain edges except
	// (v5,v8)=0.5, (v9,v8)=0.2, (v8,v7)=0.1.
	reach := func(v5Edge, v9Edge, v8Edge bool) float64 {
		adj := map[graph.V][]graph.V{
			fixture.V1: {fixture.V2, fixture.V4},
			fixture.V2: {fixture.V5},
			fixture.V4: {fixture.V5},
			fixture.V5: {fixture.V3, fixture.V6, fixture.V9},
		}
		if v5Edge {
			adj[fixture.V5] = append(adj[fixture.V5], fixture.V8)
		}
		if v9Edge {
			adj[fixture.V9] = append(adj[fixture.V9], fixture.V8)
		}
		if v8Edge {
			adj[fixture.V8] = append(adj[fixture.V8], fixture.V7)
		}
		seen := map[graph.V]bool{}
		var dfs func(v graph.V)
		dfs = func(v graph.V) {
			if seen[v] || blocked[v] {
				return
			}
			seen[v] = true
			for _, w := range adj[v] {
				dfs(w)
			}
		}
		dfs(fixture.Seed)
		return float64(len(seen))
	}
	total := 0.0
	for _, c := range []struct {
		v5e, v9e, v8e bool
		p             float64
	}{
		{true, true, true, 0.5 * 0.2 * 0.1},
		{true, true, false, 0.5 * 0.2 * 0.9},
		{true, false, true, 0.5 * 0.8 * 0.1},
		{true, false, false, 0.5 * 0.8 * 0.9},
		{false, true, true, 0.5 * 0.2 * 0.1},
		{false, true, false, 0.5 * 0.2 * 0.9},
		{false, false, true, 0.5 * 0.8 * 0.1},
		{false, false, false, 0.5 * 0.8 * 0.9},
	} {
		total += c.p * reach(c.v5e, c.v9e, c.v8e)
	}
	return total
}

func BenchmarkPooledVsFreshRounds(b *testing.B) {
	// Ten greedy-style DecreaseES rounds with growing blocker sets:
	// the pooled variant pays sampling once.
	g := graph.Trivalency.Assign(
		mustGen(b), rng.New(7))
	const theta = 2000
	b.Run("fresh", func(b *testing.B) {
		est := NewEstimator(cascade.NewIC(g), 0, DomLengauerTarjan)
		delta := make([]float64, g.N())
		blocked := make([]bool, g.N())
		base := rng.New(8)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for round := 0; round < 10; round++ {
				est.DecreaseES(delta, 0, blocked, theta, base.Split(uint64(round)))
				blocked[round+1] = true
			}
			for round := 0; round < 10; round++ {
				blocked[round+1] = false
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		p := NewPooledEstimator(cascade.NewIC(g), 0, theta, 0, DomLengauerTarjan, rng.New(8))
		delta := make([]float64, g.N())
		blocked := make([]bool, g.N())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for round := 0; round < 10; round++ {
				p.DecreaseES(delta, blocked)
				blocked[round+1] = true
			}
			for round := 0; round < 10; round++ {
				blocked[round+1] = false
			}
		}
	})
}

// mustGen builds a mid-size structural graph for benches.
func mustGen(b *testing.B) *graph.Graph {
	b.Helper()
	bld := graph.NewBuilder(3000)
	r := rng.New(9)
	for i := 0; i < 12000; i++ {
		bld.AddEdge(graph.V(r.Intn(3000)), graph.V(r.Intn(3000)), 1)
	}
	return bld.Build()
}
