// benchcore.go measures the per-round cost of the three DecreaseES
// estimator modes outside the Go testing framework, so cmd/experiments can
// emit a committed JSON baseline (BENCH_core.json) that future changes are
// regressed against. The workload mirrors internal/core's
// BenchmarkDecreaseES_* benchmarks: a b-round AdvancedGreedy trajectory on
// the ~100k-edge serving benchmark graph, replayed per estimator.
package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/imin-dev/imin/internal/cascade"
	"github.com/imin-dev/imin/internal/core"
	"github.com/imin-dev/imin/internal/datasets"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// BenchCoreOptions parameterizes the estimator benchmark.
type BenchCoreOptions struct {
	// N and EdgesPerVertex shape the preferential-attachment graph
	// (defaults 20000 and 5, the serving benchmark's ~100k edges).
	N              int
	EdgesPerVertex float64
	// Budget is the greedy round count b (default 10).
	Budget int
	// MinTime is the minimum measuring time per mode (default 2s).
	MinTime time.Duration
	// JSONPath, when non-empty, receives the report as indented JSON.
	JSONPath string
}

// BenchCoreMode is one estimator's measurement.
type BenchCoreMode struct {
	NsPerRound    float64 `json:"ns_per_round"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	BytesPerRound float64 `json:"bytes_per_round"`
	// DirtySamplesPerRound is how many stored samples the round actually
	// re-processed (θ for the full-scan modes; the measured average for
	// the incremental mode, including its priming scan).
	DirtySamplesPerRound float64 `json:"dirty_samples_per_round"`
}

// BenchCoreReport is the BENCH_core.json schema.
type BenchCoreReport struct {
	Graph struct {
		Generator      string  `json:"generator"`
		N              int     `json:"n"`
		EdgesPerVertex float64 `json:"edges_per_vertex"`
		Edges          int     `json:"edges"`
		NumSeeds       int     `json:"num_seeds"`
	} `json:"graph"`
	Theta                      int           `json:"theta"`
	Budget                     int           `json:"budget"`
	Workers                    int           `json:"workers"`
	PoolBytes                  int64         `json:"pool_bytes"`
	PoolBuildMS                float64       `json:"pool_build_ms"`
	GoMaxProcs                 int           `json:"gomaxprocs"`
	GoVersion                  string        `json:"go_version"`
	GeneratedBy                string        `json:"generated_by"`
	Fresh                      BenchCoreMode `json:"fresh"`
	Pooled                     BenchCoreMode `json:"pooled"`
	Incremental                BenchCoreMode `json:"incremental"`
	SpeedupPooledVsFresh       float64       `json:"speedup_pooled_vs_fresh"`
	SpeedupIncrementalVsPooled float64       `json:"speedup_incremental_vs_pooled"`
	SpeedupIncrementalVsFresh  float64       `json:"speedup_incremental_vs_fresh"`
}

// RunBenchCore builds the benchmark instance, measures the three modes, and
// writes the report table to cfg.Out (and JSON to opt.JSONPath, if set).
func RunBenchCore(cfg Config, opt BenchCoreOptions) (*BenchCoreReport, error) {
	cfg = cfg.WithDefaults()
	if opt.N <= 0 {
		opt.N = 20_000
	}
	if opt.EdgesPerVertex <= 0 {
		opt.EdgesPerVertex = 5
	}
	if opt.Budget <= 0 {
		opt.Budget = 10
	}
	if opt.MinTime <= 0 {
		opt.MinTime = 2 * time.Second
	}

	g := datasets.PreferentialAttachment(opt.N, opt.EdgesPerVertex, true, rng.New(1))
	g = graph.Trivalency.Assign(g, rng.New(2))
	seeds, err := datasets.RandomSeeds(g, cfg.NumSeeds, true, rng.New(3))
	if err != nil {
		return nil, err
	}
	unified, super := g.UnifySeeds(seeds)
	sampler := cascade.NewIC(unified)
	isSeed := make([]bool, unified.N())
	for _, s := range seeds {
		isSeed[s] = true
	}

	rep := &BenchCoreReport{
		Theta:       cfg.Theta,
		Budget:      opt.Budget,
		Workers:     cfg.Workers,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
		GeneratedBy: "cmd/experiments -exp benchcore",
	}
	rep.Graph.Generator = "preferential-attachment"
	rep.Graph.N = opt.N
	rep.Graph.EdgesPerVertex = opt.EdgesPerVertex
	rep.Graph.Edges = g.M()
	rep.Graph.NumSeeds = cfg.NumSeeds

	t0 := time.Now()
	pool := core.NewSamplePool(sampler, super, cfg.Theta, cfg.Workers, rng.New(cfg.Seed).Split(^uint64(0)))
	rep.PoolBuildMS = float64(time.Since(t0)) / float64(time.Millisecond)
	rep.PoolBytes = pool.MemoryBytes()

	// One greedy trajectory, recorded over the pooled estimator, replayed
	// by every mode so the measurement isolates DecreaseES.
	n := unified.N()
	blocked := make([]bool, n)
	delta := make([]float64, n)
	pooled := core.NewPooledEstimatorFromPool(pool, cfg.Workers, core.DomLengauerTarjan)
	traj := make([]graph.V, 0, opt.Budget)
	for round := 0; round < opt.Budget; round++ {
		pooled.DecreaseES(delta, blocked)
		best := graph.V(-1)
		for v := graph.V(0); int(v) < g.N(); v++ {
			if isSeed[v] || blocked[v] {
				continue
			}
			if best == -1 || delta[v] > delta[best] {
				best = v
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("benchcore: ran out of candidates at round %d", round)
		}
		blocked[best] = true
		traj = append(traj, best)
	}
	clear(blocked)

	measure := func(oneRun func()) (nsPerRound, bytesPerRound float64, rounds int64) {
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		for time.Since(start) < opt.MinTime {
			oneRun()
			rounds += int64(opt.Budget)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		return float64(elapsed.Nanoseconds()) / float64(rounds),
			float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(rounds), rounds
	}

	// Fresh: θ new samples every round.
	fresh := core.NewEstimator(sampler, cfg.Workers, core.DomLengauerTarjan)
	base := rng.New(cfg.Seed)
	round := uint64(0)
	ns, by, _ := measure(func() {
		for _, v := range traj {
			fresh.DecreaseES(delta, super, blocked, cfg.Theta, base.Split(round))
			round++
			blocked[v] = true
		}
		clear(blocked)
	})
	rep.Fresh = BenchCoreMode{NsPerRound: ns, BytesPerRound: by,
		SamplesPerSec: float64(cfg.Theta) / ns * 1e9, DirtySamplesPerRound: float64(cfg.Theta)}

	// Pooled: full re-scan of the stored pool every round.
	ns, by, _ = measure(func() {
		for _, v := range traj {
			pooled.DecreaseES(delta, blocked)
			blocked[v] = true
		}
		clear(blocked)
	})
	rep.Pooled = BenchCoreMode{NsPerRound: ns, BytesPerRound: by,
		SamplesPerSec: float64(cfg.Theta) / ns * 1e9, DirtySamplesPerRound: float64(cfg.Theta)}

	// Incremental: persistent estimator, flips reported, priming included
	// in the first run and amortized like a warm session would.
	incr := core.NewIncrementalPooledEstimatorFromPool(pool, cfg.Workers, core.DomLengauerTarjan)
	flips := make([]graph.V, 0, opt.Budget)
	st0 := incr.Stats()
	ns, by, rounds := measure(func() {
		for _, v := range traj {
			incr.DecreaseESFlips(delta, blocked, flips)
			flips = flips[:0]
			blocked[v] = true
			flips = append(flips, v)
		}
		for _, v := range traj {
			blocked[v] = false
			flips = append(flips, v)
		}
	})
	st1 := incr.Stats()
	dirtyPerRound := float64(st1.SamplesReprocessed-st0.SamplesReprocessed) / float64(rounds)
	rep.Incremental = BenchCoreMode{NsPerRound: ns, BytesPerRound: by,
		SamplesPerSec: dirtyPerRound / ns * 1e9, DirtySamplesPerRound: dirtyPerRound}

	rep.SpeedupPooledVsFresh = rep.Fresh.NsPerRound / rep.Pooled.NsPerRound
	rep.SpeedupIncrementalVsPooled = rep.Pooled.NsPerRound / rep.Incremental.NsPerRound
	rep.SpeedupIncrementalVsFresh = rep.Fresh.NsPerRound / rep.Incremental.NsPerRound

	if cfg.Out != nil {
		fmt.Fprintf(cfg.Out, "graph: PA n=%d epv=%g (%d edges), %d seeds; θ=%d b=%d workers=%d\n",
			opt.N, opt.EdgesPerVertex, g.M(), cfg.NumSeeds, cfg.Theta, opt.Budget, cfg.Workers)
		fmt.Fprintf(cfg.Out, "pool: %d samples, %.1f MB, built in %.0f ms\n",
			cfg.Theta, float64(rep.PoolBytes)/(1<<20), rep.PoolBuildMS)
		fmt.Fprintf(cfg.Out, "%-12s %14s %16s %14s %18s\n", "mode", "ns/round", "samples/sec", "bytes/round", "dirty samples/rnd")
		for _, row := range []struct {
			name string
			m    BenchCoreMode
		}{{"fresh", rep.Fresh}, {"pooled", rep.Pooled}, {"incremental", rep.Incremental}} {
			fmt.Fprintf(cfg.Out, "%-12s %14.0f %16.0f %14.0f %18.1f\n",
				row.name, row.m.NsPerRound, row.m.SamplesPerSec, row.m.BytesPerRound, row.m.DirtySamplesPerRound)
		}
		fmt.Fprintf(cfg.Out, "speedups: pooled/fresh %.2fx, incremental/pooled %.2fx, incremental/fresh %.2fx\n",
			rep.SpeedupPooledVsFresh, rep.SpeedupIncrementalVsPooled, rep.SpeedupIncrementalVsFresh)
	}

	if opt.JSONPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return nil, err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(opt.JSONPath, buf, 0o644); err != nil {
			return nil, err
		}
	}
	return rep, nil
}
