// Positive detrand fixture: every construct here loses determinism to map
// iteration order, ambient randomness, or the clock. Checked under a
// determinism-critical package path by the test harness.
package fixture

import (
	"fmt"
	"io"
	"math/rand"
	"time"
)

func collect(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to \"keys\" inside map iteration"
	}
	return keys
}

func sum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want "floating-point accumulation"
	}
	return total
}

func dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "ordered sink"
	}
}

func send(ch chan string, m map[string]bool) {
	for k := range m {
		ch <- k // want "channel send inside map iteration"
	}
}

func seed() int64 {
	return rand.Int63() + time.Now().UnixNano() // want "math/rand" "time-as-entropy"
}
