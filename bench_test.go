// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (Section VI), plus ablation benchmarks for the design
// choices called out in DESIGN.md §6. Each benchmark iteration executes the
// corresponding experiment at a laptop-scale configuration; run
//
//	go test -bench=. -benchmem
//
// for the full sweep, or -bench=BenchmarkTable7 for a single experiment.
// cmd/experiments runs the same experiments with printed tables and
// configurable scale.
package imin

import (
	"testing"
	"time"

	"github.com/imin-dev/imin/internal/cascade"
	"github.com/imin-dev/imin/internal/core"
	"github.com/imin-dev/imin/internal/dominator"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/harness"
	"github.com/imin-dev/imin/internal/rng"
)

// benchCfg is the shared laptop-scale configuration for experiment benches.
func benchCfg() harness.Config {
	return harness.Config{
		Scale:      0.01,
		Theta:      300,
		MCSRounds:  300,
		EvalRounds: 2000,
		NumSeeds:   5,
		Seed:       1,
		Timeout:    2 * time.Second,
	}
}

func BenchmarkTable3_ToyBlockers(b *testing.B) {
	cfg := benchCfg()
	cfg.Theta = 4000
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunTable3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5_ExactVsGR_TR(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunTable56(cfg, graph.Trivalency, harness.Table56Options{ExtractSize: 20, MaxBudget: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6_ExactVsGR_WC(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunTable56(cfg, graph.WeightedCascade, harness.Table56Options{ExtractSize: 20, MaxBudget: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7_Heuristics(b *testing.B) {
	cfg := benchCfg()
	cfg.Datasets = []string{"EmailCore", "EmailAll"}
	opts := harness.Table7Options{Budgets: []int{4, 8}}
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunTable7(cfg, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5_SpreadVsTheta(b *testing.B) {
	cfg := benchCfg()
	cfg.Datasets = []string{"EmailCore", "Wiki-Vote"}
	opts := harness.Fig56Options{Thetas: []int{100, 1000}, Budget: 5}
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunFig56(cfg, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6_TimeVsTheta(b *testing.B) {
	// Figure 6 shares Figure 5's runner; this target sweeps a wider θ range
	// so the (near-linear) time growth is visible in the benchmark output.
	cfg := benchCfg()
	cfg.Datasets = []string{"EmailCore"}
	opts := harness.Fig56Options{Thetas: []int{100, 1000, 5000}, Budget: 5}
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunFig56(cfg, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7_AlgTimes_TR(b *testing.B) {
	cfg := benchCfg()
	cfg.Datasets = []string{"EmailCore", "Wiki-Vote"}
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunFig78(cfg, graph.Trivalency, harness.Fig78Options{Budget: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8_AlgTimes_WC(b *testing.B) {
	cfg := benchCfg()
	cfg.Datasets = []string{"EmailCore", "Wiki-Vote"}
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunFig78(cfg, graph.WeightedCascade, harness.Fig78Options{Budget: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9_TimeVsBudget(b *testing.B) {
	cfg := benchCfg()
	opts := harness.Fig9Options{Budgets: []int{1, 5, 10}, Datasets: []string{"Facebook"}}
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunFig9(cfg, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10_TimeVsSeeds_TR(b *testing.B) {
	cfg := benchCfg()
	cfg.Datasets = []string{"EmailAll"}
	opts := harness.Fig1011Options{SeedCounts: []int{1, 10, 100}, Budget: 5}
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunFig1011(cfg, graph.Trivalency, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11_TimeVsSeeds_WC(b *testing.B) {
	cfg := benchCfg()
	cfg.Datasets = []string{"EmailAll"}
	opts := harness.Fig1011Options{SeedCounts: []int{1, 10, 100}, Budget: 5}
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunFig1011(cfg, graph.WeightedCascade, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (DESIGN.md §6) ---

// benchInstance builds a mid-size TR instance shared by the ablations.
func benchInstance(b *testing.B) (*graph.Graph, graph.V) {
	b.Helper()
	g, err := GenerateDataset("Wiki-Vote", 0.05, 1)
	if err != nil {
		b.Fatal(err)
	}
	return AssignProbabilities(g, Trivalency, 2), 0
}

// BenchmarkAblation_DominatorVariants compares Lengauer–Tarjan against
// Semi-NCA inside the estimator's hot loop: identical output, different
// constant factors.
func BenchmarkAblation_DominatorVariants(b *testing.B) {
	g, src := benchInstance(b)
	for _, variant := range []struct {
		name string
		algo core.DomAlgo
	}{
		{"LengauerTarjan", core.DomLengauerTarjan},
		{"SNCA", core.DomSNCA},
	} {
		b.Run(variant.name, func(b *testing.B) {
			est := core.NewEstimator(cascade.NewIC(g), 1, variant.algo)
			delta := make([]float64, g.N())
			r := rng.New(3)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				est.DecreaseES(delta, src, nil, 2000, r)
			}
		})
	}
}

// BenchmarkAblation_ReachablePruning quantifies the sampler's key
// optimization: materializing only the region reachable from the seed
// versus flipping every edge of G as a literal reading of Algorithm 2
// would. Both produce identical estimates.
func BenchmarkAblation_ReachablePruning(b *testing.B) {
	g, src := benchInstance(b)
	b.Run("reachable-only", func(b *testing.B) {
		ic := cascade.NewIC(g)
		ws := ic.NewWorkspace()
		r := rng.New(4)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ic.Sample(src, nil, r, ws)
		}
	})
	b.Run("full-graph", func(b *testing.B) {
		r := rng.New(4)
		n := g.N()
		fg := dominator.FlowGraph{N: n}
		eFrom := make([]int32, 0, g.M())
		eTo := make([]int32, 0, g.M())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Flip every edge in G (no pruning), then build the CSR, as a
			// whole-graph sampler must.
			eFrom, eTo = eFrom[:0], eTo[:0]
			for u := graph.V(0); int(u) < n; u++ {
				ps := g.OutProbs(u)
				to := g.OutNeighbors(u)
				for j := range to {
					if r.Bernoulli(ps[j]) {
						eFrom = append(eFrom, int32(u))
						eTo = append(eTo, int32(to[j]))
					}
				}
			}
			fg.OutStart = buildCSR(n, eFrom, eTo, &fg.OutTo)
			fg.InStart = buildCSR(n, eTo, eFrom, &fg.InTo)
		}
	})
}

// buildCSR is a minimal CSR builder for the full-graph ablation.
func buildCSR(n int, from, to []int32, out *[]int32) []int32 {
	start := make([]int32, n+1)
	for _, u := range from {
		start[u+1]++
	}
	for i := 0; i < n; i++ {
		start[i+1] += start[i]
	}
	if cap(*out) < len(from) {
		*out = make([]int32, len(from))
	}
	*out = (*out)[:len(from)]
	fill := make([]int32, n)
	for i, u := range from {
		(*out)[start[u]+fill[u]] = to[i]
		fill[u]++
	}
	return start
}

// BenchmarkAblation_SampleReuse compares AdvancedGreedy with fresh samples
// per round (the paper's Algorithm 2 usage) against the pooled variant
// that draws the θ samples once and filters them per round
// (Options.ReuseSamples; see core.PooledEstimator). Same blocker quality,
// different cost profile.
func BenchmarkAblation_SampleReuse(b *testing.B) {
	g, src := benchInstance(b)
	for _, reuse := range []bool{false, true} {
		name := "fresh-per-round"
		if reuse {
			name = "pooled"
		}
		b.Run(name, func(b *testing.B) {
			opt := core.Options{Theta: 1000, Workers: 0, Seed: 7, ReuseSamples: reuse}
			for i := 0; i < b.N; i++ {
				if _, err := core.Solve(g, []graph.V{src}, 10, core.AdvancedGreedy, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_MCSParallelism sweeps the Monte-Carlo worker count.
func BenchmarkAblation_MCSParallelism(b *testing.B) {
	g, src := benchInstance(b)
	ic := cascade.NewIC(g)
	for _, workers := range []int{1, 4, 16} {
		b.Run(map[int]string{1: "workers-1", 4: "workers-4", 16: "workers-16"}[workers], func(b *testing.B) {
			base := rng.New(5)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cascade.EstimateSpreadParallel(ic, src, nil, 20000, workers, base)
			}
		})
	}
}

// BenchmarkAblation_EstimatorVsMCS is the headline speedup in microcosm:
// scoring every candidate blocker once via Algorithm 2 versus via one MCS
// evaluation per candidate (what BaselineGreedy does each round).
func BenchmarkAblation_EstimatorVsMCS(b *testing.B) {
	g, src := benchInstance(b)
	ic := cascade.NewIC(g)
	b.Run("algorithm2-all-candidates", func(b *testing.B) {
		est := core.NewEstimator(ic, 0, core.DomLengauerTarjan)
		delta := make([]float64, g.N())
		r := rng.New(6)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			est.DecreaseES(delta, src, nil, 1000, r)
		}
	})
	b.Run("mcs-per-candidate", func(b *testing.B) {
		// One MCS spread estimate per candidate; even with r=1000 rounds
		// this is ~n times the estimator's cost.
		r := rng.New(6)
		blocked := make([]bool, g.N())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for u := graph.V(1); int(u) < g.N(); u++ {
				blocked[u] = true
				cascade.EstimateSpread(ic, src, blocked, 1000, r)
				blocked[u] = false
			}
		}
	})
}
