package core

import (
	"context"
	"fmt"
	"strings"

	"github.com/imin-dev/imin/internal/cascade"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// Session keeps the expensive per-problem solver state warm across Solve
// calls on one graph under one diffusion model: the multi-seed unified
// instance (UnifySeeds copies the whole graph), the live-edge sampler, and
// the Algorithm 2 estimator with its per-worker scratch (several O(n)
// arrays per worker). A cold Solve pays all of that on every call; a warm
// Session call with the same seed set skips straight to the greedy rounds.
//
// A Session is bound to (graph, diffusion, dominator algorithm, workers) at
// construction; Solve overrides those Options fields with the session's own
// so cached scratch always matches the run. Solve serializes callers
// internally — the estimator admits one DecreaseES stream at a time — so a
// Session is safe for concurrent use, at the price of queueing (the wait is
// context-aware: a canceled caller stops queueing immediately); run
// independent graphs on independent Sessions.
//
// Determinism is preserved: the cached estimator carries no randomness of
// its own (each round's rng is split from the per-call Options.Seed), so a
// warm Solve returns exactly the blockers a cold Solve with equal
// (Seed, Theta) and the session's workers/diffusion/domAlgo would.
type Session struct {
	g         *graph.Graph
	diffusion Diffusion
	domAlgo   DomAlgo
	workers   int

	lk    chan struct{} // cap-1 context-aware mutex over the fields below
	insts []*sessionInstance
	tick  int64
	stats SessionStats
}

// maxSessionInstances bounds the per-seed-set cache inside one session, so
// a few clients interleaving different seed sets on one hot graph don't
// evict each other's prepared state on every request (instances cost a
// whole-graph copy for multi-seed problems plus per-worker estimator
// scratch, which is also why the bound is small).
const maxSessionInstances = 4

// sessionInstance is the prepared state for one seed set: the unified
// instance and the estimator bound to its sampler.
type sessionInstance struct {
	key  string
	in   *instance
	est  *Estimator
	used int64 // LRU tick, guarded by the session lock
}

// SessionStats counts how often the cached state could be reused.
type SessionStats struct {
	// Solves is the number of Solve calls answered.
	Solves int64
	// Reuses counts Solve/EvaluateSpread calls that found their seed set's
	// prepared instance and estimator in the session's cache; Rebuilds
	// counts calls that had to build them (first sight of a seed set, or
	// re-entry after eviction past maxSessionInstances).
	Reuses   int64
	Rebuilds int64
}

// NewSession returns an empty session for g under the given diffusion
// model; state is built lazily on first use. workers <= 0 selects
// GOMAXPROCS, matching Options.Workers semantics.
func NewSession(g *graph.Graph, diffusion Diffusion, domAlgo DomAlgo, workers int) *Session {
	return &Session{g: g, diffusion: diffusion, domAlgo: domAlgo, workers: workers, lk: make(chan struct{}, 1)}
}

// lock acquires the session, giving up if ctx is canceled first: a caller
// abandoning a queued solve must not keep waiting (in a server, that wait
// would pin a worker-pool slot behind a long-running solve).
func (s *Session) lock(ctx context.Context) error {
	select {
	case s.lk <- struct{}{}:
		return nil
	default:
	}
	select {
	case s.lk <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Session) unlock() { <-s.lk }

// Graph returns the session's underlying graph.
func (s *Session) Graph() *graph.Graph { return s.g }

// Diffusion returns the session's diffusion model.
func (s *Session) Diffusion() Diffusion { return s.diffusion }

// prepare returns the cached instance+estimator for seeds, building one on
// a miss and evicting the least recently used entry past the bound. Caller
// holds the session lock.
func (s *Session) prepare(seeds []graph.V) (*sessionInstance, error) {
	key := seedsKey(seeds)
	s.tick++
	for _, si := range s.insts {
		if si.key == key {
			si.used = s.tick
			s.stats.Reuses++
			return si, nil
		}
	}
	in, err := newInstance(s.g, seeds)
	if err != nil {
		return nil, err
	}
	si := &sessionInstance{
		key:  key,
		in:   in,
		est:  NewEstimator(in.sampler(s.diffusion), s.workers, s.domAlgo),
		used: s.tick,
	}
	if len(s.insts) < maxSessionInstances {
		s.insts = append(s.insts, si)
	} else {
		lru := 0
		for i, c := range s.insts {
			if c.used < s.insts[lru].used {
				lru = i
			}
		}
		s.insts[lru] = si
	}
	s.stats.Rebuilds++
	return si, nil
}

// Acquire locks the session for one caller, waiting until it is free or
// ctx is canceled, and returns a handle whose methods run without further
// locking. Use it to hold the session across a whole request (e.g.
// spread-eval, solve, spread-eval) — and, in a server, to wait for a hot
// graph without occupying a CPU-admission slot. Callers must Release the
// handle exactly once.
func (s *Session) Acquire(ctx context.Context) (*LockedSession, error) {
	if err := s.lock(ctx); err != nil {
		return nil, err
	}
	return &LockedSession{s: s}, nil
}

// LockedSession is exclusive access to a Session between Acquire and
// Release. It must stay on the goroutine chain that acquired it.
type LockedSession struct {
	s *Session
}

// Release unlocks the session.
func (h *LockedSession) Release() { h.s.unlock() }

// Solve is Session.Solve on an already-acquired session.
func (h *LockedSession) Solve(ctx context.Context, seeds []graph.V, b int, alg Algorithm, opt Options) (Result, error) {
	if b < 0 {
		return Result{}, fmt.Errorf("core: negative budget %d", b)
	}
	s := h.s
	si, err := s.prepare(seeds)
	if err != nil {
		return Result{}, err
	}
	s.stats.Solves++
	opt.Diffusion = s.diffusion
	opt.DomAlgo = s.domAlgo
	opt.Workers = s.workers
	return solveInstance(ctx, si.in, si.est, b, alg, opt)
}

// EvaluateSpread is Session.EvaluateSpread on an already-acquired session.
func (h *LockedSession) EvaluateSpread(seeds []graph.V, blockers []graph.V, rounds int, opt Options) (float64, error) {
	s := h.s
	si, err := s.prepare(seeds)
	if err != nil {
		return 0, err
	}
	opt = opt.withDefaults()
	in := si.in
	blocked := make([]bool, in.g.N())
	for _, v := range blockers {
		if v < 0 || int(v) >= s.g.N() {
			return 0, fmt.Errorf("core: blocker %d out of range", v)
		}
		if in.isSeed[v] {
			return 0, fmt.Errorf("core: blocker %d is a seed", v)
		}
		blocked[v] = true
	}
	spread := cascade.EstimateSpreadParallel(si.est.Sampler(), in.src, blocked, rounds, s.workers, rng.New(opt.Seed^0x5eed))
	return graph.SpreadFromUnified(spread, in.numSeeds), nil
}

// Solve is SolveContext through the session's cached state. The session's
// diffusion model, dominator algorithm, and worker count override the
// corresponding Options fields so cached scratch always matches the run;
// with Options that agree on those fields it returns results identical to
// SolveContext. Canceling ctx while queued for the session returns
// ctx.Err() without solving.
func (s *Session) Solve(ctx context.Context, seeds []graph.V, b int, alg Algorithm, opt Options) (Result, error) {
	h, err := s.Acquire(ctx)
	if err != nil {
		return Result{}, err
	}
	defer h.Release()
	return h.Solve(ctx, seeds, b, alg, opt)
}

// EvaluateSpread is EvaluateSpread through the session's cached instance
// and sampler (the estimator is untouched). ctx only bounds the wait for
// the session lock; the evaluation itself runs to completion.
func (s *Session) EvaluateSpread(ctx context.Context, seeds []graph.V, blockers []graph.V, rounds int, opt Options) (float64, error) {
	h, err := s.Acquire(ctx)
	if err != nil {
		return 0, err
	}
	defer h.Release()
	return h.EvaluateSpread(seeds, blockers, rounds, opt)
}

// Stats returns a snapshot of the reuse counters. It waits for any
// in-flight solve.
func (s *Session) Stats() SessionStats {
	s.lk <- struct{}{}
	defer s.unlock()
	return s.stats
}

// seedsKey canonicalizes a seed slice for reuse detection. Order is kept:
// UnifySeeds lays out the super-source adjacency in seed order, so only a
// byte-identical seed sequence is guaranteed to replay identically.
func seedsKey(seeds []graph.V) string {
	var b strings.Builder
	for i, v := range seeds {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}
