// Package graph provides the directed probabilistic graph substrate used by
// every algorithm in this repository.
//
// A Graph is an immutable directed graph in compressed sparse row (CSR) form
// with a propagation probability on every edge, exactly the object the IMIN
// problem is defined on: vertices are users, an edge (u,v) with probability
// p(u,v) means an active u activates v with probability p(u,v) under the
// independent cascade model.
//
// Both out- and in-adjacency are stored: forward traversal and live-edge
// sampling need successors, while the weighted-cascade probability model and
// the blocking semantics ("set p(u,v)=0 for every in-edge of a blocked v")
// are defined on predecessors.
//
// Graphs are built through a Builder and are safe for concurrent reads.
package graph

import "fmt"

// V is the vertex id type. Vertices of a Graph with n vertices are the dense
// range [0, n). int32 keeps adjacency arrays compact; graphs of up to ~2
// billion vertices are representable, far beyond the paper's datasets.
type V = int32

// Edge is a directed edge with its propagation probability.
type Edge struct {
	From, To V
	P        float64
}

// Graph is an immutable directed graph in CSR form.
type Graph struct {
	n int

	// Out-adjacency: successors of u are outTo[outStart[u]:outStart[u+1]],
	// with matching probabilities in outP.
	outStart []int32
	outTo    []V
	outP     []float64

	// In-adjacency, mirroring the out representation.
	inStart []int32
	inTo    []V
	inP     []float64
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of directed edges.
func (g *Graph) M() int { return len(g.outTo) }

// OutDegree returns the out-degree of u.
func (g *Graph) OutDegree(u V) int { return int(g.outStart[u+1] - g.outStart[u]) }

// InDegree returns the in-degree of u.
func (g *Graph) InDegree(u V) int { return int(g.inStart[u+1] - g.inStart[u]) }

// OutNeighbors returns the successors of u. The slice aliases internal
// storage and must not be modified.
func (g *Graph) OutNeighbors(u V) []V { return g.outTo[g.outStart[u]:g.outStart[u+1]] }

// OutProbs returns the probabilities parallel to OutNeighbors(u).
// The slice aliases internal storage and must not be modified.
func (g *Graph) OutProbs(u V) []float64 { return g.outP[g.outStart[u]:g.outStart[u+1]] }

// InNeighbors returns the predecessors of u. The slice aliases internal
// storage and must not be modified.
func (g *Graph) InNeighbors(u V) []V { return g.inTo[g.inStart[u]:g.inStart[u+1]] }

// InProbs returns the probabilities parallel to InNeighbors(u).
// The slice aliases internal storage and must not be modified.
func (g *Graph) InProbs(u V) []float64 { return g.inP[g.inStart[u]:g.inStart[u+1]] }

// Prob returns the propagation probability of edge (u,v), or 0 if the edge
// does not exist. It is a linear scan of u's out-list and is meant for tests
// and small-graph tooling, not hot loops.
func (g *Graph) Prob(u, v V) float64 {
	to := g.OutNeighbors(u)
	for i, w := range to {
		if w == v {
			return g.OutProbs(u)[i]
		}
	}
	return 0
}

// HasEdge reports whether the directed edge (u,v) exists.
func (g *Graph) HasEdge(u, v V) bool {
	for _, w := range g.OutNeighbors(u) {
		if w == v {
			return true
		}
	}
	return false
}

// Edges returns all edges as a fresh slice, ordered by source vertex.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.M())
	for u := V(0); int(u) < g.n; u++ {
		to := g.OutNeighbors(u)
		ps := g.OutProbs(u)
		for i, v := range to {
			es = append(es, Edge{From: u, To: v, P: ps[i]})
		}
	}
	return es
}

// String summarizes the graph for diagnostics.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.n, g.M())
}

// Clone returns a deep copy of g. Algorithms that reassign probabilities
// (e.g. probability models) operate on clones to keep inputs immutable.
func (g *Graph) Clone() *Graph {
	cp := &Graph{
		n:        g.n,
		outStart: append([]int32(nil), g.outStart...),
		outTo:    append([]V(nil), g.outTo...),
		outP:     append([]float64(nil), g.outP...),
		inStart:  append([]int32(nil), g.inStart...),
		inTo:     append([]V(nil), g.inTo...),
		inP:      append([]float64(nil), g.inP...),
	}
	return cp
}

// validate panics if the CSR arrays are structurally inconsistent.
// Builders call it before returning a Graph.
func (g *Graph) validate() {
	if len(g.outStart) != g.n+1 || len(g.inStart) != g.n+1 {
		panic("graph: start array length mismatch")
	}
	if len(g.outTo) != len(g.outP) || len(g.inTo) != len(g.inP) {
		panic("graph: probability array length mismatch")
	}
	if len(g.outTo) != len(g.inTo) {
		panic("graph: in/out edge count mismatch")
	}
	if g.outStart[0] != 0 || int(g.outStart[g.n]) != len(g.outTo) {
		panic("graph: out CSR bounds corrupt")
	}
	if g.inStart[0] != 0 || int(g.inStart[g.n]) != len(g.inTo) {
		panic("graph: in CSR bounds corrupt")
	}
}
