// benchdiff.go compares a fresh benchcore report against the committed
// BENCH_core.json baseline and turns the delta into a pass/fail verdict —
// the perf-trajectory regression gate. Metrics fall into four classes:
//
//   - timing:  absolute ns/round and build-time numbers. Only comparable
//     when the baseline was measured on matching hardware provenance
//     (GOMAXPROCS, NumCPU, requested workers); otherwise reported but
//     ungated.
//   - ratio:   dimensionless speedups and encoding ratios. Hardware mostly
//     cancels out of a ratio, so these gate on every run — they are the
//     trajectory the paper's claims rest on (warm pools beat fresh
//     sampling, incremental beats pooled, compression trades bytes for
//     bounded slowdown).
//   - bar:     absolute acceptance bars (instrumentation overhead ≤ 2%).
//   - bool:    determinism contracts that must simply hold (bit-identical
//     blockers across workers, bit-identical pool repair).
//
// Every skipped or ungated metric is logged — a gate that silently narrows
// its own coverage reads as "all green" when it is not.
package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"
)

// BenchDiffOptions parameterizes the comparison.
type BenchDiffOptions struct {
	// TimingTolerancePct is the allowed worsening of absolute timing
	// metrics before they count as regressions (default 10). Benchcore
	// numbers on shared runners are noisy; the tolerance is the noise
	// floor, not a license.
	TimingTolerancePct float64
	// RatioTolerancePct is the allowed worsening of dimensionless ratio
	// metrics (default 10).
	RatioTolerancePct float64
	// Out receives the human-readable comparison table (default discard).
	Out io.Writer
}

// BenchDiffMetric is one compared metric.
type BenchDiffMetric struct {
	Name  string  `json:"name"`
	Class string  `json:"class"` // timing | ratio | bar | bool
	Base  float64 `json:"base"`
	Cur   float64 `json:"cur"`
	// DeltaPct is the signed change in percent, oriented so positive is
	// worse (slower, smaller speedup, bigger ratio).
	DeltaPct float64 `json:"delta_pct"`
	// Gated reports whether this metric participated in the verdict;
	// Regressed whether it exceeded its tolerance or broke its bar.
	Gated     bool `json:"gated"`
	Regressed bool `json:"regressed"`
}

// BenchDiffResult is the full comparison outcome.
type BenchDiffResult struct {
	// HardwareMatch reports whether the baseline's provenance
	// (GOMAXPROCS, NumCPU, requested workers) matches the candidate's.
	// Without it, absolute timings are reported but not gated.
	HardwareMatch bool              `json:"hardware_match"`
	Metrics       []BenchDiffMetric `json:"metrics"`
	// Regressions is the human-readable gate failures; empty means pass.
	Regressions []string `json:"regressions"`
}

// LoadBenchCoreReport reads a benchcore JSON report from disk.
func LoadBenchCoreReport(path string) (*BenchCoreReport, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep BenchCoreReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	return &rep, nil
}

// workloadMatches reports whether two reports measured the same workload.
// Comparing different workloads is meaningless, so a mismatch is an error,
// not an ungated metric.
func workloadMatches(base, cand *BenchCoreReport) error {
	if base.Graph != cand.Graph {
		return fmt.Errorf("graph mismatch: baseline %+v vs candidate %+v", base.Graph, cand.Graph)
	}
	if base.Theta != cand.Theta {
		return fmt.Errorf("theta mismatch: baseline %d vs candidate %d", base.Theta, cand.Theta)
	}
	if base.Budget != cand.Budget {
		return fmt.Errorf("budget mismatch: baseline %d vs candidate %d", base.Budget, cand.Budget)
	}
	return nil
}

// hardwareMatches reports whether the baseline's timing numbers were
// measured under the candidate's parallelism provenance.
func hardwareMatches(base, cand *BenchCoreReport) bool {
	return base.GoMaxProcs == cand.GoMaxProcs &&
		base.NumCPU == cand.NumCPU &&
		base.Workers == cand.Workers
}

// RunBenchDiff compares a candidate benchcore report against a baseline and
// returns the per-metric deltas plus the list of gate failures. It returns
// an error only when the two reports are incomparable (different workload);
// regressions are reported in the result, not as errors.
func RunBenchDiff(base, cand *BenchCoreReport, opt BenchDiffOptions) (*BenchDiffResult, error) {
	if opt.TimingTolerancePct <= 0 {
		opt.TimingTolerancePct = 10
	}
	if opt.RatioTolerancePct <= 0 {
		opt.RatioTolerancePct = 10
	}
	if opt.Out == nil {
		opt.Out = io.Discard
	}
	if err := workloadMatches(base, cand); err != nil {
		return nil, fmt.Errorf("benchdiff: baselines incomparable: %v", err)
	}

	res := &BenchDiffResult{HardwareMatch: hardwareMatches(base, cand)}
	if !res.HardwareMatch {
		fmt.Fprintf(opt.Out, "hardware provenance differs (baseline %d/%d cpu, workers=%d; candidate %d/%d cpu, workers=%d): absolute timings reported but NOT gated, ratios still gate\n",
			base.GoMaxProcs, base.NumCPU, base.Workers,
			cand.GoMaxProcs, cand.NumCPU, cand.Workers)
	}

	// worse converts a raw delta into "positive = worse" percent.
	add := func(name, class string, baseV, curV, worsePct, tolPct float64, gated bool) {
		m := BenchDiffMetric{Name: name, Class: class, Base: baseV, Cur: curV, DeltaPct: worsePct, Gated: gated}
		if gated && worsePct > tolPct {
			m.Regressed = true
			res.Regressions = append(res.Regressions,
				fmt.Sprintf("%s: %.4g -> %.4g (%+.1f%%, tolerance %.0f%%)", name, baseV, curV, worsePct, tolPct))
		}
		res.Metrics = append(res.Metrics, m)
		flag := ""
		if m.Regressed {
			flag = "  << REGRESSION"
		} else if !gated {
			flag = "  (ungated)"
		}
		fmt.Fprintf(opt.Out, "%-36s %12.4g -> %12.4g  %+7.1f%%%s\n", name, baseV, curV, worsePct, flag)
	}

	// higherWorse / lowerWorse skip metrics the baseline never measured
	// (zero value) — and say so, no silent narrowing.
	higherWorse := func(name, class string, baseV, curV, tol float64, gated bool) {
		if baseV == 0 {
			fmt.Fprintf(opt.Out, "%-36s skipped: baseline has no measurement\n", name)
			return
		}
		add(name, class, baseV, curV, 100*(curV-baseV)/baseV, tol, gated)
	}
	lowerWorse := func(name, class string, baseV, curV, tol float64, gated bool) {
		if baseV == 0 {
			fmt.Fprintf(opt.Out, "%-36s skipped: baseline has no measurement\n", name)
			return
		}
		add(name, class, baseV, curV, 100*(baseV-curV)/baseV, tol, gated)
	}

	tt, rt := opt.TimingTolerancePct, opt.RatioTolerancePct
	hw := res.HardwareMatch

	// Absolute timings: gated only on matching hardware provenance.
	higherWorse("fresh.ns_per_round", "timing", base.Fresh.NsPerRound, cand.Fresh.NsPerRound, tt, hw)
	higherWorse("pooled.ns_per_round", "timing", base.Pooled.NsPerRound, cand.Pooled.NsPerRound, tt, hw)
	higherWorse("incremental.ns_per_round", "timing", base.Incremental.NsPerRound, cand.Incremental.NsPerRound, tt, hw)
	higherWorse("pool_build_ms", "timing", base.PoolBuildMS, cand.PoolBuildMS, tt, hw)

	// Dimensionless ratios: always gated.
	lowerWorse("speedup_pooled_vs_fresh", "ratio", base.SpeedupPooledVsFresh, cand.SpeedupPooledVsFresh, rt, true)
	lowerWorse("speedup_incremental_vs_pooled", "ratio", base.SpeedupIncrementalVsPooled, cand.SpeedupIncrementalVsPooled, rt, true)
	lowerWorse("speedup_incremental_vs_fresh", "ratio", base.SpeedupIncrementalVsFresh, cand.SpeedupIncrementalVsFresh, rt, true)
	lowerWorse("speedup_incremental_4w_vs_1w", "ratio", base.SpeedupIncremental4WVs1W, cand.SpeedupIncremental4WVs1W, rt, true)
	higherWorse("compressed_pool_bytes_ratio", "ratio", base.CompressedPoolBytesRatio, cand.CompressedPoolBytesRatio, rt, true)
	higherWorse("compressed_ns_per_round_ratio", "ratio", base.CompressedNsPerRoundRatio, cand.CompressedNsPerRoundRatio, rt, true)

	// Absolute bars and determinism contracts on the candidate.
	if cand.Instrumentation != nil {
		// The acceptance bar on the hook's true cost is 2%, but the
		// measurement is a ratio of two noisy timings, so the gate allows
		// the timing tolerance on top — it catches a hook that grew real
		// per-round work (a lock, an allocation), not a noisy arm.
		const overheadBar = 2.0
		gateAt := overheadBar + tt
		m := BenchDiffMetric{
			Name: "instrumentation.overhead_pct", Class: "bar",
			Cur: cand.Instrumentation.OverheadPct, Gated: true,
		}
		if base.Instrumentation != nil {
			m.Base = base.Instrumentation.OverheadPct
		}
		if cand.Instrumentation.OverheadPct > gateAt {
			m.Regressed = true
			res.Regressions = append(res.Regressions,
				fmt.Sprintf("instrumentation.overhead_pct: %.2f%% exceeds the %.0f%% bar (+%.0f%% timing tolerance)",
					cand.Instrumentation.OverheadPct, overheadBar, tt))
		}
		res.Metrics = append(res.Metrics, m)
		fmt.Fprintf(opt.Out, "%-36s %12.4g -> %12.4g  (bar ≤ %.0f%% + %.0f%% tolerance)\n", m.Name, m.Base, m.Cur, overheadBar, tt)
		boolGate(res, opt.Out, "instrumentation.blockers_identical", cand.Instrumentation.BlockersIdentical)
	} else {
		fmt.Fprintf(opt.Out, "%-36s skipped: candidate has no measurement\n", "instrumentation.overhead_pct")
	}
	boolGate(res, opt.Out, "blockers_identical_across_workers", cand.BlockersIdenticalAcrossWorkers)
	for _, mp := range cand.MutateRepair {
		boolGate(res, opt.Out, fmt.Sprintf("mutate_repair[%d_edges].repair_bit_identical", mp.BatchEdges), mp.RepairBitIdentical)
	}

	return res, nil
}

// boolGate records one must-hold determinism contract.
func boolGate(res *BenchDiffResult, out io.Writer, name string, ok bool) {
	m := BenchDiffMetric{Name: name, Class: "bool", Base: 1, Cur: b2f(ok), Gated: true, Regressed: !ok}
	if !ok {
		res.Regressions = append(res.Regressions, fmt.Sprintf("%s: false", name))
	}
	res.Metrics = append(res.Metrics, m)
	fmt.Fprintf(out, "%-36s %v\n", name, ok)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// BenchHistoryEntry is one JSONL row of BENCH_history.jsonl — the
// perf-trajectory ledger every benchdiff run appends to, so the numbers'
// drift over time stays reviewable in-repo.
type BenchHistoryEntry struct {
	Time          string   `json:"time"`
	GoVersion     string   `json:"go_version"`
	GoMaxProcs    int      `json:"gomaxprocs"`
	NumCPU        int      `json:"num_cpu"`
	Workers       int      `json:"workers"`
	HardwareMatch bool     `json:"hardware_match"`
	Regressions   []string `json:"regressions,omitempty"`

	FreshNsPerRound            float64 `json:"fresh_ns_per_round"`
	PooledNsPerRound           float64 `json:"pooled_ns_per_round"`
	IncrementalNsPerRound      float64 `json:"incremental_ns_per_round"`
	SpeedupPooledVsFresh       float64 `json:"speedup_pooled_vs_fresh"`
	SpeedupIncrementalVsPooled float64 `json:"speedup_incremental_vs_pooled"`
	SpeedupIncrementalVsFresh  float64 `json:"speedup_incremental_vs_fresh"`
	CompressedPoolBytesRatio   float64 `json:"compressed_pool_bytes_ratio"`
	InstrumentationOverheadPct float64 `json:"instrumentation_overhead_pct,omitempty"`
}

// AppendBenchHistory appends one candidate's headline numbers plus the gate
// verdict to the JSONL history file, creating it if absent.
func AppendBenchHistory(path string, cand *BenchCoreReport, res *BenchDiffResult) error {
	e := BenchHistoryEntry{
		Time:          time.Now().UTC().Format(time.RFC3339),
		GoVersion:     cand.GoVersion,
		GoMaxProcs:    cand.GoMaxProcs,
		NumCPU:        cand.NumCPU,
		Workers:       cand.Workers,
		HardwareMatch: res.HardwareMatch,
		Regressions:   res.Regressions,

		FreshNsPerRound:            round4(cand.Fresh.NsPerRound),
		PooledNsPerRound:           round4(cand.Pooled.NsPerRound),
		IncrementalNsPerRound:      round4(cand.Incremental.NsPerRound),
		SpeedupPooledVsFresh:       round4(cand.SpeedupPooledVsFresh),
		SpeedupIncrementalVsPooled: round4(cand.SpeedupIncrementalVsPooled),
		SpeedupIncrementalVsFresh:  round4(cand.SpeedupIncrementalVsFresh),
		CompressedPoolBytesRatio:   round4(cand.CompressedPoolBytesRatio),
	}
	if cand.Instrumentation != nil {
		e.InstrumentationOverheadPct = round4(cand.Instrumentation.OverheadPct)
	}
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// round4 trims float noise before it lands in the committed history file.
func round4(v float64) float64 {
	if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return v
	}
	return math.Round(v*1e4) / 1e4
}
