package dominator

// SNCA computes the dominator tree using the Semi-NCA algorithm of
// Georgiadis & Tarjan. It shares the semidominator phase with
// Lengauer–Tarjan but replaces buckets and the deferred-evaluation fix-up
// with a single pass that rewrites each vertex's idom by walking up the
// partially built dominator tree to the nearest ancestor whose DFS number
// does not exceed the vertex's semidominator (the "nearest common
// ancestor" step). Same output, simpler bookkeeping; the benchmark suite
// compares the two as a design ablation.
func (ws *Workspace) SNCA(fg *FlowGraph, root int32) *Tree {
	ws.grow(fg.N)
	k := ws.dfs(fg, root)

	for i := 1; i <= k; i++ {
		v := ws.vertex[i]
		ws.semi[v] = int32(i)
		ws.label[v] = v
		ws.ancestor[v] = -1
		ws.idom[v] = ws.parent[v] // provisional: DFS tree parent
	}
	for v := 0; v < fg.N; v++ {
		if ws.dfn[v] == 0 {
			ws.idom[v] = -1
		}
	}

	// Semidominator phase, identical in structure to Lengauer–Tarjan.
	for i := int32(k); i >= 2; i-- {
		w := ws.vertex[i]
		for _, v := range fg.Pred(w) {
			if ws.dfn[v] == 0 {
				continue
			}
			u := ws.compressEval(v)
			if ws.semi[u] < ws.semi[w] {
				ws.semi[w] = ws.semi[u]
			}
		}
		ws.ancestor[w] = ws.parent[w]
	}

	// NCA phase: in increasing DFS order, lift each vertex's provisional
	// idom until its DFS number is at most semi(w). Ancestors processed
	// earlier are already final, so the walk is amortized near-linear.
	for i := int32(2); i <= int32(k); i++ {
		w := ws.vertex[i]
		x := ws.idom[w]
		for ws.dfn[x] > ws.semi[w] {
			x = ws.idom[x]
		}
		ws.idom[w] = x
	}
	ws.idom[root] = -1

	return &Tree{Root: root, Idom: ws.idom, Reached: k}
}
