// Package faultfs is the filesystem seam under imind's durability layer.
// Everything in internal/store (and the graph manifest/snapshot helpers it
// calls) performs its file I/O through the FS interface instead of the os
// package, so tests can substitute an Injector that fails, tears, or
// crashes at any chosen operation — EIO on the third fsync, ENOSPC while a
// snapshot lands, a short write in the middle of a WAL record, or a hard
// process abort at the Nth matching op — deterministically and without
// root, loop devices, or a custom kernel.
//
// Two implementations ship:
//
//   - OS: a zero-cost passthrough to the os package (production).
//   - Injector: wraps any FS with an ordered rule schedule (see Rule and
//     ParseSchedule) that decides, per operation, whether to pass through,
//     return an error, write short, or abort the process.
//
// The iminlint analyzer `vfsonly` keeps the seam airtight: direct os file
// I/O inside internal/store is a lint error, so no code path can bypass
// injection.
package faultfs

import (
	"io"
	"os"
)

// File is the subset of *os.File the durability layer uses. Sync is the
// member that earns the interface its keep: fsync failure is the fault
// class journaling code most often mishandles, and it cannot be provoked
// on a healthy filesystem.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Truncate changes the file's size (recovery cuts torn WAL tails).
	Truncate(size int64) error
	// Seek positions the next read/write.
	Seek(offset int64, whence int) (int64, error)
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem surface of the durability layer: every operation
// internal/store and the graph manifest helpers perform. Implementations
// must be safe for concurrent use.
type FS interface {
	// Open opens a file (or directory, for directory fsync) read-only.
	Open(name string) (File, error)
	// Create truncates-or-creates a file for writing (0644).
	Create(name string) (File, error)
	// OpenFile is the full open: flag and permission controlled.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes one file; RemoveAll a whole tree (nil if absent).
	Remove(name string) error
	RemoveAll(path string) error
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// ReadFile reads a whole file; WriteFile writes one (not durable —
	// durable writers go through Create/Write/Sync/Rename themselves).
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm os.FileMode) error
	// ReadDir lists a directory in name order.
	ReadDir(name string) ([]os.DirEntry, error)
	// Stat describes a file.
	Stat(name string) (os.FileInfo, error)
}

// OS is the passthrough FS: every call maps 1:1 onto the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Open(name string) (File, error)   { return os.Open(name) }
func (osFS) Create(name string) (File, error) { return os.Create(name) }
func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) RemoveAll(path string) error          { return os.RemoveAll(path) }
func (osFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Stat(name string) (os.FileInfo, error)      { return os.Stat(name) }
