package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"github.com/imin-dev/imin/internal/rng"
)

func TestBinaryRoundTrip(t *testing.T) {
	g := toy()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
}

func TestBinaryFileRoundTrip(t *testing.T) {
	g := toy()
	path := t.TempDir() + "/g.bin"
	if err := g.WriteBinaryFile(path); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
}

func assertGraphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("size mismatch: (%d,%d) vs (%d,%d)", a.N(), a.M(), b.N(), b.M())
	}
	for u := V(0); int(u) < a.N(); u++ {
		at, bt := a.OutNeighbors(u), b.OutNeighbors(u)
		ap, bp := a.OutProbs(u), b.OutProbs(u)
		if len(at) != len(bt) {
			t.Fatalf("vertex %d out-degree mismatch", u)
		}
		for i := range at {
			if at[i] != bt[i] || ap[i] != bp[i] {
				t.Fatalf("vertex %d edge %d mismatch", u, i)
			}
		}
		// In-adjacency must be faithfully rebuilt too.
		ait, bit := a.InNeighbors(u), b.InNeighbors(u)
		if len(ait) != len(bit) {
			t.Fatalf("vertex %d in-degree mismatch", u)
		}
		for i := range ait {
			if ait[i] != bit[i] {
				t.Fatalf("vertex %d in-edge %d mismatch", u, i)
			}
		}
	}
}

// roundTrip encodes and decodes g, failing the test on any error.
func roundTrip(t *testing.T, g *Graph) *Graph {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return g2
}

// TestBinaryRoundTripComposedWithReverse checks the binary codec composed
// with graph reversal in both orders: serialization must commute with the
// transform, and a double reversal through the codec must reproduce the
// original — including the rebuilt in-CSR the dominator algorithms consume.
func TestBinaryRoundTripComposedWithReverse(t *testing.T) {
	r := rng.New(17)
	b := NewBuilder(40)
	for i := 0; i < 150; i++ {
		b.AddEdge(V(r.Intn(40)), V(r.Intn(40)), r.Float64())
	}
	g := b.Build()

	// encode∘Reverse == Reverse (decoded).
	rev := g.Reverse()
	assertGraphsEqual(t, rev, roundTrip(t, rev))
	// Reverse∘decode∘encode == Reverse.
	assertGraphsEqual(t, rev, roundTrip(t, g).Reverse())
	// Reverse∘decode∘encode∘Reverse == identity.
	assertGraphsEqual(t, g, roundTrip(t, rev).Reverse())
}

// TestBinaryRoundTripComposedWithSubgraph runs induced-subgraph extraction
// through the codec: the decoded subgraph must match the direct extraction
// edge-for-edge, and extraction must commute with the round trip.
func TestBinaryRoundTripComposedWithSubgraph(t *testing.T) {
	r := rng.New(23)
	b := NewBuilder(50)
	for i := 0; i < 200; i++ {
		b.AddEdge(V(r.Intn(50)), V(r.Intn(50)), r.Float64())
	}
	g := b.Build()

	// A shuffled half of the vertices, so the renumbering is non-trivial.
	perm := r.Perm(50)
	keep := make([]V, 25)
	for i := range keep {
		keep[i] = V(perm[i])
	}
	sub, old := g.InducedSubgraph(keep)
	if len(old) != len(keep) {
		t.Fatalf("id mapping has %d entries, want %d", len(old), len(keep))
	}

	assertGraphsEqual(t, sub, roundTrip(t, sub))
	sub2, old2 := roundTrip(t, g).InducedSubgraph(keep)
	assertGraphsEqual(t, sub, sub2)
	for i := range old {
		if old[i] != old2[i] {
			t.Fatalf("id mapping diverged at %d: %d vs %d", i, old[i], old2[i])
		}
	}
	// Spot-check the extraction against the original through the mapping.
	for i, u := range old {
		for j, v := range old {
			if got, want := sub2.Prob(V(i), V(j)), g.Prob(u, v); got != want {
				t.Fatalf("edge (%d,%d)→(%d,%d): prob %v, want %v", u, v, i, j, got, want)
			}
		}
	}
}

func TestBinaryRejectsCorruptInput(t *testing.T) {
	g := toy()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    append([]byte("XXXX"), good[4:]...),
		"truncated":    good[:len(good)/2],
		"short header": good[:10],
	}
	for name, data := range cases {
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}

	// Bad version.
	bad := append([]byte(nil), good...)
	bad[4] = 99
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version: err = %v", err)
	}

	// Out-of-range edge target.
	bad = append([]byte(nil), good...)
	// outTo starts after magic(4)+header(20)+outStart((n+1)*4).
	off := 4 + 20 + (g.N()+1)*4
	bad[off] = 0xFF
	bad[off+1] = 0xFF
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("corrupt edge target accepted")
	}
}

// Property: binary round trip is the identity on random graphs.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%60) + 1
		r := rng.New(seed)
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(V(r.Intn(n)), V(r.Intn(n)), r.Float64())
		}
		g := b.Build()
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if g.N() != g2.N() || g.M() != g2.M() {
			return false
		}
		for _, e := range g.Edges() {
			if g2.Prob(e.From, e.To) != e.P {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBinaryWrite(b *testing.B) {
	bld := NewBuilder(10000)
	r := rng.New(1)
	for i := 0; i < 50000; i++ {
		bld.AddEdge(V(r.Intn(10000)), V(r.Intn(10000)), r.Float64())
	}
	g := bld.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryRead(b *testing.B) {
	bld := NewBuilder(10000)
	r := rng.New(1)
	for i := 0; i < 50000; i++ {
		bld.AddEdge(V(r.Intn(10000)), V(r.Intn(10000)), r.Float64())
	}
	var buf bytes.Buffer
	if err := bld.Build().WriteBinary(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
