package lintrules

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/imin-dev/imin/internal/lintkit"
)

// DetPackages are the determinism-critical packages: the solver core whose
// blocker sets must be bit-identical at any worker count, the epoch layer
// whose changelogs feed pool repair, and the serving layer's solve paths.
var DetPackages = []string{"internal/core", "internal/dynamic", "internal/service"}

// DetRand flags sources of nondeterminism in determinism-critical packages:
//
//   - iteration over a map feeding an ordered sink — an append to a slice
//     that is not sorted afterwards in the same statement list, a write to
//     an io.Writer/encoder, a channel send, or a floating-point accumulator
//     (float addition is not associative, so accumulation order changes the
//     result bit pattern);
//   - any use of math/rand or math/rand/v2 — randomness must come from
//     internal/rng streams so every draw is replayable from a seed;
//   - time-as-entropy (time.Now().UnixNano() and friends feeding seeds).
//     Plain time.Now() for durations and deadlines stays legal.
//
// Map iteration that builds another map or set, or accumulates into integer
// counters (commutative), is deterministic in effect and not flagged.
var DetRand = &lintkit.Analyzer{
	Name: "detrand",
	Doc:  "flags unsorted map iteration into ordered sinks, math/rand, and time-as-entropy in determinism-critical packages",
	Run:  runDetRand,
}

var timeEntropyMethods = map[string]bool{
	"UnixNano": true, "Unix": true, "UnixMilli": true, "UnixMicro": true, "Nanosecond": true,
}

func runDetRand(pass *lintkit.Pass) error {
	if !scopedTo(pass.PkgPath, DetPackages) {
		return nil
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if pkg, ok := info.Uses[identOf(n.X)].(*types.PkgName); ok {
					p := pkg.Imported().Path()
					if p == "math/rand" || p == "math/rand/v2" {
						pass.Reportf(n.Pos(), "use of %s.%s: determinism-critical packages draw randomness from internal/rng streams", p, n.Sel.Name)
					}
				}
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok && timeEntropyMethods[sel.Sel.Name] && isTimeNowCall(info, sel.X) {
					pass.Reportf(n.Pos(), "time.Now().%s is time-as-entropy: seed from internal/rng streams, not the clock", sel.Sel.Name)
				}
			case *ast.BlockStmt:
				checkStmtList(pass, n.List)
			case *ast.CaseClause:
				checkStmtList(pass, n.Body)
			case *ast.CommClause:
				checkStmtList(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

func identOf(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}

// isTimeNowCall reports whether e is a direct time.Now() call.
func isTimeNowCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	pkg, name, _ := calleeName(info, call)
	return pkg == "time" && name == "Now"
}

// checkStmtList looks at each map-range statement together with the
// statements that follow it in the same list, so a sort applied after the
// loop is visible.
func checkStmtList(pass *lintkit.Pass, stmts []ast.Stmt) {
	for i, s := range stmts {
		rs, ok := s.(*ast.RangeStmt)
		if !ok {
			continue
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok {
			continue
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			continue
		}
		checkMapRange(pass, rs, stmts[i+1:])
	}
}

func checkMapRange(pass *lintkit.Pass, rs *ast.RangeStmt, after []ast.Stmt) {
	info := pass.TypesInfo
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// Nested map ranges are checked by their own visit.
			if n != rs {
				tv, ok := info.Types[n.X]
				if ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						return false
					}
				}
			}
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside map iteration: receive order depends on map order; iterate sorted keys")
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rs, n, after)
		case *ast.CallExpr:
			if isOrderedSinkCall(info, n) {
				pass.Reportf(n.Pos(), "write to an ordered sink inside map iteration: output order is nondeterministic; iterate sorted keys")
			}
		}
		return true
	})
}

// checkMapRangeAssign flags order-sensitive accumulation in a map-range
// body: appends to outer slices that are never sorted afterwards, and
// floating-point read-modify-write on outer variables.
func checkMapRangeAssign(pass *lintkit.Pass, rs *ast.RangeStmt, as *ast.AssignStmt, after []ast.Stmt) {
	info := pass.TypesInfo
	switch as.Tok {
	case token.ASSIGN, token.DEFINE:
		// x = append(x, ...) — the slice accumulates map-ordered elements.
		if len(as.Rhs) == 1 {
			if call, ok := as.Rhs[0].(*ast.CallExpr); ok && isBuiltinAppend(info, call) {
				target := identOf(as.Lhs[0])
				if target == nil {
					return
				}
				obj := info.ObjectOf(target)
				if !declaredBefore(obj, rs.Pos()) {
					return // loop-local scratch
				}
				if sortedAfter(info, obj, after) {
					return
				}
				pass.Reportf(as.Pos(), "append to %q inside map iteration without a later sort: element order is nondeterministic; sort %q after the loop or iterate sorted keys", target.Name, target.Name)
			}
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		target := as.Lhs[0]
		tv, ok := info.Types[target]
		if !ok {
			return
		}
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
			if id := identOf(target); id != nil && !declaredBefore(info.ObjectOf(id), rs.Pos()) {
				return
			}
			pass.Reportf(as.Pos(), "floating-point accumulation inside map iteration: float addition is not associative, so the result depends on map order; iterate sorted keys")
		}
	}
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id := identOf(call.Fun)
	if id == nil {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether any statement after the loop (same list)
// sorts the accumulated slice.
var sortFuncs = map[string]map[string]bool{
	"sort":   {"Slice": true, "SliceStable": true, "Sort": true, "Stable": true, "Strings": true, "Ints": true, "Float64s": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

func sortedAfter(info *types.Info, obj types.Object, after []ast.Stmt) bool {
	for _, s := range after {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			pkg, name, _ := calleeName(info, call)
			short := pkg
			if i := lastSlash(pkg); i >= 0 {
				short = pkg[i+1:]
			}
			if names, ok := sortFuncs[short]; !ok || !names[name] {
				return true
			}
			if id := identOf(call.Args[0]); id != nil && info.Uses[id] == obj {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

// isOrderedSinkCall recognizes writes whose order is observable: fmt.Fprint*
// to a writer, io.WriteString, encoder Encode, and Write/WriteString methods
// on io.Writer implementations.
func isOrderedSinkCall(info *types.Info, call *ast.CallExpr) bool {
	pkg, name, recv := calleeName(info, call)
	switch {
	case pkg == "fmt" && (name == "Fprint" || name == "Fprintf" || name == "Fprintln"):
		return true
	case pkg == "io" && name == "WriteString":
		return true
	case recv != "" && (name == "Write" || name == "WriteString" || name == "WriteByte" || name == "WriteRune" || name == "Encode"):
		// A Write-shaped method on any receiver: strings.Builder,
		// bufio.Writer, json.Encoder, http.ResponseWriter, os.File, ...
		return true
	}
	return false
}
