package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOTBasic(t *testing.T) {
	g := toy()
	var buf bytes.Buffer
	err := g.WriteDOT(&buf, DOTOptions{
		Name:              "toy",
		Highlight:         map[V]string{0: "tomato"},
		Label:             map[V]string{0: "v1"},
		ShowProbabilities: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph toy {",
		`0 [label="v1", style=filled, fillcolor="tomato"];`,
		`4 -> 7 [label="0.5"];`,
		`8 -> 7 [label="0.2"];`,
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q\n%s", want, out)
		}
	}
	if strings.Count(out, "->") != g.M() {
		t.Errorf("edge count %d, want %d", strings.Count(out, "->"), g.M())
	}
}

func TestWriteDOTTruncation(t *testing.T) {
	g := toy()
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, DOTOptions{MaxEdges: 3}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "->") != 3 {
		t.Errorf("truncated output has %d edges", strings.Count(out, "->"))
	}
	if !strings.Contains(out, "truncated") {
		t.Error("missing truncation comment")
	}
	if !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Error("truncated output unbalanced")
	}
}

func TestWriteDOTDefaults(t *testing.T) {
	g := FromEdges(2, []Edge{{From: 0, To: 1, P: 0.5}})
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, DOTOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "digraph G {") {
		t.Error("default name missing")
	}
	if strings.Contains(out, "label=\"0.5\"") {
		t.Error("probabilities shown without ShowProbabilities")
	}
}
