package core

import (
	"context"
	"math"
	"reflect"
	"testing"

	"github.com/imin-dev/imin/internal/cascade"
	"github.com/imin-dev/imin/internal/fixture"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// TestSamplePoolInvertedIndexHandBuilt pins the index down on a pool whose
// content is fully determined: certain edges sample identically every time,
// so every sample of the chain 0→1→2 is exactly {0,1,2} and the p=0 spur
// never appears.
func TestSamplePoolInvertedIndexHandBuilt(t *testing.T) {
	bld := graph.NewBuilder(5)
	bld.AddEdge(0, 1, 1)
	bld.AddEdge(1, 2, 1)
	bld.AddEdge(1, 3, 0) // never live
	// vertex 4 is isolated
	g := bld.Build()

	const theta = 6
	pool := NewSamplePool(cascade.NewIC(g), 0, theta, 3, rng.New(1))
	if pool.Theta() != theta {
		t.Fatalf("Theta = %d, want %d", pool.Theta(), theta)
	}
	for v, want := range [][]int32{
		0: {0, 1, 2, 3, 4, 5},
		1: {0, 1, 2, 3, 4, 5},
		2: {0, 1, 2, 3, 4, 5},
		3: {},
		4: {},
	} {
		got := pool.SamplesContaining(graph.V(v))
		if len(got) != len(want) {
			t.Fatalf("SamplesContaining(%d) = %v, want %v", v, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("SamplesContaining(%d) = %v, want %v", v, got, want)
			}
		}
	}
	var s sampleView
	for i := 0; i < theta; i++ {
		pool.view(i, &s)
		if !reflect.DeepEqual(s.orig, []graph.V{0, 1, 2}) {
			t.Fatalf("sample %d orig = %v, want [0 1 2]", i, s.orig)
		}
		if !reflect.DeepEqual(s.outStart, []int32{0, 1, 2, 2}) || !reflect.DeepEqual(s.outTo, []int32{1, 2}) {
			t.Fatalf("sample %d CSR = %v/%v, want [0 1 2 2]/[1 2]", i, s.outStart, s.outTo)
		}
	}
	if pool.MemoryBytes() <= 0 {
		t.Error("MemoryBytes must be positive")
	}
}

// TestSamplePoolIndexConsistency checks, on a random pool, that the
// inverted index is exactly the transpose of the sample→vertex relation:
// every (sample, vertex) pair appears on both sides and nowhere else.
func TestSamplePoolIndexConsistency(t *testing.T) {
	g := fixture.Toy()
	pool := NewSamplePool(cascade.NewIC(g), fixture.Seed, 500, 4, rng.New(3))

	inSample := make([]map[graph.V]bool, pool.Theta())
	total := 0
	var s sampleView
	for i := 0; i < pool.Theta(); i++ {
		pool.view(i, &s)
		inSample[i] = make(map[graph.V]bool, len(s.orig))
		for _, v := range s.orig {
			inSample[i][v] = true
		}
		total += len(s.orig)
	}
	indexed := 0
	for v := graph.V(0); int(v) < g.N(); v++ {
		prev := int32(-1)
		for _, i := range pool.SamplesContaining(v) {
			if i <= prev {
				t.Fatalf("index of vertex %d not strictly ascending: %v", v, pool.SamplesContaining(v))
			}
			prev = i
			if !inSample[i][v] {
				t.Fatalf("index says sample %d contains %d, but its view does not", i, v)
			}
			indexed++
		}
	}
	if indexed != total {
		t.Fatalf("index holds %d pairs, samples hold %d", indexed, total)
	}
}

// TestIncrementalMatchesPooledBitIdentical drives the two estimators over
// the same pool through a greedy-like blocker trajectory with both blocks
// and unblocks (the GreedyReplace phase-2 pattern) and requires DecreaseES
// outputs to be bit-identical at every step — the contract that lets the
// incremental path replace the full re-scan with no behavioral change.
func TestIncrementalMatchesPooledBitIdentical(t *testing.T) {
	for _, seed := range []uint64{1, 2, 42} {
		r := rng.New(seed)
		n := r.Intn(30) + 20
		// Sparse, low-probability graphs: samples reach a fraction of the
		// vertices, so the savings assertion below has sparsity to exploit.
		bld := graph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			bld.AddEdge(graph.V(r.Intn(n)), graph.V(r.Intn(n)), float64(r.Intn(3))*0.15+0.1)
		}
		g := bld.Build()

		pool := NewSamplePool(cascade.NewIC(g), 0, 400, 3, rng.New(seed+100))
		pooled := NewPooledEstimatorFromPool(pool, 3, DomLengauerTarjan)
		incr := NewIncrementalPooledEstimatorFromPool(pool, 3, DomLengauerTarjan)

		blocked := make([]bool, n)
		dP := make([]float64, n)
		dI := make([]float64, n)
		var trajectory []graph.V
		for round := 0; round < 12; round++ {
			pooled.DecreaseES(dP, blocked)
			incr.DecreaseES(dI, blocked)
			for v := range dP {
				if dP[v] != dI[v] { // exact float equality, deliberately
					t.Fatalf("seed=%d round=%d v=%d: pooled %v != incremental %v",
						seed, round, v, dP[v], dI[v])
				}
			}
			// Alternate greedy blocks with GR-style unblocks.
			if round%4 == 3 && len(trajectory) > 0 {
				u := trajectory[len(trajectory)-1]
				trajectory = trajectory[:len(trajectory)-1]
				blocked[u] = false
				continue
			}
			best := graph.V(-1)
			for v := graph.V(1); int(v) < n; v++ {
				if blocked[v] {
					continue
				}
				if best == -1 || dP[v] > dP[best] {
					best = v
				}
			}
			if best == -1 {
				break
			}
			blocked[best] = true
			trajectory = append(trajectory, best)
		}

		st := incr.Stats()
		if st.Rounds == 0 || st.SamplesReprocessed >= st.Rounds*int64(pool.Theta()) {
			t.Errorf("seed=%d: reprocessed %d of %d sample-rounds — no incremental savings",
				seed, st.SamplesReprocessed, st.Rounds*int64(pool.Theta()))
		}
	}
}

// TestEstimatorsCrossValidateBlockerSets asserts that the three DecreaseES
// strategies select identical blocker sets for AG and GR at pinned RNG
// streams: pooled and incremental must agree exactly (bit-identical Δ over
// the same pool), and the fresh-sample solver agrees at these θ because the
// estimates are far enough apart on these instances — pinned seeds keep
// that deterministic, matching the crossvalidate_test.go approach.
func TestEstimatorsCrossValidateBlockerSets(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 5, 8} {
		r := rng.New(seed)
		n := r.Intn(8) + 5
		bld := graph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			bld.AddEdge(graph.V(r.Intn(n)), graph.V(r.Intn(n)), float64(r.Intn(4))*0.25+0.25)
		}
		g := bld.Build()
		for _, theta := range []int{3000, 8000} {
			opt := Options{Theta: theta, Workers: 2, Seed: seed}
			for _, alg := range []Algorithm{AdvancedGreedy, GreedyReplace} {
				fresh, err := Solve(g, []graph.V{0}, 2, alg, opt)
				if err != nil {
					t.Fatalf("seed=%d θ=%d %s fresh: %v", seed, theta, alg, err)
				}

				optPool := opt
				optPool.ReuseSamples = true
				incr, err := Solve(g, []graph.V{0}, 2, alg, optPool)
				if err != nil {
					t.Fatalf("seed=%d θ=%d %s incremental: %v", seed, theta, alg, err)
				}

				// The non-incremental pooled estimator over the pool a cold
				// ReuseSamples run draws (same split chain).
				in, err := newInstance(g, []graph.V{0})
				if err != nil {
					t.Fatal(err)
				}
				base := rng.New(opt.Seed)
				pooledEst := NewPooledEstimator(
					in.sampler(opt.Diffusion), in.src, theta, opt.Workers, opt.DomAlgo, base.Split(^uint64(0)))
				back := &estBackend{pooled: pooledEst, theta: theta, base: base}
				var pooled Result
				if alg == AdvancedGreedy {
					pooled = solveAdvancedGreedy(stopper{}, in, back, 2, opt)
				} else {
					pooled = solveGreedyReplace(stopper{}, in, back, 2, opt)
				}

				if !reflect.DeepEqual(pooled.Blockers, incr.Blockers) {
					t.Errorf("seed=%d θ=%d %s: pooled %v != incremental %v (must be exact)",
						seed, theta, alg, pooled.Blockers, incr.Blockers)
				}
				if !reflect.DeepEqual(fresh.Blockers, incr.Blockers) {
					t.Errorf("seed=%d θ=%d %s: fresh %v != pooled/incremental %v",
						seed, theta, alg, fresh.Blockers, incr.Blockers)
				}
			}
		}
	}
}

// TestIncrementalEstimatorMatchesExample2 anchors the incremental path to
// the paper's worked example, mirroring TestPooledEstimatorMatchesExample2.
func TestIncrementalEstimatorMatchesExample2(t *testing.T) {
	g := fixture.Toy()
	e := NewIncrementalPooledEstimator(cascade.NewIC(g), fixture.Seed, 200000, 4, DomLengauerTarjan, rng.New(1))
	delta := make([]float64, g.N())
	e.DecreaseES(delta, nil)
	want := fixture.Delta()
	for v := range want {
		if math.Abs(delta[v]-want[v]) > 0.02 {
			t.Errorf("Δ[v%d] = %v, want %v", v+1, delta[v], want[v])
		}
	}
}

// TestSessionWarmPoolReuse is the warm-session fix: repeated ReuseSamples
// solves with the same (seeds, Seed, Theta) must stop paying pool
// construction — and still return exactly the cold-solve blockers.
func TestSessionWarmPoolReuse(t *testing.T) {
	g := sessionTestGraph(300)
	seeds := []graph.V{1, 4, 7}
	opt := Options{Theta: 300, Seed: 5, Workers: 2, ReuseSamples: true}
	ctx := context.Background()

	cold, err := Solve(g, seeds, 5, AdvancedGreedy, opt)
	if err != nil {
		t.Fatal(err)
	}
	if cold.SampledGraphs != int64(opt.Theta) {
		t.Fatalf("cold SampledGraphs = %d, want %d", cold.SampledGraphs, opt.Theta)
	}

	sess := NewSession(g, DiffusionIC, DomLengauerTarjan, 2)
	for call := 0; call < 3; call++ {
		res, err := sess.Solve(ctx, seeds, 5, AdvancedGreedy, opt)
		if err != nil {
			t.Fatalf("session solve %d: %v", call, err)
		}
		if !reflect.DeepEqual(res.Blockers, cold.Blockers) {
			t.Fatalf("call %d: warm blockers %v != cold %v", call, res.Blockers, cold.Blockers)
		}
		wantDrawn := int64(0)
		if call == 0 {
			wantDrawn = int64(opt.Theta)
		}
		if res.SampledGraphs != wantDrawn {
			t.Errorf("call %d: SampledGraphs = %d, want %d", call, res.SampledGraphs, wantDrawn)
		}
	}

	// GreedyReplace on the same pool key must also reuse it.
	if _, err := sess.Solve(ctx, seeds, 3, GreedyReplace, opt); err != nil {
		t.Fatal(err)
	}

	st := sess.Stats()
	if st.PoolBuilds != 1 {
		t.Errorf("PoolBuilds = %d, want 1", st.PoolBuilds)
	}
	if st.PoolReuses != 3 {
		t.Errorf("PoolReuses = %d, want 3", st.PoolReuses)
	}
	if st.PoolBytes <= 0 {
		t.Errorf("PoolBytes = %d, want > 0", st.PoolBytes)
	}

	// A different Options.Seed is a different pool.
	opt2 := opt
	opt2.Seed = 6
	if _, err := sess.Solve(ctx, seeds, 2, AdvancedGreedy, opt2); err != nil {
		t.Fatal(err)
	}
	if st := sess.Stats(); st.PoolBuilds != 2 {
		t.Errorf("PoolBuilds after new seed = %d, want 2", st.PoolBuilds)
	}
}

// TestSessionPoolLRUBound keeps the per-instance pool cache bounded: a
// third distinct (Seed, Theta) evicts the least recently used pool, and
// pool bytes never track more than maxSessionPools pools.
func TestSessionPoolLRUBound(t *testing.T) {
	g := sessionTestGraph(200)
	seeds := []graph.V{2, 3}
	ctx := context.Background()
	sess := NewSession(g, DiffusionIC, DomLengauerTarjan, 2)

	for i := 0; i < 2*maxSessionPools; i++ {
		opt := Options{Theta: 100, Seed: uint64(i + 1), Workers: 2, ReuseSamples: true}
		if _, err := sess.Solve(ctx, seeds, 2, AdvancedGreedy, opt); err != nil {
			t.Fatal(err)
		}
	}
	st := sess.Stats()
	if st.PoolBuilds != int64(2*maxSessionPools) {
		t.Errorf("PoolBuilds = %d, want %d (every seed distinct)", st.PoolBuilds, 2*maxSessionPools)
	}
	// Re-solving the most recent seed must hit; the oldest must rebuild.
	optRecent := Options{Theta: 100, Seed: uint64(2 * maxSessionPools), Workers: 2, ReuseSamples: true}
	if _, err := sess.Solve(ctx, seeds, 2, AdvancedGreedy, optRecent); err != nil {
		t.Fatal(err)
	}
	if got := sess.Stats(); got.PoolReuses != st.PoolReuses+1 {
		t.Errorf("recent pool did not hit: reuses %d -> %d", st.PoolReuses, got.PoolReuses)
	}
	optOld := Options{Theta: 100, Seed: 1, Workers: 2, ReuseSamples: true}
	if _, err := sess.Solve(ctx, seeds, 2, AdvancedGreedy, optOld); err != nil {
		t.Fatal(err)
	}
	if got := sess.Stats(); got.PoolBuilds != st.PoolBuilds+1 {
		t.Errorf("evicted pool was not rebuilt: builds %d -> %d", st.PoolBuilds, got.PoolBuilds)
	}
}
