// Positive epochorder fixture: epoch fields written by helpers outside the
// blessed commit/replay entry points.
package fixture

type graphState struct {
	epoch     uint64
	snapEpoch uint64
}

func (g *graphState) bumpForTest() {
	g.epoch++ // want "written in bumpForTest"
}

func (g *graphState) setSnap(e uint64) {
	g.snapEpoch = e // want "written in setSnap"
}
