package core

import (
	"context"
	"reflect"
	"testing"

	"github.com/imin-dev/imin/internal/datasets"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

func sessionTestGraph(n int) *graph.Graph {
	g := datasets.PreferentialAttachment(n, 3, true, rng.New(11))
	return graph.Trivalency.Assign(g, rng.New(12))
}

// A warm Session must select exactly the blockers a cold Solve picks for
// the same (Seed, Theta, Workers, Diffusion, DomAlgo) — the cached
// estimator carries no per-run state.
func TestSessionMatchesSolve(t *testing.T) {
	g := sessionTestGraph(400)
	seeds := []graph.V{1, 5, 9}
	opt := Options{Theta: 200, Seed: 7, Workers: 2}
	sess := NewSession(g, DiffusionIC, DomLengauerTarjan, 2)

	for _, alg := range []Algorithm{AdvancedGreedy, GreedyReplace, OutDegree, Rand} {
		direct, err := Solve(g, seeds, 6, alg, opt)
		if err != nil {
			t.Fatalf("%s: direct solve: %v", alg, err)
		}
		for call := 0; call < 2; call++ {
			res, err := sess.Solve(context.Background(), seeds, 6, alg, opt)
			if err != nil {
				t.Fatalf("%s: session solve %d: %v", alg, call, err)
			}
			if !reflect.DeepEqual(res.Blockers, direct.Blockers) {
				t.Fatalf("%s call %d: session blockers %v != direct %v", alg, call, res.Blockers, direct.Blockers)
			}
		}
	}

	st := sess.Stats()
	if st.Rebuilds != 1 {
		t.Errorf("rebuilds = %d, want 1 (same seed set throughout)", st.Rebuilds)
	}
	if st.Reuses < 7 {
		t.Errorf("reuses = %d, want >= 7", st.Reuses)
	}
	if st.Solves != 8 {
		t.Errorf("solves = %d, want 8", st.Solves)
	}
}

// Changing the seed set must rebuild the unified instance (and count as a
// rebuild), not silently reuse the old one.
func TestSessionRebuildsOnSeedChange(t *testing.T) {
	g := sessionTestGraph(200)
	sess := NewSession(g, DiffusionIC, DomLengauerTarjan, 2)
	opt := Options{Theta: 100, Seed: 3, Workers: 2}
	ctx := context.Background()

	if _, err := sess.Solve(ctx, []graph.V{0, 1}, 3, AdvancedGreedy, opt); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Solve(ctx, []graph.V{2, 3}, 3, AdvancedGreedy, opt); err != nil {
		t.Fatal(err)
	}
	direct, err := Solve(g, []graph.V{2, 3}, 3, AdvancedGreedy, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Solve(ctx, []graph.V{2, 3}, 3, AdvancedGreedy, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Blockers, direct.Blockers) {
		t.Fatalf("after seed change: session %v != direct %v", res.Blockers, direct.Blockers)
	}
	if st := sess.Stats(); st.Rebuilds != 2 || st.Reuses != 1 {
		t.Errorf("stats = %+v, want 2 rebuilds, 1 reuse", st)
	}
}

// Interleaved seed sets on one session must not thrash: each set keeps its
// prepared instance (up to maxSessionInstances), so alternating callers
// rebuild once each, not on every call.
func TestSessionInterleavedSeedSets(t *testing.T) {
	g := sessionTestGraph(200)
	sess := NewSession(g, DiffusionIC, DomLengauerTarjan, 2)
	opt := Options{Theta: 100, Seed: 3, Workers: 2}
	ctx := context.Background()
	setA, setB := []graph.V{0, 1}, []graph.V{2, 3}
	for i := 0; i < 3; i++ {
		if _, err := sess.Solve(ctx, setA, 2, AdvancedGreedy, opt); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.Solve(ctx, setB, 2, AdvancedGreedy, opt); err != nil {
			t.Fatal(err)
		}
	}
	if st := sess.Stats(); st.Rebuilds != 2 || st.Reuses != 4 {
		t.Errorf("stats = %+v, want 2 rebuilds, 4 reuses", st)
	}

	// More distinct seed sets than the cache bound still stay bounded:
	// only eviction victims rebuild.
	for i := 0; i < maxSessionInstances+1; i++ {
		if _, err := sess.Solve(ctx, []graph.V{graph.V(10 + i)}, 1, OutDegree, opt); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(sess.insts); n != maxSessionInstances {
		t.Errorf("cached instances = %d, want %d", n, maxSessionInstances)
	}
}

// Session.EvaluateSpread must agree with the stateless EvaluateSpread.
func TestSessionEvaluateSpread(t *testing.T) {
	g := sessionTestGraph(200)
	seeds := []graph.V{1, 4}
	blockers := []graph.V{7, 20}
	opt := Options{Seed: 5, Workers: 2}

	want, err := EvaluateSpread(g, seeds, blockers, 2000, opt)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(g, DiffusionIC, DomLengauerTarjan, 2)
	got, err := sess.EvaluateSpread(context.Background(), seeds, blockers, 2000, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("session spread %v != direct %v", got, want)
	}
}

// Waiting for a busy session is context-aware: a canceled caller stops
// queueing with ctx.Err() instead of blocking until the session frees.
func TestSessionLockContextAware(t *testing.T) {
	g := sessionTestGraph(100)
	sess := NewSession(g, DiffusionIC, DomLengauerTarjan, 1)
	if err := sess.lock(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.Solve(ctx, []graph.V{0}, 1, AdvancedGreedy, Options{Theta: 10}); err == nil {
		t.Fatal("Solve acquired a held session despite a canceled context")
	}
	if _, err := sess.EvaluateSpread(ctx, []graph.V{0}, nil, 10, Options{}); err == nil {
		t.Fatal("EvaluateSpread acquired a held session despite a canceled context")
	}
	sess.unlock()
	if _, err := sess.Solve(context.Background(), []graph.V{0}, 1, AdvancedGreedy, Options{Theta: 10, Seed: 1}); err != nil {
		t.Fatalf("freed session: %v", err)
	}
}

// A canceled context stops the greedy loop at the next round boundary and
// flags the partial result as Canceled, not TimedOut.
func TestSolveContextCanceled(t *testing.T) {
	g := sessionTestGraph(200)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the first round check must fire
	for _, alg := range []Algorithm{AdvancedGreedy, GreedyReplace, BaselineGreedy} {
		res, err := SolveContext(ctx, g, []graph.V{0}, 5, alg, Options{Theta: 50, MCSRounds: 50, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if !res.Canceled {
			t.Errorf("%s: Canceled not set", alg)
		}
		if res.TimedOut {
			t.Errorf("%s: TimedOut set on cancellation", alg)
		}
		if len(res.Blockers) != 0 {
			t.Errorf("%s: got %d blockers before first round check", alg, len(res.Blockers))
		}
	}
}
