package imin

import (
	"fmt"

	"github.com/imin-dev/imin/internal/core"
	"github.com/imin-dev/imin/internal/datasets"
	"github.com/imin-dev/imin/internal/rng"
)

// Dataset generation: synthetic stand-ins for the paper's 8 SNAP datasets
// (Table IV) plus general-purpose random-graph generators. Structural
// graphs carry probability 1 on every edge; follow up with
// AssignProbabilities to pick a propagation model.

// DatasetNames lists the evaluation datasets of the paper's Table IV in
// order: EmailCore, Facebook, Wiki-Vote, EmailAll, DBLP, Twitter, Stanford,
// Youtube.
func DatasetNames() []string { return datasets.Names() }

// GenerateDataset produces a synthetic stand-in for the named Table IV
// dataset at the given scale (fraction of the published vertex count,
// clamped to at least 50 vertices), deterministically from seed. The
// stand-in preserves the dataset's direction, density, and heavy-tailed
// degree distribution.
func GenerateDataset(name string, scale float64, seed uint64) (*Graph, error) {
	spec, ok := datasets.ByName(name)
	if !ok {
		return nil, fmt.Errorf("imin: unknown dataset %q (have %v)", name, datasets.Names())
	}
	return spec.Generate(scale, seed), nil
}

// GeneratePreferentialAttachment produces a Barabási–Albert-style random
// graph: n vertices, about edgesPerVertex·n edges, power-law degree tail.
func GeneratePreferentialAttachment(n int, edgesPerVertex float64, directed bool, seed uint64) *Graph {
	return datasets.PreferentialAttachment(n, edgesPerVertex, directed, rng.New(seed))
}

// GenerateErdosRenyi produces a uniform G(n, m) random graph.
func GenerateErdosRenyi(n, m int, directed bool, seed uint64) *Graph {
	return datasets.ErdosRenyi(n, m, directed, rng.New(seed))
}

// GenerateWattsStrogatz produces a small-world graph: ring lattice with k
// neighbors per side, rewired with probability beta.
func GenerateWattsStrogatz(n, k int, beta float64, seed uint64) *Graph {
	return datasets.WattsStrogatz(n, k, beta, rng.New(seed))
}

// RandomSeedSet draws count distinct random seed vertices; with requireOut
// set, only vertices with outgoing edges qualify (so cascades are
// non-trivial).
func RandomSeedSet(g *Graph, count int, requireOut bool, seed uint64) ([]Vertex, error) {
	return datasets.RandomSeeds(g, count, requireOut, rng.New(seed))
}

// TopDegreeSeedSet returns the count highest-out-degree vertices — the
// worst-case "influential sources" seeding, complementing RandomSeedSet.
func TopDegreeSeedSet(g *Graph, count int) ([]Vertex, error) {
	return datasets.TopOutDegreeSeeds(g, count)
}

// SpreadCurve evaluates the expected spread after blocking each prefix of
// blockers: curve[0] is the unblocked spread, curve[i] the spread with the
// first i blockers applied. Useful for budget/benefit reporting after a
// Minimize run (the blockers are returned in selection order).
func SpreadCurve(g *Graph, seeds []Vertex, blockers []Vertex, rounds int, opt Options) ([]float64, error) {
	curve := make([]float64, 0, len(blockers)+1)
	for i := 0; i <= len(blockers); i++ {
		s, err := core.EvaluateSpread(g, seeds, blockers[:i], rounds, opt)
		if err != nil {
			return nil, err
		}
		curve = append(curve, s)
	}
	return curve, nil
}
