package exact

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// randomTree builds a rooted out-tree with n vertices: vertex v's parent is
// uniform in [0, v).
func randomTree(n int, r *rng.Source) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		parent := graph.V(r.Intn(v))
		p := 0.25 + 0.75*r.Float64()
		b.AddEdge(parent, graph.V(v), p)
	}
	return b.Build()
}

func TestTreeIMINPath(t *testing.T) {
	// 0 -0.9-> 1 -0.8-> 2 -0.7-> 3: blocking 1 removes the most mass.
	g := graph.FromEdges(4, []graph.Edge{
		{From: 0, To: 1, P: 0.9},
		{From: 1, To: 2, P: 0.8},
		{From: 2, To: 3, P: 0.7},
	})
	res, err := TreeIMIN(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blockers) != 1 || res.Blockers[0] != 1 {
		t.Fatalf("blockers = %v, want [1]", res.Blockers)
	}
	// Base spread: 1 + .9(1 + .8(1 + .7)) = 1 + .9·2.36 = 3.124; after
	// blocking 1 only the root remains: spread 1.
	if math.Abs(res.Spread-1) > 1e-12 {
		t.Fatalf("spread = %v, want 1", res.Spread)
	}
}

func TestTreeIMINStar(t *testing.T) {
	// Root with 3 children of different worth; b=2 picks the two heaviest.
	g := graph.FromEdges(4, []graph.Edge{
		{From: 0, To: 1, P: 0.9},
		{From: 0, To: 2, P: 0.5},
		{From: 0, To: 3, P: 0.1},
	})
	res, err := TreeIMIN(g, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blockers) != 2 || res.Blockers[0] != 1 || res.Blockers[1] != 2 {
		t.Fatalf("blockers = %v, want [1 2]", res.Blockers)
	}
	if math.Abs(res.Spread-1.1) > 1e-12 {
		t.Fatalf("spread = %v, want 1.1", res.Spread)
	}
}

func TestTreeIMINAntichain(t *testing.T) {
	// A chain where the parent strictly dominates its child in mass:
	// blocking both wastes budget, so b=2 must pick an antichain.
	//       0
	//      / \
	//     1   4
	//     |
	//     2
	//     |
	//     3
	g := graph.FromEdges(5, []graph.Edge{
		{From: 0, To: 1, P: 1},
		{From: 1, To: 2, P: 1},
		{From: 2, To: 3, P: 1},
		{From: 0, To: 4, P: 0.5},
	})
	res, err := TreeIMIN(g, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: block 1 (removes 3 mass) and 4 (removes 0.5): spread 1.
	if len(res.Blockers) != 2 || res.Blockers[0] != 1 || res.Blockers[1] != 4 {
		t.Fatalf("blockers = %v, want [1 4]", res.Blockers)
	}
	if math.Abs(res.Spread-1) > 1e-12 {
		t.Fatalf("spread = %v, want 1", res.Spread)
	}
}

func TestTreeIMINZeroBudget(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1, P: 0.5}, {From: 1, To: 2, P: 0.5}})
	res, err := TreeIMIN(g, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blockers) != 0 {
		t.Fatalf("b=0 returned blockers %v", res.Blockers)
	}
	if math.Abs(res.Spread-1.75) > 1e-12 {
		t.Fatalf("base spread = %v, want 1.75", res.Spread)
	}
}

func TestTreeIMINBudgetBeyondTree(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1, P: 1}, {From: 0, To: 2, P: 1}})
	res, err := TreeIMIN(g, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Spread-1) > 1e-12 {
		t.Fatalf("spread = %v, want 1 (everything blockable)", res.Spread)
	}
	if len(res.Blockers) != 2 {
		t.Fatalf("blockers = %v", res.Blockers)
	}
}

func TestTreeIMINRejectsNonTrees(t *testing.T) {
	diamond := graph.FromEdges(4, []graph.Edge{
		{From: 0, To: 1, P: 1}, {From: 0, To: 2, P: 1},
		{From: 1, To: 3, P: 1}, {From: 2, To: 3, P: 1},
	})
	if _, err := TreeIMIN(diamond, 0, 1); err != ErrNotATree {
		t.Fatalf("diamond: err = %v, want ErrNotATree", err)
	}
	cycle := graph.FromEdges(3, []graph.Edge{
		{From: 0, To: 1, P: 1}, {From: 1, To: 2, P: 1}, {From: 2, To: 0, P: 1},
	})
	if _, err := TreeIMIN(cycle, 0, 1); err != ErrNotATree {
		t.Fatalf("cycle: err = %v, want ErrNotATree", err)
	}
	if _, err := TreeIMIN(diamond, 0, -1); err == nil {
		t.Fatal("negative budget must error")
	}
}

func TestTreeIMINIgnoresUnreachablePart(t *testing.T) {
	// Vertices 3,4 are disconnected from the root's tree; they must not
	// affect the solution or trigger the tree check.
	g := graph.FromEdges(5, []graph.Edge{
		{From: 0, To: 1, P: 1},
		{From: 3, To: 4, P: 1},
	})
	res, err := TreeIMIN(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blockers) != 1 || res.Blockers[0] != 1 {
		t.Fatalf("blockers = %v, want [1]", res.Blockers)
	}
}

// Property: on random trees the DP matches the exhaustive solver with
// exact spread evaluation — both optimal, so spreads must agree exactly.
func TestTreeIMINMatchesExhaustiveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(9) + 3
		b := r.Intn(3) + 1
		g := randomTree(n, r)
		dp, err := TreeIMIN(g, 0, b)
		if err != nil {
			t.Logf("seed=%d: unexpected error %v", seed, err)
			return false
		}
		brute, err := SolveIMIN(g, 0, b, nil, EvalExact(g, 0, 0))
		if err != nil {
			return true // factoring budget blown: nothing to compare
		}
		if math.Abs(dp.Spread-brute.Spread) > 1e-9 {
			t.Logf("seed=%d n=%d b=%d: DP %v vs brute %v (DP blockers %v, brute %v)",
				seed, n, b, dp.Spread, brute.Spread, dp.Blockers, brute.Blockers)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: the DP's reported spread equals the exact spread of its own
// blocker set (self-consistency).
func TestTreeIMINSelfConsistentProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(15) + 3
		b := r.Intn(4)
		g := randomTree(n, r)
		dp, err := TreeIMIN(g, 0, b)
		if err != nil {
			return false
		}
		blocked := make([]bool, n)
		for _, v := range dp.Blockers {
			blocked[v] = true
		}
		want, err := Spread(g, 0, blocked, 0)
		if err != nil {
			return true
		}
		return math.Abs(dp.Spread-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTreeIMIN(b *testing.B) {
	g := randomTree(2000, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TreeIMIN(g, 0, 10); err != nil {
			b.Fatal(err)
		}
	}
}
