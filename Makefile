# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml), so a green `make lint test` locally means a
# green pipeline.

GO ?= go

.PHONY: all build test lint lint-fix bench bench-baseline bench-diff clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint is the full static gate: formatting, go vet, then the project's own
# invariant analyzers (cmd/iminlint). staticcheck joins automatically when
# it is on PATH; its absence is not a failure (offline environments).
lint:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: needs formatting:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) run ./cmd/iminlint ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; fi

lint-fix:
	gofmt -w .

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# bench-baseline regenerates the committed benchcore baseline. Pass
# FORCE=1 when the worker configuration changed (benchcore's provenance
# guard refuses a silent overwrite otherwise).
bench-baseline:
	$(GO) run ./cmd/experiments -exp benchcore -bench-out BENCH_core.json \
		$(if $(FORCE),-force,)

# bench-diff is the perf-trajectory regression gate: measure a fresh
# benchcore report and compare it against the committed baseline (exits
# nonzero on regression; appends BENCH_history.jsonl).
bench-diff:
	$(GO) run ./cmd/experiments -exp benchdiff

clean:
	$(GO) clean ./...
