// Package diag is imind's flight recorder: per-solve cost accounting and
// SLO-triggered diagnostic bundles, built on top of internal/obs.
//
// The package deliberately lives outside the determinism-linted core: it is
// free to read wall clocks and write ordinary files, because nothing here
// influences solve results — tests assert blockers are bit-identical with
// cost accounting on and off.
package diag

import "time"

// SolveCost is the per-request cost model returned in solve responses as the
// "cost" block and attached to the root trace span. All *_ns fields are
// wall-clock nanoseconds measured on the request goroutine (the solve path is
// CPU-bound, so wall ns on the solving goroutine is the CPU-ns proxy; queue
// fields are pure wait). Sample counts come straight from the core's
// Result/RoundInfo/RepairStats accounting, so the block explains where a
// solve's budget went: admission wait, session repair, θ sampling, dirty
// reprocessing, and stolen cross-shard work.
type SolveCost struct {
	// Queue waits: the per-(graph,model) session queue and the bounded
	// solve pool.
	QueueSessionNS int64 `json:"queue_session_ns"`
	QueueSlotNS    int64 `json:"queue_slot_ns"`
	// MigrateNS is session repair after a mutation batch (0 when the
	// session was already at the graph's epoch).
	MigrateNS int64 `json:"migrate_ns,omitempty"`
	// SolveNS is the greedy loop proper (core.Result.Runtime).
	SolveNS int64 `json:"solve_ns"`
	// EvalNS is the optional before/after Monte-Carlo spread evaluation.
	EvalNS int64 `json:"eval_ns,omitempty"`
	// TotalNS is end-to-end handler time for this solve item.
	TotalNS int64 `json:"total_ns"`

	// Rounds and RoundNS accumulate the OnRound hook: greedy rounds
	// observed and their summed duration.
	Rounds  int64 `json:"rounds"`
	RoundNS int64 `json:"round_ns"`

	// SamplesDrawn is live-edge graphs sampled fresh (θ work);
	// SamplesDirty is stored samples re-processed by incremental rounds;
	// SamplesStolen is cross-shard work-stealing volume;
	// SamplesRedrawn/SamplesKept are the migrate step's pool-repair
	// economics.
	SamplesDrawn   int64 `json:"samples_drawn"`
	SamplesDirty   int64 `json:"samples_dirty"`
	SamplesStolen  int64 `json:"samples_stolen,omitempty"`
	SamplesRedrawn int64 `json:"samples_redrawn,omitempty"`
	SamplesKept    int64 `json:"samples_kept,omitempty"`

	// PoolBytes is the resident sample-pool footprint of the session that
	// served this solve (reuse_samples sessions only).
	PoolBytes int64 `json:"pool_bytes,omitempty"`
	// MCSSimulations counts Monte-Carlo spread simulations run by the
	// eval phases.
	MCSSimulations int64 `json:"mcs_simulations,omitempty"`
}

// AddRound folds one OnRound callback into the cost model. It is plain field
// arithmetic — no locks, no allocation — so it rides inside the hot per-round
// hook without moving benchcore's ≤2 % instrumentation-overhead bar.
func (c *SolveCost) AddRound(d time.Duration, dirty, stolen int64) {
	c.Rounds++
	c.RoundNS += int64(d)
	c.SamplesDirty += dirty
	c.SamplesStolen += stolen
}
