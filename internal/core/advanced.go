package core

import (
	"time"

	"github.com/imin-dev/imin/internal/graph"
)

// solveAdvancedGreedy implements Algorithm 3: the same greedy framework as
// BaselineGreedy, but each round obtains the spread decrease of every
// candidate at once from one DecreaseESComputation call (Algorithm 2)
// instead of n separate Monte-Carlo estimations. Complexity
// O(b·θ·m·α(m,n)) versus the baseline's O(b·n·r·m).
func solveAdvancedGreedy(halt stopper, in *instance, est *estBackend, b int, opt Options) Result {
	n := in.g.N()
	blocked := make([]bool, n)
	var blockers []graph.V

	for round := 0; round < b; round++ {
		if halt.stop() {
			return halt.abort(Result{Blockers: blockers, SampledGraphs: est.samplesDrawn()})
		}
		var roundStart time.Time
		var proc0, stole0 int64
		if opt.OnRound != nil {
			roundStart = time.Now()
			proc0, stole0 = est.workSnapshot()
		}
		// Δ[u] for every candidate at once, on G[V \ B].
		delta := est.decreaseES(in.src, blocked, uint64(round))

		best := pickMax(in, blocked, delta)
		if best == -1 {
			break
		}
		blocked[best] = true
		est.noteFlip(best)
		blockers = append(blockers, best)
		emitRound(opt, round, "select", best, roundStart, est, proc0, stole0)
	}
	return Result{Blockers: blockers, SampledGraphs: est.samplesDrawn()}
}

// pickMax returns the unblocked candidate with the largest Δ, ties broken
// by smaller vertex id (deterministic), or -1 if none remain. Following
// Algorithm 1/3 line "x = -1 or Δ[u] > Δ[x]", a candidate is returned even
// when every Δ is zero — blocking it is harmless and keeps |B| = b. The
// scan walks the instance's precomputed candidate list (ascending, so
// tie-breaking is unchanged) instead of re-filtering all n vertices: at
// serving scale — millions of vertices, a handful of seeds — the two are
// the same length, but the candidate test drops out of the per-round path.
func pickMax(in *instance, blocked []bool, delta []float64) graph.V {
	best := graph.V(-1)
	for _, u := range in.cands {
		if blocked[u] {
			continue
		}
		if best == -1 || delta[u] > delta[best] {
			best = u
		}
	}
	return best
}
