package core

import (
	"math"
	"sync"
)

// PoolEncoding selects the SamplePool arena layout.
type PoolEncoding int

const (
	// PoolFlat is the default layout: fixed-width int32 arenas with O(1)
	// random access into every sample. Fastest per round; largest.
	PoolFlat PoolEncoding = iota

	// PoolCompressed shrinks the pool along its three cold axes while
	// leaving the hot dirty-sample read path zero-copy:
	//
	//   - The predecessor CSR (csrInStart/inFrom) is not stored at all.
	//     Samplers record edges in BFS order, which equals the out-CSR's
	//     row-major order, so the in-CSR they built by counting sort is
	//     re-derived at view time — byte-identically — from the out-CSR
	//     (deriveInCSR). That is a 100% saving on those arrays for an
	//     O(k+e) pass per dirty sample, against the dominator computation
	//     that follows it.
	//   - The inverted index becomes per-vertex delta-varint runs (encIdx)
	//     with offsets narrowed to int32: the flat idxStart is 8 bytes per
	//     graph vertex regardless of θ, which dominates small pools. The
	//     index is read once per flipped vertex per round, not per sample.
	//   - vertStart/edgeStart are narrowed to int32 when totals allow.
	//
	// vertOrig, csrStart, and edgeTo stay fixed-width: they are what every
	// dirty-sample scan reads, and measurement showed varint-decoding them
	// costs far more than the ≤10% single-worker round budget (dirty
	// samples skew large — greedy flips high-influence vertices, which
	// live in the big samples), while the bytes they hold are a minority
	// of the pool. Output is bit-identical to a flat pool: the derived
	// in-CSR and decoded index runs reproduce the flat arrays exactly, and
	// both layouts feed the same dominator path.
	PoolCompressed
)

// Varint primitives. encoding/binary's versions work on uint64; these stay
// in uint32 (every encoded quantity is a sample id delta or a run length —
// all int32) and keep the single-byte fast path inlineable.

// appendUvarint appends x in LEB128.
func appendUvarint(b []byte, x uint32) []byte {
	for x >= 0x80 {
		b = append(b, byte(x)|0x80)
		x >>= 7
	}
	return append(b, byte(x))
}

// appendZigzag appends a signed delta as zigzag LEB128.
func appendZigzag(b []byte, x int32) []byte {
	return appendUvarint(b, uint32((x<<1)^(x>>31)))
}

// getUvarint decodes one LEB128 value at pos, returning it and the next
// position. The single-byte case — the overwhelming majority for index
// deltas — stays small enough to inline into the decode loops; longer
// values fall through to getUvarintSlow.
func getUvarint(b []byte, pos int) (uint32, int) {
	if c := b[pos]; c < 0x80 {
		return uint32(c), pos + 1
	}
	return getUvarintSlow(b, pos)
}

// getUvarintSlow finishes a multi-byte LEB128 value starting at pos.
func getUvarintSlow(b []byte, pos int) (uint32, int) {
	x := uint32(b[pos] & 0x7f)
	shift := uint(7)
	for {
		pos++
		c := b[pos]
		x |= uint32(c&0x7f) << shift
		if c < 0x80 {
			return x, pos + 1
		}
		shift += 7
	}
}

// getZigzag decodes one zigzag LEB128 delta at pos.
func getZigzag(b []byte, pos int) (int32, int) {
	u, np := getUvarint(b, pos)
	return int32(u>>1) ^ -int32(u&1), np
}

// deriveInCSR rebuilds a sample's predecessor CSR from its out-CSR by the
// same counting sort cascade's buildCSR ran over the recorded edge list.
// Every sampler appends edges in BFS order — sources in ascending local id,
// each scanned once — so iterating the out-CSR row-major replays exactly
// that recording order and the result is byte-identical to the in-CSR the
// sampler built. inStart must have len(outStart) entries and inTo
// len(outTo); both are fully overwritten.
func deriveInCSR(outStart, outTo, inStart, inTo []int32) {
	k := len(outStart) - 1
	for j := 0; j <= k; j++ {
		inStart[j] = 0
	}
	for _, t := range outTo {
		inStart[t+1]++
	}
	for j := 0; j < k; j++ {
		inStart[j+1] += inStart[j]
	}
	// The starts double as fill cursors (each ends up holding its row's
	// end), then one shift-right pass restores them — no scratch array.
	for u := 0; u < k; u++ {
		for j := outStart[u]; j < outStart[u+1]; j++ {
			t := outTo[j]
			inTo[inStart[t]] = int32(u)
			inStart[t]++
		}
	}
	for j := k; j > 0; j-- {
		inStart[j] = inStart[j-1]
	}
	inStart[0] = 0
}

// encIdxRange returns vertex v's index-run byte range in encIdx.
func (p *SamplePool) encIdxRange(v int) (int64, int64) {
	if p.encIdxOff32 != nil {
		return int64(p.encIdxOff32[v]), int64(p.encIdxOff32[v+1])
	}
	return p.encIdxOff[v], p.encIdxOff[v+1]
}

// deriveView fills v with sample i's data for a compressed pool: the vertex
// list and out-CSR are borrowed from the arenas exactly like the flat path;
// the unstored in-CSR is left nil, to be derived on demand by ensureInCSR —
// the filtered dominator path rebuilds its own CSRs and never asks for it.
func (p *SamplePool) deriveView(i int, v *sampleView) {
	vs, ve := p.sampleVertStart(i), p.sampleVertStart(i+1)
	k := ve - vs
	cs := vs + int64(i)
	es, ee := p.sampleEdgeStart(i), p.sampleEdgeStart(i+1)
	v.orig = p.vertOrig[vs:ve]
	v.outStart = p.csrStart[cs : cs+k+1]
	v.outTo = p.edgeTo[es:ee]
	v.inStart, v.inTo = nil, nil
}

// ensureInCSR populates a view's in-CSR: a no-op for flat views (borrowed
// at view() time) and a derivation into the view's owned scratch for views
// over compressed pools.
func (v *sampleView) ensureInCSR() {
	if v.inStart != nil {
		return
	}
	k := len(v.orig)
	need := k + 1 + len(v.outTo)
	if cap(v.i32Buf) < need {
		v.i32Buf = make([]int32, need+need/2)
	}
	v.inStart = v.i32Buf[:k+1]
	v.inTo = v.i32Buf[k+1 : need]
	deriveInCSR(v.outStart, v.outTo, v.inStart, v.inTo)
}

// compress converts p from the flat layout to PoolCompressed in place: the
// predecessor CSR is dropped (derived per view from the out-CSR), the
// inverted index is varint-encoded (in parallel, worker w encoding its own
// vertex range into a private buffer, stitched with one prefix pass — so
// the bytes are worker-count-independent), and the offset arrays are
// narrowed to int32 when the totals fit. Requires the flat arrays and the
// index to be present.
func (p *SamplePool) compress(workers int) {
	theta := p.Theta()
	n := p.g.N()
	workers = poolWorkers(workers, theta)

	// Inverted index: per-vertex ascending sample ids as delta varints
	// (prev starts at −1, so every delta ≥ 1 and one loop decodes the run).
	iw := workers
	if iw > n {
		iw = n
	}
	if iw < 1 {
		iw = 1
	}
	ibufs := make([][]byte, iw)
	p.encIdxOff = make([]int64, n+1)
	var wg sync.WaitGroup
	for w := 0; w < iw; w++ {
		lo, hi := w*n/iw, (w+1)*n/iw
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var buf []byte
			for v := lo; v < hi; v++ {
				prev := int32(-1)
				for _, id := range p.idxSample[p.idxStart[v]:p.idxStart[v+1]] {
					buf = appendUvarint(buf, uint32(id-prev))
					prev = id
				}
				// Stash the run length; converted to absolute offsets in
				// the serial prefix pass below.
				p.encIdxOff[v+1] = int64(len(buf))
			}
			ibufs[w] = buf
		}(w, lo, hi)
	}
	wg.Wait()
	var total int64
	for w := 0; w < iw; w++ {
		lo, hi := w*n/iw, (w+1)*n/iw
		var prev int64
		for v := lo; v < hi; v++ {
			run := p.encIdxOff[v+1] - prev
			prev = p.encIdxOff[v+1]
			p.encIdxOff[v] = total
			total += run
		}
	}
	p.encIdxOff[n] = total
	p.encIdx = make([]byte, total)
	for w := 0; w < iw; w++ {
		lo := w * n / iw
		wg.Add(1)
		go func(w, lo int) {
			defer wg.Done()
			copy(p.encIdx[p.encIdxOff[lo]:], ibufs[w])
		}(w, lo)
	}
	wg.Wait()

	// Narrow the offset arrays when every value fits int32 (the common
	// case by far: totals exceeding 2^31 would mean a multi-gigabyte
	// pool). The per-vertex encIdxOff matters most — it is O(n) regardless
	// of pool size, so at full width it can dominate the footprint the
	// compression just shrank.
	if p.vertStart[theta] <= math.MaxInt32 && p.edgeStart[theta] <= math.MaxInt32 {
		p.vertStart32 = make([]int32, theta+1)
		p.edgeStart32 = make([]int32, theta+1)
		for i := 0; i <= theta; i++ {
			p.vertStart32[i] = int32(p.vertStart[i])
			p.edgeStart32[i] = int32(p.edgeStart[i])
		}
		p.vertStart, p.edgeStart = nil, nil
	}
	if p.encIdxOff[n] <= math.MaxInt32 {
		p.encIdxOff32 = make([]int32, n+1)
		for v := 0; v <= n; v++ {
			p.encIdxOff32[v] = int32(p.encIdxOff[v])
		}
		p.encIdxOff = nil
	}

	p.csrInStart, p.inFrom = nil, nil
	p.idxStart, p.idxSample = nil, nil
	p.enc = PoolCompressed
}

// decompress materializes a flat twin of a compressed pool: same graph,
// source, rng base, and — because the dropped arrays are exactly
// re-derivable — byte-identical arenas to a pool that was never compressed.
// The shared arrays (vertex list, out-CSR) alias the compressed pool's
// immutable storage. The twin carries no inverted index; its only consumer
// (Repair's redraw path) marks dirty samples through the compressed pool's
// own index first.
func (p *SamplePool) decompress(workers int) *SamplePool {
	theta := p.Theta()
	q := &SamplePool{
		g: p.g, src: p.src, base: p.base,
		vertStart: make([]int64, theta+1),
		edgeStart: make([]int64, theta+1),
		vertOrig:  p.vertOrig, csrStart: p.csrStart, edgeTo: p.edgeTo,
	}
	for i := 0; i <= theta; i++ {
		q.vertStart[i] = p.sampleVertStart(i)
		q.edgeStart[i] = p.sampleEdgeStart(i)
	}
	tv, te := q.vertStart[theta], q.edgeStart[theta]
	q.csrInStart = make([]int32, tv+int64(theta))
	q.inFrom = make([]int32, te)

	workers = poolWorkers(workers, theta)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*theta/workers, (w+1)*theta/workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				vs, ve := q.vertStart[i], q.vertStart[i+1]
				es, ee := q.edgeStart[i], q.edgeStart[i+1]
				cs := vs + int64(i)
				k := ve - vs
				deriveInCSR(q.csrStart[cs:cs+k+1], q.edgeTo[es:ee],
					q.csrInStart[cs:cs+k+1], q.inFrom[es:ee])
			}
		}(lo, hi)
	}
	wg.Wait()
	return q
}
