package core

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/imin-dev/imin/internal/cascade"
	"github.com/imin-dev/imin/internal/dominator"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// IncrementalPooledEstimator is the delta-maintained, shard-parallel
// version of PooledEstimator. Blocking (or unblocking) a vertex x can only
// change the filtered dominator computation of samples whose reachable
// region contains x, so instead of re-scanning all θ samples every round it
//
//  1. diffs the requested blocker set against the one the cache reflects,
//  2. collects the dirty samples through the pool's inverted index into a
//     staging list, grouped into one contiguous batch per worker shard,
//  3. has the workers retract the dirty samples' cached per-vertex
//     subtree-size contributions, re-run the filtered dominator
//     computation, and add the new contributions back — each worker into
//     its own cache-line-aligned int64 accumulator, stealing batch chunks
//     from overloaded shards once its own batch is drained,
//  4. refreshes the cached Δ vector at exactly the touched vertices by a
//     range-partitioned parallel reduction over the worker accumulators.
//
// A round therefore costs O(θ_x·m̄/P + t) where θ_x is the number of
// samples containing the flipped vertices — on real graphs a small
// fraction of θ — P the worker count, and t the number of touched
// vertices, against PooledEstimator's O(θ·m̄).
//
// Sharding and stealing: the θ samples are partitioned into P contiguous
// ranges; shard s is handed the batch of dirty samples it owns at the start
// of each round. Worker s drains its own batch first (cache locality: a
// shard's samples are adjacent in the arena), then claims fixed-size chunks
// from the fullest remaining batch through that shard's atomic cursor — the
// only cross-worker write target of the phase, padded onto its own cache
// line. A stolen sample's contributions land in the THIEF's accumulator,
// not the owner's: correctness needs only the invariant that
// Σ_s acc_s[u] equals the sum of u's cached contributions over all samples,
// and exact int64 addition makes that sum independent of which accumulator
// holds which part. The contribution arena is sample-disjoint, and each
// claimed chunk has exactly one processor, so the phase is race-free.
//
// Equivalence and P-independence: contributions are exact int64 values and
// Σ_s acc_s[u] is invariant under both the partition and the steal
// schedule, so DecreaseES output is bit-identical to PooledEstimator over
// the same pool for every blocker sequence, every worker count, and every
// interleaving — workers=1 and workers=8 return the same bits (the
// cross-validation and determinism tests assert this). The estimator
// carries mutable state and admits one DecreaseES caller at a time, like
// Estimator; the state survives across solves, so a warm session's later
// runs on the same pool only reprocess samples touched by the previous
// run's blockers. SetWorkers reshards without touching the pool or the
// contribution cache.
type IncrementalPooledEstimator struct {
	pool    *SamplePool
	workers int // requested; len(shards) is the clamped effective count
	domAlgo DomAlgo

	primed      bool
	prevBlocked []bool    // blocker set the cache reflects
	vals        []float64 // vals[u] = float64(Σ_s acc_s[u])/θ, maintained at touched entries

	// Per-sample contribution cache in arena form: sample i's entries
	// occupy the first contribLen[i] slots of
	// contrib{Vert,Size}[pool.contribBase(i):], which fits because a sample
	// contributes at most K_i−1 (vertex, size) pairs. Slots of distinct
	// samples are disjoint, so workers recompute dirty samples in parallel.
	// The cache is partition-independent state: resharding reuses it to
	// rebuild the new shard accumulators.
	contribLen  []int32
	contribVert []graph.V
	contribSize []int32

	shards  []*incShard
	ownerOf []int32 // sample id → owning shard index

	// Dirty staging: markDirty appends to dirtyList (deduped by dirtyMark)
	// in encounter order; at the start of each round the list is grouped by
	// owning shard into batchBuf — one contiguous batch per shard, handed
	// over in a single slice assignment instead of per-sample queue
	// appends. The staging list is shard-layout-independent, so pending
	// dirty samples (queued by RepairPool between rounds) survive a
	// SetWorkers reshard in place.
	dirtyMark []bool  // dedup over samples, cleared after each round
	dirtyList []int32 // staged dirty samples for the next round
	batchBuf  []int32 // round scratch: dirtyList grouped by owner
	batchCnt  []int32 // round scratch: per-shard batch boundaries
	batchPos  []int32 // round scratch: per-shard fill cursors

	union      []graph.V   // serial-reduction union scratch
	unionParts [][]graph.V // parallel-reduction per-range segments
	unionMark  []bool

	rounds      int64 // DecreaseES calls answered
	reprocessed int64 // dirty samples recomputed across all rounds
	stolenPast  int64 // steals folded in from shards retired by reshard
}

// incShard is one worker's persistent state: the contiguous sample range it
// owns, its cache-line-aligned accumulator and touched-mark arrays, and the
// scratch for re-running filtered dominator computations. During the
// parallel phase a worker writes only its own fields plus the
// (sample-disjoint) contribution arena — except the claim cursors, which
// are the designed cross-worker handoff point.
type incShard struct {
	lo, hi int // owned sample range [lo, hi)
	filterScratch
	sview   sampleView
	acc     []int64   // acc[u] = Σ of cached subtree sizes this worker folded in; cache-line-aligned
	marked  []bool    // dedup for touched; cache-line-aligned
	touched []graph.V // vertices whose acc changed this round
	batch   []int32   // this round's owned dirty batch (aliases batchBuf)

	// Work counters, written only by this shard's worker goroutine.
	processed int64 // dirty samples this worker recomputed (own + stolen)
	stolen    int64 // subset claimed from other shards' batches
	procNs    int64 // cumulative ns in the parallel dirty-processing phase

	// cur is the claim cursor into batch: every worker that takes a chunk
	// (the owner included) bumps it. It is the one word of this struct that
	// other workers write during the parallel phase, so it gets a cache
	// line of its own — without the padding, a steal would invalidate the
	// owner's adjacent hot fields on every claim.
	_   [cacheLine]byte
	cur atomic.Int64
	_   [cacheLine - 8]byte
}

// add folds one contribution delta into the worker accumulator, recording
// the vertex for the reduction phase.
func (sh *incShard) add(v graph.V, d int64) {
	if !sh.marked[v] {
		sh.marked[v] = true
		sh.touched = append(sh.touched, v)
	}
	sh.acc[v] += d
}

// NewIncrementalPooledEstimator draws theta samples into a fresh flat pool
// and wraps it. workers <= 0 selects GOMAXPROCS.
func NewIncrementalPooledEstimator(sampler cascade.LiveSampler, src graph.V, theta, workers int, domAlgo DomAlgo, base *rng.Source) *IncrementalPooledEstimator {
	return NewIncrementalPooledEstimatorEnc(sampler, src, theta, workers, domAlgo, base, PoolFlat)
}

// NewIncrementalPooledEstimatorEnc is NewIncrementalPooledEstimator with an
// explicit pool arena layout; output is bit-identical across encodings.
func NewIncrementalPooledEstimatorEnc(sampler cascade.LiveSampler, src graph.V, theta, workers int, domAlgo DomAlgo, base *rng.Source, enc PoolEncoding) *IncrementalPooledEstimator {
	return NewIncrementalPooledEstimatorFromPool(NewSamplePoolEnc(sampler, src, theta, workers, base, enc), workers, domAlgo)
}

// NewIncrementalPooledEstimatorFromPool wraps an existing (possibly shared)
// pool. The estimator's first DecreaseES call processes every sample to
// prime the accumulators; later calls are incremental.
func NewIncrementalPooledEstimatorFromPool(pool *SamplePool, workers int, domAlgo DomAlgo) *IncrementalPooledEstimator {
	n := pool.g.N()
	tv := pool.totalVertEntries()
	e := &IncrementalPooledEstimator{
		pool:        pool,
		domAlgo:     domAlgo,
		prevBlocked: make([]bool, n),
		vals:        make([]float64, n),
		contribLen:  make([]int32, pool.Theta()),
		contribVert: make([]graph.V, tv),
		contribSize: make([]int32, tv),
		ownerOf:     make([]int32, pool.Theta()),
		dirtyMark:   make([]bool, pool.Theta()),
		unionMark:   make([]bool, n),
	}
	e.reshard(workers)
	return e
}

// Theta returns the stored sample count.
func (e *IncrementalPooledEstimator) Theta() int { return e.pool.Theta() }

// Pool returns the backing sample pool.
func (e *IncrementalPooledEstimator) Pool() *SamplePool { return e.pool }

// Workers returns the requested worker count (0 = GOMAXPROCS at reshard
// time, clamped to θ).
func (e *IncrementalPooledEstimator) Workers() int { return e.workers }

// SetWorkers re-partitions the samples across the new worker count. The
// pool, the contribution cache, and the cached Δ vector are untouched —
// only the shard accumulators are rebuilt (one pass over the cached
// contributions) — so a warm session can serve requests at different
// worker counts without re-drawing or re-priming anything, and the output
// stays bit-identical: Σ_s acc_s is invariant under the partition. No-op
// when the effective shard count is unchanged. Must not be called
// concurrently with DecreaseES.
func (e *IncrementalPooledEstimator) SetWorkers(workers int) {
	if poolWorkers(workers, e.pool.Theta()) == len(e.shards) {
		e.workers = workers
		return
	}
	e.reshard(workers)
}

// reshard builds the shard set for the clamped worker count and, if the
// estimator is primed, re-aggregates the per-sample contribution cache into
// the new owners' accumulators. The staged dirty list is shard-independent
// and survives in place; the touched-vertex marks of contributions
// RepairPool retracted between rounds are carried over, so a worker change
// between a pool repair and the next DecreaseES loses nothing.
func (e *IncrementalPooledEstimator) reshard(workers int) {
	var pendingTouched []graph.V
	for _, sh := range e.shards {
		pendingTouched = append(pendingTouched, sh.touched...)
		e.stolenPast += sh.stolen
	}
	e.workers = workers
	theta := e.pool.Theta()
	n := e.pool.g.N()
	p := poolWorkers(workers, theta)
	e.shards = make([]*incShard, p)
	for s := 0; s < p; s++ {
		sh := &incShard{
			lo:            s * theta / p,
			hi:            (s + 1) * theta / p,
			filterScratch: newFilterScratch(),
			acc:           alignedInt64(n),
			marked:        alignedBools(n),
		}
		e.shards[s] = sh
		for i := sh.lo; i < sh.hi; i++ {
			e.ownerOf[i] = int32(s)
		}
	}
	// Touched marks exist only to drive the next round's Δ-vector refresh;
	// any shard's list feeds the same union, so they all land on shard 0.
	sh0 := e.shards[0]
	for _, v := range pendingTouched {
		if !sh0.marked[v] {
			sh0.marked[v] = true
			sh0.touched = append(sh0.touched, v)
		}
	}
	if !e.primed {
		return
	}
	for i := 0; i < theta; i++ {
		acc := e.shards[e.ownerOf[i]].acc
		base := e.pool.contribBase(i)
		for j := base; j < base+int64(e.contribLen[i]); j++ {
			acc[e.contribVert[j]] += int64(e.contribSize[j])
		}
	}
}

// DecreaseES estimates Δ[u] on G[V\B] for every vertex from the stored
// pool, writing into dst (length ≥ n). Output is bit-identical to
// PooledEstimator.DecreaseES over the same pool; only samples containing a
// vertex whose blocked state changed since the previous call are
// re-processed. The changed vertices are found by diffing blocked against
// the previous call's set; callers that track their own mutations can hand
// them over through DecreaseESFlips and skip the O(n) diff.
func (e *IncrementalPooledEstimator) DecreaseES(dst []float64, blocked []bool) {
	copy(dst[:e.pool.g.N()], e.decreaseES(blocked, nil, false))
}

// DecreaseESFlips is DecreaseES with the exact set of vertices whose
// blocked state changed since the previous call, as known by the caller
// (the greedy loops flip one or two vertices per round). flips may contain
// duplicates; a vertex flipped twice (net no-op) only costs wasted
// reprocessing. An incomplete flips list silently corrupts the cache, so
// callers must report every mutation. Ignored (full scan) before priming.
func (e *IncrementalPooledEstimator) DecreaseESFlips(dst []float64, blocked []bool, flips []graph.V) {
	copy(dst[:e.pool.g.N()], e.decreaseES(blocked, flips, true))
}

// DecreaseESView is DecreaseES without the O(n) copy: the returned slice
// is the estimator's maintained Δ vector, valid (and read-only) until the
// next DecreaseES* call. The greedy argmax scans read it in place, which
// removes the last per-round O(n) term from the ReuseSamples fast path.
func (e *IncrementalPooledEstimator) DecreaseESView(blocked []bool) []float64 {
	return e.decreaseES(blocked, nil, false)
}

// DecreaseESFlipsView is DecreaseESFlips without the O(n) copy; see
// DecreaseESView for the aliasing contract.
func (e *IncrementalPooledEstimator) DecreaseESFlipsView(blocked []bool, flips []graph.V) []float64 {
	return e.decreaseES(blocked, flips, true)
}

// smallRoundInline is the dirty-sample count under which the round runs on
// the calling goroutine: spawning and joining shard goroutines costs more
// than a few dozen tiny dominator runs. The serial path walks the batches
// in fixed shard order, so the output bits do not depend on which path
// ran.
const smallRoundInline = 32

// stealChunk is the number of dirty samples a worker claims per cursor
// bump. Large enough to amortize the atomic (and keep stolen samples
// arena-adjacent), small enough that a skewed batch spreads across every
// idle worker.
const stealChunk = 8

// markDirty stages sample i for the next round, once.
func (e *IncrementalPooledEstimator) markDirty(i int32) {
	if !e.dirtyMark[i] {
		e.dirtyMark[i] = true
		e.dirtyList = append(e.dirtyList, i)
	}
}

func (e *IncrementalPooledEstimator) decreaseES(blocked []bool, flips []graph.V, haveFlips bool) []float64 {
	n := e.pool.g.N()
	theta := e.pool.Theta()
	e.rounds++

	// Phase 0 (serial): stage the round's dirty samples.
	switch {
	case !e.primed:
		for i := 0; i < theta; i++ {
			e.dirtyMark[i] = true
			e.dirtyList = append(e.dirtyList, int32(i))
		}
		e.primed = true
		if blocked == nil {
			for v := range e.prevBlocked {
				e.prevBlocked[v] = false
			}
		} else {
			copy(e.prevBlocked, blocked[:n])
		}
	case haveFlips:
		mark := e.markDirty // hoisted: one method-value closure per round, not per flip
		for _, v := range flips {
			nb := blocked != nil && blocked[v]
			if nb == e.prevBlocked[v] {
				continue // duplicate flip, net no-op
			}
			e.prevBlocked[v] = nb
			e.pool.samplesContaining(v, mark)
		}
	default:
		mark := e.markDirty
		for v := 0; v < n; v++ {
			nb := blocked != nil && blocked[v]
			if nb == e.prevBlocked[v] {
				continue
			}
			e.prevBlocked[v] = nb
			e.pool.samplesContaining(graph.V(v), mark)
		}
	}
	nDirty := len(e.dirtyList)
	if nDirty == 0 {
		return e.vals
	}
	e.reprocessed += int64(nDirty)

	// Batch handoff (serial): group the staged list by owning shard with a
	// stable counting sort — one contiguous batch per shard, assigned in a
	// single slice header write instead of per-sample queue appends that
	// would dirty every shard's slice header cache line from this
	// goroutine.
	p := len(e.shards)
	if cap(e.batchBuf) < nDirty {
		e.batchBuf = make([]int32, nDirty)
	}
	batch := e.batchBuf[:nDirty]
	if cap(e.batchCnt) < p+1 {
		e.batchCnt = make([]int32, p+1)
		e.batchPos = make([]int32, p+1)
	}
	cnt := e.batchCnt[:p+1]
	for s := range cnt {
		cnt[s] = 0
	}
	for _, i := range e.dirtyList {
		cnt[e.ownerOf[i]+1]++
	}
	for s := 1; s <= p; s++ {
		cnt[s] += cnt[s-1]
	}
	pos := e.batchPos[:p+1]
	copy(pos, cnt)
	for _, i := range e.dirtyList {
		s := e.ownerOf[i]
		batch[pos[s]] = i
		pos[s]++
	}
	for s, sh := range e.shards {
		sh.batch = batch[cnt[s]:cnt[s+1]]
		sh.cur.Store(0)
	}

	// Phase 1: workers drain the batches — own shard first, then chunks
	// stolen from the fullest remaining batch. Tiny rounds run inline, in
	// shard order; the result is the same either way because every
	// schedule folds the same exact integers.
	parallel := p > 1 && nDirty > smallRoundInline
	if parallel {
		var wg sync.WaitGroup
		for w := range e.shards {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				e.runWorker(w, blocked)
			}(w)
		}
		wg.Wait()
	} else {
		for _, sh := range e.shards {
			if len(sh.batch) == 0 {
				continue
			}
			t0 := time.Now()
			e.processInto(sh, sh.batch, blocked)
			sh.processed += int64(len(sh.batch))
			sh.procNs += time.Since(t0).Nanoseconds()
		}
	}

	// Phase 2: refresh the cached Δ vector at exactly the touched
	// vertices, clear the marks, and drain the round's staging. vals[u] =
	// float64(Σ_s acc_s[u])·θ⁻¹ — the same expression PooledEstimator
	// evaluates, with the shard sum combined pairwise (sumAcc); int64
	// addition is exact, so the association is immaterial to the bits.
	// Large rounds run the reduction range-partitioned in parallel:
	// reducer r owns vertex range [r·n/R, (r+1)·n/R) and is the only
	// goroutine that touches marks, union entries, or vals inside it, so
	// the dedup needs no synchronization and the output cannot depend on
	// scheduling.
	totTouched := 0
	for _, sh := range e.shards {
		totTouched += len(sh.touched)
	}
	inv := 1 / float64(theta)
	if parallel && totTouched > 4*smallRoundInline {
		if cap(e.unionParts) < p {
			e.unionParts = append(e.unionParts, make([][]graph.V, p-len(e.unionParts))...)
		}
		parts := e.unionParts[:p]
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				vlo, vhi := graph.V(r*n/p), graph.V((r+1)*n/p)
				part := parts[r][:0]
				for _, sh := range e.shards {
					for _, v := range sh.touched {
						if v < vlo || v >= vhi {
							continue
						}
						sh.marked[v] = false
						if !e.unionMark[v] {
							e.unionMark[v] = true
							part = append(part, v)
							e.vals[v] = float64(sumAcc(e.shards, v)) * inv
						}
					}
				}
				for _, v := range part {
					e.unionMark[v] = false
				}
				parts[r] = part
			}(r)
		}
		wg.Wait()
	} else {
		union := e.union[:0]
		for _, sh := range e.shards {
			for _, v := range sh.touched {
				sh.marked[v] = false
				if !e.unionMark[v] {
					e.unionMark[v] = true
					union = append(union, v)
					e.vals[v] = float64(sumAcc(e.shards, v)) * inv
				}
			}
		}
		for _, v := range union {
			e.unionMark[v] = false
		}
		e.union = union
	}
	for _, sh := range e.shards {
		sh.touched = sh.touched[:0]
		sh.batch = nil
	}
	for _, i := range e.dirtyList {
		e.dirtyMark[i] = false
	}
	e.dirtyList = e.dirtyList[:0]
	return e.vals
}

// sumAcc returns Σ_s acc_s[v] by pairwise tree reduction. int64 addition
// is exact, so every association yields the same bits as the fixed-order
// serial sum; the tree keeps the dependency chain at ⌈log₂ P⌉ adds for
// wide shard counts and documents that the reduction is order-free.
func sumAcc(shards []*incShard, v graph.V) int64 {
	switch len(shards) {
	case 1:
		return shards[0].acc[v]
	case 2:
		return shards[0].acc[v] + shards[1].acc[v]
	default:
		h := len(shards) / 2
		return sumAcc(shards[:h], v) + sumAcc(shards[h:], v)
	}
}

// runWorker is one goroutine of the parallel phase: drain the own batch,
// then steal from whichever shard has the most work left until everything
// is claimed.
func (e *IncrementalPooledEstimator) runWorker(w int, blocked []bool) {
	me := e.shards[w]
	t0 := time.Now()
	e.drain(me, me, blocked, false)
	for {
		var victim *incShard
		var most int64
		for _, sh := range e.shards {
			if sh == me {
				continue
			}
			if rem := int64(len(sh.batch)) - sh.cur.Load(); rem > most {
				most, victim = rem, sh
			}
		}
		if victim == nil {
			break
		}
		e.drain(victim, me, blocked, true)
	}
	me.procNs += time.Since(t0).Nanoseconds()
}

// drain claims chunks of from's batch through its cursor and processes
// them into worker to's accumulator and scratch.
func (e *IncrementalPooledEstimator) drain(from, to *incShard, blocked []bool, steal bool) {
	n := int64(len(from.batch))
	for {
		hi := from.cur.Add(stealChunk)
		lo := hi - stealChunk
		if lo >= n {
			return
		}
		if hi > n {
			hi = n
		}
		e.processInto(to, from.batch[lo:hi], blocked)
		to.processed += hi - lo
		if steal {
			to.stolen += hi - lo
		}
	}
}

// processInto retracts each listed sample's cached contributions, recomputes
// its filtered dominator tree under the new blocker set, and caches the
// result — everything folded into worker to's own accumulator. The samples
// need not be owned by to: Σ_s acc_s stays exact wherever the deltas land.
func (e *IncrementalPooledEstimator) processInto(to *incShard, samples []int32, blocked []bool) {
	for _, i := range samples {
		base := e.pool.contribBase(int(i))
		old := int64(e.contribLen[i])
		for j := base; j < base+old; j++ {
			to.add(e.contribVert[j], -int64(e.contribSize[j]))
		}

		e.pool.view(int(i), &to.sview)
		forig, sizes := to.dominateSample(&to.sview, blocked, e.domAlgo)
		e.contribLen[i] = int32(len(forig) - 1)
		for fl := 1; fl < len(forig); fl++ {
			v, sz := forig[fl], sizes[fl]
			e.contribVert[base+int64(fl-1)] = v
			e.contribSize[base+int64(fl-1)] = sz
			to.add(v, int64(sz))
		}
	}
}

// dominateSample computes per-vertex dominator-subtree sizes for one stored
// sample under the current blocker set. When the sample contains no blocked
// vertex — every priming-round sample, and dirty samples whose flips were
// all unblocks — the sample CSR already is the flow graph, so the filter BFS
// and CSR rebuild are skipped and the dominator computation runs straight
// off the view. Dominator trees are unique per flow graph, so both paths
// return identical (vertex, size) contributions.
func (st *filterScratch) dominateSample(s *sampleView, blocked []bool, domAlgo DomAlgo) ([]graph.V, []int32) {
	if blocked != nil {
		for _, v := range s.orig {
			if blocked[v] {
				return st.filterAndDominate(s, blocked, domAlgo)
			}
		}
	}
	s.ensureInCSR() // compressed views derive it only when this path runs
	fg := dominator.FlowGraph{N: len(s.orig), OutStart: s.outStart, OutTo: s.outTo, InStart: s.inStart, InTo: s.inTo}
	return s.orig, st.runDominators(&fg, domAlgo)
}

// RepairPool swaps in a repaired pool (SamplePool.Repair) while keeping the
// estimator warm: the contribution cache of every clean sample is relocated
// to its new arena offset, while each redrawn sample's cached contributions
// are retracted from its shard accumulator and the sample is staged dirty,
// so the next DecreaseES call recomputes exactly the redrawn samples under
// the new topology. The maintained state then equals — bit for bit — that of
// an estimator built fresh on the repaired pool and primed with the same
// blocker history, which is what keeps warm solves warm across mutations.
//
// newPool must come from a Repair of the estimator's current pool (same θ,
// same streams, same encoding) with dirty as the returned redrawn-sample
// list; the vertex count may only have grown. Must not be called
// concurrently with DecreaseES; back-to-back repairs without an intervening
// DecreaseES compose correctly.
func (e *IncrementalPooledEstimator) RepairPool(newPool *SamplePool, dirty []int32) {
	old := e.pool
	if newPool.Theta() != old.Theta() {
		panic("core: RepairPool with mismatched theta")
	}
	if n := newPool.g.N(); n > len(e.vals) {
		grow := n - len(e.vals)
		e.vals = append(e.vals, make([]float64, grow)...)
		e.prevBlocked = append(e.prevBlocked, make([]bool, grow)...)
		e.unionMark = append(e.unionMark, make([]bool, grow)...)
		for _, sh := range e.shards {
			// Re-allocate through the aligned constructors: a plain append
			// would land the grown arrays wherever the allocator likes,
			// silently losing the cache-line alignment the shard layout
			// depends on.
			acc := alignedInt64(n)
			copy(acc, sh.acc)
			sh.acc = acc
			marked := alignedBools(n)
			copy(marked, sh.marked)
			sh.marked = marked
		}
	}
	if !e.primed {
		// No cached contributions to relocate; the priming round draws
		// everything from the new pool anyway.
		e.pool = newPool
		tv := newPool.totalVertEntries()
		e.contribVert = make([]graph.V, tv)
		e.contribSize = make([]int32, tv)
		return
	}
	isDirty := make([]bool, old.Theta())
	for _, i := range dirty {
		isDirty[i] = true
	}
	tv := newPool.totalVertEntries()
	nv := make([]graph.V, tv)
	ns := make([]int32, tv)
	for i := 0; i < old.Theta(); i++ {
		if isDirty[i] {
			sh := e.shards[e.ownerOf[i]]
			base := old.contribBase(i)
			for j := base; j < base+int64(e.contribLen[i]); j++ {
				sh.add(e.contribVert[j], -int64(e.contribSize[j]))
			}
			// Zero length: processInto must not retract these again when it
			// recomputes the sample next round.
			e.contribLen[i] = 0
			e.markDirty(int32(i))
			continue
		}
		ob, nb := old.contribBase(i), newPool.contribBase(i)
		l := int64(e.contribLen[i])
		copy(nv[nb:nb+l], e.contribVert[ob:ob+l])
		copy(ns[nb:nb+l], e.contribSize[ob:ob+l])
	}
	e.contribVert, e.contribSize = nv, ns
	e.pool = newPool
}

// IncrementalStats reports the estimator's lifetime work counters.
type IncrementalStats struct {
	// Rounds is the number of DecreaseES calls answered.
	Rounds int64
	// SamplesReprocessed is the total number of dirty samples recomputed;
	// a full re-scan per round would make this Rounds × Theta.
	SamplesReprocessed int64
	// SamplesStolen is how many of those were claimed by a worker other
	// than the shard owner — nonzero only when dirty samples skew across
	// the θ-ranges hard enough for the work-stealing fallback to engage.
	SamplesStolen int64
}

// Stats returns the work counters. Call between DecreaseES calls.
func (e *IncrementalPooledEstimator) Stats() IncrementalStats {
	st := IncrementalStats{Rounds: e.rounds, SamplesReprocessed: e.reprocessed, SamplesStolen: e.stolenPast}
	for _, sh := range e.shards {
		st.SamplesStolen += sh.stolen
	}
	return st
}

// ShardProfile is one worker shard's work counters since the last reshard,
// for the benchcore contention profile.
type ShardProfile struct {
	// Lo, Hi is the shard's owned sample range [Lo, Hi).
	Lo, Hi int
	// Processed counts dirty samples this worker recomputed (own and
	// stolen); Stolen is the subset claimed from other shards' batches.
	Processed, Stolen int64
	// Ns is the worker's cumulative wall-clock nanoseconds in the parallel
	// dirty-processing phase.
	Ns int64
}

// ShardProfiles snapshots the per-worker counters. Call between DecreaseES
// calls; a reshard resets the profiles (steal totals survive in Stats).
func (e *IncrementalPooledEstimator) ShardProfiles() []ShardProfile {
	out := make([]ShardProfile, len(e.shards))
	for s, sh := range e.shards {
		out[s] = ShardProfile{Lo: sh.lo, Hi: sh.hi, Processed: sh.processed, Stolen: sh.stolen, Ns: sh.procNs}
	}
	return out
}

// MemoryBytes reports the pool plus the estimator's own resident footprint:
// cached value vector, contribution arena, previous-blocker mask, staging
// and batch buffers, and the per-shard state — the O(n) accumulator and
// mark arrays plus the filter and dominator scratch grown during
// processing. On large graphs at high worker counts the per-shard state
// dwarfs the arena itself, which is why SetWorkers is worth calling
// downward too.
func (e *IncrementalPooledEstimator) MemoryBytes() int64 {
	total := e.pool.MemoryBytes() +
		int64(len(e.vals))*8 +
		int64(len(e.contribVert))*4 + int64(len(e.contribSize))*4 +
		int64(len(e.contribLen))*4 + int64(len(e.ownerOf))*4 +
		int64(len(e.prevBlocked)) + int64(len(e.dirtyMark)) +
		int64(cap(e.dirtyList))*4 + int64(cap(e.batchBuf))*4 +
		int64(cap(e.batchCnt))*4 + int64(cap(e.batchPos))*4 +
		int64(len(e.unionMark)) + int64(cap(e.union))*4
	for _, part := range e.unionParts {
		total += int64(cap(part)) * 4
	}
	for _, sh := range e.shards {
		total += int64(cap(sh.acc))*8 + int64(cap(sh.marked)) +
			int64(cap(sh.touched))*4 +
			sh.memoryBytes() + sh.sview.memoryBytes()
	}
	return total
}
