package obs

import (
	"encoding/json"
	"testing"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	sp := tr.StartSpan("x")
	if sp != nil {
		t.Fatal("nil trace produced a span")
	}
	sp.End()
	sp.SetAttr("k", 1)
	child := sp.StartChild("y")
	if child != nil {
		t.Fatal("nil span produced a child")
	}
	if tr.Finish() != nil {
		t.Fatal("nil trace produced output")
	}
	if sp.ChildCount() != 0 {
		t.Fatal("nil span has children")
	}
}

func TestTraceTreeAndJSON(t *testing.T) {
	tr := NewTrace("solve", "g1", "req-1")
	q := tr.StartSpan("queue")
	q.End()
	s := tr.StartSpan("solve")
	r0 := s.StartChild("round")
	r0.SetAttr("round", 0)
	r0.SetAttr("dirty", int64(12))
	r0.End()
	r1 := s.StartChild("round")
	r1.SetAttr("round", 1)
	r1.End()
	s.End()
	out := tr.Finish()
	if out == nil || out.Root == nil {
		t.Fatal("nil output")
	}
	if out.Op != "solve" || out.RequestID != "req-1" || out.Graph != "g1" {
		t.Fatalf("trace metadata wrong: %+v", out)
	}
	if len(out.Root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(out.Root.Children))
	}
	solve := out.Root.Children[1]
	if solve.Name != "solve" || len(solve.Children) != 2 {
		t.Fatalf("solve span wrong: %+v", solve)
	}
	if solve.Children[0].Attrs[0].Key != "round" {
		t.Fatalf("round attr missing: %+v", solve.Children[0])
	}
	if _, err := json.Marshal(out); err != nil {
		t.Fatalf("trace not JSON-marshalable: %v", err)
	}
	for _, c := range out.Root.Children {
		if c.DurationUS < 0 || c.StartUS < 0 {
			t.Fatalf("negative timing: %+v", c)
		}
	}
}

func TestUnendedSpansClosedAtFinish(t *testing.T) {
	tr := NewTrace("solve", "g", "")
	tr.StartSpan("never-ended")
	out := tr.Finish()
	if out.Root.Children[0].DurationUS < 0 {
		t.Fatal("unended span has negative duration")
	}
}

func TestTraceRingBoundsAndOrder(t *testing.T) {
	r := NewTraceRing(3)
	for i := 0; i < 5; i++ {
		tr := NewTrace("solve", "g", "")
		out := tr.Finish()
		out.RequestID = string(rune('a' + i))
		r.Add(out)
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring size = %d, want 3", len(snap))
	}
	// Newest first: e, d, c.
	want := []string{"e", "d", "c"}
	for i, w := range want {
		if snap[i].RequestID != w {
			t.Fatalf("snapshot[%d] = %q, want %q", i, snap[i].RequestID, w)
		}
	}
}

func TestNilTraceRing(t *testing.T) {
	r := NewTraceRing(0)
	if r != nil {
		t.Fatal("capacity 0 should give nil ring")
	}
	if r.Enabled() {
		t.Fatal("nil ring enabled")
	}
	r.Add(&TraceOut{})
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil ring snapshot = %v", got)
	}
}
