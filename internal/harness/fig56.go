package harness

import (
	"fmt"
	"time"

	"github.com/imin-dev/imin/internal/core"
	"github.com/imin-dev/imin/internal/graph"
)

// Fig56Point is one (dataset, θ) measurement shared by Figures 5 and 6:
// the expected spread GR achieves with that sampling budget and the time it
// took. Figure 5 plots the spread decrease ratio between consecutive θ
// values; Figure 6 plots the runtime.
type Fig56Point struct {
	Dataset string
	Theta   int
	Spread  float64
	Runtime time.Duration
	// DecreaseRatioPct is the percentage decrease of expected spread
	// relative to the previous (smaller) θ on the same dataset; 0 for the
	// first θ. Figure 5's y axis.
	DecreaseRatioPct float64
}

// Fig56Options configures the θ sweep.
type Fig56Options struct {
	// Thetas in increasing order. The paper sweeps {10³,10⁴,10⁵}; the
	// default {10², 10³, 10⁴} matches the scaled datasets.
	Thetas []int
	// Budget for the GR run (paper: 20).
	Budget int
}

func (o Fig56Options) withDefaults() Fig56Options {
	if len(o.Thetas) == 0 {
		o.Thetas = []int{100, 1000, 10000}
	}
	if o.Budget == 0 {
		o.Budget = 20
	}
	return o
}

// RunFig56 reproduces Figures 5 and 6: vary the number of sampled graphs θ
// and report GreedyReplace's result quality and running time on every
// dataset under the TR model. The paper's finding: quality saturates (the
// spread decrease from θ=10³→10⁴ is ≤ 2.89 % and from 10⁴→10⁵ below 0.1 %)
// while time grows roughly linearly in θ — justifying θ=10⁴.
func RunFig56(cfg Config, opts Fig56Options) ([]Fig56Point, error) {
	cfg = cfg.WithDefaults()
	opts = opts.withDefaults()
	specs, err := cfg.selectedSpecs()
	if err != nil {
		return nil, err
	}

	var points []Fig56Point
	for _, spec := range specs {
		inst, err := cfg.prepare(spec, graph.Trivalency)
		if err != nil {
			return nil, err
		}
		prevSpread := 0.0
		for i, theta := range opts.Thetas {
			run := cfg
			run.Theta = theta
			res, spread, err := run.run(inst, core.GreedyReplace, opts.Budget)
			if err != nil {
				return nil, fmt.Errorf("harness: fig5/6 %s θ=%d: %w", spec.Name, theta, err)
			}
			pt := Fig56Point{Dataset: spec.Name, Theta: theta, Spread: spread, Runtime: res.Runtime}
			if i > 0 && prevSpread > 0 {
				pt.DecreaseRatioPct = 100 * (prevSpread - spread) / prevSpread
			}
			prevSpread = spread
			points = append(points, pt)
		}
	}

	fmt.Fprintln(cfg.Out, "Figures 5+6: GR quality and time vs number of sampled graphs (TR model)")
	fmt.Fprintln(cfg.Out, "Dataset      theta    E(spread)   decrease%     time")
	for _, p := range points {
		fmt.Fprintf(cfg.Out, "%-12s %6d  %10.3f  %9.3f%%  %9s\n",
			p.Dataset, p.Theta, p.Spread, p.DecreaseRatioPct, p.Runtime.Round(time.Millisecond))
	}
	return points, nil
}
