package harness

import (
	"fmt"
	"sort"

	"github.com/imin-dev/imin/internal/core"
	"github.com/imin-dev/imin/internal/exact"
	"github.com/imin-dev/imin/internal/fixture"
	"github.com/imin-dev/imin/internal/graph"
)

// Table3Row is one cell group of Table III: an algorithm's blockers and the
// exact expected spread they achieve on the Figure 1 toy graph.
type Table3Row struct {
	Algorithm string
	Budget    int
	Blockers  []graph.V
	Spread    float64
}

// RunTable3 reproduces Table III: Greedy (= AdvancedGreedy), OutNeighbors
// (best blockers restricted to the seed's out-neighbors, found exactly) and
// GreedyReplace on the toy graph for b ∈ {1,2}, scored with the exact
// spread. Expected outcome: Greedy wins at b=1 (spread 3 vs 6.66), loses at
// b=2 (2 vs 1), GreedyReplace matches the better one at both budgets.
func RunTable3(cfg Config) ([]Table3Row, error) {
	cfg = cfg.WithDefaults()
	g := fixture.Toy()
	seed := fixture.Seed
	eval := exact.EvalExact(g, seed, 0)
	var rows []Table3Row

	for _, b := range []int{1, 2} {
		// Greedy = the greedy framework (AG's selection equals BG/greedy on
		// this graph).
		opt := cfg.solveOptions(core.DiffusionIC, cfg.Seed)
		res, err := core.Solve(g, []graph.V{seed}, b, core.AdvancedGreedy, opt)
		if err != nil {
			return nil, err
		}
		s, err := exactSpreadOf(g, seed, res.Blockers)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{Algorithm: "Greedy", Budget: b, Blockers: res.Blockers, Spread: s})

		// OutNeighbors: optimal blocker set restricted to N_out(seed).
		outs := append([]graph.V(nil), g.OutNeighbors(seed)...)
		on, err := exact.SolveIMIN(g, seed, b, outs, eval)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{Algorithm: "OutNeighbors", Budget: b, Blockers: on.Blockers, Spread: on.Spread})

		// GreedyReplace.
		res, err = core.Solve(g, []graph.V{seed}, b, core.GreedyReplace, opt)
		if err != nil {
			return nil, err
		}
		s, err = exactSpreadOf(g, seed, res.Blockers)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{Algorithm: "GreedyReplace", Budget: b, Blockers: res.Blockers, Spread: s})
	}

	fmt.Fprintln(cfg.Out, "Table III: blockers and their expected influence spread (toy graph)")
	fmt.Fprintln(cfg.Out, "Algorithm      b  Blockers         E(spread)")
	for _, r := range rows {
		fmt.Fprintf(cfg.Out, "%-13s %2d  %-16s %.2f\n", r.Algorithm, r.Budget, vertexNames(r.Blockers), r.Spread)
	}
	return rows, nil
}

func exactSpreadOf(g *graph.Graph, src graph.V, blockers []graph.V) (float64, error) {
	blocked := make([]bool, g.N())
	for _, v := range blockers {
		blocked[v] = true
	}
	return exact.Spread(g, src, blocked, 0)
}

// vertexNames renders toy-graph vertices in the paper's v1..v9 notation.
func vertexNames(vs []graph.V) string {
	sorted := append([]graph.V(nil), vs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := "{"
	for i, v := range sorted {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("v%d", v+1)
	}
	return out + "}"
}
