module github.com/imin-dev/imin

go 1.24.0
