package imin

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/imin-dev/imin/internal/fixture"
)

func TestFacadeSimulateCascade(t *testing.T) {
	g := fixture.Toy()
	tr := SimulateCascade(g, []Vertex{fixture.Seed}, nil, 1)
	if tr.Total < 7 || tr.Total > 9 {
		t.Fatalf("trace total %d out of range", tr.Total)
	}
	if tr.ActivatedAt[fixture.V5] != 2 {
		t.Fatalf("v5 activated at %d, want 2", tr.ActivatedAt[fixture.V5])
	}
	// With v5 blocked only the seed's two out-neighbors activate.
	tr = SimulateCascade(g, []Vertex{fixture.Seed}, []Vertex{fixture.V5}, 2)
	if tr.Total != 3 {
		t.Fatalf("blocked trace total %d, want 3", tr.Total)
	}
}

func TestFacadeAverageCascadeRounds(t *testing.T) {
	g := fixture.Toy()
	rounds, spread := AverageCascadeRounds(g, []Vertex{fixture.Seed}, nil, 50000, 3)
	if math.Abs(spread-fixture.ExpectedSpread) > 0.04 {
		t.Fatalf("spread %v, want %v", spread, fixture.ExpectedSpread)
	}
	// The certain part takes 3 rounds; v8/v7 can extend to 4-5.
	if rounds < 3 || rounds > 4 {
		t.Fatalf("average rounds %v out of [3,4]", rounds)
	}
}

func TestFacadeAnalyzeComponents(t *testing.T) {
	g := fixture.Toy()
	c := AnalyzeComponents(g)
	if c.StrongCount != 9 {
		t.Errorf("StrongCount = %d, want 9 (DAG)", c.StrongCount)
	}
	if c.WeakCount != 1 || c.LargestWeakFraction != 1 {
		t.Errorf("weak connectivity wrong: %+v", c)
	}
}

func TestFacadeDegreeHistogram(t *testing.T) {
	g := fixture.Toy()
	hist := DegreeHistogram(g)
	total := 0
	for _, c := range hist {
		total += c
	}
	if total != g.N() {
		t.Fatalf("histogram covers %d vertices", total)
	}
}

func TestFacadeMinimizeEdgesToy(t *testing.T) {
	g := fixture.Toy()
	res, err := MinimizeEdges(g, []Vertex{fixture.Seed}, 1, Options{Theta: 20000, Workers: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) != 1 || res.Edges[0].From != fixture.V5 || res.Edges[0].To != fixture.V9 {
		t.Fatalf("edge blockers = %+v, want (v5,v9)", res.Edges)
	}
}

func TestFacadeWriteDOT(t *testing.T) {
	g := fixture.Toy()
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, DOTOptions{Name: "fig1"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "digraph fig1") {
		t.Fatal("DOT output malformed")
	}
}

func TestFacadeSpreadCurve(t *testing.T) {
	g := fixture.Toy()
	curve, err := SpreadCurve(g, []Vertex{fixture.Seed}, []Vertex{fixture.V5, fixture.V2}, 50000, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 3 {
		t.Fatalf("curve length %d, want 3", len(curve))
	}
	if math.Abs(curve[0]-fixture.ExpectedSpread) > 0.05 {
		t.Errorf("curve[0] = %v, want %v", curve[0], fixture.ExpectedSpread)
	}
	if math.Abs(curve[1]-3) > 0.05 {
		t.Errorf("curve[1] = %v, want 3", curve[1])
	}
	if math.Abs(curve[2]-2) > 0.05 {
		t.Errorf("curve[2] = %v, want 2", curve[2])
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1]+0.05 {
			t.Error("spread curve not non-increasing")
		}
	}
}

func TestFacadeTopDegreeSeedSet(t *testing.T) {
	g := fixture.Toy()
	seeds, err := TopDegreeSeedSet(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 1 || seeds[0] != fixture.V5 {
		t.Fatalf("top-degree seed = %v, want v5", seeds)
	}
}

func TestFacadeReuseSamplesOption(t *testing.T) {
	g := fixture.Toy()
	opt := Options{Theta: 4000, Workers: 2, Seed: 5, ReuseSamples: true}
	res, err := MinimizeWith(g, []Vertex{fixture.Seed}, 1, AdvancedGreedy, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blockers) != 1 || res.Blockers[0] != fixture.V5 {
		t.Fatalf("pooled AG = %v, want [v5]", res.Blockers)
	}
	if res.SampledGraphs != 4000 {
		t.Fatalf("pool drawn %d samples, want 4000", res.SampledGraphs)
	}
}
