// Package linttest runs lintkit analyzers over fixture packages, in the
// style of golang.org/x/tools/go/analysis/analysistest: fixture sources
// carry `// want "regexp"` comments naming the diagnostics they expect on
// that line, and the runner fails the test on any mismatch in either
// direction — a missing diagnostic (a rule stopped firing) or an
// unexpected one (a rule over-triggers).
//
// Fixtures live under testdata/<analyzer>/<case>/ and may import only the
// standard library. The package path the fixture is checked under is a
// parameter, because several analyzers scope themselves by import path —
// the same source can be exercised inside and outside a determinism-
// critical package.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"github.com/imin-dev/imin/internal/lintkit"
)

// Run lints the fixture directory as a package named by pkgPath and
// compares diagnostics against the fixture's `// want` expectations.
func Run(t *testing.T, dir string, a *lintkit.Analyzer, pkgPath string) {
	t.Helper()
	diags, fset, files := analyze(t, dir, a, pkgPath)
	wants := collectWants(t, fset, files)

	matched := make([]bool, len(wants))
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// analyze loads, type-checks and lints one fixture directory.
func analyze(t *testing.T, dir string, a *lintkit.Analyzer, pkgPath string) ([]lintkit.Diagnostic, *token.FileSet, []*ast.File) {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture sources in %s (%v)", dir, err)
	}
	sort.Strings(names)
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	info := lintkit.NewTypesInfo()
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	pkg := &lintkit.Package{
		PkgPath: pkgPath, Dir: dir, Fset: fset, Files: files,
		Types: tpkg, TypesInfo: info,
	}
	diags, err := lintkit.Run([]*lintkit.Package{pkg}, []*lintkit.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	return diags, fset, files
}

// want is one expectation: a regexp that must match a diagnostic on line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.+)$`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				pats, err := splitPatterns(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
				}
				for _, p := range pats {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, p, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// splitPatterns parses a sequence of Go-quoted strings: `"a" "b\"c"`.
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for len(s) > 0 {
		if s[0] != '"' && s[0] != '`' {
			return nil, fmt.Errorf("expected quoted pattern at %q", s)
		}
		quote := s[0]
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == quote && (quote == '`' || s[i-1] != '\\') {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated pattern in %q", s)
		}
		p, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, fmt.Errorf("unquoting %q: %v", s[:end+1], err)
		}
		out = append(out, p)
		s = strings.TrimSpace(s[end+1:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want")
	}
	return out, nil
}

// MustBeCleanDir asserts the fixture produces no unsuppressed diagnostics
// at all — the negative-fixture helper, stricter than per-line wants.
func MustBeCleanDir(t *testing.T, dir string, a *lintkit.Analyzer, pkgPath string) {
	t.Helper()
	diags, _, _ := analyze(t, dir, a, pkgPath)
	for _, d := range diags {
		if !d.Suppressed {
			t.Errorf("want no diagnostics, got: %s", d)
		}
	}
}
