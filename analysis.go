package imin

import (
	"github.com/imin-dev/imin/internal/analysis"
	"github.com/imin-dev/imin/internal/cascade"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// Structural analysis and cascade forensics: the tools for understanding a
// network before intervening and for inspecting what a single realized
// cascade did.

// DOTOptions controls Graphviz export; see Graph.WriteDOT.
type DOTOptions = graph.DOTOptions

// Trace is one timestamped diffusion realization: activation times, the
// realized infection forest, and per-round counts.
type Trace = cascade.Trace

// SimulateCascade runs one timestamped IC diffusion from the seeds,
// skipping blocked vertices (blockers may be nil), with the given random
// seed. Use it for forensics — who was activated when and by whom — rather
// than for spread estimation (EstimateSpread averages thousands of runs).
func SimulateCascade(g *Graph, seeds []Vertex, blockers []Vertex, rngSeed uint64) *Trace {
	var blocked []bool
	if len(blockers) > 0 {
		blocked = make([]bool, g.N())
		for _, v := range blockers {
			blocked[v] = true
		}
	}
	return cascade.SimulateTrace(g, seeds, blocked, rng.New(rngSeed))
}

// AverageCascadeRounds estimates the expected number of diffusion rounds
// and the expected spread over sims timestamped simulations.
func AverageCascadeRounds(g *Graph, seeds []Vertex, blockers []Vertex, sims int, rngSeed uint64) (rounds, spread float64) {
	var blocked []bool
	if len(blockers) > 0 {
		blocked = make([]bool, g.N())
		for _, v := range blockers {
			blocked[v] = true
		}
	}
	return cascade.AverageRounds(g, seeds, blocked, sims, rng.New(rngSeed))
}

// Components summarizes a graph's connectivity.
type Components struct {
	// StrongCount and WeakCount are the numbers of strongly / weakly
	// connected components.
	StrongCount, WeakCount int
	// LargestWeakFraction is the share of vertices in the biggest weak
	// component — near 1.0 for well-formed social graphs.
	LargestWeakFraction float64
}

// AnalyzeComponents computes connectivity statistics.
func AnalyzeComponents(g *Graph) Components {
	scc := analysis.StronglyConnectedComponents(g)
	wcc := analysis.WeaklyConnectedComponents(g)
	return Components{
		StrongCount:         scc.Count,
		WeakCount:           wcc.Count,
		LargestWeakFraction: wcc.LargestComponentFraction(g.N()),
	}
}

// DegreeHistogram returns the vertex count per total degree (in+out).
func DegreeHistogram(g *Graph) []int { return analysis.DegreeHistogram(g) }

// PowerLawAlpha estimates the degree distribution's power-law exponent
// over vertices with total degree ≥ dmin (Clauset–Shalizi–Newman MLE);
// social networks typically land in [2, 3]. NaN when too few vertices
// qualify.
func PowerLawAlpha(g *Graph, dmin int) float64 { return analysis.PowerLawAlpha(g, dmin) }
