package obs

import (
	"sync"
	"time"
)

// Trace is the span tree of one operation (normally one solve request).
// Build spans with StartSpan/StartChild, finish with Finish, then hand the
// resulting TraceOut to a TraceRing or a response body.
//
// Every method is safe on a nil *Trace or nil *Span and does nothing —
// the "tracing disabled" path is a nil check, with zero allocations, so
// instrumented code never branches on a config flag itself.
//
// A Trace is built by a single goroutine (the request handler chain); it
// is not safe for concurrent span creation.
type Trace struct {
	op    string
	id    string // request id
	graph string
	start time.Time
	root  *Span
}

// Span is one timed phase inside a Trace.
type Span struct {
	name     string
	start    time.Time
	end      time.Time
	attrs    []Attr
	children []*Span
	trace    *Trace
}

// Attr is one key/value annotation on a span. Values are kept as the
// concrete types callers pass (strings, ints, floats, bools) and rendered
// by encoding/json.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// NewTrace starts a trace for op (e.g. "solve") on the named graph, tagged
// with the request id.
func NewTrace(op, graph, requestID string) *Trace {
	now := time.Now()
	t := &Trace{op: op, id: requestID, graph: graph, start: now}
	t.root = &Span{name: op, start: now, trace: t}
	return t
}

// StartSpan opens a direct child of the trace root.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return t.root.StartChild(name)
}

// SetAttr annotates the trace's root span.
func (t *Trace) SetAttr(key string, value any) {
	if t == nil {
		return
	}
	t.root.SetAttr(key, value)
}

// StartChild opens a sub-span under sp.
func (sp *Span) StartChild(name string) *Span {
	if sp == nil {
		return nil
	}
	child := &Span{name: name, start: time.Now(), trace: sp.trace}
	sp.children = append(sp.children, child)
	return child
}

// AddTimedChild appends an already-completed child span of the given
// duration ending now — for callbacks that learn about a phase only after
// it finished (e.g. per-round solver hooks).
func (sp *Span) AddTimedChild(name string, d time.Duration) *Span {
	if sp == nil {
		return nil
	}
	now := time.Now()
	child := &Span{name: name, start: now.Add(-d), end: now, trace: sp.trace}
	sp.children = append(sp.children, child)
	return child
}

// End closes the span at the current time. Ending twice keeps the first
// end time.
func (sp *Span) End() {
	if sp == nil || !sp.end.IsZero() {
		return
	}
	sp.end = time.Now()
}

// SetAttr annotates the span.
func (sp *Span) SetAttr(key string, value any) {
	if sp == nil {
		return
	}
	sp.attrs = append(sp.attrs, Attr{Key: key, Value: value})
}

// ChildCount reports how many children sp has (bounding helpers).
func (sp *Span) ChildCount() int {
	if sp == nil {
		return 0
	}
	return len(sp.children)
}

// SpanOut is the JSON-ready form of a span: offsets and durations in
// microseconds relative to the trace start.
type SpanOut struct {
	Name       string     `json:"name"`
	StartUS    int64      `json:"start_us"`
	DurationUS int64      `json:"duration_us"`
	Attrs      []Attr     `json:"attrs,omitempty"`
	Children   []*SpanOut `json:"children,omitempty"`
}

// TraceOut is the JSON-ready form of a finished trace.
type TraceOut struct {
	Op        string    `json:"op"`
	RequestID string    `json:"request_id,omitempty"`
	Graph     string    `json:"graph,omitempty"`
	Start     time.Time `json:"start"`
	Root      *SpanOut  `json:"spans"`
}

// Finish closes the root span and converts the trace to its output form.
// Unended spans are closed at the finish time.
func (t *Trace) Finish() *TraceOut {
	if t == nil {
		return nil
	}
	now := time.Now()
	return &TraceOut{
		Op:        t.op,
		RequestID: t.id,
		Graph:     t.graph,
		Start:     t.start,
		Root:      t.root.out(t.start, now),
	}
}

func (sp *Span) out(traceStart, finish time.Time) *SpanOut {
	end := sp.end
	if end.IsZero() {
		end = finish
	}
	o := &SpanOut{
		Name:       sp.name,
		StartUS:    sp.start.Sub(traceStart).Microseconds(),
		DurationUS: end.Sub(sp.start).Microseconds(),
		Attrs:      sp.attrs,
	}
	for _, c := range sp.children {
		o.Children = append(o.Children, c.out(traceStart, finish))
	}
	return o
}

// TraceRing is a bounded ring of finished traces: the newest capacity
// traces are kept, older ones overwritten. A nil ring accepts and returns
// nothing, so "tracing off" needs no call-site branches.
type TraceRing struct {
	mu   sync.Mutex
	buf  []*TraceOut
	next int
	n    int
}

// NewTraceRing returns a ring holding up to capacity traces, or nil when
// capacity <= 0 (tracing disabled).
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		return nil
	}
	return &TraceRing{buf: make([]*TraceOut, capacity)}
}

// Enabled reports whether the ring records anything.
func (r *TraceRing) Enabled() bool { return r != nil }

// Add records a finished trace. Nil rings and nil traces are no-ops.
func (r *TraceRing) Add(t *TraceOut) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Snapshot returns the recorded traces, newest first.
func (r *TraceRing) Snapshot() []*TraceOut {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*TraceOut, 0, r.n)
	for i := 0; i < r.n; i++ {
		idx := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}
