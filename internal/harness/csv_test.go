package harness

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"

	"github.com/imin-dev/imin/internal/graph"
)

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	recs, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestWriteTable7CSV(t *testing.T) {
	rows := []Table7Row{
		{Dataset: "EmailCore", Model: graph.Trivalency, Budget: 20, RA: 354.88, OD: 230.10, AG: 220.59, GR: 219.69},
		{Dataset: "DBLP", Model: graph.WeightedCascade, Budget: 100, RA: 117.94, OD: 117.43, AG: 10, GR: 10},
	}
	var buf bytes.Buffer
	if err := WriteTable7CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf)
	if len(recs) != 3 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0][0] != "dataset" || recs[1][1] != "TR" || recs[2][1] != "WC" {
		t.Fatalf("unexpected rows: %v", recs)
	}
	if recs[1][3] != "354.88" {
		t.Errorf("RA cell = %q", recs[1][3])
	}
}

func TestWriteFig78CSV(t *testing.T) {
	rows := []Fig78Row{
		{Dataset: "Youtube", Model: graph.Trivalency, BG: 15 * time.Second, BGTimedOut: true, AG: 48 * time.Millisecond, GR: 49 * time.Millisecond},
	}
	var buf bytes.Buffer
	if err := WriteFig78CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf)
	if recs[1][3] != "true" {
		t.Errorf("timeout flag = %q", recs[1][3])
	}
	if recs[1][4] != "0.048" {
		t.Errorf("ag seconds = %q", recs[1][4])
	}
}

func TestWriteFig9CSVSkippedBG(t *testing.T) {
	pts := []Fig9Point{{Dataset: "Facebook", Model: graph.Trivalency, Budget: 5, BGSkipped: true, AG: time.Millisecond, GR: 2 * time.Millisecond}}
	var buf bytes.Buffer
	if err := WriteFig9CSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	recs := parseCSV(t, &buf)
	if recs[1][3] != "" {
		t.Errorf("skipped BG cell = %q, want empty", recs[1][3])
	}
}

func TestAllCSVWritersProduceHeaders(t *testing.T) {
	var buf bytes.Buffer
	check := func(name string, err error, wantHeader string) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		line, _, _ := strings.Cut(buf.String(), "\n")
		if line != wantHeader {
			t.Errorf("%s header = %q, want %q", name, line, wantHeader)
		}
		buf.Reset()
	}
	check("table3", WriteTable3CSV(&buf, []Table3Row{{Algorithm: "Greedy", Budget: 1}}),
		"algorithm,budget,blockers,spread")
	check("table56", WriteTable56CSV(&buf, []Table56Row{{Budget: 1}}),
		"budget,exact_spread,gr_spread,ratio,exact_seconds,gr_seconds")
	check("fig56", WriteFig56CSV(&buf, []Fig56Point{{Dataset: "X", Theta: 10}}),
		"dataset,theta,spread,decrease_pct,seconds")
	check("fig1011", WriteFig1011CSV(&buf, []Fig1011Point{{Dataset: "X", NumSeeds: 1}}),
		"dataset,model,seeds,seconds")
}
