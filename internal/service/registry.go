package service

import (
	"errors"
	"fmt"
	"regexp"
	"sort"
	"sync"
	"time"

	"github.com/imin-dev/imin/internal/dynamic"
	"github.com/imin-dev/imin/internal/graph"
)

// ErrDuplicate reports a Register call for a name that is already taken,
// ErrFull a registry at its configured capacity — the two registry
// failures that are the server's state rather than the caller's input.
var (
	ErrDuplicate = errors.New("graph already registered")
	ErrFull      = errors.New("graph registry full")
)

// Registry is the concurrent store of named graphs. Names are registered
// once and never reassigned; the graph behind a name is an epoch-versioned
// dynamic.Graph, so topology evolves through atomic mutation batches while
// every reader works on an immutable per-epoch CSR snapshot. The registry
// lock only guards the name table; dynamic.Graph has its own locking.
type Registry struct {
	mu      sync.RWMutex
	limit   int // max entries; <= 0 means unbounded
	entries map[string]*GraphEntry
}

// GraphEntry is one registered graph.
type GraphEntry struct {
	Name         string
	Dyn          *dynamic.Graph
	Source       string // human-readable provenance ("dataset Wiki-Vote @ 0.02", "file edges.txt", ...)
	RegisteredAt time.Time
}

// Current returns the immutable snapshot of the entry's present epoch,
// together with that epoch — the pair every solve binds to.
func (e *GraphEntry) Current() (*graph.Graph, uint64) {
	return e.Dyn.Snapshot()
}

// Info summarizes the entry for the listing API.
func (e *GraphEntry) Info() GraphInfo {
	g, epoch := e.Dyn.Snapshot()
	st := e.Dyn.Stats()
	return GraphInfo{
		Name:          e.Name,
		Vertices:      g.N(),
		Edges:         g.M(),
		Epoch:         epoch,
		PendingDeltas: st.DeltasSinceCompact,
		Compactions:   st.Compactions,
		Source:        e.Source,
		RegisteredAt:  e.RegisteredAt,
	}
}

// NewRegistry returns an empty registry holding at most limit graphs
// (<= 0 for no bound). Every entry lives in memory forever — per-entry
// size caps alone would not stop many right-sized registrations from
// exhausting memory, hence the count bound.
func NewRegistry(limit int) *Registry {
	return &Registry{limit: limit, entries: make(map[string]*GraphEntry)}
}

// graphName constrains registry names so they can appear in URL paths.
var graphName = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// ValidateName reports whether name may be registered. Register applies it
// itself; callers may use it up front to fail fast before building a graph.
func ValidateName(name string) error {
	if !graphName.MatchString(name) {
		return fmt.Errorf("invalid graph name %q (want %s)", name, graphName)
	}
	return nil
}

// Register adds a graph under name at epoch 0. Registering an existing
// name fails: names are never reassigned, so a graph evolves only through
// its own mutation batches and sessions can always catch up by epoch.
func (r *Registry) Register(name string, g *graph.Graph, source string) (*GraphEntry, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		return nil, fmt.Errorf("graph %q: %w", name, ErrDuplicate)
	}
	if r.limit > 0 && len(r.entries) >= r.limit {
		return nil, fmt.Errorf("%w (limit %d)", ErrFull, r.limit)
	}
	e := &GraphEntry{Name: name, Dyn: dynamic.New(g, dynamic.Config{}), Source: source, RegisteredAt: time.Now()}
	r.entries[name] = e
	return e, nil
}

// MutationTotals sums every entry's dynamic-graph counters, for /stats.
func (r *Registry) MutationTotals() (batches, mutations, compactions int64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, e := range r.entries {
		st := e.Dyn.Stats()
		batches += st.Batches
		mutations += st.Mutations
		compactions += st.Compactions
	}
	return batches, mutations, compactions
}

// Get looks up a graph by name.
func (r *Registry) Get(name string) (*GraphEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// List returns all entries' info, sorted by name.
func (r *Registry) List() []GraphInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]GraphInfo, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.Info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len reports the number of registered graphs.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}
