package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/imin-dev/imin/internal/datasets"
	"github.com/imin-dev/imin/internal/fixture"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

func TestSCCOnDAG(t *testing.T) {
	// The toy graph is a DAG: every vertex is its own component.
	g := fixture.Toy()
	r := StronglyConnectedComponents(g)
	if r.Count != g.N() {
		t.Fatalf("DAG has %d SCCs, want %d", r.Count, g.N())
	}
	for _, s := range r.Sizes {
		if s != 1 {
			t.Fatal("DAG component with size > 1")
		}
	}
}

func TestSCCOnCycle(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 0, 1)
	b.AddEdge(2, 3, 1) // 3 hangs off the cycle
	g := b.Build()
	r := StronglyConnectedComponents(g)
	if r.Count != 2 {
		t.Fatalf("got %d SCCs, want 2", r.Count)
	}
	if r.Comp[0] != r.Comp[1] || r.Comp[1] != r.Comp[2] {
		t.Error("cycle vertices not in one component")
	}
	if r.Comp[3] == r.Comp[0] {
		t.Error("tail vertex merged into cycle")
	}
}

func TestSCCReverseTopologicalNumbering(t *testing.T) {
	// Tarjan numbers components in reverse topological order: every edge
	// crossing components goes from higher to lower component id.
	g := fixture.Toy()
	r := StronglyConnectedComponents(g)
	for _, e := range g.Edges() {
		if r.Comp[e.From] != r.Comp[e.To] && r.Comp[e.From] < r.Comp[e.To] {
			t.Fatalf("edge (%d,%d) goes from comp %d to comp %d", e.From, e.To, r.Comp[e.From], r.Comp[e.To])
		}
	}
}

func TestSCCDeepPathIterative(t *testing.T) {
	n := 150000
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.V(i), graph.V(i+1), 1)
	}
	r := StronglyConnectedComponents(b.Build())
	if r.Count != n {
		t.Fatalf("deep path: %d SCCs, want %d", r.Count, n)
	}
}

func TestWCC(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 1, 1) // 0,1,2 weakly connected despite directions
	b.AddEdge(3, 4, 1)
	// 5 isolated
	g := b.Build()
	r := WeaklyConnectedComponents(g)
	if r.Count != 3 {
		t.Fatalf("got %d WCCs, want 3", r.Count)
	}
	if r.Comp[0] != r.Comp[1] || r.Comp[1] != r.Comp[2] {
		t.Error("weak component 0-1-2 split")
	}
	if r.Comp[3] != r.Comp[4] {
		t.Error("weak component 3-4 split")
	}
	if r.Comp[5] == r.Comp[0] || r.Comp[5] == r.Comp[3] {
		t.Error("isolated vertex merged")
	}
	total := int32(0)
	for _, s := range r.Sizes {
		total += s
	}
	if total != 6 {
		t.Errorf("sizes sum to %d", total)
	}
}

func TestLargestComponentFraction(t *testing.T) {
	r := &SCCResult{Sizes: []int32{3, 5, 2}}
	if f := r.LargestComponentFraction(10); f != 0.5 {
		t.Fatalf("fraction = %v, want 0.5", f)
	}
	if f := (&SCCResult{}).LargestComponentFraction(0); f != 0 {
		t.Fatalf("empty graph fraction = %v", f)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := fixture.Toy()
	hist := DegreeHistogram(g)
	total := 0
	weighted := 0
	for d, c := range hist {
		total += c
		weighted += d * c
	}
	if total != g.N() {
		t.Fatalf("histogram covers %d vertices", total)
	}
	if weighted != 2*g.M() {
		t.Fatalf("degree mass %d, want %d", weighted, 2*g.M())
	}
	// v5 has total degree 6 and is the unique maximum.
	if hist[6] != 1 || len(hist) != 7 {
		t.Fatalf("max-degree bucket wrong: %v", hist)
	}
}

func TestPowerLawAlphaDiscriminates(t *testing.T) {
	// Preferential attachment → heavy tail (α roughly in [1.5, 3.5]);
	// Erdős–Rényi → Poisson tail, so the α estimate explodes once dmin
	// sits past the mode. Both graphs have mean total degree ≈ 6; probing
	// at dmin = 12 (2× the mean) separates the two regimes cleanly.
	pa := datasets.PreferentialAttachment(5000, 3, true, rng.New(1))
	er := datasets.ErdosRenyi(5000, 15000, true, rng.New(2))
	aPA := PowerLawAlpha(pa, 12)
	aER := PowerLawAlpha(er, 12)
	if math.IsNaN(aPA) || math.IsNaN(aER) {
		t.Fatalf("alpha NaN: pa=%v er=%v", aPA, aER)
	}
	if aPA > 4 {
		t.Errorf("PA alpha %v too large for a heavy tail", aPA)
	}
	if aER < aPA+1 {
		t.Errorf("ER alpha %v should clearly exceed PA alpha %v", aER, aPA)
	}
}

func TestPowerLawAlphaDegenerate(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1, P: 1}})
	if !math.IsNaN(PowerLawAlpha(g, 1)) {
		t.Fatal("tiny graph must return NaN")
	}
}

// Property: SCC and WCC component counts are consistent — each weak
// component contains at least one strong component, and SCC count ≥ WCC
// count; condensation acyclicity holds via the numbering invariant.
func TestComponentsConsistencyProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 2
		r := rng.New(seed)
		b := graph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			b.AddEdge(graph.V(r.Intn(n)), graph.V(r.Intn(n)), 1)
		}
		g := b.Build()
		scc := StronglyConnectedComponents(g)
		wcc := WeaklyConnectedComponents(g)
		if scc.Count < wcc.Count {
			return false
		}
		// Vertices in the same SCC must share a WCC.
		for _, e := range g.Edges() {
			if scc.Comp[e.From] == scc.Comp[e.To] && wcc.Comp[e.From] != wcc.Comp[e.To] {
				return false
			}
			// Condensation numbering invariant.
			if scc.Comp[e.From] < scc.Comp[e.To] {
				return false
			}
		}
		// Sizes sum to n in both.
		sum := func(xs []int32) int32 {
			var s int32
			for _, x := range xs {
				s += x
			}
			return s
		}
		return sum(scc.Sizes) == int32(n) && sum(wcc.Sizes) == int32(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: two vertices share an SCC iff each reaches the other.
func TestSCCDefinitionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		n := 12
		r := rng.New(seed)
		b := graph.NewBuilder(n)
		for i := 0; i < 25; i++ {
			b.AddEdge(graph.V(r.Intn(n)), graph.V(r.Intn(n)), 1)
		}
		g := b.Build()
		scc := StronglyConnectedComponents(g)
		for u := graph.V(0); int(u) < n; u++ {
			ru := g.Reachable(u)
			for v := graph.V(0); int(v) < n; v++ {
				rv := g.Reachable(v)
				mutual := ru[v] && rv[u]
				same := scc.Comp[u] == scc.Comp[v]
				if mutual != same {
					t.Logf("seed=%d u=%d v=%d mutual=%v same=%v", seed, u, v, mutual, same)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSCC(b *testing.B) {
	g := datasets.PreferentialAttachment(20000, 4, true, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		StronglyConnectedComponents(g)
	}
}
