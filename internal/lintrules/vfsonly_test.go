package lintrules_test

import (
	"testing"

	"github.com/imin-dev/imin/internal/lintkit/linttest"
	"github.com/imin-dev/imin/internal/lintrules"
)

func TestVFSOnlyPositive(t *testing.T) {
	linttest.Run(t, "testdata/vfsonly/pos", lintrules.VFSOnly, storePath)
}

func TestVFSOnlyNegative(t *testing.T) {
	linttest.MustBeCleanDir(t, "testdata/vfsonly/neg", lintrules.VFSOnly, storePath)
}

func TestVFSOnlyScoping(t *testing.T) {
	// The same direct-os fixture outside internal/store: other packages
	// (the service, the CLIs) may use os freely, so the rule stays silent.
	linttest.MustBeCleanDir(t, "testdata/vfsonly/pos", lintrules.VFSOnly, otherPath)
}
