package exact

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/imin-dev/imin/internal/cascade"
	"github.com/imin-dev/imin/internal/fixture"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

func TestSpreadToyGraphExample1(t *testing.T) {
	g := fixture.Toy()
	got, err := Spread(g, fixture.Seed, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-fixture.ExpectedSpread) > 1e-9 {
		t.Fatalf("exact spread = %v, want %v", got, fixture.ExpectedSpread)
	}
}

func TestSpreadToyWithBlockers(t *testing.T) {
	g := fixture.Toy()
	cases := []struct {
		block []graph.V
		want  float64
	}{
		{[]graph.V{fixture.V5}, 3},
		{[]graph.V{fixture.V2}, 6.66},
		{[]graph.V{fixture.V4}, 6.66},
		{[]graph.V{fixture.V2, fixture.V4}, 1},
		{[]graph.V{fixture.V3}, 6.66},
		{[]graph.V{fixture.V2, fixture.V3}, 5.66},
		{[]graph.V{fixture.V3, fixture.V4}, 5.66},
		{[]graph.V{fixture.V2, fixture.V3, fixture.V4}, 1},
		{[]graph.V{fixture.V8}, 7},
		{[]graph.V{fixture.V9}, 7.66 - 1.11},
	}
	for _, c := range cases {
		blocked := make([]bool, g.N())
		for _, v := range c.block {
			blocked[v] = true
		}
		got, err := Spread(g, fixture.Seed, blocked, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("block %v: spread = %v, want %v", c.block, got, c.want)
		}
	}
}

func TestSpreadBlockedSource(t *testing.T) {
	g := fixture.Toy()
	blocked := make([]bool, g.N())
	blocked[fixture.Seed] = true
	got, err := Spread(g, fixture.Seed, blocked, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("spread with blocked source = %v, want 0", got)
	}
}

func TestActivationProbabilities(t *testing.T) {
	g := fixture.Toy()
	cases := map[graph.V]float64{
		fixture.V1: 1,
		fixture.V2: 1,
		fixture.V5: 1,
		fixture.V9: 1,
		fixture.V8: fixture.ProbV8,
		fixture.V7: fixture.ProbV7,
	}
	for v, want := range cases {
		got, err := ActivationProbability(g, fixture.Seed, v, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("P(v%d) = %v, want %v", v+1, got, want)
		}
	}
}

func TestSpreadIsSumOfActivationProbabilities(t *testing.T) {
	// Definition 3: E(S,G) = Σ_u P_G(u, S).
	g := fixture.Toy()
	sum := 0.0
	for v := graph.V(0); int(v) < g.N(); v++ {
		p, err := ActivationProbability(g, fixture.Seed, v, 0)
		if err != nil {
			t.Fatal(err)
		}
		sum += p
	}
	spread, err := Spread(g, fixture.Seed, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum-spread) > 1e-9 {
		t.Fatalf("Σ P(u) = %v but spread = %v", sum, spread)
	}
}

func TestSpreadSeedsMultiSeed(t *testing.T) {
	// Two seeds covering the toy graph's v2 and v4: spread is the same as
	// seeding v1 except v1 itself is not activated: 7.66 - 1 + 1 = 7.66
	// minus v1's contribution (1) plus two seeds (2) ... compute directly:
	// seeds {v2,v4} reach v5 w.p.1, then v3,v6,v9 w.p.1, v8 0.6, v7 0.06:
	// spread = 2 + 1 + 3 + 0.66 = 6.66.
	g := fixture.Toy()
	got, err := SpreadSeeds(g, []graph.V{fixture.V2, fixture.V4}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-6.66) > 1e-9 {
		t.Fatalf("multi-seed spread = %v, want 6.66", got)
	}
	// Blocking v5 isolates both seeds: spread 2.
	got, err = SpreadSeeds(g, []graph.V{fixture.V2, fixture.V4}, []graph.V{fixture.V5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("multi-seed blocked spread = %v, want 2", got)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	// A dense random graph with many probabilistic edges and a budget of 1
	// node must abort with ErrBudget.
	r := rng.New(1)
	b := graph.NewBuilder(12)
	for i := 0; i < 60; i++ {
		b.AddEdge(graph.V(r.Intn(12)), graph.V(r.Intn(12)), 0.5)
	}
	g := b.Build()
	if _, err := Spread(g, 0, nil, 1); err != ErrBudget {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

func TestSolveIMINToy(t *testing.T) {
	g := fixture.Toy()
	eval := EvalExact(g, fixture.Seed, 0)

	// b=1: optimal blocker is v5 with spread 3 (Example 1).
	res, err := SolveIMIN(g, fixture.Seed, 1, nil, eval)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blockers) != 1 || res.Blockers[0] != fixture.V5 {
		t.Fatalf("b=1 blockers = %v, want [v5]", res.Blockers)
	}
	if math.Abs(res.Spread-3) > 1e-9 {
		t.Fatalf("b=1 spread = %v, want 3", res.Spread)
	}
	if res.Evaluated != 8 {
		t.Fatalf("b=1 evaluated %d sets, want 8", res.Evaluated)
	}

	// b=2: optimal is {v2,v4} with spread 1 (Table III).
	res, err = SolveIMIN(g, fixture.Seed, 2, nil, eval)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Spread-1) > 1e-9 {
		t.Fatalf("b=2 spread = %v, want 1", res.Spread)
	}
	got := map[graph.V]bool{}
	for _, v := range res.Blockers {
		got[v] = true
	}
	if !got[fixture.V2] || !got[fixture.V4] {
		t.Fatalf("b=2 blockers = %v, want {v2,v4}", res.Blockers)
	}
}

func TestSolveIMINZeroBudget(t *testing.T) {
	g := fixture.Toy()
	res, err := SolveIMIN(g, fixture.Seed, 0, nil, EvalExact(g, fixture.Seed, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blockers) != 0 || math.Abs(res.Spread-fixture.ExpectedSpread) > 1e-9 {
		t.Fatalf("b=0: %+v", res)
	}
}

func TestSolveIMINBudgetExceedsCandidates(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1, P: 0.5}, {From: 1, To: 2, P: 0.5}})
	res, err := SolveIMIN(g, 0, 10, nil, EvalExact(g, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blockers) != 2 || res.Spread != 1 {
		t.Fatalf("oversized budget: %+v", res)
	}
}

func TestSolveIMINRejectsSourceCandidate(t *testing.T) {
	g := fixture.Toy()
	_, err := SolveIMIN(g, fixture.Seed, 1, []graph.V{fixture.Seed}, EvalExact(g, fixture.Seed, 0))
	if err == nil {
		t.Fatal("want error for source in candidates")
	}
}

func TestForEachCombination(t *testing.T) {
	var got [][]int
	forEachCombination(4, 2, func(idx []int) bool {
		got = append(got, append([]int(nil), idx...))
		return true
	})
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("got %d combinations, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("combination %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
	// Early stop.
	count := 0
	forEachCombination(5, 3, func([]int) bool { count++; return count < 4 })
	if count != 4 {
		t.Fatalf("early stop visited %d", count)
	}
	// Degenerate cases.
	forEachCombination(3, 0, func([]int) bool { t.Fatal("k=0 must not call fn"); return false })
	forEachCombination(2, 3, func([]int) bool { t.Fatal("k>n must not call fn"); return false })
}

// Property: exact spread agrees with high-round Monte-Carlo estimation on
// random small graphs — the two implementations validate each other.
func TestExactMatchesMonteCarloProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(8) + 3
		b := graph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			b.AddEdge(graph.V(r.Intn(n)), graph.V(r.Intn(n)), float64(r.Intn(5))*0.25)
		}
		g := b.Build()
		want, err := Spread(g, 0, nil, 0)
		if err != nil {
			return true // too hard for the budget: nothing to check
		}
		ic := cascade.NewIC(g)
		got := cascade.EstimateSpread(ic, 0, nil, 60000, rng.New(seed+1))
		if math.Abs(got-want) > 0.15 {
			t.Logf("seed=%d n=%d: exact=%v mcs=%v", seed, n, want, got)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: spread is monotone non-increasing as blockers are added
// (Theorem 2's monotonicity), verified exactly.
func TestExactMonotonicityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(7) + 3
		b := graph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			b.AddEdge(graph.V(r.Intn(n)), graph.V(r.Intn(n)), r.Float64())
		}
		g := b.Build()
		blocked := make([]bool, n)
		prev, err := Spread(g, 0, blocked, 200000)
		if err != nil {
			return true
		}
		order := r.Perm(n - 1)
		for _, oi := range order[:min(3, len(order))] {
			blocked[oi+1] = true
			cur, err := Spread(g, 0, blocked, 200000)
			if err != nil {
				return true
			}
			if cur > prev+1e-9 {
				t.Logf("seed=%d: spread rose from %v to %v", seed, prev, cur)
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Theorem 2's counterexample: the spread function is not supermodular.
func TestNotSupermodularOnToy(t *testing.T) {
	g := fixture.Toy()
	f := func(block ...graph.V) float64 {
		blocked := make([]bool, g.N())
		for _, v := range block {
			blocked[v] = true
		}
		s, err := Spread(g, fixture.Seed, blocked, 0)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	fX := f(fixture.V3)
	fY := f(fixture.V2, fixture.V3)
	fXx := f(fixture.V3, fixture.V4)
	fYx := f(fixture.V2, fixture.V3, fixture.V4)
	if math.Abs(fX-6.66) > 1e-9 || math.Abs(fY-5.66) > 1e-9 ||
		math.Abs(fXx-5.66) > 1e-9 || math.Abs(fYx-1) > 1e-9 {
		t.Fatalf("unexpected spreads: %v %v %v %v", fX, fY, fXx, fYx)
	}
	// Supermodularity would require f(X∪{x})-f(X) ≤ f(Y∪{x})-f(Y);
	// here -1 > -4.66, violating it.
	if !(fXx-fX > fYx-fY) {
		t.Fatal("expected supermodularity violation per Theorem 2")
	}
}

func BenchmarkExactSpreadToy(b *testing.B) {
	g := fixture.Toy()
	for i := 0; i < b.N; i++ {
		if _, err := Spread(g, fixture.Seed, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}
