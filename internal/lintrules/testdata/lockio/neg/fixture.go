// Negative lockio fixture: the PR 5 fix shape — capture state under the
// lock, release it, then do the I/O — plus goroutine bodies, which run
// after the critical section even when written inside it.
package fixture

import (
	"os"
	"sync"
)

type walog struct {
	mu    sync.Mutex
	f     *os.File
	dirty bool
}

func (l *walog) flush() error {
	l.mu.Lock()
	if !l.dirty {
		l.mu.Unlock()
		return nil
	}
	l.dirty = false
	f := l.f
	l.mu.Unlock()
	return f.Sync()
}

func (l *walog) snapshotAsync(path string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	go func() {
		f, err := os.Create(path)
		if err != nil {
			return
		}
		_ = f.Close()
	}()
}
