package lintrules

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/imin-dev/imin/internal/lintkit"
)

// LockPackages are the packages where a mutex held across file or network
// I/O stalls a hot path: the WAL/snapshot store, the graph persistence
// helpers, the serving layer, and the epoch layer.
var LockPackages = []string{"internal/store", "internal/graph", "internal/service", "internal/dynamic"}

// LockIO reports file or network I/O performed while a sync.Mutex or
// sync.RWMutex is held — the generalization of PR 5's "the interval
// flusher fsyncs outside the append lock" rule: an fsync (or any disk
// write) under a lock that the commit path also takes turns a background
// flush into a stall of every mutate.
//
// The pass is intraprocedural over lock regions — from a mu.Lock()/RLock()
// statement to the first matching textual Unlock (or to the end of the
// function when the Unlock is deferred) — but call-aware within the
// package: a call to a same-package function whose body (transitively)
// performs I/O counts as I/O at the call site. Function literals are
// skipped: when they run (goroutine, defer) is not where they appear.
//
// Deliberate holds (a WAL append lock that must order records AND cover
// the FsyncAlways ack) are suppressed in place with //lint:ignore lockio
// and a justification; see docs/INVARIANTS.md.
var LockIO = &lintkit.Analyzer{
	Name: "lockio",
	Doc:  "flags file/network I/O while holding a mutex (fsync under the append lock and friends)",
	Run:  runLockIO,
}

// osIOFuncs are package-level functions of os (and path/filepath) that
// touch the filesystem.
var osIOFuncs = map[string]bool{
	"Create": true, "CreateTemp": true, "Open": true, "OpenFile": true,
	"Rename": true, "Remove": true, "RemoveAll": true, "Mkdir": true,
	"MkdirAll": true, "ReadFile": true, "WriteFile": true, "ReadDir": true,
	"Stat": true, "Truncate": true, "Chmod": true, "Link": true, "Symlink": true,
}

// fileIOMethods are methods of *os.File that hit the disk.
var fileIOMethods = map[string]bool{
	"Write": true, "WriteAt": true, "WriteString": true, "Read": true,
	"ReadAt": true, "Sync": true, "Truncate": true, "Seek": true, "Close": true,
}

// knownIOFuncs are cross-package helpers known to perform file I/O, keyed
// by (package path suffix, function name). The intra-package fixpoint
// cannot see across packages, so the durability helpers of internal/graph
// are declared here.
var knownIOFuncs = map[string]bool{
	"SyncDir": true, "WriteManifestFile": true, "ReadManifestFile": true,
	"SyncDirFS": true, "WriteManifestFS": true, "ReadManifestFS": true,
	"WriteBinaryFile": true, "ReadBinaryFile": true, "WriteEdgeListFile": true,
	"ReadEdgeListFile": true,
}

func runLockIO(pass *lintkit.Pass) error {
	if !scopedTo(pass.PkgPath, LockPackages) {
		return nil
	}
	info := pass.TypesInfo

	// Pass 1: which package functions perform I/O directly?
	doesIO := make(map[*types.Func]bool)
	var decls []*ast.FuncDecl
	eachFuncBody(pass.Files, func(decl *ast.FuncDecl) {
		decls = append(decls, decl)
		fn, _ := info.Defs[decl.Name].(*types.Func)
		if fn == nil {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && directIO(info, call) {
				doesIO[fn] = true
			}
			return true
		})
	})

	// Pass 2: propagate through same-package calls to a fixpoint.
	for changed := true; changed; {
		changed = false
		for _, decl := range decls {
			fn, _ := info.Defs[decl.Name].(*types.Func)
			if fn == nil || doesIO[fn] {
				continue
			}
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := calleeFunc(info, call); callee != nil && doesIO[callee] {
					doesIO[fn] = true
					changed = true
					return false
				}
				return true
			})
		}
	}

	// Pass 3: find lock regions and flag I/O calls inside them.
	for _, decl := range decls {
		regions := lockRegions(info, decl)
		if len(regions) == 0 {
			continue
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // runs elsewhere (goroutine, defer), not here
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var kind string
			switch {
			case directIO(info, call):
				kind = "file/network I/O"
			default:
				callee := calleeFunc(info, call)
				if callee == nil || !doesIO[callee] {
					return true
				}
				kind = "a call to " + callee.Name() + " (which performs file I/O)"
			}
			for _, r := range regions {
				if call.Pos() > r.lock && call.Pos() < r.end {
					pass.Reportf(call.Pos(), "%s while holding %q (locked at line %d): move the I/O outside the critical section or justify with //lint:ignore lockio",
						kind, r.name, pass.Fset.Position(r.lock).Line)
					break
				}
			}
			return true
		})
	}
	return nil
}

// directIO reports whether a call is itself filesystem or network I/O.
func directIO(info *types.Info, call *ast.CallExpr) bool {
	// Any method on the faultfs seam (FS, File, or an implementation) is
	// I/O by definition — the store's disk writes all route through it.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if tv, ok := info.Types[sel.X]; ok && tv.IsValue() && faultfsType(tv.Type) {
			return true
		}
	}
	pkg, name, recv := calleeName(info, call)
	switch {
	case pkg == "os" && recv == "" && osIOFuncs[name]:
		return true
	case recv == "File" && pkg == "os" && fileIOMethods[name]:
		return true
	case pkg == "net" || pkg == "net/http":
		// Dialing, conn reads/writes, request round-trips.
		return name == "Dial" || name == "DialTimeout" || name == "Do" ||
			name == "Get" || name == "Post" || recv == "Conn" || recv == "TCPConn"
	case knownIOFuncs[name] && recv == "":
		return true
	}
	return false
}

// faultfsType reports whether t is (a pointer to) a type declared in
// internal/faultfs: values of the filesystem seam's types exist only to
// perform I/O.
func faultfsType(t types.Type) bool {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			obj := u.Obj()
			return obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/faultfs")
		default:
			return false
		}
	}
}

// calleeFunc resolves a call to its *types.Func when it is a plain
// function or method call (not a builtin, conversion, or func value).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// lockRegion is one held-mutex span within a function body.
type lockRegion struct {
	name string    // rendered lock expression, e.g. "w.mu"
	lock token.Pos // position of the Lock call
	end  token.Pos // first matching Unlock, or function end when deferred
}

// lockRegions scans a function body for Lock/Unlock pairs on sync.Mutex /
// sync.RWMutex values. Pairing is textual: a Lock is closed by the first
// later Unlock on the same rendered receiver; a deferred Unlock extends
// the region to the end of the function.
func lockRegions(info *types.Info, decl *ast.FuncDecl) []lockRegion {
	type event struct {
		pos  token.Pos
		name string
		kind string // "lock", "unlock", "defer-unlock"
	}
	var events []event
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		var call *ast.CallExpr
		kind := ""
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, _ = n.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			call = n.Call
			kind = "defer-"
		}
		if call == nil {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			kind += "lock"
		case "Unlock", "RUnlock":
			kind += "unlock"
		default:
			return true
		}
		tv, ok := info.Types[sel.X]
		if !ok || !isMutex(tv.Type) {
			return true
		}
		events = append(events, event{pos: call.Pos(), name: types.ExprString(sel.X), kind: kind})
		return true
	})

	var regions []lockRegion
	for i, e := range events {
		if e.kind != "lock" && e.kind != "defer-lock" {
			continue
		}
		end := decl.Body.End()
		for _, u := range events[i+1:] {
			if u.name != e.name {
				continue
			}
			if u.kind == "unlock" && u.pos > e.pos {
				end = u.pos
				break
			}
			if u.kind == "defer-unlock" {
				break // held to function end
			}
		}
		regions = append(regions, lockRegion{name: e.name, lock: e.pos, end: end})
	}
	return regions
}

func isMutex(t types.Type) bool {
	return typeIs(t, "sync", "Mutex") || typeIs(t, "sync", "RWMutex")
}
