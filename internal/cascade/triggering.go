package cascade

import (
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// This file implements the paper's Section V-E in full generality: the
// triggering model of Kempe et al., which subsumes both IC and LT. Every
// vertex v draws a triggering set T(v) from a distribution over subsets of
// its in-neighbors; a live-edge sample keeps edge (u,v) iff u ∈ T(v).
// AdvancedGreedy and GreedyReplace run unchanged on any triggering model
// because they only consume live-edge samples (Algorithm 2's input).

// TriggerFunc samples a triggering set for vertex v: it appends to dst the
// *indices* (into g.InNeighbors(v)) of the in-neighbors chosen for T(v) and
// returns the extended slice. Implementations must be deterministic given
// r and safe for concurrent calls with distinct r.
type TriggerFunc func(g *graph.Graph, v graph.V, r *rng.Source, dst []int32) []int32

// ICTrigger is the independent cascade model as a triggering distribution:
// each in-neighbor u joins T(v) independently with probability p(u,v).
func ICTrigger(g *graph.Graph, v graph.V, r *rng.Source, dst []int32) []int32 {
	ps := g.InProbs(v)
	for i := range ps {
		if r.Bernoulli(ps[i]) {
			dst = append(dst, int32(i))
		}
	}
	return dst
}

// LTTrigger is the linear threshold model as a triggering distribution:
// T(v) holds at most one in-neighbor, u with probability w(u,v), nobody
// with the remaining probability.
func LTTrigger(g *graph.Graph, v graph.V, r *rng.Source, dst []int32) []int32 {
	ps := g.InProbs(v)
	x := r.Float64()
	acc := 0.0
	for i := range ps {
		acc += ps[i]
		if x < acc {
			return append(dst, int32(i))
		}
	}
	return dst
}

// Triggering is the LiveSampler for an arbitrary triggering model. Trigger
// sets are sampled lazily — only for vertices the forward traversal
// actually inspects — and cached per round in the workspace.
type Triggering struct {
	g  *graph.Graph
	fn TriggerFunc
}

// NewTriggering returns a sampler over g for the given trigger
// distribution.
func NewTriggering(g *graph.Graph, fn TriggerFunc) *Triggering {
	if fn == nil {
		panic("cascade: nil TriggerFunc")
	}
	return &Triggering{g: g, fn: fn}
}

// Graph returns the underlying graph.
func (t *Triggering) Graph() *graph.Graph { return t.g }

// NewWorkspace allocates scratch space for one goroutine, including the
// lazy trigger-set buffers.
func (t *Triggering) NewWorkspace() *Workspace {
	ws := newWorkspace(t.g.N())
	n := t.g.N()
	ws.trStamp = make([]int32, n)
	ws.trStart = make([]int32, n)
	ws.trEnd = make([]int32, n)
	return ws
}

// memberOfTrigger reports whether u is in v's triggering set this round,
// sampling T(v) on first use. Trigger sets are small in practice (expected
// size Σp), so the membership scan is cheap.
func (t *Triggering) memberOfTrigger(u, v graph.V, r *rng.Source, ws *Workspace) bool {
	if ws.trStamp[v] != ws.epoch {
		ws.trStamp[v] = ws.epoch
		start := int32(len(ws.trIdx))
		ws.trIdx = t.fn(t.g, v, r, ws.trIdx)
		ws.trStart[v] = start
		ws.trEnd[v] = int32(len(ws.trIdx))
	}
	in := t.g.InNeighbors(v)
	for _, idx := range ws.trIdx[ws.trStart[v]:ws.trEnd[v]] {
		if in[idx] == u {
			return true
		}
	}
	return false
}

// Sample implements LiveSampler.
func (t *Triggering) Sample(src graph.V, blocked []bool, r *rng.Source, ws *Workspace) *SampledGraph {
	ws.reset()
	ws.trIdx = ws.trIdx[:0]
	ws.reach(src)
	ws.queue = append(ws.queue, src)
	for qi := 0; qi < len(ws.queue); qi++ {
		u := ws.queue[qi]
		lu := ws.local[u]
		for _, v := range t.g.OutNeighbors(u) {
			if blocked != nil && blocked[v] {
				continue
			}
			if !t.memberOfTrigger(u, v, r, ws) {
				continue
			}
			lv, isNew := ws.reach(v)
			if isNew {
				ws.queue = append(ws.queue, v)
			}
			ws.eFrom = append(ws.eFrom, lu)
			ws.eTo = append(ws.eTo, lv)
		}
	}
	return ws.buildCSR()
}

// SimulateCount implements LiveSampler.
func (t *Triggering) SimulateCount(src graph.V, blocked []bool, r *rng.Source, ws *Workspace) int {
	ws.reset()
	ws.trIdx = ws.trIdx[:0]
	ws.reach(src)
	ws.queue = append(ws.queue, src)
	for qi := 0; qi < len(ws.queue); qi++ {
		u := ws.queue[qi]
		for _, v := range t.g.OutNeighbors(u) {
			if blocked != nil && blocked[v] {
				continue
			}
			if ws.stamp[v] == ws.epoch {
				continue
			}
			if !t.memberOfTrigger(u, v, r, ws) {
				continue
			}
			ws.stamp[v] = ws.epoch
			ws.local[v] = int32(len(ws.orig))
			ws.orig = append(ws.orig, v)
			ws.queue = append(ws.queue, v)
		}
	}
	return len(ws.orig)
}
