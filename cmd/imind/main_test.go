package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer guards the daemon's captured output: the failure paths read
// it while exec's pipe copier may still be writing.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// End-to-end daemon smoke test: build imind, start it with a preloaded
// dataset, register a second graph and solve on it over real HTTP, then
// shut it down gracefully with SIGTERM.
func TestDaemonSmoke(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "imind")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Reserve a port; tiny race between Close and daemon bind, fine for a test.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	cmd := exec.Command(bin, "-addr", addr, "-preload", "EmailCore", "-scale", "0.05", "-theta", "300", "-eval", "300", "-shutdown-timeout", "5s")
	var logs syncBuffer
	cmd.Stdout, cmd.Stderr = &logs, &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	base := "http://" + addr
	var up bool
	for i := 0; i < 100; i++ {
		if resp, err := http.Get(base + "/healthz"); err == nil {
			resp.Body.Close()
			up = resp.StatusCode == http.StatusOK
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !up {
		t.Fatalf("daemon never became healthy; logs:\n%s", logs.String())
	}

	// The preloaded dataset must be listed.
	resp, err := http.Get(base + "/graphs")
	if err != nil {
		t.Fatal(err)
	}
	var list []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0]["name"] != "EmailCore" {
		t.Fatalf("graphs = %v, want preloaded EmailCore", list)
	}

	// Register a generator graph and solve on it.
	reg := `{"name": "toy", "generator": "erdos-renyi", "n": 200, "m": 1000, "directed": true, "seed": 3}`
	resp, err = http.Post(base+"/graphs", "application/json", bytes.NewReader([]byte(reg)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register status %d", resp.StatusCode)
	}

	solve := `{"num_seeds": 3, "budget": 4, "algorithm": "greedy-replace", "theta": 200, "seed": 1}`
	resp, err = http.Post(base+"/graphs/toy/solve", "application/json", bytes.NewReader([]byte(solve)))
	if err != nil {
		t.Fatal(err)
	}
	var sr struct {
		Blockers     []int    `json:"blockers"`
		SpreadBefore *float64 `json:"spread_before"`
		SpreadAfter  *float64 `json:"spread_after"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", resp.StatusCode)
	}
	if len(sr.Blockers) != 4 {
		t.Errorf("got %d blockers, want 4", len(sr.Blockers))
	}
	// The two spreads are independent Monte-Carlo estimates (300 rounds
	// here), so allow sampling noise rather than flaking CI on an
	// unlucky draw.
	if sr.SpreadBefore == nil || sr.SpreadAfter == nil || *sr.SpreadAfter > *sr.SpreadBefore*1.1 {
		t.Errorf("spread report broken: %+v", sr)
	}

	// Mutate the generator graph over the wire and confirm the epoch moved.
	mut := "{\"op\":\"add-vertex\"}\n{\"op\":\"add-edge\",\"u\":0,\"v\":200,\"p\":0.5}\n"
	resp, err = http.Post(base+"/graphs/toy/mutate", "application/x-ndjson", bytes.NewReader([]byte(mut)))
	if err != nil {
		t.Fatal(err)
	}
	var mr struct {
		Epoch    uint64 `json:"epoch"`
		Vertices int    `json:"vertices"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || mr.Epoch != 1 || mr.Vertices != 201 {
		t.Fatalf("mutate: status %d, response %+v", resp.StatusCode, mr)
	}

	// Graceful shutdown on SIGTERM.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited non-zero: %v; logs:\n%s", err, logs.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal(fmt.Sprintf("daemon did not shut down; logs:\n%s", logs.String()))
	}
}
