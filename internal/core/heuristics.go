package core

import (
	"sort"

	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// solveRand implements the RA baseline: b uniformly random candidates.
func solveRand(in *instance, b int, opt Options) Result {
	r := rng.New(opt.Seed)
	candidates := append([]graph.V(nil), in.cands...)
	if b > len(candidates) {
		b = len(candidates)
	}
	// Partial Fisher-Yates: the first b entries become a uniform sample.
	for i := 0; i < b; i++ {
		j := i + r.Intn(len(candidates)-i)
		candidates[i], candidates[j] = candidates[j], candidates[i]
	}
	return Result{Blockers: append([]graph.V(nil), candidates[:b]...)}
}

// solveOutDegree implements the OD baseline: the b candidates with the
// highest out-degree in the original graph, ties broken by smaller id so
// runs are deterministic.
func solveOutDegree(in *instance, b int, opt Options) Result {
	candidates := append([]graph.V(nil), in.cands...)
	sort.Slice(candidates, func(i, j int) bool {
		di := in.orig.OutDegree(candidates[i])
		dj := in.orig.OutDegree(candidates[j])
		if di != dj {
			return di > dj
		}
		return candidates[i] < candidates[j]
	})
	if b > len(candidates) {
		b = len(candidates)
	}
	return Result{Blockers: append([]graph.V(nil), candidates[:b]...)}
}
