package cascade

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/imin-dev/imin/internal/fixture"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

func TestICEstimateMatchesPaperExample1(t *testing.T) {
	g := fixture.Toy()
	ic := NewIC(g)
	got := EstimateSpread(ic, fixture.Seed, nil, 200000, rng.New(1))
	if math.Abs(got-fixture.ExpectedSpread) > 0.03 {
		t.Fatalf("E({v1},G) estimate = %v, want %v", got, fixture.ExpectedSpread)
	}
}

func TestICEstimateWithBlockers(t *testing.T) {
	g := fixture.Toy()
	ic := NewIC(g)
	r := rng.New(2)
	cases := []struct {
		name  string
		block []graph.V
		want  float64
	}{
		{"block v5", []graph.V{fixture.V5}, fixture.SpreadBlockV5},
		{"block v2", []graph.V{fixture.V2}, fixture.SpreadBlockV2},
		{"block v4", []graph.V{fixture.V4}, fixture.SpreadBlockV2},
		{"block v2,v4", []graph.V{fixture.V2, fixture.V4}, fixture.SpreadBlockV2V4},
		{"block v2,v3", []graph.V{fixture.V2, fixture.V3}, 5.66},
		{"block v2,v3,v4", []graph.V{fixture.V2, fixture.V3, fixture.V4}, 1},
	}
	for _, c := range cases {
		blocked := make([]bool, g.N())
		for _, v := range c.block {
			blocked[v] = true
		}
		got := EstimateSpread(ic, fixture.Seed, blocked, 100000, r)
		if math.Abs(got-c.want) > 0.04 {
			t.Errorf("%s: spread = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestICSampleStructure(t *testing.T) {
	g := fixture.Toy()
	ic := NewIC(g)
	ws := ic.NewWorkspace()
	r := rng.New(3)
	counts := map[int]int{}
	const rounds = 50000
	for i := 0; i < rounds; i++ {
		sg := ic.Sample(fixture.Seed, nil, r, ws)
		counts[sg.K]++
		if sg.Orig[0] != fixture.Seed {
			t.Fatal("local id 0 is not the source")
		}
		if int(sg.OutStart[sg.K]) != len(sg.OutTo) {
			t.Fatal("out CSR bounds corrupt")
		}
		if len(sg.OutTo) != len(sg.InTo) {
			t.Fatal("in/out edge counts differ")
		}
		// Every vertex except the source must have an in-edge (it was
		// reached through one).
		indeg := make([]int, sg.K)
		for _, v := range sg.InTo {
			_ = v
		}
		for lv := 0; lv < sg.K; lv++ {
			indeg[lv] = int(sg.InStart[lv+1] - sg.InStart[lv])
		}
		for lv := 1; lv < sg.K; lv++ {
			if indeg[lv] == 0 {
				t.Fatalf("reached vertex %d (orig %d) has no live in-edge", lv, sg.Orig[lv])
			}
		}
	}
	// The toy graph has 7 certain vertices; v8 joins with p=0.6 and v7 with
	// p=0.06. So K ∈ {7, 8, 9} with P(7)=0.4, P(8)=0.54, P(9)=0.06.
	for k, want := range map[int]float64{7: 0.4, 8: 0.54, 9: 0.06} {
		got := float64(counts[k]) / rounds
		if math.Abs(got-want) > 0.02 {
			t.Errorf("P(K=%d) = %v, want %v", k, got, want)
		}
	}
	for k := range counts {
		if k != 7 && k != 8 && k != 9 {
			t.Errorf("impossible sample size K=%d", k)
		}
	}
}

func TestICSampleRespectsBlocked(t *testing.T) {
	g := fixture.Toy()
	ic := NewIC(g)
	ws := ic.NewWorkspace()
	r := rng.New(4)
	blocked := make([]bool, g.N())
	blocked[fixture.V5] = true
	for i := 0; i < 1000; i++ {
		sg := ic.Sample(fixture.Seed, blocked, r, ws)
		if sg.K != 3 {
			t.Fatalf("blocking v5: sample K = %d, want 3", sg.K)
		}
		for _, v := range sg.Orig[:sg.K] {
			if v == fixture.V5 {
				t.Fatal("blocked vertex appeared in sample")
			}
		}
	}
}

func TestICCertainGraphSampleIsExactReachability(t *testing.T) {
	// With all probabilities 1 every sample is the full reachable set with
	// every edge live.
	g := graph.FromEdges(5, []graph.Edge{
		{From: 0, To: 1, P: 1}, {From: 1, To: 2, P: 1}, {From: 0, To: 2, P: 1}, {From: 3, To: 4, P: 1},
	})
	ic := NewIC(g)
	ws := ic.NewWorkspace()
	r := rng.New(5)
	sg := ic.Sample(0, nil, r, ws)
	if sg.K != 3 {
		t.Fatalf("K = %d, want 3", sg.K)
	}
	if len(sg.OutTo) != 3 {
		t.Fatalf("live edges = %d, want 3", len(sg.OutTo))
	}
}

func TestWorkspaceReuseIsClean(t *testing.T) {
	// Two consecutive samples must not leak state between rounds: sampling a
	// disconnected source after a well-connected one yields K=1.
	g := fixture.Toy()
	ic := NewIC(g)
	ws := ic.NewWorkspace()
	r := rng.New(6)
	_ = ic.Sample(fixture.Seed, nil, r, ws)
	sg := ic.Sample(fixture.V7, nil, r, ws) // v7 has no out-edges
	if sg.K != 1 || sg.Orig[0] != fixture.V7 {
		t.Fatalf("stale workspace: K=%d orig0=%d", sg.K, sg.Orig[0])
	}
}

func TestEpochWrapHardReset(t *testing.T) {
	g := fixture.Toy()
	ic := NewIC(g)
	ws := ic.NewWorkspace()
	ws.epoch = math.MaxInt32 - 1
	r := rng.New(7)
	for i := 0; i < 4; i++ { // crosses the wrap
		sg := ic.Sample(fixture.Seed, nil, r, ws)
		if sg.K < 7 || sg.K > 9 {
			t.Fatalf("sample across epoch wrap has K=%d", sg.K)
		}
	}
}

func TestSimulateCountDistribution(t *testing.T) {
	g := fixture.Toy()
	ic := NewIC(g)
	ws := ic.NewWorkspace()
	r := rng.New(8)
	sum := 0
	const rounds = 100000
	for i := 0; i < rounds; i++ {
		c := ic.SimulateCount(fixture.Seed, nil, r, ws)
		if c < 7 || c > 9 {
			t.Fatalf("impossible spread count %d", c)
		}
		sum += c
	}
	got := float64(sum) / rounds
	if math.Abs(got-fixture.ExpectedSpread) > 0.03 {
		t.Fatalf("mean spread %v, want %v", got, fixture.ExpectedSpread)
	}
}

func TestEstimateSpreadParallelMatchesSequential(t *testing.T) {
	g := fixture.Toy()
	ic := NewIC(g)
	seq := EstimateSpreadParallel(ic, fixture.Seed, nil, 50000, 1, rng.New(9))
	par := EstimateSpreadParallel(ic, fixture.Seed, nil, 50000, 8, rng.New(9))
	if math.Abs(seq-fixture.ExpectedSpread) > 0.05 {
		t.Errorf("sequential estimate off: %v", seq)
	}
	if math.Abs(par-fixture.ExpectedSpread) > 0.05 {
		t.Errorf("parallel estimate off: %v", par)
	}
	// Determinism for fixed seed/workers.
	par2 := EstimateSpreadParallel(ic, fixture.Seed, nil, 50000, 8, rng.New(9))
	if par != par2 {
		t.Error("parallel estimate is not deterministic for fixed seed")
	}
}

func TestSpreadEstimatorIndependentCalls(t *testing.T) {
	g := fixture.Toy()
	est := &SpreadEstimator{Sampler: NewIC(g), Rounds: 20000, Workers: 4}
	base := rng.New(10)
	a := est.Spread(fixture.Seed, nil, base, 0)
	b := est.Spread(fixture.Seed, nil, base, 1)
	if a == b {
		t.Error("different call ids produced identical estimates (streams not split)")
	}
	for _, v := range []float64{a, b} {
		if math.Abs(v-fixture.ExpectedSpread) > 0.1 {
			t.Errorf("estimator value %v too far from %v", v, fixture.ExpectedSpread)
		}
	}
}

func TestLTSampleTreeStructure(t *testing.T) {
	g := graph.WeightedCascade.Assign(fixture.Toy(), nil)
	lt := NewLT(g)
	ws := lt.NewWorkspace()
	r := rng.New(11)
	for i := 0; i < 5000; i++ {
		sg := lt.Sample(fixture.Seed, nil, r, ws)
		// LT live-edge graphs have in-degree ≤ 1 everywhere: the reachable
		// subgraph is a tree, so edges = K-1.
		if len(sg.OutTo) != sg.K-1 {
			t.Fatalf("LT sample is not a tree: K=%d edges=%d", sg.K, len(sg.OutTo))
		}
		for lv := 1; lv < sg.K; lv++ {
			if d := sg.InStart[lv+1] - sg.InStart[lv]; d != 1 {
				t.Fatalf("LT vertex with in-degree %d", d)
			}
		}
	}
}

func TestLTSpreadOnPathGraph(t *testing.T) {
	// Path 0→1→2 with w=1 each: LT spread from 0 is always 3.
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1, P: 1}, {From: 1, To: 2, P: 1}})
	lt := NewLT(g)
	got := EstimateSpread(lt, 0, nil, 1000, rng.New(12))
	if got != 3 {
		t.Fatalf("LT path spread = %v, want 3", got)
	}
}

func TestLTChoiceFrequencies(t *testing.T) {
	// v2 has two in-edges with w=0.3 (from 0) and w=0.2 (from 1); both
	// sources always active. P(activate v2) = 0.5.
	g := graph.FromEdges(4, []graph.Edge{
		{From: 3, To: 0, P: 1}, {From: 3, To: 1, P: 1},
		{From: 0, To: 2, P: 0.3}, {From: 1, To: 2, P: 0.2},
	})
	lt := NewLT(g)
	got := EstimateSpread(lt, 3, nil, 200000, rng.New(13))
	// Always reaches 3 vertices (3, 0, 1); +1 with prob 0.5.
	want := 3.5
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("LT spread = %v, want %v", got, want)
	}
}

func TestLTRespectsBlocked(t *testing.T) {
	g := graph.WeightedCascade.Assign(fixture.Toy(), nil)
	lt := NewLT(g)
	blocked := make([]bool, g.N())
	blocked[fixture.V5] = true
	got := EstimateSpread(lt, fixture.Seed, blocked, 50000, rng.New(14))
	// With v5 blocked, v2/v4 each triggered with w=1 (in-degree 1 → WC
	// weight 1): spread is exactly 3.
	if got != 3 {
		t.Fatalf("LT blocked spread = %v, want 3", got)
	}
}

// Property: on random graphs, the average sample K and the average simulate
// count agree — they are two implementations of the same distribution.
func TestSampleAndSimulateAgreeProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%12) + 3
		r := rng.New(seed)
		b := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(graph.V(r.Intn(n)), graph.V(r.Intn(n)), r.Float64())
		}
		g := b.Build()
		ic := NewIC(g)
		ws := ic.NewWorkspace()
		const rounds = 4000
		r1, r2 := rng.New(seed+1), rng.New(seed+2)
		var sumSample, sumSim int
		for i := 0; i < rounds; i++ {
			sumSample += ic.Sample(0, nil, r1, ws).K
			sumSim += ic.SimulateCount(0, nil, r2, ws)
		}
		a := float64(sumSample) / rounds
		bm := float64(sumSim) / rounds
		// Loose 3-sigma-ish agreement; both are unbiased estimators of the
		// same expectation bounded by n.
		return math.Abs(a-bm) < 0.35*float64(n)/math.Sqrt(rounds)*3+0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: spread of the unified graph matches the multi-seed spread.
func TestUnifySeedsPreservesSpreadProperty(t *testing.T) {
	f := func(seed uint64) bool {
		n := 12
		r := rng.New(seed)
		b := graph.NewBuilder(n)
		for i := 0; i < 30; i++ {
			b.AddEdge(graph.V(r.Intn(n)), graph.V(r.Intn(n)), r.Float64())
		}
		g := b.Build()
		seeds := []graph.V{0, 1, 2}

		// Multi-seed spread via simulation with a virtual joint start: use
		// the unified graph as reference implementation...
		unified, super := g.UnifySeeds(seeds)
		ic := NewIC(unified)
		got := graph.SpreadFromUnified(
			EstimateSpread(ic, super, nil, 60000, rng.New(seed+1)), len(seeds))

		// ...and compare against a direct multi-seed forward simulation.
		want := estimateMultiSeed(g, seeds, 60000, rng.New(seed+2))
		return math.Abs(got-want) < 0.25
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// estimateMultiSeed is an independent reference implementation of
// multi-source IC spread used only by tests.
func estimateMultiSeed(g *graph.Graph, seeds []graph.V, rounds int, r *rng.Source) float64 {
	n := g.N()
	active := make([]bool, n)
	queue := make([]graph.V, 0, n)
	total := 0
	for round := 0; round < rounds; round++ {
		for i := range active {
			active[i] = false
		}
		queue = queue[:0]
		for _, s := range seeds {
			if !active[s] {
				active[s] = true
				queue = append(queue, s)
			}
		}
		count := len(queue)
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			to := g.OutNeighbors(u)
			ps := g.OutProbs(u)
			for i, v := range to {
				if active[v] {
					continue
				}
				if r.Bernoulli(ps[i]) {
					active[v] = true
					count++
					queue = append(queue, v)
				}
			}
		}
		total += count
	}
	return float64(total) / float64(rounds)
}

func BenchmarkICSampleToy(b *testing.B) {
	ic := NewIC(fixture.Toy())
	ws := ic.NewWorkspace()
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ic.Sample(fixture.Seed, nil, r, ws)
	}
}

func BenchmarkICSimulateToy(b *testing.B) {
	ic := NewIC(fixture.Toy())
	ws := ic.NewWorkspace()
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ic.SimulateCount(fixture.Seed, nil, r, ws)
	}
}
