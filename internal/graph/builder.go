package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable Graph.
//
// The zero value is not usable; create builders with NewBuilder. Vertices are
// implied by the edges added plus the initial vertex count, so isolated
// trailing vertices require an explicit EnsureVertices call.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a Builder for a graph with at least n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// EnsureVertices grows the vertex count to at least n.
func (b *Builder) EnsureVertices(n int) {
	if n > b.n {
		b.n = n
	}
}

// NumVertices returns the current vertex count.
func (b *Builder) NumVertices() int { return b.n }

// NumEdges returns the number of edges added so far (before deduplication).
func (b *Builder) NumEdges() int { return len(b.edges) }

// AddEdge records the directed edge (u,v) with probability p. Probabilities
// are clamped to [0,1]. Self-loops are ignored: a vertex activating itself is
// meaningless under the IC model. Vertex ids must be non-negative; the vertex
// count grows automatically.
func (b *Builder) AddEdge(u, v V, p float64) {
	if u < 0 || v < 0 {
		panic(fmt.Sprintf("graph: negative vertex id (%d,%d)", u, v))
	}
	if u == v {
		return
	}
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	if int(u) >= b.n {
		b.n = int(u) + 1
	}
	if int(v) >= b.n {
		b.n = int(v) + 1
	}
	b.edges = append(b.edges, Edge{From: u, To: v, P: p})
}

// AddUndirected records both directions of {u,v} with probability p,
// matching the paper's treatment of undirected datasets ("we consider each
// edge as bi-directional").
func (b *Builder) AddUndirected(u, v V, p float64) {
	b.AddEdge(u, v, p)
	b.AddEdge(v, u, p)
}

// Build produces the Graph. Parallel edges are merged: the merged edge
// carries probability 1 - Π(1-pᵢ), the chance that at least one of the
// parallel influences fires, which preserves the IC activation probability.
func (b *Builder) Build() *Graph {
	edges := b.dedup()
	g := &Graph{n: b.n}

	// Out CSR.
	g.outStart = make([]int32, b.n+1)
	for _, e := range edges {
		g.outStart[e.From+1]++
	}
	for i := 0; i < b.n; i++ {
		g.outStart[i+1] += g.outStart[i]
	}
	g.outTo = make([]V, len(edges))
	g.outP = make([]float64, len(edges))
	fill := make([]int32, b.n)
	for _, e := range edges {
		idx := g.outStart[e.From] + fill[e.From]
		g.outTo[idx] = e.To
		g.outP[idx] = e.P
		fill[e.From]++
	}

	// In CSR.
	g.inStart = make([]int32, b.n+1)
	for _, e := range edges {
		g.inStart[e.To+1]++
	}
	for i := 0; i < b.n; i++ {
		g.inStart[i+1] += g.inStart[i]
	}
	g.inTo = make([]V, len(edges))
	g.inP = make([]float64, len(edges))
	for i := range fill {
		fill[i] = 0
	}
	for _, e := range edges {
		idx := g.inStart[e.To] + fill[e.To]
		g.inTo[idx] = e.From
		g.inP[idx] = e.P
		fill[e.To]++
	}

	g.validate()
	return g
}

// dedup sorts edges by (from, to) and merges duplicates.
func (b *Builder) dedup() []Edge {
	edges := append([]Edge(nil), b.edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	out := edges[:0]
	for _, e := range edges {
		if len(out) > 0 {
			last := &out[len(out)-1]
			if last.From == e.From && last.To == e.To {
				// Merge parallel edges: either influence firing activates.
				last.P = 1 - (1-last.P)*(1-e.P)
				continue
			}
		}
		out = append(out, e)
	}
	return out
}

// FromEdges is a convenience constructor for tests and examples: it builds a
// graph with n vertices from an explicit edge list.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.From, e.To, e.P)
	}
	return b.Build()
}
