package core

import (
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// estBackend abstracts over the DecreaseES strategies so the greedy
// algorithms stay agnostic: fresh samples every round (the paper's
// Algorithm 2, default), or one shared pool reused across rounds
// (Options.ReuseSamples) answered by the delta-maintained
// IncrementalPooledEstimator. The non-incremental PooledEstimator can also
// be slotted in (tests and the ablation benchmarks do) — the two are
// bit-identical over the same pool, so nothing downstream can tell.
type estBackend struct {
	fresh  *Estimator
	pooled *PooledEstimator
	incr   *IncrementalPooledEstimator
	theta  int
	base   *rng.Source
	drawn  int64

	// flips accumulates the blocked-set mutations the greedy loop reported
	// since the last decreaseES call; flipsKnown turns true after the first
	// call, from which point the list is complete and the incremental
	// estimator can skip its O(n) diff scan.
	flips      []graph.V
	flipsKnown bool

	// scratch receives the Δ vector for the estimators that fill a caller
	// buffer; the incremental estimator instead lends out its maintained
	// vector, so the ReuseSamples path never pays a per-round O(n) fill.
	scratch []float64
}

// buf returns the backend-owned Δ buffer of length n.
func (b *estBackend) buf(n int) []float64 {
	if cap(b.scratch) < n {
		b.scratch = make([]float64, n)
	}
	return b.scratch[:n]
}

// noteFlip records that the caller flipped v's blocked state. The greedy
// loops call it after every blocked[v] mutation; a loop that ever mutates
// blocked without reporting here would corrupt the incremental cache.
func (b *estBackend) noteFlip(v graph.V) {
	b.flips = append(b.flips, v)
}

// newEstBackend builds the configured backend for one cold solve run.
func newEstBackend(in *instance, opt Options, base *rng.Source) *estBackend {
	b := &estBackend{theta: opt.Theta, base: base}
	sampler := in.sampler(opt.Diffusion)
	if opt.ReuseSamples {
		b.incr = NewIncrementalPooledEstimatorEnc(sampler, in.src, opt.Theta, opt.Workers, opt.DomAlgo, base.Split(^uint64(0)), opt.PoolEncoding)
		b.drawn = int64(opt.Theta)
	} else {
		b.fresh = NewEstimator(sampler, opt.Workers, opt.DomAlgo)
	}
	return b
}

// newEstBackendCached wraps an already-built fresh Estimator (a Session's
// warm one) as a backend for one run. The estimator holds no per-run state
// — randomness enters only through the base source split per round — so a
// run through a warm estimator selects exactly the blockers a cold run
// with the same (Seed, Theta, Workers) would.
func newEstBackendCached(est *Estimator, opt Options, base *rng.Source) *estBackend {
	return &estBackend{fresh: est, theta: opt.Theta, base: base}
}

// newEstBackendWarmPool wraps a Session's warm incremental estimator: the
// pool already exists, so the run draws zero new samples and the
// accumulator state carried over from earlier runs keeps rounds O(θ_x·m̄).
// Determinism still holds — the pool is keyed by (Seed, Theta) and the
// maintained accumulator always equals a full re-scan's.
func newEstBackendWarmPool(est *IncrementalPooledEstimator, opt Options, base *rng.Source) *estBackend {
	return &estBackend{incr: est, theta: opt.Theta, base: base}
}

// decreaseES returns Δ[u] on G[V\B] for the given greedy round. The
// returned slice aliases backend or estimator state and is read-only,
// valid until the next call — the greedy loops scan it for their argmax
// and never retain it across rounds.
func (b *estBackend) decreaseES(src graph.V, blocked []bool, round uint64) []float64 {
	switch {
	case b.incr != nil:
		var vals []float64
		if b.flipsKnown {
			vals = b.incr.DecreaseESFlipsView(blocked, b.flips)
		} else {
			// First call of this run: a warm estimator may carry blocked
			// state from an earlier run, so diff in full once.
			vals = b.incr.DecreaseESView(blocked)
		}
		b.flips = b.flips[:0]
		b.flipsKnown = true
		return vals
	case b.pooled != nil:
		dst := b.buf(len(blocked))
		b.pooled.DecreaseES(dst, blocked)
		return dst
	default:
		dst := b.buf(len(blocked))
		b.fresh.DecreaseES(dst, src, blocked, b.theta, b.base.Split(round))
		b.drawn += int64(b.theta)
		return dst
	}
}

// samplesDrawn reports the number of live-edge samples generated during this
// run (a freshly built pool counts once, a warm pool counts zero, fresh
// sampling counts per round).
func (b *estBackend) samplesDrawn() int64 { return b.drawn }

// workSnapshot returns cumulative (samples processed, samples stolen)
// counters; Options.OnRound emitters delta two snapshots to charge work to
// a single round. Incremental backends report reprocessed dirty samples
// and shard steals, fresh backends report samples drawn; the plain pooled
// backend (tests only) reports nothing.
func (b *estBackend) workSnapshot() (processed, stolen int64) {
	if b.incr != nil {
		st := b.incr.Stats()
		return st.SamplesReprocessed, st.SamplesStolen
	}
	return b.drawn, 0
}
