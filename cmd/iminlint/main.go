// Command iminlint is the project's static-analysis driver: a multichecker
// in the shape of golang.org/x/tools/go/analysis/multichecker, running the
// five invariant-enforcing passes of internal/lintrules over the module.
//
// Usage:
//
//	go run ./cmd/iminlint ./...            # lint everything
//	go run ./cmd/iminlint -only lockio ./internal/store/...
//	go run ./cmd/iminlint -list            # describe the analyzers
//	go run ./cmd/iminlint -pre ./...       # gofmt -l + go vet first, then lint
//
// Exit status: 0 clean, 1 findings, 2 operational failure (bad flags, a
// package that does not type-check, a pre-check tool missing).
//
// iminlint must run from inside the module (any subdirectory): package
// loading resolves imports relative to the module root.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"github.com/imin-dev/imin/internal/lintkit"
	"github.com/imin-dev/imin/internal/lintrules"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("iminlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list           = fs.Bool("list", false, "describe the analyzers and exit")
		only           = fs.String("only", "", "comma-separated analyzer names to run (default: all)")
		pre            = fs.Bool("pre", false, "run gofmt -l and go vet over the patterns before linting")
		showSuppressed = fs.Bool("show-suppressed", false, "also print diagnostics silenced by //lint:ignore")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lintrules.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		var ok bool
		analyzers, ok = lintrules.ByName(*only)
		if !ok {
			fmt.Fprintf(stderr, "iminlint: unknown analyzer in -only=%s (use -list)\n", *only)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	if *pre {
		if code := preChecks(stdout, stderr, patterns); code != 0 {
			return code
		}
	}

	pkgs, err := lintkit.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "iminlint: %v\n", err)
		return 2
	}
	diags, err := lintkit.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "iminlint: %v\n", err)
		return 2
	}

	failing := 0
	for _, d := range diags {
		if d.Suppressed {
			if *showSuppressed {
				fmt.Fprintf(stdout, "%s [suppressed]\n", d)
			}
			continue
		}
		failing++
		fmt.Fprintln(stdout, d)
	}
	if failing > 0 {
		fmt.Fprintf(stderr, "iminlint: %d finding(s)\n", failing)
		return 1
	}
	return 0
}

// preChecks runs the cheap formatting and vet gates that should fail fast
// before the type-checking lint pass: gofmt -l over the module and go vet
// over the requested patterns. staticcheck joins in when it is installed;
// its absence is not an error, because the lint environment may be offline.
func preChecks(stdout, stderr *os.File, patterns []string) int {
	var out bytes.Buffer
	gofmt := exec.Command("gofmt", "-l", ".")
	gofmt.Stdout = &out
	gofmt.Stderr = stderr
	if err := gofmt.Run(); err != nil {
		fmt.Fprintf(stderr, "iminlint: gofmt: %v\n", err)
		return 2
	}
	if unformatted := strings.TrimSpace(out.String()); unformatted != "" {
		fmt.Fprintf(stdout, "gofmt: needs formatting:\n%s\n", unformatted)
		return 1
	}

	vet := exec.Command("go", append([]string{"vet"}, patterns...)...)
	vet.Stdout = stdout
	vet.Stderr = stderr
	if err := vet.Run(); err != nil {
		fmt.Fprintf(stderr, "iminlint: go vet failed\n")
		return 1
	}

	if path, err := exec.LookPath("staticcheck"); err == nil {
		sc := exec.Command(path, patterns...)
		sc.Stdout = stdout
		sc.Stderr = stderr
		if err := sc.Run(); err != nil {
			fmt.Fprintf(stderr, "iminlint: staticcheck failed\n")
			return 1
		}
	}
	return 0
}
