package cascade

import (
	"runtime"
	"sync"

	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// Monte-Carlo spread estimation (the paper's MCS): repeat forward diffusion
// r times and average the activation counts. This is the engine behind
// BaselineGreedy (Algorithm 1) and behind all effectiveness measurements in
// the evaluation (the expected spreads of Table VII are MCS estimates).

// EstimateSpread runs rounds forward simulations from src on s's graph,
// skipping blocked vertices, and returns the average number of activated
// vertices including src. The estimate converges to E({src}, G[V\B]) by
// Lemma 1.
func EstimateSpread(s LiveSampler, src graph.V, blocked []bool, rounds int, r *rng.Source) float64 {
	if rounds <= 0 {
		panic("cascade: EstimateSpread with non-positive rounds")
	}
	ws := s.NewWorkspace()
	total := 0
	for i := 0; i < rounds; i++ {
		total += s.SimulateCount(src, blocked, r, ws)
	}
	return float64(total) / float64(rounds)
}

// EstimateSpreadParallel is EstimateSpread fanned out over workers
// goroutines, each with an independent random stream split from base.
// workers <= 0 selects GOMAXPROCS. The result is deterministic for a fixed
// (base seed, workers) pair.
func EstimateSpreadParallel(s LiveSampler, src graph.V, blocked []bool, rounds, workers int, base *rng.Source) float64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > rounds {
		workers = rounds
	}
	if workers <= 1 {
		return EstimateSpread(s, src, blocked, rounds, base.Split(0))
	}
	totals := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		share := rounds / workers
		if w < rounds%workers {
			share++
		}
		r := base.Split(uint64(w))
		wg.Add(1)
		go func(w, share int, r *rng.Source) {
			defer wg.Done()
			ws := s.NewWorkspace()
			var total int64
			for i := 0; i < share; i++ {
				total += int64(s.SimulateCount(src, blocked, r, ws))
			}
			totals[w] = total
		}(w, share, r)
	}
	wg.Wait()
	var total int64
	for _, t := range totals {
		total += t
	}
	return float64(total) / float64(rounds)
}

// SpreadEstimator bundles a sampler with fixed estimation parameters so
// higher layers can treat "evaluate this blocker set" as one call.
type SpreadEstimator struct {
	Sampler LiveSampler
	Rounds  int
	Workers int
}

// Spread estimates E({src}, G[V\B]) for the blocker set encoded in blocked.
// Each call derives a fresh child stream from base, so repeated evaluations
// are independent yet reproducible.
func (e *SpreadEstimator) Spread(src graph.V, blocked []bool, base *rng.Source, call uint64) float64 {
	return EstimateSpreadParallel(e.Sampler, src, blocked, e.Rounds, e.Workers, base.Split(call))
}
