package store

import "context"

// ctxKeyRequestID carries the serving layer's request id into store
// operations, so WAL/checkpoint log lines correlate with the request that
// triggered them. The store defines its own key (rather than importing the
// service package) to keep the dependency arrow pointing service → store.
type ctxKeyRequestID struct{}

// WithRequestID returns ctx tagged with a request id for store log lines.
// An empty id returns ctx unchanged.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, ctxKeyRequestID{}, id)
}

// RequestID extracts the request id set by WithRequestID ("" when absent).
func RequestID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(ctxKeyRequestID{}).(string)
	return id
}

// logArgs builds the common structured-log key/value tail for a graph-scoped
// store event, appending request_id only when the context carries one.
func logArgs(ctx context.Context, args ...any) []any {
	if id := RequestID(ctx); id != "" {
		args = append(args, "request_id", id)
	}
	return args
}
