package core

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"

	"github.com/imin-dev/imin/internal/cascade"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// Session keeps the expensive per-problem solver state warm across Solve
// calls on one graph under one diffusion model: the multi-seed unified
// instance (UnifySeeds copies the whole graph), the live-edge sampler, and
// the Algorithm 2 estimator with its per-worker scratch (several O(n)
// arrays per worker). A cold Solve pays all of that on every call; a warm
// Session call with the same seed set skips straight to the greedy rounds.
//
// A Session is bound to (graph, diffusion, dominator algorithm) at
// construction, plus a default worker count: Solve overrides the diffusion
// and dominator Options fields with the session's own so cached scratch
// always matches the run, while Options.Workers is honored per call (zero
// falls back to the session default). Cached estimators are re-fanned with
// SetWorkers instead of being rebuilt — pool content is worker-independent
// (see NewSamplePool), so a warm session serves requests at any worker
// count from the same cached samples, and ReuseSamples results are
// bit-identical at every worker count. Solve serializes callers internally
// — the estimator admits one DecreaseES stream at a time — so a Session is
// safe for concurrent use, at the price of queueing (the wait is
// context-aware: a canceled caller stops queueing immediately); run
// independent graphs on independent Sessions.
//
// Determinism is preserved: the cached estimator carries no randomness of
// its own (each round's rng is split from the per-call Options.Seed), so a
// warm Solve returns exactly the blockers a cold Solve with equal
// (Seed, Theta) and the session's workers/diffusion/domAlgo would.
type Session struct {
	g         *graph.Graph
	diffusion Diffusion
	domAlgo   DomAlgo
	workers   int
	epoch     uint64 // graph epoch the cached state reflects; guarded by lk

	lk    chan struct{} // cap-1 context-aware mutex over the fields below
	insts []*sessionInstance
	tick  int64
	stats SessionStats

	// Pool counters are atomic so the serving layer's /stats can read them
	// without queueing behind an in-flight solve on the session lock.
	poolBytes  atomic.Int64
	poolBuilds atomic.Int64
	poolReuses atomic.Int64
}

// maxSessionInstances bounds the per-seed-set cache inside one session, so
// a few clients interleaving different seed sets on one hot graph don't
// evict each other's prepared state on every request (instances cost a
// whole-graph copy for multi-seed problems plus per-worker estimator
// scratch, which is also why the bound is small).
const maxSessionInstances = 4

// maxSessionPools bounds the per-instance cache of ReuseSamples pools. A
// pool costs θ × (average sample size) memory — usually the largest object
// a session owns — so the bound is even smaller than the instance bound:
// one hot (seed, θ) pair plus one alternate.
const maxSessionPools = 2

// sessionInstance is the prepared state for one seed set: the unified
// instance, the estimator bound to its sampler, and the ReuseSamples pools
// drawn for it so far.
type sessionInstance struct {
	key   string
	seeds []graph.V // the exact seed sequence, for re-preparing after Advance
	in    *instance
	est   *Estimator
	used  int64 // LRU tick, guarded by the session lock
	pools []*sessionPool
}

// sessionPool is one cached ReuseSamples pool with its incremental
// estimator. The pool content is fully determined by (Options.Seed,
// Options.Theta) plus the session-fixed sampler and worker count, so those
// two form the cache key. The estimator is cached along with the pool:
// its delta-maintained accumulator survives across solves, so a repeat
// solve only reprocesses samples touched by the previous run's blockers.
type sessionPool struct {
	seed  uint64
	theta int
	enc   PoolEncoding
	est   *IncrementalPooledEstimator
	used  int64 // LRU tick, guarded by the session lock
	bytes int64 // est.MemoryBytes() as last folded into the poolBytes gauge
}

// SessionStats counts how often the cached state could be reused.
type SessionStats struct {
	// Solves is the number of Solve calls answered.
	Solves int64
	// Reuses counts Solve/EvaluateSpread calls that found their seed set's
	// prepared instance and estimator in the session's cache; Rebuilds
	// counts calls that had to build them (first sight of a seed set, or
	// re-entry after eviction past maxSessionInstances).
	Reuses   int64
	Rebuilds int64
	// PoolBuilds and PoolReuses count ReuseSamples solves that had to draw
	// their θ-sample pool versus ones that found it cached under the same
	// (seed set, Options.Seed, Options.Theta); PoolBytes is the resident
	// footprint of all cached pools and their estimators.
	PoolBuilds int64
	PoolReuses int64
	PoolBytes  int64
	// Advances counts graph-epoch migrations (Advance calls) the session
	// survived with its warm state repaired in place.
	Advances int64
}

// NewSession returns an empty session for g under the given diffusion
// model; state is built lazily on first use. workers <= 0 selects
// GOMAXPROCS, matching Options.Workers semantics. The session starts at
// graph epoch 0; use NewSessionAtEpoch when g is a later snapshot of a
// dynamic graph.
func NewSession(g *graph.Graph, diffusion Diffusion, domAlgo DomAlgo, workers int) *Session {
	return NewSessionAtEpoch(g, diffusion, domAlgo, workers, 0)
}

// NewSessionAtEpoch is NewSession for a graph snapshot at a known epoch of
// an epoch-versioned (dynamic) graph, so the serving layer can later detect
// staleness by comparing Epoch against the graph's current epoch.
func NewSessionAtEpoch(g *graph.Graph, diffusion Diffusion, domAlgo DomAlgo, workers int, epoch uint64) *Session {
	return &Session{g: g, diffusion: diffusion, domAlgo: domAlgo, workers: workers, epoch: epoch, lk: make(chan struct{}, 1)}
}

// lock acquires the session, giving up if ctx is canceled first: a caller
// abandoning a queued solve must not keep waiting (in a server, that wait
// would pin a worker-pool slot behind a long-running solve).
func (s *Session) lock(ctx context.Context) error {
	select {
	case s.lk <- struct{}{}:
		return nil
	default:
	}
	select {
	case s.lk <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Session) unlock() { <-s.lk }

// Graph returns the session's underlying graph.
func (s *Session) Graph() *graph.Graph { return s.g }

// Diffusion returns the session's diffusion model.
func (s *Session) Diffusion() Diffusion { return s.diffusion }

// prepare returns the cached instance+estimator for seeds, building one on
// a miss and evicting the least recently used entry past the bound. Caller
// holds the session lock.
func (s *Session) prepare(seeds []graph.V) (*sessionInstance, error) {
	key := seedsKey(seeds)
	s.tick++
	for _, si := range s.insts {
		if si.key == key {
			si.used = s.tick
			s.stats.Reuses++
			return si, nil
		}
	}
	in, err := newInstance(s.g, seeds)
	if err != nil {
		return nil, err
	}
	si := &sessionInstance{
		key:   key,
		seeds: append([]graph.V(nil), seeds...),
		in:    in,
		est:   NewEstimator(in.sampler(s.diffusion), s.workers, s.domAlgo),
		used:  s.tick,
	}
	if len(s.insts) < maxSessionInstances {
		s.insts = append(s.insts, si)
	} else {
		lru := 0
		for i, c := range s.insts {
			if c.used < s.insts[lru].used {
				lru = i
			}
		}
		for _, sp := range s.insts[lru].pools {
			s.poolBytes.Add(-sp.bytes)
		}
		s.insts[lru] = si
	}
	s.stats.Rebuilds++
	return si, nil
}

// warmPool returns si's cached incremental estimator for (opt.Seed,
// opt.Theta), building pool and estimator on a miss and evicting the least
// recently used pool past the bound. The pool is drawn exactly as a cold
// ReuseSamples run would draw it — same rng split chain, per-sample
// streams — so warm and cold solves stay bit-identical. The cache key
// deliberately excludes the worker count: pool content does not depend on
// it, so a hit at a different opt.Workers only re-fans the estimator's
// shards (SetWorkers) and keeps every cached sample and contribution.
// Caller holds the session lock and has already applied opt.withDefaults
// and resolved opt.Workers.
func (s *Session) warmPool(si *sessionInstance, opt Options) (sp *sessionPool, built bool) {
	s.tick++
	for _, c := range si.pools {
		if c.seed == opt.Seed && c.theta == opt.Theta && c.enc == opt.PoolEncoding {
			c.used = s.tick
			c.est.SetWorkers(opt.Workers)
			s.poolReuses.Add(1)
			return c, false
		}
	}
	base := rng.New(opt.Seed)
	est := NewIncrementalPooledEstimatorEnc(
		si.est.Sampler(), si.in.src, opt.Theta, opt.Workers, s.domAlgo, base.Split(^uint64(0)), opt.PoolEncoding)
	sp = &sessionPool{seed: opt.Seed, theta: opt.Theta, enc: opt.PoolEncoding, est: est, used: s.tick, bytes: est.MemoryBytes()}
	if len(si.pools) < maxSessionPools {
		si.pools = append(si.pools, sp)
	} else {
		lru := 0
		for i, c := range si.pools {
			if c.used < si.pools[lru].used {
				lru = i
			}
		}
		s.poolBytes.Add(-si.pools[lru].bytes)
		si.pools[lru] = sp
	}
	s.poolBuilds.Add(1)
	s.poolBytes.Add(sp.bytes)
	return sp, true
}

// refreshPoolBytes folds the estimator's current footprint into the gauge:
// worker scratch and the dirty list are allocated lazily during solves, so
// the build-time measurement alone would understate residency severalfold
// on large graphs.
func (s *Session) refreshPoolBytes(sp *sessionPool) {
	now := sp.est.MemoryBytes()
	s.poolBytes.Add(now - sp.bytes)
	sp.bytes = now
}

// Acquire locks the session for one caller, waiting until it is free or
// ctx is canceled, and returns a handle whose methods run without further
// locking. Use it to hold the session across a whole request (e.g.
// spread-eval, solve, spread-eval) — and, in a server, to wait for a hot
// graph without occupying a CPU-admission slot. Callers must Release the
// handle exactly once.
func (s *Session) Acquire(ctx context.Context) (*LockedSession, error) {
	if err := s.lock(ctx); err != nil {
		return nil, err
	}
	return &LockedSession{s: s}, nil
}

// LockedSession is exclusive access to a Session between Acquire and
// Release. It must stay on the goroutine chain that acquired it.
type LockedSession struct {
	s *Session
}

// Release unlocks the session.
func (h *LockedSession) Release() { h.s.unlock() }

// Epoch returns the graph epoch the session's cached state reflects.
func (h *LockedSession) Epoch() uint64 { return h.s.epoch }

// AdvanceStats reports one session migration to a new graph epoch.
type AdvanceStats struct {
	// Instances is the number of prepared seed-set instances re-bound to
	// the new graph.
	Instances int
	// PoolsRepaired counts cached sample pools migrated by incremental
	// repair; PoolsDropped counts pools that had to be discarded (the
	// vertex count changed under a multi-seed instance, which moves the
	// super-seed id) — the next solve on those keys rebuilds cold.
	PoolsRepaired, PoolsDropped int
	// SamplesRedrawn and SamplesKept partition the repaired pools' θ
	// samples into redrawn-dirty versus byte-copied-clean.
	SamplesRedrawn, SamplesKept int64
}

// Advance migrates the session (and all its warm state) from its current
// graph to a later epoch's snapshot g of the same evolving graph.
// changedSources must list every vertex whose out-adjacency changed between
// the session's epoch and the new one, changedTargets every vertex whose
// in-adjacency changed (both from dynamic.Graph.ChangedSince); vertex ids
// must be stable, and the vertex count may only have grown.
//
// Prepared instances are re-bound to the new graph; each cached ReuseSamples
// pool is repaired in place — only samples whose rng replay could touch a
// change are redrawn: under IC those containing a changed source, under LT
// additionally those containing an old in-neighbor of a changed target
// (RepairSetLT) — leaving estimator state bit-identical to a cold build at
// the new epoch, so warm solves stay warm across mutations. For multi-seed
// instances the changed vertices are mapped into the unified id space (a
// changed seed row folds into the super-seed's combined row); a grown
// vertex count moves the super-seed id, so those pools are dropped rather
// than repaired.
func (h *LockedSession) Advance(g *graph.Graph, epoch uint64, changedSources, changedTargets []graph.V) AdvanceStats {
	s := h.s
	var st AdvanceStats
	nChanged := g.N() != s.g.N()
	kept := s.insts[:0]
	for _, si := range s.insts {
		in, err := newInstance(g, si.seeds)
		if err != nil {
			// Cannot happen while ids are stable and n only grows, but a
			// dropped instance (rebuilt on next use) beats a poisoned one.
			for _, sp := range si.pools {
				s.poolBytes.Add(-sp.bytes)
			}
			continue
		}
		sampler := in.sampler(s.diffusion)
		repairable := true
		mappedS, mappedT := changedSources, changedTargets
		if in.numSeeds > 1 {
			if nChanged {
				repairable = false
			} else {
				mappedS = make([]graph.V, 0, len(changedSources)+1)
				super := false
				for _, v := range changedSources {
					if si.in.isSeed[v] {
						super = true // seed rows fold into the super-seed row
					} else {
						mappedS = append(mappedS, v)
					}
				}
				if super {
					mappedS = append(mappedS, in.src)
				}
				// Seeds are fully disconnected in the unified graph: their
				// in-rows are empty there, so they drop out of the targets.
				mappedT = make([]graph.V, 0, len(changedTargets))
				for _, v := range changedTargets {
					if !si.in.isSeed[v] {
						mappedT = append(mappedT, v)
					}
				}
			}
		}
		// The dirty criterion handed to Repair: under LT, widen with the
		// old working graph's in-neighbors of every changed target.
		criterion := mappedS
		if repairable && s.diffusion == DiffusionLT {
			criterion = RepairSetLT(si.in.g, mappedS, mappedT)
		}
		pools := si.pools[:0]
		for _, sp := range si.pools {
			if !repairable {
				s.poolBytes.Add(-sp.bytes)
				st.PoolsDropped++
				continue
			}
			newPool, dirty := sp.est.Pool().Repair(sampler, criterion, sp.est.Workers())
			sp.est.RepairPool(newPool, dirty)
			st.PoolsRepaired++
			st.SamplesRedrawn += int64(len(dirty))
			st.SamplesKept += int64(newPool.Theta() - len(dirty))
			s.refreshPoolBytes(sp)
			pools = append(pools, sp)
		}
		si.pools = pools
		si.in = in
		si.est = NewEstimator(sampler, s.workers, s.domAlgo)
		kept = append(kept, si)
		st.Instances++
	}
	s.insts = kept
	s.g = g
	s.epoch = epoch
	s.stats.Advances++
	return st
}

// Reset discards all cached state and re-binds the session to g at epoch —
// the fallback when the graph diverged too far for Advance (the changelog
// no longer reaches the session's epoch).
func (h *LockedSession) Reset(g *graph.Graph, epoch uint64) {
	s := h.s
	for _, si := range s.insts {
		for _, sp := range si.pools {
			s.poolBytes.Add(-sp.bytes)
		}
	}
	s.insts = nil
	s.g = g
	s.epoch = epoch
}

// Solve is Session.Solve on an already-acquired session.
func (h *LockedSession) Solve(ctx context.Context, seeds []graph.V, b int, alg Algorithm, opt Options) (Result, error) {
	if b < 0 {
		return Result{}, fmt.Errorf("core: negative budget %d", b)
	}
	s := h.s
	si, err := s.prepare(seeds)
	if err != nil {
		return Result{}, err
	}
	s.stats.Solves++
	opt = opt.withDefaults()
	opt.Diffusion = s.diffusion
	opt.DomAlgo = s.domAlgo
	if opt.Workers == 0 {
		opt.Workers = s.workers
	}
	si.est.SetWorkers(opt.Workers)
	warm := warmState{fresh: si.est}
	var sp *sessionPool
	if opt.ReuseSamples && (alg == AdvancedGreedy || alg == GreedyReplace) {
		sp, warm.poolBuilt = s.warmPool(si, opt)
		warm.incr = sp.est
	}
	res, err := solveInstance(ctx, si.in, warm, b, alg, opt)
	if sp != nil {
		s.refreshPoolBytes(sp)
	}
	return res, err
}

// EvaluateSpread is Session.EvaluateSpread on an already-acquired session.
func (h *LockedSession) EvaluateSpread(seeds []graph.V, blockers []graph.V, rounds int, opt Options) (float64, error) {
	s := h.s
	si, err := s.prepare(seeds)
	if err != nil {
		return 0, err
	}
	opt = opt.withDefaults()
	in := si.in
	blocked := make([]bool, in.g.N())
	for _, v := range blockers {
		if v < 0 || int(v) >= s.g.N() {
			return 0, fmt.Errorf("core: blocker %d out of range", v)
		}
		if in.isSeed[v] {
			return 0, fmt.Errorf("core: blocker %d is a seed", v)
		}
		blocked[v] = true
	}
	workers := opt.Workers
	if workers == 0 {
		workers = s.workers
	}
	spread := cascade.EstimateSpreadParallel(si.est.Sampler(), in.src, blocked, rounds, workers, rng.New(opt.Seed^0x5eed))
	return graph.SpreadFromUnified(spread, in.numSeeds), nil
}

// Solve is SolveContext through the session's cached state. The session's
// diffusion model and dominator algorithm override the corresponding
// Options fields so cached scratch always matches the run; Options.Workers
// is honored (zero uses the session default) by re-fanning the cached
// estimators. With Options that agree on those fields it returns results
// identical to SolveContext. Canceling ctx while queued for the session
// returns ctx.Err() without solving.
func (s *Session) Solve(ctx context.Context, seeds []graph.V, b int, alg Algorithm, opt Options) (Result, error) {
	h, err := s.Acquire(ctx)
	if err != nil {
		return Result{}, err
	}
	defer h.Release()
	return h.Solve(ctx, seeds, b, alg, opt)
}

// EvaluateSpread is EvaluateSpread through the session's cached instance
// and sampler (the estimator is untouched). ctx only bounds the wait for
// the session lock; the evaluation itself runs to completion.
func (s *Session) EvaluateSpread(ctx context.Context, seeds []graph.V, blockers []graph.V, rounds int, opt Options) (float64, error) {
	h, err := s.Acquire(ctx)
	if err != nil {
		return 0, err
	}
	defer h.Release()
	return h.EvaluateSpread(seeds, blockers, rounds, opt)
}

// Stats returns a snapshot of the reuse counters. It waits for any
// in-flight solve.
func (s *Session) Stats() SessionStats {
	s.lk <- struct{}{}
	defer s.unlock()
	st := s.stats
	st.PoolBuilds = s.poolBuilds.Load()
	st.PoolReuses = s.poolReuses.Load()
	st.PoolBytes = s.poolBytes.Load()
	return st
}

// PoolStats reports the ReuseSamples pool counters without taking the
// session lock, so a metrics endpoint never queues behind a running solve.
func (s *Session) PoolStats() (bytes, builds, reuses int64) {
	return s.poolBytes.Load(), s.poolBuilds.Load(), s.poolReuses.Load()
}

// seedsKey canonicalizes a seed slice for reuse detection. Order is kept:
// UnifySeeds lays out the super-source adjacency in seed order, so only a
// byte-identical seed sequence is guaranteed to replay identically.
func seedsKey(seeds []graph.V) string {
	var b strings.Builder
	for i, v := range seeds {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}
