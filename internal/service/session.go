package service

import (
	"container/list"
	"sync"

	"github.com/imin-dev/imin/internal/core"
	"github.com/imin-dev/imin/internal/graph"
)

// SessionKey identifies one warm solver session: sessions cache sampler and
// estimator state, both of which are bound to a graph and a diffusion
// model, so the pair is the natural cache key.
type SessionKey struct {
	Graph     string
	Diffusion core.Diffusion
}

// CacheStats reports session-cache effectiveness and the resident footprint
// of the ReuseSamples pools cached inside the live sessions (read without
// blocking on any session's solve lock, so /stats stays responsive while
// solves run).
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
	// PoolBytes is the summed memory of all cached sample pools;
	// PoolBuilds/PoolReuses count ReuseSamples solves that drew a pool
	// versus ones answered from a warm pool.
	PoolBytes  int64 `json:"pool_bytes"`
	PoolBuilds int64 `json:"pool_builds"`
	PoolReuses int64 `json:"pool_reuses"`
}

// SessionCache is a bounded LRU of core.Session values. A session's worker
// scratch costs several O(n) arrays per worker, so an unbounded cache on a
// server with many registered graphs would hold the sum of all their
// vertex counts in memory forever; the LRU bound caps that at Capacity
// graphs' worth.
//
// Eviction only drops the cache's reference: a solve holding the evicted
// *core.Session finishes normally (the session is self-contained and owns
// its own mutex) and the memory is reclaimed when the last holder returns.
type SessionCache struct {
	mu       sync.Mutex
	capacity int
	workers  int
	domAlgo  core.DomAlgo
	entries  map[SessionKey]*list.Element
	order    *list.List // front = most recently used
	stats    CacheStats
}

type cacheItem struct {
	key  SessionKey
	sess *core.Session
}

// NewSessionCache returns an LRU bound to capacity sessions (minimum 1).
// workers and domAlgo configure every session it builds.
func NewSessionCache(capacity, workers int, domAlgo core.DomAlgo) *SessionCache {
	if capacity < 1 {
		capacity = 1
	}
	return &SessionCache{
		capacity: capacity,
		workers:  workers,
		domAlgo:  domAlgo,
		entries:  make(map[SessionKey]*list.Element),
		order:    list.New(),
	}
}

// Acquire returns the warm session for key, building one over g (a snapshot
// at the given graph epoch) on a miss, and reports whether it was a cache
// hit. A hit may return a session at an older epoch than the graph's
// current one — the caller detects that through LockedSession.Epoch and
// migrates with Advance/Reset. The caller uses the session outside the
// cache lock; session-internal locking serializes concurrent solves on the
// same key.
func (c *SessionCache) Acquire(key SessionKey, g *graph.Graph, epoch uint64) (*core.Session, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.stats.Hits++
		return el.Value.(*cacheItem).sess, true
	}
	c.stats.Misses++
	for c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		item := oldest.Value.(*cacheItem)
		delete(c.entries, item.key)
		// Pool builds/reuses are cumulative counters: fold the evicted
		// session's totals into the cache's own so /stats never goes
		// backwards. Its pool bytes are NOT folded — that gauge tracks
		// resident memory, which eviction releases.
		_, builds, reuses := item.sess.PoolStats()
		c.stats.PoolBuilds += builds
		c.stats.PoolReuses += reuses
		c.stats.Evictions++
	}
	sess := core.NewSessionAtEpoch(g, key.Diffusion, c.domAlgo, c.workers, epoch)
	c.entries[key] = c.order.PushFront(&cacheItem{key: key, sess: sess})
	return sess, false
}

// Lookup returns the cached session for key without building one on a miss
// and without touching the hit/miss counters. The mutation endpoint uses it
// to eagerly migrate already-warm sessions to a freshly committed epoch.
func (c *SessionCache) Lookup(key SessionKey) (*core.Session, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheItem).sess, true
}

// Drop evicts every session of the named graph (both diffusion models):
// the DELETE endpoint's hook, so a graph re-registered under a freed name
// can never inherit the deleted graph's solver state. Cumulative pool
// counters are folded in like a capacity eviction's.
func (c *SessionCache) Drop(graphName string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, d := range []core.Diffusion{core.DiffusionIC, core.DiffusionLT} {
		key := SessionKey{Graph: graphName, Diffusion: d}
		el, ok := c.entries[key]
		if !ok {
			continue
		}
		c.order.Remove(el)
		delete(c.entries, key)
		_, builds, reuses := el.Value.(*cacheItem).sess.PoolStats()
		c.stats.PoolBuilds += builds
		c.stats.PoolReuses += reuses
		c.stats.Evictions++
	}
}

// Contains reports whether key is currently cached, without touching LRU
// order or counters.
func (c *SessionCache) Contains(key SessionKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Stats returns a snapshot of the counters. Pool numbers are aggregated
// over the cached sessions through their lock-free counters.
func (c *SessionCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Size = c.order.Len()
	st.Capacity = c.capacity
	for el := c.order.Front(); el != nil; el = el.Next() {
		bytes, builds, reuses := el.Value.(*cacheItem).sess.PoolStats()
		st.PoolBytes += bytes
		st.PoolBuilds += builds
		st.PoolReuses += reuses
	}
	return st
}
