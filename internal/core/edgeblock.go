package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/imin-dev/imin/internal/cascade"
	"github.com/imin-dev/imin/internal/dominator"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// Edge blocking: the alternative containment strategy the paper surveys
// (Kimura et al. [13] block links instead of accounts) and a natural
// adaptation target for the dominator-tree estimator. Everything carries
// over through one transform: splitting each live edge e = (u,v) into an
// auxiliary vertex x_e with u→x_e→v turns edge dominators into vertex
// dominators, so the spread decrease of removing e is the weighted size of
// x_e's dominator subtree, counting only real vertices. One sampled graph
// again scores every candidate edge at once.

// EdgeResult reports an edge-blocking run.
type EdgeResult struct {
	// Edges is the selected blocker set (original endpoints and
	// probabilities), in selection order.
	Edges []graph.Edge
	// Runtime is the wall-clock selection time.
	Runtime time.Duration
	// SampledGraphs counts live-edge samples drawn.
	SampledGraphs int64
}

// SolveEdges selects at most b edges whose removal minimizes the expected
// spread from the seed set, using the AdvancedGreedy framework with the
// edge-split estimator. Multi-seed instances are handled with a virtual
// super-source (all original edges stay intact as candidates).
func SolveEdges(g *graph.Graph, seeds []graph.V, b int, opt Options) (EdgeResult, error) {
	opt = opt.withDefaults()
	if b < 0 {
		return EdgeResult{}, fmt.Errorf("core: negative budget %d", b)
	}
	if len(seeds) == 0 {
		return EdgeResult{}, fmt.Errorf("core: empty seed set")
	}
	for _, s := range seeds {
		if s < 0 || int(s) >= g.N() {
			return EdgeResult{}, fmt.Errorf("core: seed %d out of range [0,%d)", s, g.N())
		}
	}
	start := time.Now()
	dl := opt.deadline(start)
	base := rng.New(opt.Seed)

	work, super := g.AugmentSuperSource(seeds)
	var chosen []graph.Edge
	var removed [][2]graph.V
	var samples int64

	for round := 0; round < b; round++ {
		if pastDeadline(dl) {
			break
		}
		est := newEdgeEstimator(work, super, opt)
		delta := make([]float64, work.M())
		est.decreaseES(delta, opt.Theta, base.Split(uint64(round)))
		samples += int64(opt.Theta)

		bestIdx := -1
		for idx := range delta {
			e := work.EdgeAt(idx)
			if e.From == super {
				continue // synthetic seed edges are not blockable
			}
			if bestIdx == -1 || delta[idx] > delta[bestIdx] {
				bestIdx = idx
			}
		}
		if bestIdx == -1 {
			break
		}
		e := work.EdgeAt(bestIdx)
		chosen = append(chosen, graph.Edge{From: e.From, To: e.To, P: e.P})
		removed = append(removed, [2]graph.V{e.From, e.To})
		work = work.RemoveEdges(removed[len(removed)-1:])
	}
	return EdgeResult{Edges: chosen, Runtime: time.Since(start), SampledGraphs: samples}, nil
}

// edgeEstimator scores every edge of one working graph; it is rebuilt per
// greedy round because edge removal changes the graph.
type edgeEstimator struct {
	g       *graph.Graph
	src     graph.V
	sampler cascade.LiveSampler
	workers int
	domAlgo DomAlgo
}

func newEdgeEstimator(g *graph.Graph, src graph.V, opt Options) *edgeEstimator {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var sampler cascade.LiveSampler
	if opt.Diffusion == DiffusionLT {
		sampler = cascade.NewLT(g)
	} else {
		sampler = cascade.NewIC(g)
	}
	return &edgeEstimator{g: g, src: src, sampler: sampler, workers: workers, domAlgo: opt.DomAlgo}
}

// decreaseES fills dst[i] (global out-CSR edge index) with the estimated
// spread decrease from removing edge i, averaged over theta samples.
func (e *edgeEstimator) decreaseES(dst []float64, theta int, base *rng.Source) {
	workers := e.workers
	if workers > theta {
		workers = theta
	}
	m := e.g.M()
	accs := make([][]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		share := theta / workers
		if w < theta%workers {
			share++
		}
		r := base.Split(uint64(w))
		acc := make([]int64, m)
		accs[w] = acc
		wg.Add(1)
		go func(share int, r *rng.Source, acc []int64) {
			defer wg.Done()
			st := &edgeWorker{
				cws: e.sampler.NewWorkspace(),
				dws: dominator.NewWorkspace(0),
			}
			for i := 0; i < share; i++ {
				e.accumulateOne(st, r, acc)
			}
		}(share, r, acc)
	}
	wg.Wait()
	inv := 1 / float64(theta)
	for i := 0; i < m; i++ {
		total := int64(0)
		for w := 0; w < workers; w++ {
			total += accs[w][i]
		}
		dst[i] = float64(total) * inv
	}
}

type edgeWorker struct {
	cws *cascade.Workspace
	dws *dominator.Workspace
	// split-graph scratch, grown on demand
	outStart, outTo []int32
	inStart, inTo   []int32
	fill            []int32
	sizes           []int32
}

// accumulateOne draws one sample, edge-splits it, and accumulates weighted
// dominator-subtree sizes per original edge.
func (e *edgeEstimator) accumulateOne(st *edgeWorker, r *rng.Source, acc []int64) {
	sg := e.sampler.Sample(e.src, nil, r, st.cws)
	k := sg.K
	ne := len(sg.OutTo)
	nSplit := k + ne

	// Build the split graph's out-CSR: original local vertex u keeps one
	// edge per live out-edge, pointing at the edge-vertex k+j; edge-vertex
	// k+j has a single edge to the live target.
	st.outStart = growI32(st.outStart, nSplit+1)
	st.outTo = growI32(st.outTo, 2*ne)
	outStart, outTo := st.outStart[:nSplit+1], st.outTo[:2*ne]
	pos := int32(0)
	for u := 0; u < k; u++ {
		outStart[u] = pos
		for j := sg.OutStart[u]; j < sg.OutStart[u+1]; j++ {
			outTo[pos] = int32(k) + j
			pos++
		}
	}
	for j := 0; j < ne; j++ {
		outStart[k+j] = pos
		outTo[pos] = sg.OutTo[j]
		pos++
	}
	outStart[nSplit] = pos

	// Transpose for the in-CSR.
	st.inStart = growI32(st.inStart, nSplit+1)
	st.inTo = growI32(st.inTo, 2*ne)
	inStart, inTo := st.inStart[:nSplit+1], st.inTo[:2*ne]
	for i := range inStart {
		inStart[i] = 0
	}
	for _, v := range outTo {
		inStart[v+1]++
	}
	for i := 0; i < nSplit; i++ {
		inStart[i+1] += inStart[i]
	}
	st.fill = growI32(st.fill, nSplit)
	fill := st.fill[:nSplit]
	for i := range fill {
		fill[i] = 0
	}
	for u := int32(0); u < int32(nSplit); u++ {
		for j := outStart[u]; j < outStart[u+1]; j++ {
			v := outTo[j]
			inTo[inStart[v]+fill[v]] = u
			fill[v]++
		}
	}

	fg := dominator.FlowGraph{N: nSplit, OutStart: outStart, OutTo: outTo, InStart: inStart, InTo: inTo}
	var tree *dominator.Tree
	if e.domAlgo == DomSNCA {
		tree = st.dws.SNCA(&fg, 0)
	} else {
		tree = st.dws.LengauerTarjan(&fg, 0)
	}
	st.sizes = growI32(st.sizes, nSplit)
	sizes := st.sizes[:nSplit]
	st.dws.WeightedSubtreeSizes(tree, func(v int32) int32 {
		if int(v) < k {
			return 1
		}
		return 0
	}, sizes)

	// Accumulate per original edge: live edge j runs from local u to
	// sg.OutTo[j]; its split vertex is k+j.
	for u := 0; u < k; u++ {
		origU := sg.Orig[u]
		for j := sg.OutStart[u]; j < sg.OutStart[u+1]; j++ {
			origV := sg.Orig[sg.OutTo[j]]
			idx := e.g.OutEdgeIndex(origU, origV)
			if idx >= 0 {
				acc[idx] += int64(sizes[int32(k)+j])
			}
		}
	}
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n, n+n/2)
	}
	return s[:n]
}
