// Positive vfsonly fixture: the shapes of direct filesystem access the
// durable store must not contain — every one of these paths would dodge
// fault injection.
package fixture

import "os"

func writeTmp(path string, data []byte) error {
	f, err := os.Create(path) // want "direct os.Create bypasses the faultfs seam"
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil { // want "bypasses the faultfs seam"
		return err
	}
	if err := f.Sync(); err != nil { // want "bypasses the faultfs seam"
		return err
	}
	if err := f.Close(); err != nil { // want "bypasses the faultfs seam"
		return err
	}
	return os.Rename(path, path+".done") // want "direct os.Rename bypasses the faultfs seam"
}

func readState(dir string) ([]byte, error) {
	if _, err := os.Stat(dir + "/manifest.json"); err != nil { // want "direct os.Stat bypasses the faultfs seam"
		return nil, err
	}
	if err := os.MkdirAll(dir+"/graphs", 0o755); err != nil { // want "direct os.MkdirAll bypasses the faultfs seam"
		return nil, err
	}
	return os.ReadFile(dir + "/manifest.json") // want "direct os.ReadFile bypasses the faultfs seam"
}
