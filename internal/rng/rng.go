// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the library.
//
// All randomized components (graph sampling, Monte-Carlo simulation, dataset
// generation, the Rand heuristic) take an explicit *rng.Source so that every
// experiment is reproducible from a single uint64 seed. The generator is
// xoshiro256**, seeded through splitmix64 as recommended by its authors; it
// is not cryptographically secure, which is fine for simulation work.
//
// Sources are not safe for concurrent use. Parallel workers should each own
// a Source derived with Split, which produces statistically independent
// streams.
package rng

import "math"

// Source is a deterministic xoshiro256** generator.
type Source struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances a splitmix64 state and returns the next output.
// It is used to expand a single seed into the four xoshiro words and to
// derive child seeds in Split.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded deterministically from seed.
func New(seed uint64) *Source {
	var r Source
	r.Reseed(seed)
	return &r
}

// Reseed resets the generator to the state produced by seed.
func (r *Source) Reseed(seed uint64) {
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	r.s2 = splitmix64(&sm)
	r.s3 = splitmix64(&sm)
	// xoshiro must not start from the all-zero state; splitmix64 cannot
	// produce four consecutive zeros, but keep the guard for safety.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	// 53 high bits give a uniform dyadic rational in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli reports true with probability p. Values p <= 0 never succeed
// and p >= 1 always succeed, so certain edges never consume entropy
// incorrectly at the boundaries.
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aLo * bLo
	lo = t & mask32
	c := t >> 32
	t = aHi*bLo + c
	mid := t & mask32
	hiPart := t >> 32
	t = aLo*bHi + mid
	lo |= (t & mask32) << 32
	hi = aHi*bHi + hiPart + t>>32
	return hi, lo
}

// Perm returns a random permutation of [0, n) as a new slice.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using swap, as rand.Shuffle.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
// Dataset generators use it for noisy degree targets.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Split derives a child Source whose stream is independent of both the
// parent's subsequent output and other children. Worker i of a parallel
// stage should use parent.Split(uint64(i)).
func (r *Source) Split(i uint64) *Source {
	// Mix the child index into a fresh splitmix64 chain keyed by the
	// parent state so distinct (parent, i) pairs give distinct streams.
	sm := r.s0 ^ rotl(r.s2, 29) ^ (i * 0xd1342543de82ef95)
	child := splitmix64(&sm) ^ i
	return New(child)
}
