package diag

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/imin-dev/imin/internal/obs"
)

// ErrNotFound reports a bundle id that does not exist in the recorder's
// directory.
var ErrNotFound = errors.New("diag: bundle not found")

// Trigger records why a bundle was captured: an SLO breach ("slo_solve",
// "slo_mutate") or a degraded-mode entry ("degraded").
type Trigger struct {
	Reason    string  `json:"reason"`
	Route     string  `json:"route,omitempty"`
	Graph     string  `json:"graph,omitempty"`
	RequestID string  `json:"request_id,omitempty"`
	SLOMS     float64 `json:"slo_ms,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	Detail    string  `json:"detail,omitempty"`
}

// Bundle is the on-disk diagnostic bundle: everything needed to explain one
// slow or failing request after the fact, in a single JSON document.
type Bundle struct {
	ID         string    `json:"id"`
	CapturedAt time.Time `json:"captured_at"`
	Trigger    Trigger   `json:"trigger"`
	// Build carries the server's build/config info (module, version,
	// revision, Go version).
	Build any `json:"build,omitempty"`
	// Trace is the offending request's span tree, when one was recorded.
	Trace *obs.TraceOut `json:"trace,omitempty"`
	// RecentTraces is the trace ring at capture time, newest first — the
	// requests that surrounded the offender.
	RecentTraces []*obs.TraceOut `json:"recent_traces,omitempty"`
	// Metrics is a Prometheus text-exposition snapshot of the process
	// registry at capture time.
	Metrics    string `json:"metrics,omitempty"`
	MetricsErr string `json:"metrics_error,omitempty"`
	// Goroutine and Heap are text-format runtime profiles
	// (pprof.Lookup debug=2 and debug=1 respectively).
	Goroutine string `json:"goroutine_profile,omitempty"`
	Heap      string `json:"heap_profile,omitempty"`
}

// BundleInfo is the listing entry served by GET /debug/bundles.
type BundleInfo struct {
	ID         string    `json:"id"`
	Reason     string    `json:"reason,omitempty"`
	CapturedAt time.Time `json:"captured_at"`
	SizeBytes  int64     `json:"size_bytes"`
}

// Config configures a Recorder.
type Config struct {
	// Dir is where bundles are written. Created on first capture.
	Dir string
	// MaxBundles bounds retention: once exceeded, the oldest bundles are
	// deleted. Default 16.
	MaxBundles int
	// Cooldown spaces captures so a persistent breach storm cannot churn
	// the directory with near-identical bundles. 0 means the default 30 s;
	// negative disables the cooldown (tests).
	Cooldown time.Duration
	// Metrics, when set, supplies a registry snapshot (Prometheus text)
	// for each bundle.
	Metrics func() ([]byte, error)
	// Build is embedded verbatim in every bundle (build/config info).
	Build any
	// Logger receives capture/retention errors. nil discards.
	Logger *slog.Logger
}

// Recorder captures diagnostic bundles into a bounded directory. All methods
// are safe for concurrent use; at most one capture runs at a time and
// captures inside the cooldown window are suppressed, not queued.
type Recorder struct {
	cfg Config

	mu        sync.Mutex
	seq       uint64
	last      time.Time
	capturing bool
}

// NewRecorder returns a Recorder writing under cfg.Dir. It never touches the
// filesystem; directory creation is deferred to the first capture so a
// misconfigured path degrades to capture errors, not a failed server start.
func NewRecorder(cfg Config) *Recorder {
	if cfg.MaxBundles <= 0 {
		cfg.MaxBundles = 16
	}
	if cfg.Cooldown == 0 {
		cfg.Cooldown = 30 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	return &Recorder{cfg: cfg}
}

// Capture writes one bundle and enforces retention. It returns the new
// bundle's id, or "" when the capture was suppressed (cooldown still open or
// another capture in flight). Suppression is not an error: the caller counts
// it separately.
func (r *Recorder) Capture(trig Trigger, trace *obs.TraceOut, ring []*obs.TraceOut) (string, error) {
	now := time.Now()
	r.mu.Lock()
	if r.capturing || (r.cfg.Cooldown > 0 && !r.last.IsZero() && now.Sub(r.last) < r.cfg.Cooldown) {
		r.mu.Unlock()
		return "", nil
	}
	r.capturing = true
	r.seq++
	// UTC timestamp + sequence makes ids lexically sortable in capture
	// order, which is what retention and the listing sort on.
	id := fmt.Sprintf("bundle-%s.%04d-%s", now.UTC().Format("20060102T150405"), r.seq, sanitize(trig.Reason))
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.capturing = false
		r.last = time.Now()
		r.mu.Unlock()
	}()

	b := &Bundle{
		ID:           id,
		CapturedAt:   now,
		Trigger:      trig,
		Build:        r.cfg.Build,
		Trace:        trace,
		RecentTraces: ring,
		Goroutine:    profileText("goroutine", 2),
		Heap:         profileText("heap", 1),
	}
	if r.cfg.Metrics != nil {
		if m, err := r.cfg.Metrics(); err != nil {
			b.MetricsErr = err.Error()
		} else {
			b.Metrics = string(m)
		}
	}
	if err := r.write(id, b); err != nil {
		return "", err
	}
	r.enforceRetention()
	return id, nil
}

// write lands the bundle atomically: full write + fsync to a temp name, then
// rename — a torn capture never leaves a half bundle behind.
func (r *Recorder) write(id string, b *Bundle) error {
	if err := os.MkdirAll(r.cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("diag: creating bundle dir: %w", err)
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("diag: encoding bundle: %w", err)
	}
	final := filepath.Join(r.cfg.Dir, id+".json")
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("diag: creating bundle: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("diag: writing bundle: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("diag: syncing bundle: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("diag: closing bundle: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("diag: publishing bundle: %w", err)
	}
	return nil
}

// enforceRetention deletes the oldest bundles past MaxBundles. Failures are
// logged, never returned: a capture that landed should report success even
// if cleanup hiccuped.
func (r *Recorder) enforceRetention() {
	ids, err := r.ids()
	if err != nil {
		r.cfg.Logger.Warn("diag: retention scan failed", "dir", r.cfg.Dir, "error", err.Error())
		return
	}
	for len(ids) > r.cfg.MaxBundles {
		oldest := ids[len(ids)-1]
		if err := os.Remove(filepath.Join(r.cfg.Dir, oldest+".json")); err != nil {
			r.cfg.Logger.Warn("diag: retention delete failed", "bundle", oldest, "error", err.Error())
			return
		}
		ids = ids[:len(ids)-1]
	}
}

// ids returns all bundle ids, newest first.
func (r *Recorder) ids() ([]string, error) {
	ents, err := os.ReadDir(r.cfg.Dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var ids []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "bundle-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		ids = append(ids, strings.TrimSuffix(name, ".json"))
	}
	sort.Sort(sort.Reverse(sort.StringSlice(ids)))
	return ids, nil
}

// List returns the recorder's bundles, newest first.
func (r *Recorder) List() ([]BundleInfo, error) {
	ids, err := r.ids()
	if err != nil {
		return nil, err
	}
	infos := make([]BundleInfo, 0, len(ids))
	for _, id := range ids {
		info := BundleInfo{ID: id, Reason: reasonOf(id)}
		if st, err := os.Stat(filepath.Join(r.cfg.Dir, id+".json")); err == nil {
			info.CapturedAt = st.ModTime()
			info.SizeBytes = st.Size()
		}
		infos = append(infos, info)
	}
	return infos, nil
}

// Read returns the raw JSON of one bundle. The id is validated against the
// recorder's own naming scheme before touching the filesystem, so a
// path-traversal id cannot escape the bundle directory.
func (r *Recorder) Read(id string) ([]byte, error) {
	if !validID(id) {
		return nil, ErrNotFound
	}
	data, err := os.ReadFile(filepath.Join(r.cfg.Dir, id+".json"))
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNotFound
	}
	return data, err
}

func validID(id string) bool {
	if !strings.HasPrefix(id, "bundle-") || len(id) > 128 {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return !strings.Contains(id, "..")
}

// reasonOf recovers the trigger reason from a bundle id
// (bundle-<timestamp>.<seq>-<reason>).
func reasonOf(id string) string {
	rest := strings.TrimPrefix(id, "bundle-")
	if _, reason, ok := strings.Cut(rest, "-"); ok {
		return reason
	}
	return ""
}

func sanitize(s string) string {
	if s == "" {
		return "unknown"
	}
	var b strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func profileText(name string, debug int) string {
	p := pprof.Lookup(name)
	if p == nil {
		return ""
	}
	var b bytes.Buffer
	if err := p.WriteTo(&b, debug); err != nil {
		return "profile error: " + err.Error()
	}
	return b.String()
}
