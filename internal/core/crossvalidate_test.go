package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/imin-dev/imin/internal/cascade"
	"github.com/imin-dev/imin/internal/exact"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// These tests cross-validate independent implementations of the same
// quantity against each other on random instances — the repository's main
// defense against "plausible but wrong" algorithmic code. The input stream
// is pinned (quickRand) so runs are reproducible: the tolerances below are
// statistical, and a time-seeded stream would make CI flake on the rare
// tail input (e.g. 0xeb95485582da13e4 exceeds TestPooledQualityProperty's
// margin on the pre-existing solver too).

// quickRand returns the fixed input stream for quick.Check.
func quickRand() *rand.Rand { return rand.New(rand.NewSource(7)) }

// Property: AdvancedGreedy's blocker set achieves a spread within noise of
// BaselineGreedy's on random graphs ("our computation based on sampled
// graphs will not sacrifice the effectiveness, compared with MCS"). The
// sets themselves may differ under ties, so the comparison is on achieved
// exact spread.
func TestAGMatchesBGQualityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(8) + 4
		bld := graph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			bld.AddEdge(graph.V(r.Intn(n)), graph.V(r.Intn(n)), float64(r.Intn(4))*0.25+0.25)
		}
		g := bld.Build()
		b := r.Intn(2) + 1
		opt := Options{Theta: 8000, MCSRounds: 8000, Workers: 2, Seed: seed}

		ag, err := Solve(g, []graph.V{0}, b, AdvancedGreedy, opt)
		if err != nil {
			return true
		}
		bg, err := Solve(g, []graph.V{0}, b, BaselineGreedy, opt)
		if err != nil {
			return true
		}
		sAG, err := exact.Spread(g, 0, toBlocked(n, ag.Blockers), 0)
		if err != nil {
			return true
		}
		sBG, err := exact.Spread(g, 0, toBlocked(n, bg.Blockers), 0)
		if err != nil {
			return true
		}
		if math.Abs(sAG-sBG) > 0.3 {
			t.Logf("seed=%d n=%d b=%d: AG %v (%v) vs BG %v (%v)", seed, n, b, sAG, ag.Blockers, sBG, bg.Blockers)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12, Rand: quickRand()}); err != nil {
		t.Fatal(err)
	}
}

// Property: the LT estimator's Δ matches the Monte-Carlo spread difference
// under the LT model (the Section V-E claim that the estimator works for
// any triggering model).
func TestLTEstimatorMatchesMCSProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(8) + 4
		bld := graph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			bld.AddEdge(graph.V(r.Intn(n)), graph.V(r.Intn(n)), 1)
		}
		// WC weights guarantee Σ in-weights = 1 (valid LT instance).
		g := graph.WeightedCascade.Assign(bld.Build(), nil)
		lt := cascade.NewLT(g)

		est := NewEstimator(lt, 2, DomLengauerTarjan)
		delta := make([]float64, n)
		est.DecreaseES(delta, 0, nil, 40000, rng.New(seed+1))

		base := cascade.EstimateSpread(lt, 0, nil, 40000, rng.New(seed+2))
		blocked := make([]bool, n)
		for u := 1; u < n; u++ {
			blocked[u] = true
			su := cascade.EstimateSpread(lt, 0, blocked, 40000, rng.New(seed+3+uint64(u)))
			blocked[u] = false
			want := base - su
			if math.Abs(delta[u]-want) > 0.15+0.05*math.Abs(want) {
				t.Logf("seed=%d u=%d: Δ_LT=%v MCS diff=%v", seed, u, delta[u], want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12, Rand: quickRand()}); err != nil {
		t.Fatal(err)
	}
}

// Property: GreedyReplace's achieved spread is never (beyond noise) worse
// than AdvancedGreedy's at the same budget on random graphs — Table VII's
// headline ordering.
func TestGRNotWorseThanAGProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(10) + 5
		bld := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			bld.AddEdge(graph.V(r.Intn(n)), graph.V(r.Intn(n)), float64(r.Intn(4))*0.25+0.25)
		}
		g := bld.Build()
		b := r.Intn(3) + 1
		opt := Options{Theta: 6000, Workers: 2, Seed: seed}
		ag, err := Solve(g, []graph.V{0}, b, AdvancedGreedy, opt)
		if err != nil {
			return true
		}
		gr, err := Solve(g, []graph.V{0}, b, GreedyReplace, opt)
		if err != nil {
			return true
		}
		sAG, err := exact.Spread(g, 0, toBlocked(n, ag.Blockers), 0)
		if err != nil {
			return true
		}
		sGR, err := exact.Spread(g, 0, toBlocked(n, gr.Blockers), 0)
		if err != nil {
			return true
		}
		// GR may lose to AG by sampling noise but not systematically.
		if sGR > sAG+0.4 {
			t.Logf("seed=%d n=%d b=%d: GR %v (%v) vs AG %v (%v)", seed, n, b, sGR, gr.Blockers, sAG, ag.Blockers)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: quickRand()}); err != nil {
		t.Fatal(err)
	}
}

// Property: with ReuseSamples the solver still produces sets whose exact
// spread matches the fresh-sampling solver within noise.
func TestPooledQualityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(8) + 4
		bld := graph.NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			bld.AddEdge(graph.V(r.Intn(n)), graph.V(r.Intn(n)), float64(r.Intn(4))*0.25+0.25)
		}
		g := bld.Build()
		opt := Options{Theta: 8000, Workers: 2, Seed: seed}
		fresh, err := Solve(g, []graph.V{0}, 2, AdvancedGreedy, opt)
		if err != nil {
			return true
		}
		opt.ReuseSamples = true
		pooled, err := Solve(g, []graph.V{0}, 2, AdvancedGreedy, opt)
		if err != nil {
			return true
		}
		sF, err := exact.Spread(g, 0, toBlocked(n, fresh.Blockers), 0)
		if err != nil {
			return true
		}
		sP, err := exact.Spread(g, 0, toBlocked(n, pooled.Blockers), 0)
		if err != nil {
			return true
		}
		if math.Abs(sF-sP) > 0.35 {
			t.Logf("seed=%d: fresh %v vs pooled %v", seed, sF, sP)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: quickRand()}); err != nil {
		t.Fatal(err)
	}
}
