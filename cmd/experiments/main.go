// Command experiments reruns the paper's evaluation: every table and
// figure of Section VI, on scaled synthetic stand-ins of the 8 datasets.
//
// Examples:
//
//	experiments -exp all                       # everything, laptop scale
//	experiments -exp table7 -scale 0.05        # one experiment, bigger
//	experiments -exp fig7 -datasets EC,F,W     # subset of datasets
//	experiments -exp table5 -exp table6        # repeatable flag
//	experiments -exp all -csv-dir ./results    # also dump CSV series
//
// Experiment names: table3, table5, table6, table7, fig5 (= fig6), fig7,
// fig8, fig9, fig10, fig11, all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/harness"
)

type expFlag []string

func (e *expFlag) String() string     { return strings.Join(*e, ",") }
func (e *expFlag) Set(v string) error { *e = append(*e, strings.ToLower(v)); return nil }

func main() {
	var exps expFlag
	flag.Var(&exps, "exp", "experiment to run (repeatable): table3, table5, table6, table7, fig5, fig7, fig8, fig9, fig10, fig11, all, benchcore, benchdiff (explicit only, not in all)")
	var (
		scale      = flag.Float64("scale", 0.02, "dataset scale")
		theta      = flag.Int("theta", 1000, "sampled graphs per round")
		mcs        = flag.Int("mcs", 1000, "Monte-Carlo rounds for baseline greedy")
		evalR      = flag.Int("eval", 10000, "Monte-Carlo rounds for spread evaluation")
		seeds      = flag.Int("seeds", 10, "seed-set size")
		seed       = flag.Uint64("rng", 1, "random seed")
		timeout    = flag.Duration("timeout", 15*time.Second, "per-run timeout (the paper's 24h cap, scaled)")
		workers    = flag.Int("workers", 0, "parallel workers (0 = all cores)")
		datasets   = flag.String("datasets", "", "comma-separated dataset filter (full or short names)")
		csvDir     = flag.String("csv-dir", "", "also write each experiment's rows as CSV into this directory")
		benchOut   = flag.String("bench-out", "BENCH_core.json", "JSON output path for -exp benchcore")
		benchB     = flag.Int("bench-budget", 10, "greedy rounds per benchcore run")
		benchMin   = flag.Duration("bench-mintime", 2*time.Second, "minimum measuring time per benchcore mode and sweep point")
		benchForce = flag.Bool("force", false, "overwrite an existing -bench-out measured under a different worker configuration")
		benchFloor = flag.Float64("bench-scaling-floor", 0, "fail benchcore if the 4-worker speedup over 1 worker is below this (only on >=4-CPU machines; 0 disables)")

		benchBaseline  = flag.String("bench-baseline", "BENCH_core.json", "committed baseline report for -exp benchdiff")
		benchCandidate = flag.String("bench-candidate", "", "candidate report for -exp benchdiff (empty = measure a fresh one now)")
		benchHistory   = flag.String("bench-history", "BENCH_history.jsonl", "JSONL perf-trajectory ledger benchdiff appends to (empty disables)")
		benchTimingTol = flag.Float64("bench-timing-tolerance", 10, "allowed worsening of absolute timing metrics in percent before benchdiff fails")
		benchRatioTol  = flag.Float64("bench-ratio-tolerance", 10, "allowed worsening of dimensionless ratio metrics in percent before benchdiff fails")
	)
	flag.Parse()
	if len(exps) == 0 {
		exps = expFlag{"all"}
	}

	cfg := harness.Config{
		Scale:      *scale,
		Theta:      *theta,
		MCSRounds:  *mcs,
		EvalRounds: *evalR,
		NumSeeds:   *seeds,
		Workers:    *workers,
		Seed:       *seed,
		Timeout:    *timeout,
		Out:        os.Stdout,
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fail(err)
		}
	}

	want := map[string]bool{}
	for _, e := range exps {
		want[e] = true
	}
	run := func(name string) bool { return want["all"] || want[name] }
	start := time.Now()

	if run("table3") {
		section("Table III (toy-graph blockers)")
		rows, err := harness.RunTable3(cfg)
		failIf(err)
		dumpCSV(*csvDir, "table3.csv", func(w io.Writer) error { return harness.WriteTable3CSV(w, rows) })
	}
	if run("table5") {
		section("Table V (Exact vs GreedyReplace, TR)")
		rows, err := harness.RunTable56(cfg, graph.Trivalency, harness.Table56Options{})
		failIf(err)
		dumpCSV(*csvDir, "table5.csv", func(w io.Writer) error { return harness.WriteTable56CSV(w, rows) })
	}
	if run("table6") {
		section("Table VI (Exact vs GreedyReplace, WC)")
		rows, err := harness.RunTable56(cfg, graph.WeightedCascade, harness.Table56Options{})
		failIf(err)
		dumpCSV(*csvDir, "table6.csv", func(w io.Writer) error { return harness.WriteTable56CSV(w, rows) })
	}
	if run("table7") {
		section("Table VII (heuristic comparison)")
		rows, err := harness.RunTable7(cfg, harness.Table7Options{})
		failIf(err)
		dumpCSV(*csvDir, "table7.csv", func(w io.Writer) error { return harness.WriteTable7CSV(w, rows) })
	}
	if run("fig5") || run("fig6") {
		section("Figures 5+6 (quality and time vs θ)")
		pts, err := harness.RunFig56(cfg, harness.Fig56Options{})
		failIf(err)
		dumpCSV(*csvDir, "fig56.csv", func(w io.Writer) error { return harness.WriteFig56CSV(w, pts) })
	}
	if run("fig7") {
		section("Figure 7 (BG/AG/GR time, TR)")
		rows, err := harness.RunFig78(cfg, graph.Trivalency, harness.Fig78Options{})
		failIf(err)
		dumpCSV(*csvDir, "fig7.csv", func(w io.Writer) error { return harness.WriteFig78CSV(w, rows) })
	}
	if run("fig8") {
		section("Figure 8 (BG/AG/GR time, WC)")
		rows, err := harness.RunFig78(cfg, graph.WeightedCascade, harness.Fig78Options{})
		failIf(err)
		dumpCSV(*csvDir, "fig8.csv", func(w io.Writer) error { return harness.WriteFig78CSV(w, rows) })
	}
	if run("fig9") {
		section("Figure 9 (time vs budget)")
		pts, err := harness.RunFig9(cfg, harness.Fig9Options{})
		failIf(err)
		dumpCSV(*csvDir, "fig9.csv", func(w io.Writer) error { return harness.WriteFig9CSV(w, pts) })
	}
	if run("fig10") {
		section("Figure 10 (time vs seeds, TR)")
		pts, err := harness.RunFig1011(cfg, graph.Trivalency, harness.Fig1011Options{})
		failIf(err)
		dumpCSV(*csvDir, "fig10.csv", func(w io.Writer) error { return harness.WriteFig1011CSV(w, pts) })
	}
	// benchcore is the estimator cost baseline, not a paper experiment; it
	// writes BENCH_core.json and only runs when named explicitly.
	if want["benchcore"] {
		section("Estimator benchmark (DecreaseES fresh vs pooled vs incremental)")
		_, err := harness.RunBenchCore(cfg, harness.BenchCoreOptions{
			Budget:       *benchB,
			MinTime:      *benchMin,
			JSONPath:     *benchOut,
			Force:        *benchForce,
			ScalingFloor: *benchFloor,
		})
		failIf(err)
		if *benchOut != "" {
			fmt.Printf("wrote %s\n", *benchOut)
		}
	}
	// benchdiff is the perf-trajectory regression gate: compare a candidate
	// benchcore report (fresh by default) against the committed baseline and
	// exit nonzero on regression. Explicit only, like benchcore.
	if want["benchdiff"] {
		section("Benchmark regression gate (candidate vs committed baseline)")
		base, err := harness.LoadBenchCoreReport(*benchBaseline)
		if err != nil {
			fail(fmt.Errorf("loading baseline: %v", err))
		}
		var cand *harness.BenchCoreReport
		if *benchCandidate != "" {
			if cand, err = harness.LoadBenchCoreReport(*benchCandidate); err != nil {
				fail(fmt.Errorf("loading candidate: %v", err))
			}
		} else {
			cand, err = harness.RunBenchCore(cfg, harness.BenchCoreOptions{
				Budget:  *benchB,
				MinTime: *benchMin,
			})
			failIf(err)
		}
		res, err := harness.RunBenchDiff(base, cand, harness.BenchDiffOptions{
			TimingTolerancePct: *benchTimingTol,
			RatioTolerancePct:  *benchRatioTol,
			Out:                os.Stdout,
		})
		failIf(err)
		if *benchHistory != "" {
			if err := harness.AppendBenchHistory(*benchHistory, cand, res); err != nil {
				fail(fmt.Errorf("appending %s: %v", *benchHistory, err))
			}
			fmt.Printf("(history appended to %s)\n", *benchHistory)
		}
		if len(res.Regressions) > 0 {
			fail(fmt.Errorf("%d benchmark regression(s):\n  %s",
				len(res.Regressions), strings.Join(res.Regressions, "\n  ")))
		}
		fmt.Println("benchdiff: no regressions")
	}
	if run("fig11") {
		section("Figure 11 (time vs seeds, WC)")
		pts, err := harness.RunFig1011(cfg, graph.WeightedCascade, harness.Fig1011Options{})
		failIf(err)
		dumpCSV(*csvDir, "fig11.csv", func(w io.Writer) error { return harness.WriteFig1011CSV(w, pts) })
	}

	fmt.Printf("\ntotal experiment time: %v\n", time.Since(start).Round(time.Millisecond))
}

func section(title string) {
	fmt.Printf("\n================ %s ================\n", title)
}

func failIf(err error) {
	if err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

// dumpCSV writes one experiment's rows when -csv-dir is set.
func dumpCSV(dir, name string, write func(io.Writer) error) {
	if dir == "" {
		return
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fail(err)
	}
	if err := write(f); err != nil {
		_ = f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("(csv written to %s)\n", filepath.Join(dir, name))
}
