package lintrules_test

import (
	"testing"

	"github.com/imin-dev/imin/internal/lintkit/linttest"
	"github.com/imin-dev/imin/internal/lintrules"
)

func TestLockIOPositive(t *testing.T) {
	// Includes the PR 5 shutdown-ordering shape: fsync under the append lock.
	linttest.Run(t, "testdata/lockio/pos", lintrules.LockIO, storePath)
}

func TestLockIONegative(t *testing.T) {
	// The fix shape: capture under the lock, release, then fsync.
	linttest.MustBeCleanDir(t, "testdata/lockio/neg", lintrules.LockIO, storePath)
}
