// Positive errsink fixture: dropped errors from durability call sites.
package fixture

import "os"

type wal struct{ f *os.File }

func (w *wal) Append(b []byte) error { _, err := w.f.Write(b); return err }
func (w *wal) Sync() error           { return w.f.Sync() }

func ack(w *wal, b []byte) {
	w.Append(b)  // want "Append discarded"
	_ = w.Sync() // want "assigned to blank"
}

func rotate(dir string) {
	defer os.Remove(dir) // want "Remove discarded by defer"
	f, err := os.Create(dir + "/x")
	if err != nil {
		return
	}
	f.Close() // want "Close discarded"
}
