package harness

import (
	"fmt"

	"github.com/imin-dev/imin/internal/core"
	"github.com/imin-dev/imin/internal/datasets"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// instance is one prepared (graph, probability model, seed set) workload.
type instance struct {
	Spec  datasets.Spec
	Model graph.ProbModel
	G     *graph.Graph
	Seeds []graph.V
}

// selectedSpecs resolves the Config's dataset filter.
func (c Config) selectedSpecs() ([]datasets.Spec, error) {
	if len(c.Datasets) == 0 {
		return datasets.Registry(), nil
	}
	var specs []datasets.Spec
	for _, name := range c.Datasets {
		s, ok := datasets.ByName(name)
		if !ok {
			return nil, fmt.Errorf("harness: unknown dataset %q", name)
		}
		specs = append(specs, s)
	}
	return specs, nil
}

// prepare generates the scaled dataset, assigns the probability model, and
// draws the seed set, all deterministically from the Config seed.
func (c Config) prepare(spec datasets.Spec, model graph.ProbModel) (*instance, error) {
	return c.prepareSeeds(spec, model, c.NumSeeds)
}

// prepareSeeds is prepare with an explicit seed-set size (the scalability
// figures sweep it).
func (c Config) prepareSeeds(spec datasets.Spec, model graph.ProbModel, numSeeds int) (*instance, error) {
	structural := spec.Generate(c.Scale, c.Seed)
	r := rng.New(c.Seed ^ 0xda7a5e7 ^ uint64(model))
	g := model.Assign(structural, r)
	if numSeeds > g.N()/2 {
		return nil, fmt.Errorf("harness: %d seeds on a %d-vertex graph", numSeeds, g.N())
	}
	seeds, err := datasets.RandomSeeds(g, numSeeds, true, rng.New(c.Seed^0x5eed5))
	if err != nil {
		return nil, err
	}
	return &instance{Spec: spec, Model: model, G: g, Seeds: seeds}, nil
}

// run executes one algorithm on the instance and measures the resulting
// expected spread with the evaluation Monte-Carlo budget.
func (c Config) run(in *instance, alg core.Algorithm, b int) (core.Result, float64, error) {
	diffusion := core.DiffusionIC
	opt := c.solveOptions(diffusion, c.Seed^algSalt(alg))
	res, err := core.Solve(in.G, in.Seeds, b, alg, opt)
	if err != nil {
		return core.Result{}, 0, err
	}
	spread, err := core.EvaluateSpread(in.G, in.Seeds, res.Blockers, c.EvalRounds, opt)
	if err != nil {
		return core.Result{}, 0, err
	}
	return res, spread, nil
}

// algSalt decorrelates the random streams of different algorithms.
func algSalt(alg core.Algorithm) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(alg); i++ {
		h ^= uint64(alg[i])
		h *= 1099511628211
	}
	return h
}
