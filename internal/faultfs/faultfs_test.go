package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.txt")
	f, err := OS.Create(path)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := OS.ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if err := OS.Rename(path, filepath.Join(dir, "b.txt")); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if _, err := OS.Stat(filepath.Join(dir, "b.txt")); err != nil {
		t.Fatalf("Stat after rename: %v", err)
	}
}

func TestInjectorNthMatch(t *testing.T) {
	inj := NewInjector(OS)
	inj.SetRules(Rule{Op: OpSync, Nth: 2})

	dir := t.TempDir()
	f, err := inj.Create(filepath.Join(dir, "w"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("first sync should pass: %v", err)
	}
	err = f.Sync()
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("second sync: want EIO, got %v", err)
	}
	var pe *os.PathError
	if !errors.As(err, &pe) {
		t.Fatalf("want *os.PathError, got %T", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("third sync should pass again: %v", err)
	}
}

func TestInjectorPathFilterAndErrno(t *testing.T) {
	inj := NewInjector(OS)
	inj.SetRules(Rule{Op: OpWrite, PathContains: "snap-", Err: syscall.ENOSPC})

	dir := t.TempDir()
	snap, _ := inj.Create(filepath.Join(dir, "snap-000001.tmp"))
	wal, _ := inj.Create(filepath.Join(dir, "wal-000001"))
	defer snap.Close()
	defer wal.Close()

	if _, err := wal.Write([]byte("x")); err != nil {
		t.Fatalf("wal write should pass: %v", err)
	}
	if _, err := snap.Write([]byte("x")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("snap write: want ENOSPC, got %v", err)
	}
}

func TestInjectorShortWrite(t *testing.T) {
	inj := NewInjector(OS)
	inj.SetRules(Rule{Op: OpWrite, Nth: 1, Mode: ModeShortWrite})

	dir := t.TempDir()
	path := filepath.Join(dir, "torn")
	f, err := inj.Create(path)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	payload := []byte("0123456789")
	n, err := f.Write(payload)
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("short write: want EIO, got %v", err)
	}
	if n != len(payload)/2 {
		t.Fatalf("short write: n = %d, want %d", n, len(payload)/2)
	}
	f.Close()
	data, _ := os.ReadFile(path)
	if string(data) != "01234" {
		t.Fatalf("on disk: %q, want first half", data)
	}
}

func TestInjectorCrashModes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")

	// crash-before: the hook fires and the write is absent.
	inj := NewInjector(OS)
	var crashed []OpInfo
	inj.OnCrash(func(i OpInfo) { crashed = append(crashed, i) })
	inj.SetRules(Rule{Op: OpWrite, Nth: 1, Mode: ModeCrashBefore})
	f, _ := inj.Create(path)
	if _, err := f.Write([]byte("abc")); err != nil {
		// Hook returned: op proceeds. That is the documented contract.
		t.Fatalf("write after returning hook: %v", err)
	}
	f.Close()
	if len(crashed) != 1 || crashed[0].Op != OpWrite {
		t.Fatalf("crash hook: %v", crashed)
	}

	// torn: half the payload lands before the hook fires.
	inj2 := NewInjector(OS)
	hit := 0
	inj2.OnCrash(func(OpInfo) { hit++ })
	inj2.SetRules(Rule{Op: OpWrite, Nth: 1, Mode: ModeTornWrite})
	path2 := filepath.Join(dir, "g")
	g, _ := inj2.Create(path2)
	g.Write([]byte("0123456789"))
	g.Close()
	if hit != 1 {
		t.Fatalf("torn write: crash hook hit %d times", hit)
	}
	data, _ := os.ReadFile(path2)
	if string(data) != "01234" {
		t.Fatalf("torn write on disk: %q", data)
	}
}

func TestInjectorTrace(t *testing.T) {
	inj := NewInjector(OS)
	inj.SetTracing(true)
	dir := t.TempDir()
	f, _ := inj.Create(filepath.Join(dir, "t"))
	f.Write([]byte("x"))
	f.Sync()
	f.Close()
	tr := inj.Trace()
	if len(tr) != 4 {
		t.Fatalf("trace length = %d, want 4: %v", len(tr), tr)
	}
	want := []Op{OpCreate, OpWrite, OpSync, OpClose}
	for i, op := range want {
		if tr[i].Op != op {
			t.Fatalf("trace[%d] = %s, want %s", i, tr[i].Op, op)
		}
		if tr[i].Seq != int64(i+1) {
			t.Fatalf("trace[%d].Seq = %d, want %d", i, tr[i].Seq, i+1)
		}
	}
	if inj.Ops() != 4 {
		t.Fatalf("Ops = %d", inj.Ops())
	}
}

func TestInjectorRulesSwappable(t *testing.T) {
	inj := NewInjector(OS)
	inj.SetRules(Rule{Op: OpWriteFile})
	dir := t.TempDir()
	path := filepath.Join(dir, "w")
	if err := inj.WriteFile(path, []byte("x"), 0o644); !errors.Is(err, syscall.EIO) {
		t.Fatalf("want EIO, got %v", err)
	}
	inj.ClearRules()
	if err := inj.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatalf("after ClearRules: %v", err)
	}
}

func TestParseSchedule(t *testing.T) {
	rules, err := ParseSchedule("eio@sync#3; enospc@write~snap-; crash@write#17; torn@write~wal-#5; short@*; crash-after@rename")
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	want := []Rule{
		{Op: OpSync, Nth: 3, Mode: ModeErr, Err: syscall.EIO},
		{Op: OpWrite, PathContains: "snap-", Mode: ModeErr, Err: syscall.ENOSPC},
		{Op: OpWrite, Nth: 17, Mode: ModeCrashBefore},
		{Op: OpWrite, PathContains: "wal-", Nth: 5, Mode: ModeTornWrite},
		{Mode: ModeShortWrite, Err: syscall.EIO},
		{Op: OpRename, Mode: ModeCrashAfter},
	}
	if len(rules) != len(want) {
		t.Fatalf("got %d rules, want %d", len(rules), len(want))
	}
	for i := range want {
		if rules[i] != want[i] {
			t.Fatalf("rule %d = %+v, want %+v", i, rules[i], want[i])
		}
	}
	for _, bad := range []string{"sync#3", "zap@sync", "eio@sync#0", "eio@sync#x"} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Fatalf("ParseSchedule(%q) should fail", bad)
		}
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{Op: OpWrite, PathContains: "wal-", Nth: 5, Mode: ModeTornWrite}
	if got := r.String(); got != "torn@write~wal-#5" {
		t.Fatalf("Rule.String() = %q", got)
	}
	if got := (Rule{Mode: ModeErr}).String(); got != "err@*" {
		t.Fatalf("Rule.String() = %q", got)
	}
}
