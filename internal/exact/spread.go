// Package exact provides exact (non-sampled) computations for small
// instances: the exact expected spread under the IC model and the exact
// IMIN solver that enumerates all blocker sets. They power the optimality
// comparison of Tables V and VI and serve as oracles in tests.
//
// The paper uses the BDD-based method of Maehara et al. [39] for exact
// spreads; that method, like this one, is exponential in the worst case and
// practical only on graphs with up to a few hundred edges. We substitute
// the classic factoring (edge-conditioning) algorithm from network
// reliability: pick an undecided probabilistic edge on the current
// reachability frontier, condition on it being live or dead, and recurse —
// E = p·E[live] + (1-p)·E[dead]. Only frontier edges are conditioned, so
// certain regions of the graph and edges that can no longer change
// reachability never cause branching. DESIGN.md §4 records the
// substitution.
package exact

import (
	"errors"

	"github.com/imin-dev/imin/internal/graph"
)

// ErrBudget is returned when an exact computation exceeds its node budget;
// callers should fall back to Monte-Carlo estimation.
var ErrBudget = errors.New("exact: recursion budget exhausted")

// DefaultNodeBudget bounds the number of factoring recursion nodes per
// spread computation. ~10⁷ nodes corresponds to a few seconds of work.
const DefaultNodeBudget = 10_000_000

type edgeState int8

const (
	undecided edgeState = iota
	live
	dead
)

// spreadComputer carries the recursion state for one exact computation.
type spreadComputer struct {
	g       *graph.Graph
	blocked []bool
	// state per edge, indexed by position in the flattened out-CSR order.
	state []edgeState
	// edge index offsets: edge i of vertex u is edgeBase[u]+i.
	edgeBase []int32
	budget   int
	// scratch
	seen  []bool
	queue []graph.V
}

// Spread computes the exact expected spread E({src}, G[V\B]) — the expected
// number of vertices activated from src, including src itself — by
// factoring. blocked may be nil. The computation aborts with ErrBudget
// after nodeBudget recursion nodes (0 selects DefaultNodeBudget).
func Spread(g *graph.Graph, src graph.V, blocked []bool, nodeBudget int) (float64, error) {
	if blocked != nil && blocked[src] {
		return 0, nil
	}
	if nodeBudget <= 0 {
		nodeBudget = DefaultNodeBudget
	}
	sc := &spreadComputer{
		g:        g,
		blocked:  blocked,
		state:    make([]edgeState, g.M()),
		edgeBase: make([]int32, g.N()),
		budget:   nodeBudget,
		seen:     make([]bool, g.N()),
		queue:    make([]graph.V, 0, g.N()),
	}
	base := int32(0)
	for u := graph.V(0); int(u) < g.N(); u++ {
		sc.edgeBase[u] = base
		base += int32(g.OutDegree(u))
	}
	// Edges with probability 0 can never fire.
	for u := graph.V(0); int(u) < g.N(); u++ {
		ps := g.OutProbs(u)
		for i, p := range ps {
			if p <= 0 {
				sc.state[sc.edgeBase[u]+int32(i)] = dead
			}
		}
	}
	return sc.recurse(src)
}

// recurse evaluates the conditional expected spread given the current edge
// states.
func (sc *spreadComputer) recurse(src graph.V) (float64, error) {
	sc.budget--
	if sc.budget < 0 {
		return 0, ErrBudget
	}

	// Reachable set via certain (p==1) and decided-live edges; collect one
	// frontier edge: undecided, probabilistic, tail reachable, head not.
	reached := sc.reach(src)
	frontierEdge := int32(-1)
	var frontierU graph.V
	var frontierI int
	for _, u := range sc.queue[:reached] {
		to := sc.g.OutNeighbors(u)
		ps := sc.g.OutProbs(u)
		for i, v := range to {
			ei := sc.edgeBase[u] + int32(i)
			if sc.state[ei] != undecided || ps[i] >= 1 {
				continue
			}
			if sc.seen[v] || (sc.blocked != nil && sc.blocked[v]) {
				continue
			}
			frontierEdge = ei
			frontierU = u
			frontierI = i
			break
		}
		if frontierEdge >= 0 {
			break
		}
	}
	if frontierEdge < 0 {
		// No undecided edge can extend the reachable set: it is final.
		return float64(reached), nil
	}

	p := sc.g.OutProbs(frontierU)[frontierI]
	sc.state[frontierEdge] = live
	eLive, err := sc.recurse(src)
	if err != nil {
		sc.state[frontierEdge] = undecided
		return 0, err
	}
	sc.state[frontierEdge] = dead
	eDead, err := sc.recurse(src)
	sc.state[frontierEdge] = undecided
	if err != nil {
		return 0, err
	}
	return p*eLive + (1-p)*eDead, nil
}

// reach fills sc.queue with the vertices reachable from src through
// certain and live edges, returns the count, and leaves sc.seen marked for
// exactly those vertices (it clears marks from the previous call first).
func (sc *spreadComputer) reach(src graph.V) int {
	for _, v := range sc.queue {
		sc.seen[v] = false
	}
	sc.queue = sc.queue[:0]
	sc.seen[src] = true
	sc.queue = append(sc.queue, src)
	for qi := 0; qi < len(sc.queue); qi++ {
		u := sc.queue[qi]
		to := sc.g.OutNeighbors(u)
		ps := sc.g.OutProbs(u)
		for i, v := range to {
			if sc.seen[v] || (sc.blocked != nil && sc.blocked[v]) {
				continue
			}
			ei := sc.edgeBase[u] + int32(i)
			if sc.state[ei] == live || (sc.state[ei] == undecided && ps[i] >= 1) {
				sc.seen[v] = true
				sc.queue = append(sc.queue, v)
			}
		}
	}
	return len(sc.queue)
}

// SpreadSeeds is Spread for a multi-vertex seed set, applying the paper's
// seed-unification reduction first. Blockers must not be seeds.
func SpreadSeeds(g *graph.Graph, seeds []graph.V, blockers []graph.V, nodeBudget int) (float64, error) {
	unified, super := g.UnifySeeds(seeds)
	blocked := make([]bool, unified.N())
	for _, v := range blockers {
		blocked[v] = true
	}
	s, err := Spread(unified, super, blocked, nodeBudget)
	if err != nil {
		return 0, err
	}
	distinct := map[graph.V]bool{}
	for _, s := range seeds {
		distinct[s] = true
	}
	return graph.SpreadFromUnified(s, len(distinct)), nil
}

// ActivationProbability computes the exact probability that vertex x is
// activated from src: P_G(x, {src}) from Definition 1, by conditioning the
// same way as Spread but scoring membership of x instead of counting.
func ActivationProbability(g *graph.Graph, src, x graph.V, nodeBudget int) (float64, error) {
	if nodeBudget <= 0 {
		nodeBudget = DefaultNodeBudget
	}
	if src == x {
		return 1, nil
	}
	sc := &spreadComputer{
		g:        g,
		state:    make([]edgeState, g.M()),
		edgeBase: make([]int32, g.N()),
		budget:   nodeBudget,
		seen:     make([]bool, g.N()),
		queue:    make([]graph.V, 0, g.N()),
	}
	base := int32(0)
	for u := graph.V(0); int(u) < g.N(); u++ {
		sc.edgeBase[u] = base
		base += int32(g.OutDegree(u))
	}
	for u := graph.V(0); int(u) < g.N(); u++ {
		ps := g.OutProbs(u)
		for i, p := range ps {
			if p <= 0 {
				sc.state[sc.edgeBase[u]+int32(i)] = dead
			}
		}
	}
	return sc.recurseProb(src, x)
}

// recurseProb evaluates P(x reachable | current edge states).
func (sc *spreadComputer) recurseProb(src, x graph.V) (float64, error) {
	sc.budget--
	if sc.budget < 0 {
		return 0, ErrBudget
	}
	reached := sc.reach(src)
	if sc.seen[x] {
		return 1, nil
	}
	frontierEdge := int32(-1)
	var frontierU graph.V
	var frontierI int
	for _, u := range sc.queue[:reached] {
		to := sc.g.OutNeighbors(u)
		ps := sc.g.OutProbs(u)
		for i, v := range to {
			ei := sc.edgeBase[u] + int32(i)
			if sc.state[ei] != undecided || ps[i] >= 1 || sc.seen[v] {
				continue
			}
			frontierEdge = ei
			frontierU = u
			frontierI = i
			break
		}
		if frontierEdge >= 0 {
			break
		}
	}
	if frontierEdge < 0 {
		return 0, nil // x unreachable and the reachable set is final
	}
	p := sc.g.OutProbs(frontierU)[frontierI]
	sc.state[frontierEdge] = live
	pLive, err := sc.recurseProb(src, x)
	if err != nil {
		sc.state[frontierEdge] = undecided
		return 0, err
	}
	sc.state[frontierEdge] = dead
	pDead, err := sc.recurseProb(src, x)
	sc.state[frontierEdge] = undecided
	if err != nil {
		return 0, err
	}
	return p*pLive + (1-p)*pDead, nil
}
