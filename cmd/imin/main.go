// Command imin solves influence-minimization instances from the command
// line: load a graph (edge-list file or generated dataset), pick seeds,
// choose an algorithm and budget, and print the blockers plus the
// before/after expected spread.
//
// Examples:
//
//	imin -dataset Wiki-Vote -scale 0.05 -model TR -seeds 10 -b 20 -alg greedy-replace
//	imin -graph edges.txt -seed-vertices 0,17,42 -b 5 -alg advanced-greedy
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	imin "github.com/imin-dev/imin"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "edge-list file (u v [p] per line); mutually exclusive with -dataset")
		undirected = flag.Bool("undirected", false, "treat the edge-list file as undirected")
		dataset    = flag.String("dataset", "", "generate a synthetic stand-in dataset (one of "+strings.Join(imin.DatasetNames(), ", ")+")")
		scale      = flag.Float64("scale", 0.02, "dataset scale as a fraction of the published size")
		model      = flag.String("model", "TR", "probability model: TR (trivalency), WC (weighted cascade) or keep (file probabilities)")
		diffusion  = flag.String("diffusion", "IC", "diffusion model: IC or LT")
		alg        = flag.String("alg", string(imin.GreedyReplace), "algorithm: rand, outdegree, baseline-greedy, advanced-greedy, greedy-replace")
		budget     = flag.Int("b", 10, "blocker budget")
		numSeeds   = flag.Int("seeds", 10, "number of random seed vertices (ignored when -seed-vertices is set)")
		seedList   = flag.String("seed-vertices", "", "comma-separated explicit seed vertex ids")
		theta      = flag.Int("theta", 10000, "sampled graphs per estimation round")
		mcsRounds  = flag.Int("mcs", 10000, "Monte-Carlo rounds for baseline-greedy")
		evalRounds = flag.Int("eval", 20000, "Monte-Carlo rounds for the final spread report")
		rngSeed    = flag.Uint64("rng", 1, "random seed for reproducibility")
		timeout    = flag.Duration("timeout", 0, "abort the run after this duration (0 = none)")
		workers    = flag.Int("workers", 0, "parallel workers (0 = all cores)")
	)
	flag.Parse()

	g, err := loadGraph(*graphPath, *undirected, *dataset, *scale, *model, *rngSeed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.M())

	seeds, err := chooseSeeds(g, *seedList, *numSeeds, *rngSeed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("seeds: %v\n", seeds)

	opt := imin.Options{
		Theta:     *theta,
		MCSRounds: *mcsRounds,
		Workers:   *workers,
		Seed:      *rngSeed,
		Timeout:   *timeout,
	}
	if strings.EqualFold(*diffusion, "LT") {
		opt.Diffusion = imin.LT
	}

	before, err := imin.EstimateSpread(g, seeds, nil, *evalRounds, opt)
	if err != nil {
		fatal(err)
	}
	res, err := imin.MinimizeWith(g, seeds, *budget, imin.Algorithm(*alg), opt)
	if err != nil {
		fatal(err)
	}
	after, err := imin.EstimateSpread(g, seeds, res.Blockers, *evalRounds, opt)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\nalgorithm:        %s\n", *alg)
	fmt.Printf("blockers (%d):     %v\n", len(res.Blockers), res.Blockers)
	fmt.Printf("selection time:   %v\n", res.Runtime.Round(time.Millisecond))
	if res.TimedOut {
		fmt.Println("NOTE: run hit the timeout; blockers are partial")
	}
	fmt.Printf("expected spread:  %.3f -> %.3f (%.1f%% reduction)\n",
		before, after, 100*(before-after)/before)
	if res.SampledGraphs > 0 {
		fmt.Printf("sampled graphs:   %d\n", res.SampledGraphs)
	}
	if res.MCSSimulations > 0 {
		fmt.Printf("MCS simulations:  %d\n", res.MCSSimulations)
	}
}

func loadGraph(path string, undirected bool, dataset string, scale float64, model string, seed uint64) (*imin.Graph, error) {
	var g *imin.Graph
	switch {
	case path != "" && dataset != "":
		return nil, fmt.Errorf("set only one of -graph and -dataset")
	case strings.HasSuffix(path, ".bin"):
		var err error
		g, err = imin.ReadBinaryGraphFile(path)
		if err != nil {
			return nil, err
		}
	case path != "":
		var err error
		g, _, err = imin.ReadEdgeListFile(path, undirected, 0)
		if err != nil {
			return nil, err
		}
	case dataset != "":
		var err error
		g, err = imin.GenerateDataset(dataset, scale, seed)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("need -graph FILE or -dataset NAME")
	}
	switch strings.ToUpper(model) {
	case "TR":
		g = imin.AssignProbabilities(g, imin.Trivalency, seed^0x7112)
	case "WC":
		g = imin.AssignProbabilities(g, imin.WeightedCascade, 0)
	case "KEEP":
		// keep file probabilities
	default:
		return nil, fmt.Errorf("unknown probability model %q (want TR, WC or keep)", model)
	}
	return g, nil
}

func chooseSeeds(g *imin.Graph, explicit string, count int, seed uint64) ([]imin.Vertex, error) {
	if explicit == "" {
		return imin.RandomSeedSet(g, count, true, seed^0x5eed)
	}
	var seeds []imin.Vertex
	for _, part := range strings.Split(explicit, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad seed vertex %q: %w", part, err)
		}
		if id < 0 || id >= g.N() {
			return nil, fmt.Errorf("seed vertex %d out of range [0,%d)", id, g.N())
		}
		seeds = append(seeds, imin.Vertex(id))
	}
	return seeds, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "imin:", err)
	os.Exit(1)
}
