package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/imin-dev/imin/internal/core"
	"github.com/imin-dev/imin/internal/store"
)

// newDurableServer builds a service over a durable store rooted at dir.
func newDurableServer(t *testing.T, dir string, scfg store.Config) (*Server, *httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(dir, scfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Config{Store: st})
	return srv, ts, st
}

func httpDelete(t *testing.T, url string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf [4096]byte
	n, _ := resp.Body.Read(buf[:])
	return resp.StatusCode, string(buf[:n])
}

// TestDurableRegisterMutateRecover is the service-level restart loop:
// register + mutate through HTTP, tear the server down, stand a fresh one
// over the same directory, and expect the same graph at the same epoch —
// with warm solves agreeing bit-for-bit.
func TestDurableRegisterMutateRecover(t *testing.T) {
	dir := t.TempDir()
	srv, ts, _ := newDurableServer(t, dir, store.Config{Fsync: store.FsyncAlways})

	reg := RegisterGraphRequest{Name: "g", Generator: "erdos-renyi", N: 200, M: 900, Directed: true, Seed: 5}
	var info GraphInfo
	if code, body := postJSON(t, ts.URL+"/graphs", reg, &info); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}
	if !info.Durable || info.Recovered {
		t.Fatalf("fresh durable registration info = %+v", info)
	}

	entry, _ := srv.Registry().Get("g")
	g0, _ := entry.Current()
	for i := 0; i < 3; i++ {
		e := g0.Edges()[i*11]
		line := fmt.Sprintf("{\"op\":\"set-prob\",\"u\":%d,\"v\":%d,\"p\":%g}\n", e.From, e.To, 0.1+0.2*float64(i))
		var mut MutateResponse
		if code, body := postNDJSON(t, ts.URL+"/graphs/g/mutate", line, &mut); code != http.StatusOK {
			t.Fatalf("mutate %d: %d %s", i, code, body)
		}
	}

	solveReq := SolveRequest{Seeds: []int{2, 5}, Budget: 3, Theta: 300, Seed: 9,
		Workers: 2, ReuseSamples: true, EvalRounds: -1, Algorithm: "greedy-replace"}
	var before SolveResponse
	if code, body := postJSON(t, ts.URL+"/graphs/g/solve", solveReq, &before); code != http.StatusOK {
		t.Fatalf("solve: %d %s", code, body)
	}

	// Graceful teardown: final checkpoint + store close.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Fresh process over the same state.
	srv2, ts2, _ := newDurableServer(t, dir, store.Config{Fsync: store.FsyncAlways})
	recs, err := srv2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Epoch() != 3 {
		t.Fatalf("recovered %d graphs, epoch %d; want 1 graph at epoch 3", len(recs), recs[0].Epoch())
	}
	// The graceful close checkpointed, so nothing replays.
	if recs[0].ReplayedBatches != 0 {
		t.Errorf("graceful restart replayed %d batches, want 0 (final checkpoint covers them)", recs[0].ReplayedBatches)
	}

	resp, err := http.Get(ts2.URL + "/graphs/g")
	if err != nil {
		t.Fatal(err)
	}
	var info2 GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&info2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !info2.Durable || !info2.Recovered || info2.Epoch != 3 {
		t.Fatalf("recovered info = %+v", info2)
	}

	var after SolveResponse
	if code, body := postJSON(t, ts2.URL+"/graphs/g/solve", solveReq, &after); code != http.StatusOK {
		t.Fatalf("post-recovery solve: %d %s", code, body)
	}
	if !reflect.DeepEqual(before.Blockers, after.Blockers) {
		t.Fatalf("recovered solve %v != pre-restart solve %v", after.Blockers, before.Blockers)
	}
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableUngracefulRestartReplaysWAL skips the graceful Close: the
// second server must rebuild the epochs from the WAL tail alone.
func TestDurableUngracefulRestartReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	srv, ts, st := newDurableServer(t, dir, store.Config{Fsync: store.FsyncAlways})

	reg := RegisterGraphRequest{Name: "g", Generator: "erdos-renyi", N: 150, M: 600, Directed: true, Seed: 6}
	if code, body := postJSON(t, ts.URL+"/graphs", reg, nil); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}
	entry, _ := srv.Registry().Get("g")
	g0, _ := entry.Current()
	for i := 0; i < 4; i++ {
		e := g0.Edges()[i*7]
		line := fmt.Sprintf("{\"op\":\"set-prob\",\"u\":%d,\"v\":%d,\"p\":0.33}\n", e.From, e.To)
		if code, body := postNDJSON(t, ts.URL+"/graphs/g/mutate", line, nil); code != http.StatusOK {
			t.Fatalf("mutate %d: %d %s", i, code, body)
		}
	}
	// Simulate a crash: close only the file handles, no checkpoint.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, _, _ := newDurableServer(t, dir, store.Config{Fsync: store.FsyncAlways})
	recs, err := srv2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Epoch() != 4 || recs[0].ReplayedBatches != 4 {
		t.Fatalf("recovered %+v; want epoch 4 from 4 replayed batches", recs[0])
	}
	want, _ := entry.Current()
	got, _ := recs[0].Dyn.Snapshot()
	if want.M() != got.M() || !reflect.DeepEqual(want.Edges(), got.Edges()) {
		t.Fatal("recovered CSR differs from the survivor's")
	}
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestUnencodableBatchRejectedBeforeCommit is the epoch-gap regression: a
// batch the WAL cannot represent (negative id on an op whose apply ignores
// it) must be rejected wholesale — never committed in memory without a WAL
// record, which recovery would read as a corrupt tail and use to discard
// every LATER acknowledged batch.
func TestUnencodableBatchRejectedBeforeCommit(t *testing.T) {
	dir := t.TempDir()
	srv, ts, _ := newDurableServer(t, dir, store.Config{Fsync: store.FsyncAlways})
	reg := RegisterGraphRequest{Name: "g", Generator: "erdos-renyi", N: 50, M: 200, Directed: true, Seed: 9}
	if code, body := postJSON(t, ts.URL+"/graphs", reg, nil); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}
	// dynamic.Commit would apply this (add-vertex ignores u); the WAL
	// codec cannot encode it. The whole batch must 400 with no epoch moved.
	if code, _ := postNDJSON(t, ts.URL+"/graphs/g/mutate", `{"op":"add-vertex","u":-1}`, nil); code != http.StatusBadRequest {
		t.Fatalf("unencodable batch: status %d, want 400", code)
	}
	entry, _ := srv.Registry().Get("g")
	if entry.Dyn.Epoch() != 0 {
		t.Fatalf("epoch advanced to %d without a WAL record", entry.Dyn.Epoch())
	}
	// The log is not poisoned: a clean batch still commits durably and a
	// restart recovers it.
	var mut MutateResponse
	if code, body := postNDJSON(t, ts.URL+"/graphs/g/mutate", `{"op":"add-vertex"}`, &mut); code != http.StatusOK {
		t.Fatalf("clean batch after rejected one: %d %s", code, body)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, _, _ := newDurableServer(t, dir, store.Config{Fsync: store.FsyncAlways})
	recs, err := srv2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Epoch() != 1 {
		t.Fatalf("recovery after rejected batch: %d graphs, epoch %d", len(recs), recs[0].Epoch())
	}
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteRemovesGraphSessionsAndDisk(t *testing.T) {
	dir := t.TempDir()
	srv, ts, _ := newDurableServer(t, dir, store.Config{Fsync: store.FsyncAlways})
	reg := RegisterGraphRequest{Name: "doomed", Generator: "erdos-renyi", N: 100, M: 400, Directed: true, Seed: 7}
	if code, body := postJSON(t, ts.URL+"/graphs", reg, nil); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}
	// Warm a session so Drop has something to evict.
	solveReq := SolveRequest{Seeds: []int{1}, Budget: 2, Theta: 200, Seed: 1, Workers: 2, EvalRounds: -1}
	if code, body := postJSON(t, ts.URL+"/graphs/doomed/solve", solveReq, nil); code != http.StatusOK {
		t.Fatalf("solve: %d %s", code, body)
	}
	if !srv.Sessions().Contains(SessionKey{Graph: "doomed", Diffusion: core.DiffusionIC}) {
		t.Fatal("no warm session to test Drop against")
	}

	code, body := httpDelete(t, ts.URL+"/graphs/doomed")
	if code != http.StatusOK {
		t.Fatalf("delete: %d %s", code, body)
	}
	if _, ok := srv.Registry().Get("doomed"); ok {
		t.Error("graph still registered after DELETE")
	}
	if srv.Sessions().Contains(SessionKey{Graph: "doomed", Diffusion: core.DiffusionIC}) {
		t.Error("warm session survived DELETE")
	}
	if _, err := os.Stat(filepath.Join(dir, "graphs", "doomed")); !os.IsNotExist(err) {
		t.Error("on-disk state survived DELETE")
	}
	// Idempotence-ish: a second delete is a 404.
	if code, _ := httpDelete(t, ts.URL+"/graphs/doomed"); code != http.StatusNotFound {
		t.Errorf("second delete: %d, want 404", code)
	}
	// The name is reusable.
	if code, body := postJSON(t, ts.URL+"/graphs", reg, nil); code != http.StatusCreated {
		t.Errorf("re-register freed name: %d %s", code, body)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteWorksWithoutStore covers the in-memory server's DELETE.
func TestDeleteWorksWithoutStore(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerTestGraphs(t, ts)
	if code, body := httpDelete(t, ts.URL+"/graphs/g1"); code != http.StatusOK {
		t.Fatalf("delete: %d %s", code, body)
	}
	resp, err := http.Get(ts.URL + "/graphs")
	if err != nil {
		t.Fatal(err)
	}
	var list []GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].Name != "g2" {
		t.Fatalf("list after delete = %+v", list)
	}
}

func TestStatsReportPersistCounters(t *testing.T) {
	dir := t.TempDir()
	srv, ts, _ := newDurableServer(t, dir, store.Config{Fsync: store.FsyncAlways})
	reg := RegisterGraphRequest{Name: "g", Generator: "erdos-renyi", N: 100, M: 400, Directed: true, Seed: 8}
	if code, body := postJSON(t, ts.URL+"/graphs", reg, nil); code != http.StatusCreated {
		t.Fatalf("register: %d %s", code, body)
	}
	entry, _ := srv.Registry().Get("g")
	g0, _ := entry.Current()
	e := g0.Edges()[0]
	line := fmt.Sprintf("{\"op\":\"set-prob\",\"u\":%d,\"v\":%d,\"p\":0.5}\n", e.From, e.To)
	if code, body := postNDJSON(t, ts.URL+"/graphs/g/mutate", line, nil); code != http.StatusOK {
		t.Fatalf("mutate: %d %s", code, body)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Persist == nil {
		t.Fatal("stats.persist missing on a durable server")
	}
	if stats.Persist.FsyncPolicy != "always" || stats.Persist.WALAppends != 1 ||
		stats.Persist.WALBytes == 0 || stats.Persist.WALFsyncs != 1 {
		t.Errorf("persist stats = %+v", stats.Persist)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// An in-memory server reports no persist section.
	_, ts2 := newTestServer(t, Config{})
	resp, err = http.Get(ts2.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats2 StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats2.Persist != nil {
		t.Errorf("in-memory server reports persist stats: %+v", stats2.Persist)
	}
}
