package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/imin-dev/imin/internal/core"
	"github.com/imin-dev/imin/internal/graph"
)

// postNDJSON posts raw NDJSON lines to a mutate endpoint.
func postNDJSON(t *testing.T, url, body string, out any) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw.Bytes(), out); err != nil {
			t.Fatalf("decode %s: %v (body %s)", url, err, raw.String())
		}
	}
	return resp.StatusCode, raw.String()
}

// TestMutateEndpointEpochAndRepair is the end-to-end serving contract:
// mutate a graph under a warm ReuseSamples session, and the next solve —
// answered from the repaired pool without drawing a single new sample —
// must return exactly what a cold solve on the mutated topology returns.
func TestMutateEndpointEpochAndRepair(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	registerTestGraphs(t, ts)

	solveReq := SolveRequest{
		Seeds: []int{2, 5}, Budget: 4, Algorithm: "advanced-greedy",
		Theta: 300, Seed: 9, Workers: 2, ReuseSamples: true, EvalRounds: -1,
	}
	var before SolveResponse
	if code, body := postJSON(t, ts.URL+"/graphs/g1/solve", solveReq, &before); code != http.StatusOK {
		t.Fatalf("pre-mutation solve: status %d, body %s", code, body)
	}

	// Mutate: drop one edge the pre-mutation graph certainly has, perturb
	// another, and add a fresh one.
	entry, _ := srv.Registry().Get("g1")
	g0, epoch0 := entry.Current()
	if epoch0 != 0 {
		t.Fatalf("fresh graph at epoch %d", epoch0)
	}
	edges := g0.Edges()
	e0, e1 := edges[0], edges[len(edges)/2]
	var addU, addV graph.V
	for u := graph.V(0); int(u) < g0.N(); u++ {
		for v := graph.V(0); int(v) < g0.N(); v++ {
			if u != v && !g0.HasEdge(u, v) {
				addU, addV = u, v
			}
		}
	}
	lines := fmt.Sprintf(`{"op":"remove-edge","u":%d,"v":%d}
{"op":"set-prob","u":%d,"v":%d,"p":0.42}
{"op":"add-edge","u":%d,"v":%d,"p":0.3}
`, e0.From, e0.To, e1.From, e1.To, addU, addV)

	var mut MutateResponse
	if code, body := postNDJSON(t, ts.URL+"/graphs/g1/mutate", lines, &mut); code != http.StatusOK {
		t.Fatalf("mutate: status %d, body %s", code, body)
	}
	if mut.Epoch != 1 || mut.Applied != 3 || mut.EdgesRemoved != 1 || mut.ProbsChanged != 1 || mut.EdgesAdded != 1 {
		t.Fatalf("mutate response = %+v", mut)
	}
	if mut.Edges != g0.M() {
		t.Fatalf("edge count %d, want unchanged %d (one added, one removed)", mut.Edges, g0.M())
	}
	// The warm IC session must have been eagerly advanced, its pool
	// repaired rather than dropped, keeping most samples.
	if mut.Repair.SessionsAdvanced != 1 || mut.Repair.PoolsRepaired != 1 || mut.Repair.PoolsDropped != 0 {
		t.Fatalf("repair stats = %+v, want 1 session advanced with 1 pool repaired", mut.Repair)
	}
	if mut.Repair.SamplesRedrawn == 0 || mut.Repair.SamplesKept == 0 {
		t.Fatalf("repair stats = %+v — degenerate repair", mut.Repair)
	}

	// Warm solve on the mutated graph: zero samples drawn, bit-identical to
	// a cold solve on the mutated snapshot.
	var after SolveResponse
	if code, body := postJSON(t, ts.URL+"/graphs/g1/solve", solveReq, &after); code != http.StatusOK {
		t.Fatalf("post-mutation solve: status %d, body %s", code, body)
	}
	if after.SampledGraphs != 0 {
		t.Errorf("post-mutation warm solve drew %d samples, want 0", after.SampledGraphs)
	}
	g1, epoch1 := entry.Current()
	if epoch1 != 1 {
		t.Fatalf("epoch after mutate = %d", epoch1)
	}
	cold, err := core.Solve(g1, []graph.V{2, 5}, 4, core.AdvancedGreedy,
		core.Options{Theta: 300, Seed: 9, Workers: 2, ReuseSamples: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after.Blockers, verticesToInts(cold.Blockers)) {
		t.Errorf("warm blockers after mutation %v != cold blockers %v", after.Blockers, cold.Blockers)
	}
	if reflect.DeepEqual(after.Blockers, before.Blockers) {
		// Not a correctness requirement, but with a removed high-traffic
		// edge the instance genuinely changed; identical output would
		// suggest the solve ignored the mutation.
		t.Logf("note: blockers unchanged across mutation (%v)", after.Blockers)
	}

	// GET /graphs/{id} and /stats reflect the epoch and repair counters.
	resp, err := http.Get(ts.URL + "/graphs/g1")
	if err != nil {
		t.Fatal(err)
	}
	var info GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Epoch != 1 || info.PendingDeltas != 3 {
		t.Errorf("GraphInfo = %+v, want epoch 1, 3 pending deltas", info)
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Mutations.Batches != 1 || stats.Mutations.Mutations != 3 ||
		stats.Mutations.SessionsAdvanced != 1 || stats.Mutations.PoolsRepaired != 1 {
		t.Errorf("stats.Mutations = %+v", stats.Mutations)
	}
}

func TestMutateRejectsBadBatches(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerTestGraphs(t, ts)

	if code, _ := postNDJSON(t, ts.URL+"/graphs/nope/mutate", `{"op":"add-vertex"}`, nil); code != http.StatusNotFound {
		t.Errorf("unknown graph: status %d, want 404", code)
	}
	if code, _ := postNDJSON(t, ts.URL+"/graphs/g1/mutate", "", nil); code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", code)
	}
	if code, _ := postNDJSON(t, ts.URL+"/graphs/g1/mutate", `{"op":"add-vertex"`, nil); code != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", code)
	}
	// A batch with one invalid line is rejected atomically: the valid
	// leading line must not apply.
	bad := `{"op":"add-vertex"}
{"op":"add-edge","u":0,"v":99999,"p":0.5}
`
	if code, body := postNDJSON(t, ts.URL+"/graphs/g1/mutate", bad, nil); code != http.StatusBadRequest {
		t.Errorf("invalid line: status %d, body %s, want 400", code, body)
	}
	resp, err := http.Get(ts.URL + "/graphs/g1")
	if err != nil {
		t.Fatal(err)
	}
	var info GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Epoch != 0 {
		t.Errorf("rejected batches advanced the epoch to %d", info.Epoch)
	}
}

// TestMutateManyEpochsStaysConsistent interleaves mutation batches and warm
// solves and checks each solve against a cold reference on that epoch's
// snapshot — the sustained evolving-workload loop the subsystem exists for.
func TestMutateManyEpochsStaysConsistent(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	registerTestGraphs(t, ts)
	solveReq := SolveRequest{
		Seeds: []int{3}, Budget: 3, Algorithm: "greedy-replace",
		Theta: 200, Seed: 4, Workers: 2, ReuseSamples: true, EvalRounds: -1,
	}
	entry, _ := srv.Registry().Get("g2")

	for round := 0; round < 4; round++ {
		g, _ := entry.Current()
		e := g.Edges()[round*37%g.M()]
		body := fmt.Sprintf("{\"op\":\"set-prob\",\"u\":%d,\"v\":%d,\"p\":%g}\n", e.From, e.To, 0.05+0.1*float64(round))
		var mut MutateResponse
		if code, b := postNDJSON(t, ts.URL+"/graphs/g2/mutate", body, &mut); code != http.StatusOK {
			t.Fatalf("round %d mutate: status %d, body %s", round, code, b)
		}
		if mut.Epoch != uint64(round+1) {
			t.Fatalf("round %d: epoch %d", round, mut.Epoch)
		}
		var got SolveResponse
		if code, b := postJSON(t, ts.URL+"/graphs/g2/solve", solveReq, &got); code != http.StatusOK {
			t.Fatalf("round %d solve: status %d, body %s", round, code, b)
		}
		snap, _ := entry.Current()
		cold, err := core.Solve(snap, []graph.V{3}, 3, core.GreedyReplace,
			core.Options{Theta: 200, Seed: 4, Workers: 2, ReuseSamples: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Blockers, verticesToInts(cold.Blockers)) {
			t.Fatalf("round %d: warm %v != cold %v", round, got.Blockers, cold.Blockers)
		}
		if round > 0 && got.SampledGraphs != 0 {
			t.Errorf("round %d: warm solve drew %d samples", round, got.SampledGraphs)
		}
	}
}

// TestMutateWhileSolveQueued exercises the lock ordering: a mutate request
// queues for the session behind an in-flight solve and must still complete.
func TestMutateWhileSolveQueued(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxConcurrent: 2})
	registerTestGraphs(t, ts)

	// Warm the session so the mutate call has something to migrate.
	solveReq := SolveRequest{Seeds: []int{1}, Budget: 2, Theta: 200, Seed: 1,
		Workers: 2, ReuseSamples: true, EvalRounds: -1, Algorithm: "greedy-replace"}
	if code, body := postJSON(t, ts.URL+"/graphs/g1/solve", solveReq, nil); code != http.StatusOK {
		t.Fatalf("warmup: %d %s", code, body)
	}

	done := make(chan error, 1)
	go func() {
		_, err := http.Post(ts.URL+"/graphs/g1/solve", "application/json",
			strings.NewReader(`{"seeds":[1],"budget":4,"theta":2000,"seed":2,"eval_rounds":-1}`))
		done <- err
	}()

	entry, _ := srv.Registry().Get("g1")
	g, _ := entry.Current()
	e := g.Edges()[0]
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/graphs/g1/mutate",
		strings.NewReader(fmt.Sprintf("{\"op\":\"set-prob\",\"u\":%d,\"v\":%d,\"p\":0.2}\n", e.From, e.To)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate while solving: status %d", resp.StatusCode)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
