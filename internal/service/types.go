// Package service is the blocking-as-a-service layer: a long-running HTTP
// server that keeps graphs and per-graph solver sessions warm so repeated
// influence-minimization requests skip all setup cost (graph load,
// multi-seed unification, sampler/estimator scratch allocation).
//
// It is built from three parts:
//
//   - Registry: named, epoch-versioned graphs registered once (from an
//     edge-list file, a Table IV stand-in dataset, or a random-graph
//     generator), mutated through atomic NDJSON batches, and shared by
//     every request that names them as immutable per-epoch snapshots.
//   - SessionCache: an LRU of warm core.Session values keyed by
//     (graph, diffusion model), each serializing its callers to honor the
//     estimator's single-caller constraint.
//   - Server: the HTTP/JSON front end with a bounded solve worker pool and
//     per-request timeout/cancellation plumbed down into the greedy loops.
//
// With a durable store attached (internal/store, daemon flag -data-dir),
// registrations and mutation batches are written through to a per-graph
// write-ahead log before they are acknowledged, checkpointed in the
// background, and recovered to the exact pre-crash epoch at startup.
package service

import (
	"time"

	"github.com/imin-dev/imin/internal/diag"
	"github.com/imin-dev/imin/internal/obs"
)

// RegisterGraphRequest is the body of POST /graphs. Name is required, plus
// exactly one graph source: Path (an edge-list or .bin file under the
// server's data directory), Dataset (a Table IV stand-in, generated at
// Scale), or Generator (a random-graph family).
type RegisterGraphRequest struct {
	Name string `json:"name"`

	// Path names a graph file relative to the server's data directory:
	// SNAP-style edge list ("u v [p]" lines) or the library's .bin format.
	Path       string `json:"path,omitempty"`
	Undirected bool   `json:"undirected,omitempty"` // edge-list files only

	// Dataset generates a synthetic stand-in for one of the paper's
	// Table IV datasets at Scale (fraction of published size, default 0.02).
	Dataset string  `json:"dataset,omitempty"`
	Scale   float64 `json:"scale,omitempty"`

	// Generator is one of "preferential-attachment" (N, EdgesPerVertex,
	// Directed), "erdos-renyi" (N, M, Directed) or "watts-strogatz"
	// (N, K, Beta).
	Generator      string  `json:"generator,omitempty"`
	N              int     `json:"n,omitempty"`
	M              int     `json:"m,omitempty"`
	EdgesPerVertex float64 `json:"edges_per_vertex,omitempty"`
	K              int     `json:"k,omitempty"`
	Beta           float64 `json:"beta,omitempty"`
	Directed       bool    `json:"directed,omitempty"`

	// ProbModel assigns edge probabilities: "TR" (trivalency), "WC"
	// (weighted cascade) or "keep" (use the source's probabilities).
	// Default: "TR" for generated graphs, "keep" for files.
	ProbModel string `json:"prob_model,omitempty"`
	// Seed drives dataset/generator randomness and TR assignment.
	Seed uint64 `json:"seed,omitempty"`
}

// GraphInfo describes one registered graph (GET /graphs).
type GraphInfo struct {
	Name     string `json:"name"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	// Epoch counts committed mutation batches (0 = as registered);
	// PendingDeltas is the mutations applied since the overlay was last
	// compacted into a fresh CSR, Compactions how often that happened.
	Epoch         uint64    `json:"epoch"`
	PendingDeltas int       `json:"pending_deltas"`
	Compactions   int64     `json:"compactions"`
	Source        string    `json:"source"`
	RegisteredAt  time.Time `json:"registered_at"`
	// Durable reports that the graph is backed by the daemon's durable
	// store (-data-dir): mutations are write-ahead logged before they are
	// acknowledged and the graph survives restarts. Recovered additionally
	// marks that this instance was restored from disk at startup rather
	// than registered over the API.
	Durable   bool `json:"durable,omitempty"`
	Recovered bool `json:"recovered,omitempty"`
	// Degraded marks a graph whose durable log failed: reads and solves
	// keep serving from the in-memory epoch, mutates return 503 until the
	// background self-heal checkpoints onto a fresh WAL generation.
	// DegradedReason is the persist failure that caused the transition.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
}

// DeleteResponse reports DELETE /graphs/{id}: the graph is unregistered,
// its warm sessions dropped, and (when durable) its on-disk state removed.
type DeleteResponse struct {
	Graph   string `json:"graph"`
	Deleted bool   `json:"deleted"`
	// Epoch is the graph's final epoch at deletion.
	Epoch uint64 `json:"epoch"`
}

// MutateResponse reports one committed mutation batch
// (POST /graphs/{id}/mutate). The request body is NDJSON: one mutation
// object per line, {"op": "add-edge"|"remove-edge"|"set-prob"|"add-vertex"|
// "remove-vertex", "u": ..., "v": ..., "p": ...}, applied atomically — any
// invalid line rejects the whole batch with 400 and the graph unchanged.
type MutateResponse struct {
	Graph string `json:"graph"`
	// Epoch is the graph's epoch after this batch.
	Epoch   uint64 `json:"epoch"`
	Applied int    `json:"applied"`
	// Per-operation counts; EdgesRemoved includes edges dropped by
	// remove-vertex.
	EdgesAdded      int `json:"edges_added,omitempty"`
	EdgesRemoved    int `json:"edges_removed,omitempty"`
	ProbsChanged    int `json:"probs_changed,omitempty"`
	VerticesAdded   int `json:"vertices_added,omitempty"`
	VerticesRemoved int `json:"vertices_removed,omitempty"`
	// ChangedSources is how many vertices had their out-adjacency changed —
	// the dirty-sample criterion driving pool repair.
	ChangedSources int `json:"changed_sources"`
	// Compacted reports that this batch folded the delta overlay into a
	// fresh base CSR.
	Compacted bool `json:"compacted,omitempty"`
	// Vertices and Edges are the graph's new totals.
	Vertices int `json:"vertices"`
	Edges    int `json:"edges"`
	// Repair reports the eager migration of the graph's warm sessions to
	// the new epoch.
	Repair RepairStats `json:"repair"`
}

// RepairStats reports how warm solver state crossed a mutation batch.
type RepairStats struct {
	// SessionsAdvanced migrated incrementally (pools repaired in place);
	// SessionsReset were too far behind the changelog and start cold.
	SessionsAdvanced int `json:"sessions_advanced"`
	SessionsReset    int `json:"sessions_reset"`
	// PoolsRepaired kept their sample arenas with only dirty samples
	// redrawn; PoolsDropped had to be discarded (vertex-count change under
	// a multi-seed instance).
	PoolsRepaired int `json:"pools_repaired"`
	PoolsDropped  int `json:"pools_dropped"`
	// SamplesRedrawn and SamplesKept partition the repaired pools' samples.
	SamplesRedrawn int64 `json:"samples_redrawn"`
	SamplesKept    int64 `json:"samples_kept"`
}

// MutationStats aggregates mutation activity across all graphs (GET /stats).
type MutationStats struct {
	Batches          int64 `json:"batches"`
	Mutations        int64 `json:"mutations"`
	Compactions      int64 `json:"compactions"`
	SessionsAdvanced int64 `json:"sessions_advanced"`
	SessionsReset    int64 `json:"sessions_reset"`
	PoolsRepaired    int64 `json:"pools_repaired"`
	PoolsDropped     int64 `json:"pools_dropped"`
	SamplesRedrawn   int64 `json:"samples_redrawn"`
	SamplesKept      int64 `json:"samples_kept"`
}

// SolveRequest is the body of POST /graphs/{id}/solve.
type SolveRequest struct {
	// Seeds are explicit misinformation-seed vertex ids; when empty,
	// NumSeeds random out-degree-positive vertices are drawn from Seed.
	Seeds    []int `json:"seeds,omitempty"`
	NumSeeds int   `json:"num_seeds,omitempty"`
	// Budget is the maximum number of vertices to block.
	Budget int `json:"budget"`
	// Algorithm: rand, outdegree, baseline-greedy, advanced-greedy or
	// greedy-replace (default).
	Algorithm string `json:"algorithm,omitempty"`
	// Model: "IC" (default) or "LT".
	Model string `json:"model,omitempty"`
	// Theta is Algorithm 2's sample count per greedy round (default: the
	// server's configured default, normally 10000; clamped to the server's
	// MaxTheta — the effective value is echoed in the response).
	Theta int `json:"theta,omitempty"`
	// MCSRounds is baseline-greedy's Monte-Carlo rounds per evaluation
	// (clamped to the server's MaxEvalRounds; effective value echoed).
	MCSRounds int `json:"mcs_rounds,omitempty"`
	// EvalRounds is the Monte-Carlo rounds for the before/after spread
	// report; 0 uses the server default, -1 skips the spread evaluation
	// (clamped to the server's MaxEvalRounds).
	EvalRounds int `json:"eval_rounds,omitempty"`
	// Seed makes the request reproducible.
	Seed uint64 `json:"seed,omitempty"`
	// Workers bounds the solve's internal parallelism (estimator shards,
	// spread evaluation). 0 uses the server's -workers default; values are
	// clamped to GOMAXPROCS. For reuse_samples solves the blocker output is
	// identical at every worker count (the estimator's sharded reduction is
	// deterministic), so workers is purely a latency/parallelism knob there;
	// fresh-sampling solves tie their rng streams to the worker count, so
	// equal workers is part of their reproducibility key.
	Workers int `json:"workers,omitempty"`
	// ReuseSamples draws the θ live-edge samples once and reuses the pool
	// across greedy rounds through the delta-maintained incremental
	// estimator; the pool is cached in the warm session keyed by
	// (seeds, seed, theta), so repeated solves skip sampling entirely.
	// Costs server memory proportional to θ × average sample size.
	ReuseSamples bool `json:"reuse_samples,omitempty"`
	// PoolEncoding selects the cached pool's arena layout for reuse_samples
	// solves: "flat" (default; fastest scans) or "compressed" (delta+varint
	// sections, typically well under half the memory at a small decode cost
	// per reprocessed sample). Blocker output is bit-identical across
	// encodings. Ignored without reuse_samples.
	PoolEncoding string `json:"pool_encoding,omitempty"`
	// TimeoutMS caps the solve; 0 uses the server default. On expiry the
	// partial blocker set is returned with timed_out set.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Trace returns the solve's phase-span tree inline in the response
	// (queue waits, session migration, per-greedy-round timings with
	// dirty-sample counts). Purely observational: the blocker output is
	// bit-identical with or without it.
	Trace bool `json:"trace,omitempty"`
}

// SolveResponse reports a solve.
type SolveResponse struct {
	Graph     string `json:"graph"`
	Algorithm string `json:"algorithm"`
	Model     string `json:"model"`
	Seeds     []int  `json:"seeds"`
	Blockers  []int  `json:"blockers"`
	// SpreadBefore/SpreadAfter are Monte-Carlo estimates of the expected
	// spread with no blockers and with the returned blockers; omitted when
	// eval_rounds = -1.
	SpreadBefore *float64 `json:"spread_before,omitempty"`
	SpreadAfter  *float64 `json:"spread_after,omitempty"`
	ReductionPct *float64 `json:"reduction_pct,omitempty"`
	// Theta and MCSRounds echo the effective (defaulted, clamped) sample
	// counts, Workers the effective worker count (0 = server default);
	// SampledGraphs and MCSSimulations are the solver's cost counters.
	Theta          int   `json:"theta"`
	MCSRounds      int   `json:"mcs_rounds"`
	Workers        int   `json:"workers,omitempty"`
	SampledGraphs  int64 `json:"sampled_graphs,omitempty"`
	MCSSimulations int64 `json:"mcs_simulations,omitempty"`
	// SolveMS is the blocker-selection wall clock; TotalMS includes seed
	// resolution and the spread evaluations.
	SolveMS float64 `json:"solve_ms"`
	TotalMS float64 `json:"total_ms"`
	// TimedOut/Canceled report an early exit with a partial blocker set.
	TimedOut bool `json:"timed_out,omitempty"`
	Canceled bool `json:"canceled,omitempty"`
	// SessionCacheHit reports whether the request found a warm session for
	// (graph, model). The session caches prepared state per seed set, so a
	// hit skips all setup only when this seed set was solved recently; a
	// new seed set still pays instance+estimator construction once.
	SessionCacheHit bool `json:"session_cache_hit"`
	// RequestID echoes the X-Request-Id the middleware accepted or
	// generated, matching the structured log lines and trace entries.
	RequestID string `json:"request_id,omitempty"`
	// Cost is the per-solve cost model: queue waits, migrate/solve/eval
	// time, rounds, and sample counts. Always present; purely
	// observational — blockers are bit-identical with accounting on or
	// off.
	Cost *diag.SolveCost `json:"cost,omitempty"`
	// Trace is the solve's span tree, present when the request set
	// "trace": true.
	Trace *obs.TraceOut `json:"trace,omitempty"`
}

// BatchSolveRequest is the body of POST /graphs/{id}/solve-batch: a list
// of solve requests against one graph, answered through the same bounded
// worker pool and warm sessions as single solves. Items that share a
// diffusion model share one warm session, so a homogeneous batch pays
// instance preparation and (with reuse_samples and equal seed/theta) pool
// construction once, then streams b-round solves off the cached state.
type BatchSolveRequest struct {
	// Items are solved independently; item i is reported with index i.
	// Length is capped by the server's MaxBatchItems.
	Items []SolveRequest `json:"items"`
}

// BatchItemResult is one line of the solve-batch NDJSON response stream:
// exactly one of Result or Error is set. Lines are written in completion
// order — Index ties them back to the request's items array.
type BatchItemResult struct {
	Index  int            `json:"index"`
	Result *SolveResponse `json:"result,omitempty"`
	Error  string         `json:"error,omitempty"`
}

// PersistStats reports the durable store's activity (GET /stats). Present
// only when the daemon runs with -data-dir.
type PersistStats struct {
	// FsyncPolicy is the WAL durability policy in force ("always",
	// "interval" or "none").
	FsyncPolicy string `json:"fsync_policy"`
	// WALAppends/WALBytes/WALFsyncs count write-ahead-log activity since
	// startup; Checkpoints and CheckpointFailures count background
	// snapshot+truncate cycles.
	WALAppends         int64 `json:"wal_appends"`
	WALBytes           int64 `json:"wal_bytes"`
	WALFsyncs          int64 `json:"wal_fsyncs"`
	Checkpoints        int64 `json:"checkpoints"`
	CheckpointFailures int64 `json:"checkpoint_failures"`
	// RecoveredGraphs/ReplayedBatches describe this process's startup
	// recovery; TruncatedTails counts WALs whose torn or corrupt tail was
	// cut off during it.
	RecoveredGraphs int64 `json:"recovered_graphs"`
	ReplayedBatches int64 `json:"replayed_batches"`
	TruncatedTails  int64 `json:"truncated_tails"`
	// DegradedGraphs lists graphs currently in degraded read-only mode;
	// DegradedEnters counts transitions into it since startup, SelfHeals
	// how many background rescue checkpoints restored writability.
	DegradedGraphs []string `json:"degraded_graphs,omitempty"`
	DegradedEnters int64    `json:"degraded_enters"`
	SelfHeals      int64    `json:"self_heals"`
}

// StatsResponse is GET /stats: registry size, session-cache counters,
// mutation/repair activity, durability counters, and server load.
type StatsResponse struct {
	Graphs        int           `json:"graphs"`
	Sessions      CacheStats    `json:"sessions"`
	Mutations     MutationStats `json:"mutations"`
	Persist       *PersistStats `json:"persist,omitempty"`
	InFlight      int64         `json:"in_flight"`
	MaxConcurrent int           `json:"max_concurrent"`
	UptimeSeconds float64       `json:"uptime_seconds"`
	// Sheds counts requests answered 429 because their admission wait
	// exceeded the queue bound; Panics counts handler panics recovered by
	// the middleware (each one a 500 instead of a dead daemon).
	Sheds  int64 `json:"sheds"`
	Panics int64 `json:"panics"`
}

// ErrorResponse is the JSON error envelope for every non-2xx response.
// RequestID is set on errors the observability middleware writes (panic
// 500s), correlating the body with the X-Request-Id header and log lines.
type ErrorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// TracesResponse is GET /debug/traces: the bounded in-memory ring of
// recent solve traces, newest first.
type TracesResponse struct {
	Traces []*obs.TraceOut `json:"traces"`
}

// BundlesResponse is GET /debug/bundles: the flight recorder's retained
// diagnostic bundles, newest first.
type BundlesResponse struct {
	Bundles []diag.BundleInfo `json:"bundles"`
}
