package graph

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.json")
	m := &Manifest{
		Version: ManifestVersion, Name: "g1", Source: "dataset X @ 0.02, TR",
		ProbModel: "TR", Epoch: 42, WALGen: 3, Snapshot: "snap-3.bin",
		N: 100, M: 500, UpdatedAt: time.Now().UTC(),
	}
	if err := WriteManifestFile(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != m.Name || got.Epoch != m.Epoch || got.WALGen != m.WALGen ||
		got.Snapshot != m.Snapshot || got.N != m.N || got.M != m.M || got.ProbModel != m.ProbModel {
		t.Fatalf("round trip mutated manifest: %+v vs %+v", got, m)
	}
	// No temp file left behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temporary manifest file left behind: %v", err)
	}
}

func TestManifestAtomicReplace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.json")
	m := &Manifest{Version: ManifestVersion, Name: "g", Epoch: 1, WALGen: 0, Snapshot: "snap-0.bin"}
	if err := WriteManifestFile(path, m); err != nil {
		t.Fatal(err)
	}
	m.Epoch, m.WALGen, m.Snapshot = 9, 2, "snap-2.bin"
	if err := WriteManifestFile(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 9 || got.WALGen != 2 || got.Snapshot != "snap-2.bin" {
		t.Fatalf("replace did not take: %+v", got)
	}
}

func TestManifestValidation(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]*Manifest{
		"bad version":   {Version: 99, Name: "g", Snapshot: "s.bin"},
		"no name":       {Version: ManifestVersion, Snapshot: "s.bin"},
		"no snapshot":   {Version: ManifestVersion, Name: "g"},
		"path snapshot": {Version: ManifestVersion, Name: "g", Snapshot: "../escape.bin"},
		"negative size": {Version: ManifestVersion, Name: "g", Snapshot: "s.bin", N: -1},
	}
	for name, m := range cases {
		if err := WriteManifestFile(filepath.Join(dir, "m.json"), m); err == nil {
			t.Errorf("%s: write accepted invalid manifest", name)
		}
	}
	// Corrupt JSON on disk is rejected at read.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifestFile(bad); err == nil {
		t.Error("corrupt manifest JSON accepted")
	}
}

// writeBinaryV1 re-creates the legacy v1 layout (no CRC footer) so the
// back-compat path stays covered even though the writer now emits v2.
func writeBinaryV1(g *Graph) []byte {
	var buf bytes.Buffer
	buf.WriteString("IMGB")
	hdr := make([]byte, 4+8+8)
	binary.LittleEndian.PutUint32(hdr[0:], 1)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(g.N()))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(g.M()))
	buf.Write(hdr)
	w4 := make([]byte, 4)
	for _, x := range g.outStart {
		binary.LittleEndian.PutUint32(w4, uint32(x))
		buf.Write(w4)
	}
	for _, x := range g.outTo {
		binary.LittleEndian.PutUint32(w4, uint32(x))
		buf.Write(w4)
	}
	w8 := make([]byte, 8)
	for _, p := range g.outP {
		binary.LittleEndian.PutUint64(w8, math.Float64bits(p))
		buf.Write(w8)
	}
	return buf.Bytes()
}

func TestBinaryReadsLegacyV1(t *testing.T) {
	g := toy()
	g2, err := ReadBinary(bytes.NewReader(writeBinaryV1(g)))
	if err != nil {
		t.Fatalf("v1 file rejected: %v", err)
	}
	assertGraphsEqual(t, g, g2)
}

// TestBinaryChecksumDetectsCorruption flips one bit in every byte position
// of a v2 file in turn: each corruption must be rejected — by the CRC
// footer if nothing structural catches it first — and never load silently.
func TestBinaryChecksumDetectsCorruption(t *testing.T) {
	g := toy()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for i := range good {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x10
		if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
			t.Fatalf("bit flip at offset %d loaded without error", i)
		}
	}
	// A truncated footer is detected too.
	if _, err := ReadBinary(bytes.NewReader(good[:len(good)-2])); err == nil {
		t.Error("truncated checksum footer accepted")
	}
	// The pristine file still loads.
	if _, err := ReadBinary(bytes.NewReader(good)); err != nil {
		t.Errorf("pristine v2 file rejected: %v", err)
	}
}
