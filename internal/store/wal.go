package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"

	"github.com/imin-dev/imin/internal/faultfs"
)

// The write-ahead log is a flat file of framed records, one per committed
// mutation batch:
//
//	u32 payload length | u32 CRC32-IEEE(payload) | payload
//	payload = u64 epoch | dynamic.EncodeBatch(muts)
//
// Appends are a single buffered write; a crash can therefore leave at most
// one torn record at the tail, which the length prefix and CRC detect on
// recovery — the tail is truncated at the last intact record and nothing
// partial is ever replayed.

// FsyncPolicy selects when WAL appends reach stable storage.
type FsyncPolicy string

const (
	// FsyncAlways fsyncs after every append, before the append returns:
	// an acknowledged mutation survives power loss.
	FsyncAlways FsyncPolicy = "always"
	// FsyncInterval fsyncs on a background timer: an acknowledged mutation
	// survives a process crash (the write has left the process), but the
	// last interval's worth may be lost to power failure or a kernel panic.
	FsyncInterval FsyncPolicy = "interval"
	// FsyncNone never fsyncs explicitly; the OS flushes at its leisure.
	FsyncNone FsyncPolicy = "none"
)

// ParseFsyncPolicy validates a policy string (flag/config input).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(s) {
	case FsyncAlways, FsyncInterval, FsyncNone:
		return FsyncPolicy(s), nil
	}
	return "", fmt.Errorf("store: unknown fsync policy %q (want always, interval or none)", s)
}

const (
	recordHeaderLen = 8
	// MaxRecordPayload bounds one record's payload. The serving layer caps
	// mutation batches far below this; anything larger in a WAL is
	// corruption and must not drive a giant allocation.
	MaxRecordPayload = 64 << 20
)

// ErrCorruptRecord reports a WAL record whose frame is intact enough to
// read but whose content fails validation (CRC mismatch, absurd length).
var ErrCorruptRecord = errors.New("store: corrupt WAL record")

// errTornRecord reports a record cut short by the end of the file — the
// expected shape of a crash mid-append.
var errTornRecord = errors.New("store: torn WAL record at end of file")

// appendRecord frames (epoch, batch) onto dst.
func appendRecord(dst []byte, epoch uint64, batch []byte) []byte {
	payloadLen := 8 + len(batch)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(payloadLen))
	var eb [8]byte
	binary.LittleEndian.PutUint64(eb[:], epoch)
	crc := crc32.Update(crc32.ChecksumIEEE(eb[:]), crc32.IEEETable, batch)
	dst = binary.LittleEndian.AppendUint32(dst, crc)
	dst = binary.LittleEndian.AppendUint64(dst, epoch)
	return append(dst, batch...)
}

// decodeRecord parses one record from the head of data. It returns the
// record's epoch, its batch payload (a sub-slice of data — never a copy,
// never past the frame) and the total bytes consumed. Truncation yields
// errTornRecord, validation failures ErrCorruptRecord; no input panics,
// over-reads, or allocates beyond the slice it was handed.
func decodeRecord(data []byte) (epoch uint64, batch []byte, n int, err error) {
	if len(data) < recordHeaderLen {
		return 0, nil, 0, errTornRecord
	}
	payloadLen := int(binary.LittleEndian.Uint32(data[0:]))
	if payloadLen < 8 || payloadLen > MaxRecordPayload {
		return 0, nil, 0, fmt.Errorf("%w: payload length %d", ErrCorruptRecord, payloadLen)
	}
	if len(data) < recordHeaderLen+payloadLen {
		return 0, nil, 0, errTornRecord
	}
	wantCRC := binary.LittleEndian.Uint32(data[4:])
	payload := data[recordHeaderLen : recordHeaderLen+payloadLen]
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return 0, nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorruptRecord)
	}
	epoch = binary.LittleEndian.Uint64(payload)
	return epoch, payload[8:], recordHeaderLen + payloadLen, nil
}

// walRecord is one decoded record, with its frame's byte range in the file.
type walRecord struct {
	epoch uint64
	batch []byte
	off   int64 // frame start offset
	end   int64 // offset one past the frame
}

// scanWAL decodes every intact record of a WAL file. validLen is the byte
// offset of the first torn or corrupt record (== len(data) when the whole
// file is clean); records beyond it are unrecoverable and the caller
// truncates the file there.
func scanWAL(data []byte) (recs []walRecord, validLen int64, clean bool) {
	off := 0
	for off < len(data) {
		epoch, batch, n, err := decodeRecord(data[off:])
		if err != nil {
			return recs, int64(off), false
		}
		recs = append(recs, walRecord{epoch: epoch, batch: batch, off: int64(off), end: int64(off + n)})
		off += n
	}
	return recs, int64(off), true
}

// wal is one open write-ahead-log file.
type wal struct {
	// syncMu serializes background fsyncs against close, without ever
	// being held by append: an interval-policy fsync of a busy log must
	// not stall the appends racing it (see syncIfDirty).
	syncMu sync.Mutex
	mu     sync.Mutex
	f      faultfs.File
	path   string
	size   int64
	dirty  bool // bytes written since the last fsync
	policy FsyncPolicy
	buf    []byte // append scratch, reused across records
	err    error  // sticky: after a failed append the log is poisoned
}

// createWAL creates an empty WAL file, failing if it already exists. The
// caller fsyncs the directory once the surrounding structure is complete.
func createWAL(fs faultfs.FS, path string, policy FsyncPolicy) (*wal, error) {
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &wal{f: f, path: path, policy: policy}, nil
}

// openWAL opens an existing WAL for appending at offset size (the scanned
// valid length); anything beyond it is a torn tail and is cut off first.
func openWAL(fs faultfs.FS, path string, size int64, policy FsyncPolicy) (*wal, error) {
	f, err := fs.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(size); err != nil {
		_ = f.Close()
		return nil, err
	}
	if _, err := f.Seek(size, 0); err != nil {
		_ = f.Close()
		return nil, err
	}
	return &wal{f: f, path: path, size: size, policy: policy}, nil
}

// append frames and writes one record, fsyncing per policy. Any write or
// fsync failure poisons the log: the file's tail state is unknown, so
// later appends could leave an undetectable gap — every subsequent append
// fails with the original error until the process restarts and recovers.
func (w *wal) append(epoch uint64, batch []byte) (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	w.buf = appendRecord(w.buf[:0], epoch, batch)
	//lint:ignore lockio the append lock is what orders record frames on disk; the write must happen under it
	if _, err := w.f.Write(w.buf); err != nil {
		w.err = fmt.Errorf("store: WAL append: %w", err)
		return 0, w.err
	}
	w.size += int64(len(w.buf))
	w.dirty = true
	if w.policy == FsyncAlways {
		//lint:ignore lockio FsyncAlways acks only after the record is stable, so the fsync stays inside the append critical section
		if err := w.f.Sync(); err != nil {
			w.err = fmt.Errorf("store: WAL fsync: %w", err)
			return 0, w.err
		}
		w.dirty = false
	}
	return int64(len(w.buf)), nil
}

// syncIfDirty flushes pending appends to stable storage (interval policy's
// timer tick, and every policy's shutdown path). Reports whether an fsync
// was actually issued. The fsync syscall itself runs outside the append
// lock — a background flush of megabytes must not stall the mutate path —
// so a record appended while the fsync is in flight may or may not be
// covered by it; it is dirty again and the next tick gets it.
func (w *wal) syncIfDirty() (bool, error) {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	if w.err != nil || !w.dirty || w.f == nil {
		err := w.err
		w.mu.Unlock()
		return false, err
	}
	w.dirty = false
	f := w.f
	w.mu.Unlock()
	//lint:ignore lockio syncMu exists to serialize background fsyncs; the append lock (w.mu) is already released here
	if err := f.Sync(); err != nil {
		w.mu.Lock()
		w.err = fmt.Errorf("store: WAL fsync: %w", err)
		w.mu.Unlock()
		return false, err
	}
	return true, nil
}

// close fsyncs pending writes and closes the file. syncMu excludes a
// background fsync mid-flight, so the file cannot close under it.
func (w *wal) close() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	var err error
	if w.dirty && w.err == nil {
		//lint:ignore lockio shutdown path: both locks must be held so no append or background fsync races the final flush
		err = w.f.Sync()
	}
	//lint:ignore lockio the file may not close while an appender could still hold a reference to it
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// poisoned reports whether a failed append or fsync has permanently
// disabled this log. The serving layer uses it to decide between a plain
// transient failure and entering degraded mode.
func (w *wal) poisoned() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err != nil
}

// interval flusher support: the Store runs one flusher goroutine over all
// graphs; flushEvery normalizes a configured interval.
func flushEvery(d time.Duration) time.Duration {
	if d <= 0 {
		return 100 * time.Millisecond
	}
	return d
}
