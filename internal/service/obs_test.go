package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"regexp"
	"strings"
	"sync"
	"testing"

	"github.com/imin-dev/imin/internal/obs"
	"github.com/imin-dev/imin/internal/store"
)

// Exposition-format legality, from the Prometheus text format spec.
var (
	expoHelpRE    = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	expoTypeRE    = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	expoLabelPair = `[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["\\n])*"`
	expoSampleRE  = regexp.MustCompile(
		`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{` + expoLabelPair + `(?:,` + expoLabelPair + `)*\})? (NaN|[+-]Inf|[-+0-9.eE]+)$`)
)

// scrapeMetrics fetches /metrics, validates every line against the text
// exposition format, and returns the family type map plus all samples keyed
// by full name (with any label block) summed across duplicate keys.
func scrapeMetrics(t *testing.T, baseURL string) (map[string]string, map[string]float64) {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	types := make(map[string]string)    // family name -> counter|gauge|histogram
	samples := make(map[string]float64) // name{labels} -> value
	var curFamily string
	for i, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			m := expoHelpRE.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed HELP comment: %q", i+1, line)
			}
			curFamily = m[1]
		case strings.HasPrefix(line, "# TYPE "):
			m := expoTypeRE.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed TYPE comment: %q", i+1, line)
			}
			if m[1] != curFamily {
				t.Fatalf("line %d: TYPE for %q without preceding HELP (last HELP %q)", i+1, m[1], curFamily)
			}
			if _, dup := types[m[1]]; dup {
				t.Fatalf("line %d: family %q exposed twice", i+1, m[1])
			}
			types[m[1]] = m[2]
		default:
			m := expoSampleRE.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed sample line: %q", i+1, line)
			}
			name, labels, valStr := m[1], m[2], m[3]
			base := name
			if typ, ok := types[base]; !ok || typ == "histogram" {
				// Histogram series use the family name plus a suffix.
				base = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
					"_bucket"), "_sum"), "_count")
			}
			typ, ok := types[base]
			if !ok {
				t.Fatalf("line %d: sample %q has no TYPE line", i+1, name)
			}
			if typ == "histogram" && name == base {
				t.Fatalf("line %d: histogram %q exposed a bare series", i+1, name)
			}
			var v float64
			if _, err := fmt.Sscanf(valStr, "%g", &v); err != nil && valStr != "NaN" && !strings.HasSuffix(valStr, "Inf") {
				t.Fatalf("line %d: bad value %q", i+1, valStr)
			}
			samples[name+labels] += v
		}
	}
	return types, samples
}

// sumSamples adds every sample whose series name (before any label block)
// is exactly name.
func sumSamples(samples map[string]float64, name string) float64 {
	var total float64
	for k, v := range samples {
		base, _, _ := strings.Cut(k, "{")
		if base == name {
			total += v
		}
	}
	return total
}

// TestMetricsExposition drives a durable server through registration, warm
// and cold solves, and a mutation batch, then scrapes /metrics and checks
// (a) every line is legal exposition format and (b) the catalog covers the
// solve, mutate, WAL, checkpoint, and degraded-mode surfaces with values
// consistent with the traffic just served.
func TestMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	st, err := store.Open(t.TempDir(), store.Config{Fsync: store.FsyncAlways, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Config{Store: st, Metrics: reg})
	registerTestGraphs(t, ts)

	solveReq := SolveRequest{Seeds: []int{1, 7}, Budget: 3, Algorithm: "advanced-greedy", Theta: 150, Seed: 5, EvalRounds: -1}
	for i := 0; i < 2; i++ { // cold then warm
		if code, body := postJSON(t, ts.URL+"/graphs/g1/solve", solveReq, nil); code != http.StatusOK {
			t.Fatalf("solve %d: %d %s", i, code, body)
		}
	}
	mut := `{"op":"add-vertex"}
{"op":"add-vertex"}
{"op":"add-edge","u":0,"v":1,"p":0.3}
`
	if code, body := postNDJSON(t, ts.URL+"/graphs/g2/mutate", mut, nil); code != http.StatusOK {
		t.Fatalf("mutate: %d %s", code, body)
	}

	types, samples := scrapeMetrics(t, ts.URL)

	wantFamilies := map[string]string{
		// HTTP / request surface.
		"imind_http_requests_total":  "counter",
		"imind_http_request_seconds": "histogram",
		"imind_panics_total":         "counter",
		"imind_sheds_total":          "counter",
		// Solve surface.
		"imind_solve_seconds":             "histogram",
		"imind_solve_round_seconds":       "histogram",
		"imind_solve_rounds_total":        "counter",
		"imind_solve_dirty_samples_total": "counter",
		"imind_queue_wait_seconds":        "histogram",
		"imind_solves_in_flight":          "gauge",
		"imind_sessions_cached":           "gauge",
		"imind_session_pool_bytes":        "gauge",
		// Mutation / repair surface.
		"imind_mutate_commit_seconds":  "histogram",
		"imind_session_repair_seconds": "histogram",
		"imind_mutations_total":        "counter",
		"imind_mutation_batches_total": "counter",
		// Durability surface.
		"imind_wal_appends_total":  "counter",
		"imind_wal_bytes_total":    "counter",
		"imind_wal_fsyncs_total":   "counter",
		"imind_wal_append_seconds": "histogram",
		"imind_wal_fsync_seconds":  "histogram",
		"imind_checkpoints_total":  "counter",
		"imind_checkpoint_seconds": "histogram",
		// Degraded-mode surface.
		"imind_degraded_graphs":       "gauge",
		"imind_degraded_enters_total": "counter",
		"imind_self_heals_total":      "counter",
		// Build provenance.
		"imind_build_info": "gauge",
		"imind_graphs":     "gauge",
	}
	for name, typ := range wantFamilies {
		if got, ok := types[name]; !ok {
			t.Errorf("family %s missing from /metrics", name)
		} else if got != typ {
			t.Errorf("family %s has type %s, want %s", name, got, typ)
		}
	}

	// Values must reflect the traffic above.
	if got := sumSamples(samples, "imind_graphs"); got != 2 {
		t.Errorf("imind_graphs = %g, want 2", got)
	}
	if got := sumSamples(samples, "imind_solve_seconds_count"); got != 2 {
		t.Errorf("imind_solve_seconds_count = %g, want 2", got)
	}
	if got := samples[`imind_solve_seconds_count{model="IC",warm="cold",encoding="none"}`]; got != 1 {
		t.Errorf("cold IC solve count = %g, want 1", got)
	}
	if got := samples[`imind_solve_seconds_count{model="IC",warm="warm",encoding="none"}`]; got != 1 {
		t.Errorf("warm IC solve count = %g, want 1", got)
	}
	if got := sumSamples(samples, "imind_solve_rounds_total"); got < 6 {
		t.Errorf("imind_solve_rounds_total = %g, want >= 6 (2 solves x budget 3)", got)
	}
	if got := sumSamples(samples, "imind_mutations_total"); got != 3 {
		t.Errorf("imind_mutations_total = %g, want 3", got)
	}
	if got := sumSamples(samples, "imind_mutate_commit_seconds_count"); got != 1 {
		t.Errorf("imind_mutate_commit_seconds_count = %g, want 1", got)
	}
	// Registrations persist via checkpoint; only the mutation batch hits
	// the WAL. Under FsyncAlways the fsync is inline in the append, so
	// imind_wal_fsync_seconds stays a registered-but-empty family here.
	if got := sumSamples(samples, "imind_wal_appends_total"); got != 1 {
		t.Errorf("imind_wal_appends_total = %g, want 1 (the mutation batch)", got)
	}
	if got := sumSamples(samples, "imind_wal_append_seconds_count"); got != 1 {
		t.Errorf("imind_wal_append_seconds_count = %g, want 1", got)
	}
	if got := sumSamples(samples, "imind_build_info"); got != 1 {
		t.Errorf("imind_build_info = %g, want constant 1", got)
	}
	if got := sumSamples(samples, "imind_degraded_graphs"); got != 0 {
		t.Errorf("imind_degraded_graphs = %g on a healthy store", got)
	}

	// The JSON stats view reads the same instruments; spot-check it agrees.
	stats := getStats(t, ts.URL)
	if int64(sumSamples(samples, "imind_mutations_total")) != stats.Mutations.Mutations {
		t.Errorf("/metrics mutations %g != /stats %d",
			sumSamples(samples, "imind_mutations_total"), stats.Mutations.Mutations)
	}

	// Closing the server takes a final checkpoint per graph; the timing
	// histogram and snapshot-size gauge must reflect it (only graphs with
	// WAL records since their last snapshot need one). /metrics keeps
	// serving: it reads instruments, not the store.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	_, samples = scrapeMetrics(t, ts.URL)
	if got := sumSamples(samples, "imind_checkpoint_seconds_count"); got < 1 {
		t.Errorf("imind_checkpoint_seconds_count = %g, want >= 1 after close", got)
	}
	if got := sumSamples(samples, "imind_checkpoints_total"); got < 1 {
		t.Errorf("imind_checkpoints_total = %g, want >= 1 after close", got)
	}
	if got := sumSamples(samples, "imind_checkpoint_snapshot_bytes"); got <= 0 {
		t.Errorf("imind_checkpoint_snapshot_bytes = %g, want > 0 after close", got)
	}
}

// TestMetricsScrapeUnderLoad hammers one server with concurrent solves,
// mutation batches, and /metrics + /stats scrapes. Run under -race this
// checks the whole instrument plumbing for data races; the final scrape
// must still be well-formed.
func TestMetricsScrapeUnderLoad(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxConcurrent: 4})
	defer srv.Close()
	registerTestGraphs(t, ts)

	const iters = 6
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			req := SolveRequest{Seeds: []int{1 + w}, Budget: 2, Algorithm: "advanced-greedy",
				Theta: 100, Seed: uint64(w + 1), EvalRounds: -1, ReuseSamples: w%2 == 0}
			for i := 0; i < iters; i++ {
				if code, body := postJSON(t, ts.URL+"/graphs/g1/solve", req, nil); code != http.StatusOK {
					t.Errorf("solver %d iter %d: %d %s", w, i, code, body)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if code, body := postNDJSON(t, ts.URL+"/graphs/g2/mutate", `{"op":"add-vertex"}`+"\n", nil); code != http.StatusOK {
				t.Errorf("mutate iter %d: %d %s", i, code, body)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters*2; i++ {
			scrapeMetrics(t, ts.URL)
			getStats(t, ts.URL)
		}
	}()
	wg.Wait()

	_, samples := scrapeMetrics(t, ts.URL)
	if got := sumSamples(samples, "imind_solve_seconds_count"); got != 3*iters {
		t.Errorf("imind_solve_seconds_count = %g, want %d", got, 3*iters)
	}
	if got := sumSamples(samples, "imind_mutation_batches_total"); got != iters {
		t.Errorf("imind_mutation_batches_total = %g, want %d", got, iters)
	}
	if got := sumSamples(samples, "imind_solves_in_flight"); got != 0 {
		t.Errorf("imind_solves_in_flight = %g after drain, want 0", got)
	}
}

// postJSONWithHeader is postJSON plus request headers, returning the parsed
// response and the http.Response for header assertions.
func postJSONWithHeader(t *testing.T, url string, body any, hdr map[string]string, out any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %s: %v (body %s)", url, err, raw)
		}
	}
	return resp
}

// TestTracedSolveBitIdentity is the acceptance check for the tracer: a
// solve with "trace": true must return byte-for-byte the same blockers and
// spread as the identical untraced solve, plus a span tree.
func TestTracedSolveBitIdentity(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	defer srv.Close()
	registerTestGraphs(t, ts)

	req := SolveRequest{Seeds: []int{2, 9}, Budget: 4, Algorithm: "greedy-replace", Theta: 200, Seed: 11}
	var plain, traced SolveResponse
	if code, body := postJSON(t, ts.URL+"/graphs/g1/solve", req, &plain); code != http.StatusOK {
		t.Fatalf("untraced solve: %d %s", code, body)
	}
	if plain.Trace != nil {
		t.Error("untraced solve returned an inline trace")
	}

	req.Trace = true
	resp := postJSONWithHeader(t, ts.URL+"/graphs/g1/solve", req,
		map[string]string{"X-Request-Id": "trace-identity-1"}, &traced)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced solve: %d", resp.StatusCode)
	}

	if !reflect.DeepEqual(traced.Blockers, plain.Blockers) {
		t.Errorf("traced blockers %v != untraced %v", traced.Blockers, plain.Blockers)
	}
	if !reflect.DeepEqual(traced.SpreadBefore, plain.SpreadBefore) ||
		!reflect.DeepEqual(traced.SpreadAfter, plain.SpreadAfter) {
		t.Errorf("traced spreads (%v, %v) != untraced (%v, %v)",
			deref(traced.SpreadBefore), deref(traced.SpreadAfter),
			deref(plain.SpreadBefore), deref(plain.SpreadAfter))
	}

	// The trace must carry the request id and a solve span with one child
	// per greedy round.
	if traced.RequestID != "trace-identity-1" {
		t.Errorf("response request_id = %q, want trace-identity-1", traced.RequestID)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "trace-identity-1" {
		t.Errorf("X-Request-Id header = %q", got)
	}
	if traced.Trace == nil || traced.Trace.Root == nil {
		t.Fatalf("traced solve returned no span tree: %+v", traced.Trace)
	}
	if traced.Trace.RequestID != "trace-identity-1" {
		t.Errorf("trace request_id = %q", traced.Trace.RequestID)
	}
	var solveSpan *obs.SpanOut
	names := make(map[string]bool)
	for _, sp := range traced.Trace.Root.Children {
		names[sp.Name] = true
		if sp.Name == "solve" {
			solveSpan = sp
		}
	}
	for _, want := range []string{"queue.session", "queue.slot", "solve", "eval.before", "eval.after"} {
		if !names[want] {
			t.Errorf("trace missing %q span (have %v)", want, names)
		}
	}
	if solveSpan == nil {
		t.Fatal("no solve span")
	}
	rounds := 0
	for _, sp := range solveSpan.Children {
		if sp.Name == "round" {
			rounds++
		}
	}
	if rounds < req.Budget {
		t.Errorf("solve span has %d round children, want >= %d", rounds, req.Budget)
	}
}

// TestDebugTracesRing: untagged solves land in the ring newest-first;
// a disabled ring turns the endpoint off.
func TestDebugTracesRing(t *testing.T) {
	srv, ts := newTestServer(t, Config{TraceRing: 4})
	defer srv.Close()
	registerTestGraphs(t, ts)

	req := SolveRequest{Seeds: []int{3}, Budget: 2, Algorithm: "advanced-greedy", Theta: 100, Seed: 2, EvalRounds: -1}
	for i := 0; i < 2; i++ {
		if code, body := postJSON(t, ts.URL+"/graphs/g2/solve", req, nil); code != http.StatusOK {
			t.Fatalf("solve %d: %d %s", i, code, body)
		}
	}
	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces status %d", resp.StatusCode)
	}
	var tr TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Traces) != 2 {
		t.Fatalf("ring holds %d traces, want 2", len(tr.Traces))
	}
	for i, out := range tr.Traces {
		if out.Op != "solve" || out.Graph != "g2" || out.Root == nil {
			t.Errorf("trace %d = op %q graph %q", i, out.Op, out.Graph)
		}
		if out.RequestID == "" {
			t.Errorf("trace %d has no request id", i)
		}
	}
	if tr.Traces[0].Start.Before(tr.Traces[1].Start) {
		t.Error("traces not newest-first")
	}

	_, tsOff := newTestServer(t, Config{TraceRing: -1})
	if code := probeCode(t, tsOff.URL+"/debug/traces"); code != http.StatusNotFound {
		t.Errorf("/debug/traces with tracing disabled = %d, want 404", code)
	}
}

// TestVersionEndpoint: /version reports build provenance and carries the
// request-id header like every other route.
func TestVersionEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/version status %d", resp.StatusCode)
	}
	var v VersionResponse
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.GoVersion == "" || v.Module == "" {
		t.Errorf("version response incomplete: %+v", v)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("/version response missing X-Request-Id")
	}
}

// TestRequestIDPropagation: a sane client id is echoed, a hostile one is
// replaced with a generated id, and distinct requests get distinct ids.
func TestRequestIDPropagation(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	get := func(hdr string) string {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if hdr != "" {
			req.Header.Set("X-Request-Id", hdr)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.Header.Get("X-Request-Id")
	}

	if got := get("client-abc-123"); got != "client-abc-123" {
		t.Errorf("sane client id not echoed: %q", got)
	}
	if got := get("evil\tid"); got == "" || got == "evil\tid" {
		t.Errorf("non-printable client id not replaced: %q", got)
	}
	if got := get(strings.Repeat("x", 200)); len(got) > 64 {
		t.Errorf("oversized id accepted: %d bytes", len(got))
	}
	a, b := get(""), get("")
	if a == "" || a == b {
		t.Errorf("generated ids not unique: %q vs %q", a, b)
	}
}

func deref(p *float64) float64 {
	if p == nil {
		return -1
	}
	return *p
}
