package cascade

import (
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// LT is the LiveSampler for the linear threshold model in its triggering-set
// form (Section V-E of the paper; Kempe et al. 2003): each vertex v
// independently picks at most one live in-edge — in-neighbor u is chosen
// with probability w(u,v), and no edge with probability 1 - Σ_u w(u,v).
//
// Edge probabilities double as the LT weights, so the weighted-cascade
// assignment (w(u,v) = 1/indegree(v), summing to exactly 1) is the natural
// companion model. If Σ_u w(u,v) > 1 the choice degenerates gracefully to a
// proportional pick with "no edge" probability 0; callers who need strict LT
// semantics must supply weights summing to at most 1.
//
// Trigger choices are sampled lazily, only for vertices the forward
// traversal actually inspects, so sampling cost stays proportional to the
// explored region rather than to n.
type LT struct {
	g *graph.Graph
}

// NewLT returns an LT sampler over g, reading edge probabilities as LT
// weights.
func NewLT(g *graph.Graph) *LT { return &LT{g: g} }

// Graph returns the underlying graph.
func (lt *LT) Graph() *graph.Graph { return lt.g }

// NewWorkspace allocates scratch space for one goroutine, including the
// lazy trigger-choice buffers.
func (lt *LT) NewWorkspace() *Workspace {
	ws := newWorkspace(lt.g.N())
	ws.ltStamp = make([]int32, lt.g.N())
	ws.ltChoice = make([]graph.V, lt.g.N())
	return ws
}

// choice returns v's sampled trigger in-neighbor for the current epoch,
// sampling it on first use. -1 means v triggers on nothing this round.
func (lt *LT) choice(v graph.V, r *rng.Source, ws *Workspace) graph.V {
	if ws.ltStamp[v] == ws.epoch {
		return ws.ltChoice[v]
	}
	ws.ltStamp[v] = ws.epoch
	chosen := graph.V(-1)
	x := r.Float64()
	acc := 0.0
	in := lt.g.InNeighbors(v)
	ps := lt.g.InProbs(v)
	for i, u := range in {
		acc += ps[i]
		if x < acc {
			chosen = u
			break
		}
	}
	ws.ltChoice[v] = chosen
	return chosen
}

// Sample implements LiveSampler. In the LT live-edge graph every vertex has
// in-degree at most one, so the reachable subgraph is a tree rooted at src.
func (lt *LT) Sample(src graph.V, blocked []bool, r *rng.Source, ws *Workspace) *SampledGraph {
	ws.reset()
	ws.reach(src)
	ws.queue = append(ws.queue, src)
	for qi := 0; qi < len(ws.queue); qi++ {
		u := ws.queue[qi]
		lu := ws.local[u]
		for _, v := range lt.g.OutNeighbors(u) {
			if blocked != nil && blocked[v] {
				continue
			}
			if lt.choice(v, r, ws) != u {
				continue
			}
			lv, isNew := ws.reach(v)
			if isNew {
				ws.queue = append(ws.queue, v)
			}
			ws.eFrom = append(ws.eFrom, lu)
			ws.eTo = append(ws.eTo, lv)
		}
	}
	return ws.buildCSR()
}

// SimulateCount implements LiveSampler.
func (lt *LT) SimulateCount(src graph.V, blocked []bool, r *rng.Source, ws *Workspace) int {
	ws.reset()
	ws.reach(src)
	ws.queue = append(ws.queue, src)
	for qi := 0; qi < len(ws.queue); qi++ {
		u := ws.queue[qi]
		for _, v := range lt.g.OutNeighbors(u) {
			if blocked != nil && blocked[v] {
				continue
			}
			if ws.stamp[v] == ws.epoch {
				continue
			}
			if lt.choice(v, r, ws) != u {
				continue
			}
			ws.stamp[v] = ws.epoch
			ws.local[v] = int32(len(ws.orig))
			ws.orig = append(ws.orig, v)
			ws.queue = append(ws.queue, v)
		}
	}
	return len(ws.orig)
}
