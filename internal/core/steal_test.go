package core

import (
	"reflect"
	"testing"

	"github.com/imin-dev/imin/internal/cascade"
	"github.com/imin-dev/imin/internal/datasets"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// TestSumAccOrderIndependent guards the determinism of the shard reduction:
// because accumulators are exact int64 counts, the pairwise tree in sumAcc
// must equal a plain left-to-right sum for every shard count, and must not
// care how shards are ordered. If someone ever switches the accumulator to
// floating point or makes the tree shape depend on scheduling, this fails.
func TestSumAccOrderIndependent(t *testing.T) {
	r := rng.New(99)
	for p := 1; p <= 9; p++ {
		shards := make([]*incShard, p)
		for s := range shards {
			acc := make([]int64, 50)
			for v := range acc {
				acc[v] = int64(r.Intn(1<<20)) - 1<<19
			}
			shards[s] = &incShard{acc: acc}
		}
		for v := graph.V(0); v < 50; v++ {
			var serial int64
			for _, sh := range shards {
				serial += sh.acc[v]
			}
			if got := sumAcc(shards, v); got != serial {
				t.Fatalf("p=%d v=%d: tree sum %d != serial sum %d", p, v, got, serial)
			}
			// Reverse the shard order: the result may not change.
			rev := make([]*incShard, p)
			for s := range shards {
				rev[p-1-s] = shards[s]
			}
			if got := sumAcc(rev, v); got != serial {
				t.Fatalf("p=%d v=%d: reversed tree sum %d != serial sum %d", p, v, got, serial)
			}
		}
	}
}

// TestSkewedDirtyBatchBitIdentical stages a maximally skewed round — every
// dirty sample owned by shard 0 — and requires the parallel path (stealing
// enabled) to produce exactly the serial estimator's values, with the work
// accounting intact. Whether steals actually occur depends on scheduling;
// correctness may not.
func TestSkewedDirtyBatchBitIdentical(t *testing.T) {
	g := denseTestGraph(120, 31)
	const theta = 256
	pool := NewSamplePool(cascade.NewIC(g), 0, theta, 4, rng.New(7))
	inc4 := NewIncrementalPooledEstimatorFromPool(pool, 4, DomLengauerTarjan)
	inc1 := NewIncrementalPooledEstimatorFromPool(pool, 1, DomLengauerTarjan)

	n := g.N()
	blocked := make([]bool, n)
	d4 := make([]float64, n)
	d1 := make([]float64, n)
	inc4.DecreaseES(d4, blocked)
	inc1.DecreaseES(d1, blocked)
	if !reflect.DeepEqual(d4, d1) {
		t.Fatal("priming differs between workers 1 and 4")
	}

	for round := 0; round < 4; round++ {
		// Stage only shard 0's samples dirty — with unchanged blocked the
		// recompute is a no-op on the values, but the whole batch lands on
		// one shard and the other three workers have nothing of their own.
		sh0 := inc4.shards[0]
		before := inc4.Stats()
		for i := sh0.lo; i < sh0.hi; i++ {
			inc4.markDirty(int32(i))
		}
		inc4.DecreaseESFlips(d4, blocked, nil)
		after := inc4.Stats()
		if got, want := after.SamplesReprocessed-before.SamplesReprocessed, int64(sh0.hi-sh0.lo); got != want {
			t.Fatalf("round %d: reprocessed %d samples, staged %d", round, got, want)
		}
		inc1.DecreaseES(d1, blocked)
		if !reflect.DeepEqual(d4, d1) {
			t.Fatalf("round %d: skewed parallel round diverged from serial", round)
		}

		// Now a real flip, verified against the serial twin.
		blocked[(round*11)%(n-1)+1] = true
		inc4.DecreaseES(d4, blocked)
		inc1.DecreaseES(d1, blocked)
		if !reflect.DeepEqual(d4, d1) {
			t.Fatalf("round %d: post-flip values diverged", round)
		}
	}

	// Profile accounting: shards partition [0, theta) and processed counts
	// sum to the reprocessed total (no reshard happened).
	profs := inc4.ShardProfiles()
	if len(profs) != 4 {
		t.Fatalf("got %d profiles, want 4", len(profs))
	}
	next, sumProcessed, sumStolen := 0, int64(0), int64(0)
	for _, pr := range profs {
		if pr.Lo != next || pr.Hi < pr.Lo {
			t.Fatalf("profiles do not partition the pool: %+v", profs)
		}
		next = pr.Hi
		sumProcessed += pr.Processed
		sumStolen += pr.Stolen
	}
	if next != theta {
		t.Fatalf("profiles cover [0,%d), want [0,%d)", next, theta)
	}
	st := inc4.Stats()
	if sumProcessed != st.SamplesReprocessed {
		t.Fatalf("shard processed sum %d != reprocessed %d", sumProcessed, st.SamplesReprocessed)
	}
	if sumStolen != st.SamplesStolen {
		t.Fatalf("shard stolen sum %d != stats stolen %d", sumStolen, st.SamplesStolen)
	}
	if sumStolen > sumProcessed {
		t.Fatalf("stolen %d exceeds processed %d", sumStolen, sumProcessed)
	}
}

// TestStealDrainFoldsIntoThief pins the work-stealing arithmetic without
// depending on scheduling: it drives drain directly, making one shard steal
// a victim's entire batch, and requires the estimator to keep answering
// bit-identically afterwards. This is the invariant stealing rests on —
// only the cross-shard SUM of accumulators matters, so contributions may
// land in any shard.
func TestStealDrainFoldsIntoThief(t *testing.T) {
	g := denseTestGraph(100, 13)
	const theta = 200
	pool := NewSamplePool(cascade.NewIC(g), 0, theta, 4, rng.New(21))
	est := NewIncrementalPooledEstimatorFromPool(pool, 4, DomLengauerTarjan)
	ref := NewPooledEstimatorFromPool(pool, 2, DomLengauerTarjan)

	n := g.N()
	blocked := make([]bool, n)
	dst := make([]float64, n)
	refDst := make([]float64, n)
	est.DecreaseES(dst, blocked)

	// Force shard 3 to steal shard 0's whole range, outside a round. The
	// priming round may already have stolen (an early worker drains late
	// workers' batches), so assert the delta from this drain alone.
	victim, thief := est.shards[0], est.shards[3]
	stolenBefore, statsBefore := thief.stolen, est.Stats().SamplesStolen
	batch := make([]int32, 0, victim.hi-victim.lo)
	for i := victim.lo; i < victim.hi; i++ {
		batch = append(batch, int32(i))
	}
	victim.batch = batch
	victim.cur.Store(0)
	est.drain(victim, thief, blocked, true)
	victim.batch = nil
	if got := thief.stolen - stolenBefore; got != int64(len(batch)) {
		t.Fatalf("thief stole %d samples, want %d", got, len(batch))
	}
	if got := est.Stats().SamplesStolen - statsBefore; got != int64(len(batch)) {
		t.Fatalf("Stats().SamplesStolen grew by %d, want %d", got, len(batch))
	}

	// The stolen contributions were retracted and re-added under the same
	// blocked set, so every subsequent answer must still be exact.
	for round := 0; round < 3; round++ {
		blocked[(round*13)%(n-1)+1] = true
		est.DecreaseES(dst, blocked)
		ref.DecreaseES(refDst, blocked)
		if !reflect.DeepEqual(dst, refDst) {
			t.Fatalf("round %d: values diverged after forced steal", round)
		}
	}

	// A reshard must fold the stolen counter into the lifetime total.
	lifetime := est.Stats().SamplesStolen
	est.SetWorkers(2)
	if st := est.Stats(); st.SamplesStolen < lifetime {
		t.Fatalf("reshard lost stolen counter: %d, want at least %d", st.SamplesStolen, lifetime)
	}
	est.DecreaseES(dst, blocked)
	ref.DecreaseES(refDst, blocked)
	if !reflect.DeepEqual(dst, refDst) {
		t.Fatal("values diverged after reshard following forced steal")
	}
}

// TestParallelReductionLargeRound forces the fused parallel tree reduction
// (large touched union, many workers) and checks bit-identity against the
// serial path round by round. Run under -race this is the test that
// exercises concurrent reducers scanning all shards' touched lists.
func TestParallelReductionLargeRound(t *testing.T) {
	g := denseTestGraph(400, 5)
	const theta = 300
	pool := NewSamplePool(cascade.NewIC(g), 0, theta, 4, rng.New(11))
	inc8 := NewIncrementalPooledEstimatorFromPool(pool, 8, DomLengauerTarjan)
	inc1 := NewIncrementalPooledEstimatorFromPool(pool, 1, DomLengauerTarjan)

	n := g.N()
	blocked := make([]bool, n)
	d8 := make([]float64, n)
	d1 := make([]float64, n)
	for round := 0; round < 5; round++ {
		inc8.DecreaseES(d8, blocked)
		inc1.DecreaseES(d1, blocked)
		if !reflect.DeepEqual(d8, d1) {
			t.Fatalf("round %d: workers 8 diverged from workers 1", round)
		}
		// Flip a fresh vertex each round; the priming round and the dense
		// graph keep the touched union far above the inline threshold.
		blocked[(round*17)%(n-1)+1] = true
	}
	if st := inc8.Stats(); st.Rounds != 5 {
		t.Fatalf("rounds = %d, want 5", st.Rounds)
	}
}

// TestSkewedCascadeStealBitIdentical drives the estimator with the graph
// gengraph -skew generates — a few giant chain samples among hundreds of
// tiny ones, so per-shard work is maximally unbalanced and the stealing
// path actually has something to steal. Parallel results must stay
// bit-identical to the single-worker reference through a trajectory that
// keeps dirtying the giant samples.
func TestSkewedCascadeStealBitIdentical(t *testing.T) {
	g := datasets.SkewedCascade(3000, 8, 0.1, 0.03, rng.New(21))
	pool := NewSamplePool(cascade.NewIC(g), 0, 400, 4, rng.New(22))
	ref := NewIncrementalPooledEstimatorFromPool(pool, 1, DomLengauerTarjan)
	par := NewIncrementalPooledEstimatorFromPool(pool, 4, DomLengauerTarjan)
	blocked := make([]bool, g.N())
	dR := make([]float64, g.N())
	dP := make([]float64, g.N())
	for round := 0; round < 6; round++ {
		ref.DecreaseES(dR, blocked)
		par.DecreaseES(dP, blocked)
		if !reflect.DeepEqual(dR, dP) {
			t.Fatalf("round %d: Δ vectors differ between 1 and 4 workers", round)
		}
		best := -1
		for v := range dR {
			if v != 0 && !blocked[v] && (best == -1 || dR[v] > dR[best]) {
				best = v
			}
		}
		blocked[best] = true
	}
	profs := par.ShardProfiles()
	var processed int64
	for _, pr := range profs {
		processed += pr.Processed
	}
	if st := par.Stats(); processed != st.SamplesReprocessed {
		t.Fatalf("shard profiles account %d samples, stats say %d", processed, st.SamplesReprocessed)
	}
}
