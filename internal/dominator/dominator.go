// Package dominator computes dominator trees of flow graphs.
//
// Given a flow graph with source s, vertex u dominates v when every path
// from s to v passes through u (Definition 5 of the paper); the immediate
// dominator relation forms a tree rooted at s (Definition 6). The paper's
// central observation (Theorem 6) is that σ→u(s,g) — the number of vertices
// that lose their last path from s when u is blocked — is exactly the size
// of u's subtree in the dominator tree, which turns per-candidate spread
// recomputation into a single tree scan.
//
// Two O(m·α)-ish algorithms are provided: the classic Lengauer–Tarjan
// algorithm with path compression (the paper's choice, [53]) and the
// Semi-NCA variant of Georgiadis & Tarjan, which computes identical trees
// with a simpler final phase; the benchmark suite compares them. A naive
// O(n·(n+m)) vertex-removal algorithm serves as the correctness oracle in
// tests.
//
// All computations run inside a caller-owned Workspace, so the per-sample
// cost in the estimator's hot loop is allocation-free.
package dominator

// FlowGraph is the adjacency input: a directed graph in CSR form over
// vertices [0, N). Both successor and predecessor lists are required.
// It deliberately mirrors cascade.SampledGraph so samples convert for free.
type FlowGraph struct {
	N        int
	OutStart []int32
	OutTo    []int32
	InStart  []int32
	InTo     []int32
}

// Succ returns the successors of v.
func (fg *FlowGraph) Succ(v int32) []int32 { return fg.OutTo[fg.OutStart[v]:fg.OutStart[v+1]] }

// Pred returns the predecessors of v.
func (fg *FlowGraph) Pred(v int32) []int32 { return fg.InTo[fg.InStart[v]:fg.InStart[v+1]] }

// Tree is the result of a dominator computation. Slices alias Workspace
// storage and are valid until the next computation with the same Workspace.
type Tree struct {
	// Root is the source vertex.
	Root int32
	// Idom[v] is v's immediate dominator, -1 for the root and for vertices
	// unreachable from the root.
	Idom []int32
	// Reached is the number of vertices reachable from the root.
	Reached int
}

// Workspace holds reusable scratch space for dominator computations.
type Workspace struct {
	dfn        []int32 // DFS preorder number, 1-based; 0 = unreachable
	vertex     []int32 // vertex[i] = v with dfn[v] == i
	parent     []int32 // DFS tree parent
	semi       []int32 // semidominator as a DFS number
	ancestor   []int32 // eval-forest parent, -1 = tree root
	label      []int32
	idom       []int32
	bucketHead []int32
	bucketNext []int32
	size       []int32
	stack      []int32 // shared scratch for DFS frames and path compression
	stackIdx   []int32 // neighbor cursor parallel to DFS stack
}

// NewWorkspace returns a Workspace able to handle graphs of up to n
// vertices without reallocation; it grows on demand beyond that.
func NewWorkspace(n int) *Workspace {
	ws := &Workspace{}
	ws.grow(n)
	return ws
}

// MemoryBytes reports the workspace's resident scratch footprint — twelve
// int32 arrays grown to the largest graph seen — for the serving layer's
// capacity gauges.
func (ws *Workspace) MemoryBytes() int64 {
	total := int64(0)
	for _, s := range [][]int32{ws.dfn, ws.vertex, ws.parent, ws.semi, ws.ancestor, ws.label,
		ws.idom, ws.bucketHead, ws.bucketNext, ws.size, ws.stack, ws.stackIdx} {
		total += int64(cap(s)) * 4
	}
	return total
}

func (ws *Workspace) grow(n int) {
	if len(ws.dfn) >= n+1 {
		return
	}
	c := n + 1
	ws.dfn = make([]int32, c)
	ws.vertex = make([]int32, c)
	ws.parent = make([]int32, c)
	ws.semi = make([]int32, c)
	ws.ancestor = make([]int32, c)
	ws.label = make([]int32, c)
	ws.idom = make([]int32, c)
	ws.bucketHead = make([]int32, c)
	ws.bucketNext = make([]int32, c)
	ws.size = make([]int32, c)
	ws.stack = make([]int32, 0, c)
	ws.stackIdx = make([]int32, 0, c)
}

// dfs numbers vertices reachable from root in DFS preorder and records DFS
// tree parents. It returns the number of reachable vertices.
func (ws *Workspace) dfs(fg *FlowGraph, root int32) int {
	for v := 0; v < fg.N; v++ {
		ws.dfn[v] = 0
	}
	k := int32(1)
	ws.dfn[root] = 1
	ws.vertex[1] = root
	ws.parent[root] = -1

	ws.stack = append(ws.stack[:0], root)
	ws.stackIdx = append(ws.stackIdx[:0], 0)
	for len(ws.stack) > 0 {
		top := len(ws.stack) - 1
		v := ws.stack[top]
		succ := fg.Succ(v)
		advanced := false
		for ws.stackIdx[top] < int32(len(succ)) {
			u := succ[ws.stackIdx[top]]
			ws.stackIdx[top]++
			if ws.dfn[u] == 0 {
				k++
				ws.dfn[u] = k
				ws.vertex[k] = u
				ws.parent[u] = v
				ws.stack = append(ws.stack, u)
				ws.stackIdx = append(ws.stackIdx, 0)
				advanced = true
				break
			}
		}
		if !advanced && ws.stackIdx[top] >= int32(len(succ)) {
			ws.stack = ws.stack[:top]
			ws.stackIdx = ws.stackIdx[:top]
		}
	}
	return int(k)
}

// compressEval performs EVAL with path compression on the link forest:
// it returns the vertex with minimum semidominator number on the path from
// v up to (excluding) the root of v's tree in the forest, compressing the
// path as a side effect. Iterative to keep deep sampled graphs safe.
func (ws *Workspace) compressEval(v int32) int32 {
	if ws.ancestor[v] == -1 {
		return v
	}
	// Collect the path while the grandparent exists.
	ws.stack = ws.stack[:0]
	u := v
	for ws.ancestor[ws.ancestor[u]] != -1 {
		ws.stack = append(ws.stack, u)
		u = ws.ancestor[u]
	}
	// Process top-down: each node's ancestor is already fully compressed.
	for i := len(ws.stack) - 1; i >= 0; i-- {
		x := ws.stack[i]
		a := ws.ancestor[x]
		if ws.semi[ws.label[a]] < ws.semi[ws.label[x]] {
			ws.label[x] = ws.label[a]
		}
		ws.ancestor[x] = ws.ancestor[a]
	}
	return ws.label[v]
}

// SubtreeSizes fills sizes[v] with the number of vertices in v's dominator
// subtree (including v itself) given a Tree; unreachable vertices get 0.
// By Theorem 6, sizes[v] == σ→v(root, g). sizes must have length ≥ fg.N.
func (ws *Workspace) SubtreeSizes(t *Tree, sizes []int32) {
	for v := range sizes {
		sizes[v] = 0
	}
	// Every reachable vertex starts as its own subtree; accumulate upward
	// in decreasing DFS order — idom(w) always has a smaller DFS number
	// than w because it is a DFS-tree ancestor of w.
	for i := 1; i <= t.Reached; i++ {
		sizes[ws.vertex[i]] = 1
	}
	for i := int32(t.Reached); i >= 2; i-- {
		w := ws.vertex[i]
		sizes[t.Idom[w]] += sizes[w]
	}
}

// WeightedSubtreeSizes is SubtreeSizes with a per-vertex weight instead of
// the constant 1: sizes[v] = Σ weight(w) over v's dominator subtree. The
// edge-blocking extension uses it on edge-split graphs, where auxiliary
// edge-vertices carry weight 0 so only real vertices are counted.
func (ws *Workspace) WeightedSubtreeSizes(t *Tree, weight func(v int32) int32, sizes []int32) {
	for v := range sizes {
		sizes[v] = 0
	}
	for i := 1; i <= t.Reached; i++ {
		v := ws.vertex[i]
		sizes[v] = weight(v)
	}
	for i := int32(t.Reached); i >= 2; i-- {
		w := ws.vertex[i]
		sizes[t.Idom[w]] += sizes[w]
	}
}
