// Command quickstart is the 30-second tour of the imin library: build a
// small influence graph, ask which vertices to block, and verify the
// improvement.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	imin "github.com/imin-dev/imin"
)

func main() {
	// A small sharing network. Vertex 0 posts misinformation; edges carry
	// the probability that the target re-shares.
	b := imin.NewBuilder(0)
	b.AddEdge(0, 1, 0.9) // 0 almost certainly reaches 1
	b.AddEdge(0, 2, 0.9)
	b.AddEdge(1, 3, 0.8) // 3 is the gateway to the right half
	b.AddEdge(2, 3, 0.8)
	b.AddEdge(3, 4, 0.7)
	b.AddEdge(3, 5, 0.7)
	b.AddEdge(4, 6, 0.6)
	b.AddEdge(5, 6, 0.6)
	b.AddEdge(6, 7, 0.5)
	g := b.Build()

	seeds := []imin.Vertex{0}
	opt := imin.Options{Seed: 42}

	before, err := imin.EstimateSpread(g, seeds, nil, 100000, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expected spread with no intervention: %.2f of %d users\n", before, g.N())

	// Block one account. GreedyReplace (the default) should find vertex 3,
	// the bottleneck every long path crosses.
	res, err := imin.Minimize(g, seeds, 1, opt)
	if err != nil {
		log.Fatal(err)
	}
	after, err := imin.EstimateSpread(g, seeds, res.Blockers, 100000, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blocking vertex %v cuts the spread to %.2f (%.0f%% reduction) in %v\n",
		res.Blockers, after, 100*(before-after)/before, res.Runtime.Round(1000))

	// The estimator behind the selection can also be used directly: the
	// spread decrease each single blocked vertex would cause.
	delta := imin.SpreadDecreasePerVertex(g, 0, 20000, 7)
	fmt.Println("\nper-vertex spread decrease if blocked (Algorithm 2):")
	for v, d := range delta {
		if v == 0 {
			continue
		}
		fmt.Printf("  block %d -> spread falls by %.2f\n", v, d)
	}
}
