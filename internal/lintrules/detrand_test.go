package lintrules_test

import (
	"testing"

	"github.com/imin-dev/imin/internal/lintkit/linttest"
	"github.com/imin-dev/imin/internal/lintrules"
)

// Fixture package paths: the same sources are checked under an in-scope
// path (the analyzer fires) and an out-of-scope one (it must not).
const (
	corePath  = "example.com/fix/internal/core"
	storePath = "example.com/fix/internal/store"
	dynPath   = "example.com/fix/internal/dynamic"
	otherPath = "example.com/fix/internal/datasets"
)

func TestDetRandPositive(t *testing.T) {
	linttest.Run(t, "testdata/detrand/pos", lintrules.DetRand, corePath)
}

func TestDetRandNegative(t *testing.T) {
	linttest.MustBeCleanDir(t, "testdata/detrand/neg", lintrules.DetRand, corePath)
}

func TestDetRandScoping(t *testing.T) {
	// The positive fixture outside a determinism-critical package: silent.
	linttest.MustBeCleanDir(t, "testdata/detrand/pos", lintrules.DetRand, otherPath)
}
