package lintrules

import (
	"go/ast"
	"go/types"

	"github.com/imin-dev/imin/internal/lintkit"
)

// EpochPackages are the packages that own epoch counters: the dynamic
// graph (d.epoch, d.snapEpoch), the durable store (replay positions), and
// the solver session (s.epoch).
var EpochPackages = []string{"internal/dynamic", "internal/store", "internal/core"}

// EpochOrder flags direct writes to epoch fields outside the blessed
// commit/replay/migration entry points. Epochs are the spine of the
// recovery contract: the WAL replays records strictly in epoch order, the
// sample-pool repair diffs changelogs between epochs, and a snapshot's
// epoch must match the last record folded into it. An epoch bumped from a
// random helper (or worse, from two goroutines) silently breaks replay
// continuity in a way no unit test of the helper will catch — so the set
// of functions allowed to move an epoch is closed and enforced here.
var EpochOrder = &lintkit.Analyzer{
	Name: "epochorder",
	Doc:  "flags epoch-field writes outside the blessed commit/replay entry points",
	Run:  runEpochOrder,
}

// epochFields are the struct fields treated as epoch counters.
var epochFields = map[string]bool{
	"epoch": true, "snapEpoch": true, "Epoch": true,
}

// epochWriters is the closed set of functions allowed to assign an epoch
// field. Everything here either creates the value (constructors), commits
// a mutation batch (the one place an epoch advances), or reconstructs
// state during recovery (replay, snapshot fold, migration).
var epochWriters = map[string]bool{
	"Commit": true, "Replay": true,
	"New": true, "NewAtEpoch": true, "NewSession": true, "NewSessionAtEpoch": true,
	"Advance": true, "Reset": true, "Snapshot": true,
	"materializeLocked": true, "completeCheckpoint": true, "recoverGraph": true,
}

func runEpochOrder(pass *lintkit.Pass) error {
	if !scopedTo(pass.PkgPath, EpochPackages) {
		return nil
	}
	eachFuncBody(pass.Files, func(decl *ast.FuncDecl) {
		// Function literals inherit the enclosing declaration's blessing:
		// a closure inside Commit is still the commit path.
		if epochWriters[decl.Name.Name] {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					reportEpochWrite(pass, lhs, decl.Name.Name)
				}
			case *ast.IncDecStmt:
				reportEpochWrite(pass, n.X, decl.Name.Name)
			}
			return true
		})
	})
	return nil
}

// reportEpochWrite flags lhs when it is a selector for an epoch-named
// struct field. Plain variables named "epoch" (locals, parameters) are
// fine — only persistent state is guarded.
func reportEpochWrite(pass *lintkit.Pass, lhs ast.Expr, fn string) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok || !epochFields[sel.Sel.Name] {
		return
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	pass.Reportf(lhs.Pos(), "epoch field %s.%s written in %s: epochs advance only through the blessed commit/replay entry points (see docs/INVARIANTS.md); route this through Commit/Replay or a constructor",
		namedTypeName(s.Recv()), sel.Sel.Name, fn)
}
