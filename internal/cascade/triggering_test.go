package cascade

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/imin-dev/imin/internal/fixture"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

func TestTriggeringICMatchesNativeIC(t *testing.T) {
	// The triggering sampler with ICTrigger must reproduce the IC spread
	// distribution: check the expected spread on the toy graph.
	g := fixture.Toy()
	tr := NewTriggering(g, ICTrigger)
	got := EstimateSpread(tr, fixture.Seed, nil, 200000, rng.New(1))
	if math.Abs(got-fixture.ExpectedSpread) > 0.03 {
		t.Fatalf("triggering-IC spread = %v, want %v", got, fixture.ExpectedSpread)
	}
}

func TestTriggeringLTMatchesNativeLT(t *testing.T) {
	g := graph.WeightedCascade.Assign(fixture.Toy(), nil)
	native := EstimateSpread(NewLT(g), fixture.Seed, nil, 150000, rng.New(2))
	viaTrigger := EstimateSpread(NewTriggering(g, LTTrigger), fixture.Seed, nil, 150000, rng.New(3))
	if math.Abs(native-viaTrigger) > 0.05 {
		t.Fatalf("LT spreads diverge: native %v vs triggering %v", native, viaTrigger)
	}
}

func TestTriggeringSampleStructure(t *testing.T) {
	g := fixture.Toy()
	tr := NewTriggering(g, ICTrigger)
	ws := tr.NewWorkspace()
	r := rng.New(4)
	for i := 0; i < 20000; i++ {
		sg := tr.Sample(fixture.Seed, nil, r, ws)
		if sg.K < 7 || sg.K > 9 {
			t.Fatalf("impossible K=%d", sg.K)
		}
		// Every non-source vertex needs a live in-edge.
		for lv := 1; lv < sg.K; lv++ {
			if sg.InStart[lv+1] == sg.InStart[lv] {
				t.Fatal("reached vertex without live in-edge")
			}
		}
	}
}

func TestTriggeringRespectsBlocked(t *testing.T) {
	g := fixture.Toy()
	tr := NewTriggering(g, ICTrigger)
	blocked := make([]bool, g.N())
	blocked[fixture.V5] = true
	got := EstimateSpread(tr, fixture.Seed, blocked, 50000, rng.New(5))
	if math.Abs(got-3) > 1e-9 {
		t.Fatalf("blocked triggering spread = %v, want 3", got)
	}
}

func TestTriggeringCustomDistribution(t *testing.T) {
	// A "majority-proof" trigger: a vertex triggers only on its first
	// in-neighbor, deterministically. Spread becomes a fixed reachability.
	g := fixture.Toy()
	firstOnly := func(gr *graph.Graph, v graph.V, r *rng.Source, dst []int32) []int32 {
		if gr.InDegree(v) > 0 {
			dst = append(dst, 0)
		}
		return dst
	}
	tr := NewTriggering(g, firstOnly)
	got := EstimateSpread(tr, fixture.Seed, nil, 1000, rng.New(6))
	// First in-neighbors: v2←v1 ✓, v4←v1 ✓, v5←v2 ✓, v3/v6/v9←v5 ✓,
	// v8←v5 ✓ (v5 sorted before v9), v7←v8 ✓: everything reached, always.
	if got != 9 {
		t.Fatalf("deterministic trigger spread = %v, want 9", got)
	}
}

func TestTriggeringNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for nil TriggerFunc")
		}
	}()
	NewTriggering(fixture.Toy(), nil)
}

// Property: ICTrigger marginals match edge probabilities.
func TestICTriggerMarginalsProperty(t *testing.T) {
	g := fixture.Toy()
	r := rng.New(7)
	const rounds = 100000
	counts := make(map[[2]graph.V]int)
	var buf []int32
	for i := 0; i < rounds; i++ {
		for v := graph.V(0); int(v) < g.N(); v++ {
			buf = ICTrigger(g, v, r, buf[:0])
			in := g.InNeighbors(v)
			for _, idx := range buf {
				counts[[2]graph.V{in[idx], v}]++
			}
		}
	}
	for _, e := range g.Edges() {
		got := float64(counts[[2]graph.V{e.From, e.To}]) / rounds
		if math.Abs(got-e.P) > 0.01 {
			t.Errorf("edge (%d,%d): trigger frequency %v, want %v", e.From, e.To, got, e.P)
		}
	}
}

// Property: LTTrigger returns at most one index and respects weights.
func TestLTTriggerSingletonProperty(t *testing.T) {
	g := graph.WeightedCascade.Assign(fixture.Toy(), nil)
	r := rng.New(8)
	f := func(vRaw uint8) bool {
		v := graph.V(int(vRaw) % g.N())
		buf := LTTrigger(g, v, r, nil)
		return len(buf) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the triggering-IC estimator agrees with the native IC sampler
// on random graphs (they implement the same distribution through different
// code paths).
func TestTriggeringICAgreementProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := r.Intn(10) + 3
		b := graph.NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(graph.V(r.Intn(n)), graph.V(r.Intn(n)), r.Float64())
		}
		g := b.Build()
		a := EstimateSpread(NewIC(g), 0, nil, 40000, rng.New(seed+1))
		c := EstimateSpread(NewTriggering(g, ICTrigger), 0, nil, 40000, rng.New(seed+2))
		if math.Abs(a-c) > 0.25 {
			t.Logf("seed=%d: native=%v triggering=%v", seed, a, c)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTriggeringICSampleToy(b *testing.B) {
	tr := NewTriggering(fixture.Toy(), ICTrigger)
	ws := tr.NewWorkspace()
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Sample(fixture.Seed, nil, r, ws)
	}
}
