// benchcore.go measures the per-round cost of the three DecreaseES
// estimator modes outside the Go testing framework, so cmd/experiments can
// emit a committed JSON baseline (BENCH_core.json) that future changes are
// regressed against. The workload mirrors internal/core's
// BenchmarkDecreaseES_* benchmarks: a b-round AdvancedGreedy trajectory on
// the ~100k-edge serving benchmark graph, replayed per estimator. On top of
// the three modes it sweeps the incremental estimator across worker counts
// (1, 2, 4, GOMAXPROCS) to record the sharded fast path's scaling curve —
// and, because the shard reduction is deterministic, it asserts along the
// way that every worker count selects bit-identical blockers.
package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"runtime"
	"slices"
	"time"

	"github.com/imin-dev/imin/internal/cascade"
	"github.com/imin-dev/imin/internal/core"
	"github.com/imin-dev/imin/internal/datasets"
	"github.com/imin-dev/imin/internal/diag"
	"github.com/imin-dev/imin/internal/dynamic"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/obs"
	"github.com/imin-dev/imin/internal/rng"
	"github.com/imin-dev/imin/internal/store"
)

// BenchCoreOptions parameterizes the estimator benchmark.
type BenchCoreOptions struct {
	// N and EdgesPerVertex shape the preferential-attachment graph
	// (defaults 20000 and 5, the serving benchmark's ~100k edges).
	N              int
	EdgesPerVertex float64
	// Budget is the greedy round count b (default 10).
	Budget int
	// MinTime is the minimum measuring time per mode and per sweep point
	// (default 2s).
	MinTime time.Duration
	// JSONPath, when non-empty, receives the report as indented JSON.
	JSONPath string
	// Force overwrites an existing JSONPath whose worker configuration
	// (requested workers, GOMAXPROCS, sweep points) differs from this
	// run's. Without it the run fails instead of silently replacing
	// numbers measured under different parallelism — the provenance
	// guard that keeps BENCH_core.json comparable across regenerations.
	Force bool
	// ScalingFloor, when > 0, fails the run if the 4-worker sweep point's
	// speedup over 1 worker falls below it — but only on machines with at
	// least 4 CPUs, where the comparison is meaningful. CI passes 0.9 so a
	// 4-worker regression of more than 10% cannot land silently; a real
	// multi-core runner is expected to clear 2x.
	ScalingFloor float64
}

// BenchCoreMode is one estimator's measurement.
type BenchCoreMode struct {
	NsPerRound    float64 `json:"ns_per_round"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	BytesPerRound float64 `json:"bytes_per_round"`
	// DirtySamplesPerRound is how many stored samples the round actually
	// re-processed (θ for the full-scan modes; the measured average for
	// the incremental mode, including its priming scan).
	DirtySamplesPerRound float64 `json:"dirty_samples_per_round"`
	// Workers is the effective worker count this measurement ran with
	// (the requested count resolved against GOMAXPROCS and clamped to θ)
	// — per-measurement provenance, so a single-threaded number can never
	// masquerade as a parallel one. NumCPU is the machine's core count;
	// together with Workers it tells a reader whether the workers actually
	// ran in parallel or timeshared one core.
	Workers int `json:"workers"`
	NumCPU  int `json:"num_cpu"`
}

// BenchCoreMutatePoint is one mutate-then-solve measurement: a batch of
// edge-probability mutations lands on the serving graph, then one
// estimation round runs — either through incremental repair of the warm
// pool (SamplePool.Repair + RepairPool + a dirty-only round) or through a
// full rebuild (fresh pool draw + priming scan). The repair path is what a
// warm session pays per mutation batch; the rebuild path is what it paid
// before the dynamic subsystem existed.
type BenchCoreMutatePoint struct {
	// BatchEdges is the number of mutated edges, FracOfEdges that count
	// relative to the serving graph's edge count.
	BatchEdges  int     `json:"batch_edges"`
	FracOfEdges float64 `json:"frac_of_edges"`
	// DirtySamples is how many of the θ stored samples the batch touched
	// (and repair redrew).
	DirtySamples int     `json:"dirty_samples"`
	RepairNs     float64 `json:"repair_ns"`
	RebuildNs    float64 `json:"rebuild_ns"`
	// Speedup is RebuildNs / RepairNs.
	Speedup float64 `json:"speedup_repair_vs_rebuild"`
	// RepairBitIdentical records that the repaired estimator's Δ vector
	// exactly equals the rebuilt one's — the correctness contract, asserted
	// on the serving-size instance.
	RepairBitIdentical bool `json:"repair_bit_identical"`
	Workers            int  `json:"workers"`
	NumCPU             int  `json:"num_cpu"`
}

// BenchCoreScalingPoint is one point of the incremental worker sweep.
type BenchCoreScalingPoint struct {
	// Workers is the estimator's shard count for this point; GoMaxProcs
	// is the scheduler parallelism it actually ran under (points above
	// GOMAXPROCS timeshare and are expected to flatline).
	Workers    int     `json:"workers"`
	GoMaxProcs int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	NsPerRound float64 `json:"ns_per_round"`
	// Speedup is workers=1 ns/round divided by this point's, Efficiency
	// is Speedup/Workers (1.0 = perfect linear scaling).
	Speedup    float64 `json:"speedup_vs_workers_1"`
	Efficiency float64 `json:"scaling_efficiency"`
}

// BenchCoreShard is one worker shard's share of the headline incremental
// measurement — the contention profile. Balanced Processed with zero Stolen
// means the static θ-range partition alone kept the workers busy; heavy
// Stolen means the dirty samples skewed and the work-stealing fallback
// carried the imbalance.
type BenchCoreShard struct {
	Shard int `json:"shard"`
	// Lo, Hi is the shard's owned sample range [Lo, Hi).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Processed counts dirty samples this worker recomputed (own and
	// stolen); Stolen is the subset claimed from other shards' batches.
	Processed int64 `json:"processed"`
	Stolen    int64 `json:"stolen"`
	// Ns is the worker's cumulative wall-clock nanoseconds in the parallel
	// dirty-processing phase across the timed rounds.
	Ns int64 `json:"ns"`
}

// BenchCoreEncoding is one pool layout's cost point: resident bytes, build
// time, and the incremental estimator's single-worker round cost on it —
// the numbers behind the compressed arena's bytes-for-nanoseconds trade.
type BenchCoreEncoding struct {
	Encoding      string  `json:"encoding"`
	PoolBytes     int64   `json:"pool_bytes"`
	PoolBuildMS   float64 `json:"pool_build_ms"`
	NsPerRound    float64 `json:"ns_per_round"`
	BytesPerRound float64 `json:"bytes_per_round"`
	Workers       int     `json:"workers"`
	GoMaxProcs    int     `json:"gomaxprocs"`
	NumCPU        int     `json:"num_cpu"`
}

// BenchCorePersistPolicy is the WAL write-through cost of one fsync policy:
// what a durable mutate pays per batch (in-memory commit + WAL append +
// policy-dependent fsync), against the bare in-memory commit baseline.
type BenchCorePersistPolicy struct {
	Policy string `json:"policy"`
	// CommitAppendNs is commit + WAL append per batch under this policy.
	CommitAppendNs float64 `json:"commit_append_ns"`
	// AppendNs is the WAL's share (CommitAppendNs − bare commit).
	AppendNs float64 `json:"append_ns"`
	// OverheadPct is AppendNs as a percentage of the bare commit cost —
	// the "WAL append overhead per mutate" headline number.
	OverheadPct float64 `json:"overhead_pct"`
}

// BenchCoreRecoveryPoint is one recovery-time measurement: open the store,
// load the snapshot, replay a WAL of the given length.
type BenchCoreRecoveryPoint struct {
	WALBatches      int     `json:"wal_batches"`
	WALMutations    int     `json:"wal_mutations"`
	WALBytes        int64   `json:"wal_bytes"`
	RecoverMS       float64 `json:"recover_ms"`
	ReplayedBatches int     `json:"replayed_batches"`
}

// BenchCorePersist is the durable-store section of BENCH_core.json: WAL
// append overhead per mutate batch at each fsync policy, and recovery time
// as a function of WAL length, both on the serving benchmark graph.
type BenchCorePersist struct {
	// BatchMutations is the set-prob mutations per measured batch.
	BatchMutations int `json:"batch_mutations"`
	// CommitNs is the bare in-memory commit per batch — the mutate latency
	// the WAL overhead is relative to.
	CommitNs float64                  `json:"commit_ns"`
	Policies []BenchCorePersistPolicy `json:"wal_append"`
	Recovery []BenchCoreRecoveryPoint `json:"recovery"`
}

// BenchCoreInstrumentation is the observability tax measurement: the same
// AdvancedGreedy solve run with Options.OnRound nil versus wired to the
// serving layer's instrument set (one histogram observation and three
// counter adds per round, the exact work internal/service's hook does).
// The acceptance bar is OverheadPct <= 2.
type BenchCoreInstrumentation struct {
	UninstrumentedNsPerRound float64 `json:"uninstrumented_ns_per_round"`
	InstrumentedNsPerRound   float64 `json:"instrumented_ns_per_round"`
	// OverheadPct is the instrumented slowdown in percent; small negative
	// values are measurement noise.
	OverheadPct float64 `json:"overhead_pct"`
	// RoundsObserved is how many OnRound callbacks actually fired during
	// the instrumented timing (sanity: > 0 or the hook never ran).
	RoundsObserved int64 `json:"rounds_observed"`
	// BlockersIdentical records that hooked and unhooked solves selected
	// the same blockers — the observer-purity contract at serving size.
	BlockersIdentical bool `json:"blockers_identical"`
	Workers           int  `json:"workers"`
}

// BenchCoreReport is the BENCH_core.json schema.
type BenchCoreReport struct {
	Graph struct {
		Generator      string  `json:"generator"`
		N              int     `json:"n"`
		EdgesPerVertex float64 `json:"edges_per_vertex"`
		Edges          int     `json:"edges"`
		NumSeeds       int     `json:"num_seeds"`
	} `json:"graph"`
	Theta  int `json:"theta"`
	Budget int `json:"budget"`
	// Workers is the requested configuration (0 = all cores); every
	// measurement additionally records the effective count it used.
	Workers     int           `json:"workers"`
	PoolBytes   int64         `json:"pool_bytes"`
	PoolBuildMS float64       `json:"pool_build_ms"`
	GoMaxProcs  int           `json:"gomaxprocs"`
	NumCPU      int           `json:"num_cpu"`
	GoVersion   string        `json:"go_version"`
	GeneratedBy string        `json:"generated_by"`
	Fresh       BenchCoreMode `json:"fresh"`
	Pooled      BenchCoreMode `json:"pooled"`
	Incremental BenchCoreMode `json:"incremental"`
	// ContentionProfile is the per-shard work breakdown of the headline
	// incremental measurement; SamplesStolen is its total cross-shard
	// steal count.
	ContentionProfile []BenchCoreShard `json:"contention_profile"`
	SamplesStolen     int64            `json:"samples_stolen"`
	// Encodings compares the flat and compressed pool layouts at one
	// worker; the ratios are compressed/flat for pool bytes (smaller is
	// better) and ns/round (the price paid).
	Encodings                 []BenchCoreEncoding `json:"encodings"`
	CompressedPoolBytesRatio  float64             `json:"compressed_pool_bytes_ratio"`
	CompressedNsPerRoundRatio float64             `json:"compressed_ns_per_round_ratio"`
	// IncrementalScaling sweeps the incremental estimator's worker count;
	// BlockersIdenticalAcrossWorkers records that every sweep point
	// re-derived the same greedy blocker sequence (the sharded reduction's
	// determinism guarantee, asserted here on the serving-size instance).
	IncrementalScaling             []BenchCoreScalingPoint `json:"incremental_scaling"`
	BlockersIdenticalAcrossWorkers bool                    `json:"blockers_identical_across_workers"`
	// MutateRepair measures pool repair against full rebuild after mutation
	// batches of increasing size on the serving graph.
	MutateRepair []BenchCoreMutatePoint `json:"mutate_repair"`
	// Persist measures the durable store: WAL append overhead per mutate at
	// each fsync policy, and recovery time vs WAL length.
	Persist *BenchCorePersist `json:"persist,omitempty"`
	// Instrumentation measures the per-round cost of the OnRound
	// observability hook against the identical unhooked solve.
	Instrumentation            *BenchCoreInstrumentation `json:"instrumentation,omitempty"`
	SpeedupPooledVsFresh       float64                   `json:"speedup_pooled_vs_fresh"`
	SpeedupIncrementalVsPooled float64                   `json:"speedup_incremental_vs_pooled"`
	SpeedupIncrementalVsFresh  float64                   `json:"speedup_incremental_vs_fresh"`
	SpeedupIncremental4WVs1W   float64                   `json:"speedup_incremental_4w_vs_1w"`
}

// sweepWorkers returns the deduplicated ascending worker counts to sweep:
// 1, 2, 4, and GOMAXPROCS.
func sweepWorkers() []int {
	ws := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	slices.Sort(ws)
	return slices.Compact(ws)
}

// workerConfigMatches reports whether an existing report was produced
// under the same parallelism configuration as the pending one.
func workerConfigMatches(old, cur *BenchCoreReport) bool {
	if old.Workers != cur.Workers || old.GoMaxProcs != cur.GoMaxProcs {
		return false
	}
	if len(old.IncrementalScaling) != len(cur.IncrementalScaling) {
		return false
	}
	for i := range old.IncrementalScaling {
		if old.IncrementalScaling[i].Workers != cur.IncrementalScaling[i].Workers {
			return false
		}
	}
	return true
}

// checkOverwrite enforces the provenance guard on an existing JSON
// baseline. A file that fails to parse (pre-sweep schema, manual edits) is
// treated as a configuration mismatch: only -force may replace it.
func checkOverwrite(path string, cur *BenchCoreReport, force bool) error {
	buf, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if force {
		return nil
	}
	var old BenchCoreReport
	if err := json.Unmarshal(buf, &old); err != nil {
		return fmt.Errorf("benchcore: %s exists but does not parse (%v); pass -force to replace it", path, err)
	}
	if old.GoMaxProcs > cur.GoMaxProcs {
		return fmt.Errorf("benchcore: %s was measured at gomaxprocs=%d but this run has only %d — a lower-parallelism regeneration would silently degrade the committed scaling baseline; pass -force to overwrite",
			path, old.GoMaxProcs, cur.GoMaxProcs)
	}
	if !workerConfigMatches(&old, cur) {
		return fmt.Errorf("benchcore: %s was measured with workers=%d gomaxprocs=%d sweep=%v, this run is workers=%d gomaxprocs=%d sweep=%v; pass -force to overwrite",
			path, old.Workers, old.GoMaxProcs, scalingWorkers(old.IncrementalScaling),
			cur.Workers, cur.GoMaxProcs, scalingWorkers(cur.IncrementalScaling))
	}
	return nil
}

func scalingWorkers(pts []BenchCoreScalingPoint) []int {
	ws := make([]int, len(pts))
	for i, p := range pts {
		ws[i] = p.Workers
	}
	return ws
}

// effectiveWorkers resolves a requested worker count the way the
// estimators do: 0 → GOMAXPROCS, then clamped to θ.
func effectiveWorkers(workers, theta int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > theta {
		workers = theta
	}
	return workers
}

// RunBenchCore builds the benchmark instance, measures the three modes and
// the incremental worker sweep, and writes the report table to cfg.Out
// (and JSON to opt.JSONPath, if set).
func RunBenchCore(cfg Config, opt BenchCoreOptions) (*BenchCoreReport, error) {
	cfg = cfg.WithDefaults()
	if opt.N <= 0 {
		opt.N = 20_000
	}
	if opt.EdgesPerVertex <= 0 {
		opt.EdgesPerVertex = 5
	}
	if opt.Budget <= 0 {
		opt.Budget = 10
	}
	if opt.MinTime <= 0 {
		opt.MinTime = 2 * time.Second
	}

	g := datasets.PreferentialAttachment(opt.N, opt.EdgesPerVertex, true, rng.New(1))
	g = graph.Trivalency.Assign(g, rng.New(2))
	seeds, err := datasets.RandomSeeds(g, cfg.NumSeeds, true, rng.New(3))
	if err != nil {
		return nil, err
	}
	unified, super := g.UnifySeeds(seeds)
	sampler := cascade.NewIC(unified)
	isSeed := make([]bool, unified.N())
	for _, s := range seeds {
		isSeed[s] = true
	}

	rep := &BenchCoreReport{
		Theta:       cfg.Theta,
		Budget:      opt.Budget,
		Workers:     cfg.Workers,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		GoVersion:   runtime.Version(),
		GeneratedBy: "cmd/experiments -exp benchcore",
	}
	rep.Graph.Generator = "preferential-attachment"
	rep.Graph.N = opt.N
	rep.Graph.EdgesPerVertex = opt.EdgesPerVertex
	rep.Graph.Edges = g.M()
	rep.Graph.NumSeeds = cfg.NumSeeds
	for _, w := range sweepWorkers() {
		rep.IncrementalScaling = append(rep.IncrementalScaling,
			BenchCoreScalingPoint{Workers: w, GoMaxProcs: rep.GoMaxProcs, NumCPU: rep.NumCPU})
	}

	// Fail the provenance check before spending minutes measuring.
	if opt.JSONPath != "" {
		if err := checkOverwrite(opt.JSONPath, rep, opt.Force); err != nil {
			return nil, err
		}
	}

	mainWorkers := effectiveWorkers(cfg.Workers, cfg.Theta)

	t0 := time.Now()
	pool := core.NewSamplePool(sampler, super, cfg.Theta, cfg.Workers, rng.New(cfg.Seed).Split(^uint64(0)))
	rep.PoolBuildMS = float64(time.Since(t0)) / float64(time.Millisecond)
	rep.PoolBytes = pool.MemoryBytes()

	// One greedy trajectory, recorded over the pooled estimator, replayed
	// by every mode so the measurement isolates DecreaseES.
	n := unified.N()
	blocked := make([]bool, n)
	delta := make([]float64, n)
	pooled := core.NewPooledEstimatorFromPool(pool, cfg.Workers, core.DomLengauerTarjan)
	pickBest := func(delta []float64) graph.V {
		best := graph.V(-1)
		for v := graph.V(0); int(v) < g.N(); v++ {
			if isSeed[v] || blocked[v] {
				continue
			}
			if best == -1 || delta[v] > delta[best] {
				best = v
			}
		}
		return best
	}
	traj := make([]graph.V, 0, opt.Budget)
	for round := 0; round < opt.Budget; round++ {
		pooled.DecreaseES(delta, blocked)
		best := pickBest(delta)
		if best == -1 {
			return nil, fmt.Errorf("benchcore: ran out of candidates at round %d", round)
		}
		blocked[best] = true
		traj = append(traj, best)
	}
	clear(blocked)

	measure := func(oneRun func()) (nsPerRound, bytesPerRound float64, rounds int64) {
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		for time.Since(start) < opt.MinTime {
			oneRun()
			rounds += int64(opt.Budget)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		return float64(elapsed.Nanoseconds()) / float64(rounds),
			float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(rounds), rounds
	}

	// Fresh: θ new samples every round.
	fresh := core.NewEstimator(sampler, cfg.Workers, core.DomLengauerTarjan)
	base := rng.New(cfg.Seed)
	round := uint64(0)
	ns, by, _ := measure(func() {
		for _, v := range traj {
			fresh.DecreaseES(delta, super, blocked, cfg.Theta, base.Split(round))
			round++
			blocked[v] = true
		}
		clear(blocked)
	})
	rep.Fresh = BenchCoreMode{NsPerRound: ns, BytesPerRound: by,
		SamplesPerSec: float64(cfg.Theta) / ns * 1e9, DirtySamplesPerRound: float64(cfg.Theta),
		Workers: mainWorkers, NumCPU: rep.NumCPU}

	// Pooled: full re-scan of the stored pool every round.
	ns, by, _ = measure(func() {
		for _, v := range traj {
			pooled.DecreaseES(delta, blocked)
			blocked[v] = true
		}
		clear(blocked)
	})
	rep.Pooled = BenchCoreMode{NsPerRound: ns, BytesPerRound: by,
		SamplesPerSec: float64(cfg.Theta) / ns * 1e9, DirtySamplesPerRound: float64(cfg.Theta),
		Workers: mainWorkers, NumCPU: rep.NumCPU}

	// Incremental: persistent estimator per sweep point, flips reported,
	// priming included in the first run and amortized like a warm session
	// would. The measurement goes through the zero-copy view API — the
	// path the greedy loops run — so it excludes the O(n) dst fill that
	// only the compatibility wrappers pay. Before timing a point, one
	// greedy selection re-derives the trajectory at that worker count and
	// is checked against the pooled trajectory — the
	// bit-identical-blockers guarantee, exercised at serving size.
	rep.BlockersIdenticalAcrossWorkers = true
	measureIncremental := func(pl *core.SamplePool, workers int) (BenchCoreMode, []core.ShardProfile, int64, error) {
		incr := core.NewIncrementalPooledEstimatorFromPool(pl, workers, core.DomLengauerTarjan)
		reTraj := make([]graph.V, 0, opt.Budget)
		flips := make([]graph.V, 0, opt.Budget)
		for range traj {
			vals := incr.DecreaseESFlipsView(blocked, flips)
			flips = flips[:0]
			best := pickBest(vals)
			if best == -1 {
				return BenchCoreMode{}, nil, 0, fmt.Errorf("benchcore: sweep at workers=%d ran out of candidates", workers)
			}
			blocked[best] = true
			flips = append(flips, best)
			reTraj = append(reTraj, best)
		}
		if !slices.Equal(reTraj, traj) {
			rep.BlockersIdenticalAcrossWorkers = false
		}
		for _, v := range traj {
			blocked[v] = false
			flips = append(flips, v)
		}
		st0 := incr.Stats()
		ns, by, rounds := measure(func() {
			for _, v := range traj {
				incr.DecreaseESFlipsView(blocked, flips)
				flips = flips[:0]
				blocked[v] = true
				flips = append(flips, v)
			}
			for _, v := range traj {
				blocked[v] = false
				flips = append(flips, v)
			}
		})
		st1 := incr.Stats()
		dirtyPerRound := float64(st1.SamplesReprocessed-st0.SamplesReprocessed) / float64(rounds)
		mode := BenchCoreMode{NsPerRound: ns, BytesPerRound: by,
			SamplesPerSec: dirtyPerRound / ns * 1e9, DirtySamplesPerRound: dirtyPerRound,
			Workers: effectiveWorkers(workers, cfg.Theta), NumCPU: rep.NumCPU}
		return mode, incr.ShardProfiles(), incr.Stats().SamplesStolen, nil
	}

	m, profs, stolen, err := measureIncremental(pool, cfg.Workers)
	if err != nil {
		return nil, err
	}
	rep.Incremental = m
	rep.SamplesStolen = stolen
	for s, pr := range profs {
		rep.ContentionProfile = append(rep.ContentionProfile, BenchCoreShard{
			Shard: s, Lo: pr.Lo, Hi: pr.Hi,
			Processed: pr.Processed, Stolen: pr.Stolen, Ns: pr.Ns,
		})
	}

	var oneWorkerNs float64
	var oneWorkerMode BenchCoreMode
	for i := range rep.IncrementalScaling {
		pt := &rep.IncrementalScaling[i]
		m := rep.Incremental
		if pt.Workers != rep.Incremental.Workers {
			// The sweep point matching the headline configuration reuses
			// that measurement instead of paying another priming pass and
			// MinTime of timed rounds for identical numbers.
			var err error
			m, _, _, err = measureIncremental(pool, pt.Workers)
			if err != nil {
				return nil, err
			}
		}
		pt.NsPerRound = m.NsPerRound
		if pt.Workers == 1 {
			oneWorkerNs = m.NsPerRound
			oneWorkerMode = m
		}
		if oneWorkerNs > 0 {
			pt.Speedup = oneWorkerNs / m.NsPerRound
			pt.Efficiency = pt.Speedup / float64(pt.Workers)
		}
		if pt.Workers == 4 {
			rep.SpeedupIncremental4WVs1W = pt.Speedup
		}
	}

	rep.SpeedupPooledVsFresh = rep.Fresh.NsPerRound / rep.Pooled.NsPerRound
	rep.SpeedupIncrementalVsPooled = rep.Pooled.NsPerRound / rep.Incremental.NsPerRound
	rep.SpeedupIncrementalVsFresh = rep.Fresh.NsPerRound / rep.Incremental.NsPerRound

	if opt.ScalingFloor > 0 {
		if rep.NumCPU >= 4 && rep.GoMaxProcs >= 4 {
			if rep.SpeedupIncremental4WVs1W < opt.ScalingFloor {
				return nil, fmt.Errorf("benchcore: 4-worker speedup %.2fx is below the %.2fx floor (gomaxprocs=%d, num_cpu=%d)",
					rep.SpeedupIncremental4WVs1W, opt.ScalingFloor, rep.GoMaxProcs, rep.NumCPU)
			}
		} else if cfg.Out != nil {
			fmt.Fprintf(cfg.Out, "scaling floor check skipped: gomaxprocs=%d num_cpu=%d (need 4 of each)\n",
				rep.GoMaxProcs, rep.NumCPU)
		}
	}

	// Encoding comparison: the flat single-worker point from the sweep
	// against a compressed pool of the same samples at the same worker
	// count. Same trajectory, same bit-identity assertion.
	t0 = time.Now()
	cpool := core.NewSamplePoolEnc(sampler, super, cfg.Theta, cfg.Workers,
		rng.New(cfg.Seed).Split(^uint64(0)), core.PoolCompressed)
	compBuildMS := float64(time.Since(t0)) / float64(time.Millisecond)
	compMode, _, _, err := measureIncremental(cpool, 1)
	if err != nil {
		return nil, err
	}
	rep.Encodings = []BenchCoreEncoding{
		{Encoding: "flat", PoolBytes: rep.PoolBytes, PoolBuildMS: rep.PoolBuildMS,
			NsPerRound: oneWorkerMode.NsPerRound, BytesPerRound: oneWorkerMode.BytesPerRound,
			Workers: 1, GoMaxProcs: rep.GoMaxProcs, NumCPU: rep.NumCPU},
		{Encoding: "compressed", PoolBytes: cpool.MemoryBytes(), PoolBuildMS: compBuildMS,
			NsPerRound: compMode.NsPerRound, BytesPerRound: compMode.BytesPerRound,
			Workers: 1, GoMaxProcs: rep.GoMaxProcs, NumCPU: rep.NumCPU},
	}
	rep.CompressedPoolBytesRatio = float64(cpool.MemoryBytes()) / float64(rep.PoolBytes)
	rep.CompressedNsPerRoundRatio = compMode.NsPerRound / oneWorkerMode.NsPerRound

	// Mutate-then-solve: per batch size, perturb that many random edges of
	// the serving instance through the dynamic overlay, then answer one
	// estimation round via warm-pool repair versus full rebuild. Priming the
	// warm estimator happens outside the timed section — a session carries
	// it from before the mutation.
	edges := unified.Edges()
	candidates := make([]int, 0, len(edges))
	for i, e := range edges {
		if e.From != super { // a super-seed edge would dirty every sample
			candidates = append(candidates, i)
		}
	}
	for _, frac := range []float64{0.001, 0.01} {
		k := int(frac * float64(g.M()))
		if k < 1 {
			k = 1
		}
		if k > len(candidates) {
			k = len(candidates)
		}
		// Deterministic distinct edge choice per fraction.
		sel := rng.New(cfg.Seed ^ uint64(k))
		perm := sel.Perm(len(candidates))
		muts := make([]dynamic.Mutation, k)
		for j := 0; j < k; j++ {
			e := edges[candidates[perm[j]]]
			muts[j] = dynamic.Mutation{Op: dynamic.OpSetProb, U: e.From, V: e.To, P: sel.Float64()}
		}
		dyn := dynamic.New(unified, dynamic.Config{})
		info, err := dyn.Commit(muts)
		if err != nil {
			return nil, fmt.Errorf("benchcore: mutate batch k=%d: %v", k, err)
		}
		snap, _ := dyn.Snapshot()
		newSampler := cascade.NewIC(snap)
		poolBase := func() *rng.Source { return rng.New(cfg.Seed).Split(^uint64(0)) }

		pt := BenchCoreMutatePoint{
			BatchEdges: k, FracOfEdges: float64(k) / float64(g.M()),
			Workers: mainWorkers, NumCPU: rep.NumCPU,
		}

		var repairVals, rebuildVals []float64
		var elapsed time.Duration
		var iters int64
		for elapsed < opt.MinTime {
			warm := core.NewIncrementalPooledEstimatorFromPool(pool, cfg.Workers, core.DomLengauerTarjan)
			warm.DecreaseESView(nil) // priming, untimed: the session did this pre-mutation
			t0 := time.Now()
			repaired, dirtyIDs := pool.Repair(newSampler, info.ChangedSources, cfg.Workers)
			warm.RepairPool(repaired, dirtyIDs)
			repairVals = append(repairVals[:0], warm.DecreaseESView(nil)...)
			elapsed += time.Since(t0)
			iters++
			pt.DirtySamples = len(dirtyIDs)
		}
		pt.RepairNs = float64(elapsed.Nanoseconds()) / float64(iters)

		elapsed, iters = 0, 0
		for elapsed < opt.MinTime {
			t0 := time.Now()
			rebuilt := core.NewSamplePool(newSampler, super, cfg.Theta, cfg.Workers, poolBase())
			cold := core.NewIncrementalPooledEstimatorFromPool(rebuilt, cfg.Workers, core.DomLengauerTarjan)
			rebuildVals = append(rebuildVals[:0], cold.DecreaseESView(nil)...)
			elapsed += time.Since(t0)
			iters++
		}
		pt.RebuildNs = float64(elapsed.Nanoseconds()) / float64(iters)

		pt.Speedup = pt.RebuildNs / pt.RepairNs
		pt.RepairBitIdentical = slices.Equal(repairVals, rebuildVals)
		rep.MutateRepair = append(rep.MutateRepair, pt)
	}

	persist, err := measureBenchPersist(g, cfg.Seed, opt.MinTime)
	if err != nil {
		return nil, fmt.Errorf("benchcore: persist measurements: %v", err)
	}
	rep.Persist = persist

	instr, err := measureInstrumentation(g, seeds, cfg, opt)
	if err != nil {
		return nil, fmt.Errorf("benchcore: instrumentation measurements: %v", err)
	}
	rep.Instrumentation = instr

	if cfg.Out != nil {
		fmt.Fprintf(cfg.Out, "graph: PA n=%d epv=%g (%d edges), %d seeds; θ=%d b=%d workers=%d (effective %d, gomaxprocs %d, num_cpu %d)\n",
			opt.N, opt.EdgesPerVertex, g.M(), cfg.NumSeeds, cfg.Theta, opt.Budget, cfg.Workers, mainWorkers, rep.GoMaxProcs, rep.NumCPU)
		fmt.Fprintf(cfg.Out, "pool: %d samples, %.1f MB, built in %.0f ms\n",
			cfg.Theta, float64(rep.PoolBytes)/(1<<20), rep.PoolBuildMS)
		fmt.Fprintf(cfg.Out, "%-12s %8s %14s %16s %14s %18s\n", "mode", "workers", "ns/round", "samples/sec", "bytes/round", "dirty samples/rnd")
		for _, row := range []struct {
			name string
			m    BenchCoreMode
		}{{"fresh", rep.Fresh}, {"pooled", rep.Pooled}, {"incremental", rep.Incremental}} {
			fmt.Fprintf(cfg.Out, "%-12s %8d %14.0f %16.0f %14.0f %18.1f\n",
				row.name, row.m.Workers, row.m.NsPerRound, row.m.SamplesPerSec, row.m.BytesPerRound, row.m.DirtySamplesPerRound)
		}
		fmt.Fprintf(cfg.Out, "speedups: pooled/fresh %.2fx, incremental/pooled %.2fx, incremental/fresh %.2fx\n",
			rep.SpeedupPooledVsFresh, rep.SpeedupIncrementalVsPooled, rep.SpeedupIncrementalVsFresh)
		fmt.Fprintf(cfg.Out, "incremental worker sweep (blockers identical across counts: %v):\n",
			rep.BlockersIdenticalAcrossWorkers)
		for _, pt := range rep.IncrementalScaling {
			fmt.Fprintf(cfg.Out, "  workers=%-3d %12.0f ns/round  speedup %.2fx  efficiency %.2f\n",
				pt.Workers, pt.NsPerRound, pt.Speedup, pt.Efficiency)
		}
		fmt.Fprintf(cfg.Out, "contention profile (headline incremental, %d stolen total):\n", rep.SamplesStolen)
		for _, sh := range rep.ContentionProfile {
			fmt.Fprintf(cfg.Out, "  shard %-3d [%6d,%6d) processed %-10d stolen %-8d %12d ns\n",
				sh.Shard, sh.Lo, sh.Hi, sh.Processed, sh.Stolen, sh.Ns)
		}
		fmt.Fprintf(cfg.Out, "pool encodings (incremental, workers=1): compressed/flat bytes %.2f, ns/round %.2f\n",
			rep.CompressedPoolBytesRatio, rep.CompressedNsPerRoundRatio)
		for _, e := range rep.Encodings {
			fmt.Fprintf(cfg.Out, "  %-11s %10.1f MB pool (built %6.0f ms) %12.0f ns/round %12.0f bytes/round\n",
				e.Encoding, float64(e.PoolBytes)/(1<<20), e.PoolBuildMS, e.NsPerRound, e.BytesPerRound)
		}
		fmt.Fprintf(cfg.Out, "mutate-then-solve (repair vs rebuild, θ=%d):\n", cfg.Theta)
		for _, pt := range rep.MutateRepair {
			fmt.Fprintf(cfg.Out, "  batch=%-6d (%.2f%% of edges) dirty=%-5d repair %11.0f ns, rebuild %11.0f ns, speedup %.2fx, bit-identical %v\n",
				pt.BatchEdges, 100*pt.FracOfEdges, pt.DirtySamples, pt.RepairNs, pt.RebuildNs, pt.Speedup, pt.RepairBitIdentical)
		}
		fmt.Fprintf(cfg.Out, "persist: WAL write-through per %d-mutation batch (bare commit %0.f ns):\n",
			rep.Persist.BatchMutations, rep.Persist.CommitNs)
		for _, p := range rep.Persist.Policies {
			fmt.Fprintf(cfg.Out, "  fsync=%-9s %11.0f ns/batch (WAL share %8.0f ns, overhead %5.1f%%)\n",
				p.Policy, p.CommitAppendNs, p.AppendNs, p.OverheadPct)
		}
		fmt.Fprintf(cfg.Out, "persist: recovery time vs WAL length:\n")
		for _, p := range rep.Persist.Recovery {
			fmt.Fprintf(cfg.Out, "  wal=%-5d batches (%8d bytes) recover %8.1f ms (replayed %d)\n",
				p.WALBatches, p.WALBytes, p.RecoverMS, p.ReplayedBatches)
		}
		fmt.Fprintf(cfg.Out, "instrumentation (OnRound hook, workers=%d): off %0.f ns/round, on %0.f ns/round, overhead %+.2f%% (rounds observed %d, blockers identical %v)\n",
			rep.Instrumentation.Workers, rep.Instrumentation.UninstrumentedNsPerRound,
			rep.Instrumentation.InstrumentedNsPerRound, rep.Instrumentation.OverheadPct,
			rep.Instrumentation.RoundsObserved, rep.Instrumentation.BlockersIdentical)
	}

	if opt.JSONPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return nil, err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(opt.JSONPath, buf, 0o644); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// persistBatchMutations is the mutate-batch size the persist measurements
// use, and persistMaxBatches caps how many batches a timed loop writes so
// a fast disk cannot balloon the scratch WAL past tens of megabytes.
const (
	persistBatchMutations = 100
	persistMaxBatches     = 16384
)

// measureBenchPersist times the durable store against the serving graph:
// per fsync policy, the cost of one durable mutate (in-memory commit + WAL
// append) relative to the bare commit; then recovery time as the WAL tail
// grows. Everything runs in throwaway temp directories.
func measureBenchPersist(g *graph.Graph, seed uint64, minTime time.Duration) (*BenchCorePersist, error) {
	edges := g.Edges()
	if len(edges) == 0 {
		return nil, fmt.Errorf("serving graph has no edges")
	}
	// A fixed cycle of deterministic set-prob batches, reused by every
	// measurement so baseline and policies replay identical work.
	const cycle = 256
	batches := make([][]dynamic.Mutation, cycle)
	sel := rng.New(seed ^ 0x9e15)
	for i := range batches {
		muts := make([]dynamic.Mutation, persistBatchMutations)
		for j := range muts {
			e := edges[sel.Intn(len(edges))]
			muts[j] = dynamic.Mutation{Op: dynamic.OpSetProb, U: e.From, V: e.To, P: sel.Float64()}
		}
		batches[i] = muts
	}

	out := &BenchCorePersist{BatchMutations: persistBatchMutations}

	// Baseline: bare in-memory commit latency, the denominator the WAL
	// overhead is expressed against. Min of interleavable rounds would
	// change nothing here (the loop is self-contained), so one pass.
	{
		d := dynamic.New(g, dynamic.Config{})
		var iters int64
		start := time.Now()
		for time.Since(start) < minTime && iters < persistMaxBatches {
			if _, err := d.Commit(batches[iters%cycle]); err != nil {
				return nil, err
			}
			iters++
		}
		out.CommitNs = float64(time.Since(start).Nanoseconds()) / float64(iters)
	}

	// Per policy, the WAL append is measured in isolation — encode, frame,
	// write, and the policy's fsync behavior — rather than as the
	// difference of two commit-dominated totals, whose machine noise (the
	// commit is ~30x the append) would swamp the quantity under test.
	// Epochs just count up; the WAL does not care that no graph is
	// attached.
	for _, policy := range []store.FsyncPolicy{store.FsyncNone, store.FsyncInterval, store.FsyncAlways} {
		dir, err := os.MkdirTemp("", "imind-bench-persist-*")
		if err != nil {
			return nil, err
		}
		measure := func() (float64, error) {
			st, err := store.Open(dir, store.Config{Fsync: policy})
			if err != nil {
				return 0, err
			}
			defer st.Close()
			gs, err := st.Create("bench", g, 0, "benchcore", "TR")
			if err != nil {
				return 0, err
			}
			epoch := uint64(0)
			var iters int64
			var enc []byte
			start := time.Now()
			for time.Since(start) < minTime && iters < persistMaxBatches {
				epoch++
				// Encode inside the timed loop: it is part of what a
				// durable mutate pays per batch.
				enc, err = dynamic.EncodeBatch(enc[:0], batches[iters%cycle])
				if err != nil {
					return 0, err
				}
				if err := gs.Append(context.Background(), epoch, enc); err != nil {
					return 0, err
				}
				iters++
			}
			return float64(time.Since(start).Nanoseconds()) / float64(iters), nil
		}
		ns, err := measure()
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		out.Policies = append(out.Policies, BenchCorePersistPolicy{
			Policy:         string(policy),
			CommitAppendNs: out.CommitNs + ns,
			AppendNs:       ns,
			OverheadPct:    100 * ns / out.CommitNs,
		})
	}

	// Recovery time vs WAL length: write k batches under fsync none (the
	// content, not the write path, is under test), then time Open+Recover.
	for _, k := range []int{0, 64, 512} {
		dir, err := os.MkdirTemp("", "imind-bench-recover-*")
		if err != nil {
			return nil, err
		}
		st, err := store.Open(dir, store.Config{Fsync: store.FsyncNone})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		gs, err := st.Create("bench", g, 0, "benchcore", "TR")
		if err != nil {
			st.Close()
			os.RemoveAll(dir)
			return nil, err
		}
		d := dynamic.New(g, dynamic.Config{})
		for i := 0; i < k; i++ {
			info, err := d.Commit(batches[i%cycle])
			if err == nil {
				var enc []byte
				if enc, err = dynamic.EncodeBatch(nil, batches[i%cycle]); err == nil {
					err = gs.Append(context.Background(), info.Epoch, enc)
				}
			}
			if err != nil {
				st.Close()
				os.RemoveAll(dir)
				return nil, err
			}
		}
		walBytes := gs.WALSize()
		if err := st.Close(); err != nil {
			os.RemoveAll(dir)
			return nil, err
		}

		pt := BenchCoreRecoveryPoint{WALBatches: k, WALMutations: k * persistBatchMutations, WALBytes: walBytes}
		var elapsed time.Duration
		var iters int64
		for elapsed < minTime/2 && iters < 16 {
			t0 := time.Now()
			st2, err := store.Open(dir, store.Config{Fsync: store.FsyncNone})
			if err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			recs, err := st2.Recover()
			if err != nil {
				st2.Close()
				os.RemoveAll(dir)
				return nil, err
			}
			if len(recs) != 1 {
				st2.Close()
				os.RemoveAll(dir)
				return nil, fmt.Errorf("recovery sanity: %d graphs, want 1", len(recs))
			}
			if recs[0].Epoch() != uint64(k) {
				st2.Close()
				os.RemoveAll(dir)
				return nil, fmt.Errorf("recovery sanity: epoch %d, want %d", recs[0].Epoch(), k)
			}
			pt.ReplayedBatches = recs[0].ReplayedBatches
			elapsed += time.Since(t0)
			iters++
			if err := st2.Close(); err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
		}
		pt.RecoverMS = float64(elapsed) / float64(time.Millisecond) / float64(iters)
		os.RemoveAll(dir)
		out.Recovery = append(out.Recovery, pt)
	}
	return out, nil
}

// measureInstrumentation times the same warm-pool AdvancedGreedy solve with
// the OnRound hook absent and present. The hooked variant performs exactly
// the per-round work internal/service's observer does — one latency
// histogram observation, a labeled-counter resolve + increment, two counter
// adds, and the flight recorder's SolveCost accumulation — so the measured
// delta is the real serving-path tax of turning metrics plus cost
// accounting on, and the committed ≤2% bar covers both.
func measureInstrumentation(g *graph.Graph, seeds []graph.V, cfg Config, opt BenchCoreOptions) (*BenchCoreInstrumentation, error) {
	reg := obs.NewRegistry()
	roundSeconds := reg.Histogram("bench_solve_round_seconds", "per-round latency", obs.DefTimeBuckets)
	rounds := reg.CounterVec("bench_solve_rounds_total", "rounds by phase", "phase")
	dirty := reg.Counter("bench_solve_dirty_samples_total", "dirty samples")
	stolen := reg.Counter("bench_solve_stolen_samples_total", "stolen samples")

	var observed int64
	var cost diag.SolveCost
	hook := func(ri core.RoundInfo) {
		observed++
		cost.AddRound(ri.Duration, ri.SamplesDirty, ri.SamplesStolen)
		roundSeconds.Observe(ri.Duration.Seconds())
		rounds.With(ri.Phase).Inc()
		dirty.Add(float64(ri.SamplesDirty))
		stolen.Add(float64(ri.SamplesStolen))
	}

	solveOpt := core.Options{
		Theta: cfg.Theta, Seed: cfg.Seed, Workers: cfg.Workers, ReuseSamples: true,
	}
	run := func(onRound func(core.RoundInfo), budget time.Duration) (nsPerRound float64, blockers []graph.V, err error) {
		o := solveOpt
		o.OnRound = onRound
		var elapsed time.Duration
		var timedRounds int64
		for elapsed < budget {
			t0 := time.Now()
			res, err := core.Solve(g, seeds, opt.Budget, core.AdvancedGreedy, o)
			if err != nil {
				return 0, nil, err
			}
			elapsed += time.Since(t0)
			timedRounds += int64(opt.Budget)
			if blockers == nil {
				blockers = res.Blockers
			}
		}
		return float64(elapsed.Nanoseconds()) / float64(timedRounds), blockers, nil
	}

	// The true hook cost is a handful of field updates per round, far below
	// run-to-run scheduler noise. Alternating off/on segments and keeping
	// each arm's minimum ns/round (the classic low-noise estimator) makes
	// the reported overhead reflect the hook, not which arm drew the
	// noisier scheduling — the ≤2% acceptance bar gates on this number.
	const pairs = 3
	var offNs, onNs float64
	var offBlockers, onBlockers []graph.V
	segment := opt.MinTime / (2 * pairs)
	for i := 0; i < pairs; i++ {
		ns, blockers, err := run(nil, segment)
		if err != nil {
			return nil, err
		}
		if offNs == 0 || ns < offNs {
			offNs = ns
		}
		offBlockers = blockers
		if ns, blockers, err = run(hook, segment); err != nil {
			return nil, err
		}
		if onNs == 0 || ns < onNs {
			onNs = ns
		}
		onBlockers = blockers
	}
	return &BenchCoreInstrumentation{
		UninstrumentedNsPerRound: offNs,
		InstrumentedNsPerRound:   onNs,
		OverheadPct:              100 * (onNs - offNs) / offNs,
		RoundsObserved:           observed,
		BlockersIdentical:        slices.Equal(offBlockers, onBlockers),
		Workers:                  effectiveWorkers(cfg.Workers, cfg.Theta),
	}, nil
}
