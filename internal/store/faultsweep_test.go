package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"github.com/imin-dev/imin/internal/core"
	"github.com/imin-dev/imin/internal/dynamic"
	"github.com/imin-dev/imin/internal/faultfs"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// The crash-point sweep: enumerate every filesystem operation of a fixed
// register → mutate → checkpoint → mutate workload, then re-run the
// workload in a subprocess once per state-changing operation with a fault
// rule that kills the process right before (or, for WAL writes, halfway
// through) that operation. After each kill the parent recovers the
// directory with the real filesystem and asserts the durability
// invariants:
//
//   - recovery itself never fails — a crash may lose unacknowledged work,
//     never the store's ability to start;
//   - every acknowledged batch survives (recovered epoch >= last acked);
//   - the recovered graph is byte-equal to the control replay at the
//     recovered epoch; and
//   - a ReuseSamples solve on the recovered graph is bit-identical to the
//     same solve on the unkilled control at that epoch.
//
// The workload must stay fully deterministic and single-threaded: the
// subprocess relies on replaying the identical operation sequence.

const (
	sweepGraphSeed  = 7
	sweepRNGSeed    = 21
	sweepBatchSize  = 4
	sweepPreBatches = 3 // committed before the checkpoint
	sweepPostBatch  = 2 // committed after the checkpoint
	sweepFinalEpoch = sweepPreBatches + sweepPostBatch
)

func sweepGraph() *graph.Graph { return testGraph(40, 150, sweepGraphSeed) }

// sweepAck appends an acknowledged epoch to the ack file through the REAL
// filesystem: the ack channel stands in for the HTTP 200 the serving layer
// would send and must never be subject to injected faults.
func sweepAck(path string, epoch uint64) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		panic(err)
	}
	fmt.Fprintf(f, "%d\n", epoch)
	if err := f.Sync(); err != nil {
		panic(err)
	}
	if err := f.Close(); err != nil {
		panic(err)
	}
}

// runSweepWorkload executes the deterministic workload against fs, acking
// each durable step to ackPath. Any step may crash the process (via an
// injected crash rule) or fail with an injected error.
func runSweepWorkload(fs faultfs.FS, dir, ackPath string) error {
	st, err := Open(dir, Config{Fsync: FsyncAlways, FS: fs})
	if err != nil {
		return err
	}
	g := sweepGraph()
	gs, err := st.Create("g", g, 0, "sweep", "TR")
	if err != nil {
		return err
	}
	sweepAck(ackPath, 0)
	live := dynamic.New(g, dynamic.Config{})
	r := rng.New(sweepRNGSeed)
	commit := func() error {
		muts := randomBatch(live, sweepBatchSize, r)
		batch, err := dynamic.EncodeBatch(nil, muts)
		if err != nil {
			return err
		}
		info, err := live.Commit(muts)
		if err != nil {
			return err
		}
		if err := gs.Append(context.Background(), info.Epoch, batch); err != nil {
			return err
		}
		sweepAck(ackPath, info.Epoch) // FsyncAlways: the append is on disk
		return nil
	}
	for i := 0; i < sweepPreBatches; i++ {
		if err := commit(); err != nil {
			return err
		}
	}
	snap, epoch := live.Snapshot()
	gen, err := gs.BeginCheckpoint(context.Background())
	if err != nil {
		return err
	}
	if err := gs.CompleteCheckpoint(context.Background(), gen, snap, epoch); err != nil {
		return err
	}
	for i := 0; i < sweepPostBatch; i++ {
		if err := commit(); err != nil {
			return err
		}
	}
	return st.Close()
}

// sweepReplay rebuilds the control graph at each epoch 0..sweepFinalEpoch
// by replaying the workload's deterministic batch sequence in memory.
func sweepReplay() map[uint64]*graph.Graph {
	live := dynamic.New(sweepGraph(), dynamic.Config{})
	r := rng.New(sweepRNGSeed)
	out := make(map[uint64]*graph.Graph, sweepFinalEpoch+1)
	snap, _ := live.Snapshot()
	out[0] = snap
	for e := uint64(1); e <= sweepFinalEpoch; e++ {
		muts := randomBatch(live, sweepBatchSize, r)
		if _, err := live.Commit(muts); err != nil {
			panic(err)
		}
		snap, _ := live.Snapshot()
		out[e] = snap
	}
	return out
}

// sweepSolve runs the reference ReuseSamples solve whose result must be
// bit-identical between a recovered graph and the unkilled control.
func sweepSolve(g *graph.Graph) core.Result {
	var domAlgo core.DomAlgo
	sess := core.NewSession(g, core.DiffusionIC, domAlgo, 1)
	res, err := sess.Solve(context.Background(), []graph.V{1, 3, 5}, 3, core.GreedyReplace, core.Options{
		Theta:        200,
		MCSRounds:    50,
		Seed:         42,
		Workers:      1,
		ReuseSamples: true,
	})
	if err != nil {
		panic(err)
	}
	return res
}

// sweepMutatingOps are the operation kinds that change on-disk state; a
// crash immediately before a read-only op is indistinguishable from a
// crash before the next state-changing one, so only these become sites.
var sweepMutatingOps = map[faultfs.Op]bool{
	faultfs.OpCreate:    true,
	faultfs.OpOpenFile:  true,
	faultfs.OpRename:    true,
	faultfs.OpRemove:    true,
	faultfs.OpRemoveAll: true,
	faultfs.OpMkdirAll:  true,
	faultfs.OpWriteFile: true,
	faultfs.OpWrite:     true,
	faultfs.OpSync:      true,
	faultfs.OpTruncate:  true,
}

type sweepSite struct {
	info    faultfs.OpInfo
	mode    faultfs.Mode
	op      faultfs.Op
	pathSub string
	nth     int64
}

// TestCrashPointSweepChild is the subprocess body; the parent launches it
// with the crash rule in the environment. It is skipped in normal runs.
func TestCrashPointSweepChild(t *testing.T) {
	if os.Getenv("IMIN_SWEEP_CHILD") != "1" {
		t.Skip("crash-sweep subprocess; driven by TestCrashPointSweep")
	}
	nth, err := strconv.ParseInt(os.Getenv("IMIN_SWEEP_NTH"), 10, 64)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad IMIN_SWEEP_NTH:", err)
		os.Exit(2)
	}
	mode := faultfs.ModeCrashBefore
	if os.Getenv("IMIN_SWEEP_MODE") == "torn" {
		mode = faultfs.ModeTornWrite
	}
	inj := faultfs.NewInjector(nil)
	inj.SetRules(faultfs.Rule{
		Op:           faultfs.Op(os.Getenv("IMIN_SWEEP_OP")),
		PathContains: os.Getenv("IMIN_SWEEP_PATHSUB"),
		Nth:          int(nth),
		Mode:         mode,
	})
	dir := os.Getenv("IMIN_SWEEP_DIR")
	err = runSweepWorkload(inj, filepath.Join(dir, "state"), filepath.Join(dir, "acked"))
	// Reaching this line means the crash rule never fired: the subprocess
	// replayed a different operation sequence than the parent enumerated.
	fmt.Fprintf(os.Stderr, "workload finished without crashing (err=%v)\n", err)
	os.Exit(3)
}

func TestCrashPointSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess-per-site sweep; skipped with -short")
	}

	// Control: the unkilled workload must succeed outright, and its
	// recovered state must match the in-memory replay at the final epoch —
	// anchoring the replay as ground truth for every crashed run.
	replays := sweepReplay()
	ctrlDir := t.TempDir()
	if err := runSweepWorkload(faultfs.OS, filepath.Join(ctrlDir, "state"), filepath.Join(ctrlDir, "acked")); err != nil {
		t.Fatalf("control workload: %v", err)
	}
	ctrlRec := sweepRecover(t, filepath.Join(ctrlDir, "state"))
	if ctrlRec == nil || ctrlRec.Epoch() != sweepFinalEpoch {
		t.Fatalf("control recovery: %+v", ctrlRec)
	}
	ctrlSnap, _ := ctrlRec.Dyn.Snapshot()
	assertSameGraph(t, replays[sweepFinalEpoch], ctrlSnap)
	ctrlSolves := make(map[uint64]core.Result, sweepFinalEpoch+1)

	// Enumerate the workload's operation sequence with a tracing injector.
	enumDir := t.TempDir()
	enum := faultfs.NewInjector(nil)
	enum.SetTracing(true)
	if err := runSweepWorkload(enum, filepath.Join(enumDir, "state"), filepath.Join(enumDir, "acked")); err != nil {
		t.Fatalf("enumeration workload: %v", err)
	}
	trace := enum.Trace()
	if len(trace) == 0 {
		t.Fatal("empty trace: the injector saw no filesystem operations")
	}

	// Build the site list: a crash-before run per state-changing op, plus a
	// torn-write run per WAL write.
	var sites []sweepSite
	kindCount := map[faultfs.Op]int64{}
	var walWrites int64
	for _, info := range trace {
		kindCount[info.Op]++
		if !sweepMutatingOps[info.Op] {
			continue
		}
		sites = append(sites, sweepSite{info: info, mode: faultfs.ModeCrashBefore, op: info.Op, nth: kindCount[info.Op]})
		if info.Op == faultfs.OpWrite && strings.Contains(filepath.Base(info.Path), "wal-") {
			walWrites++
			sites = append(sites, sweepSite{info: info, mode: faultfs.ModeTornWrite, op: faultfs.OpWrite, pathSub: "wal-", nth: walWrites})
		}
	}
	if len(sites) < 20 {
		t.Fatalf("only %d sweep sites — the workload no longer exercises the store", len(sites))
	}

	var table []string
	for _, site := range sites {
		modeName := "crash"
		if site.mode == faultfs.ModeTornWrite {
			modeName = "torn"
		}
		label := fmt.Sprintf("%s@%s", modeName, site.info)
		dir := t.TempDir()
		cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashPointSweepChild$", "-test.v")
		cmd.Env = append(os.Environ(),
			"IMIN_SWEEP_CHILD=1",
			"IMIN_SWEEP_DIR="+dir,
			"IMIN_SWEEP_OP="+string(site.op),
			"IMIN_SWEEP_PATHSUB="+site.pathSub,
			"IMIN_SWEEP_NTH="+strconv.FormatInt(site.nth, 10),
			"IMIN_SWEEP_MODE="+modeName,
		)
		out, err := cmd.CombinedOutput()
		var exitErr *exec.ExitError
		if !errors.As(err, &exitErr) || exitErr.ExitCode() != faultfs.CrashExitCode {
			t.Errorf("%s: subprocess exit = %v, want crash code %d\n%s", label, err, faultfs.CrashExitCode, out)
			table = append(table, fmt.Sprintf("FAIL %-50s no crash", label))
			continue
		}

		acked, haveAck := lastAckedEpoch(t, filepath.Join(dir, "acked"))
		rec := sweepRecover(t, filepath.Join(dir, "state"))
		if rec == nil {
			if haveAck {
				t.Errorf("%s: acked up to epoch %d but nothing recovered", label, acked)
				table = append(table, fmt.Sprintf("FAIL %-50s acked=%d recovered nothing", label, acked))
			} else {
				table = append(table, fmt.Sprintf("ok   %-50s crashed before registration", label))
			}
			continue
		}
		e := rec.Epoch()
		ok := true
		if haveAck && e < acked {
			t.Errorf("%s: recovered epoch %d < last acked %d — acknowledged batch lost", label, e, acked)
			ok = false
		}
		if e > sweepFinalEpoch {
			t.Errorf("%s: recovered epoch %d beyond the workload's final %d", label, e, sweepFinalEpoch)
			ok = false
		}
		if ok {
			snap, _ := rec.Dyn.Snapshot()
			assertSameGraph(t, replays[e], snap)
			ctrl, cached := ctrlSolves[e]
			if !cached {
				ctrl = sweepSolve(replays[e])
				ctrlSolves[e] = ctrl
			}
			got := sweepSolve(snap)
			if fmt.Sprint(got.Blockers) != fmt.Sprint(ctrl.Blockers) || got.SampledGraphs != ctrl.SampledGraphs {
				t.Errorf("%s: recovered solve diverged at epoch %d: blockers %v (want %v), samples %d (want %d)",
					label, e, got.Blockers, ctrl.Blockers, got.SampledGraphs, ctrl.SampledGraphs)
				ok = false
			}
		}
		status := "ok  "
		if !ok {
			status = "FAIL"
		}
		table = append(table, fmt.Sprintf("%s %-50s acked=%d recovered=%d", status, label, acked, e))
	}

	report := fmt.Sprintf("crash-point sweep: %d sites\n%s\n", len(sites), strings.Join(table, "\n"))
	if out := os.Getenv("FAULT_MATRIX_OUT"); out != "" {
		if err := os.WriteFile(out, []byte(report), 0o644); err != nil {
			t.Errorf("writing fault matrix to %s: %v", out, err)
		}
	}
	t.Log(report)
}

// sweepRecover opens the crashed directory with the real filesystem and
// recovers it; any error fails the test (recovery must always succeed).
// Returns nil when no graph had been durably registered yet.
func sweepRecover(t *testing.T, dir string) *Recovered {
	t.Helper()
	st, err := Open(dir, Config{Fsync: FsyncAlways})
	if err != nil {
		t.Fatalf("reopening crashed store: %v", err)
	}
	defer st.Close()
	recs, err := st.Recover()
	if err != nil {
		t.Fatalf("recovering crashed store: %v", err)
	}
	if len(recs) == 0 {
		return nil
	}
	if len(recs) != 1 || recs[0].Name != "g" {
		t.Fatalf("recovered %d graphs: %+v", len(recs), recs)
	}
	return recs[0]
}

func lastAckedEpoch(t *testing.T, path string) (uint64, bool) {
	t.Helper()
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, false
	}
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Fields(strings.TrimSpace(string(data)))
	if len(lines) == 0 {
		return 0, false
	}
	e, err := strconv.ParseUint(lines[len(lines)-1], 10, 64)
	if err != nil {
		t.Fatalf("ack file %q: %v", string(data), err)
	}
	return e, true
}
