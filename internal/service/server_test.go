package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/imin-dev/imin/internal/core"
	"github.com/imin-dev/imin/internal/graph"
)

// newTestServer returns the service and an httptest front end. SolveWorkers
// is pinned to 2 so responses are comparable with direct core.Solve calls
// (the estimator's sample split depends on the worker count).
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.SolveWorkers == 0 {
		cfg.SolveWorkers = 2
	}
	if cfg.DefaultEvalRounds == 0 {
		cfg.DefaultEvalRounds = 500
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body any, out any) (int, string) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw.Bytes(), out); err != nil {
			t.Fatalf("decode %s: %v (body %s)", url, err, raw.String())
		}
	}
	return resp.StatusCode, raw.String()
}

func registerTestGraphs(t *testing.T, ts *httptest.Server) {
	t.Helper()
	for _, req := range []RegisterGraphRequest{
		{Name: "g1", Generator: "preferential-attachment", N: 400, EdgesPerVertex: 4, Directed: true, Seed: 1},
		{Name: "g2", Generator: "erdos-renyi", N: 300, M: 1500, Directed: true, Seed: 2},
	} {
		if code, body := postJSON(t, ts.URL+"/graphs", req, nil); code != http.StatusCreated {
			t.Fatalf("register %s: status %d, body %s", req.Name, code, body)
		}
	}
}

func TestRegisterAndList(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	registerTestGraphs(t, ts)

	resp, err := http.Get(ts.URL + "/graphs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].Name != "g1" || list[1].Name != "g2" {
		t.Fatalf("list = %+v, want g1, g2", list)
	}
	if list[0].Vertices != 400 || list[0].Edges == 0 {
		t.Errorf("g1 info = %+v", list[0])
	}
	if srv.Registry().Len() != 2 {
		t.Errorf("registry len = %d", srv.Registry().Len())
	}

	// Names are single-use: re-registering must conflict, not replace.
	code, _ := postJSON(t, ts.URL+"/graphs",
		RegisterGraphRequest{Name: "g1", Generator: "erdos-renyi", N: 10, M: 20}, nil)
	if code != http.StatusConflict {
		t.Errorf("duplicate register: status %d, want 409", code)
	}

	// Unknown graph solves 404.
	code, _ = postJSON(t, ts.URL+"/graphs/nope/solve", SolveRequest{Budget: 1}, nil)
	if code != http.StatusNotFound {
		t.Errorf("unknown graph: status %d, want 404", code)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

// The heart of the acceptance criteria: parallel solves on the same and on
// different graphs must return exactly what a direct core.Solve on the
// registered graph returns.
func TestConcurrentSolvesMatchDirect(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxConcurrent: 4})
	registerTestGraphs(t, ts)

	type testCase struct {
		graph string
		req   SolveRequest
	}
	cases := []testCase{
		{"g1", SolveRequest{Seeds: []int{1, 7}, Budget: 5, Algorithm: "advanced-greedy", Theta: 200, Seed: 42, EvalRounds: -1}},
		{"g1", SolveRequest{Seeds: []int{1, 7}, Budget: 5, Algorithm: "greedy-replace", Theta: 200, Seed: 42, EvalRounds: -1}},
		{"g2", SolveRequest{Seeds: []int{3}, Budget: 4, Algorithm: "advanced-greedy", Theta: 150, Seed: 9, EvalRounds: -1}},
		{"g2", SolveRequest{Seeds: []int{3}, Budget: 4, Algorithm: "outdegree", Theta: 150, Seed: 9, EvalRounds: -1}},
	}

	// Direct reference answers on the very graphs the server registered.
	want := make([][]int, len(cases))
	for i, tc := range cases {
		entry, ok := srv.Registry().Get(tc.graph)
		if !ok {
			t.Fatalf("graph %s not registered", tc.graph)
		}
		seeds := make([]graph.V, len(tc.req.Seeds))
		for j, s := range tc.req.Seeds {
			seeds[j] = graph.V(s)
		}
		entryG, _ := entry.Current()
		res, err := core.Solve(entryG, seeds, tc.req.Budget, core.Algorithm(tc.req.Algorithm),
			core.Options{Theta: tc.req.Theta, Seed: tc.req.Seed, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = verticesToInts(res.Blockers)
	}

	// Fire every case several times in parallel: same-graph requests race
	// on one session, different graphs on different sessions.
	const repeats = 3
	var wg sync.WaitGroup
	errs := make(chan error, len(cases)*repeats)
	for rep := 0; rep < repeats; rep++ {
		for i, tc := range cases {
			wg.Add(1)
			go func(i int, tc testCase) {
				defer wg.Done()
				var resp SolveResponse
				code, body := postJSON(t, fmt.Sprintf("%s/graphs/%s/solve", ts.URL, tc.graph), tc.req, &resp)
				if code != http.StatusOK {
					errs <- fmt.Errorf("case %d: status %d body %s", i, code, body)
					return
				}
				if !reflect.DeepEqual(resp.Blockers, want[i]) {
					errs <- fmt.Errorf("case %d: blockers %v, want %v", i, resp.Blockers, want[i])
				}
			}(i, tc)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// A second solve on the same (graph, model) must hit the warm session and
// skip setup, observable through the response flag and /stats.
func TestWarmSolveHitsSessionCache(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerTestGraphs(t, ts)

	req := SolveRequest{Seeds: []int{2, 5}, Budget: 3, Algorithm: "advanced-greedy", Theta: 150, Seed: 7}
	var first, second SolveResponse
	if code, body := postJSON(t, ts.URL+"/graphs/g1/solve", req, &first); code != http.StatusOK {
		t.Fatalf("first solve: %d %s", code, body)
	}
	if first.SessionCacheHit {
		t.Error("first solve reported a session cache hit")
	}
	if code, body := postJSON(t, ts.URL+"/graphs/g1/solve", req, &second); code != http.StatusOK {
		t.Fatalf("second solve: %d %s", code, body)
	}
	if !second.SessionCacheHit {
		t.Error("second solve did not hit the session cache")
	}
	if !reflect.DeepEqual(first.Blockers, second.Blockers) {
		t.Errorf("warm blockers %v != cold blockers %v", second.Blockers, first.Blockers)
	}
	if first.SpreadBefore == nil || first.SpreadAfter == nil {
		t.Fatal("spread report missing")
	}
	// Independent Monte-Carlo estimates: tolerate sampling noise.
	if *first.SpreadAfter > *first.SpreadBefore*1.1 {
		t.Errorf("blocking increased spread: %v -> %v", *first.SpreadBefore, *first.SpreadAfter)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Sessions.Hits < 1 {
		t.Errorf("stats hits = %d, want >= 1", stats.Sessions.Hits)
	}
	if stats.Sessions.Misses != 1 {
		t.Errorf("stats misses = %d, want 1", stats.Sessions.Misses)
	}
	if stats.Graphs != 2 {
		t.Errorf("stats graphs = %d, want 2", stats.Graphs)
	}
}

// Canceling the request context mid-solve must stop the greedy loop early
// and report the partial result as canceled.
func TestSolveCanceledContext(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	registerTestGraphs(t, ts)
	_ = ts

	// A budget far beyond what the cancel window allows: the full run
	// would take many seconds.
	req := SolveRequest{Seeds: []int{1}, Budget: 300, Algorithm: "advanced-greedy",
		Theta: 2000, Seed: 1, EvalRounds: -1}
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()

	r := httptest.NewRequest(http.MethodPost, "/graphs/g1/solve", bytes.NewReader(buf)).WithContext(ctx)
	w := httptest.NewRecorder()
	start := time.Now()
	srv.Handler().ServeHTTP(w, r)
	elapsed := time.Since(start)

	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body.String())
	}
	var resp SolveResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Canceled {
		t.Fatalf("response not marked canceled: %+v", resp)
	}
	if len(resp.Blockers) >= req.Budget {
		t.Errorf("got full budget of %d blockers despite cancellation", len(resp.Blockers))
	}
	if elapsed > 10*time.Second {
		t.Errorf("cancellation took %v to take effect", elapsed)
	}
}

// Requests for badly-formed problems must fail with 400s, not fall into the
// solver.
func TestSolveValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	registerTestGraphs(t, ts)
	for name, req := range map[string]SolveRequest{
		"negative budget":   {Budget: -1, Seeds: []int{1}},
		"bad algorithm":     {Budget: 1, Seeds: []int{1}, Algorithm: "quantum"},
		"bad model":         {Budget: 1, Seeds: []int{1}, Model: "SIR"},
		"seed out of range": {Budget: 1, Seeds: []int{100000}},
	} {
		if code, body := postJSON(t, ts.URL+"/graphs/g1/solve", req, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status %d (body %s), want 400", name, code, body)
		}
	}
	// Registration validation.
	for name, req := range map[string]RegisterGraphRequest{
		"no source":     {Name: "x1"},
		"two sources":   {Name: "x2", Dataset: "Facebook", Generator: "erdos-renyi", N: 10, M: 10},
		"bad dataset":   {Name: "x3", Dataset: "MySpace"},
		"bad generator": {Name: "x4", Generator: "multiverse", N: 10},
		"bad name":      {Name: "a b c", Generator: "erdos-renyi", N: 10, M: 10},
		"path disabled": {Name: "x5", Path: "edges.txt"},
	} {
		if code, body := postJSON(t, ts.URL+"/graphs", req, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status %d (body %s), want 400", name, code, body)
		}
	}
}

// The registry bounds both per-graph size and graph count, so no sequence
// of registrations can grow memory without limit.
func TestRegisterLimits(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxGraphs: 2, MaxGraphSize: 10_000})
	code, body := postJSON(t, ts.URL+"/graphs",
		RegisterGraphRequest{Name: "big", Generator: "erdos-renyi", N: 100, M: 200_000}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("oversized graph: status %d (body %s), want 400", code, body)
	}
	// The dataset path obeys the same size cap as the generators
	// (full Youtube is ~1.1M vertices, far over this test's 10k cap).
	code, body = postJSON(t, ts.URL+"/graphs",
		RegisterGraphRequest{Name: "yt", Dataset: "Youtube", Scale: 1}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("oversized dataset: status %d (body %s), want 400", code, body)
	}
	for i := 0; i < 2; i++ {
		req := RegisterGraphRequest{Name: fmt.Sprintf("g%d", i), Generator: "erdos-renyi", N: 20, M: 40}
		if code, body := postJSON(t, ts.URL+"/graphs", req, nil); code != http.StatusCreated {
			t.Fatalf("register %d: status %d body %s", i, code, body)
		}
	}
	code, body = postJSON(t, ts.URL+"/graphs",
		RegisterGraphRequest{Name: "overflow", Generator: "erdos-renyi", N: 20, M: 40}, nil)
	if code != http.StatusInsufficientStorage {
		t.Errorf("registry overflow: status %d (body %s), want 507", code, body)
	}
}

// LT solves run against their own session, keyed separately from IC.
func TestModelsGetSeparateSessions(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	registerTestGraphs(t, ts)
	req := SolveRequest{Seeds: []int{1}, Budget: 2, Algorithm: "advanced-greedy", Theta: 100, Seed: 3, EvalRounds: -1}
	var ic, lt SolveResponse
	if code, body := postJSON(t, ts.URL+"/graphs/g1/solve", req, &ic); code != http.StatusOK {
		t.Fatalf("IC solve: %d %s", code, body)
	}
	req.Model = "LT"
	if code, body := postJSON(t, ts.URL+"/graphs/g1/solve", req, &lt); code != http.StatusOK {
		t.Fatalf("LT solve: %d %s", code, body)
	}
	if lt.SessionCacheHit {
		t.Error("LT solve hit the IC session")
	}
	if !srv.Sessions().Contains(SessionKey{Graph: "g1", Diffusion: core.DiffusionLT}) {
		t.Error("no LT session cached")
	}
}

// A reuse_samples request must run the pooled path (exactly θ samples drawn
// regardless of budget), cache the pool in the warm session so the repeat
// draws zero samples, surface the pool footprint in /stats — and still
// return exactly the blockers a direct ReuseSamples core.Solve picks.
func TestReuseSamplesWarmPool(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	registerTestGraphs(t, ts)

	req := SolveRequest{
		Seeds: []int{2, 5}, Budget: 4, Algorithm: "advanced-greedy",
		Theta: 200, Seed: 9, ReuseSamples: true, EvalRounds: -1,
	}
	var first, second SolveResponse
	if code, body := postJSON(t, ts.URL+"/graphs/g1/solve", req, &first); code != http.StatusOK {
		t.Fatalf("first solve: %d %s", code, body)
	}
	if first.SampledGraphs != int64(req.Theta) {
		t.Errorf("first solve drew %d samples, want %d (one pool)", first.SampledGraphs, req.Theta)
	}
	if code, body := postJSON(t, ts.URL+"/graphs/g1/solve", req, &second); code != http.StatusOK {
		t.Fatalf("second solve: %d %s", code, body)
	}
	if second.SampledGraphs != 0 {
		t.Errorf("warm solve drew %d samples, want 0 (cached pool)", second.SampledGraphs)
	}
	if !reflect.DeepEqual(first.Blockers, second.Blockers) {
		t.Errorf("warm blockers %v != cold blockers %v", second.Blockers, first.Blockers)
	}

	entry, _ := srv.Registry().Get("g1")
	entryG, _ := entry.Current()
	direct, err := core.Solve(entryG, []graph.V{2, 5}, 4, core.AdvancedGreedy,
		core.Options{Theta: 200, Seed: 9, Workers: 2, ReuseSamples: true})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int, len(direct.Blockers))
	for i, v := range direct.Blockers {
		want[i] = int(v)
	}
	if !reflect.DeepEqual(first.Blockers, want) {
		t.Errorf("service blockers %v != direct core.Solve %v", first.Blockers, want)
	}

	st := srv.Sessions().Stats()
	if st.PoolBuilds != 1 || st.PoolReuses != 1 {
		t.Errorf("pool builds/reuses = %d/%d, want 1/1", st.PoolBuilds, st.PoolReuses)
	}
	if st.PoolBytes <= 0 {
		t.Errorf("pool bytes = %d, want > 0", st.PoolBytes)
	}
}
