// Command socialnet is an end-to-end study on a synthetic social network:
// generate a Twitter-like graph, seed a misinformation campaign at random
// accounts, and compare all blocking strategies (Rand, OutDegree,
// AdvancedGreedy, GreedyReplace) across budgets — a miniature of the
// paper's Table VII.
//
// Run with:
//
//	go run ./examples/socialnet
package main

import (
	"fmt"
	"log"
	"time"

	imin "github.com/imin-dev/imin"
)

func main() {
	// A scaled-down Twitter stand-in (directed, heavy-tailed degrees) under
	// the trivalency probability model.
	structural, err := imin.GenerateDataset("Twitter", 0.01, 1)
	if err != nil {
		log.Fatal(err)
	}
	g := imin.AssignProbabilities(structural, imin.Trivalency, 2)
	fmt.Printf("network: %d accounts, %d follow edges\n", g.N(), g.M())

	// Ten compromised accounts start spreading the rumor.
	seeds, err := imin.RandomSeedSet(g, 10, true, 3)
	if err != nil {
		log.Fatal(err)
	}
	opt := imin.Options{Theta: 2000, Seed: 4}
	baseline, err := imin.EstimateSpread(g, seeds, nil, 20000, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without intervention the rumor reaches %.1f accounts in expectation\n\n", baseline)

	algs := []imin.Algorithm{imin.Rand, imin.OutDegree, imin.AdvancedGreedy, imin.GreedyReplace}
	fmt.Println("expected spread after blocking (lower is better):")
	fmt.Println("budget      RA        OD        AG        GR     (GR time)")
	for _, budget := range []int{5, 10, 20} {
		fmt.Printf("%4d  ", budget)
		var grTime time.Duration
		for _, alg := range algs {
			res, err := imin.MinimizeWith(g, seeds, budget, alg, opt)
			if err != nil {
				log.Fatal(err)
			}
			spread, err := imin.EstimateSpread(g, seeds, res.Blockers, 20000, opt)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %8.2f", spread)
			if alg == imin.GreedyReplace {
				grTime = res.Runtime
			}
		}
		fmt.Printf("   %v\n", grTime.Round(time.Millisecond))
	}
	fmt.Println("\nGR and AG concentrate on the accounts that actually gate the")
	fmt.Println("cascade, while OD wastes budget on big accounts the rumor may")
	fmt.Println("never reach and RA blocks essentially nothing that matters.")
}
