package graph

import "fmt"

// This file implements the structural transforms the algorithms rely on:
// vertex blocking (Definition 2), graph reversal, induced subgraph
// extraction, and the multi-seed unification of Section V ("From Multiple
// Seeds to One Seed").

// Block returns G[V \ B]: the graph with every vertex v having blocked[v]
// removed from propagation. Vertex ids are preserved; blocked vertices stay
// in the graph but lose all incident edges, so they are never activated and
// never propagate, matching Definition 2 (all their in-probabilities become
// 0, which also makes their out-edges unreachable).
func (g *Graph) Block(blocked []bool) *Graph {
	if len(blocked) != g.n {
		panic(fmt.Sprintf("graph: blocked slice length %d for %d vertices", len(blocked), g.n))
	}
	b := NewBuilder(g.n)
	for u := V(0); int(u) < g.n; u++ {
		if blocked[u] {
			continue
		}
		to := g.OutNeighbors(u)
		ps := g.OutProbs(u)
		for i, v := range to {
			if !blocked[v] {
				b.AddEdge(u, v, ps[i])
			}
		}
	}
	return b.Build()
}

// BlockSet is Block with the blocker set given as a vertex list.
func (g *Graph) BlockSet(blockers []V) *Graph {
	blocked := make([]bool, g.n)
	for _, v := range blockers {
		blocked[v] = true
	}
	return g.Block(blocked)
}

// Reverse returns the graph with every edge direction flipped, preserving
// probabilities. Reverse-reachability arguments (Section V-B1) and some
// tests use it.
func (g *Graph) Reverse() *Graph {
	b := NewBuilder(g.n)
	for u := V(0); int(u) < g.n; u++ {
		to := g.OutNeighbors(u)
		ps := g.OutProbs(u)
		for i, v := range to {
			b.AddEdge(v, u, ps[i])
		}
	}
	return b.Build()
}

// InducedSubgraph returns the subgraph induced by keep along with the
// mapping from new ids to old ids. Vertices are renumbered densely in the
// order they appear in keep. Duplicate vertices in keep panic.
func (g *Graph) InducedSubgraph(keep []V) (*Graph, []V) {
	newID := make([]int32, g.n)
	for i := range newID {
		newID[i] = -1
	}
	for i, v := range keep {
		if newID[v] != -1 {
			panic(fmt.Sprintf("graph: duplicate vertex %d in InducedSubgraph", v))
		}
		newID[v] = int32(i)
	}
	b := NewBuilder(len(keep))
	for i, v := range keep {
		to := g.OutNeighbors(v)
		ps := g.OutProbs(v)
		for j, w := range to {
			if newID[w] != -1 {
				b.AddEdge(V(i), newID[w], ps[j])
			}
		}
	}
	old := append([]V(nil), keep...)
	return b.Build(), old
}

// UnifySeeds implements the paper's multi-seed to single-seed reduction.
// It returns a graph with n+1 vertices where vertex n is the super-seed s'.
//
// For every non-seed vertex u influenced by h seeds with probabilities
// p₁..p_h, the seed edges are replaced by a single edge (s', u) with
// probability 1 - Π(1-pᵢ): the chance at least one seed influence fires.
// Edges between non-seed vertices are kept. Original seed vertices remain
// (so ids are stable) but are fully disconnected — they are unconditionally
// active in the original problem, so no in-edge can change their state, and
// their out-influence now flows from s'.
//
// The expected spread translates as
//
//	E(S, G) = E({s'}, G') - 1 + |S|
//
// because s' itself replaces the |S| always-active seeds. SpreadFromUnified
// applies this correction.
func (g *Graph) UnifySeeds(seeds []V) (*Graph, V) {
	if len(seeds) == 0 {
		panic("graph: UnifySeeds with empty seed set")
	}
	isSeed := make([]bool, g.n)
	for _, s := range seeds {
		isSeed[s] = true
	}
	super := V(g.n)
	b := NewBuilder(g.n + 1)

	// Combined probability of seed influence per target vertex: start from
	// "probability none fires" and multiply.
	noFire := make([]float64, g.n)
	touched := make([]V, 0, 64)
	for i := range noFire {
		noFire[i] = 1
	}
	for _, s := range seeds {
		to := g.OutNeighbors(s)
		ps := g.OutProbs(s)
		for i, v := range to {
			if isSeed[v] {
				continue // seeds are already active; edges into seeds are irrelevant
			}
			if noFire[v] == 1 {
				touched = append(touched, v)
			}
			noFire[v] *= 1 - ps[i]
		}
	}
	for _, v := range touched {
		b.AddEdge(super, v, 1-noFire[v])
	}

	// Copy edges between non-seed vertices; drop any edge touching a seed.
	for u := V(0); int(u) < g.n; u++ {
		if isSeed[u] {
			continue
		}
		to := g.OutNeighbors(u)
		ps := g.OutProbs(u)
		for i, v := range to {
			if !isSeed[v] {
				b.AddEdge(u, v, ps[i])
			}
		}
	}
	return b.Build(), super
}

// SpreadFromUnified converts an expected spread measured on the unified
// graph (seed s') back to the original problem's expected spread with
// numSeeds seeds: the super-seed contributes 1 to the unified spread while
// the original seed set contributes numSeeds.
func SpreadFromUnified(unifiedSpread float64, numSeeds int) float64 {
	return unifiedSpread - 1 + float64(numSeeds)
}

// AugmentSuperSource returns the graph extended with a virtual source s*
// (vertex id n) that activates every seed with probability 1, leaving all
// original edges and ids untouched. A cascade from s* is exactly the
// multi-seed cascade plus s* itself, so E(S, G) = E({s*}, G⁺) − 1.
//
// The edge-blocking extension uses this instead of UnifySeeds because it
// keeps every original edge intact as a blocking candidate (unification
// merges parallel seed influences into synthetic combined edges).
func (g *Graph) AugmentSuperSource(seeds []V) (*Graph, V) {
	if len(seeds) == 0 {
		panic("graph: AugmentSuperSource with empty seed set")
	}
	super := V(g.n)
	b := NewBuilder(g.n + 1)
	for u := V(0); int(u) < g.n; u++ {
		to := g.OutNeighbors(u)
		ps := g.OutProbs(u)
		for i, v := range to {
			b.AddEdge(u, v, ps[i])
		}
	}
	for _, s := range seeds {
		b.AddEdge(super, s, 1)
	}
	return b.Build(), super
}

// RemoveEdges returns the graph with the listed directed edges deleted
// (probabilities are irrelevant for matching; unknown pairs are ignored).
// Vertex ids are preserved. The edge-blocking algorithms rebuild the
// working graph with it once per greedy round.
func (g *Graph) RemoveEdges(pairs [][2]V) *Graph {
	drop := make(map[[2]V]bool, len(pairs))
	for _, p := range pairs {
		drop[p] = true
	}
	b := NewBuilder(g.n)
	for u := V(0); int(u) < g.n; u++ {
		to := g.OutNeighbors(u)
		ps := g.OutProbs(u)
		for i, v := range to {
			if !drop[[2]V{u, v}] {
				b.AddEdge(u, v, ps[i])
			}
		}
	}
	return b.Build()
}

// OutEdgeIndex returns the position of edge (u,v) in the graph's global
// out-CSR ordering, or -1 when absent. Out-lists are sorted by target, so
// the lookup is a binary search. The edge-blocking estimator uses the
// index to key per-edge accumulators.
func (g *Graph) OutEdgeIndex(u, v V) int {
	lo, hi := int(g.outStart[u]), int(g.outStart[u+1])
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case g.outTo[mid] < v:
			lo = mid + 1
		case g.outTo[mid] > v:
			hi = mid
		default:
			return mid
		}
	}
	return -1
}

// EdgeAt returns the edge stored at the given global out-CSR index, the
// inverse of OutEdgeIndex. It is O(log n) via binary search over the CSR
// offsets.
func (g *Graph) EdgeAt(idx int) Edge {
	if idx < 0 || idx >= g.M() {
		panic(fmt.Sprintf("graph: edge index %d out of range [0,%d)", idx, g.M()))
	}
	// Find the source vertex: the largest u with outStart[u] <= idx.
	lo, hi := 0, g.n
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if int(g.outStart[mid]) <= idx {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return Edge{From: V(lo), To: g.outTo[idx], P: g.outP[idx]}
}
