package store

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"github.com/imin-dev/imin/internal/dynamic"
	"github.com/imin-dev/imin/internal/faultfs"
	"github.com/imin-dev/imin/internal/rng"
)

// TestCheckpointENOSPCKeepsOldGeneration fills the disk (injected ENOSPC)
// during a checkpoint's snapshot write: the checkpoint must fail cleanly —
// superseded generation intact and still serving appends, no orphaned tmp
// file — classify as transient, and succeed when retried with space back.
func TestCheckpointENOSPCKeepsOldGeneration(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(nil)
	st, err := Open(dir, Config{Fsync: FsyncAlways, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(50, 200, 9)
	gs, err := st.Create("g", g, 0, "src", "TR")
	if err != nil {
		t.Fatal(err)
	}
	live := dynamic.New(g, dynamic.Config{})
	r := rng.New(17)
	for i := 0; i < 3; i++ {
		commitAndLog(t, live, gs, randomBatch(live, 4, r))
	}

	inj.SetRules(faultfs.Rule{Op: faultfs.OpWrite, PathContains: "snap-1", Err: syscall.ENOSPC})
	snap, epoch := live.Snapshot()
	gen, err := gs.BeginCheckpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	err = gs.CompleteCheckpoint(context.Background(), gen, snap, epoch)
	if err == nil {
		t.Fatal("checkpoint succeeded despite ENOSPC on the snapshot write")
	}
	if !IsTransient(err) {
		t.Fatalf("ENOSPC classified %v, want transient (err: %v)", Classify(err), err)
	}

	gdir := filepath.Join(dir, "graphs", "g")
	entries, err := os.ReadDir(gdir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("orphaned %s after the failed checkpoint", e.Name())
		}
	}
	for _, name := range []string{"wal-0.log", "snap-0.bin", "manifest.json"} {
		if _, err := os.Stat(filepath.Join(gdir, name)); err != nil {
			t.Errorf("superseded generation file %s: %v", name, err)
		}
	}

	// The failed checkpoint must not block writes: appends land in the
	// rotated generation, and with the manifest still pointing at gen 0,
	// recovery replays both logs.
	commitAndLog(t, live, gs, randomBatch(live, 4, r))

	// Space comes back: the retried checkpoint (a fresh generation) wins.
	inj.ClearRules()
	snap, epoch = live.Snapshot()
	gen, err = gs.BeginCheckpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := gs.CompleteCheckpoint(context.Background(), gen, snap, epoch); err != nil {
		t.Fatalf("retried checkpoint: %v", err)
	}
	commitAndLog(t, live, gs, randomBatch(live, 4, r))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Config{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	recs, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Epoch() != 5 {
		t.Fatalf("recovered %+v", recs)
	}
	want, _ := live.Snapshot()
	got, _ := recs[0].Dyn.Snapshot()
	assertSameGraph(t, want, got)
}

// TestFsyncFailurePoisonsThenCheckpointHeals is the store half of the
// service's degraded/self-heal cycle: an injected fsync failure poisons the
// WAL (appends fail until further notice), and a later checkpoint — writing
// a fresh snapshot and rotating to a new WAL generation — supersedes the
// poisoned log entirely, restoring writability without a restart.
func TestFsyncFailurePoisonsThenCheckpointHeals(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.NewInjector(nil)
	st, err := Open(dir, Config{Fsync: FsyncAlways, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(50, 200, 10)
	gs, err := st.Create("g", g, 0, "src", "TR")
	if err != nil {
		t.Fatal(err)
	}
	live := dynamic.New(g, dynamic.Config{})
	r := rng.New(19)
	for i := 0; i < 2; i++ {
		commitAndLog(t, live, gs, randomBatch(live, 4, r))
	}

	// The device starts failing fsyncs on the WAL.
	inj.SetRules(faultfs.Rule{Op: faultfs.OpSync, PathContains: "wal-"})
	muts := randomBatch(live, 4, r)
	batch, err := dynamic.EncodeBatch(nil, muts)
	if err != nil {
		t.Fatal(err)
	}
	info, err := live.Commit(muts)
	if err != nil {
		t.Fatal(err)
	}
	if err := gs.Append(context.Background(), info.Epoch, batch); err == nil {
		t.Fatal("append succeeded despite the failing fsync")
	}
	if !gs.Poisoned() {
		t.Fatal("WAL not poisoned after the fsync failure")
	}

	// Heal: the device recovers and a checkpoint of the CURRENT in-memory
	// epoch (3 — including the batch whose append failed) rotates to a
	// fresh WAL generation. The poisoned log is superseded wholesale.
	inj.ClearRules()
	snap, epoch := live.Snapshot()
	if epoch != info.Epoch {
		t.Fatalf("epoch %d, want %d", epoch, info.Epoch)
	}
	gen, err := gs.BeginCheckpoint(context.Background())
	if err != nil {
		t.Fatalf("BeginCheckpoint on a poisoned log: %v", err)
	}
	if err := gs.CompleteCheckpoint(context.Background(), gen, snap, epoch); err != nil {
		t.Fatal(err)
	}
	if gs.Poisoned() {
		t.Fatal("still poisoned after rotating to a fresh generation")
	}

	// Writable again: new appends land and everything recovers, including
	// the batch that never reached the poisoned log.
	commitAndLog(t, live, gs, randomBatch(live, 4, r))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Config{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	recs, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Epoch() != 4 || recs[0].SnapshotEpoch != 3 {
		t.Fatalf("recovered %+v", recs)
	}
	want, _ := live.Snapshot()
	got, _ := recs[0].Dyn.Snapshot()
	assertSameGraph(t, want, got)
}
