// Package harness reruns the paper's evaluation (Section VI): one runner
// per table and figure, each producing the same rows or series the paper
// reports. EXPERIMENTS.md records the measured shapes next to the paper's.
//
// Parameters default to a laptop-scale configuration (datasets at a few
// percent of their published size, θ and Monte-Carlo rounds reduced
// tenfold); every knob can be raised to the paper's settings through
// Config. The claims under test are ratio- and ordering-shaped (who wins,
// by how many orders of magnitude, where curves cross), which survive the
// scaling; see DESIGN.md §4.
package harness

import (
	"io"
	"time"

	"github.com/imin-dev/imin/internal/core"
)

// Config carries the shared experiment parameters.
type Config struct {
	// Scale is the fraction of each dataset's published size to generate
	// (Table IV stand-ins). Default 0.02.
	Scale float64
	// Theta is the sampled-graph count per estimation round (paper: 10⁴).
	// Default 1000.
	Theta int
	// MCSRounds is BaselineGreedy's per-evaluation Monte-Carlo rounds
	// (paper: 10⁴). Default 1000.
	MCSRounds int
	// EvalRounds is the Monte-Carlo rounds used to measure the expected
	// spread of a finished blocker set (paper: 10⁵). Default 10⁴.
	EvalRounds int
	// NumSeeds is the seed-set size (paper: 10 random vertices).
	NumSeeds int
	// Workers bounds parallelism; 0 = GOMAXPROCS.
	Workers int
	// Seed drives all randomness; equal configs reproduce results exactly.
	Seed uint64
	// Timeout caps each single algorithm run, standing in for the paper's
	// 24-hour limit. Default 15s.
	Timeout time.Duration
	// Datasets filters to the named datasets (full or short names); empty
	// means all 8.
	Datasets []string
	// Out receives the formatted tables; nil discards them.
	Out io.Writer
}

// WithDefaults fills unset fields with the laptop-scale defaults.
func (c Config) WithDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.02
	}
	if c.Theta == 0 {
		c.Theta = 1000
	}
	if c.MCSRounds == 0 {
		c.MCSRounds = 1000
	}
	if c.EvalRounds == 0 {
		c.EvalRounds = 10000
	}
	if c.NumSeeds == 0 {
		c.NumSeeds = 10
	}
	if c.Timeout == 0 {
		c.Timeout = 15 * time.Second
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

// PaperScale returns the configuration matching the paper's full settings;
// expect day-scale runtimes on the larger datasets, as the paper reports.
func PaperScale() Config {
	return Config{
		Scale:      1,
		Theta:      10000,
		MCSRounds:  10000,
		EvalRounds: 100000,
		NumSeeds:   10,
		Timeout:    24 * time.Hour,
	}
}

// solveOptions converts the shared knobs into core.Options.
func (c Config) solveOptions(diffusion core.Diffusion, seed uint64) core.Options {
	return core.Options{
		Theta:     c.Theta,
		MCSRounds: c.MCSRounds,
		Workers:   c.Workers,
		Seed:      seed,
		Diffusion: diffusion,
		Timeout:   c.Timeout,
	}
}
