// Package store is imind's durability subsystem: per-graph write-ahead
// logging of committed mutation batches plus periodic CSR snapshots, so a
// restarted daemon recovers every registered graph to its exact pre-crash
// epoch instead of starting empty.
//
// On-disk layout, rooted at the daemon's -data-dir:
//
//	<root>/graphs/<name>/
//	    manifest.json     recovery root: snapshot file, its epoch, WAL generation
//	    snap-<gen>.bin    compacted base CSR (graph binary codec v2, CRC-checked)
//	    wal-<gen>.log     framed mutation batches with epochs > snapshot epoch
//
// Writes follow the classical WAL discipline: a mutation batch is appended
// (and fsynced, per policy) before the service acknowledges it. Checkpoints
// run in two phases so they never block commits for longer than a snapshot
// pointer read: first the WAL is rotated to a fresh generation under the
// graph's commit lock (every record already on disk has an epoch the
// snapshot will cover; every later append lands in the new generation),
// then the snapshot and manifest are written in the background and older
// generations deleted. A crash between the phases is safe — recovery
// replays every WAL generation at or above the manifest's, in order.
//
// Recovery loads the manifest's snapshot (CRC-verified), replays the WAL
// tail through dynamic.Replay with strict epoch continuity, and truncates
// at the first torn or corrupt record — a partial append from a crash is
// detected by its length prefix/CRC and never replayed.
package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/imin-dev/imin/internal/dynamic"
	"github.com/imin-dev/imin/internal/faultfs"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/obs"
)

// Config tunes a Store. The zero value is serviceable: interval fsync every
// 100ms, checkpoint at 16 MB of WAL.
type Config struct {
	// Fsync is the WAL durability policy. Default FsyncInterval.
	Fsync FsyncPolicy
	// FsyncInterval is the background flush period under FsyncInterval.
	// Default 100ms.
	FsyncInterval time.Duration
	// CheckpointWALBytes is the WAL size past which NeedsCheckpoint asks
	// the serving layer for a snapshot. Default 16 MB.
	CheckpointWALBytes int64
	// Dynamic configures the dynamic graphs recovery builds.
	Dynamic dynamic.Config
	// FS is the filesystem every store I/O goes through. Default the real
	// one (faultfs.OS); tests substitute a faultfs.Injector.
	FS faultfs.FS
	// Metrics, when set, receives the store's timing histograms (WAL
	// append, WAL fsync, checkpoint) and snapshot-size gauge. Pass the
	// serving layer's registry so one GET /metrics scrape covers both.
	// Nil records nothing; the Stats counters work either way.
	Metrics *obs.Registry
	// Logger receives WAL/checkpoint lifecycle lines, tagged with the
	// request id carried by WithRequestID so durability errors correlate
	// with the request that triggered them. Nil discards.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Fsync == "" {
		c.Fsync = FsyncInterval
	}
	if c.FS == nil {
		c.FS = faultfs.OS
	}
	if c.FsyncInterval <= 0 {
		c.FsyncInterval = 100 * time.Millisecond
	}
	if c.CheckpointWALBytes <= 0 {
		c.CheckpointWALBytes = 16 << 20
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// storeMetrics holds the store's timing instruments. The Stats counters
// stay the source of totals (exported as Func instruments by the serving
// layer); these histograms add the duration distributions that only the
// I/O call sites can observe.
type storeMetrics struct {
	appendSeconds     *obs.Histogram
	fsyncSeconds      *obs.Histogram
	checkpointSeconds *obs.Histogram
	snapshotBytes     *obs.Gauge
}

// newStoreMetrics registers the timing instruments, or returns nil when no
// registry is configured (observations become no-ops).
func newStoreMetrics(reg *obs.Registry) *storeMetrics {
	if reg == nil {
		return nil
	}
	return &storeMetrics{
		appendSeconds: reg.Histogram("imind_wal_append_seconds",
			"WAL append latency, including the inline fsync under the always policy.", obs.DefTimeBuckets),
		fsyncSeconds: reg.Histogram("imind_wal_fsync_seconds",
			"WAL fsync latency (interval flusher and shutdown syncs).", obs.DefTimeBuckets),
		checkpointSeconds: reg.Histogram("imind_checkpoint_seconds",
			"Checkpoint completion latency: snapshot write, manifest commit, old-generation cleanup.", obs.DefTimeBuckets),
		snapshotBytes: reg.Gauge("imind_checkpoint_snapshot_bytes",
			"Size of the most recently written checkpoint snapshot."),
	}
}

// Stats is a counter snapshot for the /stats endpoint.
type Stats struct {
	WALAppends         int64 `json:"wal_appends"`
	WALBytes           int64 `json:"wal_bytes"`
	WALFsyncs          int64 `json:"wal_fsyncs"`
	Checkpoints        int64 `json:"checkpoints"`
	CheckpointFailures int64 `json:"checkpoint_failures"`
	RecoveredGraphs    int64 `json:"recovered_graphs"`
	ReplayedBatches    int64 `json:"replayed_batches"`
	TruncatedTails     int64 `json:"truncated_tails"`
}

// Store is the durability root. One Store owns one -data-dir; its
// GraphStores share the fsync policy and the interval flusher.
type Store struct {
	root string
	cfg  Config
	fs   faultfs.FS // == cfg.FS, resolved

	mu       sync.Mutex
	graphs   map[string]*GraphStore
	creating map[string]bool // names mid-Create: disk I/O runs outside mu
	closed   bool

	stopFlush chan struct{}
	flushWG   sync.WaitGroup

	// met is set once at Open (before flushLoop starts) and nil when no
	// registry was configured; every observation point is nil-guarded.
	met *storeMetrics

	walAppends, walBytes, walFsyncs     atomic.Int64
	checkpoints, checkpointFailures     atomic.Int64
	recovered, replayed, truncatedTails atomic.Int64
}

// Open prepares the data directory and returns a Store. Existing graph
// state is not loaded until Recover is called.
func Open(root string, cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	if err := cfg.FS.MkdirAll(filepath.Join(root, "graphs"), 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		root:     root,
		cfg:      cfg,
		fs:       cfg.FS,
		graphs:   make(map[string]*GraphStore),
		creating: make(map[string]bool),
		met:      newStoreMetrics(cfg.Metrics),
	}
	if cfg.Fsync == FsyncInterval {
		s.stopFlush = make(chan struct{})
		s.flushWG.Add(1)
		go s.flushLoop()
	}
	return s, nil
}

// Root returns the data directory the store was opened on.
func (s *Store) Root() string { return s.root }

// Fsync returns the WAL durability policy in force.
func (s *Store) Fsync() FsyncPolicy { return s.cfg.Fsync }

func (s *Store) flushLoop() {
	defer s.flushWG.Done()
	t := time.NewTicker(flushEvery(s.cfg.FsyncInterval))
	defer t.Stop()
	for {
		select {
		case <-s.stopFlush:
			return
		case <-t.C:
			s.mu.Lock()
			gss := make([]*GraphStore, 0, len(s.graphs))
			for _, gs := range s.graphs {
				gss = append(gss, gs)
			}
			s.mu.Unlock()
			for _, gs := range gss {
				syncStart := time.Now()
				if synced, err := gs.syncWAL(); err == nil && synced {
					s.walFsyncs.Add(1)
					if s.met != nil {
						s.met.fsyncSeconds.Observe(time.Since(syncStart).Seconds())
					}
				}
			}
		}
	}
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		WALAppends:         s.walAppends.Load(),
		WALBytes:           s.walBytes.Load(),
		WALFsyncs:          s.walFsyncs.Load(),
		Checkpoints:        s.checkpoints.Load(),
		CheckpointFailures: s.checkpointFailures.Load(),
		RecoveredGraphs:    s.recovered.Load(),
		ReplayedBatches:    s.replayed.Load(),
		TruncatedTails:     s.truncatedTails.Load(),
	}
}

// Close fsyncs and closes every WAL and stops the interval flusher. The
// serving layer runs its final checkpoints before calling this.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	gss := make([]*GraphStore, 0, len(s.graphs))
	for _, gs := range s.graphs {
		gss = append(gss, gs)
	}
	s.mu.Unlock()
	if s.stopFlush != nil {
		close(s.stopFlush)
		s.flushWG.Wait()
	}
	var first error
	for _, gs := range gss {
		if err := gs.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (s *Store) graphDir(name string) string {
	return filepath.Join(s.root, "graphs", name)
}

func snapName(gen uint64) string { return fmt.Sprintf("snap-%d.bin", gen) }
func walName(gen uint64) string  { return fmt.Sprintf("wal-%d.log", gen) }

// Create persists a freshly registered graph: snapshot at the given epoch
// (0 for a new registration), manifest, and an empty WAL — all durable
// before Create returns, regardless of the fsync policy, since losing a
// whole registration is worse than losing one interval of mutations. The
// graph name must already be path-safe (the registry validates it). The
// disk writes (a whole CSR snapshot — potentially large) run outside the
// store lock, so concurrent appends, interval fsyncs, and checkpoints of
// other graphs never stall behind a registration; the name is reserved
// first so a racing Create of the same name fails fast.
func (s *Store) Create(name string, g *graph.Graph, epoch uint64, source, probModel string) (*GraphStore, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("store: closed")
	}
	if _, ok := s.graphs[name]; ok || s.creating[name] {
		s.mu.Unlock()
		return nil, fmt.Errorf("store: graph %q already exists", name)
	}
	s.creating[name] = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.creating, name)
		s.mu.Unlock()
	}()
	dir := s.graphDir(name)
	if _, err := s.fs.Stat(filepath.Join(dir, "manifest.json")); err == nil {
		return nil, fmt.Errorf("store: graph %q has on-disk state but is not recovered", name)
	}
	// A leftover directory without a manifest is the debris of a crashed
	// Create (or an aborted Remove): recovery skips it, so wipe and rebuild.
	if err := s.fs.RemoveAll(dir); err != nil {
		return nil, err
	}
	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := writeSnapshotFile(s.fs, filepath.Join(dir, snapName(0)), g); err != nil {
		return nil, err
	}
	w, err := createWAL(s.fs, filepath.Join(dir, walName(0)), s.cfg.Fsync)
	if err != nil {
		return nil, err
	}
	man := &graph.Manifest{
		Version: graph.ManifestVersion, Name: name, Source: source, ProbModel: probModel,
		Epoch: epoch, WALGen: 0, Snapshot: snapName(0),
		N: g.N(), M: g.M(), UpdatedAt: time.Now().UTC(),
	}
	if err := graph.WriteManifestFS(s.fs, filepath.Join(dir, "manifest.json"), man); err != nil {
		_ = w.close()
		return nil, err
	}
	if err := graph.SyncDirFS(s.fs, dir); err != nil {
		_ = w.close()
		return nil, err
	}
	if err := graph.SyncDirFS(s.fs, filepath.Join(s.root, "graphs")); err != nil {
		_ = w.close()
		return nil, err
	}
	gs := &GraphStore{store: s, name: name, dir: dir, gen: 0, wal: w, man: *man}
	s.mu.Lock()
	if s.closed {
		// The store shut down while the snapshot was being written; a
		// GraphStore registered now would never be flushed or closed.
		s.mu.Unlock()
		_ = w.close()
		return nil, fmt.Errorf("store: closed during create of %q", name)
	}
	s.graphs[name] = gs
	s.mu.Unlock()
	return gs, nil
}

// Remove deletes a graph's on-disk state (DELETE /graphs/{id}).
func (s *Store) Remove(name string) error {
	s.mu.Lock()
	gs := s.graphs[name]
	delete(s.graphs, name)
	s.mu.Unlock()
	if gs != nil {
		_ = gs.close()
	}
	if err := s.fs.RemoveAll(s.graphDir(name)); err != nil {
		return err
	}
	return graph.SyncDirFS(s.fs, filepath.Join(s.root, "graphs"))
}

// writeSnapshotFile writes g's binary CSR durably: tmp file, fsync, rename.
func writeSnapshotFile(fs faultfs.FS, path string, g *graph.Graph) error {
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if err := g.WriteBinary(f); err != nil {
		_ = f.Close()
		_ = fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	return graph.SyncDirFS(fs, filepath.Dir(path))
}

// GraphStore is one graph's durable state: its open WAL, current
// generation, and last written manifest.
type GraphStore struct {
	store *Store
	name  string
	dir   string

	mu  sync.Mutex
	gen uint64 // WAL generation appends currently go to
	wal *wal
	man graph.Manifest // last durably written manifest

	checkpointing atomic.Bool // one checkpoint at a time
}

// Name returns the graph's registry name.
func (gs *GraphStore) Name() string { return gs.name }

// Append logs one committed batch, pre-encoded with dynamic.EncodeBatch.
// Taking the encoding rather than the mutations forces callers to encode
// BEFORE committing in memory: an unencodable batch must be rejected up
// front, because a commit that advances the epoch without a WAL record
// would leave a gap that recovery reads as a corrupt tail — silently
// discarding every later acknowledged batch. The caller serializes Append
// with the batch's Commit (per-graph commit lock) so WAL epochs are
// strictly increasing. Under FsyncAlways the record is on stable storage
// when Append returns; any failure poisons the WAL (see wal.append) and
// surfaces on every later call. The context is consulted only for the
// request id logged on failure — an append never aborts on cancellation,
// because the in-memory commit it backs has already happened.
func (gs *GraphStore) Append(ctx context.Context, epoch uint64, batch []byte) error {
	if len(batch) == 0 {
		return fmt.Errorf("store: refusing to log an empty batch")
	}
	gs.mu.Lock()
	w := gs.wal
	gs.mu.Unlock()
	if w == nil {
		return fmt.Errorf("store: graph %q is closed", gs.name)
	}
	appendStart := time.Now()
	n, err := w.append(epoch, batch)
	if err != nil {
		gs.store.cfg.Logger.Error("wal append failed",
			logArgs(ctx, "graph", gs.name, "epoch", epoch, "bytes", len(batch), "error", err.Error())...)
		return err
	}
	if m := gs.store.met; m != nil {
		m.appendSeconds.Observe(time.Since(appendStart).Seconds())
	}
	gs.store.walAppends.Add(1)
	gs.store.walBytes.Add(n)
	if gs.store.cfg.Fsync == FsyncAlways {
		gs.store.walFsyncs.Add(1)
	}
	return nil
}

// Poisoned reports whether the current WAL generation has been disabled
// by a failed append or fsync. Rotating to a fresh generation (a self-heal
// checkpoint) clears the condition.
func (gs *GraphStore) Poisoned() bool {
	gs.mu.Lock()
	w := gs.wal
	gs.mu.Unlock()
	return w != nil && w.poisoned()
}

// WALSize returns the current generation's byte size (0 once closed).
func (gs *GraphStore) WALSize() int64 {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if gs.wal == nil {
		return 0
	}
	gs.wal.mu.Lock()
	defer gs.wal.mu.Unlock()
	return gs.wal.size
}

// NeedsCheckpoint reports whether the WAL has outgrown the configured
// threshold and the graph should be checkpointed.
func (gs *GraphStore) NeedsCheckpoint() bool {
	return gs.WALSize() >= gs.store.cfg.CheckpointWALBytes
}

// TryStartCheckpoint marks a checkpoint in progress, returning false when
// one already is. FinishCheckpoint clears the mark.
func (gs *GraphStore) TryStartCheckpoint() bool { return gs.checkpointing.CompareAndSwap(false, true) }

// FinishCheckpoint releases the TryStartCheckpoint mark.
func (gs *GraphStore) FinishCheckpoint() { gs.checkpointing.Store(false) }

// BeginCheckpoint rotates the WAL to a fresh generation and returns it.
// MUST be called under the graph's commit lock, immediately after reading
// the snapshot that will back the checkpoint: that ordering guarantees
// every record in older generations has an epoch the snapshot covers and
// every later append lands in the new generation. The old WAL is fsynced
// and closed — its records must survive until the manifest supersedes them.
// A graph closed underneath a queued background checkpoint (shutdown,
// DELETE) returns an error rather than resurrecting the log. The context
// carries the triggering request's id for log correlation; rotation itself
// never aborts on cancellation.
func (gs *GraphStore) BeginCheckpoint(ctx context.Context) (uint64, error) {
	gen, err := gs.beginCheckpoint()
	if err != nil {
		gs.store.checkpointFailures.Add(1)
		gs.store.cfg.Logger.Error("checkpoint rotation failed",
			logArgs(ctx, "graph", gs.name, "error", err.Error())...)
	}
	return gen, err
}

func (gs *GraphStore) beginCheckpoint() (uint64, error) {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if gs.wal == nil {
		return 0, fmt.Errorf("store: graph %q is closed", gs.name)
	}
	newGen := gs.gen + 1
	// The generation swap must appear atomic to appenders: the new log is
	// created, made durable, and installed — and the old one closed —
	// all under gs.mu, or a concurrent Append could land in a WAL that
	// recovery will never replay.
	//lint:ignore lockio generation swap is atomic under gs.mu by design (see comment above)
	w, err := createWAL(gs.store.fs, filepath.Join(gs.dir, walName(newGen)), gs.store.cfg.Fsync)
	if err != nil {
		return 0, err
	}
	// On any failure past this point the fresh log file must go away again:
	// the generation did not advance, so a retried rotation re-creates the
	// same name with O_EXCL — a leftover file would wedge every future
	// checkpoint (and with it the degraded-mode self-heal) on EEXIST.
	abort := func() {
		_ = w.close()
		_ = gs.store.fs.Remove(filepath.Join(gs.dir, walName(newGen)))
	}
	//lint:ignore lockio generation swap is atomic under gs.mu by design
	if err := graph.SyncDirFS(gs.store.fs, gs.dir); err != nil {
		abort()
		return 0, err
	}
	// A poisoned old log is exactly what a self-heal checkpoint rotates
	// away from: its durable tail is unknown, but the snapshot about to be
	// written covers every epoch the in-memory graph has, so its close
	// failing (or having nothing left to flush) must not abort the rescue.
	poisoned := gs.wal.poisoned()
	//lint:ignore lockio generation swap is atomic under gs.mu by design
	if err := gs.wal.close(); err != nil && !poisoned {
		abort()
		return 0, err
	}
	gs.gen = newGen
	gs.wal = w
	return newGen, nil
}

// CompleteCheckpoint persists the snapshot (g at epoch) for the generation
// BeginCheckpoint returned, commits it via the manifest, and deletes the
// older generations it supersedes. Runs without any graph lock — commits
// proceed concurrently into the rotated WAL. The context carries the
// triggering request's id for log correlation only.
func (gs *GraphStore) CompleteCheckpoint(ctx context.Context, gen uint64, g *graph.Graph, epoch uint64) error {
	ckptStart := time.Now()
	err := gs.completeCheckpoint(gen, g, epoch)
	if err != nil {
		gs.store.checkpointFailures.Add(1)
		gs.store.cfg.Logger.Error("checkpoint completion failed",
			logArgs(ctx, "graph", gs.name, "generation", gen, "epoch", epoch, "error", err.Error())...)
		return err
	}
	gs.store.checkpoints.Add(1)
	gs.store.cfg.Logger.Debug("checkpoint complete",
		logArgs(ctx, "graph", gs.name, "generation", gen, "epoch", epoch)...)
	if m := gs.store.met; m != nil {
		m.checkpointSeconds.Observe(time.Since(ckptStart).Seconds())
		if fi, err := gs.store.fs.Stat(filepath.Join(gs.dir, snapName(gen))); err == nil {
			m.snapshotBytes.Set(float64(fi.Size()))
		}
	}
	return nil
}

func (gs *GraphStore) completeCheckpoint(gen uint64, g *graph.Graph, epoch uint64) error {
	if err := writeSnapshotFile(gs.store.fs, filepath.Join(gs.dir, snapName(gen)), g); err != nil {
		return err
	}
	gs.mu.Lock()
	man := gs.man
	gs.mu.Unlock()
	man.Epoch = epoch
	man.WALGen = gen
	man.Snapshot = snapName(gen)
	man.N, man.M = g.N(), g.M()
	man.UpdatedAt = time.Now().UTC()
	if err := graph.WriteManifestFS(gs.store.fs, filepath.Join(gs.dir, "manifest.json"), &man); err != nil {
		return err
	}
	gs.mu.Lock()
	gs.man = man
	gs.mu.Unlock()
	// The manifest now supersedes every generation below gen: delete their
	// snapshots and logs. Failure here leaks files, nothing worse.
	gs.removeGenerationsBelow(gen)
	return nil
}

func (gs *GraphStore) removeGenerationsBelow(gen uint64) {
	entries, err := gs.store.fs.ReadDir(gs.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if g, kind, ok := parseGenFile(e.Name()); ok && g < gen {
			_ = kind
			_ = gs.store.fs.Remove(filepath.Join(gs.dir, e.Name()))
		}
	}
}

// parseGenFile recognizes snap-<gen>.bin and wal-<gen>.log names.
func parseGenFile(name string) (gen uint64, kind string, ok bool) {
	switch {
	case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".bin"):
		gen, err := strconv.ParseUint(name[len("snap-"):len(name)-len(".bin")], 10, 64)
		return gen, "snap", err == nil
	case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
		gen, err := strconv.ParseUint(name[len("wal-"):len(name)-len(".log")], 10, 64)
		return gen, "wal", err == nil
	}
	return 0, "", false
}

// Sync forces pending WAL writes to stable storage (shutdown path).
func (gs *GraphStore) Sync() error {
	syncStart := time.Now()
	synced, err := gs.syncWAL()
	if err == nil && synced {
		gs.store.walFsyncs.Add(1)
		if m := gs.store.met; m != nil {
			m.fsyncSeconds.Observe(time.Since(syncStart).Seconds())
		}
	}
	return err
}

func (gs *GraphStore) syncWAL() (bool, error) {
	gs.mu.Lock()
	w := gs.wal
	gs.mu.Unlock()
	if w == nil {
		return false, nil
	}
	return w.syncIfDirty()
}

func (gs *GraphStore) close() error {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if gs.wal == nil {
		return nil
	}
	//lint:ignore lockio final close must exclude concurrent appenders, so it runs under gs.mu
	err := gs.wal.close()
	gs.wal = nil
	return err
}

// Recovered is one graph restored from disk.
type Recovered struct {
	Name      string
	Source    string
	ProbModel string
	// Dyn is the graph at its exact pre-crash epoch: manifest snapshot
	// plus the replayed WAL tail.
	Dyn *dynamic.Graph
	// GS continues the graph's durable log; new batches append where the
	// pre-crash process stopped.
	GS *GraphStore
	// ReplayedBatches counts WAL records applied on top of the snapshot;
	// TruncatedTail reports that a torn or corrupt tail record was cut off.
	ReplayedBatches int
	TruncatedTail   bool
	// SnapshotEpoch is the manifest's epoch, before replay.
	SnapshotEpoch uint64
}

// Epoch returns the recovered graph's final epoch.
func (r *Recovered) Epoch() uint64 { return r.Dyn.Epoch() }

// Recover scans every graph directory, loads each manifest's snapshot,
// replays its WAL tail, and opens the logs for appending. Directories
// without a manifest (debris of a crashed Create or Remove) are skipped;
// a manifest whose snapshot is missing or corrupt is a hard error —
// silently dropping a durable graph is worse than refusing to start.
func (s *Store) Recover() ([]*Recovered, error) {
	dirRoot := filepath.Join(s.root, "graphs")
	entries, err := s.fs.ReadDir(dirRoot)
	if err != nil {
		return nil, err
	}
	var out []*Recovered
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		manPath := filepath.Join(dirRoot, name, "manifest.json")
		if _, err := s.fs.Stat(manPath); errors.Is(err, os.ErrNotExist) {
			continue
		}
		rec, err := s.recoverGraph(name)
		if err != nil {
			return nil, fmt.Errorf("store: recovering graph %q: %w", name, err)
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func (s *Store) recoverGraph(name string) (*Recovered, error) {
	dir := s.graphDir(name)
	man, err := graph.ReadManifestFS(s.fs, filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	if man.Name != name {
		return nil, fmt.Errorf("manifest names %q", man.Name)
	}
	snapData, err := s.fs.ReadFile(filepath.Join(dir, man.Snapshot))
	if err != nil {
		return nil, fmt.Errorf("snapshot %s: %w", man.Snapshot, err)
	}
	g, err := graph.ReadBinary(bytes.NewReader(snapData))
	if err != nil {
		return nil, fmt.Errorf("snapshot %s: %w", man.Snapshot, err)
	}
	if g.N() != man.N || g.M() != man.M {
		return nil, fmt.Errorf("snapshot %s is %d/%d vertices/edges, manifest says %d/%d",
			man.Snapshot, g.N(), g.M(), man.N, man.M)
	}
	dyn := dynamic.NewAtEpoch(g, s.cfg.Dynamic, man.Epoch)

	// Collect WAL generations the manifest has not superseded, in order.
	dents, err := s.fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, de := range dents {
		if gen, kind, ok := parseGenFile(de.Name()); ok && kind == "wal" && gen >= man.WALGen {
			gens = append(gens, gen)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	if len(gens) == 0 {
		// No WAL at all (lost with its directory entry before any fsync):
		// recover to the snapshot and start a fresh log at the manifest gen.
		w, err := createWAL(s.fs, filepath.Join(dir, walName(man.WALGen)), s.cfg.Fsync)
		if err != nil {
			return nil, err
		}
		if err := graph.SyncDirFS(s.fs, dir); err != nil {
			_ = w.close()
			return nil, err
		}
		gs := &GraphStore{store: s, name: name, dir: dir, gen: man.WALGen, wal: w, man: *man}
		s.adopt(gs)
		rec := &Recovered{Name: name, Source: man.Source, ProbModel: man.ProbModel,
			Dyn: dyn, GS: gs, SnapshotEpoch: man.Epoch, TruncatedTail: true}
		s.recovered.Add(1)
		s.truncatedTails.Add(1)
		return rec, nil
	}

	rec := &Recovered{Name: name, Source: man.Source, ProbModel: man.ProbModel,
		Dyn: dyn, SnapshotEpoch: man.Epoch}
	expected := man.Epoch
	stopped := false // a bad record ends replay for good
	lastGen := gens[len(gens)-1]
	var lastValidLen int64
	for _, gen := range gens {
		path := filepath.Join(dir, walName(gen))
		data, err := s.fs.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if stopped {
			// Records past a truncation point are unreachable epochs;
			// their generations are deleted below.
			continue
		}
		recs, validLen, clean := scanWAL(data)
		for _, r := range recs {
			muts, err := dynamic.DecodeBatch(r.batch)
			if err != nil || r.epoch != expected+1 {
				// Framing was intact but the content is not a replayable
				// next batch: treat it like a corrupt tail from here on.
				clean = false
				validLen = r.off
				break
			}
			if _, err := dyn.Replay(muts, r.epoch); err != nil {
				return nil, fmt.Errorf("replaying epoch %d: %w", r.epoch, err)
			}
			expected = r.epoch
			rec.ReplayedBatches++
			validLen = r.end
		}
		if !clean {
			stopped = true
			rec.TruncatedTail = true
			lastGen, lastValidLen = gen, validLen
		} else if gen == lastGen {
			lastValidLen = validLen
		}
	}
	if stopped {
		// Delete generations past the truncated one — their records can
		// never be replayed now.
		for _, gen := range gens {
			if gen > lastGen {
				_ = s.fs.Remove(filepath.Join(dir, walName(gen)))
			}
		}
	}
	// Re-open the last surviving generation for appends, truncating the
	// bad tail if any.
	w, err := openWAL(s.fs, filepath.Join(dir, walName(lastGen)), lastValidLen, s.cfg.Fsync)
	if err != nil {
		return nil, err
	}
	gs := &GraphStore{store: s, name: name, dir: dir, gen: lastGen, wal: w, man: *man}
	s.adopt(gs)
	rec.GS = gs
	s.recovered.Add(1)
	s.replayed.Add(int64(rec.ReplayedBatches))
	if rec.TruncatedTail {
		s.truncatedTails.Add(1)
	}
	return rec, nil
}

// adopt registers a recovered GraphStore in the store's table.
func (s *Store) adopt(gs *GraphStore) {
	s.mu.Lock()
	s.graphs[gs.name] = gs
	s.mu.Unlock()
}
