package cascade

import (
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// Trace records one diffusion realization with the timestamps of the IC
// process definition (Section III-A): seeds activate at timestamp 0, a
// vertex activated at timestamp i gets one chance to activate each
// inactive out-neighbor at timestamp i+1, and the process stops when a
// timestamp activates nobody. Traces power the reporting and visualization
// paths (who was infected when, which share carried the infection), which
// plain spread counts cannot answer.
type Trace struct {
	// ActivatedAt[v] is v's activation timestamp, or -1 if v stayed
	// inactive.
	ActivatedAt []int32
	// ActivatedBy[v] is the neighbor whose influence activated v (-1 for
	// seeds and inactive vertices). The pairs (ActivatedBy[v], v) form the
	// realized infection forest.
	ActivatedBy []graph.V
	// PerRound[t] is the number of vertices first activated at timestamp
	// t; PerRound[0] is the seed count.
	PerRound []int
	// Total is the number of active vertices at the end.
	Total int
}

// Rounds returns the last timestamp at which an activation happened.
func (tr *Trace) Rounds() int { return len(tr.PerRound) - 1 }

// SimulateTrace runs one timestamped IC diffusion from the seed set,
// skipping blocked vertices. Unlike the flat SimulateCount used in
// estimation loops, it processes the frontier in strict timestamp layers
// so the reported rounds match the model definition exactly.
func SimulateTrace(g *graph.Graph, seeds []graph.V, blocked []bool, r *rng.Source) *Trace {
	n := g.N()
	tr := &Trace{
		ActivatedAt: make([]int32, n),
		ActivatedBy: make([]graph.V, n),
	}
	for i := range tr.ActivatedAt {
		tr.ActivatedAt[i] = -1
		tr.ActivatedBy[i] = -1
	}
	var frontier, next []graph.V
	for _, s := range seeds {
		if blocked != nil && blocked[s] {
			continue
		}
		if tr.ActivatedAt[s] == -1 {
			tr.ActivatedAt[s] = 0
			frontier = append(frontier, s)
		}
	}
	tr.PerRound = append(tr.PerRound, len(frontier))
	tr.Total = len(frontier)

	for t := int32(1); len(frontier) > 0; t++ {
		next = next[:0]
		for _, u := range frontier {
			to := g.OutNeighbors(u)
			ps := g.OutProbs(u)
			for i, v := range to {
				if tr.ActivatedAt[v] != -1 || (blocked != nil && blocked[v]) {
					continue
				}
				if r.Bernoulli(ps[i]) {
					tr.ActivatedAt[v] = t
					tr.ActivatedBy[v] = u
					next = append(next, v)
				}
			}
		}
		if len(next) == 0 {
			break
		}
		tr.PerRound = append(tr.PerRound, len(next))
		tr.Total += len(next)
		frontier, next = next, frontier
	}
	return tr
}

// AverageRounds estimates the expected number of diffusion rounds and the
// expected spread over the given number of trace simulations.
func AverageRounds(g *graph.Graph, seeds []graph.V, blocked []bool, sims int, r *rng.Source) (avgRounds, avgSpread float64) {
	if sims <= 0 {
		panic("cascade: AverageRounds with non-positive sims")
	}
	var rounds, total int
	for i := 0; i < sims; i++ {
		tr := SimulateTrace(g, seeds, blocked, r)
		rounds += tr.Rounds()
		total += tr.Total
	}
	return float64(rounds) / float64(sims), float64(total) / float64(sims)
}
