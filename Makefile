# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml), so a green `make lint test` locally means a
# green pipeline.

GO ?= go

.PHONY: all build test lint lint-fix bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint is the full static gate: formatting, go vet, then the project's own
# invariant analyzers (cmd/iminlint). staticcheck joins automatically when
# it is on PATH; its absence is not a failure (offline environments).
lint:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: needs formatting:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) run ./cmd/iminlint ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; fi

lint-fix:
	gofmt -w .

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

clean:
	$(GO) clean ./...
