package lintrules_test

import (
	"testing"

	"github.com/imin-dev/imin/internal/lintkit/linttest"
	"github.com/imin-dev/imin/internal/lintrules"
)

func TestCtxPropPositive(t *testing.T) {
	linttest.Run(t, "testdata/ctxprop/pos", lintrules.CtxProp, corePath)
}

func TestCtxPropNegative(t *testing.T) {
	linttest.MustBeCleanDir(t, "testdata/ctxprop/neg", lintrules.CtxProp, corePath)
}
