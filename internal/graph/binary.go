package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// Binary graph serialization: a fixed little-endian layout that loads the
// million-vertex datasets orders of magnitude faster than text edge lists
// (no parsing, no id interning, one allocation per array). Format:
//
//	magic "IMGB" | version u32 | n u64 | m u64
//	outStart [n+1]u32 | outTo [m]u32 | outP [m]f64
//	crc32 u32        (version >= 2 only)
//
// The v2 footer is the IEEE CRC32 of every preceding byte (magic, header
// and arrays), so a snapshot truncated or bit-flipped at rest is detected
// at load instead of silently producing a wrong graph — the contract the
// durable store's crash recovery depends on. v1 files (no footer) are
// still read.
//
// The in-CSR is rebuilt on load (cheaper than storing it).
const (
	binaryMagic   = "IMGB"
	binaryVersion = 2
)

// crcWriter tees every written byte into a running IEEE CRC32.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p[:n])
	return n, err
}

// crcReader tees every consumed byte into a running IEEE CRC32. It sits
// between the buffered reader and the parser, so read-ahead buffering never
// pollutes the checksum.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, crc32.IEEETable, p[:n])
	return n, err
}

// WriteBinary serializes the graph to w in the current (v2) format.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	cw := &crcWriter{w: bw}
	if _, err := cw.Write([]byte(binaryMagic)); err != nil {
		return err
	}
	hdr := make([]byte, 4+8+8)
	binary.LittleEndian.PutUint32(hdr[0:], binaryVersion)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(g.n))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(g.M()))
	if _, err := cw.Write(hdr); err != nil {
		return err
	}
	if err := writeU32s(cw, g.outStart); err != nil {
		return err
	}
	if err := writeU32s(cw, g.outTo); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, p := range g.outP {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(p))
		if _, err := cw.Write(buf); err != nil {
			return err
		}
	}
	// Footer: CRC of everything above, written outside the hashing tee.
	binary.LittleEndian.PutUint32(buf[:4], cw.crc)
	if _, err := bw.Write(buf[:4]); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary. Both the current
// v2 format (CRC32 footer) and legacy v1 files (no footer) are accepted;
// for v2 a checksum mismatch fails the load before the graph is trusted.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	cr := &crcReader{r: br}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(cr, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	hdr := make([]byte, 4+8+8)
	if _, err := io.ReadFull(cr, hdr); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	version := binary.LittleEndian.Uint32(hdr[0:])
	if version != 1 && version != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported binary version %d", version)
	}
	n := binary.LittleEndian.Uint64(hdr[4:])
	m := binary.LittleEndian.Uint64(hdr[12:])
	const maxReasonable = 1 << 33
	if n > maxReasonable || m > maxReasonable {
		return nil, fmt.Errorf("graph: implausible sizes n=%d m=%d", n, m)
	}
	g := &Graph{n: int(n)}
	var err error
	if g.outStart, err = readU32s(cr, int(n)+1); err != nil {
		return nil, err
	}
	if g.outTo, err = readU32s(cr, int(m)); err != nil {
		return nil, err
	}
	g.outP = make([]float64, m)
	buf := make([]byte, 8)
	for i := range g.outP {
		if _, err := io.ReadFull(cr, buf); err != nil {
			return nil, fmt.Errorf("graph: reading probabilities: %w", err)
		}
		g.outP[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
	}
	if version >= 2 {
		// The footer is read outside the hashing tee: cr.crc now covers
		// exactly the bytes the writer hashed.
		want := cr.crc
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, fmt.Errorf("graph: reading checksum footer: %w", err)
		}
		if got := binary.LittleEndian.Uint32(buf[:4]); got != want {
			return nil, fmt.Errorf("graph: checksum mismatch (file %08x, computed %08x)", got, want)
		}
	}
	// Validate the CSR before trusting it.
	if g.outStart[0] != 0 || uint64(g.outStart[n]) != m {
		return nil, fmt.Errorf("graph: corrupt CSR bounds")
	}
	for i := 0; i < int(n); i++ {
		if g.outStart[i] > g.outStart[i+1] {
			return nil, fmt.Errorf("graph: CSR offsets not monotone at %d", i)
		}
	}
	for _, v := range g.outTo {
		if uint64(v) >= n {
			return nil, fmt.Errorf("graph: target %d out of range", v)
		}
	}
	g.rebuildIn()
	g.validate()
	return g, nil
}

// rebuildIn reconstructs the in-CSR from the out-CSR.
func (g *Graph) rebuildIn() {
	m := len(g.outTo)
	g.inStart = make([]int32, g.n+1)
	g.inTo = make([]V, m)
	g.inP = make([]float64, m)
	for _, v := range g.outTo {
		g.inStart[v+1]++
	}
	for i := 0; i < g.n; i++ {
		g.inStart[i+1] += g.inStart[i]
	}
	fill := make([]int32, g.n)
	for u := V(0); int(u) < g.n; u++ {
		for j := g.outStart[u]; j < g.outStart[u+1]; j++ {
			v := g.outTo[j]
			idx := g.inStart[v] + fill[v]
			g.inTo[idx] = u
			g.inP[idx] = g.outP[j]
			fill[v]++
		}
	}
}

// WriteBinaryFile writes the graph to path.
func (g *Graph) WriteBinaryFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteBinary(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// ReadBinaryFile loads a graph written by WriteBinaryFile.
func ReadBinaryFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

func writeU32s(w io.Writer, xs []int32) error {
	buf := make([]byte, 4*1024)
	for off := 0; off < len(xs); {
		chunk := len(xs) - off
		if chunk > 1024 {
			chunk = 1024
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(xs[off+i]))
		}
		if _, err := w.Write(buf[:4*chunk]); err != nil {
			return err
		}
		off += chunk
	}
	return nil
}

func readU32s(r io.Reader, n int) ([]int32, error) {
	xs := make([]int32, n)
	buf := make([]byte, 4*1024)
	for off := 0; off < n; {
		chunk := n - off
		if chunk > 1024 {
			chunk = 1024
		}
		if _, err := io.ReadFull(r, buf[:4*chunk]); err != nil {
			return nil, fmt.Errorf("graph: reading u32 block: %w", err)
		}
		for i := 0; i < chunk; i++ {
			xs[off+i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		off += chunk
	}
	return xs, nil
}
