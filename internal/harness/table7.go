package harness

import (
	"fmt"

	"github.com/imin-dev/imin/internal/core"
	"github.com/imin-dev/imin/internal/graph"
)

// Table7Row is one (dataset, model, budget) cell group of Table VII: the
// expected spread achieved by each heuristic.
type Table7Row struct {
	Dataset string
	Model   graph.ProbModel
	Budget  int
	// Spread by algorithm, keyed with the paper's column names.
	RA, OD, AG, GR float64
}

// Table7Options sizes the effectiveness comparison.
type Table7Options struct {
	// Budgets to sweep. The paper uses {20,40,60,80,100} on full-size
	// graphs; the default {4,8,12,16,20} matches the default 2% scale.
	Budgets []int
	// Models to run; default both TR and WC, as in the paper.
	Models []graph.ProbModel
}

func (o Table7Options) withDefaults() Table7Options {
	if len(o.Budgets) == 0 {
		o.Budgets = []int{4, 8, 12, 16, 20}
	}
	if len(o.Models) == 0 {
		o.Models = []graph.ProbModel{graph.Trivalency, graph.WeightedCascade}
	}
	return o
}

// RunTable7 reproduces Table VII: for every dataset × model × budget, run
// Rand (RA), OutDegree (OD), AdvancedGreedy (AG) and GreedyReplace (GR) and
// measure the expected spread of each blocker set with Monte-Carlo
// evaluation. The paper's finding under test: GR ≤ AG ≤ OD ≤ RA in nearly
// every cell, with GR and AG converging to |S| (full containment) at large
// budgets on sparse datasets.
func RunTable7(cfg Config, opts Table7Options) ([]Table7Row, error) {
	cfg = cfg.WithDefaults()
	opts = opts.withDefaults()
	specs, err := cfg.selectedSpecs()
	if err != nil {
		return nil, err
	}

	var rows []Table7Row
	for _, model := range opts.Models {
		for _, spec := range specs {
			inst, err := cfg.prepare(spec, model)
			if err != nil {
				return nil, err
			}
			for _, b := range opts.Budgets {
				row := Table7Row{Dataset: spec.Name, Model: model, Budget: b}
				for _, alg := range []core.Algorithm{core.Rand, core.OutDegree, core.AdvancedGreedy, core.GreedyReplace} {
					_, spread, err := cfg.run(inst, alg, b)
					if err != nil {
						return nil, fmt.Errorf("harness: %s/%s/b=%d/%s: %w", spec.Name, model, b, alg, err)
					}
					switch alg {
					case core.Rand:
						row.RA = spread
					case core.OutDegree:
						row.OD = spread
					case core.AdvancedGreedy:
						row.AG = spread
					case core.GreedyReplace:
						row.GR = spread
					}
				}
				rows = append(rows, row)
			}
		}
	}

	fmt.Fprintln(cfg.Out, "Table VII: comparison with other heuristics (expected spread)")
	fmt.Fprintln(cfg.Out, "Dataset      Model   b       RA       OD       AG       GR")
	for _, r := range rows {
		fmt.Fprintf(cfg.Out, "%-12s %-5s %3d %8.3f %8.3f %8.3f %8.3f\n",
			r.Dataset, r.Model, r.Budget, r.RA, r.OD, r.AG, r.GR)
	}
	return rows, nil
}
