// Package datasets provides the evaluation graphs. The paper uses 8 SNAP
// datasets (Table IV); this module is built offline, so the package ships
// synthetic generators that reproduce each dataset's direction, scale,
// average degree and heavy-tailed degree distribution instead (see
// DESIGN.md §4 for the substitution rationale), plus loaders so that real
// SNAP files can be dropped in when available.
package datasets

import (
	"fmt"
	"math"
	"sort"

	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// PreferentialAttachment generates a Barabási–Albert-style graph with n
// vertices and roughly edgesPerVertex·n edges. Each arriving vertex
// attaches to existing vertices chosen proportionally to their current
// degree, which yields the power-law degree tail characteristic of the
// paper's social networks. edgesPerVertex may be fractional — the
// fractional part attaches probabilistically.
//
// When directed, each attachment edge is oriented uniformly at random
// (new→old or old→new), giving heavy in- and out-degree tails; otherwise
// both directions are added. Probabilities are set to 1; callers assign a
// propagation model afterwards.
func PreferentialAttachment(n int, edgesPerVertex float64, directed bool, r *rng.Source) *graph.Graph {
	if n < 2 {
		panic("datasets: PreferentialAttachment needs n >= 2")
	}
	if edgesPerVertex < 0 {
		panic("datasets: negative edgesPerVertex")
	}
	b := graph.NewBuilder(n)
	// targets holds one entry per unit of degree: uniform sampling from it
	// is degree-proportional sampling.
	targets := make([]graph.V, 0, int(2*edgesPerVertex*float64(n))+4)

	addEdge := func(u, v graph.V) {
		if directed {
			if r.Bernoulli(0.5) {
				u, v = v, u
			}
			b.AddEdge(u, v, 1)
		} else {
			b.AddUndirected(u, v, 1)
		}
		targets = append(targets, u, v)
	}

	// Seed the process with an edge between the first two vertices.
	addEdge(0, 1)

	whole := int(edgesPerVertex)
	frac := edgesPerVertex - float64(whole)
	for v := graph.V(2); int(v) < n; v++ {
		k := whole
		if r.Bernoulli(frac) {
			k++
		}
		if k < 1 {
			// Keep the graph connected-ish even in ultra-sparse regimes:
			// every vertex attaches at least once.
			k = 1
		}
		for e := 0; e < k; e++ {
			// Preferential pick with a few retries to avoid self/duplicate
			// attachments; the builder merges any survivors.
			var u graph.V
			for attempt := 0; ; attempt++ {
				u = targets[r.Intn(len(targets))]
				if u != v || attempt >= 3 {
					break
				}
			}
			if u == v {
				continue
			}
			addEdge(v, u)
		}
	}
	return b.Build()
}

// ErdosRenyi generates a G(n, m) random graph with m directed edges chosen
// uniformly (undirected graphs get m/2 undirected edges). Degree
// distribution is binomial — the light-tailed contrast case for ablations.
func ErdosRenyi(n, m int, directed bool, r *rng.Source) *graph.Graph {
	if n < 2 {
		panic("datasets: ErdosRenyi needs n >= 2")
	}
	b := graph.NewBuilder(n)
	pairs := m
	if !directed {
		pairs = m / 2
	}
	for i := 0; i < pairs; i++ {
		u := graph.V(r.Intn(n))
		v := graph.V(r.Intn(n))
		if u == v {
			continue
		}
		if directed {
			b.AddEdge(u, v, 1)
		} else {
			b.AddUndirected(u, v, 1)
		}
	}
	return b.Build()
}

// WattsStrogatz generates a small-world ring lattice with n vertices, k
// neighbors per side, and rewiring probability beta. High clustering and
// short paths; used by the community-structured examples.
func WattsStrogatz(n, k int, beta float64, r *rng.Source) *graph.Graph {
	if n < 2*k+1 {
		panic("datasets: WattsStrogatz needs n > 2k")
	}
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			w := (v + j) % n
			if r.Bernoulli(beta) {
				// Rewire to a uniform random target.
				for tries := 0; tries < 8; tries++ {
					cand := r.Intn(n)
					if cand != v && cand != w {
						w = cand
						break
					}
				}
			}
			b.AddUndirected(graph.V(v), graph.V(w), 1)
		}
	}
	return b.Build()
}

// PowerLawConfiguration generates a graph whose out-degrees follow a
// discrete power law with the given exponent (typically 2–3) and maximum
// degree cap, wired by the directed configuration model: out-stubs connect
// to uniformly random vertices. It offers direct control over the degree
// exponent for ablation studies.
func PowerLawConfiguration(n int, exponent float64, maxDeg int, directed bool, r *rng.Source) *graph.Graph {
	if n < 2 {
		panic("datasets: PowerLawConfiguration needs n >= 2")
	}
	if exponent <= 1 {
		panic("datasets: power-law exponent must exceed 1")
	}
	if maxDeg >= n {
		maxDeg = n - 1
	}
	// Inverse-CDF sampling of P(d) ∝ d^(-exponent), d in [1, maxDeg].
	cdf := make([]float64, maxDeg)
	total := 0.0
	for d := 1; d <= maxDeg; d++ {
		total += pow(float64(d), -exponent)
		cdf[d-1] = total
	}
	sampleDeg := func() int {
		x := r.Float64() * total
		lo, hi := 0, maxDeg-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo + 1
	}
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		d := sampleDeg()
		for e := 0; e < d; e++ {
			w := graph.V(r.Intn(n))
			if w == graph.V(v) {
				continue
			}
			if directed {
				b.AddEdge(graph.V(v), w, 1)
			} else {
				b.AddUndirected(graph.V(v), w, 1)
			}
		}
	}
	return b.Build()
}

// pow aliases math.Pow; only positive arguments occur here.
func pow(x, y float64) float64 { return math.Pow(x, y) }

// SkewedCascade builds a graph engineered for heavy-tailed live-edge
// sample sizes — the regime that skews per-sample estimator work across a
// pool's θ-ranges and makes the incremental estimator's work stealing
// earn its keep. Vertex 0 is a gateway holding one pHot-probability edge
// to the head of each of `chains` chains; chain c is a run of always-live
// (probability 1) edges whose length follows a 1/(c+1) power law over the
// non-gateway vertices, so chain 0 alone spans a constant fraction of the
// graph. A cascade from the gateway therefore includes chain c exactly
// when that one gateway coin fires: sample sizes jump between O(1) and
// O(n), heavy-tailed by construction rather than by asymptotics. Every
// vertex also gets a sparse pBg-probability background edge to a uniform
// target so samples are not pure paths.
//
// Sampling from vertex 0 (or seeding near it) with the IC model produces
// pools where a handful of samples dominate the per-round work — the input
// that tests and benchmarks use to exercise the stealing path.
func SkewedCascade(n, chains int, pHot, pBg float64, r *rng.Source) *graph.Graph {
	if n < 2 {
		panic("datasets: SkewedCascade needs n >= 2")
	}
	if chains < 1 {
		chains = 1
	}
	if chains > n-1 {
		chains = n - 1
	}
	// Zipf chain lengths over the n-1 non-gateway vertices: weight of chain
	// c is 1/(c+1). Remainders go to the earliest chains, so every chain
	// has at least its head.
	weights := make([]float64, chains)
	total := 0.0
	for c := 0; c < chains; c++ {
		weights[c] = 1 / float64(c+1)
		total += weights[c]
	}
	avail := n - 1
	lengths := make([]int, chains)
	used := 0
	for c := 0; c < chains; c++ {
		lengths[c] = int(weights[c] / total * float64(avail))
		if lengths[c] < 1 {
			lengths[c] = 1
		}
		used += lengths[c]
	}
	for c := 0; used > avail; c = (c + 1) % chains {
		// Ultra-small n can overshoot by the minimums; trim the long end.
		if lengths[c] > 1 {
			lengths[c]--
			used--
		}
	}
	lengths[0] += avail - used

	b := graph.NewBuilder(n)
	next := graph.V(1)
	for c := 0; c < chains; c++ {
		head := next
		b.AddEdge(0, head, pHot)
		for i := 1; i < lengths[c]; i++ {
			b.AddEdge(next, next+1, 1)
			next++
		}
		next++
	}
	if pBg > 0 {
		for v := 0; v < n; v++ {
			w := graph.V(r.Intn(n))
			if w != graph.V(v) {
				b.AddEdge(graph.V(v), w, pBg)
			}
		}
	}
	return b.Build()
}

// RandomSeeds draws count distinct seed vertices uniformly at random,
// following the evaluation setup ("randomly select 10 vertices as the
// seeds"). When requireOut is true only vertices with at least one
// out-edge qualify, so sparse graphs still produce non-trivial cascades.
func RandomSeeds(g *graph.Graph, count int, requireOut bool, r *rng.Source) ([]graph.V, error) {
	var pool []graph.V
	for v := graph.V(0); int(v) < g.N(); v++ {
		if !requireOut || g.OutDegree(v) > 0 {
			pool = append(pool, v)
		}
	}
	if count > len(pool) {
		return nil, fmt.Errorf("datasets: want %d seeds but only %d eligible vertices", count, len(pool))
	}
	for i := 0; i < count; i++ {
		j := i + r.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
	}
	return append([]graph.V(nil), pool[:count]...), nil
}

// TopOutDegreeSeeds returns the count vertices with the highest out-degree
// (ties by smaller id) — the "influential sources" seeding used to stress
// worst-case misinformation scenarios, complementing the paper's uniform
// RandomSeeds.
func TopOutDegreeSeeds(g *graph.Graph, count int) ([]graph.V, error) {
	if count > g.N() {
		return nil, fmt.Errorf("datasets: want %d seeds but graph has %d vertices", count, g.N())
	}
	seeds := make([]graph.V, g.N())
	for i := range seeds {
		seeds[i] = graph.V(i)
	}
	sort.Slice(seeds, func(i, j int) bool {
		di, dj := g.OutDegree(seeds[i]), g.OutDegree(seeds[j])
		if di != dj {
			return di > dj
		}
		return seeds[i] < seeds[j]
	})
	return seeds[:count], nil
}

// ExtractNeighborhood implements the paper's small-instance extraction for
// the optimality experiments (Tables V/VI): starting from start, repeatedly
// add a frontier vertex and all its neighbors (both directions) until at
// least target vertices are collected, then return the induced subgraph and
// the mapping from new ids to old ids. start maps to new id 0.
func ExtractNeighborhood(g *graph.Graph, start graph.V, target int) (*graph.Graph, []graph.V) {
	if target < 1 {
		target = 1
	}
	in := make([]bool, g.N())
	var keep []graph.V
	add := func(v graph.V) {
		if !in[v] {
			in[v] = true
			keep = append(keep, v)
		}
	}
	add(start)
	for qi := 0; qi < len(keep) && len(keep) < target; qi++ {
		v := keep[qi]
		for _, w := range g.OutNeighbors(v) {
			if len(keep) >= target {
				break
			}
			add(w)
		}
		for _, w := range g.InNeighbors(v) {
			if len(keep) >= target {
				break
			}
			add(w)
		}
	}
	return g.InducedSubgraph(keep)
}
