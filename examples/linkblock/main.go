// Command linkblock compares the two containment strategies the paper
// surveys: blocking vertices (suspending accounts) versus blocking edges
// (removing follow relationships / muting shares). Edge blocking is the
// gentler intervention — no account is disabled — and this example shows
// how many edge removals buy the same containment as one account
// suspension on a scale-free network.
//
// Run with:
//
//	go run ./examples/linkblock
package main

import (
	"fmt"
	"log"

	imin "github.com/imin-dev/imin"
)

func main() {
	structural := imin.GeneratePreferentialAttachment(2000, 3, true, 1)
	// Weighted-cascade probabilities: every user is influenced by exactly
	// one expected in-share, which sustains long cascades on sparse graphs.
	g := imin.AssignProbabilities(structural, imin.WeightedCascade, 0)
	seeds, err := imin.RandomSeedSet(g, 5, true, 3)
	if err != nil {
		log.Fatal(err)
	}
	opt := imin.Options{Theta: 3000, Seed: 4}

	base, err := imin.EstimateSpread(g, seeds, nil, 30000, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d accounts, %d edges; unchecked spread %.2f\n\n", g.N(), g.M(), base)

	// Strategy 1: suspend b accounts.
	fmt.Println("vertex blocking (account suspension):")
	for _, b := range []int{1, 3, 5} {
		res, err := imin.Minimize(g, seeds, b, opt)
		if err != nil {
			log.Fatal(err)
		}
		after, err := imin.EstimateSpread(g, seeds, res.Blockers, 30000, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  suspend %d account(s): spread %.2f (-%.1f%%)\n", b, after, 100*(base-after)/base)
	}

	// Strategy 2: remove b edges.
	fmt.Println("\nedge blocking (relationship removal):")
	for _, b := range []int{1, 3, 5, 10} {
		res, err := imin.MinimizeEdges(g, seeds, b, opt)
		if err != nil {
			log.Fatal(err)
		}
		// Score the removals by estimating spread on the edge-pruned graph.
		pruned := g
		var removed []imin.Edge
		removed = append(removed, res.Edges...)
		pruned = removeAll(g, removed)
		after, err := imin.EstimateSpread(pruned, seeds, nil, 30000, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  remove %2d edge(s):    spread %.2f (-%.1f%%)\n", b, after, 100*(base-after)/base)
	}
	fmt.Println("\nBlocking a vertex removes all its edges at once, so a suspension")
	fmt.Println("is worth several targeted edge removals — but edge blocking reaches")
	fmt.Println("the same containment without silencing any account completely.")
}

// removeAll rebuilds g without the given edges, using the library's builder.
func removeAll(g *imin.Graph, edges []imin.Edge) *imin.Graph {
	drop := map[[2]imin.Vertex]bool{}
	for _, e := range edges {
		drop[[2]imin.Vertex{e.From, e.To}] = true
	}
	b := imin.NewBuilder(g.N())
	for _, e := range g.Edges() {
		if !drop[[2]imin.Vertex{e.From, e.To}] {
			b.AddEdge(e.From, e.To, e.P)
		}
	}
	return b.Build()
}
