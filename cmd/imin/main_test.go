package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles the imin command into a temp dir and returns the
// binary path.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "imin")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// End-to-end smoke test: generate a small dataset stand-in, run the full
// CLI solve path, and check the blocker count and exit code.
func TestCLISolveSmoke(t *testing.T) {
	bin := buildCLI(t)
	out, err := exec.Command(bin,
		"-dataset", "EmailCore", "-scale", "0.05",
		"-seeds", "3", "-b", "4",
		"-alg", "advanced-greedy",
		"-theta", "200", "-mcs", "100", "-eval", "500",
		"-rng", "1",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"graph:", "seeds:", "blockers (4):", "expected spread:"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// The explicit seed-vertex path must produce a deterministic, repeatable
// run.
func TestCLIExplicitSeedsDeterministic(t *testing.T) {
	bin := buildCLI(t)
	run := func() string {
		out, err := exec.Command(bin,
			"-dataset", "EmailCore", "-scale", "0.05",
			"-seed-vertices", "0,2,5", "-b", "3",
			"-alg", "greedy-replace",
			"-theta", "150", "-eval", "300", "-rng", "7",
		).CombinedOutput()
		if err != nil {
			t.Fatalf("run: %v\n%s", err, out)
		}
		// Drop the wall-clock line; everything else must be bit-identical.
		var kept []string
		for _, line := range strings.Split(string(out), "\n") {
			if !strings.Contains(line, "selection time") {
				kept = append(kept, line)
			}
		}
		return strings.Join(kept, "\n")
	}
	if a, b := run(), run(); a != b {
		t.Errorf("two identical runs diverged:\n--- first\n%s--- second\n%s", a, b)
	}
}

// -h prints usage and exits 0; contradictory flags exit non-zero.
func TestCLIFlagHandling(t *testing.T) {
	bin := buildCLI(t)

	out, err := exec.Command(bin, "-h").CombinedOutput()
	if err != nil {
		t.Fatalf("-h exited non-zero: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "-dataset") {
		t.Errorf("-h output missing flag docs:\n%s", out)
	}

	out, err = exec.Command(bin, "-graph", "x.txt", "-dataset", "Facebook").CombinedOutput()
	if err == nil {
		t.Fatalf("conflicting -graph/-dataset exited 0:\n%s", out)
	}
	if !strings.Contains(string(out), "only one of") {
		t.Errorf("unexpected error output:\n%s", out)
	}
}
