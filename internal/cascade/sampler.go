// Package cascade implements influence diffusion under the independent
// cascade (IC) model and its triggering-model generalization: forward
// Monte-Carlo simulation of spread, and live-edge sampled-graph generation
// (Definition 4 of the paper), which is the input to the dominator-tree
// estimator at the heart of AdvancedGreedy and GreedyReplace.
//
// The key object is the LiveSampler interface with two implementations:
//
//   - IC: every edge (u,v) is live independently with probability p(u,v).
//   - LT: every vertex picks at most one live in-edge, in-neighbor u with
//     probability w(u,v) (the classic triggering-set formulation of the
//     linear threshold model).
//
// Samplers materialize only the part of the live-edge graph reachable from
// the source: by Lemma 1 the expected spread equals the expected number of
// reachable vertices, and by Theorem 6 the per-vertex spread decrease is a
// dominator-subtree size in this reachable subgraph, so nothing outside it
// is ever needed. Edges out of unreachable vertices are never coin-flipped,
// which is what makes sampling O(reachable edges) instead of O(m).
package cascade

import (
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// SampledGraph is the subgraph of one live-edge sample reachable from the
// source, in compact local ids 0..K-1 with local id 0 being the source.
// Slices alias Workspace storage: a SampledGraph is only valid until the
// next Sample call with the same Workspace.
type SampledGraph struct {
	K        int       // number of reachable vertices
	Orig     []graph.V // Orig[local] = vertex id in the original graph
	OutStart []int32   // CSR of live edges between reachable vertices
	OutTo    []int32
	InStart  []int32 // predecessor CSR (needed by dominator computation)
	InTo     []int32
}

// LiveSampler generates live-edge samples and forward simulations for a
// fixed underlying graph. Implementations are safe for concurrent use as
// long as each goroutine owns its Workspace and rng.Source.
type LiveSampler interface {
	// Graph returns the underlying graph.
	Graph() *graph.Graph
	// NewWorkspace allocates reusable per-goroutine scratch space.
	NewWorkspace() *Workspace
	// Sample draws one live-edge sample and returns its reachable subgraph
	// from src. Vertices with blocked[v] set are treated as removed;
	// blocked may be nil. src must not be blocked.
	Sample(src graph.V, blocked []bool, r *rng.Source, ws *Workspace) *SampledGraph
	// SimulateCount runs one forward diffusion round and returns the number
	// of activated vertices including src (σ(src, g) of a fresh sample). It
	// is Sample without edge bookkeeping.
	SimulateCount(src graph.V, blocked []bool, r *rng.Source, ws *Workspace) int
}

// Workspace holds the reusable buffers for sampling. All slices are sized to
// the underlying graph's vertex count once and reused across samples through
// epoch stamping, so steady-state sampling does no allocation.
type Workspace struct {
	n     int
	epoch int32
	stamp []int32   // stamp[v] == epoch ⇔ v reached in current sample
	local []int32   // local id of v, valid when stamped
	queue []graph.V // BFS queue of original ids

	orig       []graph.V // local -> original
	eFrom, eTo []int32   // live edges in local ids
	outStart   []int32
	outTo      []int32
	inStart    []int32
	inTo       []int32
	fill       []int32
	sg         SampledGraph
	ltStamp    []int32   // LT: lazy trigger-choice validity
	ltChoice   []graph.V // LT: chosen in-neighbor (-1 = none)

	// Generic triggering model (triggering.go): trigger-set cache.
	trStamp []int32 // trStamp[v] == epoch ⇔ T(v) sampled this round
	trStart []int32 // T(v) occupies trIdx[trStart[v]:trEnd[v]]
	trEnd   []int32
	trIdx   []int32 // in-neighbor indices, flat arena reset per sample
}

func newWorkspace(n int) *Workspace {
	return &Workspace{
		n:     n,
		stamp: make([]int32, n),
		local: make([]int32, n),
	}
}

// reset starts a new sampling epoch, clearing stamps lazily.
func (ws *Workspace) reset() {
	ws.epoch++
	if ws.epoch == 0 { // wrapped: hard reset
		for i := range ws.stamp {
			ws.stamp[i] = -1
		}
		for i := range ws.ltStamp {
			ws.ltStamp[i] = -1
		}
		for i := range ws.trStamp {
			ws.trStamp[i] = -1
		}
		ws.epoch = 1
	}
	ws.queue = ws.queue[:0]
	ws.orig = ws.orig[:0]
	ws.eFrom = ws.eFrom[:0]
	ws.eTo = ws.eTo[:0]
}

// reach marks v as reached and returns its local id, or returns the existing
// local id if already reached.
func (ws *Workspace) reach(v graph.V) (local int32, isNew bool) {
	if ws.stamp[v] == ws.epoch {
		return ws.local[v], false
	}
	ws.stamp[v] = ws.epoch
	local = int32(len(ws.orig))
	ws.local[v] = local
	ws.orig = append(ws.orig, v)
	return local, true
}

// buildCSR converts the recorded edge list into forward and backward CSR
// over the k reached vertices and fills ws.sg.
func (ws *Workspace) buildCSR() *SampledGraph {
	k := len(ws.orig)
	e := len(ws.eFrom)
	ws.outStart = growInt32(ws.outStart, k+1)
	ws.inStart = growInt32(ws.inStart, k+1)
	ws.outTo = growInt32(ws.outTo, e)
	ws.inTo = growInt32(ws.inTo, e)
	ws.fill = growInt32(ws.fill, k)
	outStart, inStart := ws.outStart[:k+1], ws.inStart[:k+1]
	outTo, inTo := ws.outTo[:e], ws.inTo[:e]
	fill := ws.fill[:k]

	for i := range outStart {
		outStart[i] = 0
	}
	for i := range inStart {
		inStart[i] = 0
	}
	for i := 0; i < e; i++ {
		outStart[ws.eFrom[i]+1]++
		inStart[ws.eTo[i]+1]++
	}
	for i := 0; i < k; i++ {
		outStart[i+1] += outStart[i]
		inStart[i+1] += inStart[i]
	}
	for i := range fill {
		fill[i] = 0
	}
	for i := 0; i < e; i++ {
		u := ws.eFrom[i]
		outTo[outStart[u]+fill[u]] = ws.eTo[i]
		fill[u]++
	}
	for i := range fill {
		fill[i] = 0
	}
	for i := 0; i < e; i++ {
		v := ws.eTo[i]
		inTo[inStart[v]+fill[v]] = ws.eFrom[i]
		fill[v]++
	}

	ws.sg = SampledGraph{
		K:        k,
		Orig:     ws.orig,
		OutStart: outStart,
		OutTo:    outTo,
		InStart:  inStart,
		InTo:     inTo,
	}
	return &ws.sg
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n, n+n/2)
	}
	return s[:n]
}

// IC is the LiveSampler for the independent cascade model: each edge is live
// independently with its propagation probability.
type IC struct {
	g *graph.Graph
}

// NewIC returns an IC sampler over g.
func NewIC(g *graph.Graph) *IC { return &IC{g: g} }

// Graph returns the underlying graph.
func (ic *IC) Graph() *graph.Graph { return ic.g }

// NewWorkspace allocates scratch space for one goroutine.
func (ic *IC) NewWorkspace() *Workspace { return newWorkspace(ic.g.N()) }

// Sample implements LiveSampler.
func (ic *IC) Sample(src graph.V, blocked []bool, r *rng.Source, ws *Workspace) *SampledGraph {
	ws.reset()
	ws.reach(src)
	ws.queue = append(ws.queue, src)
	for qi := 0; qi < len(ws.queue); qi++ {
		u := ws.queue[qi]
		lu := ws.local[u]
		to := ic.g.OutNeighbors(u)
		ps := ic.g.OutProbs(u)
		for i, v := range to {
			if blocked != nil && blocked[v] {
				continue
			}
			if !r.Bernoulli(ps[i]) {
				continue
			}
			lv, isNew := ws.reach(v)
			if isNew {
				ws.queue = append(ws.queue, v)
			}
			ws.eFrom = append(ws.eFrom, lu)
			ws.eTo = append(ws.eTo, lv)
		}
	}
	return ws.buildCSR()
}

// SimulateCount implements LiveSampler.
func (ic *IC) SimulateCount(src graph.V, blocked []bool, r *rng.Source, ws *Workspace) int {
	ws.reset()
	ws.reach(src)
	ws.queue = append(ws.queue, src)
	for qi := 0; qi < len(ws.queue); qi++ {
		u := ws.queue[qi]
		to := ic.g.OutNeighbors(u)
		ps := ic.g.OutProbs(u)
		for i, v := range to {
			if blocked != nil && blocked[v] {
				continue
			}
			if ws.stamp[v] == ws.epoch {
				continue // already active: at most one activation attempt matters
			}
			if r.Bernoulli(ps[i]) {
				ws.stamp[v] = ws.epoch
				ws.local[v] = int32(len(ws.orig))
				ws.orig = append(ws.orig, v)
				ws.queue = append(ws.queue, v)
			}
		}
	}
	return len(ws.orig)
}
