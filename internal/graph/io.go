package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Edge-list I/O in the SNAP-style text format the paper's datasets ship in:
// one edge per line, whitespace-separated, '#' comments, optionally a third
// column with the propagation probability. Vertex ids in files may be sparse
// (SNAP files often are); they are remapped to the dense range [0,n) and the
// mapping is returned so callers can translate seed ids.

// ReadOptions controls edge-list parsing.
type ReadOptions struct {
	// Undirected adds each file edge in both directions.
	Undirected bool
	// DefaultP is the probability used for two-column lines. Three-column
	// lines always use the explicit value.
	DefaultP float64
}

// ReadEdgeList parses an edge list from r. It returns the graph and the
// original id of each dense vertex (origID[newID] = fileID).
func ReadEdgeList(r io.Reader, opts ReadOptions) (*Graph, []int64, error) {
	if opts.DefaultP == 0 {
		opts.DefaultP = 1
	}
	b := NewBuilder(0)
	idMap := make(map[int64]V)
	var origID []int64
	intern := func(raw int64) V {
		if v, ok := idMap[raw]; ok {
			return v
		}
		v := V(len(origID))
		idMap[raw] = v
		origID = append(origID, raw)
		return v
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: want at least 2 fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad source id: %w", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad target id: %w", lineNo, err)
		}
		p := opts.DefaultP
		if len(fields) >= 3 {
			p, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("graph: line %d: bad probability: %w", lineNo, err)
			}
		}
		du, dv := intern(u), intern(v)
		if opts.Undirected {
			b.AddUndirected(du, dv, p)
		} else {
			b.AddEdge(du, dv, p)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	b.EnsureVertices(len(origID))
	return b.Build(), origID, nil
}

// ReadEdgeListFile opens path and parses it with ReadEdgeList.
func ReadEdgeListFile(path string, opts ReadOptions) (*Graph, []int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadEdgeList(f, opts)
}

// WriteEdgeList writes the graph as a three-column edge list with a header
// comment. Reading the output back with directed options reproduces the
// graph exactly (up to float formatting).
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# directed edge list: %d vertices, %d edges\n", g.N(), g.M()); err != nil {
		return err
	}
	for u := V(0); int(u) < g.n; u++ {
		to := g.OutNeighbors(u)
		ps := g.OutProbs(u)
		for i, v := range to {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", u, v, ps[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteEdgeListFile writes the graph to path, creating or truncating it.
func (g *Graph) WriteEdgeListFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteEdgeList(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// Stats summarizes a graph the way the paper's Table IV does.
type Stats struct {
	N         int     // vertices
	M         int     // directed edges
	AvgDegree float64 // average of in+out degree
	MaxDegree int     // maximum of in+out degree
	MaxOutDeg int
	MaxInDeg  int
	Isolated  int // vertices with no incident edge
	ProbMin   float64
	ProbMax   float64
	DegreeP90 int // 90th percentile of total degree
	DegreeMed int // median total degree
}

// ComputeStats scans the graph once and fills a Stats.
func (g *Graph) ComputeStats() Stats {
	st := Stats{N: g.N(), M: g.M(), ProbMin: 1, ProbMax: 0}
	if g.M() == 0 {
		st.ProbMin = 0
	}
	total := make([]int, g.n)
	for v := V(0); int(v) < g.n; v++ {
		din, dout := g.InDegree(v), g.OutDegree(v)
		total[v] = din + dout
		if total[v] == 0 {
			st.Isolated++
		}
		if din > st.MaxInDeg {
			st.MaxInDeg = din
		}
		if dout > st.MaxOutDeg {
			st.MaxOutDeg = dout
		}
		if total[v] > st.MaxDegree {
			st.MaxDegree = total[v]
		}
	}
	for _, p := range g.outP {
		if p < st.ProbMin {
			st.ProbMin = p
		}
		if p > st.ProbMax {
			st.ProbMax = p
		}
	}
	if g.n > 0 {
		st.AvgDegree = float64(2*g.M()) / float64(g.n)
		sort.Ints(total)
		st.DegreeMed = total[g.n/2]
		st.DegreeP90 = total[(g.n*9)/10]
	}
	return st
}
