package service

import (
	"context"
	"testing"

	"github.com/imin-dev/imin/internal/core"
	"github.com/imin-dev/imin/internal/datasets"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// The session-cache claim, measured: on a ~100k-edge graph, a cold solve
// pays graph unification (UnifySeeds copies all m edges for a multi-seed
// instance), sampler construction and estimator scratch allocation on
// every call, while a warm session pays them once. Run with
//
//	go test ./internal/service -bench=BenchmarkSolve -benchmem
//
// and compare the Cold and Warm variants.

const (
	benchN     = 20_000 // preferential attachment with ~5 edges/vertex → ~100k edges
	benchEPV   = 5
	benchTheta = 64
	benchB     = 4
)

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g := datasets.PreferentialAttachment(benchN, benchEPV, true, rng.New(1))
	return graph.Trivalency.Assign(g, rng.New(2))
}

func benchSeeds(b *testing.B, g *graph.Graph) []graph.V {
	b.Helper()
	seeds, err := datasets.RandomSeeds(g, 10, true, rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	return seeds
}

func BenchmarkSolveColdSession(b *testing.B) {
	g := benchGraph(b)
	seeds := benchSeeds(b, g)
	opt := core.Options{Theta: benchTheta, Seed: 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(g, seeds, benchB, core.AdvancedGreedy, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveWarmSession(b *testing.B) {
	g := benchGraph(b)
	seeds := benchSeeds(b, g)
	opt := core.Options{Theta: benchTheta, Seed: 7}
	sess := core.NewSession(g, core.DiffusionIC, core.DomLengauerTarjan, 0)
	// Prime the session so every timed iteration is warm.
	if _, err := sess.Solve(context.Background(), seeds, benchB, core.AdvancedGreedy, opt); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Solve(context.Background(), seeds, benchB, core.AdvancedGreedy, opt); err != nil {
			b.Fatal(err)
		}
	}
}
