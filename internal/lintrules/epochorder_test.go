package lintrules_test

import (
	"testing"

	"github.com/imin-dev/imin/internal/lintkit/linttest"
	"github.com/imin-dev/imin/internal/lintrules"
)

func TestEpochOrderPositive(t *testing.T) {
	linttest.Run(t, "testdata/epochorder/pos", lintrules.EpochOrder, dynPath)
}

func TestEpochOrderNegative(t *testing.T) {
	linttest.MustBeCleanDir(t, "testdata/epochorder/neg", lintrules.EpochOrder, dynPath)
}
