package store

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"
)

// TestRequestIDContext checks the context plumbing: WithRequestID stores,
// RequestID reads, logArgs tags — and all of them tolerate absent ids.
func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if id := RequestID(ctx); id != "" {
		t.Fatalf("RequestID on empty ctx = %q", id)
	}
	if got := WithRequestID(ctx, ""); got != ctx {
		t.Fatal("WithRequestID with empty id should return ctx unchanged")
	}
	ctx = WithRequestID(ctx, "req-42")
	if id := RequestID(ctx); id != "req-42" {
		t.Fatalf("RequestID = %q, want req-42", id)
	}

	args := logArgs(ctx, "graph", "g1", "epoch", 7)
	if len(args) != 6 || args[4] != "request_id" || args[5] != "req-42" {
		t.Fatalf("logArgs = %v", args)
	}
	bare := logArgs(context.Background(), "graph", "g1")
	if len(bare) != 2 {
		t.Fatalf("logArgs without id = %v", bare)
	}
}

// TestCheckpointLogsRequestID drives a real checkpoint through a store
// whose logger writes to a buffer and checks the completion line carries
// the request id from the context — the WAL/checkpoint observability
// contract the service layer relies on.
func TestCheckpointLogsRequestID(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))

	st, err := Open(t.TempDir(), Config{Fsync: FsyncNone, Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	g := testGraph(50, 200, 1)
	gs, err := st.Create("g1", g, 0, "test", "TR")
	if err != nil {
		t.Fatal(err)
	}

	ctx := WithRequestID(context.Background(), "req-ckpt-1")
	gen, err := gs.BeginCheckpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := gs.CompleteCheckpoint(ctx, gen, g, 0); err != nil {
		t.Fatal(err)
	}

	out := buf.String()
	if !strings.Contains(out, "checkpoint complete") {
		t.Fatalf("no checkpoint completion line logged:\n%s", out)
	}
	if !strings.Contains(out, "request_id=req-ckpt-1") {
		t.Fatalf("checkpoint line missing request id:\n%s", out)
	}
}
