// Command gengraph generates the synthetic evaluation datasets and writes
// them as edge-list files, or prints their statistics next to the published
// Table IV numbers.
//
// Examples:
//
//	gengraph -stats -scale 0.02                    # statistics check
//	gengraph -dataset DBLP -scale 0.05 -out d.txt  # write one dataset
//	gengraph -all -scale 0.01 -dir ./data          # write all eight
//	gengraph -skew 50000 -out skew.txt             # heavy-tailed sample sizes
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	imin "github.com/imin-dev/imin"
	"github.com/imin-dev/imin/internal/datasets"
	"github.com/imin-dev/imin/internal/rng"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "dataset to generate (one of "+strings.Join(imin.DatasetNames(), ", ")+")")
		all     = flag.Bool("all", false, "generate all eight datasets")
		stats   = flag.Bool("stats", false, "print statistics vs the paper's Table IV instead of writing files")
		deep    = flag.Bool("deep", false, "with -stats: add connectivity and degree-tail analysis per dataset")
		scale   = flag.Float64("scale", 0.02, "fraction of the published dataset size")
		seed    = flag.Uint64("rng", 1, "random seed")
		out     = flag.String("out", "", "output file for -dataset")
		dir     = flag.String("dir", ".", "output directory for -all")
		format  = flag.String("format", "text", "output format: text (edge list) or binary (fast loading)")

		skew       = flag.Int("skew", 0, "generate a graph with this many vertices whose live-edge sample sizes are heavy-tailed (exercises estimator work stealing); overrides -dataset/-all")
		skewChains = flag.Int("skew-chains", 16, "with -skew: number of high-probability cascade chains behind the gateway vertex")
	)
	flag.Parse()

	write := func(g *imin.Graph, path string) error {
		switch *format {
		case "text":
			return g.WriteEdgeListFile(path)
		case "binary":
			return g.WriteBinaryFile(path)
		default:
			return fmt.Errorf("unknown format %q (want text or binary)", *format)
		}
	}
	ext := ".txt"
	if *format == "binary" {
		ext = ".bin"
	}

	switch {
	case *skew > 0:
		g := datasets.SkewedCascade(*skew, *skewChains, 0.25, 0.05, rng.New(*seed))
		path := *out
		if path == "" {
			path = "skew" + ext
		}
		if err := write(g, path); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d vertices, %d edges (skewed cascade, %d chains; sample from vertex 0)\n",
			path, g.N(), g.M(), *skewChains)
	case *stats:
		fmt.Print(datasets.TableIV(*scale, *seed))
		if *deep {
			fmt.Println("\nConnectivity and degree tail:")
			fmt.Println("Dataset          WCCs   largest%    SCCs    alpha(d>=10)")
			for _, name := range imin.DatasetNames() {
				g, err := imin.GenerateDataset(name, *scale, *seed)
				if err != nil {
					fatal(err)
				}
				c := imin.AnalyzeComponents(g)
				fmt.Printf("%-12s %8d %9.1f%% %7d %11.2f\n",
					name, c.WeakCount, 100*c.LargestWeakFraction, c.StrongCount, imin.PowerLawAlpha(g, 10))
			}
		}
	case *all:
		for _, name := range imin.DatasetNames() {
			g, err := imin.GenerateDataset(name, *scale, *seed)
			if err != nil {
				fatal(err)
			}
			path := filepath.Join(*dir, strings.ToLower(name)+ext)
			if err := write(g, path); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s: %d vertices, %d edges\n", path, g.N(), g.M())
		}
	case *dataset != "":
		g, err := imin.GenerateDataset(*dataset, *scale, *seed)
		if err != nil {
			fatal(err)
		}
		path := *out
		if path == "" {
			path = strings.ToLower(*dataset) + ext
		}
		if err := write(g, path); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d vertices, %d edges\n", path, g.N(), g.M())
	default:
		fmt.Fprintln(os.Stderr, "gengraph: need -stats, -all or -dataset NAME")
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gengraph:", err)
	os.Exit(1)
}
