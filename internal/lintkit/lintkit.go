// Package lintkit is a small, dependency-free analysis framework in the
// shape of golang.org/x/tools/go/analysis, built on the standard library's
// go/ast, go/types and go/importer. The project's custom linters
// (internal/lintrules, driven by cmd/iminlint) are written against it.
//
// Why not x/tools itself: the build environment this repository targets is
// fully offline with an empty module cache, so the module cannot depend on
// anything outside the standard library. The subset reimplemented here —
// Analyzer, Pass, Reportf, a package loader, and an analysistest-style
// fixture runner (lintkit/linttest) — is exactly what five project-specific
// passes need; if x/tools ever becomes available, the analyzers port by
// changing imports (the Pass surface is kept intentionally identical).
//
// Suppressions: a diagnostic is suppressed by a comment of the form
//
//	//lint:ignore <analyzer>[,<analyzer>...] <justification>
//
// placed either on the flagged line or on the line directly above it. The
// justification is mandatory — a bare ignore is itself reported as a
// malformed suppression — so every silenced finding documents why the
// invariant does not apply (see docs/INVARIANTS.md).
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore comments. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description shown by `iminlint -list`.
	Doc string
	// Run applies the pass to one package and reports findings through
	// pass.Reportf. A returned error aborts the whole lint run (reserved
	// for internal failures, not findings).
	Run func(*Pass) error
}

// A Pass is one analyzer applied to one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	// Fset maps token.Pos to file positions, shared by every package of
	// one load so cross-package positions never clash.
	Fset *token.FileSet
	// Files are the package's parsed source files, with comments.
	Files []*ast.File
	// Pkg is the type-checked package and PkgPath its import path. For
	// fixture runs (linttest) PkgPath is whatever path the test assigns,
	// which is how path-scoped analyzers are exercised.
	Pkg     *types.Package
	PkgPath string
	// TypesInfo holds the type-checker's observations for the files.
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Suppressed marks a diagnostic matched by a //lint:ignore comment;
	// the driver keeps it (for -show-suppressed) but it does not fail
	// the run.
	Suppressed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// suppression is one parsed //lint:ignore comment.
type suppression struct {
	file      string
	line      int
	analyzers []string // nil after a parse error
	justified bool
	used      bool
}

func (s *suppression) matches(d *Diagnostic) bool {
	if d.Pos.Filename != s.file || !s.justified {
		return false
	}
	// The comment governs its own line and the line below, covering both
	// `stmt //lint:ignore ...` and a comment line above the statement.
	if d.Pos.Line != s.line && d.Pos.Line != s.line+1 {
		return false
	}
	for _, a := range s.analyzers {
		if a == d.Analyzer || a == "*" {
			return true
		}
	}
	return false
}

const ignorePrefix = "//lint:ignore"

// collectSuppressions parses every //lint:ignore comment of the files.
// Malformed comments (no analyzer list or no justification) come back as
// diagnostics so they fail the run instead of silently ignoring nothing.
func collectSuppressions(fset *token.FileSet, files []*ast.File) ([]*suppression, []Diagnostic) {
	var sups []*suppression
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed suppression: want //lint:ignore <analyzer>[,<analyzer>] <justification>",
					})
					continue
				}
				sups = append(sups, &suppression{
					file:      pos.Filename,
					line:      pos.Line,
					analyzers: strings.Split(fields[0], ","),
					justified: true,
				})
			}
		}
	}
	return sups, bad
}

// Run applies every analyzer to every package and returns all diagnostics,
// sorted by position. Diagnostics matched by a //lint:ignore comment are
// marked Suppressed rather than dropped; unused suppressions are themselves
// reported, so stale ignores cannot rot in place.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		sups, bad := collectSuppressions(pkg.Fset, pkg.Files)
		all = append(all, bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				PkgPath:   pkg.PkgPath,
				TypesInfo: pkg.TypesInfo,
			}
			pass.report = func(d Diagnostic) {
				for _, s := range sups {
					if s.matches(&d) {
						d.Suppressed = true
						s.used = true
						break
					}
				}
				all = append(all, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.PkgPath, a.Name, err)
			}
		}
		for _, s := range sups {
			if !s.used {
				all = append(all, Diagnostic{
					Analyzer: "lint",
					Pos:      token.Position{Filename: s.file, Line: s.line, Column: 1},
					Message:  fmt.Sprintf("unused suppression for %s: no diagnostic on this or the next line", strings.Join(s.analyzers, ",")),
				})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return all, nil
}
