package service

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/imin-dev/imin/internal/store"
)

// ctxKeyRequestID carries the request ID through handler contexts.
type ctxKeyRequestID struct{}

// reqIDPrefix is a per-process random prefix for generated request IDs, so
// IDs stay unique across restarts without consulting the clock (the detrand
// rule bans time-as-entropy in this package; crypto/rand is fine).
var reqIDPrefix = func() string {
	var b [6]byte
	if _, err := crand.Read(b[:]); err != nil {
		return "imind0"
	}
	return hex.EncodeToString(b[:])
}()

var reqIDCounter atomic.Uint64

// maxRequestIDLen caps accepted client IDs: they are echoed into logs and
// response headers, so an unbounded one is a log-injection lever.
const maxRequestIDLen = 64

// RequestID returns the request ID the middleware assigned to ctx, or ""
// outside a request.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID{}).(string)
	return id
}

// ensureRequestID returns the client's X-Request-Id when present and sane,
// otherwise a generated "<process-prefix>-<seq>" ID. The bool reports
// whether the ID was generated.
func (s *Server) ensureRequestID(r *http.Request) (string, bool) {
	if id := r.Header.Get("X-Request-Id"); id != "" && len(id) <= maxRequestIDLen && printable(id) {
		return id, false
	}
	return fmt.Sprintf("%s-%06d", reqIDPrefix, reqIDCounter.Add(1)), true
}

func printable(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < 0x20 || s[i] == 0x7f {
			return false
		}
	}
	return true
}

// statusWriter captures the response code for logs and metrics. It forwards
// Flush so the NDJSON streaming endpoints keep flushing per line.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withObs is the outermost middleware: it assigns the request ID, echoes it
// in the X-Request-Id response header, recovers handler panics into 500s,
// and emits one structured log line plus the HTTP metrics per request.
// http.ErrAbortHandler is re-raised — it is the sanctioned way to abort a
// response mid-stream and net/http handles it quietly.
func (s *Server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id, generated := s.ensureRequestID(r)
		if generated {
			s.metrics.requestIDs.Inc()
		}
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w}
		// The store has its own context key so it can tag WAL/checkpoint
		// log lines without importing the service package.
		ctx := context.WithValue(r.Context(), ctxKeyRequestID{}, id)
		r = r.WithContext(store.WithRequestID(ctx, id))

		defer func() {
			rec := recover()
			if rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				s.metrics.panics.Inc()
				s.logger.Error("panic serving request",
					"request_id", id,
					"method", r.Method,
					"path", r.URL.Path,
					"panic", fmt.Sprint(rec),
					"stack", string(debug.Stack()))
				// If the handler already started the response this only
				// logs; the client sees a truncated body, which is all that
				// is left.
				writeJSON(sw, http.StatusInternalServerError, ErrorResponse{
					Error:     fmt.Sprintf("internal server error serving %s %s", r.Method, r.URL.Path),
					RequestID: id,
				})
			}
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			route := r.Pattern
			if route == "" {
				route = "unmatched"
			}
			elapsed := time.Since(start)
			s.metrics.httpRequests.With(route, r.Method, strconv.Itoa(status)).Inc()
			s.metrics.httpSeconds.With(route).Observe(elapsed.Seconds())
			s.logger.LogAttrs(r.Context(), requestLogLevel(status), "request",
				slog.String("request_id", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", status),
				slog.Duration("duration", elapsed))
		}()
		next.ServeHTTP(sw, r)
	})
}

// requestLogLevel grades the access-log line: server faults are errors,
// client faults warnings, everything else debug (so high-QPS serving does
// not drown operational lines at the default Info level).
func requestLogLevel(status int) slog.Level {
	switch {
	case status >= 500:
		return slog.LevelError
	case status >= 400:
		return slog.LevelWarn
	default:
		return slog.LevelDebug
	}
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.reg.Handler().ServeHTTP(w, r)
}

// handleTraces serves the bounded in-memory ring of recent solve traces,
// newest first. Two query filters narrow the view: ?min_duration_ms= keeps
// only traces whose root span took at least that long, and ?route= keeps
// only traces for one operation (e.g. solve).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if !s.traces.Enabled() {
		writeErr(w, http.StatusNotFound, "tracing disabled: start the server with a positive trace ring capacity")
		return
	}
	var minDur time.Duration
	if raw := r.URL.Query().Get("min_duration_ms"); raw != "" {
		ms, err := strconv.ParseFloat(raw, 64)
		if err != nil || ms < 0 {
			writeErr(w, http.StatusBadRequest, "invalid min_duration_ms %q: want a non-negative number", raw)
			return
		}
		minDur = time.Duration(ms * float64(time.Millisecond))
	}
	route := r.URL.Query().Get("route")

	traces := s.traces.Snapshot()
	if minDur > 0 || route != "" {
		kept := traces[:0]
		for _, t := range traces {
			if route != "" && t.Op != route {
				continue
			}
			if minDur > 0 && (t.Root == nil || time.Duration(t.Root.DurationUS)*time.Microsecond < minDur) {
				continue
			}
			kept = append(kept, t)
		}
		traces = kept
	}
	writeJSON(w, http.StatusOK, TracesResponse{Traces: traces})
}
