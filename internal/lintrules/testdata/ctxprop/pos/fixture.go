// Positive ctxprop fixture: an exported entry point takes a context and
// then runs a working loop that never consults it.
package fixture

import "context"

func work(i int) int { return i * i }

func Solve(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ { // want "never consults it"
		total += work(i)
	}
	return total
}
