package lintrules

import (
	"go/ast"
	"strings"

	"github.com/imin-dev/imin/internal/lintkit"
)

// SinkPackages are the durability-critical packages: the WAL/snapshot
// store, the graph binary/manifest helpers, the serving layer's
// write-through hooks, and the command binaries that wire them together.
var SinkPackages = []string{"internal/store", "internal/graph", "internal/service", "cmd"}

// ErrSink is an errcheck-style pass specialized to durability call sites.
// In SinkPackages it flags discarded error results from the calls whose
// failure means data loss:
//
//   - must-check calls (Append, Sync, Rename, Truncate, Flush, snapshot and
//     manifest writers, Checkpoint, Replay): the error may not be dropped at
//     all — not as a bare statement, not deferred, and not assigned to
//     blank. An acknowledged batch that failed to reach the WAL is exactly
//     the bug class PR 5 exists to prevent.
//   - cleanup calls (Close on files this function opened for writing or on
//     package-local log/store types, os.Remove, os.RemoveAll): a bare or
//     deferred discard is flagged; assigning to blank (`_ = f.Close()`) is
//     accepted as a deliberate, visible decision on error-cleanup paths.
//
// Close on read-only files (os.Open) is not flagged: it cannot lose writes.
var ErrSink = &lintkit.Analyzer{
	Name: "errsink",
	Doc:  "flags unchecked errors from WAL/durability call sites (Append, Sync, Rename, manifest and snapshot writes, writable Close)",
	Run:  runErrSink,
}

// mustCheck calls may never have their error discarded, even explicitly.
var mustCheck = map[string]bool{
	"Append": true, "Sync": true, "Rename": true, "Truncate": true,
	"Flush": true, "WriteBinary": true, "WriteBinaryFile": true,
	"WriteManifestFile": true, "WriteEdgeListFile": true, "SyncDir": true,
	"WriteManifestFS": true, "SyncDirFS": true,
	"Checkpoint": true, "SyncAndCheckpoint": true, "SyncAndCheckpointAll": true,
	"Replay": true,
	// Unexported spellings used inside internal/store.
	"append": true, "syncIfDirty": true, "syncWAL": true,
}

// cleanup calls accept an explicit blank assignment but not a silent drop.
var cleanup = map[string]bool{
	"Close": true, "close": true, "Remove": true, "RemoveAll": true,
}

func runErrSink(pass *lintkit.Pass) error {
	if !scopedTo(pass.PkgPath, SinkPackages) {
		return nil
	}
	eachFuncBody(pass.Files, func(decl *ast.FuncDecl) {
		writable := writableFiles(pass, decl)
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscarded(pass, call, writable, "discarded")
				}
			case *ast.DeferStmt:
				checkDiscarded(pass, n.Call, writable, "discarded by defer")
			case *ast.GoStmt:
				checkDiscarded(pass, n.Call, writable, "discarded by go")
			case *ast.AssignStmt:
				checkBlankAssign(pass, n)
			}
			return true
		})
	})
	return nil
}

// checkDiscarded handles a call whose results are entirely dropped.
func checkDiscarded(pass *lintkit.Pass, call *ast.CallExpr, writable map[string]bool, how string) {
	if _, ok := errorResult(pass.TypesInfo, call); !ok {
		return
	}
	_, name, recv := calleeName(pass.TypesInfo, call)
	switch {
	case mustCheck[name]:
		pass.Reportf(call.Pos(), "error from %s %s: a failed durability write must be handled, not dropped", callLabel(name, recv), how)
	case cleanup[name] && cleanupApplies(pass, call, name, recv, writable):
		pass.Reportf(call.Pos(), "error from %s %s: check it, or discard explicitly with `_ = ...` on a cleanup path", callLabel(name, recv), how)
	}
}

// checkBlankAssign flags `_ = mustCheckCall(...)` and `x, _ := call(...)`
// where the blank swallows a must-check error.
func checkBlankAssign(pass *lintkit.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	idx, ok := errorResult(pass.TypesInfo, call)
	if !ok || idx >= len(as.Lhs) {
		return
	}
	if id := identOf(as.Lhs[idx]); id == nil || id.Name != "_" {
		return
	}
	_, name, recv := calleeName(pass.TypesInfo, call)
	if mustCheck[name] {
		pass.Reportf(as.Pos(), "error from %s assigned to blank: a failed durability write must be handled, not dropped", callLabel(name, recv))
	}
}

// cleanupApplies scopes the cleanup rule: os.Remove/RemoveAll always;
// Close only when it can plausibly lose buffered writes — the receiver is
// an *os.File this function opened writable, or a type declared in the
// package under analysis (the WAL, the graph store, ...).
func cleanupApplies(pass *lintkit.Pass, call *ast.CallExpr, name, recv string, writable map[string]bool) bool {
	if name == "Remove" || name == "RemoveAll" {
		pkg, _, r := calleeName(pass.TypesInfo, call)
		return (pkg == "os" && r == "") || strings.HasSuffix(pkg, "internal/faultfs")
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	if typeIs(tv.Type, "os", "File") || faultfsType(tv.Type) {
		id := identOf(sel.X)
		return id != nil && writable[id.Name]
	}
	// Package-local receiver types own durable state by construction here.
	if named := namedTypeName(tv.Type); named != "" && recv == named {
		obj := pass.Pkg.Scope().Lookup(named)
		return obj != nil
	}
	return false
}

// writableFiles collects the names of *os.File variables the function
// obtained from os.Create or os.OpenFile — files whose Close can report
// lost writes.
func writableFiles(pass *lintkit.Pass, decl *ast.FuncDecl) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) == 0 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name, _ := calleeName(pass.TypesInfo, call)
		if pkg != "os" && !strings.HasSuffix(pkg, "internal/faultfs") {
			return true
		}
		if name != "Create" && name != "OpenFile" && name != "CreateTemp" {
			return true
		}
		if id := identOf(as.Lhs[0]); id != nil {
			out[id.Name] = true
		}
		return true
	})
	return out
}

func callLabel(name, recv string) string {
	if recv != "" {
		return "(*" + recv + ")." + name
	}
	return name
}
