package dynamic

import (
	"reflect"
	"testing"

	"github.com/imin-dev/imin/internal/graph"
)

func TestBatchCodecRoundTrip(t *testing.T) {
	batches := [][]Mutation{
		{{Op: OpAddVertex}},
		{{Op: OpAddEdge, U: 0, V: 1, P: 0.5}},
		{{Op: OpSetProb, U: 1<<20 + 3, V: 7, P: 1}},
		{{Op: OpRemoveEdge, U: 3, V: 4}},
		{{Op: OpRemoveVertex, U: 9}},
		{
			{Op: OpAddVertex},
			{Op: OpAddEdge, U: 0, V: 128, P: 0.25},
			{Op: OpSetProb, U: 0, V: 128, P: 0},
			{Op: OpRemoveEdge, U: 0, V: 128},
			{Op: OpRemoveVertex, U: 128},
		},
	}
	for i, muts := range batches {
		enc, err := EncodeBatch(nil, muts)
		if err != nil {
			t.Fatalf("batch %d: encode: %v", i, err)
		}
		dec, err := DecodeBatch(enc)
		if err != nil {
			t.Fatalf("batch %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(dec, muts) {
			t.Errorf("batch %d: round trip %v != %v", i, dec, muts)
		}
	}
	// The empty batch round-trips too (the store rejects it, the codec
	// need not).
	enc, err := EncodeBatch(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dec, err := DecodeBatch(enc); err != nil || len(dec) != 0 {
		t.Errorf("empty batch: %v, %v", dec, err)
	}
}

func TestBatchCodecRejectsBadInput(t *testing.T) {
	good, err := EncodeBatch(nil, []Mutation{
		{Op: OpAddEdge, U: 5, V: 6, P: 0.75},
		{Op: OpRemoveVertex, U: 2},
	})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := DecodeBatch(nil); err == nil {
		t.Error("empty payload accepted")
	}
	for cut := 1; cut < len(good); cut++ {
		if _, err := DecodeBatch(good[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeBatch(append(append([]byte(nil), good...), 0x07)); err == nil {
		t.Error("trailing byte accepted")
	}
	// A count far beyond the payload must be rejected before allocation.
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}
	if _, err := DecodeBatch(huge); err == nil {
		t.Error("oversized count accepted")
	}
	// Unknown op code.
	bad := append([]byte(nil), good...)
	bad[1] = 99
	if _, err := DecodeBatch(bad); err == nil {
		t.Error("unknown op code accepted")
	}
	// Encoding rejects what Commit would reject.
	if _, err := EncodeBatch(nil, []Mutation{{Op: Op("frobnicate")}}); err == nil {
		t.Error("unknown op encoded")
	}
	if _, err := EncodeBatch(nil, []Mutation{{Op: OpRemoveVertex, U: -1}}); err == nil {
		t.Error("negative vertex id encoded")
	}
}

func TestNewAtEpochAndReplay(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(1, 2, 0.5)
	g := b.Build()

	d := NewAtEpoch(g, Config{}, 10)
	if d.Epoch() != 10 {
		t.Fatalf("epoch = %d, want 10", d.Epoch())
	}
	// Replay must demand exact continuity.
	muts := []Mutation{{Op: OpAddEdge, U: 2, V: 3, P: 0.9}}
	if _, err := d.Replay(muts, 10); err == nil {
		t.Error("replay at the current epoch accepted")
	}
	if _, err := d.Replay(muts, 12); err == nil {
		t.Error("replay with an epoch gap accepted")
	}
	if _, err := d.Replay(nil, 11); err == nil {
		t.Error("replay of an empty batch accepted")
	}
	info, err := d.Replay(muts, 11)
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 11 || d.Epoch() != 11 || d.M() != 3 {
		t.Fatalf("after replay: info=%+v epoch=%d m=%d", info, d.Epoch(), d.M())
	}
	// The changelog floor starts at the initial epoch: a session at epoch
	// 10 can repair incrementally, one before it cannot.
	if _, _, ok := d.ChangedSince(10); !ok {
		t.Error("ChangedSince(10) should reach the changelog")
	}
	if _, _, ok := d.ChangedSince(9); ok {
		t.Error("ChangedSince(9) reaches past the recovery floor")
	}

	// A recovered graph replaying the same batches as a live one must be
	// bit-identical snapshot-for-snapshot.
	live := New(g, Config{})
	if _, err := live.Commit(muts); err != nil {
		t.Fatal(err)
	}
	sLive, _ := live.Snapshot()
	sRec, _ := d.Snapshot()
	if sLive.M() != sRec.M() || !reflect.DeepEqual(sLive.Edges(), sRec.Edges()) {
		t.Error("recovered snapshot diverges from live snapshot")
	}
}
