package lintkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load resolves patterns with the go command (run in dir, typically the
// module root), parses every matched package, and type-checks it. Imports
// of sibling module packages are type-checked from source recursively and
// shared; standard-library imports go through go/importer's source
// importer, so the whole load works offline against GOROOT alone. Test
// files are not loaded: the linters guard production invariants, and
// analyzing tests would mostly flag deliberate fault injection.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	// A second listing of the whole module is the import-resolution
	// universe: a target package may import module packages the patterns
	// did not match.
	universe, err := goList(dir, []string{"./..."})
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	ld := &moduleLoader{
		fset:     fset,
		src:      importer.ForCompiler(fset, "source", nil),
		universe: make(map[string]*listedPkg, len(universe)),
		checked:  make(map[string]*Package),
		checking: make(map[string]bool),
		sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	for _, p := range universe {
		ld.universe[p.ImportPath] = p
	}

	out := make([]*Package, 0, len(targets))
	for _, t := range targets {
		if t.Name == "" && t.Error != nil {
			return nil, fmt.Errorf("lintkit: loading %s: %s", t.ImportPath, t.Error.Err)
		}
		pkg, err := ld.check(t)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// goList shells out to `go list -json` and decodes the object stream.
func goList(dir string, patterns []string) ([]*listedPkg, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,Name,GoFiles,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lintkit: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(stdout))
	var pkgs []*listedPkg
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lintkit: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// moduleLoader type-checks module packages on demand, memoized, and is
// itself the types.Importer handed to the checker so module-internal
// imports resolve to the same *types.Package instances everywhere.
type moduleLoader struct {
	fset     *token.FileSet
	src      types.Importer
	universe map[string]*listedPkg
	checked  map[string]*Package
	checking map[string]bool
	sizes    types.Sizes
}

// Import implements types.Importer.
func (ld *moduleLoader) Import(path string) (*types.Package, error) {
	if pkg, ok := ld.checked[path]; ok {
		return pkg.Types, nil
	}
	if info, ok := ld.universe[path]; ok {
		pkg, err := ld.check(info)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	// Not a module package: the standard library, from GOROOT source.
	return ld.src.Import(path)
}

func (ld *moduleLoader) check(info *listedPkg) (*Package, error) {
	if pkg, ok := ld.checked[info.ImportPath]; ok {
		return pkg, nil
	}
	if ld.checking[info.ImportPath] {
		return nil, fmt.Errorf("lintkit: import cycle through %s", info.ImportPath)
	}
	ld.checking[info.ImportPath] = true
	defer delete(ld.checking, info.ImportPath)

	files := make([]*ast.File, 0, len(info.GoFiles))
	for _, name := range info.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(info.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lintkit: %v", err)
		}
		files = append(files, f)
	}
	tinfo := NewTypesInfo()
	conf := types.Config{Importer: ld, Sizes: ld.sizes}
	tpkg, err := conf.Check(info.ImportPath, ld.fset, files, tinfo)
	if err != nil {
		return nil, fmt.Errorf("lintkit: type-checking %s: %v", info.ImportPath, err)
	}
	pkg := &Package{
		PkgPath:   info.ImportPath,
		Dir:       info.Dir,
		Fset:      ld.fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: tinfo,
	}
	ld.checked[info.ImportPath] = pkg
	return pkg, nil
}

// NewTypesInfo allocates a types.Info with every map analyzers consult.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
