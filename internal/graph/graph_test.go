package graph

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/imin-dev/imin/internal/rng"
)

// toy builds the paper's Figure 1 graph. Vertices are v1..v9 mapped to ids
// 0..8; the seed is v1 (id 0). Probabilities follow Examples 1-2:
// p(v5,v8)=0.5, p(v9,v8)=0.2, p(v8,v7)=0.1, all other edges 1.
func toy() *Graph {
	const (
		v1 = iota
		v2
		v3
		v4
		v5
		v6
		v7
		v8
		v9
	)
	return FromEdges(9, []Edge{
		{v1, v2, 1}, {v1, v4, 1},
		{v2, v5, 1}, {v4, v5, 1},
		{v5, v3, 1}, {v5, v6, 1}, {v5, v9, 1},
		{v5, v8, 0.5}, {v9, v8, 0.2},
		{v8, v7, 0.1},
	})
}

func TestBuilderBasics(t *testing.T) {
	g := toy()
	if g.N() != 9 {
		t.Fatalf("N = %d, want 9", g.N())
	}
	if g.M() != 10 {
		t.Fatalf("M = %d, want 10", g.M())
	}
	if d := g.OutDegree(4); d != 4 {
		t.Errorf("outdeg(v5) = %d, want 4", d)
	}
	if d := g.InDegree(7); d != 2 {
		t.Errorf("indeg(v8) = %d, want 2", d)
	}
	if p := g.Prob(4, 7); p != 0.5 {
		t.Errorf("p(v5,v8) = %v, want 0.5", p)
	}
	if p := g.Prob(8, 7); p != 0.2 {
		t.Errorf("p(v9,v8) = %v, want 0.2", p)
	}
	if g.HasEdge(0, 2) {
		t.Error("unexpected edge v1->v3")
	}
}

func TestBuilderIgnoresSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(1, 1, 0.5)
	b.AddEdge(0, 1, 0.5)
	g := b.Build()
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1 (self-loop dropped)", g.M())
	}
}

func TestBuilderMergesParallelEdges(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1, 0.5)
	b.AddEdge(0, 1, 0.5)
	g := b.Build()
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if p := g.Prob(0, 1); math.Abs(p-0.75) > 1e-12 {
		t.Fatalf("merged p = %v, want 0.75 = 1-(1-0.5)^2", p)
	}
}

func TestBuilderClampsProbabilities(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1, -0.3)
	b.AddEdge(0, 2, 1.7)
	g := b.Build()
	if p := g.Prob(0, 1); p != 0 {
		t.Errorf("clamped low p = %v, want 0", p)
	}
	if p := g.Prob(0, 2); p != 1 {
		t.Errorf("clamped high p = %v, want 1", p)
	}
}

func TestBuilderGrowsVertexCount(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(5, 9, 1)
	g := b.Build()
	if g.N() != 10 {
		t.Fatalf("N = %d, want 10", g.N())
	}
}

func TestAddUndirected(t *testing.T) {
	b := NewBuilder(2)
	b.AddUndirected(0, 1, 0.4)
	g := b.Build()
	if g.M() != 2 || g.Prob(0, 1) != 0.4 || g.Prob(1, 0) != 0.4 {
		t.Fatalf("undirected edge not mirrored: m=%d p01=%v p10=%v", g.M(), g.Prob(0, 1), g.Prob(1, 0))
	}
}

func TestInOutConsistency(t *testing.T) {
	g := toy()
	// Every out-edge must appear as an in-edge with the same probability.
	for u := V(0); int(u) < g.N(); u++ {
		to := g.OutNeighbors(u)
		ps := g.OutProbs(u)
		for i, v := range to {
			found := false
			in := g.InNeighbors(v)
			ips := g.InProbs(v)
			for j, w := range in {
				if w == u {
					found = true
					if ips[j] != ps[i] {
						t.Errorf("edge (%d,%d): out p %v != in p %v", u, v, ps[i], ips[j])
					}
				}
			}
			if !found {
				t.Errorf("edge (%d,%d) missing from in-adjacency", u, v)
			}
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := toy()
	cp := g.Clone()
	cp.outP[0] = 0.123
	if g.outP[0] == 0.123 {
		t.Fatal("Clone shares probability storage with original")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := toy()
	es := g.Edges()
	if len(es) != g.M() {
		t.Fatalf("Edges returned %d, want %d", len(es), g.M())
	}
	g2 := FromEdges(g.N(), es)
	if g2.M() != g.M() {
		t.Fatalf("rebuilt M = %d, want %d", g2.M(), g.M())
	}
	for _, e := range es {
		if p := g2.Prob(e.From, e.To); p != e.P {
			t.Errorf("edge (%d,%d): p %v != %v", e.From, e.To, p, e.P)
		}
	}
}

func TestReachable(t *testing.T) {
	g := toy()
	seen := g.Reachable(0)
	for v := 0; v < 9; v++ {
		if !seen[v] {
			t.Errorf("v%d not reachable from seed", v+1)
		}
	}
	// From v8 (id 7) only v8 and v7 (id 6) are reachable.
	seen = g.Reachable(7)
	wantCount := 0
	for v, ok := range seen {
		if ok {
			wantCount++
			if v != 7 && v != 6 {
				t.Errorf("unexpected vertex %d reachable from v8", v)
			}
		}
	}
	if wantCount != 2 {
		t.Errorf("reach(v8) = %d vertices, want 2", wantCount)
	}
}

func TestReachableCountBlocked(t *testing.T) {
	g := toy()
	blocked := make([]bool, 9)
	blocked[4] = true // block v5
	if c := g.ReachableCountBlocked(0, blocked); c != 3 {
		t.Fatalf("blocking v5: reach = %d, want 3 (v1,v2,v4)", c)
	}
	blocked[4] = false
	blocked[1], blocked[3] = true, true // block v2 and v4
	if c := g.ReachableCountBlocked(0, blocked); c != 1 {
		t.Fatalf("blocking v2,v4: reach = %d, want 1", c)
	}
	if c := g.ReachableCountBlocked(0, make([]bool, 9)); c != 9 {
		t.Fatalf("no blockers: reach = %d, want 9", c)
	}
	blockedSelf := make([]bool, 9)
	blockedSelf[0] = true
	if c := g.ReachableCountBlocked(0, blockedSelf); c != 0 {
		t.Fatalf("blocked source: reach = %d, want 0", c)
	}
}

func TestBFSOrder(t *testing.T) {
	g := toy()
	var order []V
	g.BFS(0, func(v V) { order = append(order, v) })
	if len(order) != 9 {
		t.Fatalf("BFS visited %d vertices, want 9", len(order))
	}
	if order[0] != 0 {
		t.Fatalf("BFS did not start at source")
	}
	pos := make(map[V]int)
	for i, v := range order {
		pos[v] = i
	}
	// v5 (id 4) must come after v2 (1) and v4 (3); v7 (6) last-ish after v8 (7).
	if pos[4] < pos[1] || pos[4] < pos[3] {
		t.Error("BFS order violates layering for v5")
	}
	if pos[6] < pos[7] {
		t.Error("BFS order violates layering for v7")
	}
}

func TestDFSPostorder(t *testing.T) {
	g := toy()
	var order []V
	g.DFSPostorder(0, func(v V) { order = append(order, v) })
	if len(order) != 9 {
		t.Fatalf("postorder visited %d, want 9", len(order))
	}
	if order[len(order)-1] != 0 {
		t.Fatal("source must be last in postorder")
	}
	pos := make(map[V]int)
	for i, v := range order {
		pos[v] = i
	}
	// A vertex appears after everything in its DFS subtree; v5 must come
	// after v3, v6, v9 (all reachable only through it... they are leaves
	// under v5 in any DFS).
	for _, leaf := range []V{2, 5} {
		if pos[leaf] > pos[4] {
			t.Errorf("leaf %d after its only parent v5 in postorder", leaf)
		}
	}
}

func TestIsDAG(t *testing.T) {
	if !toy().IsDAG() {
		t.Error("toy graph is a DAG but IsDAG says no")
	}
	b := NewBuilder(3)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 0, 1)
	if b.Build().IsDAG() {
		t.Error("3-cycle reported as DAG")
	}
}

func TestBlockSemantics(t *testing.T) {
	g := toy()
	blocked := g.BlockSet([]V{4}) // block v5
	if blocked.N() != g.N() {
		t.Fatalf("Block changed vertex count: %d", blocked.N())
	}
	if blocked.InDegree(4) != 0 || blocked.OutDegree(4) != 0 {
		t.Fatal("blocked vertex retains edges")
	}
	if c := blocked.ReachableCount(0); c != 3 {
		t.Fatalf("reach after blocking v5 = %d, want 3", c)
	}
	// Non-incident edges survive with probabilities intact.
	if p := blocked.Prob(0, 1); p != 1 {
		t.Fatalf("unrelated edge lost: p(v1,v2)=%v", p)
	}
}

func TestReverse(t *testing.T) {
	g := toy()
	r := g.Reverse()
	if r.M() != g.M() {
		t.Fatalf("reverse M = %d, want %d", r.M(), g.M())
	}
	for _, e := range g.Edges() {
		if p := r.Prob(e.To, e.From); p != e.P {
			t.Errorf("reverse missing edge (%d,%d) p=%v", e.To, e.From, e.P)
		}
	}
	if rr := r.Reverse(); rr.M() != g.M() {
		t.Fatal("double reverse loses edges")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := toy()
	// Keep v5, v9, v8, v7 (ids 4, 8, 7, 6).
	sub, old := g.InducedSubgraph([]V{4, 8, 7, 6})
	if sub.N() != 4 {
		t.Fatalf("sub N = %d, want 4", sub.N())
	}
	if len(old) != 4 || old[0] != 4 {
		t.Fatalf("id mapping wrong: %v", old)
	}
	// Edges inside the kept set: v5->v9, v5->v8, v9->v8, v8->v7.
	if sub.M() != 4 {
		t.Fatalf("sub M = %d, want 4", sub.M())
	}
	if p := sub.Prob(0, 1); p != 1 { // v5->v9
		t.Errorf("p(v5,v9) in sub = %v, want 1", p)
	}
	if p := sub.Prob(1, 2); p != 0.2 { // v9->v8
		t.Errorf("p(v9,v8) in sub = %v, want 0.2", p)
	}
}

func TestUnifySeedsSingle(t *testing.T) {
	g := toy()
	u, super := g.UnifySeeds([]V{0})
	if super != 9 || u.N() != 10 {
		t.Fatalf("super = %d, N = %d", super, u.N())
	}
	// s' inherits v1's out-edges with the same probabilities.
	if p := u.Prob(super, 1); p != 1 {
		t.Errorf("p(s',v2) = %v, want 1", p)
	}
	if p := u.Prob(super, 3); p != 1 {
		t.Errorf("p(s',v4) = %v, want 1", p)
	}
	// v1 is fully disconnected.
	if u.InDegree(0) != 0 || u.OutDegree(0) != 0 {
		t.Error("original seed keeps edges after unification")
	}
	// Non-seed edges are intact.
	if p := u.Prob(4, 7); p != 0.5 {
		t.Errorf("p(v5,v8) = %v, want 0.5", p)
	}
}

func TestUnifySeedsCombinesProbabilities(t *testing.T) {
	// Two seeds pointing at the same vertex: p = 1-(1-p1)(1-p2).
	g := FromEdges(3, []Edge{
		{0, 2, 0.5},
		{1, 2, 0.5},
	})
	u, super := g.UnifySeeds([]V{0, 1})
	if p := u.Prob(super, 2); math.Abs(p-0.75) > 1e-12 {
		t.Fatalf("combined seed prob = %v, want 0.75", p)
	}
	// Edges between seeds are dropped.
	g2 := FromEdges(3, []Edge{
		{0, 1, 1},
		{0, 2, 0.5},
	})
	u2, super2 := g2.UnifySeeds([]V{0, 1})
	if u2.HasEdge(super2, 1) {
		t.Fatal("edge into a seed survived unification")
	}
	if p := u2.Prob(super2, 2); p != 0.5 {
		t.Fatalf("p(s',2) = %v, want 0.5", p)
	}
}

func TestSpreadFromUnified(t *testing.T) {
	if got := SpreadFromUnified(1, 10); got != 10 {
		t.Fatalf("fully blocked unified spread of 1 with 10 seeds = %v, want 10", got)
	}
	if got := SpreadFromUnified(7.66, 1); math.Abs(got-7.66) > 1e-12 {
		t.Fatalf("single seed correction changed spread: %v", got)
	}
}

func TestTrivalencyAssignment(t *testing.T) {
	g := toy()
	r := rng.New(1)
	tr := Trivalency.Assign(g, r)
	if tr == g {
		t.Fatal("Assign returned the input graph")
	}
	valid := map[float64]bool{0.1: true, 0.01: true, 0.001: true}
	counts := map[float64]int{}
	for _, e := range tr.Edges() {
		if !valid[e.P] {
			t.Fatalf("TR edge probability %v not in {0.1,0.01,0.001}", e.P)
		}
		counts[e.P]++
		// in-view must agree with out-view
		if got := tr.Prob(e.From, e.To); got != e.P {
			t.Fatalf("TR views disagree on (%d,%d)", e.From, e.To)
		}
	}
	// Original untouched.
	if g.Prob(4, 7) != 0.5 {
		t.Fatal("Assign mutated the input graph")
	}
}

func TestTrivalencyUsesAllLevels(t *testing.T) {
	// On a larger graph all three levels should appear.
	b := NewBuilder(100)
	for i := 0; i < 99; i++ {
		b.AddEdge(V(i), V(i+1), 1)
		b.AddEdge(V(i), V((i+7)%100), 1)
	}
	tr := Trivalency.Assign(b.Build(), rng.New(2))
	counts := map[float64]int{}
	for _, e := range tr.Edges() {
		counts[e.P]++
	}
	for _, level := range []float64{0.1, 0.01, 0.001} {
		if counts[level] == 0 {
			t.Errorf("TR level %v never used across %d edges", level, tr.M())
		}
	}
}

func TestWeightedCascadeAssignment(t *testing.T) {
	g := toy()
	wc := WeightedCascade.Assign(g, nil)
	// v5 (id 4) has in-degree 2 (from v2 and v4) -> p = 0.5 on both.
	if p := wc.Prob(1, 4); p != 0.5 {
		t.Errorf("WC p(v2,v5) = %v, want 0.5", p)
	}
	if p := wc.Prob(3, 4); p != 0.5 {
		t.Errorf("WC p(v4,v5) = %v, want 0.5", p)
	}
	// v8 (id 7) has in-degree 2 -> 0.5; v7 (id 6) in-degree 1 -> 1.
	if p := wc.Prob(7, 6); p != 1 {
		t.Errorf("WC p(v8,v7) = %v, want 1", p)
	}
	// Sum of in-probabilities is 1 for every vertex with in-edges.
	for v := V(0); int(v) < wc.N(); v++ {
		if wc.InDegree(v) == 0 {
			continue
		}
		sum := 0.0
		for _, p := range wc.InProbs(v) {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("WC in-prob sum for %d = %v, want 1", v, sum)
		}
	}
}

func TestProbModelString(t *testing.T) {
	if Trivalency.String() != "TR" || WeightedCascade.String() != "WC" {
		t.Fatal("unexpected model names")
	}
}

func TestKeepProbs(t *testing.T) {
	g := toy()
	if KeepProbs.Assign(g, nil) != g {
		t.Fatal("KeepProbs should return the input unchanged")
	}
}

// Property: Block never increases reachability, and blocking more vertices
// never increases it further (monotonicity of the reachable set in B).
func TestBlockMonotonicityProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, extra uint8) bool {
		n := int(nRaw%20) + 2
		r := rng.New(seed)
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			b.AddEdge(V(r.Intn(n)), V(r.Intn(n)), r.Float64())
		}
		g := b.Build()
		src := V(r.Intn(n))
		base := g.ReachableCount(src)

		blocked := make([]bool, n)
		v1 := V(r.Intn(n))
		if v1 == src {
			v1 = V((int(v1) + 1) % n)
		}
		blocked[v1] = true
		c1 := g.ReachableCountBlocked(src, blocked)
		v2 := V(int(extra) % n)
		if v2 == src {
			v2 = V((int(v2) + 1) % n)
		}
		blocked[v2] = true
		c2 := g.ReachableCountBlocked(src, blocked)
		return c1 <= base && c2 <= c1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: reachability via Block (graph rebuild) matches
// ReachableCountBlocked (in-place filter).
func TestBlockEquivalenceProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%15) + 2
		r := rng.New(seed)
		b := NewBuilder(n)
		for i := 0; i < 2*n; i++ {
			b.AddEdge(V(r.Intn(n)), V(r.Intn(n)), 1)
		}
		g := b.Build()
		src := V(0)
		blocked := make([]bool, n)
		for v := 1; v < n; v++ {
			blocked[v] = r.Bernoulli(0.3)
		}
		want := g.ReachableCountBlocked(src, blocked)
		got := g.Block(blocked).ReachableCount(src)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
