package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // dropped
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter value = %v, want 3.5", got)
	}
	if got := c.Int(); got != 3 {
		t.Fatalf("counter int = %v, want 3", got)
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "help")
	g.Set(10)
	g.Add(-2.5)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7.5 {
		t.Fatalf("gauge value = %v, want 7.5", got)
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "help", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if math.Abs(h.Sum()-55.55) > 1e-9 {
		t.Fatalf("sum = %v, want 55.55", h.Sum())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`test_seconds_bucket{le="0.1"} 1`,
		`test_seconds_bucket{le="1"} 2`,
		`test_seconds_bucket{le="10"} 3`,
		`test_seconds_bucket{le="+Inf"} 4`,
		`test_seconds_count 4`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("req_total", "help", "method", "code")
	cv.With("GET", "200").Add(3)
	cv.With("POST", "500").Inc()
	if cv.With("GET", "200") != cv.With("GET", "200") {
		t.Fatal("With not cached")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`req_total{method="GET",code="200"} 3`,
		`req_total{method="POST",code="500"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestHistogramVecExposition(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("lat_seconds", "help", []float64{1}, "model")
	hv.With("ag").Observe(0.5)
	hv.With("ag").Observe(2)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`lat_seconds_bucket{model="ag",le="1"} 1`,
		`lat_seconds_bucket{model="ag",le="+Inf"} 2`,
		`lat_seconds_sum{model="ag"} 2.5`,
		`lat_seconds_count{model="ag"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestFuncInstruments(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("dyn_gauge", "help", func() float64 { return 42 })
	r.CounterFunc("dyn_total", "help", func() float64 { return 7 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if !strings.Contains(text, "dyn_gauge 42") || !strings.Contains(text, "dyn_total 7") {
		t.Fatalf("func instruments missing:\n%s", text)
	}
}

func TestDuplicateAndInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "help")
	mustPanic(t, func() { r.Counter("dup_total", "help") })
	mustPanic(t, func() { r.Counter("9bad", "help") })
	mustPanic(t, func() { r.CounterVec("v_total", "help", "bad-label") })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("esc_total", "help", "p")
	cv.With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{p="a\"b\\c\nd"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("escaping wrong, want %q in:\n%s", want, sb.String())
	}
}

func TestConcurrentInstrumentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "help")
	h := r.Histogram("conc_seconds", "help", DefTimeBuckets)
	cv := r.CounterVec("conc_vec_total", "help", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.001)
				cv.With("a").Inc()
			}
		}()
	}
	// Scrape concurrently with writes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if c.Int() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Int())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}
