// Package core implements the paper's contribution: the sampled-graph +
// dominator-tree estimator of per-vertex spread decrease (Algorithm 2) and
// the blocker-selection algorithms built on it — AdvancedGreedy
// (Algorithm 3) and GreedyReplace (Algorithm 4) — together with the
// baselines they are evaluated against: BaselineGreedy (Algorithm 1, the
// prior state of the art), Rand, and OutDegree.
//
// All algorithms operate on a single-source instance; multi-seed problems
// are reduced to single-source with graph.UnifySeeds by the Solve entry
// point in solve.go.
package core

import (
	"runtime"
	"sync"

	"github.com/imin-dev/imin/internal/cascade"
	"github.com/imin-dev/imin/internal/dominator"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// DomAlgo selects the dominator-tree algorithm used inside the estimator.
type DomAlgo int

const (
	// DomLengauerTarjan is the paper's choice [53].
	DomLengauerTarjan DomAlgo = iota
	// DomSNCA is the Semi-NCA variant; identical output, different
	// constant factors (see the ablation benchmarks).
	DomSNCA
)

// Estimator implements DecreaseESComputation (Algorithm 2): it estimates,
// for every candidate vertex u at once, the decrease of expected spread
// Δ[u] = E({s},G) − E({s},G[V\{u}]) by averaging the size of u's dominator
// subtree over θ live-edge sampled graphs (Theorems 4 and 6).
//
// An Estimator is bound to one sampler (hence one graph and diffusion
// model). It is not safe for concurrent DecreaseES calls, but a single call
// parallelizes internally over Workers goroutines. Worker scratch space is
// cached across calls, so the b rounds of a greedy run allocate only once.
type Estimator struct {
	sampler cascade.LiveSampler
	workers int
	domAlgo DomAlgo
	scratch []*estWorker
}

type estWorker struct {
	cws   *cascade.Workspace
	dws   *dominator.Workspace
	sizes []int32
	acc   []int64 // acc[u] = Σ over samples of subtree size of u
}

// NewEstimator returns an Estimator over the sampler's graph. workers <= 0
// selects GOMAXPROCS.
func NewEstimator(sampler cascade.LiveSampler, workers int, domAlgo DomAlgo) *Estimator {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Estimator{sampler: sampler, workers: workers, domAlgo: domAlgo}
}

// SetWorkers changes the fan-out of later DecreaseES calls; workers <= 0
// selects GOMAXPROCS. Scratch for new workers is allocated lazily, scratch
// beyond the new count is kept (sessions bounce between worker counts).
// Unlike the pooled estimators, the fresh estimator's output depends on the
// worker count: each worker draws from its own rng stream, so w workers
// partition θ differently than w′ would. Equal (Seed, Theta, workers)
// still reproduce exactly. Must not be called during a DecreaseES call.
func (e *Estimator) SetWorkers(workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e.workers = workers
}

// worker returns the cached scratch state for worker w, allocating on first
// use.
func (e *Estimator) worker(w int) *estWorker {
	for len(e.scratch) <= w {
		n := e.sampler.Graph().N()
		e.scratch = append(e.scratch, &estWorker{
			cws:   e.sampler.NewWorkspace(),
			dws:   dominator.NewWorkspace(n),
			sizes: make([]int32, n),
			acc:   make([]int64, n),
		})
	}
	return e.scratch[w]
}

// DecreaseES estimates Δ[u] for every vertex u of the graph with θ sampled
// graphs, treating blocked vertices as removed (so it estimates on G[V\B]).
// The result is written into dst, which must have length ≥ n; dst[src] and
// dst of blocked vertices are 0. The estimate is deterministic for a fixed
// (base seed, workers) pair.
//
// Cost: O(θ · m' · α(m',n')) where m' is the live-edge size of the sampled
// reachable region — one Lengauer–Tarjan run plus one tree scan per sample.
func (e *Estimator) DecreaseES(dst []float64, src graph.V, blocked []bool, theta int, base *rng.Source) {
	if theta <= 0 {
		panic("core: DecreaseES with non-positive theta")
	}
	n := e.sampler.Graph().N()
	if len(dst) < n {
		panic("core: DecreaseES dst too short")
	}

	workers := e.workers
	if workers > theta {
		workers = theta
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		share := theta / workers
		if w < theta%workers {
			share++
		}
		st := e.worker(w)
		r := base.Split(uint64(w))
		wg.Add(1)
		go func(st *estWorker, share int, r *rng.Source) {
			defer wg.Done()
			for i := range st.acc[:n] {
				st.acc[i] = 0
			}
			for i := 0; i < share; i++ {
				e.accumulateOne(st, src, blocked, r)
			}
		}(st, share, r)
	}
	wg.Wait()

	inv := 1 / float64(theta)
	for u := 0; u < n; u++ {
		total := int64(0)
		for w := 0; w < workers; w++ {
			total += e.scratch[w].acc[u]
		}
		dst[u] = float64(total) * inv
	}
	dst[src] = 0
}

// accumulateOne draws one sampled graph, builds its dominator tree, and adds
// every vertex's subtree size into the worker accumulator (one iteration of
// Algorithm 2's outer loop).
func (e *Estimator) accumulateOne(st *estWorker, src graph.V, blocked []bool, r *rng.Source) {
	sg := e.sampler.Sample(src, blocked, r, st.cws)
	fg := dominator.FlowGraph{
		N:        sg.K,
		OutStart: sg.OutStart,
		OutTo:    sg.OutTo,
		InStart:  sg.InStart,
		InTo:     sg.InTo,
	}
	var tree *dominator.Tree
	if e.domAlgo == DomSNCA {
		tree = st.dws.SNCA(&fg, 0)
	} else {
		tree = st.dws.LengauerTarjan(&fg, 0)
	}
	sizes := st.sizes[:sg.K]
	st.dws.SubtreeSizes(tree, sizes)
	// Local id 0 is the source; it is never a candidate blocker.
	for local := 1; local < sg.K; local++ {
		st.acc[sg.Orig[local]] += int64(sizes[local])
	}
}

// Sampler returns the underlying live-edge sampler.
func (e *Estimator) Sampler() cascade.LiveSampler { return e.sampler }
