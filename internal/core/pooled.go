package core

import (
	"runtime"
	"sync"

	"github.com/imin-dev/imin/internal/cascade"
	"github.com/imin-dev/imin/internal/dominator"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// PooledEstimator is the sample-reuse variant of Algorithm 2 (the
// DESIGN.md §6 "sampling reuse" ablation): it draws the θ live-edge
// samples once, stores them, and answers every subsequent DecreaseES call
// — one per greedy round — by re-scanning the stored samples with the
// current blocker set filtered out.
//
// Trade-offs versus the paper's fresh-samples-per-round scheme:
//
//   - no resampling cost after round one (the coin flips and the
//     original-graph adjacency walks are paid once);
//   - common random numbers across rounds: consecutive rounds rank
//     candidates on the same randomness, removing round-to-round sampling
//     noise from the greedy trajectory;
//   - memory proportional to θ × (average sample size);
//   - estimates across rounds are correlated — each round's estimate is
//     still unbiased for G[V\B] because filtering a live-edge sample of G
//     by removing B yields exactly a live-edge sample of G[V\B].
//
// Enable it for AdvancedGreedy/GreedyReplace through Options.ReuseSamples.
type PooledEstimator struct {
	g       *graph.Graph
	src     graph.V
	samples []storedSample
	workers int
	domAlgo DomAlgo
	scratch []*pooledWorker
}

// storedSample is one live-edge sample in compact local-id form (local 0 =
// source), as produced by cascade samplers.
type storedSample struct {
	orig     []graph.V
	outStart []int32
	outTo    []int32
}

// NewPooledEstimator draws theta samples from the sampler and stores them.
// workers <= 0 selects GOMAXPROCS.
func NewPooledEstimator(sampler cascade.LiveSampler, src graph.V, theta, workers int, domAlgo DomAlgo, base *rng.Source) *PooledEstimator {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > theta {
		workers = theta
	}
	p := &PooledEstimator{
		g:       sampler.Graph(),
		src:     src,
		samples: make([]storedSample, theta),
		workers: workers,
		domAlgo: domAlgo,
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * theta / workers
		hi := (w + 1) * theta / workers
		r := base.Split(uint64(w))
		wg.Add(1)
		go func(lo, hi int, r *rng.Source) {
			defer wg.Done()
			ws := sampler.NewWorkspace()
			for i := lo; i < hi; i++ {
				sg := sampler.Sample(src, nil, r, ws)
				p.samples[i] = storedSample{
					orig:     append([]graph.V(nil), sg.Orig[:sg.K]...),
					outStart: append([]int32(nil), sg.OutStart[:sg.K+1]...),
					outTo:    append([]int32(nil), sg.OutTo...),
				}
			}
		}(lo, hi, r)
	}
	wg.Wait()
	return p
}

// Theta returns the stored sample count.
func (p *PooledEstimator) Theta() int { return len(p.samples) }

type pooledWorker struct {
	dws   *dominator.Workspace
	acc   []int64
	sizes []int32
	// filtered-sample scratch, stamped per sample
	stamp    []int32
	flocal   []int32
	epoch    int32
	queue    []int32 // stored-local ids
	forig    []graph.V
	eFrom    []int32
	eTo      []int32
	outStart []int32
	outTo    []int32
	inStart  []int32
	inTo     []int32
	fill     []int32
}

func (p *PooledEstimator) worker(w int) *pooledWorker {
	for len(p.scratch) <= w {
		p.scratch = append(p.scratch, &pooledWorker{
			dws: dominator.NewWorkspace(0),
			acc: make([]int64, p.g.N()),
		})
	}
	return p.scratch[w]
}

// DecreaseES estimates Δ[u] on G[V\B] for every vertex from the stored
// pool, writing into dst (length ≥ n). Deterministic given the pool.
func (p *PooledEstimator) DecreaseES(dst []float64, blocked []bool) {
	n := p.g.N()
	var wg sync.WaitGroup
	theta := len(p.samples)
	for w := 0; w < p.workers; w++ {
		lo := w * theta / p.workers
		hi := (w + 1) * theta / p.workers
		st := p.worker(w)
		wg.Add(1)
		go func(st *pooledWorker, lo, hi int) {
			defer wg.Done()
			for i := range st.acc[:n] {
				st.acc[i] = 0
			}
			for i := lo; i < hi; i++ {
				p.accumulateFiltered(st, &p.samples[i], blocked)
			}
		}(st, lo, hi)
	}
	wg.Wait()
	inv := 1 / float64(theta)
	for u := 0; u < n; u++ {
		total := int64(0)
		for w := 0; w < p.workers; w++ {
			total += p.scratch[w].acc[u]
		}
		dst[u] = float64(total) * inv
	}
	dst[p.src] = 0
}

// accumulateFiltered restricts one stored sample to the non-blocked region
// reachable from the source, runs the dominator computation on it, and
// accumulates subtree sizes. Removing blocked vertices from a live-edge
// sample of G produces a live-edge sample of G[V\B], so the estimate stays
// unbiased for the blocked graph.
func (p *PooledEstimator) accumulateFiltered(st *pooledWorker, s *storedSample, blocked []bool) {
	k := len(s.orig)
	st.stamp = growI32(st.stamp, k)
	st.flocal = growI32(st.flocal, k)
	st.epoch++
	if st.epoch == 0 {
		for i := range st.stamp {
			st.stamp[i] = -1
		}
		st.epoch = 1
	}
	st.queue = st.queue[:0]
	st.forig = st.forig[:0]
	st.eFrom = st.eFrom[:0]
	st.eTo = st.eTo[:0]

	// BFS over stored live edges, skipping blocked vertices.
	st.stamp[0] = st.epoch
	st.flocal[0] = 0
	st.forig = append(st.forig, s.orig[0])
	st.queue = append(st.queue, 0)
	for qi := 0; qi < len(st.queue); qi++ {
		u := st.queue[qi]
		fu := st.flocal[u]
		for j := s.outStart[u]; j < s.outStart[u+1]; j++ {
			v := s.outTo[j]
			if blocked != nil && blocked[s.orig[v]] {
				continue
			}
			var fv int32
			if st.stamp[v] == st.epoch {
				fv = st.flocal[v]
			} else {
				st.stamp[v] = st.epoch
				fv = int32(len(st.forig))
				st.flocal[v] = fv
				st.forig = append(st.forig, s.orig[v])
				st.queue = append(st.queue, v)
			}
			st.eFrom = append(st.eFrom, fu)
			st.eTo = append(st.eTo, fv)
		}
	}

	fk := len(st.forig)
	fe := len(st.eFrom)
	st.outStart = growI32(st.outStart, fk+1)
	st.inStart = growI32(st.inStart, fk+1)
	st.outTo = growI32(st.outTo, fe)
	st.inTo = growI32(st.inTo, fe)
	st.fill = growI32(st.fill, fk)
	outStart, inStart := st.outStart[:fk+1], st.inStart[:fk+1]
	outTo, inTo := st.outTo[:fe], st.inTo[:fe]
	fill := st.fill[:fk]
	for i := range outStart {
		outStart[i] = 0
	}
	for i := range inStart {
		inStart[i] = 0
	}
	for i := 0; i < fe; i++ {
		outStart[st.eFrom[i]+1]++
		inStart[st.eTo[i]+1]++
	}
	for i := 0; i < fk; i++ {
		outStart[i+1] += outStart[i]
		inStart[i+1] += inStart[i]
	}
	for i := range fill {
		fill[i] = 0
	}
	for i := 0; i < fe; i++ {
		u := st.eFrom[i]
		outTo[outStart[u]+fill[u]] = st.eTo[i]
		fill[u]++
	}
	for i := range fill {
		fill[i] = 0
	}
	for i := 0; i < fe; i++ {
		v := st.eTo[i]
		inTo[inStart[v]+fill[v]] = st.eFrom[i]
		fill[v]++
	}

	fg := dominator.FlowGraph{N: fk, OutStart: outStart, OutTo: outTo, InStart: inStart, InTo: inTo}
	var tree *dominator.Tree
	if p.domAlgo == DomSNCA {
		tree = st.dws.SNCA(&fg, 0)
	} else {
		tree = st.dws.LengauerTarjan(&fg, 0)
	}
	st.sizes = growI32(st.sizes, fk)
	sizes := st.sizes[:fk]
	st.dws.SubtreeSizes(tree, sizes)
	for fl := 1; fl < fk; fl++ {
		st.acc[st.forig[fl]] += int64(sizes[fl])
	}
}
