package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// postBatch posts a solve-batch request and decodes the NDJSON stream into
// per-index results.
func postBatch(t *testing.T, url string, req BatchSolveRequest) (map[int]BatchItemResult, int, string) {
	t.Helper()
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var raw bytes.Buffer
		_, _ = raw.ReadFrom(resp.Body)
		return nil, resp.StatusCode, raw.String()
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	items := make(map[int]BatchItemResult)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var item BatchItemResult
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if _, dup := items[item.Index]; dup {
			t.Fatalf("index %d reported twice", item.Index)
		}
		items[item.Index] = item
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return items, resp.StatusCode, ""
}

// TestSolveBatchMatchesSingleSolves runs a concurrent batch against one
// graph — several items deliberately sharing (seeds, seed, theta,
// reuse_samples) so they contend for the same warm session and pooled
// estimator — and requires each item's blockers to equal the same request
// solved alone. With -race this doubles as the concurrent-warm-session
// exercise for the sharded estimator behind the HTTP layer.
func TestSolveBatchMatchesSingleSolves(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 4})
	registerTestGraphs(t, ts)

	shared := SolveRequest{
		Seeds: []int{5, 9}, Budget: 4, Algorithm: "advanced-greedy",
		Theta: 300, Seed: 11, ReuseSamples: true, EvalRounds: -1, Workers: 2,
	}
	grItem := SolveRequest{
		Seeds: []int{5, 9}, Budget: 3, Algorithm: "greedy-replace",
		Theta: 300, Seed: 11, ReuseSamples: true, EvalRounds: -1,
	}
	batch := BatchSolveRequest{Items: []SolveRequest{shared, shared, grItem, shared}}

	var single SolveResponse
	if code, body := postJSON(t, ts.URL+"/graphs/g1/solve", shared, &single); code != http.StatusOK {
		t.Fatalf("single solve: status %d, body %s", code, body)
	}
	var singleGR SolveResponse
	if code, body := postJSON(t, ts.URL+"/graphs/g1/solve", grItem, &singleGR); code != http.StatusOK {
		t.Fatalf("single GR solve: status %d, body %s", code, body)
	}

	items, code, body := postBatch(t, ts.URL+"/graphs/g1/solve-batch", batch)
	if code != http.StatusOK {
		t.Fatalf("batch: status %d, body %s", code, body)
	}
	if len(items) != len(batch.Items) {
		t.Fatalf("got %d results, want %d", len(items), len(batch.Items))
	}
	for idx, item := range items {
		if item.Error != "" {
			t.Fatalf("item %d failed: %s", idx, item.Error)
		}
		want := single.Blockers
		if idx == 2 {
			want = singleGR.Blockers
		}
		if !reflect.DeepEqual(item.Result.Blockers, want) {
			t.Errorf("item %d blockers %v != single-solve blockers %v", idx, item.Result.Blockers, want)
		}
	}
	if want := min(2, runtime.GOMAXPROCS(0)); items[0].Result.Workers != want {
		t.Errorf("item 0 workers echo = %d, want %d (request clamped to GOMAXPROCS)", items[0].Result.Workers, want)
	}
}

// TestSolveBatchPerItemErrors keeps one bad item from poisoning the batch:
// the invalid item carries its error inline, the valid items still solve.
func TestSolveBatchPerItemErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2})
	registerTestGraphs(t, ts)

	batch := BatchSolveRequest{Items: []SolveRequest{
		{Seeds: []int{1}, Budget: 2, EvalRounds: -1, Theta: 200},
		{Seeds: []int{1}, Budget: 2, Algorithm: "no-such-algorithm"},
		{Seeds: []int{1}, Budget: -3},
		{Seeds: []int{1}, Budget: 1, Workers: -2},
	}}
	items, code, body := postBatch(t, ts.URL+"/graphs/g2/solve-batch", batch)
	if code != http.StatusOK {
		t.Fatalf("batch: status %d, body %s", code, body)
	}
	if items[0].Error != "" || items[0].Result == nil {
		t.Errorf("item 0 should succeed, got error %q", items[0].Error)
	}
	for idx, wantSub := range map[int]string{1: "unknown algorithm", 2: "negative budget", 3: "negative workers"} {
		item := items[idx]
		if item.Result != nil || item.Error == "" {
			t.Errorf("item %d should fail, got result %+v", idx, item.Result)
			continue
		}
		if !bytes.Contains([]byte(item.Error), []byte(wantSub)) {
			t.Errorf("item %d error %q does not mention %q", idx, item.Error, wantSub)
		}
	}
}

// TestSolveBatchValidation covers the batch-level rejections: unknown
// graph, empty batch, and the item-count cap.
func TestSolveBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatchItems: 2})
	registerTestGraphs(t, ts)

	if _, code, _ := postBatch(t, ts.URL+"/graphs/nope/solve-batch", BatchSolveRequest{Items: []SolveRequest{{Budget: 1}}}); code != http.StatusNotFound {
		t.Errorf("unknown graph: status %d, want 404", code)
	}
	if _, code, _ := postBatch(t, ts.URL+"/graphs/g1/solve-batch", BatchSolveRequest{}); code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", code)
	}
	over := BatchSolveRequest{Items: make([]SolveRequest, 3)}
	if _, code, body := postBatch(t, ts.URL+"/graphs/g1/solve-batch", over); code != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d (body %s), want 400", code, body)
	}
}

// TestSolveBatchStopsOnClientDisconnect: once the client goes away
// mid-stream, the server must stop running the remaining batch instead of
// solving it to completion for nobody. The batch is sized so that finishing
// it would take far longer than the post-disconnect drain we allow.
func TestSolveBatchStopsOnClientDisconnect(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxConcurrent: 1})
	registerTestGraphs(t, ts)

	// Serial, deliberately heavy items (fresh sampling, no reuse) behind a
	// single solve slot.
	items := make([]SolveRequest, 16)
	for i := range items {
		items[i] = SolveRequest{Seeds: []int{1}, Budget: 6, Theta: 8000,
			Seed: uint64(i), EvalRounds: -1, Algorithm: "advanced-greedy"}
	}
	buf, err := json.Marshal(BatchSolveRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/graphs/g1/solve-batch", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read exactly one result line, then vanish.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatalf("no first line: %v", sc.Err())
	}
	cancel()
	resp.Body.Close()

	// The in-flight gauge must drain almost immediately: the worker notices
	// the dead context at its next admission or round boundary, and the
	// feeder stops handing out the ~14 untouched items. Running the batch
	// to completion here would take tens of seconds.
	deadline := time.Now().Add(5 * time.Second)
	for srv.metrics.inFlight.Int() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("still %d solves in flight long after the client disconnected", srv.metrics.inFlight.Int())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
