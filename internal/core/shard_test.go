package core

import (
	"context"
	"reflect"
	"testing"

	"github.com/imin-dev/imin/internal/cascade"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// denseTestGraph builds a graph whose live-edge samples reach a sizable
// fraction of the vertices, so single-vertex flips dirty well over the
// inline threshold and the sharded parallel path actually runs.
func denseTestGraph(n int, seed uint64) *graph.Graph {
	r := rng.New(seed)
	bld := graph.NewBuilder(n)
	for i := 0; i < 6*n; i++ {
		bld.AddEdge(graph.V(r.Intn(n)), graph.V(r.Intn(n)), float64(r.Intn(3))*0.2+0.2)
	}
	return bld.Build()
}

// TestReuseSamplesDeterministicAcrossWorkerCounts is the sharded
// reduction's headline guarantee: the same ReuseSamples instance solved at
// workers = 1, 2, 4, 8 returns byte-identical blocker sequences for both
// greedy algorithms. Pool content is worker-independent (per-sample rng
// streams) and the shard accumulators sum exactly, so the worker count
// must be invisible in the output.
func TestReuseSamplesDeterministicAcrossWorkerCounts(t *testing.T) {
	g := denseTestGraph(120, 9)
	seeds := []graph.V{3, 11}
	for _, alg := range []Algorithm{AdvancedGreedy, GreedyReplace} {
		var want []graph.V
		for _, workers := range []int{1, 2, 4, 8} {
			opt := Options{Theta: 400, Seed: 5, Workers: workers, ReuseSamples: true}
			res, err := Solve(g, seeds, 6, alg, opt)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", alg, workers, err)
			}
			if want == nil {
				want = res.Blockers
				continue
			}
			if !reflect.DeepEqual(res.Blockers, want) {
				t.Errorf("%s workers=%d: blockers %v != workers=1 blockers %v", alg, workers, res.Blockers, want)
			}
		}
	}
}

// TestSessionWorkerCountChangeKeepsPool asserts the warm-session half of
// the guarantee: requests at different Options.Workers on one session
// reuse the same cached pool (SetWorkers reshards instead of rebuilding)
// and still return the cold-solve blockers.
func TestSessionWorkerCountChangeKeepsPool(t *testing.T) {
	g := denseTestGraph(120, 10)
	seeds := []graph.V{2, 7}
	base := Options{Theta: 300, Seed: 4, ReuseSamples: true}
	ctx := context.Background()

	optCold := base
	optCold.Workers = 1
	cold, err := Solve(g, seeds, 5, AdvancedGreedy, optCold)
	if err != nil {
		t.Fatal(err)
	}

	sess := NewSession(g, DiffusionIC, DomLengauerTarjan, 2)
	for _, workers := range []int{1, 4, 2, 8, 1} {
		opt := base
		opt.Workers = workers
		res, err := sess.Solve(ctx, seeds, 5, AdvancedGreedy, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(res.Blockers, cold.Blockers) {
			t.Errorf("workers=%d: warm blockers %v != cold %v", workers, res.Blockers, cold.Blockers)
		}
	}
	st := sess.Stats()
	if st.PoolBuilds != 1 {
		t.Errorf("PoolBuilds = %d, want 1: changing the worker count must not invalidate the cached pool", st.PoolBuilds)
	}
	if st.PoolReuses != 4 {
		t.Errorf("PoolReuses = %d, want 4", st.PoolReuses)
	}
}

// TestWorkersExceedTheta pins the clamp: worker counts far above θ (and
// above the dirty count of every round) must behave exactly like a sane
// worker count, not panic or spawn empty shards with out-of-range sample
// slices.
func TestWorkersExceedTheta(t *testing.T) {
	g := denseTestGraph(60, 11)
	const theta = 5

	pool := NewSamplePool(cascade.NewIC(g), 0, theta, 64, rng.New(2))
	if pool.Theta() != theta {
		t.Fatalf("Theta = %d, want %d", pool.Theta(), theta)
	}
	ref := NewSamplePool(cascade.NewIC(g), 0, theta, 1, rng.New(2))
	if !reflect.DeepEqual(pool.vertOrig, ref.vertOrig) || !reflect.DeepEqual(pool.edgeTo, ref.edgeTo) {
		t.Fatal("pool content differs between workers=64 and workers=1")
	}

	incr := NewIncrementalPooledEstimatorFromPool(pool, 64, DomLengauerTarjan)
	if got := len(incr.shards); got != theta {
		t.Fatalf("shard count = %d, want clamp to θ = %d", got, theta)
	}
	pooled := NewPooledEstimatorFromPool(pool, 64, DomLengauerTarjan)
	n := g.N()
	blocked := make([]bool, n)
	dI := make([]float64, n)
	dP := make([]float64, n)
	for round := 0; round < 4; round++ {
		incr.DecreaseES(dI, blocked)
		pooled.DecreaseES(dP, blocked)
		if !reflect.DeepEqual(dI, dP) {
			t.Fatalf("round %d: incremental != pooled under θ < workers", round)
		}
		blocked[round+1] = true
	}

	opt := Options{Theta: theta, Workers: 16, Seed: 3, ReuseSamples: true}
	if _, err := Solve(g, []graph.V{0}, 2, AdvancedGreedy, opt); err != nil {
		t.Fatalf("Solve with workers > theta: %v", err)
	}
}

// TestParallelDecreaseESFlipsMatchesPooled drives the sharded parallel
// path (dirty counts far above the inline threshold) through a trajectory
// of blocks and unblocks and requires bit-identical output against the
// serial full re-scan at every step. Run under -race this is also the
// concurrency exercise for the shard fan-out and the parallel reduction.
func TestParallelDecreaseESFlipsMatchesPooled(t *testing.T) {
	g := denseTestGraph(150, 12)
	n := g.N()
	pool := NewSamplePool(cascade.NewIC(g), 0, 600, 4, rng.New(7))
	incr := NewIncrementalPooledEstimatorFromPool(pool, 4, DomLengauerTarjan)
	pooled := NewPooledEstimatorFromPool(pool, 1, DomLengauerTarjan)

	blocked := make([]bool, n)
	dI := make([]float64, n)
	dP := make([]float64, n)
	var flips []graph.V
	var trajectory []graph.V
	dirtyBefore := int64(0)
	sawParallelRound := false
	for round := 0; round < 16; round++ {
		incr.DecreaseESFlips(dI, blocked, flips)
		st := incr.Stats()
		if st.SamplesReprocessed-dirtyBefore > smallRoundInline {
			sawParallelRound = true
		}
		dirtyBefore = st.SamplesReprocessed
		flips = flips[:0]
		pooled.DecreaseES(dP, blocked)
		if !reflect.DeepEqual(dI, dP) {
			t.Fatalf("round %d: incremental != pooled", round)
		}
		if round%5 == 4 && len(trajectory) > 0 {
			u := trajectory[len(trajectory)-1]
			trajectory = trajectory[:len(trajectory)-1]
			blocked[u] = false
			flips = append(flips, u)
			continue
		}
		best := graph.V(-1)
		for v := graph.V(1); int(v) < n; v++ {
			if !blocked[v] && (best == -1 || dP[v] > dP[best]) {
				best = v
			}
		}
		blocked[best] = true
		flips = append(flips, best)
		trajectory = append(trajectory, best)
	}
	if !sawParallelRound {
		t.Error("no round exceeded the inline threshold; the parallel path was never exercised")
	}
}

// TestSetWorkersMidTrajectory reshards a primed estimator between rounds —
// the warm-session pattern when consecutive requests ask for different
// worker counts — and requires the maintained state to survive exactly:
// every subsequent round must still match the full re-scan bit for bit.
func TestSetWorkersMidTrajectory(t *testing.T) {
	g := denseTestGraph(100, 13)
	n := g.N()
	pool := NewSamplePool(cascade.NewIC(g), 0, 350, 2, rng.New(5))
	incr := NewIncrementalPooledEstimatorFromPool(pool, 1, DomLengauerTarjan)
	pooled := NewPooledEstimatorFromPool(pool, 3, DomLengauerTarjan)

	blocked := make([]bool, n)
	dI := make([]float64, n)
	dP := make([]float64, n)
	schedule := []int{1, 4, 4, 2, 8, 1, 3}
	for round, workers := range schedule {
		incr.SetWorkers(workers)
		incr.DecreaseES(dI, blocked)
		pooled.DecreaseES(dP, blocked)
		if !reflect.DeepEqual(dI, dP) {
			t.Fatalf("round %d (workers=%d): incremental != pooled after reshard", round, workers)
		}
		v := (round*13)%(n-1) + 1 // never flip the source
		blocked[v] = !blocked[v]
	}
}
