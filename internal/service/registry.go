package service

import (
	"context"
	"errors"
	"fmt"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/imin-dev/imin/internal/dynamic"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/store"
)

// ErrDuplicate reports a Register call for a name that is already taken,
// ErrFull a registry at its configured capacity — the two registry
// failures that are the server's state rather than the caller's input.
// ErrPersist wraps durability failures: the mutation or registration did
// not reach stable storage and must not be acknowledged.
var (
	ErrDuplicate = errors.New("graph already registered")
	ErrFull      = errors.New("graph registry full")
	ErrPersist   = errors.New("durable store write failed")
	// ErrDegraded rejects mutations of a graph whose durable log failed:
	// the graph keeps serving reads from its in-memory epoch while a
	// background self-heal checkpoint restores writability (503, retryable).
	ErrDegraded = errors.New("graph is degraded (read-only until self-heal completes)")
)

// errCheckpointBusy distinguishes "another checkpoint is already running"
// from a completed checkpoint — the self-heal loop must not mistake a
// skipped attempt for a successful rescue.
var errCheckpointBusy = errors.New("checkpoint already in progress")

// Registry is the concurrent store of named graphs. The graph behind a
// name is an epoch-versioned dynamic.Graph, so topology evolves through
// atomic mutation batches while every reader works on an immutable
// per-epoch CSR snapshot. With an attached durable store, registrations
// and mutation batches are written through to disk before they are
// acknowledged, and DELETE frees both the name and its on-disk state.
// The registry lock only guards the name table; dynamic.Graph has its own
// locking.
type Registry struct {
	mu      sync.RWMutex
	limit   int // max entries; <= 0 means unbounded
	entries map[string]*GraphEntry
	// reserved holds names whose durable state is being created: the disk
	// writes run outside the registry lock (a large graph's snapshot must
	// not stall every Get), and the reservation keeps the name and the
	// capacity slot taken meanwhile.
	reserved map[string]bool
	store    *store.Store // nil = in-memory only
}

// GraphEntry is one registered graph.
type GraphEntry struct {
	Name         string
	Dyn          *dynamic.Graph
	Source       string // human-readable provenance ("dataset Wiki-Vote @ 0.02", "file edges.txt", ...)
	RegisteredAt time.Time
	// Recovered reports that this entry was restored from the durable
	// store at startup rather than registered over the API.
	Recovered bool

	// gs is the graph's durable log; nil when the registry has no store.
	gs *store.GraphStore
	// commitMu serializes Commit+Append pairs (WAL epochs must be strictly
	// increasing) and checkpoint rotation against them.
	commitMu sync.Mutex
	// lastCheckpoint tracks the epoch of the last completed checkpoint, so
	// shutdown can skip graphs with no WAL tail.
	lastCheckpoint atomic.Uint64

	// degMu guards the degraded flag and its reason. While degraded, Commit
	// fast-fails with ErrDegraded — the in-memory epoch must not drift
	// further from the durable one while no log can accept appends.
	degMu     sync.Mutex
	degraded  bool
	degReason string
	degSince  time.Time
}

// DegradedState reports whether the entry is in degraded read-only mode,
// and the persist failure that put it there.
func (e *GraphEntry) DegradedState() (bool, string) {
	e.degMu.Lock()
	defer e.degMu.Unlock()
	return e.degraded, e.degReason
}

// markDegraded transitions the entry into degraded mode, reporting whether
// this call made the transition (false: it already was degraded).
func (e *GraphEntry) markDegraded(reason string) bool {
	e.degMu.Lock()
	defer e.degMu.Unlock()
	if e.degraded {
		return false
	}
	e.degraded = true
	e.degReason = reason
	e.degSince = time.Now()
	return true
}

// clearDegraded restores writability. Only the self-heal path calls it,
// strictly after a checkpoint has durably covered the in-memory epoch —
// clearing any earlier would let fresh appends land beyond an epoch gap
// that recovery would truncate.
func (e *GraphEntry) clearDegraded() {
	e.degMu.Lock()
	e.degraded = false
	e.degReason = ""
	e.degSince = time.Time{}
	e.degMu.Unlock()
}

// Current returns the immutable snapshot of the entry's present epoch,
// together with that epoch — the pair every solve binds to.
func (e *GraphEntry) Current() (*graph.Graph, uint64) {
	return e.Dyn.Snapshot()
}

// Durable reports whether the entry is backed by the durable store.
func (e *GraphEntry) Durable() bool { return e.gs != nil }

// Commit applies a mutation batch and, for durable entries, appends it to
// the write-ahead log before returning — the write-through hook that makes
// an HTTP 200 mean "on disk". The batch is WAL-encoded BEFORE the
// in-memory commit: a batch the log cannot represent is rejected outright,
// never half-applied, so the epoch sequence on disk can have no gap. A WAL
// write failure after the commit returns an ErrPersist-wrapped error; the
// log is poisoned (see store) so no later batch can silently skip an
// epoch either. The context only carries the request id into the store's
// log lines — a commit is never aborted on cancellation.
func (e *GraphEntry) Commit(ctx context.Context, muts []dynamic.Mutation) (dynamic.CommitInfo, error) {
	if e.gs == nil {
		return e.Dyn.Commit(muts)
	}
	if deg, reason := e.DegradedState(); deg {
		return dynamic.CommitInfo{}, fmt.Errorf("graph %q: %w: %s", e.Name, ErrDegraded, reason)
	}
	batch, err := dynamic.EncodeBatch(nil, muts)
	if err != nil {
		return dynamic.CommitInfo{}, err
	}
	e.commitMu.Lock()
	defer e.commitMu.Unlock()
	info, err := e.Dyn.Commit(muts)
	if err != nil {
		return info, err
	}
	if info.Applied > 0 {
		if err := e.gs.Append(ctx, info.Epoch, batch); err != nil {
			return info, fmt.Errorf("%w: %v", ErrPersist, err)
		}
	}
	return info, nil
}

// NeedsCheckpoint reports whether the entry's WAL has outgrown the store's
// checkpoint threshold.
func (e *GraphEntry) NeedsCheckpoint() bool {
	return e.gs != nil && e.gs.NeedsCheckpoint()
}

// Checkpoint writes a durable snapshot of the entry's current epoch and
// truncates the WAL prefix it covers. Safe to call concurrently (only one
// checkpoint runs; extra calls return immediately) and concurrently with
// commits — rotation synchronizes with them through commitMu, the snapshot
// write runs unlocked.
func (e *GraphEntry) Checkpoint(ctx context.Context) error {
	if err := e.checkpoint(ctx); err != nil && !errors.Is(err, errCheckpointBusy) {
		return err
	}
	return nil
}

// checkpoint is Checkpoint with the busy case surfaced as errCheckpointBusy
// instead of folded into success — the self-heal loop needs the distinction.
func (e *GraphEntry) checkpoint(ctx context.Context) error {
	if e.gs == nil {
		return nil
	}
	if !e.gs.TryStartCheckpoint() {
		return errCheckpointBusy
	}
	defer e.gs.FinishCheckpoint()
	e.commitMu.Lock()
	g, epoch := e.Dyn.Snapshot()
	gen, err := e.gs.BeginCheckpoint(ctx)
	e.commitMu.Unlock()
	if err != nil {
		return err
	}
	if err := e.gs.CompleteCheckpoint(ctx, gen, g, epoch); err != nil {
		return err
	}
	e.lastCheckpoint.Store(epoch)
	return nil
}

// SyncAndCheckpoint is the shutdown hook: force pending WAL bytes to disk,
// then take a final checkpoint if any batch landed since the last one (so
// restart replays nothing). A failed Sync (e.g. a poisoned WAL) does not
// abort the attempt: a checkpoint supersedes the broken log entirely, so a
// successful rescue checkpoint makes the Sync failure moot.
func (e *GraphEntry) SyncAndCheckpoint() error {
	if e.gs == nil {
		return nil
	}
	syncErr := e.gs.Sync()
	if syncErr == nil && e.Dyn.Epoch() == e.lastCheckpoint.Load() {
		return nil
	}
	if err := e.Checkpoint(context.Background()); err != nil {
		if syncErr != nil {
			return syncErr
		}
		return err
	}
	return nil
}

// Info summarizes the entry for the listing API.
func (e *GraphEntry) Info() GraphInfo {
	g, epoch := e.Dyn.Snapshot()
	st := e.Dyn.Stats()
	deg, reason := e.DegradedState()
	return GraphInfo{
		Degraded:       deg,
		DegradedReason: reason,
		Name:           e.Name,
		Vertices:       g.N(),
		Edges:          g.M(),
		Epoch:          epoch,
		PendingDeltas:  st.DeltasSinceCompact,
		Compactions:    st.Compactions,
		Source:         e.Source,
		RegisteredAt:   e.RegisteredAt,
		Durable:        e.Durable(),
		Recovered:      e.Recovered,
	}
}

// NewRegistry returns an empty registry holding at most limit graphs
// (<= 0 for no bound). Every entry lives in memory forever — per-entry
// size caps alone would not stop many right-sized registrations from
// exhausting memory, hence the count bound.
func NewRegistry(limit int) *Registry {
	return &Registry{limit: limit, entries: make(map[string]*GraphEntry), reserved: make(map[string]bool)}
}

// AttachStore wires a durable store into the registry. Must happen before
// any Register call; recovered graphs are added through RegisterRecovered.
func (r *Registry) AttachStore(st *store.Store) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.store = st
}

// graphName constrains registry names so they can appear in URL paths (and,
// durably stored, as directory names).
var graphName = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// ValidateName reports whether name may be registered. Register applies it
// itself; callers may use it up front to fail fast before building a graph.
func ValidateName(name string) error {
	if !graphName.MatchString(name) {
		return fmt.Errorf("invalid graph name %q (want %s)", name, graphName)
	}
	return nil
}

// Register adds a graph under name at epoch 0, creating its durable state
// (snapshot, manifest, empty WAL) first when a store is attached — the
// registration is on disk before it is visible. The disk writes run with
// only the name reserved, never under the registry lock, so lookups and
// solves on other graphs proceed while a large snapshot lands. Registering
// a taken name fails; a name is freed only by Remove.
func (r *Registry) Register(name string, g *graph.Graph, source, probModel string) (*GraphEntry, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	r.mu.Lock()
	if _, ok := r.entries[name]; ok || r.reserved[name] {
		r.mu.Unlock()
		return nil, fmt.Errorf("graph %q: %w", name, ErrDuplicate)
	}
	if r.limit > 0 && len(r.entries)+len(r.reserved) >= r.limit {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w (limit %d)", ErrFull, r.limit)
	}
	r.reserved[name] = true
	st := r.store
	r.mu.Unlock()

	e := &GraphEntry{Name: name, Dyn: dynamic.New(g, dynamic.Config{}), Source: source, RegisteredAt: time.Now()}
	if st != nil {
		gs, err := st.Create(name, g, 0, source, probModel)
		if err != nil {
			r.mu.Lock()
			delete(r.reserved, name)
			r.mu.Unlock()
			return nil, fmt.Errorf("%w: %v", ErrPersist, err)
		}
		e.gs = gs
	}
	r.mu.Lock()
	delete(r.reserved, name)
	r.entries[name] = e
	r.mu.Unlock()
	return e, nil
}

// RegisterRecovered adds a graph restored by the durable store at startup.
func (r *Registry) RegisterRecovered(rec *store.Recovered) (*GraphEntry, error) {
	if err := ValidateName(rec.Name); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[rec.Name]; ok {
		return nil, fmt.Errorf("graph %q: %w", rec.Name, ErrDuplicate)
	}
	e := &GraphEntry{
		Name: rec.Name, Dyn: rec.Dyn, Source: rec.Source,
		RegisteredAt: time.Now(), Recovered: true, gs: rec.GS,
	}
	e.lastCheckpoint.Store(rec.SnapshotEpoch)
	r.entries[rec.Name] = e
	return e, nil
}

// Remove unregisters a graph and deletes its on-disk state. The name is
// free for re-registration afterwards; callers must also drop any warm
// sessions for it, or a later graph under the same name would inherit
// solver state from this one.
func (r *Registry) Remove(name string) (*GraphEntry, error) {
	r.mu.Lock()
	e, ok := r.entries[name]
	delete(r.entries, name)
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("graph %q not registered", name)
	}
	if r.store != nil && e.gs != nil {
		if err := r.store.Remove(name); err != nil {
			return e, fmt.Errorf("%w: %v", ErrPersist, err)
		}
	}
	return e, nil
}

// SyncAndCheckpointAll runs the shutdown hook on every durable entry,
// returning the first error (but attempting all).
func (r *Registry) SyncAndCheckpointAll() error {
	r.mu.RLock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	entries := make([]*GraphEntry, 0, len(names))
	for _, name := range names {
		entries = append(entries, r.entries[name])
	}
	r.mu.RUnlock()
	var first error
	for _, e := range entries {
		if err := e.SyncAndCheckpoint(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// MutationTotals sums every entry's dynamic-graph counters, for /stats.
func (r *Registry) MutationTotals() (batches, mutations, compactions int64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, e := range r.entries {
		st := e.Dyn.Stats()
		batches += st.Batches
		mutations += st.Mutations
		compactions += st.Compactions
	}
	return batches, mutations, compactions
}

// Get looks up a graph by name.
func (r *Registry) Get(name string) (*GraphEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// List returns all entries' info, sorted by name.
func (r *Registry) List() []GraphInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]GraphInfo, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.Info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len reports the number of registered graphs.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}
