// Package lintrules holds the project-specific static-analysis passes run
// by cmd/iminlint. Each analyzer turns one of the repository's load-bearing
// invariants — the rules that make blocker sets bit-identical at any worker
// count, acked mutation batches durable across kill -9, and the WAL append
// path non-blocking — into a CI-enforced diagnostic instead of tribal
// knowledge:
//
//	detrand    — no nondeterminism (unsorted map iteration into ordered
//	             sinks, math/rand, time-as-entropy) in determinism-critical
//	             packages; randomness comes from internal/rng streams.
//	errsink    — no discarded errors from durability call sites (WAL
//	             Append/Sync, fsync, Rename, manifest/snapshot writes).
//	lockio     — no file or network I/O while holding a mutex (the PR 5
//	             "fsync outside the append lock" rule, generalized).
//	epochorder — epoch fields advance only through the blessed
//	             commit/replay/migration entry points.
//	ctxprop    — exported context-taking functions must consult their
//	             context in long-running loops.
//
// The rules, their rationale, and the suppression syntax are documented in
// docs/INVARIANTS.md.
package lintrules

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/imin-dev/imin/internal/lintkit"
)

// All returns every analyzer, in stable order.
func All() []*lintkit.Analyzer {
	return []*lintkit.Analyzer{
		DetRand,
		ErrSink,
		LockIO,
		EpochOrder,
		CtxProp,
		VFSOnly,
	}
}

// ByName resolves a comma-separated analyzer list ("detrand,lockio").
func ByName(names string) ([]*lintkit.Analyzer, bool) {
	want := strings.Split(names, ",")
	var out []*lintkit.Analyzer
	for _, name := range want {
		found := false
		for _, a := range All() {
			if a.Name == strings.TrimSpace(name) {
				out = append(out, a)
				found = true
			}
		}
		if !found {
			return nil, false
		}
	}
	return out, true
}

// scopedTo reports whether pkgPath falls under any of the path patterns.
// A pattern like "internal/core" matches that directory (segment-aligned,
// any module prefix) and everything below it; "cmd" matches every command.
// Matching by suffix rather than full path lets fixture packages opt in
// under synthetic module paths.
func scopedTo(pkgPath string, patterns []string) bool {
	for _, pat := range patterns {
		if pkgPath == pat ||
			strings.HasSuffix(pkgPath, "/"+pat) ||
			strings.Contains(pkgPath, "/"+pat+"/") ||
			strings.HasPrefix(pkgPath, pat+"/") {
			return true
		}
	}
	return false
}

// errorReturning reports whether the call's type includes a trailing error
// result, and the index of that result (-1 when absent).
func errorResult(info *types.Info, call *ast.CallExpr) (int, bool) {
	tv, ok := info.Types[call]
	if !ok {
		return -1, false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		if t.Len() == 0 {
			return -1, false
		}
		if isErrorType(t.At(t.Len() - 1).Type()) {
			return t.Len() - 1, true
		}
	default:
		if isErrorType(tv.Type) {
			return 0, true
		}
	}
	return -1, false
}

var errorIface = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorIface)
}

// calleeName resolves a call to (packagePath, name, receiverTypeName).
// For a package-level call like os.Rename it returns ("os", "Rename", "").
// For a method call it returns the method's package, name, and the named
// receiver type ("File" for (*os.File).Sync). For a local function call
// the package is the current one and the receiver empty.
func calleeName(info *types.Info, call *ast.CallExpr) (pkgPath, name, recv string) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Func); ok {
			return objPkgPath(obj), obj.Name(), ""
		}
	case *ast.SelectorExpr:
		obj, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return "", "", ""
		}
		sig, _ := obj.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			return objPkgPath(obj), obj.Name(), namedTypeName(sig.Recv().Type())
		}
		return objPkgPath(obj), obj.Name(), ""
	}
	return "", "", ""
}

func objPkgPath(obj types.Object) string {
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// namedTypeName returns the bare name of t's named type, through pointers.
func namedTypeName(t types.Type) string {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u.Obj().Name()
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return ""
		}
	}
}

// typeIs reports whether t (through pointers) is the named type pkg.name.
func typeIs(t types.Type, pkg, name string) bool {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkg
}

// usesObject reports whether any identifier under node resolves to obj.
func usesObject(info *types.Info, node ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// declaredBefore reports whether obj was declared before pos (i.e. outside
// a loop body that starts at pos).
func declaredBefore(obj types.Object, pos token.Pos) bool {
	return obj != nil && obj.Pos() < pos
}

// eachFuncBody visits every function declaration with a body.
func eachFuncBody(files []*ast.File, fn func(decl *ast.FuncDecl)) {
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
