// Negative epochorder fixture: construction, the blessed entry points, and
// plain local variables that happen to be named epoch.
package fixture

type graphState struct {
	epoch     uint64
	snapEpoch uint64
}

func New(epoch uint64) *graphState {
	return &graphState{epoch: epoch} // composite literal is construction
}

func (g *graphState) Commit() {
	g.epoch++
	g.snapEpoch = g.epoch
}

func (g *graphState) Replay(to uint64) {
	for g.epoch < to {
		g.epoch++
	}
}

func localEpochs() uint64 {
	epoch := uint64(0) // locals are not persistent state
	epoch++
	return epoch
}
