package graph

import (
	"fmt"

	"github.com/imin-dev/imin/internal/rng"
)

// ProbModel names a rule for assigning propagation probabilities to edges.
// The two models follow the paper's experimental setting (Section VI-A),
// which in turn follows Kempe et al. and Chen et al.
type ProbModel int

const (
	// Trivalency: every edge independently draws its probability uniformly
	// from {0.1, 0.01, 0.001}.
	Trivalency ProbModel = iota
	// WeightedCascade: edge (u,v) gets probability 1/indegree(v), so the
	// expected number of in-influences that fire on v is 1.
	WeightedCascade
	// KeepProbs leaves whatever probabilities the graph already carries.
	KeepProbs
)

// String returns the conventional short name used in the paper's tables.
func (m ProbModel) String() string {
	switch m {
	case Trivalency:
		return "TR"
	case WeightedCascade:
		return "WC"
	case KeepProbs:
		return "keep"
	default:
		return fmt.Sprintf("ProbModel(%d)", int(m))
	}
}

// trivalencyValues are the three probability levels of the TR model.
var trivalencyValues = [3]float64{0.1, 0.01, 0.001}

// Assign returns a copy of g with probabilities reassigned under the model.
// The TR model consumes randomness from r; WC is deterministic and accepts a
// nil r. The input graph is never modified.
func (m ProbModel) Assign(g *Graph, r *rng.Source) *Graph {
	switch m {
	case KeepProbs:
		return g
	case Trivalency:
		if r == nil {
			panic("graph: Trivalency assignment requires a random source")
		}
		cp := g.Clone()
		// Assign per (from, to) pair in out-CSR order, then mirror to the
		// in-CSR so both views agree on every edge's probability.
		for i := range cp.outP {
			cp.outP[i] = trivalencyValues[r.Intn(3)]
		}
		cp.mirrorOutToIn()
		return cp
	case WeightedCascade:
		cp := g.Clone()
		for v := V(0); int(v) < cp.n; v++ {
			din := cp.InDegree(v)
			if din == 0 {
				continue
			}
			p := 1 / float64(din)
			ps := cp.inP[cp.inStart[v]:cp.inStart[v+1]]
			for i := range ps {
				ps[i] = p
			}
		}
		cp.mirrorInToOut()
		return cp
	default:
		panic(fmt.Sprintf("graph: unknown probability model %d", int(m)))
	}
}

// mirrorOutToIn rewrites inP so that it matches outP edge-for-edge.
func (g *Graph) mirrorOutToIn() {
	// cursor[u] walks u's out-list as we process in-lists in (to, from)
	// order; instead, do a direct lookup: for each in-edge (u→v) find p in
	// u's out-list. Out-lists are sorted by target after Build, so binary
	// search keeps this O(m log d).
	for v := V(0); int(v) < g.n; v++ {
		from := g.inTo[g.inStart[v]:g.inStart[v+1]]
		ps := g.inP[g.inStart[v]:g.inStart[v+1]]
		for i, u := range from {
			ps[i] = g.lookupOutProb(u, v)
		}
	}
}

// mirrorInToOut rewrites outP so that it matches inP edge-for-edge.
func (g *Graph) mirrorInToOut() {
	for u := V(0); int(u) < g.n; u++ {
		to := g.outTo[g.outStart[u]:g.outStart[u+1]]
		ps := g.outP[g.outStart[u]:g.outStart[u+1]]
		for i, v := range to {
			ps[i] = g.lookupInProb(u, v)
		}
	}
}

// lookupOutProb finds p(u,v) in u's sorted out-list by binary search.
func (g *Graph) lookupOutProb(u, v V) float64 {
	lo, hi := int(g.outStart[u]), int(g.outStart[u+1])
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case g.outTo[mid] < v:
			lo = mid + 1
		case g.outTo[mid] > v:
			hi = mid
		default:
			return g.outP[mid]
		}
	}
	panic(fmt.Sprintf("graph: edge (%d,%d) missing from out CSR", u, v))
}

// lookupInProb finds p(u,v) in v's sorted in-list by binary search.
func (g *Graph) lookupInProb(u, v V) float64 {
	lo, hi := int(g.inStart[v]), int(g.inStart[v+1])
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case g.inTo[mid] < u:
			lo = mid + 1
		case g.inTo[mid] > u:
			hi = mid
		default:
			return g.inP[mid]
		}
	}
	panic(fmt.Sprintf("graph: edge (%d,%d) missing from in CSR", u, v))
}
