// Command triggering demonstrates the paper's Section V-E extension: the
// IMIN algorithms run unchanged under any triggering model because they
// only consume live-edge samples. Here the linear threshold (LT) model —
// each user adopts based on one randomly chosen in-influence, weighted by
// edge weight — replaces independent cascade, on a community-structured
// small-world network.
//
// Run with:
//
//	go run ./examples/triggering
package main

import (
	"fmt"
	"log"

	imin "github.com/imin-dev/imin"
)

func main() {
	// A Watts-Strogatz small world: dense local clustering plus shortcuts,
	// the classic substrate for threshold-based adoption.
	structural := imin.GenerateWattsStrogatz(400, 3, 0.1, 1)
	// Weighted cascade weights sum to exactly 1 per vertex — the natural LT
	// weighting (each in-neighbor u is the chosen trigger of v with
	// probability 1/indegree(v)).
	g := imin.AssignProbabilities(structural, imin.WeightedCascade, 0)
	seeds, err := imin.RandomSeedSet(g, 5, true, 2)
	if err != nil {
		log.Fatal(err)
	}

	for _, model := range []struct {
		name string
		d    imin.Options
	}{
		{"independent cascade", imin.Options{Theta: 3000, Seed: 3, Diffusion: imin.IC}},
		{"linear threshold", imin.Options{Theta: 3000, Seed: 3, Diffusion: imin.LT}},
	} {
		before, err := imin.EstimateSpread(g, seeds, nil, 20000, model.d)
		if err != nil {
			log.Fatal(err)
		}
		res, err := imin.Minimize(g, seeds, 8, model.d)
		if err != nil {
			log.Fatal(err)
		}
		after, err := imin.EstimateSpread(g, seeds, res.Blockers, 20000, model.d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s spread %.1f -> %.1f after blocking %d users (%v)\n",
			model.name, before, after, len(res.Blockers), res.Runtime.Round(1000000))
	}
	fmt.Println("\nThe same GreedyReplace implementation serves both models: the")
	fmt.Println("dominator-tree estimator works on any live-edge sample, which is")
	fmt.Println("all the triggering-model family requires (Section V-E).")
}
