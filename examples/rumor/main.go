// Command rumor walks through the paper's running example (the Figure 1
// toy graph) and reproduces Examples 1-4 and Table III: activation
// probabilities, exact spreads under different blocker sets, the
// per-vertex spread decreases of Example 2, and the Greedy vs OutNeighbors
// vs GreedyReplace comparison.
//
// Run with:
//
//	go run ./examples/rumor
package main

import (
	"fmt"
	"log"

	imin "github.com/imin-dev/imin"
)

// Vertex names: paper's v1..v9 are ids 0..8.
const (
	v1 imin.Vertex = iota
	v2
	v3
	v4
	v5
	v6
	v7
	v8
	v9
)

func name(v imin.Vertex) string { return fmt.Sprintf("v%d", v+1) }

func toyGraph() *imin.Graph {
	return imin.FromEdges(9, []imin.Edge{
		{From: v1, To: v2, P: 1}, {From: v1, To: v4, P: 1},
		{From: v2, To: v5, P: 1}, {From: v4, To: v5, P: 1},
		{From: v5, To: v3, P: 1}, {From: v5, To: v6, P: 1}, {From: v5, To: v9, P: 1},
		{From: v5, To: v8, P: 0.5}, {From: v9, To: v8, P: 0.2},
		{From: v8, To: v7, P: 0.1},
	})
}

func main() {
	g := toyGraph()
	seed := v1

	// Example 1: the expected spread is 7.66; blocking v5 drops it to 3.
	spread, err := imin.ExactSpread(g, seed, nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Example 1: E({v1}, G) = %.2f\n", spread)
	for _, blocker := range []imin.Vertex{v5, v2, v4} {
		s, err := imin.ExactSpread(g, seed, []imin.Vertex{blocker}, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  blocking %s -> spread %.2f\n", name(blocker), s)
	}

	// Example 2: Algorithm 2's estimate of every vertex's spread decrease,
	// computed from sampled graphs and their dominator trees.
	fmt.Println("\nExample 2: estimated spread decrease per candidate blocker")
	delta := imin.SpreadDecreasePerVertex(g, seed, 100000, 1)
	for v := imin.Vertex(1); int(v) < g.N(); v++ {
		fmt.Printf("  Δ[%s] = %.2f\n", name(v), delta[v])
	}

	// Table III / Examples 3-4: Greedy vs GreedyReplace at budgets 1 and 2.
	fmt.Println("\nTable III: blockers chosen per algorithm")
	opt := imin.Options{Theta: 20000, Seed: 3}
	for _, b := range []int{1, 2} {
		for _, alg := range []imin.Algorithm{imin.AdvancedGreedy, imin.GreedyReplace} {
			res, err := imin.MinimizeWith(g, []imin.Vertex{seed}, b, alg, opt)
			if err != nil {
				log.Fatal(err)
			}
			s, err := imin.ExactSpread(g, seed, res.Blockers, 0)
			if err != nil {
				log.Fatal(err)
			}
			names := ""
			for i, v := range res.Blockers {
				if i > 0 {
					names += ","
				}
				names += name(v)
			}
			fmt.Printf("  b=%d %-16s -> {%s}, spread %.2f\n", b, alg, names, s)
		}
	}
	fmt.Println("\nGreedy wins at b=1 (3.00), GreedyReplace matches it; at b=2")
	fmt.Println("GreedyReplace finds {v2,v4} (spread 1.00) where greedy stops at 2.00.")
}
