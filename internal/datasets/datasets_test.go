package datasets

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/imin-dev/imin/internal/cascade"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

func TestPreferentialAttachmentBasics(t *testing.T) {
	r := rng.New(1)
	g := PreferentialAttachment(2000, 5, true, r)
	if g.N() != 2000 {
		t.Fatalf("n = %d", g.N())
	}
	st := g.ComputeStats()
	// Directed edges ≈ 5 per vertex; dedup trims slightly.
	if st.M < 8000 || st.M > 11000 {
		t.Fatalf("m = %d, want ≈ 10000", st.M)
	}
	// Power-law tail: the maximum degree far exceeds the average.
	if float64(st.MaxDegree) < 4*st.AvgDegree {
		t.Errorf("max degree %d vs avg %.1f: tail too light for PA", st.MaxDegree, st.AvgDegree)
	}
}

func TestPreferentialAttachmentUndirected(t *testing.T) {
	g := PreferentialAttachment(500, 3, false, rng.New(2))
	// Every edge must exist in both directions.
	for _, e := range g.Edges() {
		if !g.HasEdge(e.To, e.From) {
			t.Fatalf("edge (%d,%d) not mirrored", e.From, e.To)
		}
	}
}

func TestPreferentialAttachmentFractionalDegree(t *testing.T) {
	g := PreferentialAttachment(3000, 1.6, true, rng.New(3))
	st := g.ComputeStats()
	perVertex := float64(st.M) / float64(st.N)
	if math.Abs(perVertex-1.6) > 0.25 {
		t.Fatalf("edges per vertex = %v, want ≈ 1.6", perVertex)
	}
}

func TestPreferentialAttachmentSeedConnectivity(t *testing.T) {
	// Every vertex attaches at least once, so (viewed undirected) the graph
	// is connected; verify no isolated vertices.
	g := PreferentialAttachment(1000, 1, true, rng.New(4))
	st := g.ComputeStats()
	if st.Isolated != 0 {
		t.Fatalf("%d isolated vertices", st.Isolated)
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(1000, 5000, true, rng.New(5))
	st := g.ComputeStats()
	if st.M < 4700 || st.M > 5000 {
		t.Fatalf("ER m = %d, want ≈ 5000", st.M)
	}
	// Binomial degrees: light tail.
	if float64(st.MaxDegree) > 6*st.AvgDegree {
		t.Errorf("ER tail too heavy: max %d avg %.1f", st.MaxDegree, st.AvgDegree)
	}
	u := ErdosRenyi(500, 2000, false, rng.New(6))
	for _, e := range u.Edges() {
		if !u.HasEdge(e.To, e.From) {
			t.Fatal("undirected ER edge not mirrored")
		}
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(200, 3, 0.1, rng.New(7))
	st := g.ComputeStats()
	// Ring lattice baseline degree is 2k per side-count before rewiring;
	// undirected doubling gives ≈ 12 per vertex.
	if math.Abs(st.AvgDegree-12) > 2 {
		t.Fatalf("WS avg degree %.1f, want ≈ 12", st.AvgDegree)
	}
	if st.Isolated != 0 {
		t.Fatal("WS has isolated vertices")
	}
}

func TestWattsStrogatzPanicsOnTinyRing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for n <= 2k")
		}
	}()
	WattsStrogatz(5, 3, 0.1, rng.New(8))
}

func TestPowerLawConfiguration(t *testing.T) {
	g := PowerLawConfiguration(3000, 2.2, 300, true, rng.New(9))
	st := g.ComputeStats()
	if st.MaxOutDeg > 300 {
		t.Fatalf("out-degree cap violated: %d", st.MaxOutDeg)
	}
	// Power law with exponent 2.2: most vertices have degree 1-2, a few are
	// large.
	if float64(st.MaxDegree) < 5*st.AvgDegree {
		t.Errorf("tail too light: max %d avg %.1f", st.MaxDegree, st.AvgDegree)
	}
}

func TestRegistryCoversTableIV(t *testing.T) {
	specs := Registry()
	if len(specs) != 8 {
		t.Fatalf("registry has %d datasets, want 8", len(specs))
	}
	wantOrder := []string{"EmailCore", "Facebook", "Wiki-Vote", "EmailAll", "DBLP", "Twitter", "Stanford", "Youtube"}
	for i, name := range wantOrder {
		if specs[i].Name != name {
			t.Fatalf("registry[%d] = %s, want %s", i, specs[i].Name, name)
		}
	}
	// Table IV's published sizes.
	if specs[0].FullN != 1005 || specs[0].FullM != 25571 {
		t.Error("EmailCore stats wrong")
	}
	if specs[7].FullN != 1134890 || specs[7].FullM != 2987624 {
		t.Error("Youtube stats wrong")
	}
	// Direction column.
	directed := map[string]bool{
		"EmailCore": true, "Facebook": false, "Wiki-Vote": true, "EmailAll": true,
		"DBLP": false, "Twitter": true, "Stanford": true, "Youtube": false,
	}
	for _, s := range specs {
		if s.Directed != directed[s.Name] {
			t.Errorf("%s direction wrong", s.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if s, ok := ByName("Facebook"); !ok || s.Short != "F" {
		t.Error("ByName full name failed")
	}
	if s, ok := ByName("EC"); !ok || s.Name != "EmailCore" {
		t.Error("ByName short name failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName accepted unknown name")
	}
}

func TestGenerateScaledStatistics(t *testing.T) {
	for _, name := range []string{"EmailCore", "EmailAll"} {
		s, _ := ByName(name)
		g := s.Generate(0.05, 42)
		st := g.ComputeStats()
		wantN := int(float64(s.FullN) * 0.05)
		if wantN < 50 {
			wantN = 50
		}
		if st.N != wantN {
			t.Errorf("%s: n = %d, want %d", name, st.N, wantN)
		}
		// Average degree should track the full dataset's density. The full
		// davg is 2m/n for directed graphs; undirected datasets double m on
		// materialization, so compare per-vertex directed edges.
		wantEPV := float64(s.FullM) / float64(s.FullN)
		if !s.Directed {
			wantEPV *= 2
		}
		gotEPV := float64(st.M) / float64(st.N)
		if gotEPV < wantEPV*0.6 || gotEPV > wantEPV*1.3 {
			t.Errorf("%s: edges per vertex %.2f, want ≈ %.2f", name, gotEPV, wantEPV)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s, _ := ByName("Wiki-Vote")
	g1 := s.Generate(0.02, 1)
	g2 := s.Generate(0.02, 1)
	if g1.N() != g2.N() || g1.M() != g2.M() {
		t.Fatal("Generate is not deterministic")
	}
	g3 := s.Generate(0.02, 2)
	if g1.M() == g3.M() && g1.N() == g3.N() {
		// Same size is possible, but identical edge sets would be alarming;
		// compare a few adjacency rows.
		same := true
		for v := graph.V(0); v < 20 && same; v++ {
			a, b := g1.OutNeighbors(v), g3.OutNeighbors(v)
			if len(a) != len(b) {
				same = false
				break
			}
			for i := range a {
				if a[i] != b[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Error("different seeds produced identical graphs")
		}
	}
}

func TestRandomSeeds(t *testing.T) {
	g := PreferentialAttachment(200, 2, true, rng.New(10))
	seeds, err := RandomSeeds(g, 10, true, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 10 {
		t.Fatalf("got %d seeds", len(seeds))
	}
	seen := map[graph.V]bool{}
	for _, s := range seeds {
		if seen[s] {
			t.Fatal("duplicate seed")
		}
		seen[s] = true
		if g.OutDegree(s) == 0 {
			t.Fatal("seed with zero out-degree despite requireOut")
		}
	}
	if _, err := RandomSeeds(g, g.N()+1, false, rng.New(12)); err == nil {
		t.Fatal("oversized seed request must error")
	}
}

func TestTopOutDegreeSeeds(t *testing.T) {
	g := PreferentialAttachment(300, 3, true, rng.New(20))
	seeds, err := TopOutDegreeSeeds(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 5 {
		t.Fatalf("got %d seeds", len(seeds))
	}
	// Non-increasing out-degree, and nothing outside the top block beats
	// the last pick.
	for i := 1; i < len(seeds); i++ {
		if g.OutDegree(seeds[i]) > g.OutDegree(seeds[i-1]) {
			t.Fatal("seeds not degree-sorted")
		}
	}
	last := g.OutDegree(seeds[4])
	chosen := map[graph.V]bool{}
	for _, s := range seeds {
		chosen[s] = true
	}
	for v := graph.V(0); int(v) < g.N(); v++ {
		if !chosen[v] && g.OutDegree(v) > last {
			t.Fatalf("vertex %d with degree %d beats the chosen tail %d", v, g.OutDegree(v), last)
		}
	}
	if _, err := TopOutDegreeSeeds(g, g.N()+1); err == nil {
		t.Fatal("oversized request must error")
	}
}

func TestExtractNeighborhood(t *testing.T) {
	g := PreferentialAttachment(500, 3, true, rng.New(13))
	sub, old := ExtractNeighborhood(g, 7, 60)
	if sub.N() < 60 {
		t.Fatalf("extracted %d vertices, want >= 60", sub.N())
	}
	if old[0] != 7 {
		t.Fatalf("start vertex not first: %v", old[0])
	}
	// Induced edges preserve adjacency: spot-check a few.
	for newU := graph.V(0); newU < 10; newU++ {
		for _, newV := range sub.OutNeighbors(newU) {
			if !g.HasEdge(old[newU], old[newV]) {
				t.Fatalf("induced edge (%d,%d) missing in original", old[newU], old[newV])
			}
		}
	}
}

func TestTableIVFormat(t *testing.T) {
	out := TableIV(0.01, 1)
	for _, name := range Names() {
		if !contains(out, name) {
			t.Errorf("TableIV output missing %s", name)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestSortedByM(t *testing.T) {
	specs := SortedByM()
	for i := 1; i < len(specs); i++ {
		if specs[i].FullM < specs[i-1].FullM {
			t.Fatal("SortedByM not sorted")
		}
	}
}

// Property: generated graphs are structurally valid — no self loops, no
// out-of-range ids, degree bookkeeping consistent.
func TestGeneratorValidityProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, dirFlag bool) bool {
		n := int(nRaw)%400 + 10
		r := rng.New(seed)
		g := PreferentialAttachment(n, 2.5, dirFlag, r)
		if g.N() != n {
			return false
		}
		for _, e := range g.Edges() {
			if e.From == e.To || e.From < 0 || int(e.From) >= n || e.To < 0 || int(e.To) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestSkewedCascade pins the property the generator exists for: live-edge
// sample sizes from the gateway are heavy-tailed — the typical sample is a
// handful of vertices while the occasional chain hit spans a large fraction
// of the graph — and construction is deterministic in the seed.
func TestSkewedCascade(t *testing.T) {
	const n = 4000
	g := SkewedCascade(n, 8, 0.05, 0.02, rng.New(9))
	if g.N() != n {
		t.Fatalf("n = %d, want %d", g.N(), n)
	}
	if g2 := SkewedCascade(n, 8, 0.05, 0.02, rng.New(9)); g2.M() != g.M() {
		t.Fatalf("not deterministic: m %d vs %d", g.M(), g2.M())
	}

	s := cascade.NewIC(g)
	ws := s.NewWorkspace()
	base := rng.New(10)
	sizes := make([]int, 0, 400)
	for i := 0; i < 400; i++ {
		sizes = append(sizes, s.Sample(0, nil, base.Split(uint64(i)), ws).K)
	}
	sort.Ints(sizes)
	med, max := sizes[len(sizes)/2], sizes[len(sizes)-1]
	if max < n/10 {
		t.Errorf("largest sample spans %d of %d vertices; the long chain never fired", max, n)
	}
	if med > n/100 {
		t.Errorf("median sample size %d: typical samples should be tiny (n=%d)", med, n)
	}
}
