package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/imin-dev/imin/internal/core"
	"github.com/imin-dev/imin/internal/datasets"
	"github.com/imin-dev/imin/internal/diag"
	"github.com/imin-dev/imin/internal/dynamic"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/obs"
	"github.com/imin-dev/imin/internal/rng"
	"github.com/imin-dev/imin/internal/store"
)

// Config tunes a Server. The zero value is serviceable: all cores, a
// session cache of 8 graphs, the paper's default θ, and no file loading.
type Config struct {
	// MaxConcurrent bounds the solve worker pool: at most this many solves
	// (plus their spread evaluations) run at once, the rest queue on the
	// request context. Default GOMAXPROCS.
	MaxConcurrent int
	// MaxSessions bounds the warm-session LRU. Default 8.
	MaxSessions int
	// SolveWorkers is the per-solve parallelism handed to the estimator
	// (Options.Workers). Default 0 = all cores.
	SolveWorkers int
	// DomAlgo selects the dominator algorithm for every session.
	DomAlgo core.DomAlgo
	// DefaultTimeout caps solves that do not set timeout_ms; 0 = none.
	DefaultTimeout time.Duration
	// DefaultTheta, DefaultMCSRounds and DefaultEvalRounds fill unset
	// request fields. Defaults 10000, 10000, 2000.
	DefaultTheta      int
	DefaultMCSRounds  int
	DefaultEvalRounds int
	// MaxTheta and MaxEvalRounds clamp the per-request sample counts (one
	// estimation round is not cancelable, so unbounded values would let a
	// single request burn CPU past any timeout). Defaults 1e6 and 50000.
	MaxTheta      int
	MaxEvalRounds int
	// MaxGraphSize rejects generator registrations whose vertex count or
	// estimated edge count exceeds it, and MaxGraphs bounds how many
	// graphs may be registered at all — the registry holds whole graphs
	// in memory forever, so neither one oversized POST nor many
	// right-sized ones may OOM the daemon. Defaults 20e6 and 64.
	// (Files are bounded by DataDir contents, datasets by Scale <= 1.)
	MaxGraphSize int
	MaxGraphs    int
	// MaxBatchItems caps the item count of one solve-batch request: items
	// run through the same bounded solve pool as single requests, but each
	// admitted batch holds its unfinished items queued in memory. Default 64.
	MaxBatchItems int
	// MaxMutations caps the operations of one mutation batch; a batch is
	// committed atomically, so its tentative state is held in memory in
	// full. Default 100000.
	MaxMutations int
	// MaxQueueWait bounds how long a solve or mutate request may sit in an
	// admission queue (the per-graph session queue and the bounded solve
	// pool). Past the bound the request is shed with 429 + Retry-After
	// instead of holding a connection open indefinitely. 0 = unbounded.
	MaxQueueWait time.Duration
	// CheckpointRetries and CheckpointRetryBackoff govern background
	// checkpoints that fail with a transient error (ENOSPC and friends):
	// up to CheckpointRetries extra attempts, doubling the backoff between
	// them. Permanent errors are never retried. Defaults 3 and 250ms.
	CheckpointRetries      int
	CheckpointRetryBackoff time.Duration
	// HealBackoff and HealMaxBackoff pace the self-heal loop of a degraded
	// graph: the first heal attempt runs after HealBackoff, doubling up to
	// HealMaxBackoff until a checkpoint succeeds. Defaults 100ms and 5s.
	HealBackoff    time.Duration
	HealMaxBackoff time.Duration
	// DisableDegraded restores the legacy behavior for persistence
	// failures: a plain 500 with no degraded read-only mode and no
	// self-heal. Kept as an escape hatch; degraded mode is the default.
	DisableDegraded bool
	// DataDir is the only directory path-based graph registration may read
	// from; empty disables file loading entirely.
	DataDir string
	// Store, when set, makes the registry durable: registrations and
	// mutation batches are written through to its WAL/snapshot state
	// before they are acknowledged, and Recover restores graphs from it
	// at startup. Nil keeps the server fully in-memory.
	Store *store.Store
	// Metrics is the registry GET /metrics exposes and every instrument
	// registers into. Pass the same registry to store.Config.Metrics so the
	// WAL timing histograms land on the same scrape. Nil creates a private
	// registry.
	Metrics *obs.Registry
	// Logger receives the structured request/operational log lines. Nil
	// uses slog.Default().
	Logger *slog.Logger
	// TraceRing is the capacity of the in-memory ring of recent solve
	// traces served by GET /debug/traces. 0 uses the default (256);
	// negative disables tracing entirely, which also makes the per-solve
	// span bookkeeping allocation-free.
	TraceRing int
	// SLOSolve and SLOMutate are per-route latency objectives. A request
	// that exceeds its objective counts an imind_slo_breaches_total breach
	// and — when DiagDir is set — captures a diagnostic bundle. 0 disables
	// the watchdog for that route.
	SLOSolve  time.Duration
	SLOMutate time.Duration
	// DiagDir enables the flight recorder: SLO breaches and degraded-mode
	// entries capture a diagnostic bundle (offending trace, recent trace
	// ring, metrics snapshot, goroutine + heap profiles, build info),
	// written atomically under this directory and served by
	// GET /debug/bundles. Empty disables capture.
	DiagDir string
	// DiagMaxBundles bounds bundle retention (oldest deleted past it;
	// default 16). DiagCooldown spaces captures so a breach storm cannot
	// churn the directory (default 30s; negative disables the cooldown).
	DiagMaxBundles int
	DiagCooldown   time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 8
	}
	if c.DefaultTheta <= 0 {
		c.DefaultTheta = 10000
	}
	if c.DefaultMCSRounds <= 0 {
		c.DefaultMCSRounds = 10000
	}
	if c.DefaultEvalRounds <= 0 {
		c.DefaultEvalRounds = 2000
	}
	if c.MaxTheta <= 0 {
		c.MaxTheta = 1_000_000
	}
	if c.MaxEvalRounds <= 0 {
		c.MaxEvalRounds = 50_000
	}
	if c.MaxGraphSize <= 0 {
		c.MaxGraphSize = 20_000_000
	}
	if c.MaxGraphs <= 0 {
		c.MaxGraphs = 64
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 64
	}
	if c.MaxMutations <= 0 {
		c.MaxMutations = 100_000
	}
	if c.CheckpointRetries <= 0 {
		c.CheckpointRetries = 3
	}
	if c.CheckpointRetryBackoff <= 0 {
		c.CheckpointRetryBackoff = 250 * time.Millisecond
	}
	if c.HealBackoff <= 0 {
		c.HealBackoff = 100 * time.Millisecond
	}
	if c.HealMaxBackoff <= 0 {
		c.HealMaxBackoff = 5 * time.Second
	}
	if c.TraceRing == 0 {
		c.TraceRing = 256
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server is the HTTP front end. Create with New, mount Handler on an
// http.Server.
type Server struct {
	cfg      Config
	registry *Registry
	sessions *SessionCache
	sem      chan struct{}
	regSem   chan struct{} // serializes graph builds: N concurrent registrations must not hold N graphs transiently
	mux      *http.ServeMux
	started  time.Time

	// metrics holds every runtime instrument; /stats and /metrics both
	// read from it, so the two views cannot drift. traces is the bounded
	// ring behind /debug/traces (nil when tracing is disabled). diag is
	// the flight recorder behind /debug/bundles (nil when DiagDir is
	// unset).
	metrics *serverMetrics
	logger  *slog.Logger
	traces  *obs.TraceRing
	diag    *diag.Recorder

	// Robustness accounting and background-goroutine lifecycle: stopHeal
	// cancels self-heal and checkpoint-retry loops at Close, bgWG waits for
	// them so Close never races a checkpoint against Store.Close.
	stopHeal chan struct{}
	closed   atomic.Bool
	bgWG     sync.WaitGroup
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		registry: NewRegistry(cfg.MaxGraphs),
		sessions: NewSessionCache(cfg.MaxSessions, cfg.SolveWorkers, cfg.DomAlgo),
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		regSem:   make(chan struct{}, 1),
		mux:      http.NewServeMux(),
		started:  time.Now(),
		stopHeal: make(chan struct{}),
		metrics:  newServerMetrics(cfg.Metrics),
		logger:   cfg.Logger,
		traces:   obs.NewTraceRing(cfg.TraceRing),
	}
	if cfg.Store != nil {
		s.registry.AttachStore(cfg.Store)
	}
	if cfg.DiagDir != "" {
		reg := s.metrics.reg
		s.diag = diag.NewRecorder(diag.Config{
			Dir:        cfg.DiagDir,
			MaxBundles: cfg.DiagMaxBundles,
			Cooldown:   cfg.DiagCooldown,
			Logger:     cfg.Logger,
			Build:      buildVersion,
			Metrics: func() ([]byte, error) {
				var b bytes.Buffer
				if err := reg.WritePrometheus(&b); err != nil {
					return nil, err
				}
				return b.Bytes(), nil
			},
		})
	}
	s.metrics.registerDerived(s)
	registerBuildInfo(s.metrics.reg)
	s.mux.HandleFunc("POST /graphs", s.handleRegister)
	s.mux.HandleFunc("GET /graphs", s.handleList)
	s.mux.HandleFunc("GET /graphs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /graphs/{id}", s.handleDelete)
	s.mux.HandleFunc("POST /graphs/{id}/solve", s.handleSolve)
	s.mux.HandleFunc("POST /graphs/{id}/solve-batch", s.handleSolveBatch)
	s.mux.HandleFunc("POST /graphs/{id}/mutate", s.handleMutate)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/traces", s.handleTraces)
	s.mux.HandleFunc("GET /debug/bundles", s.handleBundles)
	s.mux.HandleFunc("GET /debug/bundles/{id}", s.handleBundle)
	s.mux.HandleFunc("GET /version", s.handleVersion)
	return s
}

// Recover restores every graph the durable store holds and registers it.
// Call once at startup, before serving. Without a store it is a no-op.
func (s *Server) Recover() ([]*store.Recovered, error) {
	if s.cfg.Store == nil {
		return nil, nil
	}
	recs, err := s.cfg.Store.Recover()
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		if _, err := s.registry.RegisterRecovered(rec); err != nil {
			return nil, fmt.Errorf("registering recovered graph %q: %w", rec.Name, err)
		}
	}
	return recs, nil
}

// Close flushes durable state for shutdown: every graph's WAL is fsynced
// and a final checkpoint taken (so the next start replays nothing), then
// the store is closed. Call after the HTTP listener has drained — pending
// handlers append to the WAL, and anything they acknowledged must be on
// disk before the process exits. Without a store it is a no-op.
func (s *Server) Close() error {
	if s.closed.CompareAndSwap(false, true) {
		close(s.stopHeal)
	}
	// Wait out self-heal and checkpoint-retry goroutines: they hold graph
	// stores that are about to close underneath them.
	s.bgWG.Wait()
	if s.cfg.Store == nil {
		return nil
	}
	err := s.registry.SyncAndCheckpointAll()
	if cerr := s.cfg.Store.Close(); err == nil {
		err = cerr
	}
	return err
}

// Handler returns the route table wrapped in the observability middleware:
// request-ID assignment, structured request logs, HTTP metrics, and panic
// recovery — a panicking handler becomes a logged, correlatable 500 instead
// of tearing down the whole connection (and, under http.Serve, leaking a
// broken keep-alive).
func (s *Server) Handler() http.Handler { return s.withObs(s.mux) }

// Metrics exposes the instrument registry (tests, embedding servers).
func (s *Server) Metrics() *obs.Registry { return s.metrics.reg }

// degrade flips entry into degraded read-only mode and starts its
// self-heal loop. Idempotent: concurrent persistence failures of the same
// graph start exactly one healer.
func (s *Server) degrade(entry *GraphEntry, cause error) {
	if s.cfg.DisableDegraded {
		return
	}
	if !entry.markDegraded(cause.Error()) {
		return
	}
	s.metrics.degradedEnters.Inc()
	s.logger.Error("graph entered degraded read-only mode", "graph", entry.Name, "cause", cause.Error())
	// A degraded-mode entry is exactly the moment worth a flight-recorder
	// snapshot: the trace ring still holds the requests that led up to the
	// persistence failure.
	s.captureBundle(diag.Trigger{
		Reason: "degraded",
		Route:  "mutate",
		Graph:  entry.Name,
		Detail: cause.Error(),
	}, nil)
	s.bgWG.Add(1)
	go s.healLoop(entry)
}

// healLoop restores a degraded graph to writable: it retries a full
// checkpoint (fresh snapshot + new WAL generation, superseding the poisoned
// log) with doubling backoff until one succeeds. Writability is restored
// strictly AFTER the checkpoint's manifest durably covers the in-memory
// epoch — clearing earlier would let new appends land in a log whose base
// epoch recovery cannot reach, and the epoch-continuity check would then
// truncate acknowledged batches.
func (s *Server) healLoop(entry *GraphEntry) {
	defer s.bgWG.Done()
	backoff := s.cfg.HealBackoff
	for {
		select {
		case <-s.stopHeal:
			return
		case <-time.After(backoff):
		}
		if cur, ok := s.registry.Get(entry.Name); !ok || cur != entry {
			return // deleted or replaced while degraded; nothing left to heal
		}
		err := entry.checkpoint(context.Background())
		if err == nil {
			entry.clearDegraded()
			s.metrics.selfHeals.Inc()
			s.logger.Info("graph self-healed: fresh checkpoint on a new WAL generation, writable again", "graph", entry.Name)
			return
		}
		if errors.Is(err, errCheckpointBusy) {
			continue // someone else's checkpoint may heal us; re-check soon
		}
		s.logger.Warn("self-heal checkpoint failed", "graph", entry.Name, "error", err.Error(), "next_attempt_in", backoff)
		if backoff *= 2; backoff > s.cfg.HealMaxBackoff {
			backoff = s.cfg.HealMaxBackoff
		}
	}
}

// backgroundCheckpoint runs a threshold-triggered checkpoint off the
// request path, retrying transient failures (ENOSPC and friends) a bounded
// number of times with doubling backoff. Permanent failures are not
// retried. Either way, if the attempts left the WAL poisoned the graph is
// degraded so the self-heal loop takes over. ctx only carries the
// triggering request's id into store/checkpoint log lines — pass a
// context.WithoutCancel so the client hanging up cannot cancel the
// checkpoint it triggered.
func (s *Server) backgroundCheckpoint(ctx context.Context, entry *GraphEntry) {
	s.bgWG.Add(1)
	go func() {
		defer s.bgWG.Done()
		backoff := s.cfg.CheckpointRetryBackoff
		var err error
		for attempt := 0; ; attempt++ {
			err = entry.Checkpoint(ctx)
			if err == nil {
				return
			}
			s.logger.Warn("background checkpoint failed",
				"graph", entry.Name, "attempt", attempt+1, "request_id", RequestID(ctx),
				"class", store.Classify(err).String(), "error", err.Error())
			if attempt >= s.cfg.CheckpointRetries || !store.IsTransient(err) {
				break
			}
			select {
			case <-s.stopHeal:
				return
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		if entry.gs != nil && entry.gs.Poisoned() {
			s.degrade(entry, fmt.Errorf("background checkpoint poisoned the WAL: %w", err))
		}
	}()
}

// queueContext bounds admission-queue waits per MaxQueueWait. The returned
// cancel must run once the request is admitted — the bound applies to
// queueing only, never to the solve itself.
func (s *Server) queueContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.cfg.MaxQueueWait <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, s.cfg.MaxQueueWait)
}

// shedOrCanceled classifies an admission-queue failure: the client gave up
// (503, their context died) versus the server shed the request because the
// queue wait exceeded MaxQueueWait (429 — the server is saturated and the
// client should back off and retry).
func (s *Server) shedOrCanceled(ctx context.Context, what string) *apiError {
	if ctx.Err() != nil {
		return apiErrorf(http.StatusServiceUnavailable, "request canceled while queued for %s", what)
	}
	s.metrics.sheds.Inc()
	return apiErrorf(http.StatusTooManyRequests, "overloaded: wait for %s exceeded %v; retry later", what, s.cfg.MaxQueueWait)
}

// Registry exposes the graph registry, e.g. for preloading at startup.
func (s *Server) Registry() *Registry { return s.registry }

// Sessions exposes the warm-session cache (tests, metrics).
func (s *Server) Sessions() *SessionCache { return s.sessions }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing left to do on error
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the load-balancer probe: 200 only when every graph is
// fully writable. A degraded graph still serves reads (healthz stays 200,
// the process is alive), but routers that need full service can drain on
// the 503 here until self-heal completes.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	degraded := s.degradedGraphs()
	if len(degraded) == 0 {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
		return
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"status":          "degraded",
		"degraded_graphs": degraded,
	})
}

func (s *Server) degradedGraphs() []string {
	var names []string
	for _, info := range s.registry.List() {
		if info.Degraded {
			names = append(names, info.Name)
		}
	}
	return names
}

// handleStats answers GET /stats. Every event-driven number is read from
// the same obs instruments GET /metrics exposes — the JSON view is a
// projection of the metrics registry, never a second set of counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	m := s.metrics
	batches, mutations, compactions := s.registry.MutationTotals()
	var persist *PersistStats
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		persist = &PersistStats{
			FsyncPolicy:        string(s.cfg.Store.Fsync()),
			WALAppends:         st.WALAppends,
			WALBytes:           st.WALBytes,
			WALFsyncs:          st.WALFsyncs,
			Checkpoints:        st.Checkpoints,
			CheckpointFailures: st.CheckpointFailures,
			RecoveredGraphs:    st.RecoveredGraphs,
			ReplayedBatches:    st.ReplayedBatches,
			TruncatedTails:     st.TruncatedTails,
			DegradedGraphs:     s.degradedGraphs(),
			DegradedEnters:     m.degradedEnters.Int(),
			SelfHeals:          m.selfHeals.Int(),
		}
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Sheds:         m.sheds.Int(),
		Panics:        m.panics.Int(),
		Graphs:        s.registry.Len(),
		Sessions:      s.sessions.Stats(),
		Persist:       persist,
		InFlight:      m.inFlight.Int(),
		MaxConcurrent: s.cfg.MaxConcurrent,
		UptimeSeconds: time.Since(s.started).Seconds(),
		Mutations: MutationStats{
			Batches:          batches,
			Mutations:        mutations,
			Compactions:      compactions,
			SessionsAdvanced: m.sessionsAdvanced.Int(),
			SessionsReset:    m.sessionsReset.Int(),
			PoolsRepaired:    m.poolsRepaired.Int(),
			PoolsDropped:     m.poolsDropped.Int(),
			SamplesRedrawn:   m.samplesRedrawn.Int(),
			SamplesKept:      m.samplesKept.Int(),
		},
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.registry.List())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	e, ok := s.registry.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown graph %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, e.Info())
}

// maxBodyBytes caps request bodies: the graph-size/count/sample caps are
// pointless if a multi-gigabyte JSON body can OOM the decoder first. 8 MB
// still fits about a million explicit seed ids.
const maxBodyBytes = 8 << 20

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterGraphRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	// Fail fast on a bad name, a taken name, or a full registry before
	// paying for a graph build. Register re-checks authoritatively under
	// its own lock; these pre-checks only avoid building doomed graphs.
	if err := ValidateName(req.Name); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if _, taken := s.registry.Get(req.Name); taken {
		writeErr(w, http.StatusConflict, "graph %q: %v", req.Name, ErrDuplicate)
		return
	}
	if s.registry.Len() >= s.cfg.MaxGraphs {
		writeErr(w, http.StatusInsufficientStorage, "%v (limit %d)", ErrFull, s.cfg.MaxGraphs)
		return
	}
	// One build at a time: the caps bound each graph, this bounds how many
	// not-yet-registered graphs can exist transiently.
	select {
	case s.regSem <- struct{}{}:
		defer func() { <-s.regSem }()
	case <-r.Context().Done():
		writeErr(w, http.StatusServiceUnavailable, "request canceled while queued for registration")
		return
	}
	g, source, model, err := s.buildGraph(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	e, err := s.registry.Register(req.Name, g, source, model)
	switch {
	case errors.Is(err, ErrDuplicate):
		writeErr(w, http.StatusConflict, "%v", err)
		return
	case errors.Is(err, ErrFull):
		writeErr(w, http.StatusInsufficientStorage, "%v", err)
		return
	case errors.Is(err, ErrPersist):
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, e.Info())
}

// handleDelete answers DELETE /graphs/{id}: the graph is unregistered, its
// warm sessions dropped (a future graph under the freed name must never
// inherit this one's solver state), and its durable on-disk state removed.
// In-flight solves holding the old entry finish on their immutable
// snapshots and release the memory.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("id")
	e, err := s.registry.Remove(name)
	if err != nil && e == nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	s.sessions.Drop(name)
	if err != nil {
		// The name is unregistered but disk state may linger; surface it.
		writeErr(w, http.StatusInternalServerError, "graph %q unregistered, but: %v", name, err)
		return
	}
	writeJSON(w, http.StatusOK, DeleteResponse{Graph: name, Deleted: true, Epoch: e.Dyn.Epoch()})
}

// buildGraph materializes the requested graph, a provenance string, and
// the normalized probability model it applied.
func (s *Server) buildGraph(req RegisterGraphRequest) (*graph.Graph, string, string, error) {
	sources := 0
	for _, set := range []bool{req.Path != "", req.Dataset != "", req.Generator != ""} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, "", "", fmt.Errorf("set exactly one of path, dataset, generator")
	}

	var g *graph.Graph
	var source string
	generated := true
	switch {
	case req.Path != "":
		generated = false
		var err error
		g, source, err = s.loadGraphFile(req)
		if err != nil {
			return nil, "", "", err
		}
	case req.Dataset != "":
		spec, ok := datasets.ByName(req.Dataset)
		if !ok {
			return nil, "", "", fmt.Errorf("unknown dataset %q (have %v)", req.Dataset, datasets.Names())
		}
		scale := req.Scale
		if scale == 0 {
			scale = 0.02
		}
		if scale <= 0 || scale > 1 {
			return nil, "", "", fmt.Errorf("scale %v out of (0,1]", scale)
		}
		// The stand-in's size is known from the spec before any
		// allocation; hold it to the same cap as the generators.
		estN := float64(spec.FullN) * scale
		estM := float64(spec.FullM) * scale
		if !spec.Directed {
			estM *= 2 // undirected edges materialize in both directions
		}
		if estN > float64(s.cfg.MaxGraphSize) || estM > float64(s.cfg.MaxGraphSize) {
			return nil, "", "", fmt.Errorf("graph too large: %s at scale %g is ~%.0f vertices / ~%.0f edges, exceeding the server cap of %d",
				spec.Name, scale, estN, estM, s.cfg.MaxGraphSize)
		}
		g = spec.Generate(scale, req.Seed)
		source = fmt.Sprintf("dataset %s @ %g", spec.Name, scale)
	default:
		var err error
		g, source, err = generateGraph(req, s.cfg.MaxGraphSize)
		if err != nil {
			return nil, "", "", err
		}
	}

	model := req.ProbModel
	if model == "" {
		if generated {
			model = "TR"
		} else {
			model = "keep"
		}
	}
	model = strings.ToUpper(model)
	switch model {
	case "TR":
		g = graph.Trivalency.Assign(g, rng.New(req.Seed^0x7112))
		source += ", TR"
	case "WC":
		g = graph.WeightedCascade.Assign(g, nil)
		source += ", WC"
	case "KEEP":
		model = "keep"
	default:
		return nil, "", "", fmt.Errorf("unknown prob_model %q (want TR, WC or keep)", req.ProbModel)
	}
	return g, source, model, nil
}

// loadGraphFile reads an edge-list or binary graph file confined to the
// configured data directory.
func (s *Server) loadGraphFile(req RegisterGraphRequest) (*graph.Graph, string, error) {
	if s.cfg.DataDir == "" {
		return nil, "", fmt.Errorf("file loading disabled: server started without a data directory")
	}
	full := filepath.Join(s.cfg.DataDir, filepath.Clean("/"+req.Path))
	rel, err := filepath.Rel(s.cfg.DataDir, full)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return nil, "", fmt.Errorf("path %q escapes the data directory", req.Path)
	}
	if strings.HasSuffix(full, ".bin") {
		g, err := graph.ReadBinaryFile(full)
		if err != nil {
			return nil, "", fmt.Errorf("read %s: %v", rel, err)
		}
		return g, "file " + rel, nil
	}
	g, _, err := graph.ReadEdgeListFile(full, graph.ReadOptions{Undirected: req.Undirected})
	if err != nil {
		return nil, "", fmt.Errorf("read %s: %v", rel, err)
	}
	return g, "file " + rel, nil
}

func generateGraph(req RegisterGraphRequest, maxSize int) (*graph.Graph, string, error) {
	// Each branch re-states its generator's panic preconditions as 400s:
	// a remote request must never reach a datasets panic.
	var (
		estEdges float64
		source   string
		build    func(*rng.Source) *graph.Graph
	)
	undirected := !req.Directed
	switch req.Generator {
	case "preferential-attachment":
		if req.N < 2 {
			return nil, "", fmt.Errorf("preferential-attachment needs n >= 2")
		}
		epv := req.EdgesPerVertex
		if epv <= 0 {
			epv = 5
		}
		estEdges = float64(req.N) * epv
		source = fmt.Sprintf("preferential-attachment n=%d epv=%g", req.N, epv)
		build = func(r *rng.Source) *graph.Graph {
			return datasets.PreferentialAttachment(req.N, epv, req.Directed, r)
		}
	case "erdos-renyi":
		if req.N < 2 {
			return nil, "", fmt.Errorf("erdos-renyi needs n >= 2")
		}
		if req.M <= 0 {
			return nil, "", fmt.Errorf("erdos-renyi needs m > 0")
		}
		estEdges = float64(req.M)
		source = fmt.Sprintf("erdos-renyi n=%d m=%d", req.N, req.M)
		build = func(r *rng.Source) *graph.Graph {
			return datasets.ErdosRenyi(req.N, req.M, req.Directed, r)
		}
	case "watts-strogatz":
		k := req.K
		if k <= 0 {
			k = 4
		}
		if req.N < 2*k+1 {
			return nil, "", fmt.Errorf("watts-strogatz needs n > 2k (n=%d, k=%d)", req.N, k)
		}
		if req.Directed {
			return nil, "", fmt.Errorf("watts-strogatz graphs are undirected; omit directed")
		}
		undirected = true
		estEdges = float64(req.N) * float64(k)
		source = fmt.Sprintf("watts-strogatz n=%d k=%d beta=%g", req.N, k, req.Beta)
		build = func(r *rng.Source) *graph.Graph {
			return datasets.WattsStrogatz(req.N, k, req.Beta, r)
		}
	default:
		return nil, "", fmt.Errorf("unknown generator %q (want preferential-attachment, erdos-renyi or watts-strogatz)", req.Generator)
	}
	if undirected {
		estEdges *= 2 // undirected edges materialize in both directions
	}
	// Size-check from the request alone, before any allocation.
	if float64(req.N) > float64(maxSize) || estEdges > float64(maxSize) {
		return nil, "", fmt.Errorf("graph too large: %d vertices / ~%.0f edges exceed the server cap of %d", req.N, estEdges, maxSize)
	}
	return build(rng.New(req.Seed)), source, nil
}

// handleMutate answers POST /graphs/{id}/mutate: an NDJSON stream of
// mutation operations committed as one atomic batch. On success the graph's
// epoch advances and any warm sessions for the graph are eagerly migrated —
// their cached sample pools repaired in place rather than rebuilt — so the
// next solve after a mutation is as warm as the one before it. The response
// reports the new epoch, per-operation counts, and the repair statistics.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.registry.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown graph %q", r.PathValue("id"))
		return
	}
	mutateStart := time.Now()
	defer func() { s.noteMutateSLO(r.Context(), entry.Name, time.Since(mutateStart)) }()
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	var muts []dynamic.Mutation
	for {
		var m dynamic.Mutation
		if err := dec.Decode(&m); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			writeErr(w, http.StatusBadRequest, "mutation %d: %v", len(muts), err)
			return
		}
		muts = append(muts, m)
		if len(muts) > s.cfg.MaxMutations {
			writeErr(w, http.StatusBadRequest, "batch exceeds the server cap of %d mutations", s.cfg.MaxMutations)
			return
		}
	}
	if len(muts) == 0 {
		writeErr(w, http.StatusBadRequest, "empty batch: at least one mutation line is required")
		return
	}
	// Write-through: the batch is committed in memory AND appended to the
	// write-ahead log (fsynced per policy) before the 200 goes out. A
	// persistence failure flips the graph into degraded read-only mode:
	// the in-memory commit already happened and the self-heal checkpoint
	// will carry it into the next durable snapshot, but the server could
	// not promise durability at ack time, so the client gets a 503 +
	// Retry-After rather than a 200. Further mutations are rejected with
	// the same 503 until self-heal restores writability. DisableDegraded
	// keeps the legacy plain 500 instead.
	commitStart := time.Now()
	info, err := entry.Commit(r.Context(), muts)
	s.metrics.mutateSeconds.Observe(time.Since(commitStart).Seconds())
	if errors.Is(err, ErrDegraded) {
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if errors.Is(err, ErrPersist) {
		if s.cfg.DisableDegraded {
			writeErr(w, http.StatusInternalServerError, "%v", err)
			return
		}
		s.degrade(entry, err)
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, "%v (graph is now degraded read-only while a self-heal checkpoint runs)", err)
		return
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Checkpoint in the background once the WAL outgrows its threshold:
	// snapshot the current epoch, rotate the log, truncate the prefix the
	// snapshot covers. At most one checkpoint per graph runs at a time
	// (Checkpoint self-limits); the mutate path never waits on it.
	if entry.NeedsCheckpoint() {
		s.backgroundCheckpoint(context.WithoutCancel(r.Context()), entry)
	}

	// Eagerly migrate the graph's warm sessions so the repair cost is paid
	// here, once, instead of on the first solve of every session. Repair is
	// CPU work (parallel redraw of dirty samples), so it holds a slot of
	// the bounded solve pool like any other heavy operation — concurrent
	// mutate requests cannot multiply CPU past MaxConcurrent. Sessions busy
	// past the client's patience are skipped — the solve path migrates
	// lazily on its next request.
	// Lock order matches the solve path — session first, then solve slot —
	// so a mutate migration can never hold the slot a session-holding solve
	// is waiting for.
	// The waits run under the queue bound like solve admission, but a
	// timeout here is not a shed: the batch is already committed and acked
	// below, so an overloaded pool just skips the eager migration.
	var rep RepairStats
	queueCtx, cancelQueue := s.queueContext(r.Context())
	for _, diffusion := range []core.Diffusion{core.DiffusionIC, core.DiffusionLT} {
		sess, ok := s.sessions.Lookup(SessionKey{Graph: entry.Name, Diffusion: diffusion})
		if !ok {
			continue
		}
		lh, err := sess.Acquire(queueCtx)
		if err != nil {
			break
		}
		select {
		case s.sem <- struct{}{}:
			s.migrateSession(lh, entry, &rep)
			<-s.sem
		case <-queueCtx.Done():
		}
		lh.Release()
	}
	cancelQueue()

	writeJSON(w, http.StatusOK, MutateResponse{
		Graph:           entry.Name,
		Epoch:           info.Epoch,
		Applied:         info.Applied,
		EdgesAdded:      info.EdgesAdded,
		EdgesRemoved:    info.EdgesRemoved,
		ProbsChanged:    info.ProbsChanged,
		VerticesAdded:   info.VerticesAdded,
		VerticesRemoved: info.VerticesRemoved,
		ChangedSources:  len(info.ChangedSources),
		Compacted:       info.Compacted,
		Vertices:        info.N,
		Edges:           info.M,
		Repair:          rep,
	})
}

// migrateSession moves an acquired session to the entry's current epoch:
// incremental Advance when the changelog still reaches the session's epoch,
// full Reset otherwise. The current snapshot is re-read under the session
// lock — epochs are monotone and sessions only ever migrate forward, so a
// request that raced past a concurrent commit cannot drag a session back to
// the older snapshot it started from. Folds the outcome into rep and the
// server's cumulative counters.
func (s *Server) migrateSession(lh *core.LockedSession, entry *GraphEntry, rep *RepairStats) {
	g, epoch := entry.Current()
	if lh.Epoch() >= epoch {
		return
	}
	start := time.Now()
	defer func() { s.metrics.repairSeconds.Observe(time.Since(start).Seconds()) }()
	sources, targets, ok := entry.Dyn.ChangedSince(lh.Epoch())
	if !ok {
		lh.Reset(g, epoch)
		rep.SessionsReset++
		s.metrics.sessionsReset.Inc()
		return
	}
	st := lh.Advance(g, epoch, sources, targets)
	rep.SessionsAdvanced++
	rep.PoolsRepaired += st.PoolsRepaired
	rep.PoolsDropped += st.PoolsDropped
	rep.SamplesRedrawn += st.SamplesRedrawn
	rep.SamplesKept += st.SamplesKept
	s.metrics.sessionsAdvanced.Inc()
	s.metrics.poolsRepaired.Add(float64(st.PoolsRepaired))
	s.metrics.poolsDropped.Add(float64(st.PoolsDropped))
	s.metrics.samplesRedrawn.Add(float64(st.SamplesRedrawn))
	s.metrics.samplesKept.Add(float64(st.SamplesKept))
}

var validAlgorithms = map[core.Algorithm]bool{
	core.Rand:           true,
	core.OutDegree:      true,
	core.BaselineGreedy: true,
	core.AdvancedGreedy: true,
	core.GreedyReplace:  true,
}

// apiError carries an HTTP status code with its message through the solve
// path, so the same validation and solve logic serves the single-solve
// endpoint (status → response code) and the batch stream (status folded
// into the per-item error line).
type apiError struct {
	code int
	msg  string
}

func apiErrorf(code int, format string, args ...any) *apiError {
	return &apiError{code: code, msg: fmt.Sprintf(format, args...)}
}

// writeAPIErr sends an apiError, attaching Retry-After to the retryable
// statuses (shed 429s and degraded/overload 503s) so well-behaved clients
// back off instead of hammering.
func writeAPIErr(w http.ResponseWriter, aerr *apiError) {
	if aerr.code == http.StatusTooManyRequests || aerr.code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeErr(w, aerr.code, "%s", aerr.msg)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.registry.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown graph %q", r.PathValue("id"))
		return
	}
	var req SolveRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	resp, aerr := s.solveOne(r.Context(), entry, &req)
	if aerr != nil {
		writeAPIErr(w, aerr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSolveBatch answers POST /graphs/{id}/solve-batch: every item runs
// through the same admission path as a single solve (session queue first,
// then a slot in the bounded solve pool), sharing the graph's warm
// sessions, and results stream back as NDJSON lines in completion order.
// Streaming means the client sees item results while later items still
// run, and the response cannot carry a late status code — per-item
// failures travel in the item line's "error" field instead.
func (s *Server) handleSolveBatch(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.registry.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown graph %q", r.PathValue("id"))
		return
	}
	var req BatchSolveRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Items) == 0 {
		writeErr(w, http.StatusBadRequest, "empty batch: items is required")
		return
	}
	if len(req.Items) > s.cfg.MaxBatchItems {
		writeErr(w, http.StatusBadRequest, "batch of %d items exceeds the server cap of %d", len(req.Items), s.cfg.MaxBatchItems)
		return
	}

	ctx := r.Context()
	workers := min(len(req.Items), s.cfg.MaxConcurrent)
	idxCh := make(chan int)
	results := make(chan BatchItemResult)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range idxCh {
				item := BatchItemResult{Index: idx}
				itemStart := time.Now()
				resp, aerr := s.solveOne(ctx, entry, &req.Items[idx])
				s.metrics.batchItems.Observe(time.Since(itemStart).Seconds())
				if aerr != nil {
					item.Error = aerr.msg
				} else {
					item.Result = resp
				}
				results <- item
			}
		}()
	}
	go func() {
		defer close(idxCh)
		for i := range req.Items {
			select {
			case idxCh <- i:
			case <-ctx.Done():
				// Client gone: stop feeding unstarted items entirely.
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w) // no indent: one result per line
	for item := range results {
		// Check the request context between items: once the client
		// disconnects, nothing more is written — the channel is only
		// drained so the workers (whose in-flight solves are already being
		// canceled through ctx) can exit instead of blocking on send.
		if ctx.Err() != nil {
			continue
		}
		_ = enc.Encode(item)
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// maxRoundSpans caps the per-round children of one solve trace: a
// b=10000 solve must not turn every trace into a ten-thousand-node tree.
// Truncation is recorded as a "rounds_truncated" attr on the solve span.
const maxRoundSpans = 128

// solveOne validates one solve request and runs it against entry with
// warm-session reuse: the shared core of the solve and solve-batch
// endpoints. ctx queues and cancels exactly like a single request's.
//
// When tracing is on (ring enabled, or the request asked for an inline
// trace) the solve's phases are recorded as spans: queue.session →
// queue.slot → migrate → eval.before → solve (with per-round children) →
// eval.after. The finished trace lands in the ring even when the solve
// fails — shed and canceled requests are exactly the ones worth debugging.
func (s *Server) solveOne(ctx context.Context, entry *GraphEntry, req *SolveRequest) (resp *SolveResponse, aerr *apiError) {
	t0 := time.Now()
	cost := &diag.SolveCost{}
	var tr *obs.Trace
	// An armed solve SLO forces trace recording even with the ring off:
	// when the watchdog fires, the bundle must contain the offending trace.
	if req.Trace || s.traces.Enabled() || (s.diag != nil && s.cfg.SLOSolve > 0) {
		tr = obs.NewTrace("solve", entry.Name, RequestID(ctx))
	}
	defer func() {
		total := time.Since(t0)
		cost.TotalNS = total.Nanoseconds()
		if resp != nil {
			resp.Cost = cost
			s.observeCost(cost)
		}
		var out *obs.TraceOut
		if tr != nil {
			if aerr != nil {
				tr.SetAttr("error", aerr.msg)
				tr.SetAttr("status", aerr.code)
			}
			// Attach a value copy: the trace may be marshaled from the
			// ring by a concurrent scrape the moment Add returns.
			tr.SetAttr("cost", *cost)
			out = tr.Finish()
			s.traces.Add(out)
			if req.Trace && resp != nil {
				resp.Trace = out
			}
		}
		s.noteSolveSLO(ctx, entry.Name, total, out, aerr)
	}()
	if req.Budget < 0 {
		return nil, apiErrorf(http.StatusBadRequest, "negative budget %d", req.Budget)
	}
	if req.Workers < 0 {
		return nil, apiErrorf(http.StatusBadRequest, "negative workers %d", req.Workers)
	}
	alg := core.GreedyReplace
	if req.Algorithm != "" {
		alg = core.Algorithm(req.Algorithm)
		if !validAlgorithms[alg] {
			return nil, apiErrorf(http.StatusBadRequest, "unknown algorithm %q", req.Algorithm)
		}
	}
	var diffusion core.Diffusion
	switch strings.ToUpper(req.Model) {
	case "", "IC":
		diffusion = core.DiffusionIC
	case "LT":
		diffusion = core.DiffusionLT
	default:
		return nil, apiErrorf(http.StatusBadRequest, "unknown model %q (want IC or LT)", req.Model)
	}

	g, epoch := entry.Current()
	seeds, err := resolveSeeds(g, req)
	if err != nil {
		return nil, apiErrorf(http.StatusBadRequest, "%v", err)
	}

	key := SessionKey{Graph: entry.Name, Diffusion: diffusion}
	sess, hit := s.sessions.Acquire(key, g, epoch)

	// Both admission waits run under queueCtx so a saturated server sheds
	// queued work (429) after MaxQueueWait instead of accumulating an
	// unbounded backlog of parked requests.
	queueCtx, cancelQueue := s.queueContext(ctx)
	defer cancelQueue()

	// Queue for the (graph, model) session first: sessions serialize their
	// callers, and the wait costs no CPU, so it must not occupy a solve
	// slot — otherwise one hot graph's queue would hold every slot and
	// starve requests for all other graphs (head-of-line blocking).
	sessionQueued := time.Now()
	sessionSpan := tr.StartSpan("queue.session")
	lh, err := sess.Acquire(queueCtx)
	sessionSpan.End()
	cost.QueueSessionNS = time.Since(sessionQueued).Nanoseconds()
	s.metrics.queueWait.With("session").Observe(time.Since(sessionQueued).Seconds())
	if err != nil {
		return nil, s.shedOrCanceled(ctx, "the graph session")
	}
	defer lh.Release()

	// CPU admission: the bounded pool of actually-running solves. Safe to
	// wait while holding the session: slot holders are running, never
	// queued on a session themselves.
	slotQueued := time.Now()
	slotSpan := tr.StartSpan("queue.slot")
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-queueCtx.Done():
		slotSpan.End()
		cost.QueueSlotNS = time.Since(slotQueued).Nanoseconds()
		s.metrics.queueWait.With("slot").Observe(time.Since(slotQueued).Seconds())
		return nil, s.shedOrCanceled(ctx, "a solve slot")
	}
	slotSpan.End()
	cost.QueueSlotNS = time.Since(slotQueued).Nanoseconds()
	s.metrics.queueWait.With("slot").Observe(time.Since(slotQueued).Seconds())
	cancelQueue() // admitted; the queue bound must not cut the solve short
	s.metrics.inFlight.Inc()
	defer s.metrics.inFlight.Dec()

	// A session behind the graph's epoch migrates before solving — inside
	// the admission slot, since pool repair is CPU work like the solve
	// itself. Warm pools are repaired against the mutation changelog, so
	// the epochs a cache key spans never mix: every solve runs on exactly
	// the snapshot it reports.
	if lh.Epoch() != epoch {
		var rep RepairStats
		migrateStart := time.Now()
		migrateSpan := tr.StartSpan("migrate")
		s.migrateSession(lh, entry, &rep)
		migrateSpan.SetAttr("sessions_advanced", rep.SessionsAdvanced)
		migrateSpan.SetAttr("sessions_reset", rep.SessionsReset)
		migrateSpan.SetAttr("pools_repaired", rep.PoolsRepaired)
		migrateSpan.SetAttr("samples_redrawn", rep.SamplesRedrawn)
		migrateSpan.SetAttr("samples_kept", rep.SamplesKept)
		migrateSpan.End()
		cost.MigrateNS = time.Since(migrateStart).Nanoseconds()
		cost.SamplesRedrawn = rep.SamplesRedrawn
		cost.SamplesKept = rep.SamplesKept
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	theta := min(orDefault(req.Theta, s.cfg.DefaultTheta), s.cfg.MaxTheta)
	mcs := min(orDefault(req.MCSRounds, s.cfg.DefaultMCSRounds), s.cfg.MaxEvalRounds)
	workers := min(req.Workers, runtime.GOMAXPROCS(0))
	enc, encErr := poolEncoding(req.PoolEncoding)
	if encErr != nil {
		return nil, encErr
	}
	opt := core.Options{
		Theta:        theta,
		MCSRounds:    mcs,
		Seed:         req.Seed,
		Workers:      workers,
		Timeout:      timeout,
		ReuseSamples: req.ReuseSamples,
		PoolEncoding: enc,
	}
	// Per-round observer: metrics always, spans when tracing. The hook is
	// read-only — core guarantees the selection is bit-identical with or
	// without it (asserted by TestTracedSolveBitIdentity).
	var solveSpan *obs.Span // set right before lh.Solve; rounds attach to it
	m := s.metrics
	opt.OnRound = func(ri core.RoundInfo) {
		cost.AddRound(ri.Duration, ri.SamplesDirty, ri.SamplesStolen)
		m.roundSeconds.Observe(ri.Duration.Seconds())
		m.rounds.With(ri.Phase).Inc()
		m.dirtySamples.Add(float64(ri.SamplesDirty))
		m.stolenSamples.Add(float64(ri.SamplesStolen))
		if solveSpan != nil && solveSpan.ChildCount() < maxRoundSpans {
			sp := solveSpan.AddTimedChild("round", ri.Duration)
			sp.SetAttr("round", ri.Round)
			sp.SetAttr("phase", ri.Phase)
			sp.SetAttr("chosen", int(ri.Chosen))
			sp.SetAttr("dirty_samples", ri.SamplesDirty)
			if ri.SamplesStolen > 0 {
				sp.SetAttr("stolen_samples", ri.SamplesStolen)
			}
		}
	}

	evalRounds := req.EvalRounds
	if evalRounds == 0 {
		evalRounds = s.cfg.DefaultEvalRounds
	}
	if evalRounds > s.cfg.MaxEvalRounds {
		evalRounds = s.cfg.MaxEvalRounds
	}

	resp = &SolveResponse{
		Graph:           entry.Name,
		Algorithm:       string(alg),
		Model:           diffusionName(diffusion),
		Seeds:           verticesToInts(seeds),
		Theta:           theta,
		MCSRounds:       mcs,
		Workers:         workers,
		SessionCacheHit: hit,
		RequestID:       RequestID(ctx),
	}

	var before float64
	if evalRounds > 0 {
		evalStart := time.Now()
		evalSpan := tr.StartSpan("eval.before")
		before, err = evaluateSpread(ctx, lh, seeds, nil, evalRounds, opt)
		evalSpan.End()
		cost.EvalNS += time.Since(evalStart).Nanoseconds()
		if err != nil {
			return nil, apiErrorf(evalStatus(ctx), "spread evaluation: %v", err)
		}
	}

	solveSpan = tr.StartSpan("solve")
	res, err := lh.Solve(ctx, seeds, req.Budget, alg, opt)
	if solveSpan != nil {
		solveSpan.SetAttr("algorithm", string(alg))
		if res.Blockers != nil && len(res.Blockers) > maxRoundSpans {
			solveSpan.SetAttr("rounds_truncated", true)
		}
		solveSpan.End()
		solveSpan = nil // rounds of a later retry must not attach to an ended span
	}
	if err != nil {
		return nil, apiErrorf(evalStatus(ctx), "solve: %v", err)
	}
	m.solveSeconds.
		With(resp.Model, warmLabel(hit), encodingLabel(req.ReuseSamples, req.PoolEncoding)).
		Observe(res.Runtime.Seconds())
	cost.SolveNS = res.Runtime.Nanoseconds()
	cost.SamplesDrawn = res.SampledGraphs
	cost.MCSSimulations = res.MCSSimulations
	cost.PoolBytes, _, _ = sess.PoolStats()
	resp.Blockers = verticesToInts(res.Blockers)
	resp.SampledGraphs = res.SampledGraphs
	resp.MCSSimulations = res.MCSSimulations
	resp.SolveMS = float64(res.Runtime) / float64(time.Millisecond)
	resp.TimedOut = res.TimedOut
	resp.Canceled = res.Canceled

	if evalRounds > 0 && !resp.Canceled {
		evalStart := time.Now()
		evalSpan := tr.StartSpan("eval.after")
		after, err := evaluateSpread(ctx, lh, seeds, res.Blockers, evalRounds, opt)
		evalSpan.End()
		cost.EvalNS += time.Since(evalStart).Nanoseconds()
		if err != nil {
			return nil, apiErrorf(evalStatus(ctx), "spread evaluation: %v", err)
		}
		resp.SpreadBefore = &before
		resp.SpreadAfter = &after
		if before > 0 {
			pct := 100 * (before - after) / before
			resp.ReductionPct = &pct
		}
	}
	resp.TotalMS = float64(time.Since(t0)) / float64(time.Millisecond)
	return resp, nil
}

// evalChunk is the largest number of Monte-Carlo rounds run between
// context checks: one EvaluateSpread call is not cancelable, so the
// before/after spread reports run in chunks to stop burning CPU (and
// holding the worker slot and session) once the client is gone.
const evalChunk = 2000

// evaluateSpread is EvaluateSpread on an acquired session with
// cancellation, averaging independent chunks (each on its own rng stream)
// into one estimate.
func evaluateSpread(ctx context.Context, h *core.LockedSession, seeds, blockers []graph.V, rounds int, opt core.Options) (float64, error) {
	var total float64
	for done := 0; done < rounds; done += evalChunk {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		n := min(rounds-done, evalChunk)
		copt := opt
		copt.Seed = opt.Seed + uint64(done)*0x9e3779b97f4a7c15
		v, err := h.EvaluateSpread(seeds, blockers, n, copt)
		if err != nil {
			return 0, err
		}
		total += v * float64(n)
	}
	return total / float64(rounds), nil
}

// evalStatus maps a solve or evaluation failure to a status: a dead or
// timed-out client gets a best-effort 503, a bad problem a 400.
func evalStatus(ctx context.Context) int {
	if ctx.Err() != nil {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// orDefault substitutes def for unset (non-positive) request values.
func orDefault(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}

// resolveSeeds validates explicit seeds or draws the requested number of
// random ones.
func resolveSeeds(g *graph.Graph, req *SolveRequest) ([]graph.V, error) {
	if len(req.Seeds) > 0 {
		seeds := make([]graph.V, len(req.Seeds))
		for i, id := range req.Seeds {
			if id < 0 || id >= g.N() {
				return nil, fmt.Errorf("seed %d out of range [0,%d)", id, g.N())
			}
			seeds[i] = graph.V(id)
		}
		return seeds, nil
	}
	count := req.NumSeeds
	if count <= 0 {
		count = 1
	}
	return datasets.RandomSeeds(g, count, true, rng.New(req.Seed^0x5eed))
}

func diffusionName(d core.Diffusion) string {
	if d == core.DiffusionLT {
		return "LT"
	}
	return "IC"
}

// poolEncoding maps the request's pool_encoding field onto the core option.
func poolEncoding(s string) (core.PoolEncoding, *apiError) {
	switch s {
	case "", "flat":
		return core.PoolFlat, nil
	case "compressed":
		return core.PoolCompressed, nil
	default:
		return 0, apiErrorf(http.StatusBadRequest, "unknown pool_encoding %q (want \"flat\" or \"compressed\")", s)
	}
}

func verticesToInts(vs []graph.V) []int {
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = int(v)
	}
	return out
}
