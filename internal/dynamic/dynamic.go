// Package dynamic provides the mutable, epoch-versioned graph layer on top
// of the immutable CSR substrate in internal/graph.
//
// A dynamic.Graph wraps a compacted base CSR with a delta overlay: a map
// from vertex id to that vertex's complete current out-adjacency, populated
// only for vertices whose rows differ from the base. Mutation batches are
// committed atomically — the whole batch applies or none of it — and every
// committed batch advances a monotonically increasing epoch. Readers obtain
// an immutable *graph.Graph snapshot of the current epoch (memoized, so
// repeated reads between commits are free), which keeps the entire solver
// stack working unchanged on frozen CSRs while the service layer mutates
// topology underneath it.
//
// Once the overlay grows past a threshold (a fraction of the base edge
// count), a commit compacts: the current snapshot becomes the new base and
// the overlay empties, bounding both overlay memory and the per-commit
// merge cost at O(n + m + Δ) with Δ ≤ threshold.
//
// Each committed batch also records its changed sources (vertices whose
// out-adjacency changed) and changed targets (in-adjacency changed) in a
// bounded changelog. Those sets are what incremental sample-pool repair
// needs: an IC live-edge sample's rng replay only diverges if its reachable
// region contains a vertex whose out-row changed, and an LT replay
// additionally reads the in-rows of inspected vertices (covered by old
// in-neighbors of changed targets — core.RepairSetLT), so
// core.SamplePool.Repair redraws only the affected samples and keeps every
// other sample bit-identical. ChangedSince lets a warm session that is
// several epochs behind fetch the unions since its epoch, or learn that the
// changelog no longer reaches back that far (full rebuild required).
package dynamic

import (
	"fmt"
	"sort"
	"sync"

	"github.com/imin-dev/imin/internal/graph"
)

// Op names a mutation operation.
type Op string

const (
	// OpAddEdge inserts the directed edge (U,V) with probability P.
	// Fails if the edge already exists (use set-prob to update).
	OpAddEdge Op = "add-edge"
	// OpRemoveEdge deletes the directed edge (U,V). Fails if absent.
	OpRemoveEdge Op = "remove-edge"
	// OpSetProb updates the probability of the existing edge (U,V) to P.
	// Fails if the edge is absent.
	OpSetProb Op = "set-prob"
	// OpAddVertex appends one vertex; its id is the vertex count before the
	// operation. U, V and P are ignored.
	OpAddVertex Op = "add-vertex"
	// OpRemoveVertex deletes every in- and out-edge of U. The id itself is
	// kept as an isolated tombstone so all other vertex ids stay stable —
	// the invariant pool repair and warm sessions depend on.
	OpRemoveVertex Op = "remove-vertex"
)

// Mutation is one operation of a batch. The JSON form is the wire format of
// the service layer's NDJSON mutation stream.
type Mutation struct {
	Op Op      `json:"op"`
	U  graph.V `json:"u,omitempty"`
	V  graph.V `json:"v,omitempty"`
	P  float64 `json:"p,omitempty"`
}

// Config tunes a dynamic Graph. The zero value is serviceable.
type Config struct {
	// CompactFraction triggers compaction once the mutations applied since
	// the last compaction exceed this fraction of the base edge count.
	// Default 0.25.
	CompactFraction float64
	// CompactMinDeltas is the floor below which compaction never triggers,
	// so small graphs are not recompacted on every batch. Default 4096.
	CompactMinDeltas int
	// ChangelogLimit bounds how many committed batches keep their
	// changed-source sets for ChangedSince. Sessions further behind than
	// this must rebuild instead of repair. Default 256.
	ChangelogLimit int
}

func (c Config) withDefaults() Config {
	if c.CompactFraction <= 0 {
		c.CompactFraction = 0.25
	}
	if c.CompactMinDeltas <= 0 {
		c.CompactMinDeltas = 4096
	}
	if c.ChangelogLimit <= 0 {
		c.ChangelogLimit = 256
	}
	return c
}

// Stats is a counter snapshot for monitoring endpoints.
type Stats struct {
	Epoch              uint64 `json:"epoch"`
	Batches            int64  `json:"batches"`
	Mutations          int64  `json:"mutations"`
	Compactions        int64  `json:"compactions"`
	OverlayRows        int    `json:"overlay_rows"`
	DeltasSinceCompact int    `json:"deltas_since_compact"`
}

// CommitInfo reports one committed batch.
type CommitInfo struct {
	// Epoch is the graph's epoch after the batch.
	Epoch   uint64
	Applied int
	// Per-operation counts. EdgesRemoved includes edges dropped by
	// remove-vertex.
	EdgesAdded, EdgesRemoved, ProbsChanged int
	VerticesAdded, VerticesRemoved         int
	// ChangedSources are the vertices whose out-adjacency changed and
	// ChangedTargets those whose in-adjacency changed, both sorted
	// ascending. Together they drive pool repair: IC samples replay coins
	// only at reached vertices' out-rows (sources suffice), while LT
	// trigger draws also read the in-rows of inspected vertices, so the LT
	// criterion additionally covers in-neighbors of changed targets.
	ChangedSources []graph.V
	ChangedTargets []graph.V
	// Compacted reports whether this commit folded the overlay into a fresh
	// base CSR.
	Compacted bool
	// N and M are the vertex and edge counts after the batch.
	N, M int
}

type logEntry struct {
	epoch   uint64
	sources []graph.V // out-row changes, sorted ascending
	targets []graph.V // in-row changes, sorted ascending
}

// Graph is a mutable, epoch-versioned graph. Safe for concurrent use; reads
// (Snapshot, ChangedSince, accessors) take a shared lock, Commit an
// exclusive one.
type Graph struct {
	mu  sync.RWMutex
	cfg Config

	base *graph.Graph // compacted CSR the overlay is relative to
	n, m int          // current vertex and edge counts

	// rows[u], when present, is u's complete current out-adjacency
	// (target → probability), replacing u's base row entirely.
	rows map[graph.V]map[graph.V]float64

	epoch              uint64
	deltasSinceCompact int

	snap      *graph.Graph // memoized Snapshot() result
	snapEpoch uint64

	log      []logEntry // changed sources of batches (logFloor, epoch]
	logFloor uint64

	batches, mutations, compactions int64
}

// New wraps g (shared, never modified) as a dynamic graph at epoch 0.
func New(g *graph.Graph, cfg Config) *Graph {
	return NewAtEpoch(g, cfg, 0)
}

// NewAtEpoch wraps g as a dynamic graph whose epoch counter starts at
// epoch — the recovery constructor: a durable snapshot taken at epoch E
// resumes here and the write-ahead-log tail is replayed on top through
// Replay. The changelog floor starts at the same epoch, so ChangedSince
// answers exactly as if the process had lived through every batch.
func NewAtEpoch(g *graph.Graph, cfg Config, epoch uint64) *Graph {
	return &Graph{
		cfg:      cfg.withDefaults(),
		base:     g,
		n:        g.N(),
		m:        g.M(),
		rows:     make(map[graph.V]map[graph.V]float64),
		epoch:    epoch,
		logFloor: epoch,
	}
}

// Replay commits a recovered batch and verifies epoch continuity: the batch
// must carry exactly the next epoch (each commit advances by one), so a gap
// or reorder in a replayed log surfaces as an error instead of silently
// producing a graph that diverges from the pre-crash state. Empty batches
// are rejected — a commit only logs a record when it advances the epoch.
func (d *Graph) Replay(muts []Mutation, wantEpoch uint64) (CommitInfo, error) {
	if len(muts) == 0 {
		return CommitInfo{}, fmt.Errorf("dynamic: replay of empty batch at epoch %d", wantEpoch)
	}
	if cur := d.Epoch(); cur+1 != wantEpoch {
		return CommitInfo{}, fmt.Errorf("dynamic: replay epoch %d does not follow current epoch %d", wantEpoch, cur)
	}
	return d.Commit(muts)
}

// Epoch returns the current epoch (0 until the first commit).
func (d *Graph) Epoch() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.epoch
}

// N returns the current vertex count.
func (d *Graph) N() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.n
}

// M returns the current edge count.
func (d *Graph) M() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.m
}

// Stats returns a monitoring snapshot.
func (d *Graph) Stats() Stats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return Stats{
		Epoch:              d.epoch,
		Batches:            d.batches,
		Mutations:          d.mutations,
		Compactions:        d.compactions,
		OverlayRows:        len(d.rows),
		DeltasSinceCompact: d.deltasSinceCompact,
	}
}

// Snapshot returns an immutable CSR of the current state together with its
// epoch. The snapshot is memoized per epoch: between commits every caller
// gets the same *graph.Graph, so solver sessions can key their warm state on
// the epoch and share the graph. When the overlay is empty the base itself
// is returned, with zero materialization cost.
func (d *Graph) Snapshot() (*graph.Graph, uint64) {
	d.mu.RLock()
	if d.snap != nil && d.snapEpoch == d.epoch {
		// Capture both under the lock: a concurrent Commit may replace
		// snap/snapEpoch the moment it is released.
		g, epoch := d.snap, d.snapEpoch
		d.mu.RUnlock()
		return g, epoch
	}
	d.mu.RUnlock()

	d.mu.Lock()
	defer d.mu.Unlock()
	return d.materializeLocked(), d.epoch
}

// materializeLocked merges base + overlay into a CSR, memoizing the result.
// Caller holds the exclusive lock.
func (d *Graph) materializeLocked() *graph.Graph {
	if d.snap != nil && d.snapEpoch == d.epoch {
		return d.snap
	}
	if len(d.rows) == 0 && d.n == d.base.N() {
		d.snap, d.snapEpoch = d.base, d.epoch
		return d.snap
	}

	baseN := d.base.N()
	outStart := make([]int32, d.n+1)
	for u := 0; u < d.n; u++ {
		if r, ok := d.rows[graph.V(u)]; ok {
			outStart[u+1] = outStart[u] + int32(len(r))
		} else if u < baseN {
			outStart[u+1] = outStart[u] + int32(d.base.OutDegree(graph.V(u)))
		} else {
			outStart[u+1] = outStart[u]
		}
	}
	m := int(outStart[d.n])
	if m != d.m {
		panic(fmt.Sprintf("dynamic: edge count drifted (rows say %d, counter says %d)", m, d.m))
	}
	outTo := make([]graph.V, m)
	outP := make([]float64, m)
	var targets []graph.V
	for u := 0; u < d.n; u++ {
		at := outStart[u]
		if r, ok := d.rows[graph.V(u)]; ok {
			targets = targets[:0]
			for v := range r {
				targets = append(targets, v)
			}
			sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
			for _, v := range targets {
				outTo[at] = v
				outP[at] = r[v]
				at++
			}
		} else if u < baseN {
			at += int32(copy(outTo[at:], d.base.OutNeighbors(graph.V(u))))
			copy(outP[outStart[u]:], d.base.OutProbs(graph.V(u)))
		}
	}
	d.snap = graph.NewFromCSR(d.n, outStart, outTo, outP)
	d.snapEpoch = d.epoch
	return d.snap
}

// ChangedSince returns the sorted unions of changed sources (out-row) and
// changed targets (in-row) of every batch committed after the given epoch,
// and whether the changelog still reaches back that far. ok=false means the
// caller's state is too old to repair incrementally and must be rebuilt
// from a fresh snapshot. An up-to-date epoch returns (nil, nil, true).
func (d *Graph) ChangedSince(epoch uint64) (sources, targets []graph.V, ok bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if epoch >= d.epoch {
		return nil, nil, epoch == d.epoch
	}
	if epoch < d.logFloor {
		return nil, nil, false
	}
	seenS := make(map[graph.V]struct{})
	seenT := make(map[graph.V]struct{})
	for _, e := range d.log {
		if e.epoch <= epoch {
			continue
		}
		for _, v := range e.sources {
			seenS[v] = struct{}{}
		}
		for _, v := range e.targets {
			seenT[v] = struct{}{}
		}
	}
	return sortedKeys(seenS), sortedKeys(seenT), true
}

func sortedKeys(set map[graph.V]struct{}) []graph.V {
	out := make([]graph.V, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// txn is the tentative state of one batch: copy-on-write rows over the
// committed overlay, so a failing mutation aborts with no effect.
type txn struct {
	d    *Graph
	rows map[graph.V]map[graph.V]float64
	n, m int
	info CommitInfo
	srcs map[graph.V]struct{} // out-row changed
	tgts map[graph.V]struct{} // in-row changed

	// rev is the full current in-adjacency (target → sources), built
	// lazily on the batch's first remove-vertex and maintained by every
	// later edge operation. One O(n + m + overlay) build amortizes over
	// the batch, so removal-heavy batches stay linear instead of
	// re-scanning every overlay row per removal.
	rev map[graph.V]map[graph.V]struct{}
}

// prob returns the current probability of edge (u,v) under the transaction.
func (t *txn) prob(u, v graph.V) (float64, bool) {
	if r, ok := t.rows[u]; ok {
		p, ok := r[v]
		return p, ok
	}
	if r, ok := t.d.rows[u]; ok {
		p, ok := r[v]
		return p, ok
	}
	if int(u) < t.d.base.N() {
		if i := t.d.base.OutEdgeIndex(u, v); i >= 0 {
			return t.d.base.EdgeAt(i).P, true
		}
	}
	return 0, false
}

// row returns u's writable out-row, materializing a copy on first touch.
func (t *txn) row(u graph.V) map[graph.V]float64 {
	if r, ok := t.rows[u]; ok {
		return r
	}
	var r map[graph.V]float64
	if com, ok := t.d.rows[u]; ok {
		r = make(map[graph.V]float64, len(com))
		for v, p := range com {
			r[v] = p
		}
	} else {
		r = make(map[graph.V]float64)
		if int(u) < t.d.base.N() {
			to := t.d.base.OutNeighbors(u)
			ps := t.d.base.OutProbs(u)
			for i, v := range to {
				r[v] = ps[i]
			}
		}
	}
	t.rows[u] = r
	return r
}

// revAdd and revDel keep the lazy reverse index consistent with edge
// mutations applied after it was built; no-ops while it does not exist.
func (t *txn) revAdd(u, v graph.V) {
	if t.rev == nil {
		return
	}
	m := t.rev[v]
	if m == nil {
		m = make(map[graph.V]struct{})
		t.rev[v] = m
	}
	m[u] = struct{}{}
}

func (t *txn) revDel(u, v graph.V) {
	if t.rev == nil {
		return
	}
	delete(t.rev[v], u)
}

// ensureRev builds the reverse index from the three layers — base rows not
// overlaid, committed overlay rows not shadowed by the transaction, and the
// transaction's own copy-on-write rows.
func (t *txn) ensureRev() {
	if t.rev != nil {
		return
	}
	t.rev = make(map[graph.V]map[graph.V]struct{})
	base := t.d.base
	for u := graph.V(0); int(u) < base.N(); u++ {
		if _, ok := t.rows[u]; ok {
			continue
		}
		if _, ok := t.d.rows[u]; ok {
			continue
		}
		for _, v := range base.OutNeighbors(u) {
			t.revAdd(u, v)
		}
	}
	for u, r := range t.d.rows {
		if _, shadowed := t.rows[u]; shadowed {
			continue
		}
		for v := range r {
			t.revAdd(u, v)
		}
	}
	for u, r := range t.rows {
		for v := range r {
			t.revAdd(u, v)
		}
	}
}

// inNeighbors collects u's current in-neighbors under the transaction,
// sorted ascending, through the lazily-built reverse index.
func (t *txn) inNeighbors(u graph.V) []graph.V {
	t.ensureRev()
	out := make([]graph.V, 0, len(t.rev[u]))
	for w := range t.rev[u] {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (t *txn) checkVertex(u graph.V) error {
	if u < 0 || int(u) >= t.n {
		return fmt.Errorf("vertex %d out of range [0,%d)", u, t.n)
	}
	return nil
}

func (t *txn) apply(mu Mutation) error {
	switch mu.Op {
	case OpAddEdge:
		if err := t.checkVertex(mu.U); err != nil {
			return err
		}
		if err := t.checkVertex(mu.V); err != nil {
			return err
		}
		if mu.U == mu.V {
			return fmt.Errorf("self-loop (%d,%d)", mu.U, mu.V)
		}
		if !(mu.P >= 0 && mu.P <= 1) { // rejects NaN too
			return fmt.Errorf("probability %v out of [0,1]", mu.P)
		}
		if _, exists := t.prob(mu.U, mu.V); exists {
			return fmt.Errorf("edge (%d,%d) already exists (use %s)", mu.U, mu.V, OpSetProb)
		}
		t.row(mu.U)[mu.V] = mu.P
		t.revAdd(mu.U, mu.V)
		t.m++
		t.info.EdgesAdded++
		t.srcs[mu.U] = struct{}{}
		t.tgts[mu.V] = struct{}{}
	case OpRemoveEdge:
		if err := t.checkVertex(mu.U); err != nil {
			return err
		}
		if err := t.checkVertex(mu.V); err != nil {
			return err
		}
		if _, exists := t.prob(mu.U, mu.V); !exists {
			return fmt.Errorf("edge (%d,%d) does not exist", mu.U, mu.V)
		}
		delete(t.row(mu.U), mu.V)
		t.revDel(mu.U, mu.V)
		t.m--
		t.info.EdgesRemoved++
		t.srcs[mu.U] = struct{}{}
		t.tgts[mu.V] = struct{}{}
	case OpSetProb:
		if err := t.checkVertex(mu.U); err != nil {
			return err
		}
		if err := t.checkVertex(mu.V); err != nil {
			return err
		}
		if !(mu.P >= 0 && mu.P <= 1) {
			return fmt.Errorf("probability %v out of [0,1]", mu.P)
		}
		if _, exists := t.prob(mu.U, mu.V); !exists {
			return fmt.Errorf("edge (%d,%d) does not exist (use %s)", mu.U, mu.V, OpAddEdge)
		}
		t.row(mu.U)[mu.V] = mu.P
		t.info.ProbsChanged++
		t.srcs[mu.U] = struct{}{}
		t.tgts[mu.V] = struct{}{}
	case OpAddVertex:
		t.n++
		t.info.VerticesAdded++
	case OpRemoveVertex:
		if err := t.checkVertex(mu.U); err != nil {
			return err
		}
		for _, w := range t.inNeighbors(mu.U) {
			delete(t.row(w), mu.U)
			t.revDel(w, mu.U)
			t.m--
			t.info.EdgesRemoved++
			t.srcs[w] = struct{}{}
			t.tgts[mu.U] = struct{}{}
		}
		if out := t.row(mu.U); len(out) > 0 {
			t.m -= len(out)
			t.info.EdgesRemoved += len(out)
			t.srcs[mu.U] = struct{}{}
			for v := range out {
				t.tgts[v] = struct{}{}
				t.revDel(mu.U, v)
			}
			clear(out)
		}
		t.info.VerticesRemoved++
	default:
		return fmt.Errorf("unknown op %q", mu.Op)
	}
	return nil
}

// Commit applies the batch atomically. On any error the graph is unchanged
// and the error identifies the failing mutation by index. On success the
// epoch advances by one and the batch's changed sources are appended to the
// changelog; the commit compacts the overlay into a fresh base CSR when the
// mutations accumulated since the last compaction exceed
// max(CompactMinDeltas, CompactFraction × base edges).
func (d *Graph) Commit(muts []Mutation) (CommitInfo, error) {
	d.mu.Lock()
	defer d.mu.Unlock()

	// A pure no-op must not advance the epoch: that would invalidate the
	// memoized snapshot and stale-mark every warm session for nothing.
	if len(muts) == 0 {
		return CommitInfo{Epoch: d.epoch, N: d.n, M: d.m}, nil
	}

	t := &txn{
		d:    d,
		rows: make(map[graph.V]map[graph.V]float64),
		n:    d.n,
		m:    d.m,
		srcs: make(map[graph.V]struct{}),
		tgts: make(map[graph.V]struct{}),
	}
	for i, mu := range muts {
		if err := t.apply(mu); err != nil {
			return CommitInfo{}, fmt.Errorf("mutation %d (%s): %w", i, mu.Op, err)
		}
	}

	for u, r := range t.rows {
		d.rows[u] = r
	}
	d.n, d.m = t.n, t.m
	d.epoch++
	d.deltasSinceCompact += len(muts)
	d.batches++
	d.mutations += int64(len(muts))
	d.snap, d.snapEpoch = nil, 0

	sources := sortedKeys(t.srcs)
	targets := sortedKeys(t.tgts)
	d.log = append(d.log, logEntry{epoch: d.epoch, sources: sources, targets: targets})
	for len(d.log) > d.cfg.ChangelogLimit {
		d.logFloor = d.log[0].epoch
		d.log = d.log[1:]
	}

	t.info.Epoch = d.epoch
	t.info.Applied = len(muts)
	t.info.ChangedSources = sources
	t.info.ChangedTargets = targets
	t.info.N, t.info.M = d.n, d.m

	limit := d.cfg.CompactMinDeltas
	if f := int(d.cfg.CompactFraction * float64(d.base.M())); f > limit {
		limit = f
	}
	if d.deltasSinceCompact >= limit {
		d.base = d.materializeLocked()
		d.rows = make(map[graph.V]map[graph.V]float64)
		d.deltasSinceCompact = 0
		d.compactions++
		t.info.Compacted = true
	}
	return t.info, nil
}
