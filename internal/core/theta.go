package core

import "math"

// ThetaBound returns the number of sampled graphs sufficient for the
// estimator's guarantee of Theorem 5: with θ ≥ l·(2+ε)·n·ln(n) / (ε²·optLB)
// samples, |ξ→u(s,G) − OPT| < ε·OPT holds with probability at least
// 1 − n^(−l), where OPT is the true spread decrease of the vertex under
// estimation and optLB a lower bound on it.
//
// optLB = 1 is always valid (blocking any vertex reachable from the seed
// decreases the spread by at least its own activation probability times 1;
// for candidates that matter, at least the vertex itself is lost), making
// the bound O(n log n) samples — the paper's practical θ of 10⁴ reflects
// that real spreads are far larger than 1, so far fewer samples suffice
// (Figure 5 verifies this).
func ThetaBound(n int, eps, l, optLB float64) int {
	if n < 2 {
		return 1
	}
	if eps <= 0 || l <= 0 || optLB <= 0 {
		panic("core: ThetaBound requires positive eps, l and optLB")
	}
	theta := l * (2 + eps) * float64(n) * math.Log(float64(n)) / (eps * eps * optLB)
	return int(math.Ceil(theta))
}

// EstimationFailureProb returns the probability bound n^(-l) of Theorem 5
// for a given l, i.e. the chance that the relative error guarantee does not
// hold for one fixed vertex.
func EstimationFailureProb(n int, l float64) float64 {
	return math.Pow(float64(n), -l)
}
