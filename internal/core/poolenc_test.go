package core

import (
	"math"
	"reflect"
	"testing"

	"github.com/imin-dev/imin/internal/cascade"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// TestVarintRoundTrip pins the LEB128/zigzag primitives at their edges.
func TestVarintRoundTrip(t *testing.T) {
	uvals := []uint32{0, 1, 127, 128, 300, 1 << 14, 1 << 21, 1 << 28, math.MaxUint32}
	var b []byte
	for _, x := range uvals {
		b = appendUvarint(b, x)
	}
	pos := 0
	for _, want := range uvals {
		var got uint32
		got, pos = getUvarint(b, pos)
		if got != want {
			t.Fatalf("uvarint round-trip: got %d, want %d", got, want)
		}
	}
	if pos != len(b) {
		t.Fatalf("uvarint decode consumed %d of %d bytes", pos, len(b))
	}

	zvals := []int32{0, 1, -1, 63, -64, 64, -65, math.MaxInt32, math.MinInt32}
	b = b[:0]
	for _, x := range zvals {
		b = appendZigzag(b, x)
	}
	pos = 0
	for _, want := range zvals {
		var got int32
		got, pos = getZigzag(b, pos)
		if got != want {
			t.Fatalf("zigzag round-trip: got %d, want %d", got, want)
		}
	}
	if pos != len(b) {
		t.Fatalf("zigzag decode consumed %d of %d bytes", pos, len(b))
	}
}

// viewsEqual compares the logical content of two sample views, forcing the
// lazy in-CSR so derived views are held to the flat arrays.
func viewsEqual(a, b *sampleView) bool {
	a.ensureInCSR()
	b.ensureInCSR()
	return reflect.DeepEqual(a.orig, b.orig) &&
		reflect.DeepEqual(a.outStart, b.outStart) &&
		reflect.DeepEqual(a.outTo, b.outTo) &&
		reflect.DeepEqual(a.inStart, b.inStart) &&
		reflect.DeepEqual(a.inTo, b.inTo)
}

// TestCompressedPoolMatchesFlat checks that a compressed pool stores exactly
// the flat pool's logical content: every sample view decodes to identical
// slices, the inverted index answers identically for every vertex, and the
// decompress round-trip reproduces the flat arenas byte for byte — while
// the compressed footprint is materially smaller.
func TestCompressedPoolMatchesFlat(t *testing.T) {
	g := denseTestGraph(150, 17)
	const theta = 500
	flat := NewSamplePool(cascade.NewIC(g), 0, theta, 4, rng.New(3))
	comp := NewSamplePoolEnc(cascade.NewIC(g), 0, theta, 4, rng.New(3), PoolCompressed)
	if comp.Encoding() != PoolCompressed || flat.Encoding() != PoolFlat {
		t.Fatal("encodings mislabelled")
	}
	if comp.Theta() != theta {
		t.Fatalf("compressed Theta = %d, want %d", comp.Theta(), theta)
	}

	var fv, cv sampleView
	for i := 0; i < theta; i++ {
		flat.view(i, &fv)
		comp.view(i, &cv)
		if !viewsEqual(&fv, &cv) {
			t.Fatalf("sample %d: compressed view differs from flat", i)
		}
	}
	for v := 0; v < g.N(); v++ {
		fw := flat.SamplesContaining(graph.V(v))
		cw := comp.SamplesContaining(graph.V(v))
		if len(fw) == 0 && len(cw) == 0 {
			continue
		}
		if !reflect.DeepEqual(fw, cw) {
			t.Fatalf("vertex %d: index differs: flat %v, compressed %v", v, fw, cw)
		}
	}

	rt := comp.decompress(2)
	rt.buildIndex(2)
	if !poolsEqual(rt, flat) {
		t.Fatal("decompress does not reproduce the flat arenas byte for byte")
	}

	fb, cb := flat.MemoryBytes(), comp.MemoryBytes()
	if cb >= fb*7/10 {
		t.Errorf("compressed pool is %d bytes vs flat %d — less than the 30%% floor this encoding exists for", cb, fb)
	}
}

// TestCompressedSolveBitIdentical is the blocker-set half of the encoding
// contract: ReuseSamples solves return byte-identical blockers across both
// encodings and workers 1/2/4/8, for both greedy algorithms.
func TestCompressedSolveBitIdentical(t *testing.T) {
	g := denseTestGraph(120, 9)
	seeds := []graph.V{3, 11}
	for _, alg := range []Algorithm{AdvancedGreedy, GreedyReplace} {
		var want []graph.V
		for _, enc := range []PoolEncoding{PoolFlat, PoolCompressed} {
			for _, workers := range []int{1, 2, 4, 8} {
				opt := Options{Theta: 400, Seed: 5, Workers: workers, ReuseSamples: true, PoolEncoding: enc}
				res, err := Solve(g, seeds, 6, alg, opt)
				if err != nil {
					t.Fatalf("%s enc=%d workers=%d: %v", alg, enc, workers, err)
				}
				if want == nil {
					want = res.Blockers
					continue
				}
				if !reflect.DeepEqual(res.Blockers, want) {
					t.Errorf("%s enc=%d workers=%d: blockers %v != reference %v", alg, enc, workers, res.Blockers, want)
				}
			}
		}
	}
}

// TestCompressedRepairBitIdentical is the post-mutation half: repairing a
// compressed pool yields the same dirty set and the same logical pool as
// repairing its flat twin, for IC and LT, at workers 1/2/4/8 — and a
// trajectory driven through RepairPool on both encodings stays bit-equal
// round by round.
func TestCompressedRepairBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(*graph.Graph) cascade.LiveSampler
		lt   bool
	}{
		{"IC", func(g *graph.Graph) cascade.LiveSampler { return cascade.NewIC(g) }, false},
		{"LT", func(g *graph.Graph) cascade.LiveSampler { return cascade.NewLT(g) }, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const seed, theta = 5, 300
			g := repairTestGraph(40, seed)
			flat := NewSamplePool(tc.mk(g), 0, theta, 4, rng.New(seed+9))
			comp := NewSamplePoolEnc(tc.mk(g), 0, theta, 4, rng.New(seed+9), PoolCompressed)
			snap, sources, targets := repairMutations(t, g, seed+50)
			newSampler := tc.mk(snap)
			changed := sources
			if tc.lt {
				changed = RepairSetLT(g, sources, targets)
			}

			for _, w := range []int{1, 2, 4, 8} {
				fq, fd := flat.Repair(newSampler, changed, w)
				cq, cd := comp.Repair(newSampler, changed, w)
				if !reflect.DeepEqual(fd, cd) {
					t.Fatalf("workers=%d: dirty sets differ: flat %d, compressed %d", w, len(fd), len(cd))
				}
				if len(fd) == 0 {
					t.Fatal("mutation batch dirtied no samples — test exercises nothing")
				}
				if cq.Encoding() != PoolCompressed {
					t.Fatalf("workers=%d: repair dropped the compressed encoding", w)
				}
				rt := cq.decompress(2)
				rt.buildIndex(2)
				if !poolsEqual(rt, fq) {
					t.Fatalf("workers=%d: repaired compressed pool differs from repaired flat pool", w)
				}
			}

			// Estimator trajectory across the repair, both encodings in
			// lockstep: prime, walk flips, repair mid-way, keep walking.
			n := snap.N()
			for _, w := range []int{1, 2, 4, 8} {
				fe := NewIncrementalPooledEstimatorFromPool(flat, w, DomLengauerTarjan)
				ce := NewIncrementalPooledEstimatorFromPool(comp, w, DomLengauerTarjan)
				blocked := make([]bool, n)
				dF := make([]float64, n)
				dC := make([]float64, n)
				for round := 0; round < 7; round++ {
					if round == 3 {
						fq, fd := flat.Repair(newSampler, changed, w)
						cq, cd := comp.Repair(newSampler, changed, w)
						fe.RepairPool(fq, fd)
						ce.RepairPool(cq, cd)
					}
					fe.DecreaseES(dF, blocked)
					ce.DecreaseES(dC, blocked)
					if !reflect.DeepEqual(dF, dC) {
						t.Fatalf("workers=%d round=%d: Δ vectors differ across encodings", w, round)
					}
					blocked[(round*7)%(g.N()-1)+1] = true
				}
			}
		})
	}
}

// TestPoolMemoryBytesAccountsEverything guards the /stats honesty contract:
// MemoryBytes must cover every backing array a layout retains — the flat
// arenas plus the inverted index, or the varint arenas plus their offsets —
// so it can never report less than the raw encoded payloads it holds.
func TestPoolMemoryBytesAccountsEverything(t *testing.T) {
	g := denseTestGraph(100, 21)
	const theta = 200
	flat := NewSamplePool(cascade.NewIC(g), 0, theta, 2, rng.New(4))
	comp := NewSamplePoolEnc(cascade.NewIC(g), 0, theta, 2, rng.New(4), PoolCompressed)

	wantFlat := int64(len(flat.vertStart))*8 + int64(len(flat.edgeStart))*8 +
		int64(len(flat.vertOrig))*4 + int64(len(flat.csrStart))*4 + int64(len(flat.edgeTo))*4 +
		int64(len(flat.csrInStart))*4 + int64(len(flat.inFrom))*4 +
		int64(len(flat.idxStart))*8 + int64(len(flat.idxSample))*4
	if got := flat.MemoryBytes(); got < wantFlat {
		t.Errorf("flat MemoryBytes = %d, below the %d bytes of its own backing arrays", got, wantFlat)
	}

	wantComp := int64(len(comp.vertOrig))*4 + int64(len(comp.csrStart))*4 + int64(len(comp.edgeTo))*4 +
		int64(len(comp.encIdx)) + int64(len(comp.encIdxOff))*8 +
		int64(len(comp.encIdxOff32))*4 +
		int64(len(comp.vertStart32))*4 + int64(len(comp.edgeStart32))*4
	if got := comp.MemoryBytes(); got < wantComp {
		t.Errorf("compressed MemoryBytes = %d, below the %d bytes of its own backing arrays", got, wantComp)
	}
	if comp.vertStart32 == nil || comp.edgeStart32 == nil || comp.encIdxOff32 == nil {
		t.Error("offsets not narrowed on a pool whose totals fit int32")
	}
	if comp.csrInStart != nil || comp.inFrom != nil {
		t.Error("compressed pool retains the stored in-CSR it is supposed to derive")
	}
	if comp.idxStart != nil || comp.idxSample != nil {
		t.Error("compressed pool retains the flat inverted index")
	}

	// The estimator's MemoryBytes must also include the per-worker decode
	// scratch a compressed pool forces into existence.
	est := NewIncrementalPooledEstimatorFromPool(comp, 2, DomLengauerTarjan)
	before := est.MemoryBytes()
	blocked := make([]bool, g.N())
	dst := make([]float64, g.N())
	est.DecreaseES(dst, blocked)
	if after := est.MemoryBytes(); after <= before {
		t.Errorf("estimator MemoryBytes did not grow after priming (%d -> %d); decode scratch unaccounted", before, after)
	}
}

// BenchmarkPoolView isolates the worst-case per-sample read cost the
// estimator pays on a dirty sample: zero-copy slicing for flat pools, plus
// the in-CSR counting-sort derivation for compressed ones (forced here;
// the filtered dominator path never asks for it).
func BenchmarkPoolView(b *testing.B) {
	g := denseTestGraph(2000, 3)
	const theta = 1000
	for _, tc := range []struct {
		name string
		enc  PoolEncoding
	}{{"flat", PoolFlat}, {"compressed", PoolCompressed}} {
		pool := NewSamplePoolEnc(cascade.NewIC(g), 0, theta, 4, rng.New(5), tc.enc)
		var v sampleView
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pool.view(i%theta, &v)
				v.ensureInCSR()
			}
		})
	}
}
