package dynamic

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/imin-dev/imin/internal/graph"
)

// Compact binary encoding of a mutation batch — the payload the durable
// store's write-ahead log frames. The format is deliberately minimal:
//
//	uvarint count
//	per mutation: op byte | operands
//
// where the operands depend on the op: add-edge and set-prob carry
// uvarint(u) uvarint(v) f64bits(p); remove-edge carries uvarint(u)
// uvarint(v); remove-vertex carries uvarint(u); add-vertex carries nothing.
// Vertex ids are non-negative by Commit's validation, so uvarints are safe
// and small ids (the common case) take one byte.
//
// DecodeBatch is hardened against hostile input: truncated, bit-flipped and
// oversized payloads return errors — they never panic, never over-read, and
// never allocate proportionally to a length claim the data cannot back.

// op wire codes. Stable: they are on disk.
const (
	opCodeAddEdge      = 1
	opCodeRemoveEdge   = 2
	opCodeSetProb      = 3
	opCodeAddVertex    = 4
	opCodeRemoveVertex = 5
)

func opCode(op Op) (byte, error) {
	switch op {
	case OpAddEdge:
		return opCodeAddEdge, nil
	case OpRemoveEdge:
		return opCodeRemoveEdge, nil
	case OpSetProb:
		return opCodeSetProb, nil
	case OpAddVertex:
		return opCodeAddVertex, nil
	case OpRemoveVertex:
		return opCodeRemoveVertex, nil
	default:
		return 0, fmt.Errorf("dynamic: unknown op %q", op)
	}
}

// EncodeBatch appends the batch's binary encoding to dst and returns the
// extended slice. Mutations with negative vertex ids or an unknown op fail
// (Commit would reject them anyway; the WAL must never contain them).
func EncodeBatch(dst []byte, muts []Mutation) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(muts)))
	for i, mu := range muts {
		code, err := opCode(mu.Op)
		if err != nil {
			return nil, fmt.Errorf("mutation %d: %w", i, err)
		}
		if mu.U < 0 || mu.V < 0 {
			return nil, fmt.Errorf("dynamic: mutation %d (%s): negative vertex id", i, mu.Op)
		}
		dst = append(dst, code)
		switch mu.Op {
		case OpAddEdge, OpSetProb:
			dst = binary.AppendUvarint(dst, uint64(mu.U))
			dst = binary.AppendUvarint(dst, uint64(mu.V))
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(mu.P))
		case OpRemoveEdge:
			dst = binary.AppendUvarint(dst, uint64(mu.U))
			dst = binary.AppendUvarint(dst, uint64(mu.V))
		case OpRemoveVertex:
			dst = binary.AppendUvarint(dst, uint64(mu.U))
		}
	}
	return dst, nil
}

// maxVertexID bounds decoded vertex ids: graph.V is an int32-sized id in a
// CSR whose offsets are int32, so anything beyond this is corruption.
const maxVertexID = 1<<31 - 1

// DecodeBatch parses an EncodeBatch payload. Trailing bytes, truncation,
// unknown ops and implausible values are all errors; the claimed mutation
// count is validated against the payload size before any allocation.
func DecodeBatch(data []byte) ([]Mutation, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("dynamic: batch count truncated or overflows")
	}
	data = data[n:]
	// Every mutation costs at least one byte (its op code), so a count
	// beyond the remaining payload cannot be honest — reject it before
	// allocating count slots.
	if count > uint64(len(data)) {
		return nil, fmt.Errorf("dynamic: batch claims %d mutations in %d bytes", count, len(data))
	}
	readV := func() (graph.V, error) {
		x, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, fmt.Errorf("dynamic: vertex id truncated or overflows")
		}
		if x > maxVertexID {
			return 0, fmt.Errorf("dynamic: vertex id %d out of range", x)
		}
		data = data[n:]
		return graph.V(x), nil
	}
	muts := make([]Mutation, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(data) == 0 {
			return nil, fmt.Errorf("dynamic: batch truncated at mutation %d/%d", i, count)
		}
		code := data[0]
		data = data[1:]
		var mu Mutation
		var err error
		switch code {
		case opCodeAddEdge, opCodeSetProb:
			mu.Op = OpAddEdge
			if code == opCodeSetProb {
				mu.Op = OpSetProb
			}
			if mu.U, err = readV(); err != nil {
				return nil, err
			}
			if mu.V, err = readV(); err != nil {
				return nil, err
			}
			if len(data) < 8 {
				return nil, fmt.Errorf("dynamic: probability truncated at mutation %d", i)
			}
			mu.P = math.Float64frombits(binary.LittleEndian.Uint64(data))
			data = data[8:]
		case opCodeRemoveEdge:
			mu.Op = OpRemoveEdge
			if mu.U, err = readV(); err != nil {
				return nil, err
			}
			if mu.V, err = readV(); err != nil {
				return nil, err
			}
		case opCodeAddVertex:
			mu.Op = OpAddVertex
		case opCodeRemoveVertex:
			mu.Op = OpRemoveVertex
			if mu.U, err = readV(); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("dynamic: unknown op code %d at mutation %d", code, i)
		}
		muts = append(muts, mu)
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("dynamic: %d trailing bytes after batch", len(data))
	}
	return muts, nil
}
