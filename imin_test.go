package imin

import (
	"context"
	"math"
	"testing"

	"github.com/imin-dev/imin/internal/fixture"
)

func TestFacadeMinimizeToy(t *testing.T) {
	g := fixture.Toy()
	opt := Options{Theta: 4000, MCSRounds: 2000, Workers: 2, Seed: 1}
	res, err := Minimize(g, []Vertex{fixture.Seed}, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blockers) != 1 || res.Blockers[0] != fixture.V5 {
		t.Fatalf("Minimize = %v, want [v5]", res.Blockers)
	}
}

func TestFacadeMinimizeWithAlgorithms(t *testing.T) {
	g := fixture.Toy()
	opt := Options{Theta: 3000, MCSRounds: 2000, Workers: 2, Seed: 2}
	for _, alg := range []Algorithm{Rand, OutDegree, BaselineGreedy, AdvancedGreedy, GreedyReplace} {
		res, err := MinimizeWith(g, []Vertex{fixture.Seed}, 2, alg, opt)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if len(res.Blockers) != 2 {
			t.Fatalf("%s returned %d blockers", alg, len(res.Blockers))
		}
	}
}

func TestFacadeSpreadFunctions(t *testing.T) {
	g := fixture.Toy()
	est, err := EstimateSpread(g, []Vertex{fixture.Seed}, []Vertex{fixture.V5}, 50000, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-3) > 0.05 {
		t.Fatalf("EstimateSpread = %v, want 3", est)
	}
	ex, err := ExactSpread(g, fixture.Seed, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ex-fixture.ExpectedSpread) > 1e-9 {
		t.Fatalf("ExactSpread = %v, want %v", ex, fixture.ExpectedSpread)
	}
}

func TestFacadeSpreadDecreasePerVertex(t *testing.T) {
	g := fixture.Toy()
	delta := SpreadDecreasePerVertex(g, fixture.Seed, 50000, 4)
	want := fixture.Delta()
	for v := range want {
		if math.Abs(delta[v]-want[v]) > 0.05 {
			t.Errorf("Δ[v%d] = %v, want %v", v+1, delta[v], want[v])
		}
	}
}

func TestFacadeBuilderAndProbModels(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(0, 2, 1)
	g := b.Build()
	tr := AssignProbabilities(g, Trivalency, 5)
	for _, e := range tr.Edges() {
		if e.P != 0.1 && e.P != 0.01 && e.P != 0.001 {
			t.Fatalf("TR probability %v", e.P)
		}
	}
	wc := AssignProbabilities(g, WeightedCascade, 0)
	if p := wc.Prob(0, 2); p != 0.5 {
		t.Fatalf("WC p(0,2) = %v, want 0.5 (indegree 2)", p)
	}
}

func TestFacadeThetaForGuarantee(t *testing.T) {
	if ThetaForGuarantee(1000, 0.1, 1, 1) <= 0 {
		t.Fatal("theta bound must be positive")
	}
}

func TestFacadeFileRoundTrip(t *testing.T) {
	g := fixture.Toy()
	path := t.TempDir() + "/g.txt"
	if err := g.WriteEdgeListFile(path); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ReadEdgeListFile(path, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip changed size")
	}
}

func TestFacadeGenerators(t *testing.T) {
	pa := GeneratePreferentialAttachment(200, 2, true, 1)
	if pa.N() != 200 || pa.M() == 0 {
		t.Fatalf("PA: n=%d m=%d", pa.N(), pa.M())
	}
	er := GenerateErdosRenyi(100, 300, true, 2)
	if er.N() != 100 || er.M() == 0 {
		t.Fatalf("ER: n=%d m=%d", er.N(), er.M())
	}
	ws := GenerateWattsStrogatz(50, 2, 0.1, 3)
	if ws.N() != 50 || ws.M() == 0 {
		t.Fatalf("WS: n=%d m=%d", ws.N(), ws.M())
	}
	for _, name := range DatasetNames() {
		if _, err := GenerateDataset(name, 0.001, 4); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := GenerateDataset("nope", 0.1, 5); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

func TestFacadeBinaryGraphFile(t *testing.T) {
	g := fixture.Toy()
	path := t.TempDir() + "/g.bin"
	if err := g.WriteBinaryFile(path); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinaryGraphFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatal("binary facade round trip changed sizes")
	}
	if _, err := ReadBinaryGraphFile(t.TempDir() + "/missing.bin"); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestFacadeRandomSeedSet(t *testing.T) {
	g := GeneratePreferentialAttachment(100, 2, true, 6)
	seeds, err := RandomSeedSet(g, 5, true, 7)
	if err != nil || len(seeds) != 5 {
		t.Fatalf("seeds=%v err=%v", seeds, err)
	}
}

func TestFacadeLTDiffusion(t *testing.T) {
	g := AssignProbabilities(fixture.Toy(), WeightedCascade, 0)
	res, err := MinimizeWith(g, []Vertex{fixture.Seed}, 1, AdvancedGreedy,
		Options{Theta: 4000, Workers: 2, Seed: 6, Diffusion: LT})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blockers) != 1 || res.Blockers[0] != fixture.V5 {
		t.Fatalf("LT blockers = %v, want [v5]", res.Blockers)
	}
}

func TestFacadeSessionAndContext(t *testing.T) {
	g := GeneratePreferentialAttachment(200, 3, true, 6)
	g = AssignProbabilities(g, Trivalency, 8)
	seeds := []Vertex{1, 4}
	opt := Options{Theta: 200, Workers: 2, Seed: 3}

	direct, err := MinimizeWith(g, seeds, 3, AdvancedGreedy, opt)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(g, IC, 2)
	for i := 0; i < 2; i++ {
		res, err := sess.Solve(context.Background(), seeds, 3, AdvancedGreedy, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Blockers) != len(direct.Blockers) {
			t.Fatalf("session blockers %v, direct %v", res.Blockers, direct.Blockers)
		}
		for j := range res.Blockers {
			if res.Blockers[j] != direct.Blockers[j] {
				t.Fatalf("session blockers %v, direct %v", res.Blockers, direct.Blockers)
			}
		}
	}
	if st := sess.Stats(); st.Solves != 2 || st.Rebuilds != 1 {
		t.Errorf("session stats = %+v", st)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := MinimizeContext(ctx, g, seeds, 3, AdvancedGreedy, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Canceled || len(res.Blockers) != 0 {
		t.Errorf("canceled run: %+v", res)
	}
}
