module github.com/imin-dev/imin

go 1.24.0

// Pinned analyzer-toolchain versions. Nothing in the module imports these
// (internal/lintkit is deliberately stdlib-only so the build works in
// offline environments with an empty module cache), but the pins keep CI
// and local `go install`s of staticcheck — and any future port of the
// lintrules onto go/analysis proper — on one agreed version.
require (
	golang.org/x/tools v0.24.0
	honnef.co/go/tools v0.5.1
)
