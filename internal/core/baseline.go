package core

import (
	"github.com/imin-dev/imin/internal/cascade"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

// solveBaselineGreedy implements Algorithm 1, the prior state of the art:
// in each of b rounds, evaluate every candidate blocker by Monte-Carlo
// simulation (r rounds each) and pick the one whose blocking minimizes the
// estimated spread. Complexity O(b·n·r·m), which is what makes it
// cost-prohibitive on large graphs — the motivation for Algorithm 2.
//
// The deadline and context are checked between candidate evaluations; on
// expiry the partial blocker set is returned with TimedOut (or Canceled)
// set, mirroring the paper's 24-hour cap in Figures 7-9.
func solveBaselineGreedy(halt stopper, in *instance, b int, opt Options) Result {
	sampler := in.sampler(opt.Diffusion)
	base := rng.New(opt.Seed)

	blocked := make([]bool, in.g.N())
	var blockers []graph.V
	var sims int64
	call := uint64(0)

	for round := 0; round < b; round++ {
		bestV := graph.V(-1)
		bestSpread := 0.0
		for _, u := range in.cands {
			if blocked[u] {
				continue
			}
			if halt.stop() {
				return halt.abort(Result{Blockers: blockers, MCSSimulations: sims})
			}
			blocked[u] = true
			call++
			spread := cascade.EstimateSpreadParallel(
				sampler, in.src, blocked, opt.MCSRounds, opt.Workers, base.Split(call))
			blocked[u] = false
			sims += int64(opt.MCSRounds)
			if bestV == -1 || spread < bestSpread {
				bestV, bestSpread = u, spread
			}
		}
		if bestV == -1 {
			break // no candidates left
		}
		blocked[bestV] = true
		blockers = append(blockers, bestV)
	}
	return Result{Blockers: blockers, MCSSimulations: sims}
}
