package graph

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/imin-dev/imin/internal/faultfs"
)

// ManifestVersion is the current on-disk manifest schema version.
const ManifestVersion = 1

// Manifest describes one durable graph snapshot: which binary CSR file
// holds the graph, the mutation epoch that snapshot reflects, and the WAL
// generation whose records continue past it. It is the recovery root the
// durable store reads first — everything else in a graph's directory is
// located through it.
type Manifest struct {
	// Version is the manifest schema version (ManifestVersion).
	Version int `json:"version"`
	// Name is the graph's registry name (doubles as its directory name).
	Name string `json:"name"`
	// Source is the human-readable provenance the serving layer displays
	// ("dataset Wiki-Vote @ 0.02, TR", "file edges.txt", ...).
	Source string `json:"source,omitempty"`
	// ProbModel records how edge probabilities were assigned ("TR", "WC",
	// "keep"); informational — the probabilities themselves live in the
	// snapshot.
	ProbModel string `json:"prob_model,omitempty"`
	// Epoch is the mutation epoch the snapshot file reflects. WAL records
	// with epochs beyond it are replayed on recovery.
	Epoch uint64 `json:"epoch"`
	// WALGen is the first write-ahead-log generation not covered by the
	// snapshot: recovery replays wal-<WALGen>.log and any later generation,
	// in order. Generations below WALGen are garbage.
	WALGen uint64 `json:"wal_gen"`
	// Snapshot is the snapshot file's name within the graph directory.
	Snapshot string `json:"snapshot"`
	// N and M are the snapshot's vertex and edge counts (a cheap sanity
	// check against the loaded CSR).
	N int `json:"n"`
	M int `json:"m"`
	// UpdatedAt is when this manifest was written.
	UpdatedAt time.Time `json:"updated_at"`
}

// Validate checks the structural invariants a recovery can rely on.
func (m *Manifest) Validate() error {
	if m.Version != ManifestVersion {
		return fmt.Errorf("graph: unsupported manifest version %d", m.Version)
	}
	if m.Name == "" {
		return fmt.Errorf("graph: manifest has no graph name")
	}
	if m.Snapshot == "" || m.Snapshot != filepath.Base(m.Snapshot) {
		return fmt.Errorf("graph: manifest snapshot %q is not a bare file name", m.Snapshot)
	}
	if m.N < 0 || m.M < 0 {
		return fmt.Errorf("graph: manifest has negative sizes n=%d m=%d", m.N, m.M)
	}
	return nil
}

// WriteManifestFile atomically replaces path with m on the real
// filesystem. See WriteManifestFS.
func WriteManifestFile(path string, m *Manifest) error {
	return WriteManifestFS(faultfs.OS, path, m)
}

// WriteManifestFS atomically replaces path with m: the JSON is written to
// a temporary file in the same directory, fsynced, renamed over path, and
// the directory is fsynced — so a crash at any point leaves either the old
// manifest or the new one, never a torn file.
func WriteManifestFS(fs faultfs.FS, path string, m *Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close()
		_ = fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	return SyncDirFS(fs, filepath.Dir(path))
}

// ReadManifestFile loads and validates a manifest from the real
// filesystem. See ReadManifestFS.
func ReadManifestFile(path string) (*Manifest, error) {
	return ReadManifestFS(faultfs.OS, path)
}

// ReadManifestFS loads and validates a manifest written by WriteManifestFS.
func ReadManifestFS(fs faultfs.FS, path string) (*Manifest, error) {
	buf, err := fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("graph: manifest %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("graph: manifest %s: %w", path, err)
	}
	return &m, nil
}

// SyncDir fsyncs a directory on the real filesystem. See SyncDirFS.
func SyncDir(dir string) error {
	return SyncDirFS(faultfs.OS, dir)
}

// SyncDirFS fsyncs a directory, making recently created or renamed entries
// durable. Filesystems that reject directory fsync (some network mounts)
// are tolerated: the rename itself is still atomic there.
func SyncDirFS(fs faultfs.FS, dir string) error {
	d, err := fs.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		return err
	}
	return nil
}
