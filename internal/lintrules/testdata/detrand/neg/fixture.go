// Negative detrand fixture: map iteration whose effect is order-
// independent, or made deterministic by a sort, stays silent.
package fixture

import (
	"sort"
	"time"
)

func collectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // integer accumulation is commutative
	}
	return n
}

func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k // building a map: no observable order
	}
	return out
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // the clock as a clock, not as entropy
}
