// Suppression fixture: a justified //lint:ignore silences a finding on the
// line below it, so the directory checks clean.
package fixture

import "os"

type wal struct{ f *os.File }

func (w *wal) Sync() error { return w.f.Sync() }

func shutdown(w *wal) {
	//lint:ignore errsink process is exiting and the error has nowhere to go
	w.Sync()
}
