package graph

import "fmt"

// NewFromCSR builds a Graph directly from a forward CSR, taking ownership of
// the three slices. It is the fast-path constructor for callers that already
// hold adjacency in CSR form — the dynamic overlay's snapshot materialization
// and, transitively, every epoch commit — and skips the Builder's edge-list
// sort entirely: the in-CSR is rebuilt by counting sort, so the total cost is
// O(n + m) with no comparison sorting.
//
// Requirements (panics otherwise, like validate): outStart has n+1 monotone
// entries bounding len(outTo); outTo and outP are parallel; every target is
// in [0, n); each row's targets are strictly ascending (the invariant Builder
// establishes and OutEdgeIndex's binary search relies on); probabilities are
// clamped to [0, 1] in place rather than rejected, matching Builder.AddEdge.
func NewFromCSR(n int, outStart []int32, outTo []V, outP []float64) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	if len(outStart) != n+1 {
		panic(fmt.Sprintf("graph: outStart length %d for %d vertices", len(outStart), n))
	}
	if len(outTo) != len(outP) {
		panic("graph: outTo/outP length mismatch")
	}
	if outStart[0] != 0 || int(outStart[n]) != len(outTo) {
		panic("graph: CSR bounds corrupt")
	}
	for u := 0; u < n; u++ {
		if outStart[u] > outStart[u+1] {
			panic(fmt.Sprintf("graph: CSR offsets not monotone at %d", u))
		}
		prev := V(-1)
		for j := outStart[u]; j < outStart[u+1]; j++ {
			v := outTo[j]
			if v < 0 || int(v) >= n {
				panic(fmt.Sprintf("graph: target %d out of range [0,%d)", v, n))
			}
			if v <= prev {
				panic(fmt.Sprintf("graph: row %d targets not strictly ascending", u))
			}
			if v == V(u) {
				panic(fmt.Sprintf("graph: self-loop at %d", u))
			}
			prev = v
		}
	}
	for i, p := range outP {
		if p < 0 {
			outP[i] = 0
		} else if p > 1 {
			outP[i] = 1
		}
	}
	g := &Graph{n: n, outStart: outStart, outTo: outTo, outP: outP}
	g.rebuildIn()
	g.validate()
	return g
}
