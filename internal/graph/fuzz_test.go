package graph

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets harden the two parsers against malformed input: they must
// return an error or a structurally valid graph, never panic or produce a
// graph that fails validation. `go test` exercises the seed corpus; run
// `go test -fuzz=FuzzReadEdgeList ./internal/graph` for a full campaign.

func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2 0.5\n")
	f.Add("# comment\n\n10 20 0.25\n20 10\n")
	f.Add("a b c\n")
	f.Add("0")
	f.Add("-1 5\n")
	f.Add("9999999999999999999999 1\n")
	f.Add("0 1 nan\n0 2 -3\n0 3 7e300\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, orig, err := ReadEdgeList(strings.NewReader(input), ReadOptions{})
		if err != nil {
			return
		}
		if g.N() != len(orig) {
			t.Fatalf("vertex count %d but %d original ids", g.N(), len(orig))
		}
		// Structural sanity: every edge endpoint in range, probabilities
		// clamped to [0,1] or NaN rejected by the builder clamp.
		for _, e := range g.Edges() {
			if e.From < 0 || int(e.From) >= g.N() || e.To < 0 || int(e.To) >= g.N() {
				t.Fatalf("edge out of range: %+v", e)
			}
			if e.P < 0 || e.P > 1 {
				t.Fatalf("unclamped probability: %+v", e)
			}
		}
		// Round trip must succeed on anything we accepted.
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	if err := toy().WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)-5])
	f.Add([]byte("IMGB"))
	f.Add([]byte{})
	// A few single-byte corruptions of the valid payload.
	for _, pos := range []int{0, 5, 15, 30, len(good) - 1} {
		c := append([]byte(nil), good...)
		c[pos] ^= 0xFF
		f.Add(c)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted graphs must satisfy all CSR invariants (validate panics
		// on violation, which the fuzzer reports as a crash).
		if g.N() < 0 || g.M() < 0 {
			t.Fatal("negative sizes")
		}
		for u := V(0); int(u) < g.N(); u++ {
			for _, v := range g.OutNeighbors(u) {
				if v < 0 || int(v) >= g.N() {
					t.Fatalf("edge target %d out of range", v)
				}
			}
		}
	})
}
