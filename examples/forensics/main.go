// Command forensics inspects a single realized misinformation cascade:
// who was activated at which timestamp and through which share, how the
// intervention reshapes the infection forest, and a Graphviz rendering of
// the paper's toy network with seeds and blockers highlighted.
//
// Run with:
//
//	go run ./examples/forensics            # prints analysis + DOT to stdout
//	go run ./examples/forensics | tail -n +20 | dot -Tsvg > toy.svg
package main

import (
	"fmt"
	"log"
	"os"

	imin "github.com/imin-dev/imin"
)

func main() {
	// A mid-size scale-free network under weighted-cascade probabilities.
	g := imin.AssignProbabilities(imin.GeneratePreferentialAttachment(1500, 3, true, 1), imin.WeightedCascade, 0)
	seeds, err := imin.RandomSeedSet(g, 3, true, 2)
	if err != nil {
		log.Fatal(err)
	}

	comps := imin.AnalyzeComponents(g)
	fmt.Printf("network: %d vertices, %d edges, %d weak components (largest holds %.0f%%), α ≈ %.2f\n",
		g.N(), g.M(), comps.WeakCount, 100*comps.LargestWeakFraction, imin.PowerLawAlpha(g, 10))

	// One realized cascade, no intervention.
	tr := imin.SimulateCascade(g, seeds, nil, 3)
	fmt.Printf("\nrealized cascade: %d users infected over %d rounds\n", tr.Total, tr.Rounds())
	for round, count := range tr.PerRound {
		fmt.Printf("  t=%d: %d new activation(s)\n", round, count)
	}

	// The expected picture, and the same after a 5-vertex intervention.
	rounds, spread := imin.AverageCascadeRounds(g, seeds, nil, 20000, 4)
	fmt.Printf("\nexpected: %.1f users over %.1f rounds\n", spread, rounds)
	res, err := imin.Minimize(g, seeds, 5, imin.Options{Theta: 3000, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	rounds, spread = imin.AverageCascadeRounds(g, seeds, res.Blockers, 20000, 4)
	fmt.Printf("after blocking %v: %.1f users over %.1f rounds\n", res.Blockers, spread, rounds)

	// Finally, render the paper's Figure 1 toy graph with the optimal
	// blocker highlighted, as a ready-to-compile DOT document.
	toy := imin.FromEdges(9, []imin.Edge{
		{From: 0, To: 1, P: 1}, {From: 0, To: 3, P: 1},
		{From: 1, To: 4, P: 1}, {From: 3, To: 4, P: 1},
		{From: 4, To: 2, P: 1}, {From: 4, To: 5, P: 1}, {From: 4, To: 8, P: 1},
		{From: 4, To: 7, P: 0.5}, {From: 8, To: 7, P: 0.2},
		{From: 7, To: 6, P: 0.1},
	})
	labels := map[imin.Vertex]string{}
	for v := imin.Vertex(0); v < 9; v++ {
		labels[v] = fmt.Sprintf("v%d", v+1)
	}
	fmt.Println("\n--- Figure 1 as Graphviz DOT (seed red, best blocker gray) ---")
	err = toy.WriteDOT(os.Stdout, imin.DOTOptions{
		Name:              "figure1",
		Label:             labels,
		Highlight:         map[imin.Vertex]string{0: "tomato", 4: "gray"},
		ShowProbabilities: true,
	})
	if err != nil {
		log.Fatal(err)
	}
}
