package exact

import (
	"fmt"

	"github.com/imin-dev/imin/internal/graph"
)

// SpreadEval evaluates the expected spread of a candidate blocker set on
// the single-source instance. Implementations: exact factoring (EvalExact)
// or Monte-Carlo estimation supplied by the caller for instances beyond
// exact reach.
type SpreadEval func(blocked []bool) (float64, error)

// EvalExact adapts Spread to the SpreadEval interface.
func EvalExact(g *graph.Graph, src graph.V, nodeBudget int) SpreadEval {
	return func(blocked []bool) (float64, error) {
		return Spread(g, src, blocked, nodeBudget)
	}
}

// IMINResult is the outcome of the exhaustive solver.
type IMINResult struct {
	Blockers []graph.V
	Spread   float64
	// Evaluated counts candidate sets scored, i.e. C(|candidates|, b).
	Evaluated int64
}

// SolveIMIN finds the optimal blocker set of size at most b for the
// single-source instance (g, src) by enumerating every candidate
// combination, the "Exact" algorithm of the paper's Tables V/VI. Because
// the spread is monotone non-increasing in B (Theorem 2), only sets of
// size exactly min(b, |candidates|) need enumeration.
//
// candidates defaults to all non-source vertices when nil. Cost is
// C(|candidates|, b) spread evaluations — exponential; intended for the
// small extracted instances of the optimality experiments.
func SolveIMIN(g *graph.Graph, src graph.V, b int, candidates []graph.V, eval SpreadEval) (IMINResult, error) {
	if b < 0 {
		return IMINResult{}, fmt.Errorf("exact: negative budget %d", b)
	}
	if candidates == nil {
		for u := graph.V(0); int(u) < g.N(); u++ {
			if u != src {
				candidates = append(candidates, u)
			}
		}
	}
	for _, c := range candidates {
		if c == src {
			return IMINResult{}, fmt.Errorf("exact: source %d in candidate set", src)
		}
	}
	k := b
	if k > len(candidates) {
		k = len(candidates)
	}
	blocked := make([]bool, g.N())
	best := IMINResult{Spread: -1}

	var err error
	forEachCombination(len(candidates), k, func(idx []int) bool {
		for _, i := range idx {
			blocked[candidates[i]] = true
		}
		var spread float64
		spread, err = eval(blocked)
		for _, i := range idx {
			blocked[candidates[i]] = false
		}
		if err != nil {
			return false
		}
		best.Evaluated++
		if best.Spread < 0 || spread < best.Spread {
			best.Spread = spread
			best.Blockers = best.Blockers[:0]
			for _, i := range idx {
				best.Blockers = append(best.Blockers, candidates[i])
			}
		}
		return true
	})
	if err != nil {
		return IMINResult{}, err
	}
	if best.Spread < 0 { // k == 0: evaluate the empty set
		spread, err := eval(blocked)
		if err != nil {
			return IMINResult{}, err
		}
		best = IMINResult{Spread: spread, Evaluated: 1}
	}
	return best, nil
}

// forEachCombination invokes fn with every k-subset of [0,n) in
// lexicographic order, passing a reused index slice; fn returning false
// stops the enumeration.
func forEachCombination(n, k int, fn func(idx []int) bool) {
	if k == 0 || k > n {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		if !fn(idx) {
			return
		}
		// Advance to the next combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
