// Package fixture provides the paper's running example (the Figure 1 toy
// graph) together with its analytically known quantities, which several test
// suites and the examples use as golden values.
package fixture

import "github.com/imin-dev/imin/internal/graph"

// Vertex ids of the Figure 1 graph: paper vertex v(i+1) has id i.
const (
	V1 graph.V = iota
	V2
	V3
	V4
	V5
	V6
	V7
	V8
	V9
)

// Toy returns the Figure 1 graph. The seed is V1.
//
// Structure (probability 1 unless noted):
//
//	v1 → v2, v4
//	v2 → v5;  v4 → v5
//	v5 → v3, v6, v9;  v5 → v8 (0.5);  v9 → v8 (0.2)
//	v8 → v7 (0.1)
//
// These edges reproduce every number in Examples 1-4 and Table III:
// activation probabilities P(v8)=0.6 and P(v7)=0.06, expected spread 7.66,
// spread 3 when blocking v5, spread 1 when blocking {v2,v4}, and spread
// decreases Δ[v5]=4.66, Δ[v9]=1.11, Δ[v8]=0.66, Δ[v7]=0.06, Δ[v2..v6]=1.
func Toy() *graph.Graph {
	return graph.FromEdges(9, []graph.Edge{
		{From: V1, To: V2, P: 1}, {From: V1, To: V4, P: 1},
		{From: V2, To: V5, P: 1}, {From: V4, To: V5, P: 1},
		{From: V5, To: V3, P: 1}, {From: V5, To: V6, P: 1}, {From: V5, To: V9, P: 1},
		{From: V5, To: V8, P: 0.5}, {From: V9, To: V8, P: 0.2},
		{From: V8, To: V7, P: 0.1},
	})
}

// Seed is the toy graph's seed vertex, v1.
const Seed = V1

// Golden quantities of the toy graph (Examples 1-2).
const (
	// ExpectedSpread is E({v1}, G) = 7.66.
	ExpectedSpread = 7.66
	// SpreadBlockV5 is E({v1}, G[V\{v5}]) = 3.
	SpreadBlockV5 = 3.0
	// SpreadBlockV2 is E({v1}, G[V\{v2}]) = 6.66 (same for v4).
	SpreadBlockV2 = 6.66
	// SpreadBlockV2V4 is E({v1}, G[V\{v2,v4}]) = 1.
	SpreadBlockV2V4 = 1.0
	// ProbV8 is P(v8, {v1}) = 0.6.
	ProbV8 = 0.6
	// ProbV7 is P(v7, {v1}) = 0.06.
	ProbV7 = 0.06
)

// Delta returns the exact spread decrease for blocking each vertex of the
// toy graph (Example 2), indexed by vertex id; the seed's entry is 0.
func Delta() []float64 {
	return []float64{
		V1: 0,
		V2: 1, V3: 1, V4: 1, V6: 1,
		V5: 4.66,
		V7: 0.06,
		V8: 0.66,
		V9: 1.11,
	}
}
