package dominator

// Naive computes immediate dominators by the definition: u dominates v iff
// removing u from the graph makes v unreachable from the root. It runs one
// BFS per vertex, O(n·(n+m)) total, and exists as the correctness oracle
// for the fast algorithms in tests and as a pedagogical reference.
func Naive(fg *FlowGraph, root int32) []int32 {
	n := fg.N
	baseline := reachSkipping(fg, root, -1)

	// dominates[u] = set of v (≠u) that u dominates, as a bitmap per u.
	// Only reachable u can dominate anything.
	dominatedBy := make([][]int32, n) // dominatedBy[v] = proper dominators of v
	for u := int32(0); int(u) < n; u++ {
		if !baseline[u] || u == root {
			continue
		}
		after := reachSkipping(fg, root, u)
		for v := int32(0); int(v) < n; v++ {
			if v != u && baseline[v] && !after[v] {
				dominatedBy[v] = append(dominatedBy[v], u)
			}
		}
	}
	// The root properly dominates every other reachable vertex.
	for v := int32(0); int(v) < n; v++ {
		if baseline[v] && v != root {
			dominatedBy[v] = append(dominatedBy[v], root)
		}
	}

	// Proper dominators of v form a chain; the immediate dominator is the
	// one dominated by all the others, i.e. the one with the most proper
	// dominators of its own.
	idom := make([]int32, n)
	for v := range idom {
		idom[v] = -1
	}
	for v := int32(0); int(v) < n; v++ {
		best := int32(-1)
		bestCount := -1
		for _, u := range dominatedBy[v] {
			c := len(dominatedBy[u])
			if c > bestCount {
				bestCount = c
				best = u
			}
		}
		idom[v] = best
	}
	idom[root] = -1
	return idom
}

// reachSkipping returns the set of vertices reachable from root without
// entering vertex skip (-1 to skip nothing).
func reachSkipping(fg *FlowGraph, root, skip int32) []bool {
	seen := make([]bool, fg.N)
	if root == skip {
		return seen
	}
	seen[root] = true
	queue := []int32{root}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, v := range fg.Succ(u) {
			if v == skip || seen[v] {
				continue
			}
			seen[v] = true
			queue = append(queue, v)
		}
	}
	return seen
}

// NaiveSubtreeSizes computes σ→v(root) directly from the definition used in
// the Naive oracle: the number of vertices (including v) that become
// unreachable when v is removed. Used to cross-check SubtreeSizes.
func NaiveSubtreeSizes(fg *FlowGraph, root int32) []int32 {
	n := fg.N
	baseline := reachSkipping(fg, root, -1)
	sizes := make([]int32, n)
	total := int32(0)
	for _, ok := range baseline {
		if ok {
			total++
		}
	}
	for v := int32(0); int(v) < n; v++ {
		if !baseline[v] {
			continue
		}
		if v == root {
			sizes[v] = total
			continue
		}
		after := reachSkipping(fg, root, v)
		count := int32(0)
		for _, ok := range after {
			if ok {
				count++
			}
		}
		sizes[v] = total - count
	}
	return sizes
}
