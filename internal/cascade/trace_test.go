package cascade

import (
	"math"
	"testing"

	"github.com/imin-dev/imin/internal/fixture"
	"github.com/imin-dev/imin/internal/graph"
	"github.com/imin-dev/imin/internal/rng"
)

func TestSimulateTraceTimestamps(t *testing.T) {
	// On the certain part of the toy graph the timestamps are fixed:
	// v1@0; v2,v4@1; v5@2; v3,v6,v9@3 (Example 1's "timestamps 1 to 3").
	g := fixture.Toy()
	r := rng.New(1)
	for i := 0; i < 200; i++ {
		tr := SimulateTrace(g, []graph.V{fixture.Seed}, nil, r)
		want := map[graph.V]int32{
			fixture.V1: 0,
			fixture.V2: 1, fixture.V4: 1,
			fixture.V5: 2,
			fixture.V3: 3, fixture.V6: 3, fixture.V9: 3,
		}
		for v, ts := range want {
			if tr.ActivatedAt[v] != ts {
				t.Fatalf("v%d activated at %d, want %d", v+1, tr.ActivatedAt[v], ts)
			}
		}
		// v8, if activated, comes at 3 (via v5) or 4 (via v9); v7 one later.
		if at := tr.ActivatedAt[fixture.V8]; at != -1 && at != 3 && at != 4 {
			t.Fatalf("v8 activated at %d", at)
		}
		if at := tr.ActivatedAt[fixture.V7]; at != -1 {
			if tr.ActivatedBy[fixture.V7] != fixture.V8 {
				t.Fatal("v7 activated by someone other than v8")
			}
			if at != tr.ActivatedAt[fixture.V8]+1 {
				t.Fatal("v7 not exactly one round after v8")
			}
		}
		// Infection forest: activator must be active strictly earlier.
		for v := graph.V(0); int(v) < g.N(); v++ {
			by := tr.ActivatedBy[v]
			if by == -1 {
				continue
			}
			if tr.ActivatedAt[by] == -1 || tr.ActivatedAt[by] != tr.ActivatedAt[v]-1 {
				t.Fatalf("activator timestamps inconsistent for v%d", v+1)
			}
			if !g.HasEdge(by, v) {
				t.Fatalf("activation along non-edge (%d,%d)", by, v)
			}
		}
		// PerRound sums to Total.
		sum := 0
		for _, c := range tr.PerRound {
			sum += c
		}
		if sum != tr.Total {
			t.Fatalf("PerRound sums to %d, Total %d", sum, tr.Total)
		}
	}
}

func TestSimulateTraceSpreadAgreesWithEstimator(t *testing.T) {
	g := fixture.Toy()
	_, avgSpread := AverageRounds(g, []graph.V{fixture.Seed}, nil, 100000, rng.New(2))
	if math.Abs(avgSpread-fixture.ExpectedSpread) > 0.03 {
		t.Fatalf("trace spread %v, want %v", avgSpread, fixture.ExpectedSpread)
	}
}

func TestSimulateTraceMultiSeedAndBlocked(t *testing.T) {
	g := fixture.Toy()
	blocked := make([]bool, g.N())
	blocked[fixture.V5] = true
	tr := SimulateTrace(g, []graph.V{fixture.V2, fixture.V4}, blocked, rng.New(3))
	if tr.Total != 2 || tr.Rounds() != 0 {
		t.Fatalf("blocked multi-seed trace: total=%d rounds=%d", tr.Total, tr.Rounds())
	}
	if tr.PerRound[0] != 2 {
		t.Fatalf("seed round count %d", tr.PerRound[0])
	}
	// Blocked seed is skipped entirely.
	tr = SimulateTrace(g, []graph.V{fixture.V5}, blocked, rng.New(4))
	if tr.Total != 0 {
		t.Fatalf("blocked seed produced spread %d", tr.Total)
	}
}

func TestSimulateTraceDeduplicatesSeeds(t *testing.T) {
	g := fixture.Toy()
	tr := SimulateTrace(g, []graph.V{fixture.Seed, fixture.Seed}, nil, rng.New(5))
	if tr.PerRound[0] != 1 {
		t.Fatalf("duplicate seeds counted: %d", tr.PerRound[0])
	}
}

func TestAverageRoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for sims <= 0")
		}
	}()
	AverageRounds(fixture.Toy(), []graph.V{0}, nil, 0, rng.New(6))
}
