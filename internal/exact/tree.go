package exact

import (
	"errors"
	"fmt"
	"sort"

	"github.com/imin-dev/imin/internal/graph"
)

// ErrNotATree reports that the region reachable from the root is not an
// out-tree, so TreeIMIN does not apply.
var ErrNotATree = errors.New("exact: reachable region is not an out-tree")

// TreeIMIN solves the IMIN problem *optimally* on tree networks in
// polynomial time — the structure where the general problem's NP-hardness
// vanishes (the paper's related work credits Yan et al. with a dynamic
// program for this case; this is an independent implementation).
//
// The instance must be an out-tree rooted at root: every vertex reachable
// from root (other than root itself) is reached by exactly one edge. On a
// tree, v's activation probability is the product of probabilities on the
// unique root→v path, so blocking v removes the fixed expected mass
//
//	mass(v) = pathProb(v) · submass(v),
//	submass(v) = 1 + Σ_{c child of v} p(v,c) · submass(c),
//
// and an optimal blocker set is an antichain (blocking a descendant of a
// blocked vertex adds nothing). Choosing the best antichain of size ≤ b is
// a grouped tree knapsack, solved bottom-up in O(n·b²).
func TreeIMIN(g *graph.Graph, root graph.V, b int) (IMINResult, error) {
	if b < 0 {
		return IMINResult{}, fmt.Errorf("exact: negative budget %d", b)
	}
	ts, err := newTreeSolver(g, root, b)
	if err != nil {
		return IMINResult{}, err
	}
	return ts.solve(), nil
}

// treeCell is one dynamic-programming entry: the best removable mass in a
// subtree with a given budget, plus how to achieve it.
type treeCell struct {
	gain      float64
	blockSelf bool
	split     []int // budget per child when !blockSelf
}

type treeSolver struct {
	g        *graph.Graph
	root     graph.V
	b        int
	order    []graph.V // BFS order, parents before children
	parent   map[graph.V]graph.V
	parentP  map[graph.V]float64
	children map[graph.V][]graph.V
	pathProb map[graph.V]float64
	submass  map[graph.V]float64
	table    map[graph.V][]treeCell
}

// newTreeSolver BFS-orders the reachable region, validates the out-tree
// shape, and precomputes path probabilities and subtree masses.
func newTreeSolver(g *graph.Graph, root graph.V, b int) (*treeSolver, error) {
	ts := &treeSolver{
		g: g, root: root, b: b,
		parent:   map[graph.V]graph.V{root: root},
		parentP:  map[graph.V]float64{},
		children: map[graph.V][]graph.V{},
		pathProb: map[graph.V]float64{root: 1},
		submass:  map[graph.V]float64{},
		table:    map[graph.V][]treeCell{},
	}
	ts.order = []graph.V{root}
	for qi := 0; qi < len(ts.order); qi++ {
		v := ts.order[qi]
		to := g.OutNeighbors(v)
		ps := g.OutProbs(v)
		for i, c := range to {
			if _, seen := ts.parent[c]; seen {
				// A second edge into a reached vertex (or back to the
				// root) breaks the tree shape.
				return nil, ErrNotATree
			}
			ts.parent[c] = v
			ts.parentP[c] = ps[i]
			ts.children[v] = append(ts.children[v], c)
			ts.pathProb[c] = ts.pathProb[v] * ps[i]
			ts.order = append(ts.order, c)
		}
	}
	for i := len(ts.order) - 1; i >= 0; i-- {
		v := ts.order[i]
		m := 1.0
		to := g.OutNeighbors(v)
		ps := g.OutProbs(v)
		for j, c := range to {
			m += ps[j] * ts.submass[c]
		}
		ts.submass[v] = m
	}
	return ts, nil
}

func (ts *treeSolver) solve() IMINResult {
	baseSpread := ts.submass[ts.root] // E({root}, G) on a tree

	// Bottom-up DP: children are later in BFS order, so a reverse sweep
	// sees every child's table before its parent's.
	for i := len(ts.order) - 1; i >= 0; i-- {
		v := ts.order[i]
		cells := make([]treeCell, ts.b+1)
		for k := 1; k <= ts.b; k++ {
			var best treeCell
			if v != ts.root {
				best = treeCell{gain: ts.pathProb[v] * ts.submass[v], blockSelf: true}
			}
			gain, split := ts.childSplit(ts.children[v], k)
			if gain > best.gain {
				best = treeCell{gain: gain, split: split}
			}
			cells[k] = best
		}
		ts.table[v] = cells
	}

	var blockers []graph.V
	ts.recover(ts.root, ts.b, &blockers)
	sort.Slice(blockers, func(i, j int) bool { return blockers[i] < blockers[j] })

	gain := 0.0
	if ts.b > 0 {
		gain = ts.table[ts.root][ts.b].gain
	}
	return IMINResult{
		Blockers:  blockers,
		Spread:    baseSpread - gain,
		Evaluated: int64(len(ts.order)) * int64(ts.b+1),
	}
}

// childSplit maximizes Σ_c table[c][k_c].gain over splits Σ k_c ≤ k via an
// incremental knapsack across the child list, returning the best gain and
// the per-child budgets.
func (ts *treeSolver) childSplit(children []graph.V, k int) (float64, []int) {
	if len(children) == 0 || k == 0 {
		return 0, nil
	}
	cur := make([]float64, k+1)
	splits := make([][]int, k+1)
	for _, c := range children {
		cells := ts.table[c]
		next := make([]float64, k+1)
		nextSplits := make([][]int, k+1)
		for kk := 0; kk <= k; kk++ {
			bestGain, bestKc := cur[kk], 0
			for kc := 1; kc <= kk; kc++ {
				if g := cur[kk-kc] + cells[kc].gain; g > bestGain {
					bestGain, bestKc = g, kc
				}
			}
			next[kk] = bestGain
			nextSplits[kk] = append(append([]int(nil), splits[kk-bestKc]...), bestKc)
		}
		cur, splits = next, nextSplits
	}
	return cur[k], splits[k]
}

// recover walks the DP choices, collecting the blocker set.
func (ts *treeSolver) recover(v graph.V, k int, out *[]graph.V) {
	if k <= 0 {
		return
	}
	c := ts.table[v][k]
	if c.blockSelf {
		*out = append(*out, v)
		return
	}
	for i, kc := range c.split {
		if kc > 0 {
			ts.recover(ts.children[v][i], kc, out)
		}
	}
}
